//go:build !race

// Benchmark-trajectory gate for the graph-built topologies: BENCH_topo.json
// pins the event-core throughput (events/sec, ns/event) and the per-packet
// allocation budget for the dumbbell and a three-hop parking lot.
// `make bench-save` refreshes the file on a quiet machine; `make ci` replays
// the same measurement and fails on regression — allocations strictly
// (they are machine-independent), speed loosely (a 5× slowdown tolerance
// absorbs host variance while still catching algorithmic blowups).
package repro

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/units"
)

const benchTopoFile = "BENCH_topo.json"

type benchTopoEntry struct {
	Topology        string  `json:"topology"`
	EventsPerSec    float64 `json:"events_per_sec"`
	NsPerEvent      float64 `json:"ns_per_event"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
}

func benchTopoConfigs() map[string]experiment.Config {
	pl := topo.ParkingLotSpec(3)
	dumbbell := allocGuardConfig()
	parking := allocGuardConfig()
	parking.Topology = &pl
	return map[string]experiment.Config{
		"dumbbell":      dumbbell,
		"parking-lot-3": parking,
	}
}

// measureBenchTopo runs one configuration and reports its event throughput
// and allocation rate. The run is repeated through AllocsPerRun (which also
// warms the code paths), then timed separately over wall clock.
func measureBenchTopo(t *testing.T, cfg experiment.Config) benchTopoEntry {
	t.Helper()
	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})
	var goodputBytes float64
	if len(last.Groups) > 0 {
		for _, g := range last.Groups {
			goodputBytes += g.Bps * cfg.Duration.Seconds() / 8
		}
	} else {
		goodputBytes = (last.SenderBps[0] + last.SenderBps[1]) * cfg.Duration.Seconds() / 8
	}
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}

	start := time.Now()
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	return benchTopoEntry{
		EventsPerSec:    float64(res.Events) / wall.Seconds(),
		NsPerEvent:      float64(wall.Nanoseconds()) / float64(res.Events),
		AllocsPerPacket: allocs / segments,
	}
}

// TestBenchTopoTrajectory is both the recorder and the gate. With
// BENCH_SAVE=1 it measures and rewrites BENCH_topo.json; otherwise it
// measures and compares against the checked-in trajectory.
func TestBenchTopoTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates seconds of traffic per topology; skipped in -short mode")
	}
	cfgs := benchTopoConfigs()
	names := []string{"dumbbell", "parking-lot-3"}

	if os.Getenv("BENCH_SAVE") == "1" {
		var entries []benchTopoEntry
		for _, name := range names {
			e := measureBenchTopo(t, cfgs[name])
			e.Topology = name
			t.Logf("%s: %.0f events/sec, %.1f ns/event, %.3f allocs/pkt",
				name, e.EventsPerSec, e.NsPerEvent, e.AllocsPerPacket)
			entries = append(entries, e)
		}
		data, err := json.MarshalIndent(entries, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchTopoFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("saved trajectory to %s", benchTopoFile)
		return
	}

	data, err := os.ReadFile(benchTopoFile)
	if err != nil {
		t.Fatalf("no benchmark trajectory (%v); record one with `make bench-save`", err)
	}
	var saved []benchTopoEntry
	if err := json.Unmarshal(data, &saved); err != nil {
		t.Fatalf("corrupt %s: %v", benchTopoFile, err)
	}
	byName := map[string]benchTopoEntry{}
	for _, e := range saved {
		byName[e.Topology] = e
	}
	for _, name := range names {
		want, ok := byName[name]
		if !ok {
			t.Errorf("%s missing from %s; re-record with `make bench-save`", name, benchTopoFile)
			continue
		}
		got := measureBenchTopo(t, cfgs[name])
		t.Logf("%s: %.0f events/sec (saved %.0f), %.1f ns/event (saved %.1f), %.3f allocs/pkt (saved %.3f)",
			name, got.EventsPerSec, want.EventsPerSec, got.NsPerEvent, want.NsPerEvent,
			got.AllocsPerPacket, want.AllocsPerPacket)
		// Allocations are deterministic per build: a small absolute slack
		// covers AllocsPerRun jitter, nothing more.
		if got.AllocsPerPacket > want.AllocsPerPacket+0.05 {
			t.Errorf("%s: allocs/packet regressed: %.3f > saved %.3f",
				name, got.AllocsPerPacket, want.AllocsPerPacket)
		}
		// Speed gates are loose — hosts differ — but a 5× slowdown is an
		// algorithmic regression, not noise.
		if got.EventsPerSec < want.EventsPerSec/5 {
			t.Errorf("%s: event throughput collapsed: %.0f events/sec vs saved %.0f (>5× slower)",
				name, got.EventsPerSec, want.EventsPerSec)
		}
	}
}

// BenchmarkTopoBuild measures spec → network instantiation alone (port
// construction, continuation analysis, demux wiring), which gates how
// cheaply sweeps can spin up thousands of runs.
func BenchmarkTopoBuild(b *testing.B) {
	for _, tc := range []struct {
		name string
		spec topo.Spec
	}{
		{"dumbbell", topo.DumbbellSpec()},
		{"parking-lot-3", topo.ParkingLotSpec(3)},
		{"parking-lot-8", topo.ParkingLotSpec(8)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(1)
				if _, err := topo.Build(eng, tc.spec, topo.Params{
					Bottleneck: 100 * units.MegabitPerSec,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
