//go:build !race

// Benchmark-trajectory gate for the open-loop FCT workload: BENCH_fct.json
// pins the event-core throughput and per-packet allocation budget of runs
// with dynamic flow churn — the competition mix (elephants + mice) and the
// solo baseline the harm matrix divides by. `make bench-save` refreshes the
// file; `make ci` replays the measurement and fails on regression,
// allocations strictly and speed loosely (see bench_topo_test.go).
package repro

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/flows"
)

const benchFCTFile = "BENCH_fct.json"

type benchFCTEntry struct {
	Workload        string  `json:"workload"`
	EventsPerSec    float64 `json:"events_per_sec"`
	NsPerEvent      float64 `json:"ns_per_event"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	FlowsOpened     int     `json:"flows_opened"`
}

func benchFCTConfigs() map[string]experiment.Config {
	mice := &flows.Spec{Populations: []flows.Population{
		{Name: "mice", MeanArrival: 100 * time.Millisecond},
	}}
	competition := allocGuardConfig()
	competition.Flows = mice
	solo := allocGuardConfig()
	solo.Flows = mice
	solo.SoloFCT = true
	return map[string]experiment.Config{
		"mice-competition": competition,
		"mice-solo":        solo,
	}
}

// measureBenchFCT runs one workload configuration, reporting event
// throughput, allocation rate per forwarded data segment (elephant goodput
// plus completed mice payload), and the churn volume.
func measureBenchFCT(t *testing.T, cfg experiment.Config) benchFCTEntry {
	t.Helper()
	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})
	if last.FCT == nil || last.FCT.Completed == 0 {
		t.Fatalf("workload inactive: %+v", last.FCT)
	}
	goodputBytes := (last.SenderBps[0]+last.SenderBps[1])*cfg.Duration.Seconds()/8 +
		float64(last.FCT.Class("all").Bytes)
	segments := goodputBytes / 8900
	if segments < 100 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}

	start := time.Now()
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	return benchFCTEntry{
		EventsPerSec:    float64(res.Events) / wall.Seconds(),
		NsPerEvent:      float64(wall.Nanoseconds()) / float64(res.Events),
		AllocsPerPacket: allocs / segments,
		FlowsOpened:     last.FCT.Opened,
	}
}

// TestBenchFCTTrajectory is both the recorder and the gate, exactly like
// TestBenchTopoTrajectory: BENCH_SAVE=1 rewrites BENCH_fct.json, otherwise
// the checked-in trajectory gates the measurement.
func TestBenchFCTTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates seconds of churning traffic; skipped in -short mode")
	}
	cfgs := benchFCTConfigs()
	names := []string{"mice-competition", "mice-solo"}

	if os.Getenv("BENCH_SAVE") == "1" {
		var entries []benchFCTEntry
		for _, name := range names {
			e := measureBenchFCT(t, cfgs[name])
			e.Workload = name
			t.Logf("%s: %.0f events/sec, %.1f ns/event, %.3f allocs/pkt, %d flows",
				name, e.EventsPerSec, e.NsPerEvent, e.AllocsPerPacket, e.FlowsOpened)
			entries = append(entries, e)
		}
		data, err := json.MarshalIndent(entries, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchFCTFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("saved trajectory to %s", benchFCTFile)
		return
	}

	data, err := os.ReadFile(benchFCTFile)
	if err != nil {
		t.Fatalf("no benchmark trajectory (%v); record one with `make bench-save`", err)
	}
	var saved []benchFCTEntry
	if err := json.Unmarshal(data, &saved); err != nil {
		t.Fatalf("corrupt %s: %v", benchFCTFile, err)
	}
	byName := map[string]benchFCTEntry{}
	for _, e := range saved {
		byName[e.Workload] = e
	}
	for _, name := range names {
		want, ok := byName[name]
		if !ok {
			t.Errorf("%s missing from %s; re-record with `make bench-save`", name, benchFCTFile)
			continue
		}
		got := measureBenchFCT(t, cfgs[name])
		t.Logf("%s: %.0f events/sec (saved %.0f), %.3f allocs/pkt (saved %.3f), %d flows (saved %d)",
			name, got.EventsPerSec, want.EventsPerSec,
			got.AllocsPerPacket, want.AllocsPerPacket, got.FlowsOpened, want.FlowsOpened)
		// The arrival schedule is part of the determinism contract: a churn
		// count drift means the seed-derived streams changed.
		if got.FlowsOpened != want.FlowsOpened {
			t.Errorf("%s: flow churn drifted: opened %d, saved %d (arrival determinism broken?)",
				name, got.FlowsOpened, want.FlowsOpened)
		}
		if got.AllocsPerPacket > want.AllocsPerPacket+0.05 {
			t.Errorf("%s: allocs/packet regressed: %.3f > saved %.3f",
				name, got.AllocsPerPacket, want.AllocsPerPacket)
		}
		if got.EventsPerSec < want.EventsPerSec/5 {
			t.Errorf("%s: event throughput collapsed: %.0f events/sec vs saved %.0f (>5× slower)",
				name, got.EventsPerSec, want.EventsPerSec)
		}
	}
}
