// Command figures renders the paper's figures and tables from a sweep
// result set produced by cmd/sweep.
//
// Figure/table map (paper → flag):
//
//	Fig. 2  per-sender throughput vs buffer, FIFO      -fig 2
//	Fig. 3  Jain's index, FIFO (2 and 16 BDP)          -fig 3
//	Fig. 4  per-sender throughput vs buffer, RED       -fig 4
//	Fig. 5  Jain's index, RED                          -fig 5
//	Fig. 6  Jain's index, FQ_CODEL                     -fig 6
//	Fig. 7  link utilization, intra-CCA                -fig 7
//	Fig. 8  retransmissions, intra-CCA                 -fig 8
//	Table 3 overall comparison                         -fig table3
//	all of the above                                   -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aqm"
	"repro/internal/experiment"
)

func main() {
	var (
		in    = flag.String("in", "results.json", "sweep results JSON (comma-separated list merges sets)")
		fig   = flag.String("fig", "all", "which figure to render: 2|3|4|5|6|7|8|table3|all")
		style = flag.String("style", "table", "rendering style: table (numbers) or chart (bars/heatmaps)")
	)
	flag.Parse()

	var all []experiment.Result
	for _, path := range strings.Split(*in, ",") {
		rs, err := experiment.LoadFile(strings.TrimSpace(path))
		if err != nil {
			fatal(err)
		}
		all = append(all, rs.Results...)
	}
	s := experiment.Summarize(all)

	chart := *style == "chart"
	throughput := func(kind aqm.Kind, figNo int) {
		fmt.Printf("--- Figure %d: per-sender throughput, AQM=%s ---\n\n", figNo, kind)
		for _, p := range experiment.InterPairings() {
			if chart {
				fmt.Println(s.RenderSenderSparklines(p, kind))
				for _, bw := range s.Bandwidths() {
					fmt.Println(s.RenderThroughputBars(p, kind, bw))
				}
			} else {
				fmt.Println(s.RenderThroughputFigure(p, kind))
			}
		}
	}
	jain := func(kind aqm.Kind, figNo int) {
		fmt.Printf("--- Figure %d: Jain's fairness index, AQM=%s ---\n\n", figNo, kind)
		for _, q := range []float64{2, 16} {
			if chart {
				fmt.Println(s.RenderJainMatrix(kind, q))
			} else {
				fmt.Println(s.RenderJainFigure(kind, q))
			}
		}
	}
	utilAndRetrans := func() {
		fmt.Println("--- Figure 7: overall link utilization (intra-CCA) ---")
		for _, kind := range aqm.Kinds() {
			for _, q := range []float64{2, 16} {
				fmt.Println(s.RenderUtilizationFigure(kind, q))
			}
		}
		fmt.Println("--- Figure 8: retransmissions (intra-CCA) ---")
		for _, kind := range aqm.Kinds() {
			for _, q := range []float64{2, 16} {
				fmt.Println(s.RenderRetransFigure(kind, q))
			}
		}
	}

	switch *fig {
	case "2":
		throughput(aqm.KindFIFO, 2)
	case "3":
		jain(aqm.KindFIFO, 3)
	case "4":
		throughput(aqm.KindRED, 4)
	case "5":
		jain(aqm.KindRED, 5)
	case "6":
		jain(aqm.KindFQCoDel, 6)
	case "7":
		fmt.Println("--- Figure 7: overall link utilization (intra-CCA) ---")
		for _, kind := range aqm.Kinds() {
			for _, q := range []float64{2, 16} {
				fmt.Println(s.RenderUtilizationFigure(kind, q))
			}
		}
	case "8":
		fmt.Println("--- Figure 8: retransmissions (intra-CCA) ---")
		for _, kind := range aqm.Kinds() {
			for _, q := range []float64{2, 16} {
				fmt.Println(s.RenderRetransFigure(kind, q))
			}
		}
	case "table3":
		fmt.Println("--- Table 3: overall performance comparison ---")
		fmt.Print(s.RenderTable3())
	case "all":
		throughput(aqm.KindFIFO, 2)
		jain(aqm.KindFIFO, 3)
		throughput(aqm.KindRED, 4)
		jain(aqm.KindRED, 5)
		jain(aqm.KindFQCoDel, 6)
		utilAndRetrans()
		fmt.Println("--- Table 3: overall performance comparison ---")
		fmt.Print(s.RenderTable3())
	default:
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
