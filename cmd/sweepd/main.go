// Command sweepd serves the measurement grid as a long-running service:
// clients POST experiment.GridSpec sweeps and stream results over HTTP,
// while a sharded worker pool simulates each configuration at most once and
// a content-addressed cache (persisted via the JSONL checkpoint journal)
// answers repeats without re-simulating. A served sweep is byte-identical
// to a direct cmd/sweep run of the same spec.
//
//	sweepd -journal sweeps.ckpt.jsonl                # listen on :8422
//	sweepd -addr 127.0.0.1:0 -addr-file /tmp/addr    # ephemeral port, for scripts
//	sweep -remote http://localhost:8422 -bws 1Gbps   # submit via the CLI client
//
// API:
//
//	POST /v1/sweeps              submit a GridSpec (JSON body); identical
//	                             specs coalesce onto one job
//	GET  /v1/sweeps/{id}         status with per-config skip/error counts
//	GET  /v1/sweeps/{id}/events  NDJSON progress stream, one line per
//	                             completed configuration
//	GET  /v1/sweeps/{id}/results merged experiment.ResultSet JSON
//	GET  /v1/sweeps/{id}/report  paper-vs-measured markdown (cmd/report path)
//	GET  /v1/sweeps/{id}/trace   per-config telemetry NDJSON (needs -trace;
//	                             ?config=<key> narrows to one configuration)
//	GET  /metrics                Prometheus text format (histograms of
//	                             per-config wall time and event rate)
//	GET  /debug/pprof/           Go profiler (only with -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/svc"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8422", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
		journal  = flag.String("journal", "", "JSONL checkpoint journal persisting the result cache (empty = in-memory only)")
		shards   = flag.Int("shards", 0, "worker-pool shards (0 = GOMAXPROCS)")
		auditRun = flag.Bool("audit", false, "arm the runtime invariant auditor on every simulated configuration")
		traceRun = flag.Bool("trace", false, "record flight-recorder telemetry for every simulated configuration (serves /v1/sweeps/{id}/trace)")
		pprofOn  = flag.Bool("pprof", false, "mount the Go profiler at /debug/pprof/ (exposes internals; keep off on untrusted networks)")
	)
	flag.Parse()

	server, err := svc.New(svc.Options{Journal: *journal, Shards: *shards,
		Audit: *auditRun, Trace: *traceRun, Pprof: *pprofOn})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepd: listening on http://%s (journal=%s audit=%v trace=%v pprof=%v)\n",
		ln.Addr(), orNone(*journal), *auditRun, *traceRun, *pprofOn)
	if *addrFile != "" {
		// Write-then-rename so a watching script never reads a torn address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}

	httpSrv := &http.Server{Handler: server.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "sweepd: shutting down: draining running configurations")
	case err := <-errCh:
		fatal(err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd: http shutdown:", err)
	}
	if err := server.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "sweepd: journal flushed, bye")
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "sweepd:", err)
	os.Exit(1)
}
