// Command sweepd serves the measurement grid as a long-running service:
// clients POST experiment.GridSpec sweeps and stream results over HTTP,
// while a sharded worker pool simulates each configuration at most once and
// a content-addressed cache (persisted via the JSONL checkpoint journal)
// answers repeats without re-simulating. A served sweep is byte-identical
// to a direct cmd/sweep run of the same spec.
//
//	sweepd -journal sweeps.ckpt.jsonl                # listen on :8422
//	sweepd -addr 127.0.0.1:0 -addr-file /tmp/addr    # ephemeral port, for scripts
//	sweep -remote http://localhost:8422 -bws 1Gbps   # submit via the CLI client
//
// Cluster mode splits the daemon in two: one coordinator owns the API,
// the cache, and the lease state machine, and any number of workers pull
// leased batches of configurations, simulate them, and upload results.
// Workers heartbeat; a worker that dies mid-lease has its unfinished
// configurations re-queued after the lease TTL, already-uploaded results
// are never re-simulated, and idle workers steal the tail of a
// straggler's lease. The merged result set stays byte-identical to a
// single-process sweep.
//
//	sweepd -coordinator -journal sweeps.ckpt.jsonl   # cluster brain
//	sweepd -join http://coordinator:8422             # execution worker
//	sweepd -merge -journal merged.jsonl w1.jsonl w2.jsonl  # fold worker journals
//
// API:
//
//	POST /v1/sweeps              submit a GridSpec (JSON body); identical
//	                             specs coalesce onto one job
//	GET  /v1/sweeps/{id}         status with per-config skip/error counts
//	GET  /v1/sweeps/{id}/events  NDJSON progress stream, one line per
//	                             completed configuration
//	GET  /v1/sweeps/{id}/results merged experiment.ResultSet JSON
//	GET  /v1/sweeps/{id}/report  paper-vs-measured markdown (cmd/report path)
//	GET  /v1/sweeps/{id}/trace   per-config telemetry NDJSON (needs -trace;
//	                             ?config=<key> narrows to one configuration)
//	GET  /v1/sweeps/{id}/fairness per-config fairness-observatory reports as
//	                             NDJSON (needs -fairness or fairness in the
//	                             spec; ?config=<key> narrows to one)
//	GET  /metrics                Prometheus text format (histograms of
//	                             per-config wall time, event rate, and
//	                             fairness convergence time, plus
//	                             sweepd_cluster_* lease counters with
//	                             -coordinator)
//	GET  /debug/pprof/           Go profiler (only with -pprof)
//
// Cluster API (coordinator only; used by sweepd -join, not by clients):
//
//	POST /v1/workers                       register, returns worker ID and
//	                                       heartbeat/lease parameters
//	POST /v1/workers/{id}/heartbeat        renew liveness and lease deadlines
//	POST /v1/workers/{id}/lease            acquire a leased batch of configs
//	POST /v1/workers/{id}/results          upload one result (idempotent)
//	POST /v1/workers/{id}/release          hand back unworked lease remainder
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/failpoint"
	"repro/internal/svc"
)

// fsckJournal runs the startup integrity scan on demand: CRC verification,
// duplicate and science-key accounting, and (unless dry) a repair that
// quarantines damaged raw bytes beside the journal and rewrites it as one
// clean v2 record per live configuration.
func fsckJournal(path string, repair bool) error {
	if path == "" {
		return errors.New("-fsck requires -journal")
	}
	rep, err := experiment.FsckJournal(path, repair)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "sweepd: "+rep.String())
	if !repair && rep.Dirty() {
		return fmt.Errorf("journal %s is dirty (re-run without -fsck-dry-run to repair)", path)
	}
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8422", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
		journal  = flag.String("journal", "", "JSONL checkpoint journal persisting the result cache (empty = in-memory only)")
		shards   = flag.Int("shards", 0, "worker-pool shards, or parallel simulations with -join (0 = GOMAXPROCS)")
		auditRun = flag.Bool("audit", false, "arm the runtime invariant auditor on every simulated configuration")
		traceRun = flag.Bool("trace", false, "record flight-recorder telemetry for every simulated configuration (serves /v1/sweeps/{id}/trace)")
		fairRun  = flag.Bool("fairness", false, "arm the fairness observatory on every simulated configuration (serves /v1/sweeps/{id}/fairness)")
		pprofOn  = flag.Bool("pprof", false, "mount the Go profiler at /debug/pprof/ (exposes internals; keep off on untrusted networks)")
		logFmt   = flag.String("log-format", "text", "log encoding: text (key=value) or json (one object per line)")

		coordinator = flag.Bool("coordinator", false, "cluster mode: lease configurations to joined workers instead of simulating locally")
		join        = flag.String("join", "", "cluster mode: run as a worker for the coordinator at this URL (no local HTTP API)")
		name        = flag.String("name", "", "worker name reported to the coordinator (default host:pid; only with -join)")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "failure-detection horizon: unrenewed leases and silent workers are reaped after this (only with -coordinator)")
		heartbeat   = flag.Duration("heartbeat", 0, "worker heartbeat interval (0 = lease-ttl/5 on the coordinator, coordinator-suggested on a worker)")
		leaseBatch  = flag.Int("lease-batch", 0, "maximum configurations per lease (0 = 16; only with -coordinator)")
		merge       = flag.Bool("merge", false, "offline: fold the journals given as arguments into -journal, compact, and exit")

		fsck        = flag.Bool("fsck", false, "offline: verify -journal (CRCs, duplicates, science-key agreement), repair into a compacted journal, report drops, and exit")
		fsckDry     = flag.Bool("fsck-dry-run", false, "with -fsck: report damage without rewriting the journal")
		retryBudget = flag.Int("retry-budget", 0, "lease failures before a configuration is quarantined as poison (0 = 3; only with -coordinator)")
		requeueQ    = flag.Bool("requeue-quarantined", false, "grant quarantined configurations a fresh retry budget when requested again (only with -coordinator)")
		failpoints  = flag.String("failpoints", os.Getenv("FAILPOINTS"),
			"arm fault-injection points, e.g. 'checkpoint.fsync=err(disk full)@times=3;worker.run=exit:7@arg=<config-id>' (default $FAILPOINTS)")
	)
	flag.Parse()

	if err := svc.ConfigureLogging(*logFmt, os.Stderr); err != nil {
		fatal(err)
	}
	if *failpoints != "" {
		if err := failpoint.Enable(*failpoints); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweepd: failpoints armed: %s\n", *failpoints)
	}

	modes := 0
	for _, on := range []bool{*coordinator, *join != "", *merge, *fsck} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatal(errors.New("-coordinator, -join, -merge, and -fsck are mutually exclusive"))
	}

	if *fsck {
		if err := fsckJournal(*journal, !*fsckDry); err != nil {
			fatal(err)
		}
		return
	}
	if *merge {
		if err := mergeJournals(*journal, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}
	if *join != "" {
		runWorker(*join, *name, *journal, *shards, *heartbeat)
		return
	}

	opts := svc.Options{Journal: *journal, Shards: *shards,
		Audit: *auditRun, Trace: *traceRun, Fairness: *fairRun, Pprof: *pprofOn}
	if *coordinator {
		opts.Cluster = &svc.ClusterOptions{LeaseTTL: *leaseTTL, Heartbeat: *heartbeat,
			LeaseBatch: *leaseBatch, RetryBudget: *retryBudget, RequeueQuarantined: *requeueQ}
	}
	server, err := svc.New(opts)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	mode := "pool"
	if *coordinator {
		mode = "coordinator"
	}
	fmt.Fprintf(os.Stderr, "sweepd: listening on http://%s (mode=%s journal=%s audit=%v trace=%v fairness=%v pprof=%v)\n",
		ln.Addr(), mode, orNone(*journal), *auditRun, *traceRun, *fairRun, *pprofOn)
	if *addrFile != "" {
		// Write-then-rename so a watching script never reads a torn address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}

	httpSrv := &http.Server{Handler: server.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "sweepd: shutting down: draining running configurations")
	case err := <-errCh:
		fatal(err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd: http shutdown:", err)
	}
	if err := server.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "sweepd: journal flushed, bye")
}

// runWorker joins a coordinator and works leases until SIGINT/SIGTERM, then
// drains gracefully: in-flight simulations finish and upload, the rest of
// the lease is released back so the coordinator reschedules it immediately.
func runWorker(coordURL, name, journal string, parallel int, heartbeat time.Duration) {
	w, err := svc.NewWorker(svc.WorkerOptions{
		Coordinator: coordURL,
		Name:        name,
		Parallel:    parallel,
		Journal:     journal,
		Heartbeat:   heartbeat,
	})
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "sweepd: joining %s as worker (journal=%s)\n", coordURL, orNone(journal))
	if err := w.Run(ctx); err != nil {
		fatal(err)
	}
}

// mergeJournals folds per-worker JSONL journals into one cache journal:
// every source result is appended to dest (content-addressed, so repeats
// across workers collapse), then the journal is compacted down to one line
// per configuration. Damage in a source — torn tails, corrupt regions,
// key-mismatched records, even an unopenable file — is skipped and
// reported, never fatal: every record the resilient reader can still
// recover is merged, and the exit is nonzero only if no source yielded
// anything at all.
func mergeJournals(dest string, sources []string) error {
	if dest == "" {
		return errors.New("-merge requires -journal (the destination)")
	}
	if len(sources) == 0 {
		return errors.New("-merge requires source journals as arguments")
	}
	cache, err := svc.OpenCache(dest)
	if err != nil {
		return err
	}
	total, added, merged, skipped := 0, 0, 0, 0
	for _, src := range sources {
		ck, err := experiment.OpenCheckpoint(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweepd: skipping %s: %v\n", src, err)
			skipped++
			continue
		}
		results := ck.Results()
		st := ck.Stats()
		if err := ck.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sweepd: close %s: %v (its %d readable results are still merged)\n",
				src, err, len(results))
		}
		for _, res := range results {
			total++
			before := cache.Len()
			if err := cache.Put(res); err != nil {
				return fmt.Errorf("merge %s: %w", src, err)
			}
			if cache.Len() > before {
				added++
			}
		}
		if d := st.Damaged(); d > 0 {
			fmt.Fprintf(os.Stderr, "sweepd: merged %s (%d results; dropped %d damaged record(s): %d corrupt, %d key-mismatched, %d oversized)\n",
				src, len(results), d, st.Corrupt, st.KeyMismatch, st.Oversized)
		} else {
			fmt.Fprintf(os.Stderr, "sweepd: merged %s (%d results)\n", src, len(results))
		}
		merged++
	}
	if merged == 0 {
		cache.Close()
		return fmt.Errorf("nothing merged: all %d source journal(s) unreadable", skipped)
	}
	// Compact fails while the destination journal is degraded (results shed
	// to memory overflow) — the strict signal that the merge did not land.
	if err := cache.Compact(); err != nil {
		return err
	}
	held := cache.Len()
	if err := cache.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweepd: %s now holds %d configurations (%d read, %d new, %d source(s) skipped)\n",
		dest, held, total, added, skipped)
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "sweepd:", err)
	os.Exit(1)
}
