package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/viz"
)

// window returns the time span covered by the dump's surviving events.
func window(d *telemetry.Dump) (t0, t1 int64, ok bool) {
	first := true
	for _, r := range d.Rings {
		for _, e := range r.Events {
			if first || e.At < t0 {
				t0 = e.At
			}
			if first || e.At > t1 {
				t1 = e.At
			}
			first = false
		}
	}
	return t0, t1, !first
}

// binIndex maps a timestamp into [0, bins).
func binIndex(at, t0, t1 int64, bins int) int {
	if t1 <= t0 {
		return 0
	}
	i := int(float64(at-t0) / float64(t1-t0) * float64(bins))
	if i >= bins {
		i = bins - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// binHold buckets events by time and keeps the last picked value in each
// bin, holding the previous value across empty bins (gauge semantics: the
// quantity persists between observations). Returns nil when pick accepts
// no event.
func binHold(evs []telemetry.Event, t0, t1 int64, bins int, pick func(telemetry.Event) (float64, bool)) []float64 {
	vals := make([]float64, bins)
	seen := make([]bool, bins)
	any := false
	for _, e := range evs {
		v, ok := pick(e)
		if !ok {
			continue
		}
		i := binIndex(e.At, t0, t1, bins)
		vals[i] = v
		seen[i] = true
		any = true
	}
	if !any {
		return nil
	}
	// Forward-fill: find the first observed value, backfill the lead, then
	// hold the latest observation across gaps.
	last := 0.0
	for i := 0; i < bins; i++ {
		if seen[i] {
			last = vals[i]
			for j := 0; j < i; j++ {
				vals[j] = last
			}
			break
		}
	}
	for i := 0; i < bins; i++ {
		if seen[i] {
			last = vals[i]
		} else {
			vals[i] = last
		}
	}
	return vals
}

// binCount counts picked events per bin, scaled to events/second. Returns
// nil when pick accepts no event.
func binCount(evs []telemetry.Event, t0, t1 int64, bins int, pick func(telemetry.Event) bool) []float64 {
	vals := make([]float64, bins)
	any := false
	for _, e := range evs {
		if !pick(e) {
			continue
		}
		vals[binIndex(e.At, t0, t1, bins)]++
		any = true
	}
	if !any {
		return nil
	}
	binSec := float64(t1-t0) / float64(bins) / 1e9
	if binSec > 0 {
		for i := range vals {
			vals[i] /= binSec
		}
	}
	return vals
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func sec(ns int64) float64 { return float64(ns) / 1e9 }

// stateName resolves an interned CCA state code against the dump's table.
func stateName(d *telemetry.Dump, code int64) string {
	if code < 0 {
		return "(start)"
	}
	if int(code) < len(d.States) {
		return d.States[code]
	}
	return fmt.Sprintf("state#%d", code)
}

// renderDump writes the human-readable timeline report for one telemetry
// dump: per-flow cwnd/pacing sparklines and CCA state transitions, then
// per-port occupancy, drop taxonomy, and per-flow dequeue-rate sparklines.
func renderDump(w io.Writer, d *telemetry.Dump, bins int) {
	t0, t1, ok := window(d)
	if !ok {
		fmt.Fprintln(w, "no events recorded")
		return
	}
	fmt.Fprintf(w, "window %.3fs .. %.3fs (%d rings, %d states interned)\n",
		sec(t0), sec(t1), len(d.Rings), len(d.States))
	for ri := range d.Rings {
		r := &d.Rings[ri]
		label := ""
		if r.Label != "" {
			label = " (" + r.Label + ")"
		}
		fmt.Fprintf(w, "\n%s%s  events=%d total=%d overwritten=%d sample=1/%d\n",
			r.Name, label, len(r.Events), r.Total, r.Dropped, r.SampleN)
		switch r.Kind {
		case "flow":
			renderFlowRing(w, d, r, t0, t1, bins)
		case "port":
			renderPortRing(w, r, t0, t1, bins)
		}
	}
}

func renderFlowRing(w io.Writer, d *telemetry.Dump, r *telemetry.RingDump, t0, t1 int64, bins int) {
	if vals := binHold(r.Events, t0, t1, bins, func(e telemetry.Event) (float64, bool) {
		return float64(e.A), e.Kind == telemetry.KindCwnd
	}); vals != nil {
		lo, hi := minMax(vals)
		fmt.Fprintf(w, "  cwnd     %s  %.0f..%.0f bytes\n", viz.Sparkline(vals), lo, hi)
	}
	if vals := binHold(r.Events, t0, t1, bins, func(e telemetry.Event) (float64, bool) {
		return float64(e.A), e.Kind == telemetry.KindPacing
	}); vals != nil {
		lo, hi := minMax(vals)
		fmt.Fprintf(w, "  pacing   %s  %.2f..%.2f Mbps\n", viz.Sparkline(vals), lo/1e6, hi/1e6)
	}
	if vals := binHold(r.Events, t0, t1, bins, func(e telemetry.Event) (float64, bool) {
		return float64(e.B) / 1e6, e.Kind == telemetry.KindRTT
	}); vals != nil {
		lo, hi := minMax(vals)
		fmt.Fprintf(w, "  srtt     %s  %.2f..%.2f ms\n", viz.Sparkline(vals), lo, hi)
	}
	var transitions []string
	rtos := 0
	hiMoves := 0
	for _, e := range r.Events {
		switch e.Kind {
		case telemetry.KindCCAState:
			transitions = append(transitions, fmt.Sprintf("%.3fs %s→%s",
				sec(e.At), stateName(d, e.A), stateName(d, e.B)))
		case telemetry.KindRTO:
			rtos++
		case telemetry.KindInflightHi:
			hiMoves++
		}
	}
	if len(transitions) > 0 {
		const keep = 8
		if len(transitions) > keep {
			fmt.Fprintf(w, "  states   (%d transitions, last %d) %s\n",
				len(transitions), keep, strings.Join(transitions[len(transitions)-keep:], ", "))
		} else {
			fmt.Fprintf(w, "  states   %s\n", strings.Join(transitions, ", "))
		}
	}
	if rtos > 0 {
		fmt.Fprintf(w, "  rto      %d fires\n", rtos)
	}
	if hiMoves > 0 {
		fmt.Fprintf(w, "  infl_hi  %d bound moves\n", hiMoves)
	}
}

func renderPortRing(w io.Writer, r *telemetry.RingDump, t0, t1 int64, bins int) {
	if vals := binHold(r.Events, t0, t1, bins, func(e telemetry.Event) (float64, bool) {
		return float64(e.A), e.Kind == telemetry.KindEnqueue || e.Kind == telemetry.KindDequeue
	}); vals != nil {
		lo, hi := minMax(vals)
		fmt.Fprintf(w, "  queue    %s  %.0f..%.0f bytes\n", viz.Sparkline(vals), lo, hi)
	}
	var peakB, peakP int64
	drops := map[string]int{}
	marks := map[string]int{}
	faults := 0
	flowSet := map[uint32]bool{}
	for _, e := range r.Events {
		switch e.Kind {
		case telemetry.KindHiWater:
			if e.A > peakB {
				peakB = e.A
			}
			if e.B > peakP {
				peakP = e.B
			}
		case telemetry.KindDrop:
			drops[e.Aux.String()]++
		case telemetry.KindMark:
			marks[e.Aux.String()]++
		case telemetry.KindFault:
			faults++
		case telemetry.KindDequeue:
			flowSet[e.Flow] = true
		}
	}
	if peakB > 0 {
		fmt.Fprintf(w, "  hiwater  %d bytes / %d pkts (within the recorded window)\n", peakB, peakP)
	}
	if len(drops) > 0 {
		fmt.Fprintf(w, "  drops    %s\n", countMap(drops))
	}
	if len(marks) > 0 {
		fmt.Fprintf(w, "  marks    %s\n", countMap(marks))
	}
	if faults > 0 {
		fmt.Fprintf(w, "  faults   %d transitions\n", faults)
	}
	flows := make([]uint32, 0, len(flowSet))
	for f := range flowSet {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	perFlow := make([][]float64, 0, len(flows))
	for _, f := range flows {
		vals := binCount(r.Events, t0, t1, bins, func(e telemetry.Event) bool {
			return e.Kind == telemetry.KindDequeue && e.Flow == f
		})
		if vals == nil {
			continue
		}
		perFlow = append(perFlow, vals)
		_, hi := minMax(vals)
		fmt.Fprintf(w, "  deq f=%-3d %s  peak %.0f pkts/s\n", f, viz.Sparkline(vals), hi)
	}
	if vals := jainSeries(perFlow, bins); vals != nil {
		lo, hi := minMax(vals)
		fmt.Fprintf(w, "  jain(t)  %s  %.3f..%.3f over %d flows\n",
			viz.Sparkline(vals), lo, hi, len(perFlow))
	}
}

// jainSeries computes the Jain fairness index per time bin over the flows'
// dequeue-rate series — the timeline's view of the fairness observatory's
// Jain(t). Jain is scale-invariant, so packet rates stand in for shares.
// Bins where no flow dequeued anything score 1 (an idle link is trivially
// fair). Nil unless at least two flows competed.
func jainSeries(perFlow [][]float64, bins int) []float64 {
	if len(perFlow) < 2 {
		return nil
	}
	vals := make([]float64, bins)
	for i := 0; i < bins; i++ {
		var sum, sumSq float64
		for _, f := range perFlow {
			sum += f[i]
			sumSq += f[i] * f[i]
		}
		if sumSq == 0 {
			vals[i] = 1
			continue
		}
		vals[i] = sum * sum / (float64(len(perFlow)) * sumSq)
	}
	return vals
}

// countMap renders a reason-count map deterministically (sorted by reason).
func countMap(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
