// Command timeline renders recorded flight-recorder telemetry (NDJSON from
// tcpfair -telemetry-out, sweep -trace-dir, or sweepd /v1/sweeps/{id}/trace)
// as terminal timelines: per-flow cwnd/pacing/srtt sparklines with CCA state
// transitions, and per-port queue-occupancy sparklines with the drop/mark
// taxonomy and per-flow dequeue rates.
//
// Examples:
//
//	timeline -in run.ndjson
//	tcpfair -cca1 bbr1 -cca2 cubic -telemetry-out /dev/stdout -quiet | timeline -in -
//	curl -s localhost:8422/v1/sweeps/<id>/trace | timeline -in -
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	var (
		in   = flag.String("in", "-", "telemetry NDJSON input path (\"-\" = stdin)")
		bins = flag.Int("bins", 60, "time-axis resolution of the rendered sparklines")
	)
	flag.Parse()
	if *bins < 1 {
		fatal(fmt.Errorf("-bins must be >= 1, got %d", *bins))
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}

	sections, err := splitStreams(data)
	if err != nil {
		fatal(err)
	}
	if len(sections) == 0 {
		fatal(fmt.Errorf("no telemetry dumps in input"))
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for i, s := range sections {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if s.Config != "" {
			fmt.Fprintf(out, "=== config %s (%s) ===\n", s.Config, s.ID)
		}
		renderDump(out, s.Dump, *bins)
	}
}

// section is one telemetry dump plus the sweepd stream header (if any) that
// introduced it.
type section struct {
	Config string
	ID     string
	Dump   *telemetry.Dump
}

// streamHeader matches the delimiter lines sweepd's /trace endpoint writes
// between per-configuration dumps.
type streamHeader struct {
	Config string `json:"config"`
	ID     string `json:"id"`
}

// splitStreams parses input that is either a single telemetry NDJSON dump or
// a sweepd /trace stream: dumps separated by {"config":...,"id":...} header
// lines. telemetry.ParseNDJSON is strict, so headers must be stripped before
// handing each chunk to it.
func splitStreams(data []byte) ([]section, error) {
	var sections []section
	var cur section
	var chunk bytes.Buffer
	flush := func() error {
		if strings.TrimSpace(chunk.String()) == "" {
			return nil
		}
		d, err := telemetry.ParseNDJSON(bytes.NewReader(chunk.Bytes()))
		if err != nil {
			return err
		}
		cur.Dump = d
		sections = append(sections, cur)
		chunk.Reset()
		return nil
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var h streamHeader
		if err := json.Unmarshal(line, &h); err == nil && h.Config != "" {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = section{Config: h.Config, ID: h.ID}
			continue
		}
		chunk.Write(line)
		chunk.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return sections, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "timeline:", err)
	os.Exit(1)
}
