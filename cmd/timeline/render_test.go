package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// sampleDump builds a dump with one flow ring and one port ring covering
// every rendered section: cwnd growth, pacing, srtt, CCA transitions, an
// RTO, queue occupancy, tail drops, a CoDel mark, and a high watermark.
func sampleDump() *telemetry.Dump {
	trc := telemetry.New(telemetry.Options{RingCap: 256})
	fl := trc.Flow(1, "bbr1")
	pt := trc.Port("bottleneck")
	const ms = int64(1e6)
	fl.CCAState(0, "startup")
	for i := int64(0); i < 50; i++ {
		at := i * 10 * ms
		fl.Cwnd(at, 14480+i*2896, 1<<30)
		fl.Pacing(at, 100e6+i*1e6)
		fl.RTT(at, 62*ms, 62*ms+i*ms/10)
		pt.Enqueue(at, 1, i*1500, i)
		if i%2 == 0 {
			pt.Dequeue(at+ms, 1, i*1500-1500, ms/2)
		}
	}
	fl.CCAState(200*ms, "drain")
	fl.CCAState(300*ms, "probe_bw")
	fl.RTO(400*ms, 200*ms, 1)
	pt.Drop(410*ms, 1, telemetry.DropTail, 1500, 74*1500)
	pt.Drop(420*ms, 1, telemetry.DropTail, 1500, 74*1500)
	pt.Mark(430*ms, 1, telemetry.MarkCoDel, 1500, 10*1500)
	return trc.Dump()
}

func TestRenderDump(t *testing.T) {
	var buf bytes.Buffer
	renderDump(&buf, sampleDump(), 40)
	out := buf.String()
	for _, want := range []string{
		"flow:1 (bbr1)",
		"port:bottleneck",
		"cwnd",
		"pacing",
		"srtt",
		"queue",
		"hiwater",
		"startup→drain",
		"drain→probe_bw",
		"rto      1 fires",
		"drops    tail=2",
		"marks    codel_mark=1",
		"deq f=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered timeline missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("rendered timeline contains NaN:\n%s", out)
	}
}

func TestRenderDumpEmpty(t *testing.T) {
	var buf bytes.Buffer
	renderDump(&buf, &telemetry.Dump{V: 1}, 40)
	if !strings.Contains(buf.String(), "no events") {
		t.Fatalf("empty dump should render a notice, got %q", buf.String())
	}
}

// TestSplitStreamsSingle feeds one plain NDJSON dump (the tcpfair/sweep
// file format) through splitStreams.
func TestSplitStreamsSingle(t *testing.T) {
	var enc bytes.Buffer
	if err := telemetry.EncodeNDJSON(&enc, sampleDump()); err != nil {
		t.Fatal(err)
	}
	sections, err := splitStreams(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != 1 {
		t.Fatalf("want 1 section, got %d", len(sections))
	}
	if sections[0].Config != "" {
		t.Fatalf("plain dump should have no config header, got %q", sections[0].Config)
	}
	if got := len(sections[0].Dump.Rings); got != 2 {
		t.Fatalf("want 2 rings after round trip, got %d", got)
	}
}

// TestSplitStreamsSweepd feeds a sweepd /trace-style stream: dumps prefixed
// by {"config":...} delimiter lines.
func TestSplitStreamsSweepd(t *testing.T) {
	var stream bytes.Buffer
	for _, key := range []string{"aaaa", "bbbb"} {
		stream.WriteString(`{"config":"` + key + `","id":"job-1"}` + "\n")
		if err := telemetry.EncodeNDJSON(&stream, sampleDump()); err != nil {
			t.Fatal(err)
		}
	}
	sections, err := splitStreams(stream.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != 2 {
		t.Fatalf("want 2 sections, got %d", len(sections))
	}
	if sections[0].Config != "aaaa" || sections[1].Config != "bbbb" {
		t.Fatalf("config keys not carried through: %+v", sections)
	}
	if sections[1].ID != "job-1" {
		t.Fatalf("job id not carried through: %+v", sections[1])
	}
}

func TestBinHoldForwardFill(t *testing.T) {
	evs := []telemetry.Event{
		{At: 0, Kind: telemetry.KindCwnd, A: 10},
		{At: 900, Kind: telemetry.KindCwnd, A: 50},
	}
	vals := binHold(evs, 0, 1000, 10, func(e telemetry.Event) (float64, bool) {
		return float64(e.A), e.Kind == telemetry.KindCwnd
	})
	if len(vals) != 10 {
		t.Fatalf("want 10 bins, got %d", len(vals))
	}
	// Bins between the two observations hold the first value; the final bin
	// carries the second.
	if vals[0] != 10 || vals[5] != 10 {
		t.Fatalf("hold-previous failed: %v", vals)
	}
	if vals[9] != 50 {
		t.Fatalf("last bin should carry the last observation: %v", vals)
	}
}

func TestBinCountRate(t *testing.T) {
	// 4 events over 2 seconds in 2 bins -> 2 events/second in each bin.
	evs := []telemetry.Event{
		{At: 0, Kind: telemetry.KindDequeue},
		{At: 4e8, Kind: telemetry.KindDequeue},
		{At: 1.2e9, Kind: telemetry.KindDequeue},
		{At: 1.6e9, Kind: telemetry.KindDequeue},
	}
	vals := binCount(evs, 0, 2e9, 2, func(e telemetry.Event) bool { return true })
	if len(vals) != 2 || vals[0] != 2 || vals[1] != 2 {
		t.Fatalf("want [2 2] events/sec, got %v", vals)
	}
}
