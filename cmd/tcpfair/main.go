// Command tcpfair runs one fairness experiment on the simulated FABRIC
// dumbbell and prints the per-sender outcome — the simulator's equivalent
// of one row of the paper's measurement campaign.
//
// Examples:
//
//	tcpfair -cca1 bbr1 -cca2 cubic -aqm fifo -queue 2 -bw 1Gbps
//	tcpfair -cca1 cubic -cca2 cubic -aqm red -bw 100Mbps -duration 60s -seed 3
//	tcpfair -cca1 bbr2 -cca2 cubic -aqm fq_codel -bw 10Gbps -trace /tmp/logs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/flows"
	"repro/internal/topo"
	"repro/internal/units"
)

func main() {
	var (
		cca1        = flag.String("cca1", "cubic", "sender 1 congestion control (reno|cubic|htcp|bbr1|bbr2)")
		cca2        = flag.String("cca2", "cubic", "sender 2 congestion control")
		aqmName     = flag.String("aqm", "fifo", "bottleneck AQM (fifo|red|fq_codel)")
		queue       = flag.Float64("queue", 2, "bottleneck buffer size in BDP multiples")
		bwStr       = flag.String("bw", "1Gbps", "bottleneck bandwidth (e.g. 100Mbps, 25Gbps)")
		duration    = flag.Duration("duration", 0, "simulated transfer time (0 = bandwidth-scaled default)")
		nflows      = flag.Int("nflows", 0, "long-running flows per sender (0 = paper's Table 2 plan, scaled)")
		flowSpec    = flag.String("flows", "", "open-loop background workload: preset list (mice, elephants, mixed, e.g. mice:arrival=100ms,p95=1MB), inline JSON, or @file.json")
		soloFCT     = flag.Bool("solo-fct", false, "run the -flows workload alone (no elephants): the FCT baseline the harm matrix divides by")
		seed        = flag.Uint64("seed", 1, "replica seed")
		rtt         = flag.Duration("rtt", 62*time.Millisecond, "end-to-end round-trip time")
		paper       = flag.Bool("paper-scale", false, "full 200s runs and uncapped Table 2 flow counts")
		ecn         = flag.Bool("ecn", false, "enable ECN end to end")
		delayedAck  = flag.Bool("delayed-ack", false, "enable RFC 1122 delayed acknowledgements on receivers")
		traceDir    = flag.String("trace", "", "directory for iperf3-style per-flow JSON logs")
		interval    = flag.Duration("interval", time.Second, "interval for the per-second report")
		quiet       = flag.Bool("quiet", false, "suppress the per-interval report")
		faultSpec   = flag.String("faults", "", "fault profile: preset list (e.g. flap or ge:pgb=0.01+flap:at=10s), inline JSON, or @file.json")
		topoSpec    = flag.String("topo", "", "network topology: preset (dumbbell, parking-lot-3, reverse-path[:factor=0.005], cross-traffic[:cca=bbr1]), inline JSON, or @file.json")
		auditRun    = flag.Bool("audit", false, "enable the runtime invariant auditor (packet conservation, queue accounting, TCP sequence sanity)")
		telemOut    = flag.String("telemetry-out", "", "record flight-recorder telemetry and write it as NDJSON to this file (render with cmd/timeline)")
		traceRing   = flag.Int("trace-ring", 0, "telemetry ring capacity in events per flow/port (0 = default; larger rings keep more history before overwriting)")
		traceSample = flag.Int("trace-sample", 0, "keep 1-in-N of the high-frequency telemetry events (0 = keep all)")
		fairRun     = flag.Bool("fairness", false, "arm the fairness observatory: windowed Jain(t)/share series, convergence time, starvation episodes")
		fairWindow  = flag.Duration("fairness-window", 0, "fairness sampling window (0 = 100ms default; implies -fairness)")
	)
	flag.Parse()

	c1, err := cca.Parse(*cca1)
	if err != nil {
		fatal(err)
	}
	c2, err := cca.Parse(*cca2)
	if err != nil {
		fatal(err)
	}
	kind, err := aqm.ParseKind(*aqmName)
	if err != nil {
		fatal(err)
	}
	bw, err := units.ParseBandwidth(*bwStr)
	if err != nil {
		fatal(err)
	}
	profile, err := faults.Parse(*faultSpec)
	if err != nil {
		fatal(err)
	}
	topology, err := topo.Parse(*topoSpec)
	if err != nil {
		fatal(err)
	}
	workload, err := flows.Parse(*flowSpec)
	if err != nil {
		fatal(err)
	}
	if *soloFCT && workload == nil {
		fatal(fmt.Errorf("-solo-fct requires -flows"))
	}

	cfg := experiment.Config{
		Pairing:        experiment.Pairing{CCA1: c1, CCA2: c2},
		AQM:            kind,
		QueueBDP:       *queue,
		Bottleneck:     bw,
		RTT:            *rtt,
		Duration:       *duration,
		FlowsPerSender: *nflows,
		Seed:           *seed,
		PaperScale:     *paper,
		ECN:            *ecn,
		DelayedAck:     *delayedAck,
		SampleInterval: *interval,
		Faults:         profile,
		Topology:       topology,
		Audit:          *auditRun,
		Flows:          workload,
		SoloFCT:        *soloFCT,
	}

	if *fairRun || *fairWindow > 0 {
		cfg.Fairness = true
		cfg.FairnessWindow = *fairWindow
	}

	opts := core.RunOptions{TraceDir: *traceDir}
	if !*quiet {
		opts.IntervalWriter = os.Stdout
	}
	var telemFile *os.File
	if *telemOut != "" {
		cfg.Trace = true
		cfg.TraceRingCap = *traceRing
		cfg.TraceSampleN = *traceSample
		telemFile, err = os.Create(*telemOut)
		if err != nil {
			fatal(err)
		}
		opts.TelemetryOut = telemFile
	}
	res, err := runDetailed(cfg, opts)
	if err != nil {
		fatal(err)
	}
	if telemFile != nil {
		if err := telemFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tcpfair: wrote telemetry NDJSON to %s\n", *telemOut)
	}

	fmt.Printf("\n=== %s ===\n", res.Config.ID())
	fmt.Printf("bottleneck      %v, %v RTT, %s queue = %g x BDP\n",
		res.Config.Bottleneck, res.Config.RTT, res.Config.AQM, res.Config.QueueBDP)
	if len(res.Groups) > 0 {
		fmt.Printf("flows           %d across %d classes, %gs simulated\n",
			res.Flows, len(res.Groups), res.SimSeconds)
	} else {
		fmt.Printf("flows           %d (%d per sender), %gs simulated\n",
			res.Flows, res.Flows/2, res.SimSeconds)
	}
	fmt.Printf("sender 1 (%s)  %10.2f Mbps\n", c1, res.SenderMbps(0))
	fmt.Printf("sender 2 (%s)  %10.2f Mbps\n", c2, res.SenderMbps(1))
	fmt.Printf("Jain index      %10.4f\n", res.Jain)
	fmt.Printf("utilization     %10.4f\n", res.Utilization)
	fmt.Printf("retransmits     %10d (sender1 %d, sender2 %d)\n",
		res.TotalRetransmits, res.Retransmits[0], res.Retransmits[1])
	fmt.Printf("queue drops     %10d (ECN marks %d)\n", res.QueueDropped, res.QueueMarked)
	if res.FaultLossDrops > 0 || res.FaultDownDrops > 0 {
		fmt.Printf("fault drops     %10d loss-injected, %d flap-destroyed\n",
			res.FaultLossDrops, res.FaultDownDrops)
	}
	fmt.Printf("queueing delay  %10v mean, %v max\n",
		res.SojournMean.Round(time.Microsecond), res.SojournMax.Round(time.Microsecond))
	if len(res.Groups) > 0 {
		fmt.Printf("\nper-class results:\n")
		for _, g := range res.Groups {
			bg := ""
			if g.Background {
				bg = " (background)"
			}
			fmt.Printf("  %-8s %-6s %2d flows %12.2f Mbps  %8d rtx%s\n",
				g.Name, g.CCA, g.Flows, g.Bps/1e6, g.Retransmits, bg)
		}
	}
	if res.FCT != nil {
		fmt.Printf("\nopen-loop workload: %d flows opened, %d completed, %d still open\n",
			res.FCT.Opened, res.FCT.Completed, res.FCT.Open)
		for _, c := range res.FCT.Classes {
			if c.Count == 0 {
				fmt.Printf("  %-7s  no completions\n", c.Class)
				continue
			}
			fmt.Printf("  %-7s %6d flows %12s  FCT p50 %10v  p95 %10v  p99 %10v  mean %10v\n",
				c.Class, c.Count, units.ByteSize(c.Bytes).String(),
				c.P50.Round(time.Microsecond), c.P95.Round(time.Microsecond),
				c.P99.Round(time.Microsecond), c.Mean.Round(time.Microsecond))
		}
	}
	if len(res.Ports) > 0 {
		fmt.Printf("per-port results:\n")
		for _, pt := range res.Ports {
			fmt.Printf("  %-10s %10v  util %6.3f  drops %8d  peak %9d B  sojourn %v\n",
				pt.Name, pt.RateBps, pt.Utilization, pt.Dropped, pt.PeakQueueBytes,
				pt.SojournMean.Round(time.Microsecond))
		}
	}
	if fr := res.Fairness; fr != nil {
		fmt.Printf("\nfairness observatory (%v windows, %d samples):\n", fr.Window, fr.Windows)
		fmt.Printf("  Jain(t)       final %.4f  mean %.4f  min %.4f\n",
			fr.FinalJain, fr.MeanJain, fr.MinJain)
		if fr.Converged {
			fmt.Printf("  converged at  %v (Jain >= %.2f sustained %d windows)\n",
				fr.ConvergenceTime, fr.Detector.JainThreshold, fr.Detector.SustainWindows)
		} else {
			fmt.Printf("  converged at  never (Jain never sustained %.2f for %d windows)\n",
				fr.Detector.JainThreshold, fr.Detector.SustainWindows)
		}
		fmt.Printf("  time below %.2f  %v\n", fr.Detector.JainFloor, fr.TimeBelowFloor)
		for _, ff := range fr.Flows {
			ttf := "never"
			if ff.ReachedFair {
				ttf = ff.TimeToFair.String()
			}
			fmt.Printf("  flow %-3d %-6s share mean %.3f final %.3f  fair at %s\n",
				ff.ID, ff.CCA, ff.MeanShare, ff.FinalShare, ttf)
		}
		fmt.Printf("  episodes: %d\n", len(fr.Episodes))
		for _, ep := range fr.Episodes {
			state := "resolved"
			if !ep.Resolved {
				state = "unresolved at end"
			}
			fmt.Printf("    flow %d (%s) starved %v-%v mean share %.3f culprits %v (%s)\n",
				ep.FlowID, ep.CCA, ep.Start, ep.End, ep.MeanShare, ep.Culprits, state)
		}
	}
	fmt.Printf("events          %10d in %v wall\n", res.Events, res.Wall.Round(time.Millisecond))
}

// runDetailed wraps core.RunDetailed, converting an invariant-auditor
// violation (raised as a panic so the sweep runner can journal it) into a
// clean fatal error with the full structured report for interactive use.
func runDetailed(cfg experiment.Config, opts core.RunOptions) (res experiment.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, ok := r.(*audit.Violation)
			if !ok {
				panic(r)
			}
			err = v
		}
	}()
	return core.RunDetailed(cfg, opts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpfair:", err)
	os.Exit(1)
}
