// Command report generates EXPERIMENTS.md — the paper-vs-measured record —
// from one or more sweep result sets.
//
//	report -in results.json -out EXPERIMENTS.md
//	report -in results/b100m.json,results/b1g.json -figures -out EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/paper"
)

func main() {
	var (
		in      = flag.String("in", "results.json", "sweep results JSON (comma-separated list merges sets)")
		out     = flag.String("out", "EXPERIMENTS.md", "output markdown path ('-' for stdout)")
		figures = flag.Bool("figures", true, "append rendered figure panels")
	)
	flag.Parse()

	var all []experiment.Result
	var notes []string
	for _, path := range strings.Split(*in, ",") {
		rs, err := experiment.LoadFile(strings.TrimSpace(path))
		if err != nil {
			fatal(err)
		}
		all = append(all, rs.Results...)
		if rs.Note != "" {
			notes = append(notes, rs.Note)
		}
	}
	if len(all) == 0 {
		fatal(fmt.Errorf("no results in %s", *in))
	}

	s := experiment.Summarize(all)
	md := paper.Report(s, paper.ReportOptions{
		Note:           strings.Join(notes, "; "),
		IncludeFigures: *figures,
	})
	if *out == "-" {
		fmt.Print(md)
		return
	}
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "report: wrote %s (%d results summarized)\n", *out, len(all))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
