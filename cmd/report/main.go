// Command report generates EXPERIMENTS.md — the paper-vs-measured record —
// from one or more sweep result sets. A set may be a local file or an
// http(s) URL, e.g. a sweepd results endpoint — the daemon's GET
// /v1/sweeps/{id}/report serves this same render path, so fetching the
// results here and rendering locally produces the identical document.
//
//	report -in results.json -out EXPERIMENTS.md
//	report -in results/b100m.json,results/b1g.json -figures -out EXPERIMENTS.md
//	report -in http://localhost:8422/v1/sweeps/<id>/results -out -
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/paper"
)

func main() {
	var (
		in      = flag.String("in", "results.json", "sweep results JSON (comma-separated list merges sets)")
		out     = flag.String("out", "EXPERIMENTS.md", "output markdown path ('-' for stdout)")
		figures = flag.Bool("figures", true, "append rendered figure panels")
	)
	flag.Parse()

	var all []experiment.Result
	var notes []string
	for _, path := range strings.Split(*in, ",") {
		rs, err := loadSet(strings.TrimSpace(path))
		if err != nil {
			fatal(err)
		}
		all = append(all, rs.Results...)
		if rs.Note != "" {
			notes = append(notes, rs.Note)
		}
	}
	if len(all) == 0 {
		fatal(fmt.Errorf("no results in %s", *in))
	}

	s := experiment.Summarize(all)
	md := paper.Report(s, paper.ReportOptions{
		Note:           strings.Join(notes, "; "),
		IncludeFigures: *figures,
		FCTMatrix:      experiment.HarmFCTMatrix(all),
		FairnessTable:  experiment.FairnessTable(all),
	})
	if *out == "-" {
		fmt.Print(md)
		return
	}
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "report: wrote %s (%d results summarized)\n", *out, len(all))
}

// loadSet reads a ResultSet from a local path or, for http(s) sources such
// as a sweepd /v1/sweeps/{id}/results endpoint, over the network.
func loadSet(src string) (*experiment.ResultSet, error) {
	if !strings.HasPrefix(src, "http://") && !strings.HasPrefix(src, "https://") {
		return experiment.LoadFile(src)
	}
	resp, err := http.Get(src)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch %s: %s", src, resp.Status)
	}
	return experiment.ReadJSON(resp.Body)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
