// Command sweep runs the paper's measurement grid (Table 1: 9 CCA pairings
// × 3 AQMs × 6 buffer sizes × 5 bottleneck bandwidths) over the simulator
// and writes a JSON result set that cmd/figures renders into the paper's
// figures and tables. The grid subset is an experiment.GridSpec — the same
// type sweepd accepts over HTTP — and with -remote the command becomes a
// thin client of a running daemon, submitting the identical spec and saving
// the served bytes.
//
// Examples:
//
//	sweep -out results.json                        # scaled grid, 1 seed
//	sweep -out results.json -seeds 5 -workers 4    # 5 replicas each
//	sweep -out quick.json -bws 100Mbps,1Gbps -queues 2,16
//	sweep -table3 results.json                     # print Table 3 and exit
//	sweep -remote http://localhost:8422 -bws 1Gbps # run via sweepd
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/experiment"
	"repro/internal/failpoint"
	"repro/internal/svc"
	"repro/internal/telemetry"
)

func main() {
	var spec experiment.GridSpec
	spec.RegisterFlags(flag.CommandLine)
	var (
		out        = flag.String("out", "results.json", "output JSON path")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS; local mode only)")
		table3     = flag.String("table3", "", "render Table 3 from an existing results JSON and exit")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		checkpoint = flag.String("checkpoint", "", "JSONL journal path: append each finished result and, on restart, skip configurations already journaled (compacted on clean completion)")
		keepGoing  = flag.Bool("keep-going", true, "complete the sweep even if individual configurations fail; exit non-zero only when false")
		strict     = flag.Bool("strict", false, "exit non-zero if any configuration errored or was skipped by checkpoint resume (for CI smoke runs)")

		remote       = flag.String("remote", "", "submit the spec to a sweepd daemon at this base URL instead of simulating locally")
		printMetrics = flag.Bool("print-metrics", false, "after a -remote sweep, fetch the daemon's /metrics and print it to stdout")
		traceDir     = flag.String("trace-dir", "", "record flight-recorder telemetry for every configuration and write one <Config.Key()>.trace.ndjson per result into this directory (local mode only; reruns overwrite deterministically)")
		fairOut      = flag.String("fairness-out", "", "write the per-config fairness reports as NDJSON to this path (implies -fairness; same line shape as sweepd's /v1/sweeps/{id}/fairness; local mode only)")
		failpoints   = flag.String("failpoints", os.Getenv("FAILPOINTS"),
			"arm fault-injection points for durability testing, e.g. 'checkpoint.fsync=err(disk full)@hit=2' (default $FAILPOINTS)")
	)
	flag.Parse()

	if *failpoints != "" {
		if err := failpoint.Enable(*failpoints); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "sweep: failpoints armed: %s\n", *failpoints)
		}
	}

	if *table3 != "" {
		rs, err := experiment.LoadFile(*table3)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiment.Summarize(rs.Results).RenderTable3())
		return
	}

	if *remote != "" {
		runRemote(*remote, spec, *out, *quiet, *strict, *printMetrics)
		return
	}

	cfgs, err := spec.Expand()
	if err != nil {
		fatal(err)
	}
	if *traceDir != "" {
		// Tracing is observation-only and excluded from Config.Key(), so
		// traced results keep the same science identity (checkpoints and
		// caches still apply).
		for i := range cfgs {
			cfgs[i].Trace = true
		}
	}
	if *fairOut != "" {
		// Same deal as tracing: the observatory is observation-only and
		// excluded from Config.Key().
		for i := range cfgs {
			cfgs[i].Fairness = true
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d configurations\n", len(cfgs))

	start := time.Now()
	var onProgress func(experiment.Progress)
	if !*quiet {
		// Perf telemetry alongside the science: per-run simulator speed
		// (events/sec of wall time) and the process's peak heap so event-core
		// regressions are visible from the CLI. onProgress is serialized by
		// the runner, so peakHeap needs no locking.
		var peakHeap uint64
		onProgress = func(p experiment.Progress) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > peakHeap {
				peakHeap = ms.HeapInuse
			}
			evRate := 0.0
			if p.Last.Wall > 0 {
				evRate = float64(p.Last.Events) / p.Last.Wall.Seconds()
			}
			status := fmt.Sprintf("u=%.3f J=%.3f", p.Last.Utilization, p.Last.Jain)
			if p.Last.Errored() {
				status = "ERROR " + p.Last.Error
			}
			fmt.Fprintf(os.Stderr, "[%4d/%4d] %-55s %s %6.2fMev/s heap=%dMiB skip=%d err=%d (%v)\n",
				p.Done, p.Total, p.LastID, status,
				evRate/1e6, peakHeap>>20, p.Skipped, p.Errored,
				time.Since(start).Round(time.Second))
		}
	}
	runOpts := experiment.RunAllOptions{
		Workers:    *workers,
		OnProgress: onProgress,
		KeepGoing:  *keepGoing,
	}
	skippedAhead := 0
	var ck *experiment.Checkpoint
	if *checkpoint != "" {
		ck, err = experiment.OpenCheckpoint(*checkpoint)
		if err != nil {
			fatal(err)
		}
		defer ck.Close()
		if n := ck.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "sweep: resuming, %d results already journaled in %s\n", n, *checkpoint)
		}
		runOpts.Checkpoint = ck
		for _, c := range cfgs {
			if _, ok := ck.Lookup(c.Key()); ok {
				skippedAhead++
			}
		}
	}
	results, err := experiment.RunAllOpts(cfgs, runOpts)
	if err != nil {
		fatal(err)
	}
	errored := countErrored(results)
	if errored > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d configurations errored (kept going)\n", errored, len(cfgs))
	}
	if ck != nil && errored == 0 {
		// Successful completion: fold the append-only journal down to one
		// line per live config so it stops growing across resumes.
		if err := ck.Compact(); err != nil {
			fatal(err)
		}
	}

	if *traceDir != "" {
		if err := writeTraces(*traceDir, results); err != nil {
			fatal(err)
		}
	}
	if *fairOut != "" {
		if err := writeFairness(*fairOut, results); err != nil {
			fatal(err)
		}
	}

	if err := experiment.SaveFile(*out, &experiment.ResultSet{Note: spec.Note(), Results: results}); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: wrote %s in %v\n", *out, time.Since(start).Round(time.Second))

	fmt.Println()
	fmt.Print(experiment.Summarize(results).RenderTable3())

	if *strict && (errored > 0 || skippedAhead > 0) {
		fatal(fmt.Errorf("strict: %d errored, %d checkpoint-skipped configurations", errored, skippedAhead))
	}
}

// runRemote drives a sweepd daemon with the same spec the local path would
// run: submit, stream progress, save the served result bytes verbatim (so
// the file is byte-identical to the daemon's cache, which is byte-identical
// to a local sweep), and print Table 3.
func runRemote(base string, spec experiment.GridSpec, out string, quiet, strict, printMetrics bool) {
	start := time.Now()
	client := &svc.Client{Base: base}
	st, err := client.Submit(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: remote job %s on %s: %d configurations, %d cached\n",
		st.ID, base, st.Total, st.Cached)

	onEvent := func(ev svc.Event) {
		if quiet {
			return
		}
		status := fmt.Sprintf("u=%.3f J=%.3f", ev.Utilization, ev.Jain)
		if ev.Error != "" {
			status = "ERROR " + ev.Error
		}
		src := "sim"
		if ev.Cached {
			src = "hit"
		}
		fmt.Fprintf(os.Stderr, "[%4d/%4d] %-55s %s %s (%v)\n",
			ev.Done, ev.Total, ev.ConfigID, status, src, time.Since(start).Round(time.Second))
	}
	if err := client.Stream(context.Background(), st.ID, onEvent); err != nil {
		fatal(err)
	}
	st, err = client.Status(st.ID)
	if err != nil {
		fatal(err)
	}
	if st.State != svc.StateDone {
		fatal(fmt.Errorf("remote job %s ended in state %s (%d/%d done)", st.ID, st.State, st.Done, st.Total))
	}
	if st.Errored > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d configurations errored remotely\n", st.Errored, st.Total)
	}

	raw, err := client.Results(st.ID)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: wrote %s in %v\n", out, time.Since(start).Round(time.Second))

	rs, err := experiment.LoadFile(out)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(experiment.Summarize(rs.Results).RenderTable3())

	if printMetrics {
		metrics, err := client.Metrics()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(metrics)
	}
	if strict && st.Errored > 0 {
		fatal(fmt.Errorf("strict: %d errored configurations", st.Errored))
	}
}

// writeTraces writes each traced result's telemetry as NDJSON, one file per
// configuration named by its science key so a rerun of the same spec lands
// on the same paths. Checkpoint-skipped and errored results carry no trace
// and are silently absent.
func writeTraces(dir string, results []experiment.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for i := range results {
		r := &results[i]
		if r.Trace == nil {
			continue
		}
		path := filepath.Join(dir, r.Config.Key()+".trace.ndjson")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := telemetry.EncodeNDJSON(f, r.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "sweep: wrote %d telemetry traces to %s\n", n, dir)
	return nil
}

// writeFairness writes the per-config fairness reports as NDJSON in grid
// order, one experiment.FairnessLine per fairness-armed result — the same
// byte shape sweepd's GET /v1/sweeps/{id}/fairness streams, so a local run
// and a daemon round-trip of the same spec diff clean. Checkpoint-skipped
// results from a fairness-off journal carry no report and are silently
// absent.
func writeFairness(path string, results []experiment.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	n := 0
	for i := range results {
		r := &results[i]
		if r.Fairness == nil {
			continue
		}
		line := experiment.FairnessLine{Config: r.Config.Key(), ID: r.Config.ID(), Fairness: r.Fairness}
		if err := enc.Encode(line); err != nil {
			f.Close()
			return err
		}
		n++
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: wrote %d fairness reports to %s\n", n, path)
	return nil
}

func countErrored(results []experiment.Result) int {
	n := 0
	for _, r := range results {
		if r.Errored() {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
