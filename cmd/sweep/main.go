// Command sweep runs the paper's measurement grid (Table 1: 9 CCA pairings
// × 3 AQMs × 6 buffer sizes × 5 bottleneck bandwidths) over the simulator
// and writes a JSON result set that cmd/figures renders into the paper's
// figures and tables.
//
// Examples:
//
//	sweep -out results.json                        # scaled grid, 1 seed
//	sweep -out results.json -seeds 5 -workers 4    # 5 replicas each
//	sweep -out quick.json -bws 100Mbps,1Gbps -queues 2,16
//	sweep -table3 results.json                     # print Table 3 and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/units"
)

func main() {
	var (
		out      = flag.String("out", "results.json", "output JSON path")
		seeds    = flag.Int("seeds", 1, "replica seeds per configuration (paper used 5)")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		paper    = flag.Bool("paper-scale", false, "full 200s runs and uncapped flow counts")
		bwList   = flag.String("bws", "", "comma-separated bandwidth subset (default: all five paper BWs)")
		queues   = flag.String("queues", "", "comma-separated buffer multipliers (default: 0.5,1,2,4,8,16)")
		aqms     = flag.String("aqms", "", "comma-separated AQM subset (default: fifo,red,fq_codel)")
		pairs    = flag.String("pairings", "", "comma-separated pairing subset like bbr1:cubic,reno:reno (default: all nine)")
		duration = flag.Duration("duration", 0, "override simulated duration for every run")
		table3   = flag.String("table3", "", "render Table 3 from an existing results JSON and exit")
		quiet    = flag.Bool("quiet", false, "suppress progress output")

		faultSpec  = flag.String("faults", "", "fault profile for every run: preset list (e.g. flap or ge:pgb=0.01+flap:at=10s), inline JSON, or @file.json")
		configs    = flag.Int("configs", 0, "truncate the grid to its first N configurations (0 = all; for smoke tests)")
		checkpoint = flag.String("checkpoint", "", "JSONL journal path: append each finished result and, on restart, skip configurations already journaled")
		keepGoing  = flag.Bool("keep-going", true, "complete the sweep even if individual configurations fail; exit non-zero only when false")
		maxEvents  = flag.Uint64("max-events", 0, "per-run watchdog: abort a configuration after this many simulator events (0 = unlimited)")
		maxWall    = flag.Duration("max-wall", 0, "per-run watchdog: abort a configuration after this much wall time (0 = unlimited)")
		auditRun   = flag.Bool("audit", false, "enable the runtime invariant auditor on every run; violations become errored results")
		strict     = flag.Bool("strict", false, "exit non-zero if any configuration errored or was skipped by checkpoint resume (for CI smoke runs)")
	)
	flag.Parse()

	if *table3 != "" {
		rs, err := experiment.LoadFile(*table3)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiment.Summarize(rs.Results).RenderTable3())
		return
	}

	opts := experiment.PaperGrid(seedList(*seeds)...)
	opts.PaperScale = *paper
	if *bwList != "" {
		opts.Bandwidths = nil
		for _, s := range strings.Split(*bwList, ",") {
			bw, err := units.ParseBandwidth(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			opts.Bandwidths = append(opts.Bandwidths, bw)
		}
	}
	if *queues != "" {
		opts.QueueMults = nil
		for _, s := range strings.Split(*queues, ",") {
			q, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(err)
			}
			opts.QueueMults = append(opts.QueueMults, q)
		}
	}
	if *aqms != "" {
		opts.AQMs = nil
		for _, s := range strings.Split(*aqms, ",") {
			k, err := aqm.ParseKind(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			opts.AQMs = append(opts.AQMs, k)
		}
	}
	if *pairs != "" {
		opts.Pairings = nil
		for _, s := range strings.Split(*pairs, ",") {
			parts := strings.SplitN(strings.TrimSpace(s), ":", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad pairing %q (want cca1:cca2)", s))
			}
			c1, err := cca.Parse(parts[0])
			if err != nil {
				fatal(err)
			}
			c2, err := cca.Parse(parts[1])
			if err != nil {
				fatal(err)
			}
			opts.Pairings = append(opts.Pairings, experiment.Pairing{CCA1: c1, CCA2: c2})
		}
	}

	profile, err := faults.Parse(*faultSpec)
	if err != nil {
		fatal(err)
	}

	cfgs := experiment.Grid(opts)
	if *configs > 0 && *configs < len(cfgs) {
		cfgs = cfgs[:*configs]
	}
	for i := range cfgs {
		if *duration > 0 {
			cfgs[i].Duration = *duration
		}
		cfgs[i].Faults = profile
		cfgs[i].MaxEvents = *maxEvents
		cfgs[i].MaxWall = *maxWall
		cfgs[i].Audit = *auditRun
	}
	fmt.Fprintf(os.Stderr, "sweep: %d configurations\n", len(cfgs))

	start := time.Now()
	var onProgress func(experiment.Progress)
	if !*quiet {
		// Perf telemetry alongside the science: per-run simulator speed
		// (events/sec of wall time) and the process's peak heap so event-core
		// regressions are visible from the CLI. onProgress is serialized by
		// the runner, so peakHeap needs no locking.
		var peakHeap uint64
		onProgress = func(p experiment.Progress) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > peakHeap {
				peakHeap = ms.HeapInuse
			}
			evRate := 0.0
			if p.Last.Wall > 0 {
				evRate = float64(p.Last.Events) / p.Last.Wall.Seconds()
			}
			status := fmt.Sprintf("u=%.3f J=%.3f", p.Last.Utilization, p.Last.Jain)
			if p.Last.Errored() {
				status = "ERROR " + p.Last.Error
			}
			fmt.Fprintf(os.Stderr, "[%4d/%4d] %-55s %s %6.2fMev/s heap=%dMiB skip=%d err=%d (%v)\n",
				p.Done, p.Total, p.LastID, status,
				evRate/1e6, peakHeap>>20, p.Skipped, p.Errored,
				time.Since(start).Round(time.Second))
		}
	}
	runOpts := experiment.RunAllOptions{
		Workers:    *workers,
		OnProgress: onProgress,
		KeepGoing:  *keepGoing,
	}
	skippedAhead := 0
	if *checkpoint != "" {
		ck, err := experiment.OpenCheckpoint(*checkpoint)
		if err != nil {
			fatal(err)
		}
		defer ck.Close()
		if n := ck.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "sweep: resuming, %d results already journaled in %s\n", n, *checkpoint)
		}
		runOpts.Checkpoint = ck
		for _, c := range cfgs {
			if _, ok := ck.Lookup(c.Normalize().ID()); ok {
				skippedAhead++
			}
		}
	}
	results, err := experiment.RunAllOpts(cfgs, runOpts)
	if err != nil {
		fatal(err)
	}
	errored := countErrored(results)
	if errored > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d configurations errored (kept going)\n", errored, len(cfgs))
	}

	note := fmt.Sprintf("grid sweep: %d configs, seeds=%d, paperScale=%v, generated by cmd/sweep",
		len(cfgs), *seeds, *paper)
	if id := profile.ID(); id != "" {
		note += ", faults=" + id
	}
	if err := experiment.SaveFile(*out, &experiment.ResultSet{Note: note, Results: results}); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: wrote %s in %v\n", *out, time.Since(start).Round(time.Second))

	fmt.Println()
	fmt.Print(experiment.Summarize(results).RenderTable3())

	if *strict && (errored > 0 || skippedAhead > 0) {
		fatal(fmt.Errorf("strict: %d errored, %d checkpoint-skipped configurations", errored, skippedAhead))
	}
}

func countErrored(results []experiment.Result) int {
	n := 0
	for _, r := range results {
		if r.Errored() {
			n++
		}
	}
	return n
}

func seedList(n int) []uint64 {
	if n < 1 {
		n = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
