#!/bin/sh
# smoke-cluster: end-to-end crash-tolerance check of sweepd cluster mode
# (make smoke-cluster).
#
# Starts one coordinator and three workers on ephemeral ports, submits a
# 504-configuration grid, SIGKILLs one worker mid-sweep, and proves the
# cluster contract:
#
#   1. the sweep completes despite the killed worker: its unfinished lease
#      is re-queued (visible on /metrics) and the survivors absorb it;
#   2. the merged ResultSet is byte-identical to a direct single-process
#      cmd/sweep run of the same GridSpec (modulo wall_ns);
#   3. every configuration is uploaded exactly once
#      (sweepd_cluster_results_total equals the grid size — retries and
#      stolen double-runs land in the duplicate counter, never the results);
#   4. sweepd -merge folds the per-worker journals into one cache journal
#      holding exactly one line per configuration;
#   5. graceful shutdown: surviving workers release their leases (never the
#      expiry path) and the coordinator compacts its journal to one line
#      per configuration.
#
# Nonzero exit on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
coord_pid=""
w1_pid=""
w2_pid=""
w3_pid=""
client_pid=""
cleanup() {
    for p in $client_pid $w1_pid $w2_pid $w3_pid $coord_pid; do
        kill "$p" 2>/dev/null || true
    done
    for p in $client_pid $w1_pid $w2_pid $w3_pid $coord_pid; do
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke-cluster: FAIL: $*" >&2
    for log in coordinator w1 w2 w3; do
        [ -f "$tmp/$log.log" ] && tail -5 "$tmp/$log.log" | sed "s/^/smoke-cluster: $log: /" >&2
    done
    exit 1
}

metric() { # metric <name> — scrape one counter/gauge from the coordinator
    curl -sf "$base/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

# 6 queues x 3 AQMs x 7 pairings x 4 seeds = 504 configurations, each cheap
# (100Mbps, 4s) so the whole grid costs seconds while still leaving a wide
# window to kill a worker mid-sweep.
SPEC="-bws 100Mbps -queues 0.5,1,2,4,8,16 -aqms fifo,red,codel \
 -pairings reno:reno,cubic:cubic,bbr1:bbr1,bbr2:bbr2,reno:cubic,cubic:bbr1,reno:bbr1 \
 -seeds 4 -duration 4s"
NCONF=504

echo "smoke-cluster: building sweep and sweepd" >&2
$GO build -o "$tmp/sweep" ./cmd/sweep
$GO build -o "$tmp/sweepd" ./cmd/sweepd

echo "smoke-cluster: direct single-process sweep (the byte-identity oracle)" >&2
"$tmp/sweep" $SPEC -quiet -strict -out "$tmp/direct.json" >/dev/null

echo "smoke-cluster: starting coordinator + 3 workers" >&2
"$tmp/sweepd" -coordinator -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -journal "$tmp/coordinator.ckpt.jsonl" \
    -lease-ttl 3s -heartbeat 500ms -lease-batch 8 2>"$tmp/coordinator.log" &
coord_pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "coordinator did not come up"
    sleep 0.1
done
base="http://$(cat "$tmp/addr")"

"$tmp/sweepd" -join "$base" -name w1 -journal "$tmp/w1.ckpt.jsonl" 2>"$tmp/w1.log" &
w1_pid=$!
"$tmp/sweepd" -join "$base" -name w2 -journal "$tmp/w2.ckpt.jsonl" 2>"$tmp/w2.log" &
w2_pid=$!
"$tmp/sweepd" -join "$base" -name w3 -journal "$tmp/w3.ckpt.jsonl" 2>"$tmp/w3.log" &
w3_pid=$!

echo "smoke-cluster: submitting the grid via $base" >&2
"$tmp/sweep" $SPEC -quiet -remote "$base" -out "$tmp/served.json" >/dev/null 2>&1 &
client_pid=$!

echo "smoke-cluster: waiting for the sweep to reach ~10% to kill w1 mid-lease" >&2
i=0
while :; do
    done_n=$(metric sweepd_cluster_results_total || echo 0)
    [ "${done_n:-0}" -ge 50 ] 2>/dev/null && break
    if ! kill -0 "$client_pid" 2>/dev/null; then
        fail "client finished before the kill window (results=$done_n)"
    fi
    i=$((i + 1))
    [ "$i" -gt 600 ] && fail "sweep never reached the kill window (results=$done_n)"
    sleep 0.1
done

echo "smoke-cluster: SIGKILL w1 at $done_n/$NCONF results" >&2
kill -9 "$w1_pid" 2>/dev/null || fail "w1 already gone before the kill"
wait "$w1_pid" 2>/dev/null || true
w1_pid=""

echo "smoke-cluster: waiting for the surviving workers to finish the sweep" >&2
wait "$client_pid" || fail "remote sweep client exited non-zero after the kill"
client_pid=""

echo "smoke-cluster: byte-identity vs the direct sweep (modulo wall_ns)" >&2
grep -v '"wall_ns"' "$tmp/direct.json" >"$tmp/direct.norm"
grep -v '"wall_ns"' "$tmp/served.json" >"$tmp/served.norm"
cmp -s "$tmp/direct.norm" "$tmp/served.norm" || {
    diff "$tmp/direct.norm" "$tmp/served.norm" | head -40 >&2
    fail "cluster ResultSet differs from the direct single-process sweep"
}

echo "smoke-cluster: lease/re-queue/steal counters on /metrics" >&2
results=$(metric sweepd_cluster_results_total)
[ "$results" = "$NCONF" ] ||
    fail "results_total=$results, want $NCONF (every config uploaded exactly once)"
dead=$(metric sweepd_cluster_workers_dead_total)
[ "${dead:-0}" -ge 1 ] || fail "workers_dead_total=$dead, want >= 1 (the SIGKILLed worker)"
requeued=$(metric sweepd_cluster_configs_requeued_total)
[ "${requeued:-0}" -ge 1 ] ||
    fail "configs_requeued_total=$requeued, want >= 1 (the killed worker's in-flight lease)"
dups=$(metric sweepd_cluster_duplicate_results_total)
echo "smoke-cluster: kill absorbed (dead=$dead requeued=$requeued duplicates=${dups:-0})" >&2

echo "smoke-cluster: merging per-worker journals with sweepd -merge" >&2
"$tmp/sweepd" -merge -journal "$tmp/merged.ckpt.jsonl" \
    "$tmp/w1.ckpt.jsonl" "$tmp/w2.ckpt.jsonl" "$tmp/w3.ckpt.jsonl" 2>>"$tmp/coordinator.log" ||
    fail "sweepd -merge exited non-zero"
merged=$(grep -c '^r ' "$tmp/merged.ckpt.jsonl")
[ "$merged" = "$NCONF" ] ||
    fail "merged journal has $merged records, want $NCONF (one per configuration)"

echo "smoke-cluster: graceful worker shutdown (release, never expiry)" >&2
expired_before=$(metric sweepd_cluster_leases_expired_total)
kill "$w2_pid" && wait "$w2_pid" || fail "w2 exited non-zero on SIGTERM"
w2_pid=""
kill "$w3_pid" && wait "$w3_pid" || fail "w3 exited non-zero on SIGTERM"
w3_pid=""
expired_after=$(metric sweepd_cluster_leases_expired_total)
[ "$expired_before" = "$expired_after" ] ||
    fail "graceful worker shutdown tripped the lease-expiry path ($expired_before -> $expired_after)"

echo "smoke-cluster: coordinator shutdown (journal compaction)" >&2
kill "$coord_pid"
wait "$coord_pid" || fail "coordinator exited non-zero on SIGTERM"
coord_pid=""
lines=$(grep -c '^r ' "$tmp/coordinator.ckpt.jsonl") ||
    fail "coordinator journal missing after shutdown"
[ "$lines" = "$NCONF" ] ||
    fail "coordinator journal not compacted: $lines records, want $NCONF"

echo "smoke-cluster: OK (sweep survived SIGKILL, bytes = direct, $NCONF results exactly once, journals merged + compacted)" >&2
