#!/bin/sh
# smoke-trace: end-to-end check of the flight-recorder telemetry pipeline
# (make trace-smoke).
#
# Exercises the full recording → export → render chain:
#
#   1. tcpfair -telemetry-out records a bbr1-vs-cubic run and writes its
#      telemetry as NDJSON; the file must contain flow rings, port rings,
#      and cwnd samples;
#   2. cmd/timeline renders the recording into cwnd and queue-occupancy
#      sparkline timelines;
#   3. sweep -trace-dir writes one <Config.Key()>.trace.ndjson per
#      configuration, each of which timeline can render;
#   4. sweepd -trace serves the same telemetry over
#      GET /v1/sweeps/{id}/trace, and timeline renders the multi-config
#      stream with per-config headings;
#   5. tracing must not perturb the science: the traced sweep's results are
#      byte-identical (modulo wall_ns) to an untraced sweep of the same spec.
#
# Nonzero exit on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke-trace: FAIL: $*" >&2
    [ -f "$tmp/sweepd.log" ] && sed 's/^/smoke-trace: sweepd: /' "$tmp/sweepd.log" >&2
    exit 1
}

echo "smoke-trace: building tcpfair, timeline, sweep, sweepd" >&2
$GO build -o "$tmp/tcpfair" ./cmd/tcpfair
$GO build -o "$tmp/timeline" ./cmd/timeline
$GO build -o "$tmp/sweep" ./cmd/sweep
$GO build -o "$tmp/sweepd" ./cmd/sweepd

echo "smoke-trace: recording a bbr1-vs-cubic run" >&2
"$tmp/tcpfair" -cca1 bbr1 -cca2 cubic -aqm fifo -queue 4 -bw 100Mbps \
    -duration 4s -quiet -audit -telemetry-out "$tmp/run.ndjson" >/dev/null 2>&1
[ -s "$tmp/run.ndjson" ] || fail "tcpfair wrote no telemetry"
grep -q '"ring":"flow:' "$tmp/run.ndjson" || fail "telemetry has no flow rings"
grep -q '"ring":"port:' "$tmp/run.ndjson" || fail "telemetry has no port rings"

echo "smoke-trace: rendering the recording" >&2
"$tmp/timeline" -in "$tmp/run.ndjson" >"$tmp/run.timeline"
grep -q "cwnd" "$tmp/run.timeline" || fail "timeline has no cwnd track"
grep -q "queue" "$tmp/run.timeline" || fail "timeline has no queue-occupancy track"

SPEC="-bws 100Mbps -queues 2 -aqms fifo -pairings reno:reno,cubic:cubic -duration 4s"

echo "smoke-trace: sweep -trace-dir (per-config trace files)" >&2
"$tmp/sweep" $SPEC -quiet -strict -out "$tmp/traced.json" \
    -trace-dir "$tmp/traces" >/dev/null
n=$(ls "$tmp/traces"/*.trace.ndjson 2>/dev/null | wc -l)
[ "$n" -eq 2 ] || fail "sweep -trace-dir wrote $n trace files, want 2"
for f in "$tmp/traces"/*.trace.ndjson; do
    "$tmp/timeline" -in "$f" >/dev/null || fail "timeline could not render $f"
done

echo "smoke-trace: tracing must not change the science" >&2
"$tmp/sweep" $SPEC -quiet -strict -out "$tmp/plain.json" >/dev/null
grep -v '"wall_ns"' "$tmp/traced.json" >"$tmp/traced.norm"
grep -v '"wall_ns"' "$tmp/plain.json" >"$tmp/plain.norm"
cmp -s "$tmp/traced.norm" "$tmp/plain.norm" || {
    diff "$tmp/traced.norm" "$tmp/plain.norm" | head -40 >&2
    fail "traced sweep results differ from the untraced sweep"
}

echo "smoke-trace: sweepd -trace serves /v1/sweeps/{id}/trace" >&2
"$tmp/sweepd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -trace \
    2>"$tmp/sweepd.log" &
pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not come up"
    sleep 0.1
done
base="http://$(cat "$tmp/addr")"
# Submit via the CLI client and read the job id off its progress banner
# ("sweep: remote job <id> on <base>: ...").
id=$("$tmp/sweep" $SPEC -quiet -strict -remote "$base" -out "$tmp/served.json" 2>&1 >/dev/null \
    | tee "$tmp/remote.log" | sed -n 's/.*remote job \([a-zA-Z0-9_-]*\) on.*/\1/p' | head -1)
[ -n "$id" ] || fail "could not extract the job id from sweep -remote output"
curl -sf "$base/v1/sweeps/$id/trace" >"$tmp/served.trace.ndjson" ||
    fail "trace endpoint returned an error"
headers=$(grep -c '^{"config":' "$tmp/served.trace.ndjson") || true
[ "$headers" -eq 2 ] || fail "trace stream has $headers config headers, want 2"
"$tmp/timeline" -in "$tmp/served.trace.ndjson" >"$tmp/served.timeline"
sections=$(grep -c '^=== config ' "$tmp/served.timeline") || true
[ "$sections" -eq 2 ] || fail "timeline rendered $sections config sections, want 2"

kill "$pid"
wait "$pid" || fail "daemon exited non-zero on SIGTERM"
pid=""

echo "smoke-trace: OK (recorded, rendered, per-config files, served stream, science unchanged)" >&2
