#!/bin/sh
# smoke-obs: end-to-end check of the fairness observatory (make smoke-obs).
#
# Exercises the windowed Jain/convergence layer through every surface it
# ships in:
#
#   1. tcpfair -fairness on a homogeneous CUBIC dumbbell prints a finite
#      convergence time and zero starvation episodes;
#   2. the paper's central unfairness case — BBRv1 vs CUBIC in a deep
#      (4xBDP) FIFO — reports exactly one starvation episode with the CUBIC
#      flow as victim and the BBR flow as culprit;
#   3. a fairness-armed sweep served by sweepd is byte-identical on
#      /v1/sweeps/{id}/fairness to the NDJSON `sweep -fairness-out` writes
#      locally for the same grid, and the armed results themselves stay
#      byte-identical science (modulo wall_ns) to a plain run;
#   4. cmd/report renders the fairness-dynamics table from the armed result
#      set, and the daemon /metrics exposes the convergence histogram and
#      the build_info gauge;
#   5. cmd/timeline renders a jain(t) sparkline from recorded telemetry.
#
# Nonzero exit on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke-obs: FAIL: $*" >&2
    [ -f "$tmp/sweepd.log" ] && sed 's/^/smoke-obs: sweepd: /' "$tmp/sweepd.log" >&2
    exit 1
}

echo "smoke-obs: building tcpfair, sweep, sweepd, report and timeline" >&2
$GO build -o "$tmp/tcpfair" ./cmd/tcpfair
$GO build -o "$tmp/sweep" ./cmd/sweep
$GO build -o "$tmp/sweepd" ./cmd/sweepd
$GO build -o "$tmp/report" ./cmd/report
$GO build -o "$tmp/timeline" ./cmd/timeline

echo "smoke-obs: homogeneous CUBIC pair converges" >&2
"$tmp/tcpfair" -bw 100Mbps -queue 2 -cca1 cubic -cca2 cubic -duration 5s \
    -fairness -quiet >"$tmp/cubic.txt"
grep -q 'fairness observatory' "$tmp/cubic.txt" ||
    fail "tcpfair -fairness printed no observatory block"
grep -q 'converged at  never' "$tmp/cubic.txt" &&
    fail "homogeneous CUBIC pair never converged"
grep -q 'converged at' "$tmp/cubic.txt" ||
    fail "no convergence line in the observatory block"
grep -q 'episodes: 0' "$tmp/cubic.txt" ||
    fail "homogeneous CUBIC pair reported starvation episodes"

echo "smoke-obs: BBRv1 starves CUBIC in a 4xBDP FIFO" >&2
"$tmp/tcpfair" -bw 100Mbps -queue 4 -cca1 bbr1 -cca2 cubic -duration 10s \
    -fairness -quiet >"$tmp/bbr.txt"
grep -q 'episodes: 1' "$tmp/bbr.txt" ||
    fail "deep-FIFO BBR-vs-CUBIC did not report exactly one starvation episode"
grep -q 'flow 2 (cubic) starved .* culprits \[1\]' "$tmp/bbr.txt" ||
    fail "episode line missing the cubic victim or the bbr1 culprit"

SPEC="-bws 50Mbps -queues 2,4 -aqms fifo -pairings bbr1:cubic -duration 2s"

echo "smoke-obs: local fairness NDJSON via sweep -fairness-out" >&2
"$tmp/sweep" $SPEC -quiet -strict -fairness-out "$tmp/direct.ndjson" \
    -out "$tmp/armed.json" >/dev/null
lines=$(wc -l <"$tmp/direct.ndjson")
[ "$lines" = "2" ] || fail "expected 2 fairness report lines, got $lines"
grep -q '"jain"' "$tmp/direct.ndjson" || fail "fairness NDJSON carries no Jain series"

echo "smoke-obs: armed results are byte-identical science to a plain sweep" >&2
"$tmp/sweep" $SPEC -quiet -strict -out "$tmp/plain.json" >/dev/null
grep -v '"wall_ns"' "$tmp/plain.json" >"$tmp/plain.norm"
# Drop the additive fairness block (brace-matched, it is nested) and the
# wall-clock field; everything left must match the plain run byte for byte.
awk '/"fairness": \{/ { skip = 1; depth = 0 }
     skip { depth += gsub(/\{/, "{") - gsub(/\}/, "}")
            if (depth == 0) skip = 0; next }
     { print }' "$tmp/armed.json" | grep -v '"wall_ns"' >"$tmp/armed.norm"
cmp -s "$tmp/plain.norm" "$tmp/armed.norm" || {
    diff "$tmp/plain.norm" "$tmp/armed.norm" | head -40 >&2
    fail "arming the observatory changed the science bytes"
}

echo "smoke-obs: served fairness stream via sweepd -fairness" >&2
"$tmp/sweepd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -journal "$tmp/journal.ckpt.jsonl" -fairness 2>"$tmp/sweepd.log" &
pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not come up"
    sleep 0.1
done
base="http://$(cat "$tmp/addr")"
job=$("$tmp/sweep" $SPEC -quiet -strict -remote "$base" -out "$tmp/served.json" 2>&1 >/dev/null \
    | sed -n 's/.*remote job \([a-zA-Z0-9_-]*\) on.*/\1/p' | head -1)
[ -n "$job" ] || fail "could not extract the job id from sweep -remote output"

curl -sf "$base/v1/sweeps/$job/fairness" >"$tmp/served.ndjson" ||
    fail "daemon /fairness endpoint failed"
cmp -s "$tmp/direct.ndjson" "$tmp/served.ndjson" || {
    diff "$tmp/direct.ndjson" "$tmp/served.ndjson" | head -40 >&2
    fail "served fairness stream differs from the local -fairness-out file"
}

echo "smoke-obs: convergence histogram and build_info on /metrics" >&2
curl -sf "$base/metrics" >"$tmp/metrics.txt" || fail "daemon /metrics failed"
grep -q '^sweepd_build_info{version=' "$tmp/metrics.txt" ||
    fail "/metrics missing the build_info gauge"
grep -q '^# TYPE sweepd_fairness_convergence_seconds histogram' "$tmp/metrics.txt" ||
    fail "/metrics missing the convergence-time histogram"
grep -q '^sweepd_fairness_episodes_total' "$tmp/metrics.txt" ||
    fail "/metrics missing the episode counter"

echo "smoke-obs: fairness dynamics table via cmd/report" >&2
"$tmp/report" -in "$tmp/armed.json" -figures=false -out "$tmp/report.md" 2>/dev/null
grep -q '^## Fairness dynamics' "$tmp/report.md" ||
    fail "cmd/report rendered no fairness-dynamics section"
grep -q 'BBR1 vs CUBIC' "$tmp/report.md" ||
    fail "fairness table missing the swept pairing"

echo "smoke-obs: jain(t) sparkline via cmd/timeline" >&2
"$tmp/tcpfair" -bw 100Mbps -queue 2 -cca1 cubic -cca2 cubic -duration 3s \
    -telemetry-out "$tmp/run.ndjson" -quiet >/dev/null
"$tmp/timeline" -in "$tmp/run.ndjson" >"$tmp/timeline.txt"
grep -q 'jain(t)' "$tmp/timeline.txt" ||
    fail "cmd/timeline rendered no jain(t) sparkline"

echo "smoke-obs: OK (convergence + starvation scenarios, served = local fairness stream, science bytes unchanged, report/metrics/timeline rendered)" >&2
