// Command dropcfg filters configurations out of a sweep ResultSet JSON and
// canonicalizes what remains so two result files can be compared
// byte-for-byte after removing configurations that legitimately differ —
// e.g. a poison configuration the cluster quarantined as an errored Result
// while the direct single-process oracle simulated it fine. Wall-clock
// fields measure the machine, not the science, and are zeroed.
//
//	dropcfg -in served.json -out served.norm.json \
//	    -drop cubic-vs-cubic_red_4bdp_100Mbps_seed1
//
// With -expect-error, every dropped configuration must be present in the
// input AND carry an Error containing the given substring; the tool exits
// non-zero otherwise. This lets shell smoke tests assert "the poison config
// was quarantined, everything else is byte-identical" without a JSON parser.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	var (
		in     = flag.String("in", "", "input ResultSet JSON (required)")
		out    = flag.String("out", "", "output path for the filtered, canonicalized ResultSet (required)")
		drop   = flag.String("drop", "", "comma-separated Config.ID()s to remove (each must be present in the input)")
		expect = flag.String("expect-error", "", "require every dropped result's Error to contain this substring")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("-in and -out are required"))
	}

	rs, err := experiment.LoadFile(*in)
	if err != nil {
		fatal(err)
	}

	want := map[string]bool{} // ID -> seen in input
	for _, id := range strings.Split(*drop, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = false
		}
	}

	kept := rs.Results[:0]
	for _, r := range rs.Results {
		id := r.Config.ID()
		if _, dropIt := want[id]; dropIt {
			want[id] = true
			if *expect != "" && !strings.Contains(r.Error, *expect) {
				fatal(fmt.Errorf("dropped config %s: error %q does not contain %q", id, r.Error, *expect))
			}
			continue
		}
		r.Wall = 0
		kept = append(kept, r)
	}
	for id, seen := range want {
		if !seen {
			fatal(fmt.Errorf("config %s not present in %s", id, *in))
		}
	}
	rs.Results = kept

	if err := experiment.SaveFile(*out, rs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dropcfg: wrote %s (%d results kept, %d dropped)\n", *out, len(kept), len(want))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dropcfg:", err)
	os.Exit(1)
}
