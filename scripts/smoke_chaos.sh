#!/bin/sh
# smoke-chaos: end-to-end durability check of sweepd under injected faults
# (make smoke-chaos).
#
# Starts one coordinator (with fsync failures armed on its journal) and two
# workers in crash-restart loops (armed to die with exit 7 whenever they
# lease one designated poison configuration), submits a 12-configuration
# grid, and proves the durability contract:
#
#   1. the poison configuration kills its worker 3 times, exhausts the
#      retry budget, and is quarantined as a structured errored Result
#      ("sweepd: quarantined ..."), visible on /metrics;
#   2. every other configuration is byte-identical to a direct
#      single-process cmd/sweep run of the same GridSpec (modulo wall_ns),
#      despite the worker crashes and the journal outage;
#   3. the injected fsync failures push the coordinator's cache into
#      degraded mode (journal_errors_total > 0) and it recovers once the
#      "disk" does: by the end the journal is healthy again (degraded=0,
#      overflow=0) and every result survived in memory;
#   4. a post-shutdown `sweepd -fsck` pass finds the compacted coordinator
#      journal clean (every CRC verifies, no duplicates, keys agree).
#
# Determinism: the failpoints fire on exact lease/fsync hits — no
# sleeps-as-sync; the polling loops below only bound total wall time.
# Nonzero exit on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
coord_pid=""
client_pid=""
loop1_pid=""
loop2_pid=""

kill_workers() { # best-effort: kill whatever incarnation each restart loop runs
    for w in w1 w2; do
        p=$(cat "$tmp/$w.pid" 2>/dev/null || true)
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
}

cleanup() {
    rm -f "$tmp/run"
    kill_workers
    for p in $client_pid $loop1_pid $loop2_pid $coord_pid; do
        kill "$p" 2>/dev/null || true
    done
    for p in $client_pid $loop1_pid $loop2_pid $coord_pid; do
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke-chaos: FAIL: $*" >&2
    for log in coordinator w1 w2; do
        [ -f "$tmp/$log.log" ] && tail -8 "$tmp/$log.log" | sed "s/^/smoke-chaos: $log: /" >&2
    done
    exit 1
}

metric() { # metric <name> — scrape one counter/gauge from the coordinator
    curl -sf "$base/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

# 2 pairings x 2 AQMs x 3 queues = 12 cheap configurations. One of them is
# designated poison: every worker that leases it is killed by the armed
# worker.run failpoint before it can upload.
SPEC="-bws 100Mbps -queues 2,4,8 -aqms fifo,red -pairings reno:reno,cubic:cubic -duration 2s"
NCONF=12
NHEALTHY=11
POISON="cubic-vs-cubic_red_4bdp_100Mbps_seed1"

echo "smoke-chaos: building sweep, sweepd, and dropcfg" >&2
$GO build -o "$tmp/sweep" ./cmd/sweep
$GO build -o "$tmp/sweepd" ./cmd/sweepd
$GO build -o "$tmp/dropcfg" ./scripts/dropcfg

echo "smoke-chaos: direct single-process sweep (the byte-identity oracle)" >&2
"$tmp/sweep" $SPEC -quiet -strict -out "$tmp/direct.json" >/dev/null

# Coordinator: short lease TTL so the three poison crash-detect cycles fit
# in seconds; lease-batch 1 so healthy configurations never share a lease
# with the poison one (they must not inherit its failures); the first three
# journal fsyncs fail as if the disk filled, then it "recovers".
echo "smoke-chaos: starting coordinator (fsync failures armed) + 2 crash-restart workers" >&2
"$tmp/sweepd" -coordinator -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -journal "$tmp/coordinator.ckpt.jsonl" \
    -lease-ttl 2s -heartbeat 250ms -lease-batch 1 -retry-budget 3 \
    -failpoints 'checkpoint.fsync=err(injected: no space left on device)@times=3' \
    2>"$tmp/coordinator.log" &
coord_pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "coordinator did not come up"
    sleep 0.1
done
base="http://$(cat "$tmp/addr")"

# Each worker dies with exit 7 the moment it starts running the poison
# configuration; the loop restarts it (fresh registration, same name) until
# the run flag is removed.
worker_loop() {
    while [ -f "$tmp/run" ]; do
        "$tmp/sweepd" -join "$base" -name "$1" -journal "$tmp/$1.ckpt.jsonl" \
            -failpoints "worker.run=exit:7@arg=$POISON" 2>>"$tmp/$1.log" &
        echo $! >"$tmp/$1.pid"
        wait $! 2>/dev/null || true
        sleep 0.2
    done
}
touch "$tmp/run"
worker_loop w1 &
loop1_pid=$!
worker_loop w2 &
loop2_pid=$!

echo "smoke-chaos: submitting the grid via $base" >&2
"$tmp/sweep" $SPEC -quiet -remote "$base" -out "$tmp/served.json" >/dev/null 2>&1 &
client_pid=$!

# The job can only finish once the poison configuration has crashed three
# workers and been quarantined (~3 lease TTLs), so waiting on the client IS
# waiting on the quarantine state machine.
echo "smoke-chaos: waiting for the sweep (3 poison crash cycles + quarantine)" >&2
i=0
while kill -0 "$client_pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 1200 ] && fail "sweep did not finish within 120s (quarantine stuck?)"
    sleep 0.1
done
wait "$client_pid" || fail "remote sweep client exited non-zero"
client_pid=""

echo "smoke-chaos: quarantine + journal-degradation counters on /metrics" >&2
quarantined=$(metric sweepd_cluster_configs_quarantined_total)
[ "${quarantined:-0}" = "1" ] ||
    fail "configs_quarantined_total=$quarantined, want 1 (the poison config)"
qgauge=$(metric sweepd_cluster_quarantined)
[ "${qgauge:-0}" = "1" ] || fail "cluster_quarantined=$qgauge, want 1"
dead=$(metric sweepd_cluster_workers_dead_total)
[ "${dead:-0}" -ge 3 ] ||
    fail "workers_dead_total=$dead, want >= 3 (one per exhausted retry)"
results=$(metric sweepd_cluster_results_total)
[ "$results" = "$NHEALTHY" ] ||
    fail "results_total=$results, want $NHEALTHY (poison never uploads; healthy configs exactly once)"
jerrs=$(metric sweepd_journal_errors_total)
[ "${jerrs:-0}" -ge 1 ] ||
    fail "journal_errors_total=$jerrs, want >= 1 (the injected fsync failures)"
degraded=$(metric sweepd_journal_degraded)
[ "${degraded:-1}" = "0" ] ||
    fail "journal_degraded=$degraded, want 0 (cache must recover once fsync heals)"
overflow=$(metric sweepd_journal_overflow_results)
[ "${overflow:-1}" = "0" ] ||
    fail "journal_overflow_results=$overflow, want 0 (overflow drained back to disk)"
echo "smoke-chaos: poison quarantined after $dead crashes; journal degraded and recovered (errors=$jerrs)" >&2

echo "smoke-chaos: byte-identity of the $NHEALTHY non-quarantined results vs the direct sweep" >&2
"$tmp/dropcfg" -in "$tmp/served.json" -out "$tmp/served.norm.json" \
    -drop "$POISON" -expect-error "sweepd: quarantined" 2>/dev/null ||
    fail "served ResultSet: poison config missing or not a quarantine error"
"$tmp/dropcfg" -in "$tmp/direct.json" -out "$tmp/direct.norm.json" \
    -drop "$POISON" 2>/dev/null ||
    fail "direct ResultSet: poison config missing (it must simulate fine locally)"
cmp -s "$tmp/direct.norm.json" "$tmp/served.norm.json" || {
    diff "$tmp/direct.norm.json" "$tmp/served.norm.json" | head -40 >&2
    fail "non-quarantined results differ from the direct single-process sweep"
}

echo "smoke-chaos: graceful shutdown" >&2
rm -f "$tmp/run"
i=0
while kill -0 "$loop1_pid" 2>/dev/null || kill -0 "$loop2_pid" 2>/dev/null; do
    kill_workers
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "worker restart loops did not exit"
    sleep 0.1
done
wait "$loop1_pid" "$loop2_pid" 2>/dev/null || true
loop1_pid=""
loop2_pid=""
kill "$coord_pid"
wait "$coord_pid" || fail "coordinator exited non-zero on SIGTERM"
coord_pid=""

echo "smoke-chaos: post-run integrity scan (sweepd -fsck)" >&2
"$tmp/sweepd" -fsck -journal "$tmp/coordinator.ckpt.jsonl" 2>>"$tmp/coordinator.log" ||
    fail "sweepd -fsck (repair) exited non-zero on the coordinator journal"
"$tmp/sweepd" -fsck -fsck-dry-run -journal "$tmp/coordinator.ckpt.jsonl" 2>>"$tmp/coordinator.log" ||
    fail "coordinator journal still dirty after fsck repair"
records=$(grep -c '^r ' "$tmp/coordinator.ckpt.jsonl")
[ "$records" = "$NHEALTHY" ] ||
    fail "coordinator journal has $records records, want $NHEALTHY (quarantined results are never cached)"

echo "smoke-chaos: OK (poison quarantined after 3 crashes, $NHEALTHY results byte-identical, journal degraded + recovered + fsck-clean)" >&2
