#!/bin/sh
# smoke-svc: end-to-end check of the sweep service (make smoke-svc).
#
# Starts sweepd on an ephemeral port over a private temp dir with -audit,
# then proves the service contract:
#
#   1. a served sweep is byte-identical to a direct cmd/sweep run of the
#      same GridSpec (modulo wall_ns, which measures the machine);
#   2. a repeated identical POST coalesces onto the done job: byte-identical
#      response, zero new simulations;
#   3. an equivalent spec under a different key (audit bit toggled) is
#      served entirely from the content-addressed cache, with the hit
#      counter visible on /metrics;
#   4. the same grid under a different -duration is different science and
#      must re-simulate, never hit the cache;
#   5. a parking-lot topology sweep is distinct science (its Config.Key
#      differs from the dumbbell's), runs audit-clean through the service,
#      and a resubmission coalesces without new simulations;
#   6. graceful shutdown drains and compacts the journal.
#
# Nonzero exit on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke-svc: FAIL: $*" >&2
    [ -f "$tmp/sweepd.log" ] && sed 's/^/smoke-svc: sweepd: /' "$tmp/sweepd.log" >&2
    exit 1
}

# The tiny grid every step submits. Must stay identical across steps 1-2.
SPEC="-bws 100Mbps -queues 2 -aqms fifo -pairings reno:reno,cubic:cubic -duration 4s -audit"

echo "smoke-svc: building sweep and sweepd" >&2
$GO build -o "$tmp/sweep" ./cmd/sweep
$GO build -o "$tmp/sweepd" ./cmd/sweepd

"$tmp/sweepd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -journal "$tmp/journal.ckpt.jsonl" -audit 2>"$tmp/sweepd.log" &
pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not come up"
    sleep 0.1
done
base="http://$(cat "$tmp/addr")"

echo "smoke-svc: direct CLI sweep" >&2
"$tmp/sweep" $SPEC -quiet -strict -out "$tmp/direct.json" >/dev/null

echo "smoke-svc: served sweep via $base" >&2
"$tmp/sweep" $SPEC -quiet -strict -remote "$base" -out "$tmp/served.json" >/dev/null

grep -v '"wall_ns"' "$tmp/direct.json" >"$tmp/direct.norm"
grep -v '"wall_ns"' "$tmp/served.json" >"$tmp/served.norm"
cmp -s "$tmp/direct.norm" "$tmp/served.norm" || {
    diff "$tmp/direct.norm" "$tmp/served.norm" | head -40 >&2
    fail "served ResultSet differs from the direct CLI sweep"
}

echo "smoke-svc: repeated identical POST (must coalesce, 0 new sims)" >&2
"$tmp/sweep" $SPEC -quiet -remote "$base" -out "$tmp/served2.json" \
    -print-metrics >"$tmp/metrics2.txt"
cmp -s "$tmp/served.json" "$tmp/served2.json" ||
    fail "repeated POST served different bytes"
sims=$(awk '$1 == "sweepd_sims_total" {print $2}' "$tmp/metrics2.txt")
[ "$sims" = "2" ] || fail "repeated POST re-simulated: sims_total=$sims, want 2"

echo "smoke-svc: equivalent spec under a new key (must serve from cache)" >&2
"$tmp/sweep" -bws 100Mbps -queues 2 -aqms fifo -pairings reno:reno,cubic:cubic -duration 4s \
    -quiet -remote "$base" -out "$tmp/served3.json" -print-metrics >"$tmp/metrics3.txt"
sims=$(awk '$1 == "sweepd_sims_total" {print $2}' "$tmp/metrics3.txt")
[ "$sims" = "2" ] || fail "cache-path job re-simulated: sims_total=$sims, want 2"
hits=$(awk '$1 == "sweepd_cache_hits_total" {print $2}' "$tmp/metrics3.txt")
[ "$hits" = "2" ] || fail "cache hits not visible on /metrics: got '$hits', want 2"

echo "smoke-svc: same grid, different -duration (must re-simulate)" >&2
"$tmp/sweep" -bws 100Mbps -queues 2 -aqms fifo -pairings reno:reno,cubic:cubic -duration 5s \
    -quiet -remote "$base" -out "$tmp/served4.json" -print-metrics >"$tmp/metrics4.txt"
sims=$(awk '$1 == "sweepd_sims_total" {print $2}' "$tmp/metrics4.txt")
[ "$sims" = "4" ] || fail "duration override was served stale cached results: sims_total=$sims, want 4"

echo "smoke-svc: parking-lot topology sweep (distinct keys, audit-clean)" >&2
TOPOSPEC="-topo parking-lot-3 -bws 100Mbps -queues 2 -aqms fifo -pairings cubic:cubic -duration 4s -audit"
"$tmp/sweep" $TOPOSPEC -quiet -strict -remote "$base" -out "$tmp/served5.json" \
    -print-metrics >"$tmp/metrics5.txt"
sims=$(awk '$1 == "sweepd_sims_total" {print $2}' "$tmp/metrics5.txt")
[ "$sims" = "5" ] || fail "parking-lot sweep did not simulate fresh: sims_total=$sims, want 5"
grep -q '"name": *"parking-lot-3"' "$tmp/served5.json" ||
    fail "served parking-lot results carry no topology spec"
grep -q '"groups"' "$tmp/served5.json" && grep -q '"ports"' "$tmp/served5.json" ||
    fail "served parking-lot results carry no per-class/per-port breakdown"

echo "smoke-svc: parking-lot resubmission (must coalesce, 0 new sims)" >&2
"$tmp/sweep" $TOPOSPEC -quiet -strict -remote "$base" -out "$tmp/served6.json" \
    -print-metrics >"$tmp/metrics6.txt"
cmp -s "$tmp/served5.json" "$tmp/served6.json" ||
    fail "repeated parking-lot POST served different bytes"
sims=$(awk '$1 == "sweepd_sims_total" {print $2}' "$tmp/metrics6.txt")
[ "$sims" = "5" ] || fail "parking-lot resubmission re-simulated: sims_total=$sims, want 5"

echo "smoke-svc: graceful shutdown (drain + journal compaction)" >&2
kill "$pid"
wait "$pid" || fail "daemon exited non-zero on SIGTERM"
pid=""
lines=$(grep -c '^r ' "$tmp/journal.ckpt.jsonl") ||
    fail "journal missing after shutdown"
# 2 configs at 4s + the same 2 at 5s + 1 parking-lot: five live science keys
# (record lines only; the v2 journal also carries a version-header line).
[ "$lines" = "5" ] || fail "journal not compacted: $lines records, want 5"

echo "smoke-svc: OK (served = direct, repeats coalesced, cache hits on /metrics, overrides re-simulated, parking-lot distinct + coalesced, journal compacted)" >&2
