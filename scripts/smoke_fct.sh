#!/bin/sh
# smoke-fct: end-to-end check of the open-loop FCT workload (make smoke-fct).
#
# Sweeps a small mixed mice grid — two pairings across two AQMs with the
# invariant auditor on — directly and through a sweepd daemon, then proves
# the FCT contract:
#
#   1. the -flows grid auto-appends one solo baseline per condition, and
#      every result (competition and solo) carries per-size-class FCT
#      percentiles;
#   2. the served sweep is byte-identical to the direct CLI run of the same
#      spec (modulo wall_ns) — dynamic flow churn does not break the
#      determinism contract across the service boundary;
#   3. cmd/report renders the solo-vs-competition harm-to-FCT matrix from
#      the result set, and the daemon's /report endpoint renders the same
#      section.
#
# Nonzero exit on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke-fct: FAIL: $*" >&2
    [ -f "$tmp/sweepd.log" ] && sed 's/^/smoke-fct: sweepd: /' "$tmp/sweepd.log" >&2
    exit 1
}

# 2 pairings × 2 AQMs of competition plus 2 auto-appended solo baselines
# (one per AQM: baselines dedupe across pairings).
SPEC="-bws 100Mbps -queues 2 -aqms fifo,fq_codel -pairings cubic:cubic,bbr1:cubic -duration 4s -flows mice -audit"

echo "smoke-fct: building sweep, sweepd and report" >&2
$GO build -o "$tmp/sweep" ./cmd/sweep
$GO build -o "$tmp/sweepd" ./cmd/sweepd
$GO build -o "$tmp/report" ./cmd/report

echo "smoke-fct: direct CLI sweep with -flows mice" >&2
"$tmp/sweep" $SPEC -quiet -strict -out "$tmp/direct.json" >/dev/null

solos=$(grep -c '"solo_fct": *true' "$tmp/direct.json") ||
    fail "no solo baselines in the -flows sweep"
[ "$solos" = "2" ] || fail "expected 2 solo baselines (one per AQM), got $solos"
fcts=$(grep -c '"fct":' "$tmp/direct.json") ||
    fail "no FCT blocks in the results"
[ "$fcts" = "6" ] || fail "expected FCT data on all 6 results, got $fcts"
for class in '"class": *"all"' '"class": *"small"' '"class": *"medium"'; do
    grep -q "$class" "$tmp/direct.json" ||
        fail "per-size-class FCT percentiles missing ($class)"
done
grep -q '"p99_ns"' "$tmp/direct.json" || fail "FCT percentiles missing p99"

echo "smoke-fct: served sweep via sweepd" >&2
"$tmp/sweepd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -journal "$tmp/journal.ckpt.jsonl" -audit 2>"$tmp/sweepd.log" &
pid=$!
i=0
while [ ! -f "$tmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not come up"
    sleep 0.1
done
base="http://$(cat "$tmp/addr")"
# Submit via the CLI client and read the job id off its progress banner
# ("sweep: remote job <id> on <base>: ...").
job=$("$tmp/sweep" $SPEC -quiet -strict -remote "$base" -out "$tmp/served.json" 2>&1 >/dev/null \
    | tee "$tmp/remote.log" | sed -n 's/.*remote job \([a-zA-Z0-9_-]*\) on.*/\1/p' | head -1)
[ -n "$job" ] || fail "could not extract the job id from sweep -remote output"

grep -v '"wall_ns"' "$tmp/direct.json" >"$tmp/direct.norm"
grep -v '"wall_ns"' "$tmp/served.json" >"$tmp/served.norm"
cmp -s "$tmp/direct.norm" "$tmp/served.norm" || {
    diff "$tmp/direct.norm" "$tmp/served.norm" | head -40 >&2
    fail "served FCT ResultSet differs from the direct CLI sweep"
}

echo "smoke-fct: harm-to-FCT matrix via cmd/report" >&2
"$tmp/report" -in "$tmp/direct.json" -figures=false -out "$tmp/report.md" 2>/dev/null
grep -q '^## Harm to flow completion time' "$tmp/report.md" ||
    fail "cmd/report rendered no harm-to-FCT section"
for pairing in 'CUBIC vs CUBIC' 'BBR1 vs CUBIC'; do
    grep -q "$pairing" "$tmp/report.md" ||
        fail "harm matrix missing pairing: $pairing"
done

echo "smoke-fct: harm-to-FCT matrix via the daemon /report endpoint" >&2
curl -sf "$base/v1/sweeps/$job/report?figures=0" >"$tmp/served_report.md" ||
    fail "daemon /report endpoint failed"
grep -q '^## Harm to flow completion time' "$tmp/served_report.md" ||
    fail "daemon report rendered no harm-to-FCT section"

echo "smoke-fct: OK (solo baselines appended, per-class FCT percentiles, served = direct, harm matrix rendered by CLI and daemon)" >&2
