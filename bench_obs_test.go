//go:build !race

// Benchmark-trajectory gate for the fairness observatory: BENCH_obs.json
// pins the cost of running the windowed sampler alongside the steady-state
// dumbbell — event throughput, per-packet allocation budget, and the window
// count the 10 ms cadence produces. The paired plain/armed entries make the
// observatory's overhead visible in review: arming must stay within the
// same ≤1 alloc/packet budget as the plain path. `make bench-save`
// refreshes the file; `make ci` replays the measurement and fails on
// regression, allocations strictly and speed loosely (see
// bench_topo_test.go for the rationale behind the loose speed gate).
package repro

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/experiment"
)

const benchObsFile = "BENCH_obs.json"

type benchObsEntry struct {
	Workload        string  `json:"workload"`
	EventsPerSec    float64 `json:"events_per_sec"`
	NsPerEvent      float64 `json:"ns_per_event"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	Windows         int     `json:"windows"`
}

func benchObsConfigs() map[string]experiment.Config {
	plain := allocGuardConfig()
	armed := allocGuardConfig()
	armed.Fairness = true
	armed.FairnessWindow = 10 * time.Millisecond
	return map[string]experiment.Config{
		"dumbbell-plain": plain,
		"dumbbell-obs":   armed,
	}
}

// measureBenchObs runs one workload configuration, reporting event
// throughput, allocation rate per delivered data segment, and the number of
// fairness windows sampled (zero for the plain baseline).
func measureBenchObs(t *testing.T, cfg experiment.Config) benchObsEntry {
	t.Helper()
	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})
	goodputBytes := (last.SenderBps[0] + last.SenderBps[1]) * cfg.Duration.Seconds() / 8
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}
	windows := 0
	if last.Fairness != nil {
		windows = last.Fairness.Windows
	}
	if cfg.Fairness && windows < 100 {
		t.Fatalf("sampler inactive: %d windows over %v at %v cadence",
			windows, cfg.Duration, cfg.FairnessWindow)
	}

	start := time.Now()
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	return benchObsEntry{
		EventsPerSec:    float64(res.Events) / wall.Seconds(),
		NsPerEvent:      float64(wall.Nanoseconds()) / float64(res.Events),
		AllocsPerPacket: allocs / segments,
		Windows:         windows,
	}
}

// TestBenchObsTrajectory is both the recorder and the gate, exactly like
// TestBenchFCTTrajectory: BENCH_SAVE=1 rewrites BENCH_obs.json, otherwise
// the checked-in trajectory gates the measurement.
func TestBenchObsTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates seconds of traffic; skipped in -short mode")
	}
	cfgs := benchObsConfigs()
	names := []string{"dumbbell-plain", "dumbbell-obs"}

	if os.Getenv("BENCH_SAVE") == "1" {
		var entries []benchObsEntry
		for _, name := range names {
			e := measureBenchObs(t, cfgs[name])
			e.Workload = name
			t.Logf("%s: %.0f events/sec, %.1f ns/event, %.3f allocs/pkt, %d windows",
				name, e.EventsPerSec, e.NsPerEvent, e.AllocsPerPacket, e.Windows)
			entries = append(entries, e)
		}
		data, err := json.MarshalIndent(entries, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchObsFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("saved trajectory to %s", benchObsFile)
		return
	}

	data, err := os.ReadFile(benchObsFile)
	if err != nil {
		t.Fatalf("no benchmark trajectory (%v); record one with `make bench-save`", err)
	}
	var saved []benchObsEntry
	if err := json.Unmarshal(data, &saved); err != nil {
		t.Fatalf("corrupt %s: %v", benchObsFile, err)
	}
	byName := map[string]benchObsEntry{}
	for _, e := range saved {
		byName[e.Workload] = e
	}
	for _, name := range names {
		want, ok := byName[name]
		if !ok {
			t.Errorf("%s missing from %s; re-record with `make bench-save`", name, benchObsFile)
			continue
		}
		got := measureBenchObs(t, cfgs[name])
		t.Logf("%s: %.0f events/sec (saved %.0f), %.3f allocs/pkt (saved %.3f), %d windows (saved %d)",
			name, got.EventsPerSec, want.EventsPerSec,
			got.AllocsPerPacket, want.AllocsPerPacket, got.Windows, want.Windows)
		// The window count is seed- and cadence-determined: drift means the
		// sampler's timing or the run's horizon changed.
		if got.Windows != want.Windows {
			t.Errorf("%s: window count drifted: %d, saved %d (sampler cadence broken?)",
				name, got.Windows, want.Windows)
		}
		if got.AllocsPerPacket > want.AllocsPerPacket+0.05 {
			t.Errorf("%s: allocs/packet regressed: %.3f > saved %.3f",
				name, got.AllocsPerPacket, want.AllocsPerPacket)
		}
		if got.EventsPerSec < want.EventsPerSec/5 {
			t.Errorf("%s: event throughput collapsed: %.0f events/sec vs saved %.0f (>5× slower)",
				name, got.EventsPerSec, want.EventsPerSec)
		}
	}
}
