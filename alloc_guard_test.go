//go:build !race

// Allocation-regression gates for the zero-allocation event core: a
// steady-state dumbbell run must stay at or under one heap allocation per
// forwarded data segment, end to end. The race detector changes the
// allocation profile, so these tests build only without -race (the Makefile
// runs them as a separate non-race step).
package repro

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/failpoint"
	"repro/internal/faults"
	"repro/internal/flows"
	"repro/internal/topo"
	"repro/internal/units"
)

// allocGuardConfig is the guard scenario from the issue: a 2-flow CUBIC
// dumbbell at 100 Mbps with a 2×BDP FIFO — pure steady-state forwarding.
func allocGuardConfig() experiment.Config {
	return experiment.Config{
		Pairing:    experiment.Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 100 * units.MegabitPerSec,
		Duration:   2 * time.Second,
	}
}

func TestAllocGuardSteadyStateDumbbell(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2s of traffic; skipped in -short mode")
	}
	cfg := allocGuardConfig()

	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})

	// Delivered data segments are a conservative (under-)count of packets
	// forwarded through the bottleneck: retransmitted and dropped copies
	// also crossed ports but are excluded from the denominator.
	goodputBytes := (last.SenderBps[0] + last.SenderBps[1]) * cfg.Duration.Seconds() / 8
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}

	perPacket := allocs / segments
	t.Logf("allocs/run = %.0f over %.0f segments → %.3f allocs per forwarded data packet",
		allocs, segments, perPacket)
	if perPacket > 1.0 {
		t.Errorf("allocation regression: %.3f allocs per forwarded data packet (budget ≤ 1); "+
			"every per-packet event must come from the engine pool", perPacket)
	}
}

// BenchmarkSteadyStateAllocs reports the same quantity as a benchmark so
// regressions show up in routine `go test -bench` output.
func BenchmarkSteadyStateAllocs(b *testing.B) {
	cfg := allocGuardConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		goodputBytes := (res.SenderBps[0] + res.SenderBps[1]) * cfg.Duration.Seconds() / 8
		b.ReportMetric(float64(res.Events)/cfg.Duration.Seconds(), "events/simsec")
		b.ReportMetric(goodputBytes/8900, "segments")
	}
}

// TestAllocGuardTracingDisabled: the telemetry hooks threaded through the
// hot path (tcp ACK processing, CCA OnAck, every enqueue/dequeue/drop) are
// nil-receiver no-ops when no tracer is attached. With tracing disabled —
// even with the observation knobs set, proving they alone arm nothing — the
// per-packet allocation budget must be exactly the baseline's ≤ 1.
func TestAllocGuardTracingDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2s of traffic; skipped in -short mode")
	}
	cfg := allocGuardConfig()
	cfg.Trace = false
	cfg.TraceRingCap = 4096 // ignored while Trace is false
	cfg.TraceSampleN = 4

	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})

	goodputBytes := (last.SenderBps[0] + last.SenderBps[1]) * cfg.Duration.Seconds() / 8
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}
	perPacket := allocs / segments
	t.Logf("allocs/run = %.0f over %.0f segments → %.3f allocs per forwarded data packet",
		allocs, segments, perPacket)
	if perPacket > 1.0 {
		t.Errorf("disabled tracing is not free: %.3f allocs per forwarded data packet "+
			"(budget ≤ 1, identical to the pre-telemetry baseline)", perPacket)
	}
}

// TestAllocGuardWithFaultProfile: the fault-injection path (Gilbert–Elliott
// chain consulted per transmitted packet, flap/step timeline armed) must
// not add per-packet allocations — the same ≤ 1 alloc budget as the clean
// run. Profile setup costs a handful of one-time allocations per run,
// amortized to noise over the half-million forwarded segments.
func TestAllocGuardWithFaultProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2s of traffic; skipped in -short mode")
	}
	cfg := allocGuardConfig()
	cfg.Faults = &faults.Profile{
		GE:      &faults.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.3, LossBad: 0.5},
		Flaps:   []faults.Flap{{At: 900 * time.Millisecond, Down: 50 * time.Millisecond}},
		BWSteps: []faults.BWStep{{At: 1500 * time.Millisecond, Factor: 0.8}},
	}

	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})
	if last.FaultLossDrops == 0 || last.FaultDownDrops == 0 {
		t.Fatalf("fault profile inactive during alloc guard: %+v", last)
	}

	goodputBytes := (last.SenderBps[0] + last.SenderBps[1]) * cfg.Duration.Seconds() / 8
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}
	perPacket := allocs / segments
	t.Logf("allocs/run = %.0f over %.0f segments → %.3f allocs per forwarded data packet",
		allocs, segments, perPacket)
	if perPacket > 1.0 {
		t.Errorf("fault path allocation regression: %.3f allocs per forwarded data packet "+
			"(budget ≤ 1, same as the clean run)", perPacket)
	}
}

// TestAllocGuardFailpointsDisabled: the failpoint hooks threaded through
// the durability layer (checkpoint open/append/fsync/compact, cache puts,
// RPC attempts) must be branch-cheap and alloc-free when disarmed. The
// worst realistic state is "armed elsewhere": some unrelated point is
// enabled, so every Eval takes the armed-but-miss path (global flag load +
// mutex + name lookup) rather than the single atomic load. Even then the
// simulate-and-checkpoint loop must hold the baseline per-packet budget,
// and the checkpoint appends themselves must not fire or slow.
func TestAllocGuardFailpointsDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2s of traffic; skipped in -short mode")
	}
	if err := failpoint.Enable("unrelated.alloc.guard=err(never hit)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	cfg := allocGuardConfig()

	dir := t.TempDir()
	run := 0
	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Exercise the failpoint-instrumented journal path end to end:
		// open (checkpoint.open), append (checkpoint.append.write +
		// checkpoint.fsync), close. All hooks evaluate and miss.
		run++
		ck, err := experiment.OpenCheckpoint(filepath.Join(dir, fmt.Sprintf("guard%d.jsonl", run)))
		if err != nil {
			t.Fatal(err)
		}
		if err := ck.Append(res); err != nil {
			t.Fatal(err)
		}
		if err := ck.Close(); err != nil {
			t.Fatal(err)
		}
		last = res
	})

	goodputBytes := (last.SenderBps[0] + last.SenderBps[1]) * cfg.Duration.Seconds() / 8
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}
	perPacket := allocs / segments
	t.Logf("allocs/run = %.0f over %.0f segments → %.3f allocs per forwarded data packet",
		allocs, segments, perPacket)
	if perPacket > 1.0 {
		t.Errorf("disarmed failpoints are not free: %.3f allocs per forwarded data packet "+
			"(budget ≤ 1, identical to the pre-failpoint baseline)", perPacket)
	}
}

// TestAllocGuardOpenLoop: the open-loop workload churns flows through the
// engine — attach, transfer, teardown, sketch update — on top of the two
// elephants. Flow setup/teardown costs a bounded number of allocations per
// flow (connection, receiver, demux entries), amortized to noise over the
// run's half-million forwarded segments, so the combined traffic must hold
// the same ≤ 1 alloc per forwarded data packet budget as the static run.
func TestAllocGuardOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2s of traffic; skipped in -short mode")
	}
	// Twice the default mice arrival rate: ~20 flows churn through the 2s
	// run (attach + teardown every ~100ms) while the elephants keep the
	// denominator honest.
	cfg := allocGuardConfig()
	cfg.Flows = &flows.Spec{Populations: []flows.Population{
		{Name: "mice", MeanArrival: 100 * time.Millisecond},
	}}

	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})
	if last.FCT == nil || last.FCT.Completed == 0 {
		t.Fatalf("open-loop workload inactive during alloc guard: %+v", last.FCT)
	}

	// Elephant goodput plus the completed mice payload, both forwarded
	// through the bottleneck.
	goodputBytes := (last.SenderBps[0]+last.SenderBps[1])*cfg.Duration.Seconds()/8 +
		float64(last.FCT.Class("all").Bytes)
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}
	perPacket := allocs / segments
	t.Logf("allocs/run = %.0f over %.0f segments (%d flows churned) → %.3f allocs per forwarded data packet",
		allocs, segments, last.FCT.Opened, perPacket)
	if perPacket > 1.0 {
		t.Errorf("open-loop allocation regression: %.3f allocs per forwarded data packet "+
			"(budget ≤ 1, flow churn must amortize away)", perPacket)
	}
}

// TestAllocGuardFairnessSampling: the fairness observatory rides inside the
// per-packet budget. Its timer tick reads two cumulative counters per flow
// and appends to series preallocated for the whole run horizon, so an armed
// sampler adds only its one-time setup — amortized to noise over the run's
// half-million forwarded segments — and the steady state must hold the same
// ≤ 1 alloc per forwarded data packet as the baseline.
func TestAllocGuardFairnessSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2s of traffic; skipped in -short mode")
	}
	cfg := allocGuardConfig()
	cfg.Fairness = true
	cfg.FairnessWindow = 10 * time.Millisecond // 10× the default cadence

	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})
	if last.Fairness == nil || last.Fairness.Windows < 100 {
		t.Fatalf("fairness observatory inactive during alloc guard: %+v", last.Fairness)
	}

	goodputBytes := (last.SenderBps[0] + last.SenderBps[1]) * cfg.Duration.Seconds() / 8
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}
	perPacket := allocs / segments
	t.Logf("allocs/run = %.0f over %.0f segments (%d windows sampled) → %.3f allocs per forwarded data packet",
		allocs, segments, last.Fairness.Windows, perPacket)
	if perPacket > 1.0 {
		t.Errorf("fairness sampling allocation regression: %.3f allocs per forwarded data packet "+
			"(budget ≤ 1; the windowed series must be preallocated for the horizon)", perPacket)
	}
}

// TestAllocGuardFairnessDisabled: with the observatory off — even with the
// window knob set, proving it alone arms nothing — no sampler or timer is
// installed at all and the budget is exactly the baseline's ≤ 1.
func TestAllocGuardFairnessDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2s of traffic; skipped in -short mode")
	}
	cfg := allocGuardConfig()
	cfg.Fairness = false
	cfg.FairnessWindow = 10 * time.Millisecond // ignored while Fairness is false

	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})
	if last.Fairness != nil {
		t.Fatalf("fairness report present with the observatory off")
	}

	goodputBytes := (last.SenderBps[0] + last.SenderBps[1]) * cfg.Duration.Seconds() / 8
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}
	perPacket := allocs / segments
	t.Logf("allocs/run = %.0f over %.0f segments → %.3f allocs per forwarded data packet",
		allocs, segments, perPacket)
	if perPacket > 1.0 {
		t.Errorf("disabled fairness observatory is not free: %.3f allocs per forwarded data packet "+
			"(budget ≤ 1, identical to the pre-observatory baseline)", perPacket)
	}
}

// TestAllocGuardParkingLot: the graph builder's multi-bottleneck path —
// demux fan-out at divergent links, per-hop sender classes, three AQM
// instances in series — must hold the same steady-state budget as the
// dumbbell: at most one heap allocation per delivered data segment.
func TestAllocGuardParkingLot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2s of traffic; skipped in -short mode")
	}
	pl := topo.ParkingLotSpec(3)
	cfg := allocGuardConfig()
	cfg.Topology = &pl

	var last experiment.Result
	allocs := testing.AllocsPerRun(2, func() {
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	})

	var goodputBytes float64
	for _, g := range last.Groups {
		goodputBytes += g.Bps * cfg.Duration.Seconds() / 8
	}
	segments := goodputBytes / 8900
	if segments < 500 {
		t.Fatalf("implausibly few segments delivered: %.0f", segments)
	}
	perPacket := allocs / segments
	t.Logf("allocs/run = %.0f over %.0f segments → %.3f allocs per forwarded data packet",
		allocs, segments, perPacket)
	if perPacket > 1.0 {
		t.Errorf("parking-lot allocation regression: %.3f allocs per forwarded data packet "+
			"(budget ≤ 1, same as the dumbbell)", perPacket)
	}
}
