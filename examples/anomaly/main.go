// Anomaly: the paper's future-work scenario — how each congestion control
// algorithm degrades when the path corrupts packets at increasing random
// rates (losses unrelated to congestion). Loss-blind BBRv1 should shrug
// off what halves Reno's throughput.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/units"
)

func main() {
	lossRates := []float64{0, 0.0001, 0.001, 0.01}
	fmt.Println("Intra-CCA throughput under injected random path loss")
	fmt.Println("(500 Mbps bottleneck, FIFO 2xBDP, 62 ms RTT, 20 s)")
	fmt.Printf("\n%-8s", "CCA")
	for _, p := range lossRates {
		fmt.Printf(" %11s", fmt.Sprintf("p=%g", p))
	}
	fmt.Println(" (Mbps total)")
	for _, name := range cca.Names() {
		fmt.Printf("%-8s", name)
		for _, p := range lossRates {
			res, err := experiment.Run(experiment.Config{
				Pairing:    experiment.Pairing{CCA1: name, CCA2: name},
				AQM:        aqm.KindFIFO,
				QueueBDP:   2,
				Bottleneck: 500 * units.MegabitPerSec,
				Duration:   20 * time.Second,
				PathLoss:   p,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %11.1f", (res.SenderBps[0]+res.SenderBps[1])/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected: loss-based CCAs (reno, cubic, htcp) collapse as p grows;")
	fmt.Println("BBRv1 ignores random loss entirely; BBRv2 tolerates p below its 2% threshold.")
}
