// RTT sweep: the paper fixed RTT at 62 ms and deferred RTT variation to
// future work (§6). This example runs the same BBRv1-vs-CUBIC contest
// across a range of round-trip times, showing how the FIFO equilibrium
// depends on the delay component of the BDP.
//
//	go run ./examples/rttsweep
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/units"
)

func main() {
	rtts := []time.Duration{
		10 * time.Millisecond,
		31 * time.Millisecond,
		62 * time.Millisecond, // the paper's Clemson–TACC path
		124 * time.Millisecond,
	}
	fmt.Println("BBRv1 vs CUBIC, 100 Mbps, FIFO 2xBDP, 30 s, varying RTT")
	fmt.Printf("\n%-10s %14s %14s %8s %12s\n", "RTT", "BBRv1 (Mbps)", "CUBIC (Mbps)", "Jain", "retransmits")
	for _, rtt := range rtts {
		res, err := experiment.Run(experiment.Config{
			Pairing:    experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
			AQM:        aqm.KindFIFO,
			QueueBDP:   2,
			Bottleneck: 100 * units.MegabitPerSec,
			RTT:        rtt,
			Duration:   30 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %14.1f %14.1f %8.3f %12d\n",
			rtt, res.SenderMbps(0), res.SenderMbps(1), res.Jain, res.TotalRetransmits)
	}
	fmt.Println("\nThe 2xBDP buffer scales with RTT, so both the queue's time depth and")
	fmt.Println("the CCAs' control loops shift together — the balance is not monotone")
	fmt.Println("in RTT, which is exactly why the paper flags RTT variation as open work.")
}
