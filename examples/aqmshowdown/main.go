// AQM showdown: how the choice of queue discipline at the bottleneck
// changes the outcome of the same BBRv1-vs-CUBIC contest — the paper's
// central observation in miniature. FIFO lets the buffer decide, RED's
// early random drops starve the loss-based flow, FQ_CODEL isolates them.
//
//	go run ./examples/aqmshowdown
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/units"
)

func main() {
	fmt.Println("BBRv1 vs CUBIC, 500 Mbps bottleneck, 62 ms RTT, 4xBDP buffer, 20 s")
	fmt.Printf("\n%-10s %14s %14s %8s %8s %12s\n",
		"AQM", "BBRv1 (Mbps)", "CUBIC (Mbps)", "Jain", "util", "retransmits")
	for _, kind := range aqm.Kinds() {
		res, err := experiment.Run(experiment.Config{
			Pairing:    experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
			AQM:        kind,
			QueueBDP:   4,
			Bottleneck: 500 * units.MegabitPerSec,
			Duration:   20 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.1f %14.1f %8.3f %8.3f %12d\n",
			kind, res.SenderMbps(0), res.SenderMbps(1), res.Jain,
			res.Utilization, res.TotalRetransmits)
	}
	fmt.Println("\nExpected shape (paper §5.2): RED hands the link to BBRv1;")
	fmt.Println("FQ_CODEL equalizes; FIFO sits in between, decided by buffer size.")
}
