// Quickstart: the smallest useful program — one BBRv1 elephant flow against
// one CUBIC elephant flow across the simulated 62 ms / 1 Gbps FABRIC
// dumbbell with a 2×BDP FIFO bottleneck, printing who got what.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/units"
)

func main() {
	res, err := core.Compare(cca.BBRv1, cca.Cubic, 1*units.GigabitPerSec, aqm.KindFIFO, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BBRv1 vs CUBIC over %v, FIFO, 2xBDP buffer, %.0fs:\n",
		res.Config.Bottleneck, res.SimSeconds)
	fmt.Printf("  BBRv1: %8.1f Mbps\n", res.SenderMbps(0))
	fmt.Printf("  CUBIC: %8.1f Mbps\n", res.SenderMbps(1))
	fmt.Printf("  Jain fairness index: %.3f, link utilization: %.3f\n", res.Jain, res.Utilization)
	fmt.Printf("  retransmissions: %d\n", res.TotalRetransmits)
}
