// Elephants: the paper's motivating scenario — two science facilities
// pushing many parallel bulk transfers (iperf3 processes × streams per
// Table 2) through a shared 10 Gbps wide-area bottleneck, with live
// per-second reporting and iperf3-style JSON logs you can feed to existing
// analysis pipelines.
//
//	go run ./examples/elephants [trace-dir]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	bw := 10 * units.GigabitPerSec
	plan := workload.ScaledPlan(bw, 8) // 8 flows per facility (scaled from Table 2's 100)
	fmt.Printf("Facility A: BBRv2, %s\n", plan)
	fmt.Printf("Facility B: CUBIC, %s\n", plan)
	fmt.Printf("Shared path: %v bottleneck, 62 ms RTT, FQ_CODEL, 2xBDP buffer\n\n", bw)

	cfg := experiment.Config{
		Pairing:        experiment.Pairing{CCA1: cca.BBRv2, CCA2: cca.Cubic},
		AQM:            aqm.KindFQCoDel,
		QueueBDP:       2,
		Bottleneck:     bw,
		FlowsPerSender: plan.FlowsPerNode(),
		Duration:       6 * time.Second,
	}
	opts := core.RunOptions{IntervalWriter: os.Stdout}
	if len(os.Args) > 1 {
		opts.TraceDir = os.Args[1]
	}
	res, err := core.RunDetailed(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nTransfer summary after %.0fs:\n", res.SimSeconds)
	fmt.Printf("  Facility A (BBRv2, %d flows): %8.0f Mbps aggregate\n",
		res.Flows/2, res.SenderMbps(0))
	fmt.Printf("  Facility B (CUBIC, %d flows): %8.0f Mbps aggregate\n",
		res.Flows/2, res.SenderMbps(1))
	fmt.Printf("  fairness %.3f, utilization %.3f, retransmissions %d\n",
		res.Jain, res.Utilization, res.TotalRetransmits)
	if opts.TraceDir != "" {
		fmt.Printf("  per-flow iperf3-style logs written to %s\n", opts.TraceDir)
	}
}
