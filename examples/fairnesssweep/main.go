// Fairness sweep: reproduce one panel of the paper's Figure 2 — per-sender
// throughput of BBRv1 against CUBIC under FIFO as the bottleneck buffer
// grows from 0.5 to 16 BDP — and locate the equilibrium point where CUBIC
// takes over (§5.1, "BBRv1's takeover").
//
//	go run ./examples/fairnesssweep
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/units"
)

func main() {
	bw := 100 * units.MegabitPerSec
	pairing := experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic}

	var cfgs []experiment.Config
	for _, q := range experiment.PaperQueueMults() {
		cfgs = append(cfgs, experiment.Config{
			Pairing:    pairing,
			AQM:        aqm.KindFIFO,
			QueueBDP:   q,
			Bottleneck: bw,
			Duration:   30 * time.Second,
		})
	}
	results, err := experiment.RunAll(cfgs, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	s := experiment.Summarize(results)

	fmt.Printf("Figure 2(a) analogue: BBRv1 vs CUBIC, FIFO, %v\n\n", bw)
	fmt.Print(s.RenderThroughputFigure(pairing, aqm.KindFIFO))

	if q, ok := s.EquilibriumBDP(pairing, aqm.KindFIFO, bw); ok {
		fmt.Printf("\nEquilibrium point: CUBIC first overtakes BBRv1 at %gxBDP", q)
		fmt.Printf(" (the paper measured 2xBDP at 100 Mbps).\n")
	} else {
		fmt.Println("\nBBRv1 led at every measured buffer size.")
	}
}
