// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation (scaled to laptop cost — durations and flow
// counts are reduced; pass -tags/-benchtime as desired). Each benchmark
// reports the headline quantity of its figure via b.ReportMetric so the
// paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from
// `go test -bench`.
//
// Map:
//
//	BenchmarkTable2FlowPlans      — Table 2 (iperf3 flow plans)
//	BenchmarkFig2ThroughputFIFO   — Fig. 2 (per-sender throughput, FIFO)
//	BenchmarkFig3JainFIFO         — Fig. 3 (Jain's index, FIFO)
//	BenchmarkFig4ThroughputRED    — Fig. 4 (per-sender throughput, RED)
//	BenchmarkFig5JainRED          — Fig. 5 (Jain's index, RED)
//	BenchmarkFig6JainFQCoDel      — Fig. 6 (Jain's index, FQ_CODEL)
//	BenchmarkFig7Utilization      — Fig. 7 (link utilization, intra-CCA)
//	BenchmarkFig8Retransmissions  — Fig. 8 (retransmissions, intra-CCA)
//	BenchmarkTable3Overall        — Table 3 (Avg φ / RR / J per pairing×AQM)
//	BenchmarkBandwidthScaling     — simulator cost per simulated second
//	BenchmarkAblation*            — design-choice ablations (DESIGN.md §5)
package repro

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/units"
	"repro/internal/workload"
)

// benchGrid runs a configuration grid serially and returns the summary.
func benchGrid(b *testing.B, cfgs []experiment.Config) *experiment.Summary {
	b.Helper()
	results, err := experiment.RunAll(cfgs, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	return experiment.Summarize(results)
}

// figGrid builds a scaled grid for one AQM: the given pairings at 100 Mbps
// (the tier whose simulation cost permits full buffer resolution) across
// all six paper buffer sizes.
func figGrid(kind aqm.Kind, pairings []experiment.Pairing, dur time.Duration) []experiment.Config {
	var cfgs []experiment.Config
	for _, p := range pairings {
		for _, q := range experiment.PaperQueueMults() {
			cfgs = append(cfgs, experiment.Config{
				Pairing:    p,
				AQM:        kind,
				QueueBDP:   q,
				Bottleneck: 100 * units.MegabitPerSec,
				Duration:   dur,
			})
		}
	}
	return cfgs
}

func BenchmarkTable2FlowPlans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bw := range units.PaperBandwidths() {
			p := workload.PaperPlan(bw)
			if p.FlowsPerNode() == 0 {
				b.Fatal("empty plan")
			}
		}
	}
}

func BenchmarkFig2ThroughputFIFO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchGrid(b, figGrid(aqm.KindFIFO, experiment.InterPairings(), 10*time.Second))
		// Headline: the equilibrium point where CUBIC overtakes BBRv1
		// (the paper measured 2×BDP at 100 Mbps).
		if q, ok := s.EquilibriumBDP(experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
			aqm.KindFIFO, 100*units.MegabitPerSec); ok {
			b.ReportMetric(q, "equilibriumBDP")
		}
	}
}

func BenchmarkFig3JainFIFO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchGrid(b, figGrid(aqm.KindFIFO, experiment.PaperPairings(), 10*time.Second))
		var js []float64
		for _, p := range experiment.IntraPairings() {
			if c := s.Lookup(p, aqm.KindFIFO, 2, 100*units.MegabitPerSec); c != nil {
				js = append(js, c.Jain)
			}
		}
		b.ReportMetric(metrics.Mean(js), "meanIntraJain")
	}
}

func BenchmarkFig4ThroughputRED(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchGrid(b, figGrid(aqm.KindRED, experiment.InterPairings(), 10*time.Second))
		// Headline: BBRv1's share of the link against CUBIC under RED
		// (the paper shows near-total dominance).
		c := s.Lookup(experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
			aqm.KindRED, 2, 100*units.MegabitPerSec)
		if c != nil && c.SenderBps[0]+c.SenderBps[1] > 0 {
			b.ReportMetric(c.SenderBps[0]/(c.SenderBps[0]+c.SenderBps[1]), "bbr1Share")
		}
	}
}

func BenchmarkFig5JainRED(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchGrid(b, figGrid(aqm.KindRED, experiment.PaperPairings(), 10*time.Second))
		c := s.Lookup(experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
			aqm.KindRED, 2, 100*units.MegabitPerSec)
		if c != nil {
			b.ReportMetric(c.Jain, "bbr1VsCubicJain")
		}
	}
}

func BenchmarkFig6JainFQCoDel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchGrid(b, figGrid(aqm.KindFQCoDel, experiment.PaperPairings(), 10*time.Second))
		var js []float64
		for _, p := range experiment.PaperPairings() {
			if c := s.Lookup(p, aqm.KindFQCoDel, 2, 100*units.MegabitPerSec); c != nil {
				js = append(js, c.Jain)
			}
		}
		// The paper's Figure 6: J ≈ 1 across the board.
		b.ReportMetric(metrics.Mean(js), "meanJain")
	}
}

// fig78Grid: intra-CCA pairings at the two figure buffer sizes across two
// bandwidth tiers, for all three AQMs.
func fig78Grid(dur time.Duration) []experiment.Config {
	var cfgs []experiment.Config
	for _, kind := range aqm.Kinds() {
		for _, p := range experiment.IntraPairings() {
			for _, q := range []float64{2, 16} {
				for _, bw := range []units.Bandwidth{100 * units.MegabitPerSec, units.GigabitPerSec} {
					d := dur
					if bw >= units.GigabitPerSec {
						d = dur / 2
					}
					cfgs = append(cfgs, experiment.Config{
						Pairing: p, AQM: kind, QueueBDP: q, Bottleneck: bw, Duration: d,
					})
				}
			}
		}
	}
	return cfgs
}

func BenchmarkFig7Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchGrid(b, fig78Grid(10*time.Second))
		var fifo, red []float64
		for _, p := range experiment.IntraPairings() {
			if c := s.Lookup(p, aqm.KindFIFO, 2, units.GigabitPerSec); c != nil {
				fifo = append(fifo, c.Utilization)
			}
			if c := s.Lookup(p, aqm.KindRED, 2, units.GigabitPerSec); c != nil {
				red = append(red, c.Utilization)
			}
		}
		// The paper's headline: FIFO fills the link, RED lags at ≥1 Gbps.
		b.ReportMetric(metrics.Mean(fifo), "fifoUtil1G")
		b.ReportMetric(metrics.Mean(red), "redUtil1G")
	}
}

func BenchmarkFig8Retransmissions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchGrid(b, fig78Grid(10*time.Second))
		b1 := s.Lookup(experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.BBRv1},
			aqm.KindFIFO, 2, 100*units.MegabitPerSec)
		cu := s.Lookup(experiment.Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
			aqm.KindFIFO, 2, 100*units.MegabitPerSec)
		if b1 != nil && cu != nil && cu.Retransmits > 0 {
			// The paper: BBRv1 retransmits far more than CUBIC.
			b.ReportMetric(b1.Retransmits/cu.Retransmits, "bbr1OverCubicRtx")
		}
	}
}

func BenchmarkTable3Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cfgs []experiment.Config
		for _, kind := range aqm.Kinds() {
			for _, p := range experiment.PaperPairings() {
				for _, q := range []float64{2, 16} {
					cfgs = append(cfgs, experiment.Config{
						Pairing: p, AQM: kind, QueueBDP: q,
						Bottleneck: 100 * units.MegabitPerSec,
						Duration:   10 * time.Second,
					})
				}
			}
		}
		s := benchGrid(b, cfgs)
		rows := s.Table3()
		if len(rows) == 0 {
			b.Fatal("empty table 3")
		}
		// Headline: best Avg(φ) row.
		best := 0.0
		for _, r := range rows {
			if r.AvgPhi > best {
				best = r.AvgPhi
			}
		}
		b.ReportMetric(best, "bestAvgPhi")
	}
}

// BenchmarkBandwidthScaling measures raw simulator cost (events and wall
// time) per simulated second at each paper bandwidth tier.
func BenchmarkBandwidthScaling(b *testing.B) {
	tiers := []struct {
		name string
		bw   units.Bandwidth
		dur  time.Duration
	}{
		{"100Mbps", 100 * units.MegabitPerSec, 5 * time.Second},
		{"1Gbps", units.GigabitPerSec, 2 * time.Second},
		{"10Gbps", 10 * units.GigabitPerSec, 500 * time.Millisecond},
	}
	for _, tier := range tiers {
		b.Run(tier.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Config{
					Pairing:    experiment.Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
					AQM:        aqm.KindFIFO,
					QueueBDP:   2,
					Bottleneck: tier.bw,
					Duration:   tier.dur,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Events)/tier.dur.Seconds(), "events/simsec")
			}
		})
	}
}

// BenchmarkAblationAQM compares end-to-end cost and utilization of the
// three queue disciplines under identical CUBIC traffic.
func BenchmarkAblationAQM(b *testing.B) {
	for _, kind := range aqm.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Config{
					Pairing:    experiment.Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
					AQM:        kind,
					QueueBDP:   2,
					Bottleneck: 500 * units.MegabitPerSec,
					Duration:   5 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Utilization, "utilization")
			}
		})
	}
}

// BenchmarkAblationFlowScaling: how simulation cost grows with the number
// of concurrent flows at a fixed bandwidth (iperf3 process scaling).
func BenchmarkAblationFlowScaling(b *testing.B) {
	for _, flows := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "1flow", 4: "4flows", 16: "16flows"}[flows], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Config{
					Pairing:        experiment.Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
					AQM:            aqm.KindFIFO,
					QueueBDP:       2,
					Bottleneck:     500 * units.MegabitPerSec,
					Duration:       5 * time.Second,
					FlowsPerSender: flows,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Jain, "jain")
			}
		})
	}
}

// BenchmarkAblationBBRInflightCap quantifies the effect the paper leans on
// most: BBRv1's 2×BDP inflight cap versus CUBIC's uncapped buffer
// occupancy, measured as BBR's throughput share at small vs large FIFO
// buffers.
func BenchmarkAblationBBRInflightCap(b *testing.B) {
	for _, q := range []float64{0.5, 16} {
		name := "smallBuffer"
		if q > 1 {
			name = "largeBuffer"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Config{
					Pairing:    experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
					AQM:        aqm.KindFIFO,
					QueueBDP:   q,
					Bottleneck: 100 * units.MegabitPerSec,
					Duration:   15 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				total := res.SenderBps[0] + res.SenderBps[1]
				if total > 0 {
					b.ReportMetric(res.SenderBps[0]/total, "bbrShare")
				}
			}
		})
	}
}

// BenchmarkAblationHyStart quantifies CUBIC's HyStart: startup
// retransmissions into a deep buffer with and without delay-based slow
// start exit.
func BenchmarkAblationHyStart(b *testing.B) {
	for _, variant := range []cca.Name{cca.Cubic, cca.CubicNoHyStart} {
		b.Run(string(variant), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Config{
					Pairing:    experiment.Pairing{CCA1: variant, CCA2: variant},
					AQM:        aqm.KindFIFO,
					QueueBDP:   16,
					Bottleneck: 100 * units.MegabitPerSec,
					Duration:   10 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.TotalRetransmits), "retransmits")
			}
		})
	}
}

// BenchmarkAblationFastConvergence: CUBIC's fast-convergence heuristic is
// meant to speed up bandwidth release to new flows; compare the fairness a
// late-starting flow achieves against each variant.
func BenchmarkAblationFastConvergence(b *testing.B) {
	for _, variant := range []cca.Name{cca.Cubic, cca.CubicNoFastConv} {
		b.Run(string(variant), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Config{
					Pairing:    experiment.Pairing{CCA1: variant, CCA2: variant},
					AQM:        aqm.KindFIFO,
					QueueBDP:   2,
					Bottleneck: 100 * units.MegabitPerSec,
					Duration:   20 * time.Second,
					// Large start spread: the second sender joins late.
					StartSpread: 5 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Jain, "jain")
			}
		})
	}
}

// BenchmarkAblationDelayedAck compares per-packet acknowledgements (the
// harness default, iperf3-like) against RFC 1122 delayed ACKs.
func BenchmarkAblationDelayedAck(b *testing.B) {
	for _, delack := range []bool{false, true} {
		name := "perPacketAck"
		if delack {
			name = "delayedAck"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Config{
					Pairing:    experiment.Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
					AQM:        aqm.KindFIFO,
					QueueBDP:   2,
					Bottleneck: 500 * units.MegabitPerSec,
					Duration:   10 * time.Second,
					DelayedAck: delack,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Utilization, "utilization")
				b.ReportMetric(float64(res.Events), "events")
			}
		})
	}
}
