package netem

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func data(size units.ByteSize) *packet.Packet {
	p := packet.New()
	p.Kind = packet.Data
	p.Size = size
	return p
}

func TestPortSerializationTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	// 100 Mbps, 10 ms propagation. 8960B => 716.8us serialization.
	po := NewPort(eng, "p", 100*units.MegabitPerSec, 10*time.Millisecond, aqm.NewFIFO(1<<20), sink)
	po.Send(data(8960))
	eng.Run()
	want := sim.Duration(716800*time.Nanosecond + 10*time.Millisecond)
	if sink.LastAt != want {
		t.Fatalf("delivery at %v, want %v", sink.LastAt, want)
	}
	if sink.Packets != 1 {
		t.Fatalf("packets = %d", sink.Packets)
	}
}

func TestPortBackToBackRate(t *testing.T) {
	// N packets sent at once drain at exactly the link rate.
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", 1*units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	const n = 100
	for i := 0; i < n; i++ {
		po.Send(data(8960))
	}
	eng.Run()
	wantDur := units.TransmissionTime(8960*n, 1*units.GigabitPerSec)
	if got := sink.LastAt.Std(); got != wantDur {
		t.Fatalf("drained in %v, want %v", got, wantDur)
	}
	if po.TxPackets() != n || po.TxBytes() != 8960*n {
		t.Fatalf("tx counters: %d pkts %d bytes", po.TxPackets(), po.TxBytes())
	}
}

func TestPortQueueOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", 10*units.MegabitPerSec, 0, aqm.NewFIFO(20_000), sink)
	for i := 0; i < 10; i++ { // 89.6KB offered into a 20KB queue
		po.Send(data(8960))
	}
	eng.Run()
	if po.Queue().Stats().Dropped == 0 {
		t.Fatal("expected tail drops")
	}
	if sink.Packets+po.Queue().Stats().Dropped != 10 {
		t.Fatalf("conservation: %d delivered + %d dropped != 10",
			sink.Packets, po.Queue().Stats().Dropped)
	}
}

func TestPathChaining(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	p3 := NewPort(eng, "p3", 1*units.GigabitPerSec, 5*time.Millisecond, nil, sink)
	p2 := NewPort(eng, "p2", 1*units.GigabitPerSec, 5*time.Millisecond, nil, nil)
	p1 := NewPort(eng, "p1", 1*units.GigabitPerSec, 5*time.Millisecond, nil, nil)
	path := NewPath(p1, p2, p3)
	path.Inject(0, data(1000))
	eng.Run()
	if sink.Packets != 1 {
		t.Fatal("packet lost in path")
	}
	// Three hops: 3 × (8us serialization + 5ms propagation).
	wantMin := sim.Duration(15 * time.Millisecond)
	if sink.LastAt < wantMin {
		t.Fatalf("delivered too early: %v < %v", sink.LastAt, wantMin)
	}
}

func TestEmptyPathReleases(t *testing.T) {
	path := NewPath()
	path.Inject(0, data(1000)) // must not panic or leak
}

func TestBottleneckQueueing(t *testing.T) {
	// Fast ingress into a slow egress builds a queue at the slow port.
	eng := sim.NewEngine(1)
	sink := &Sink{}
	slow := NewPort(eng, "slow", 10*units.MegabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	fast := NewPort(eng, "fast", 1*units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), slow)
	maxQ := 0
	for i := 0; i < 50; i++ {
		fast.Send(data(8960))
	}
	// Sample queue length as the simulation progresses.
	for i := 0; i < 100; i++ {
		eng.Schedule(time.Duration(i)*100*time.Microsecond, func() {
			if l := slow.Queue().Len(); l > maxQ {
				maxQ = l
			}
		})
	}
	eng.Run()
	if maxQ < 10 {
		t.Fatalf("no queue built at bottleneck (max %d)", maxQ)
	}
	if sink.Packets != 50 {
		t.Fatalf("delivered %d, want 50", sink.Packets)
	}
}

func TestReceiverFunc(t *testing.T) {
	called := false
	var r Receiver = ReceiverFunc(func(now sim.Time, p *packet.Packet) {
		called = true
		packet.Release(p)
	})
	r.Receive(0, data(100))
	if !called {
		t.Fatal("ReceiverFunc not invoked")
	}
}

func TestNilDstReleases(t *testing.T) {
	eng := sim.NewEngine(1)
	po := NewPort(eng, "p", 1*units.GigabitPerSec, 0, nil, nil)
	po.Send(data(100))
	eng.Run()
	if po.TxPackets() != 1 {
		t.Fatal("packet should still be transmitted")
	}
}

func BenchmarkPortForwarding(b *testing.B) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", 25*units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		po.Send(data(8960))
		eng.Run()
	}
}

func TestSojournStats(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	// 10 Mbps: each 8960B packet serializes in ~7.17ms, so the 5th packet
	// queues for ~4 serialization times.
	po := NewPort(eng, "p", 10*units.MegabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	if po.Sojourn() != (SojournStats{}) {
		t.Fatal("empty port should report zero sojourn")
	}
	for i := 0; i < 5; i++ {
		po.Send(data(8960))
	}
	eng.Run()
	st := po.Sojourn()
	if st.Max < 25*time.Millisecond || st.Max > 35*time.Millisecond {
		t.Fatalf("max sojourn = %v, want ~4×7.17ms", st.Max)
	}
	if st.Mean <= 0 || st.Mean > st.Max {
		t.Fatalf("mean sojourn = %v (max %v)", st.Mean, st.Max)
	}
}
