// Package netem models the forwarding plane: ports that serialize packets
// onto links at a configured rate, drain a pluggable AQM queue, and deliver
// after a propagation delay. Chaining ports builds arbitrary paths; the
// dumbbell of the paper is four chained ports per direction (client NIC →
// router1 bottleneck port → router2 port → server NIC).
package netem

import (
	"fmt"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// testHookSkipDownDropAccounting deliberately omits the downDrops increment
// when a flap drains the egress queue. It exists only so the audit test
// suite can prove the invariant auditor catches a real accounting bug (a
// drop that is destroyed but never counted); it is never set in production.
var testHookSkipDownDropAccounting bool

// Receiver consumes packets at the end of a link: another Port, or a
// protocol endpoint.
type Receiver interface {
	Receive(now sim.Time, p *packet.Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(now sim.Time, p *packet.Packet)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(now sim.Time, p *packet.Packet) { f(now, p) }

// Port is one egress interface: a queue drained at the link rate, with each
// transmitted packet delivered to dst after the propagation delay. Port
// itself implements Receiver so ports chain into paths.
type Port struct {
	Name string

	eng   *sim.Engine
	rate  units.Bandwidth
	delay time.Duration
	queue aqm.Queue
	dst   Receiver
	busy  bool

	// Handler adapters for the two per-packet events (serialization done,
	// propagation delivery). Stable addresses inside the Port let the
	// engine's pooled-event path run without a closure or Event allocation
	// per packet.
	txDoneH  portTxDone
	deliverH portDeliver

	// Fault injection (the paper's "network anomalies" future work):
	// lossRate drops transmitted packets uniformly at random; ge overlays a
	// Gilbert–Elliott bursty-loss chain; jitter adds a uniform extra delay
	// in [0, jitter) per packet; down models a carrier loss (link flap).
	// The RNG is derived from the engine's seeded RNG on first use, so
	// fault behaviour is bit-reproducible per engine seed.
	lossRate float64
	jitter   time.Duration
	rng      *sim.RNG
	ge       geChain
	down     bool

	// allowReorder lets jittered deliveries overtake each other; by default
	// delivery times are clamped monotonic per port (a link does not
	// reorder frames).
	allowReorder  bool
	lastDeliverAt sim.Time

	txPackets uint64
	txBytes   units.ByteSize
	lossDrops uint64
	downDrops uint64

	// Queueing-delay telemetry (sojourn from enqueue to serialization
	// start) — the direct evidence of bufferbloat the paper reasons about.
	sojournSum sim.Time
	sojournMax sim.Time

	// Occupancy high-watermark, maintained unconditionally: two compares
	// per enqueue, no events, no allocation — cheap enough to keep on so
	// every Result reports its bottleneck's peak standing queue.
	peakQBytes units.ByteSize
	peakQPkts  int

	// trc, when non-nil, is this port's telemetry ring (picked up from the
	// engine at construction, like the auditor). Enqueue/dequeue/drop/fault
	// events are gated on one nil check each.
	trc *telemetry.PortTracer

	// Invariant auditing (nil = disabled; picked up from the engine at
	// construction). The aud* counters are the auditor's independent view of
	// the port: at end of run they must reconcile with the production
	// counters (queue stats, lossDrops, downDrops) — an uncounted drop or a
	// leaked packet breaks the equation. Each hot-path touch is gated on one
	// nil check so a disabled port pays a branch, not an allocation.
	aud            *audit.Auditor
	audOffered     uint64 // packets entering Send
	audQueueOps    uint64 // queue operations since the last deep SelfCheck
	audQueueOffer  uint64 // Enqueue calls on the queue
	audInFlight    uint64 // packets serializing or propagating
	audDelivered   uint64 // packets handed to dst (or consumed at a nil dst)
	audSelfChecker aqm.SelfChecker
}

// SojournStats summarizes the queueing delay seen by transmitted packets.
type SojournStats struct {
	Mean time.Duration
	Max  time.Duration
}

// Sojourn returns the mean and maximum queueing delay so far.
func (po *Port) Sojourn() SojournStats {
	if po.txPackets == 0 {
		return SojournStats{}
	}
	return SojournStats{
		Mean: (po.sojournSum / sim.Time(po.txPackets)).Std(),
		Max:  po.sojournMax.Std(),
	}
}

// NewPort builds an egress port transmitting at rate with propagation delay
// toward dst, buffering in queue.
func NewPort(eng *sim.Engine, name string, rate units.Bandwidth, delay time.Duration, queue aqm.Queue, dst Receiver) *Port {
	if queue == nil {
		queue = aqm.NewFIFO(1 << 40) // effectively unbuffered-loss-free
	}
	po := &Port{Name: name, eng: eng, rate: rate, delay: delay, queue: queue, dst: dst}
	po.txDoneH.po = po
	po.deliverH.po = po
	if a := eng.Auditor(); a != nil {
		po.aud = a
		po.audSelfChecker, _ = queue.(aqm.SelfChecker)
		a.RegisterNet(po.auditSample)
		a.OnFinish("netem", "port-conservation", po.auditFinish)
	}
	if t := eng.Tracer(); t != nil {
		po.trc = t.Port(name)
		// The discipline shares the port's ring so its drop law's verdicts
		// (RED early vs forced, CoDel control law, fat-flow eviction) land
		// in the same timeline as the port's enqueues and dequeues.
		if ts, ok := queue.(aqm.TraceSink); ok {
			ts.SetTrace(po.trc)
		}
	}
	return po
}

// auditSample reports this port's contribution to the global conservation
// ledger using its production counters: destroyed = AQM drops + injected
// loss + flap destruction; resident = queued + serializing/propagating.
func (po *Port) auditSample() audit.NetSample {
	qs := po.queue.Stats()
	return audit.NetSample{
		Name:     po.Name,
		Dropped:  int64(qs.Dropped + po.lossDrops + po.downDrops),
		Resident: int64(uint64(po.queue.Len()) + po.audInFlight),
	}
}

// auditFinish settles the per-port books at end of run: every packet
// offered to the port must be accounted by exactly one production drop
// counter, still be resident, or have been handed to the next element.
// Because the drop side is the production counters, a skipped increment
// (for example a flap drain that destroys a packet without counting it)
// shows up as an imbalance here.
func (po *Port) auditFinish() error {
	qs := po.queue.Stats()
	accounted := qs.Dropped + po.lossDrops + po.downDrops +
		uint64(po.queue.Len()) + po.audInFlight + po.audDelivered
	if po.audOffered != accounted {
		return fmt.Errorf(
			"port %s: offered=%d != aqm-dropped=%d + loss-dropped=%d + flap-dropped=%d + queued=%d + in-flight=%d + delivered=%d (off by %d)",
			po.Name, po.audOffered, qs.Dropped, po.lossDrops, po.downDrops,
			po.queue.Len(), po.audInFlight, po.audDelivered,
			int64(po.audOffered)-int64(accounted))
	}
	if po.audSelfChecker != nil {
		if err := po.audSelfChecker.SelfCheck(); err != nil {
			return fmt.Errorf("port %s: %w", po.Name, err)
		}
	}
	return nil
}

// auditSelfCheckEvery is how many queue operations pass between O(queue)
// deep SelfCheck walks on an audited port. The cheap per-op checks
// (occupancy bounds, counter balance) still run on every operation.
const auditSelfCheckEvery = 512

// auditQueueOp validates the queue after one Enqueue/Dequeue on an audited
// port: occupancy within [0, capacity], and the universal discipline
// balance offered = dequeued + dropped + queued (which holds for all four
// AQMs despite their differing Enqueued semantics). Every
// auditSelfCheckEvery ops it also runs the discipline's own deep walk.
func (po *Port) auditQueueOp() {
	q := po.queue
	if b := q.Bytes(); b < 0 || b > q.Capacity() {
		po.aud.Failf("aqm", "occupancy-bounds",
			"port %s: queue %s holds %d bytes, capacity %d", po.Name, q.Name(), b, q.Capacity())
	}
	if n := q.Len(); n < 0 {
		po.aud.Failf("aqm", "occupancy-bounds",
			"port %s: queue %s reports negative length %d", po.Name, q.Name(), n)
	}
	qs := q.Stats()
	if acc := qs.Dequeued + qs.Dropped + uint64(q.Len()); po.audQueueOffer != acc {
		po.aud.Failf("aqm", "counter-balance",
			"port %s: queue %s offered=%d != dequeued=%d + dropped=%d + queued=%d",
			po.Name, q.Name(), po.audQueueOffer, qs.Dequeued, qs.Dropped, q.Len())
	}
	po.audQueueOps++
	if po.audSelfChecker != nil && po.audQueueOps%auditSelfCheckEvery == 0 {
		if err := po.audSelfChecker.SelfCheck(); err != nil {
			po.aud.Failf("aqm", "self-check", "port %s: %v", po.Name, err)
		}
	}
}

// Queue exposes the port's queue (for telemetry and tests).
func (po *Port) Queue() aqm.Queue { return po.queue }

// PeakQueue returns the highest queue occupancy (bytes, packets) the port
// has seen. Maintained unconditionally, so it is available whether or not
// tracing or sampling is enabled.
func (po *Port) PeakQueue() (units.ByteSize, int) { return po.peakQBytes, po.peakQPkts }

// Rate returns the configured link rate.
func (po *Port) Rate() units.Bandwidth { return po.rate }

// TxPackets returns how many packets have been put on the wire.
func (po *Port) TxPackets() uint64 { return po.txPackets }

// TxBytes returns how many bytes have been put on the wire.
func (po *Port) TxBytes() units.ByteSize { return po.txBytes }

// SetDst rewires the port's destination (used by topology builders).
func (po *Port) SetDst(dst Receiver) { po.dst = dst }

// ensureRNG lazily derives the port's private random stream from the
// engine's seeded RNG. Deriving (rather than sharing) keeps per-packet
// draws from perturbing other consumers of the engine RNG, while still
// making every fault decision a pure function of the engine seed and the
// deterministic construction order.
func (po *Port) ensureRNG() {
	if po.rng == nil {
		po.rng = sim.NewRNG(po.eng.RNG().Uint64())
	}
}

// SetLoss makes the port drop transmitted packets uniformly at random with
// the given probability — corruption/anomaly injection on the wire, after
// the queue (so AQM statistics stay clean).
func (po *Port) SetLoss(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	po.lossRate = rate
	po.ensureRNG()
}

// geChain is a two-state Gilbert–Elliott loss process: per transmitted
// packet the chain drops with the current state's loss probability, then
// transitions good→bad with pGB or bad→good with pBG. Mean burst length is
// 1/pBG packets; the stationary bad fraction is pGB/(pGB+pBG).
type geChain struct {
	enabled                bool
	bad                    bool
	pGB, pBG, lossG, lossB float64
}

// step advances the chain one packet and reports whether to drop it.
func (g *geChain) step(rng *sim.RNG) bool {
	p := g.lossG
	if g.bad {
		p = g.lossB
	}
	drop := p > 0 && rng.Float64() < p
	if g.bad {
		if rng.Float64() < g.pBG {
			g.bad = false
		}
	} else if rng.Float64() < g.pGB {
		g.bad = true
	}
	return drop
}

// SetGELoss arms a Gilbert–Elliott bursty-loss chain on the port (the
// fault-injection layer's burst-loss model). Probabilities are clamped to
// [0, 1]; all-zero loss probabilities disable the chain. The chain starts
// in the good state and evolves once per transmitted packet on the port's
// deterministic RNG, independently of the uniform SetLoss rate.
func (po *Port) SetGELoss(pGB, pBG, lossGood, lossBad float64) {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	po.ge = geChain{
		pGB:   clamp(pGB),
		pBG:   clamp(pBG),
		lossG: clamp(lossGood),
		lossB: clamp(lossBad),
	}
	po.ge.enabled = po.ge.lossG > 0 || po.ge.lossB > 0
	if po.ge.enabled {
		po.ensureRNG()
	}
}

// SetJitter adds a uniform random extra propagation delay in [0, d) per
// packet. By default delivery remains in-order (delivery times are clamped
// monotonic per port); call SetAllowReorder(true) to let late draws
// overtake earlier packets.
func (po *Port) SetJitter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	po.jitter = d
	po.ensureRNG()
}

// SetAllowReorder controls whether jitter (or a shrinking propagation
// delay) may reorder deliveries. The default is false: a port models a
// FIFO link, so delivery times are clamped to be non-decreasing.
func (po *Port) SetAllowReorder(allow bool) { po.allowReorder = allow }

// SetRate changes the link rate mid-run (a fault-injection bandwidth
// step). The packet currently being serialized finishes at the old rate;
// subsequent packets use the new one. Non-positive rates are ignored —
// model an outage with SetDown instead.
func (po *Port) SetRate(rate units.Bandwidth) {
	if rate > 0 {
		po.rate = rate
		if po.trc != nil {
			po.trc.Fault(int64(po.eng.Now()), telemetry.FaultRate, int64(rate), 0)
		}
	}
}

// Delay returns the configured propagation delay.
func (po *Port) Delay() time.Duration { return po.delay }

// SetDelay changes the propagation delay mid-run (a fault-injection RTT
// step). Negative delays clamp to zero. Unless SetAllowReorder(true) is
// set, a shrinking delay cannot reorder packets already in flight: new
// deliveries are clamped behind the latest scheduled delivery.
func (po *Port) SetDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	po.delay = d
	if po.trc != nil {
		po.trc.Fault(int64(po.eng.Now()), telemetry.FaultDelay, d.Nanoseconds(), 0)
	}
}

// SetDown flaps the link carrier. Taking the port down drains and drops
// the entire egress queue (the router flushes buffers on carrier loss) and
// destroys every packet offered or serialized while down; bringing it back
// up restarts the transmitter. Packets already past serialization (in
// propagation) still arrive — they are on the wire ahead of the failure.
func (po *Port) SetDown(down bool) {
	if po.down == down {
		return
	}
	po.down = down
	if down {
		now := po.eng.Now()
		var drained int64
		for {
			p := po.queue.Dequeue(now)
			if p == nil {
				break
			}
			if !testHookSkipDownDropAccounting {
				po.downDrops++
			}
			drained++
			if po.trc != nil {
				po.trc.Drop(int64(now), uint32(p.Flow), telemetry.DropLinkDown,
					int64(p.Size), int64(po.queue.Bytes()))
			}
			packet.Release(p)
		}
		if po.trc != nil {
			po.trc.Fault(int64(now), telemetry.FaultDown, 0, drained)
		}
		if po.aud != nil {
			po.auditQueueOp()
		}
		return
	}
	if po.trc != nil {
		po.trc.Fault(int64(po.eng.Now()), telemetry.FaultUp, 0, 0)
	}
	if !po.busy {
		po.transmitNext()
	}
}

// Down reports whether the link is currently flapped down.
func (po *Port) Down() bool { return po.down }

// LossDrops returns how many packets were destroyed by injected loss
// (uniform and Gilbert–Elliott).
func (po *Port) LossDrops() uint64 { return po.lossDrops }

// DownDrops returns how many packets were destroyed by link flaps.
func (po *Port) DownDrops() uint64 { return po.downDrops }

// Receive implements Receiver: forward the packet out this port.
func (po *Port) Receive(now sim.Time, p *packet.Packet) { po.Send(p) }

// Send offers a packet to the egress queue and kicks the transmitter.
func (po *Port) Send(p *packet.Packet) {
	if po.aud != nil {
		po.audOffered++
	}
	if po.down {
		po.downDrops++
		if po.trc != nil {
			po.trc.Drop(int64(po.eng.Now()), uint32(p.Flow), telemetry.DropLinkDown,
				int64(p.Size), int64(po.queue.Bytes()))
		}
		packet.Release(p)
		return
	}
	now := po.eng.Now()
	if po.aud != nil {
		po.audQueueOffer++
	}
	if !po.queue.Enqueue(now, p) {
		if po.aud != nil {
			po.auditQueueOp()
		}
		return // queue dropped (and released) it; the discipline traced it
	}
	if qb := po.queue.Bytes(); qb > po.peakQBytes {
		po.peakQBytes = qb
	}
	if n := po.queue.Len(); n > po.peakQPkts {
		po.peakQPkts = n
	}
	if po.trc != nil {
		po.trc.Enqueue(int64(now), uint32(p.Flow), int64(po.queue.Bytes()), int64(po.queue.Len()))
	}
	if po.aud != nil {
		po.auditQueueOp()
	}
	if !po.busy {
		po.transmitNext()
	}
}

// transmitNext pulls the next packet from the queue and models its
// serialization time; delivery happens a propagation delay after the last
// bit leaves.
func (po *Port) transmitNext() {
	now := po.eng.Now()
	p := po.queue.Dequeue(now)
	if po.aud != nil {
		po.auditQueueOp()
		if p != nil {
			po.audInFlight++
		}
	}
	if p == nil {
		po.busy = false
		return
	}
	po.busy = true
	// Every packet passes Enqueue before reaching here, so EnqueueAt is
	// always stamped (possibly 0 at simulation start).
	sojourn := now - p.EnqueueAt
	if sojourn > 0 {
		po.sojournSum += sojourn
		if sojourn > po.sojournMax {
			po.sojournMax = sojourn
		}
	}
	if po.trc != nil {
		po.trc.Dequeue(int64(now), uint32(p.Flow), int64(po.queue.Bytes()), int64(sojourn))
	}
	txTime := units.TransmissionTime(p.Size, po.rate)
	po.eng.ScheduleHandler(txTime, &po.txDoneH, p)
}

// portTxDone fires when the last bit of a packet leaves the serializer.
type portTxDone struct{ po *Port }

// OnEvent implements sim.Handler; arg is the transmitted *packet.Packet.
func (h *portTxDone) OnEvent(arg any) {
	po := h.po
	p := arg.(*packet.Packet)
	po.txPackets++
	po.txBytes += p.Size
	switch {
	case po.dst == nil:
		// No next element: the port itself is the packet's terminus, so it
		// reports the consumption to keep the global ledger balanced.
		if po.aud != nil {
			po.audInFlight--
			po.audDelivered++
			po.aud.PacketConsumed()
		}
		packet.Release(p)
	case po.down:
		// Carrier dropped while the packet was serializing.
		po.downDrops++
		if po.aud != nil {
			po.audInFlight--
		}
		if po.trc != nil {
			po.trc.Drop(int64(po.eng.Now()), uint32(p.Flow), telemetry.DropLinkDown,
				int64(p.Size), int64(po.queue.Bytes()))
		}
		packet.Release(p)
	case po.ge.enabled && po.ge.step(po.rng):
		po.lossDrops++
		if po.aud != nil {
			po.audInFlight--
		}
		if po.trc != nil {
			po.trc.Drop(int64(po.eng.Now()), uint32(p.Flow), telemetry.DropLoss,
				int64(p.Size), int64(po.queue.Bytes()))
		}
		packet.Release(p)
	case po.lossRate > 0 && po.rng.Float64() < po.lossRate:
		po.lossDrops++
		if po.aud != nil {
			po.audInFlight--
		}
		if po.trc != nil {
			po.trc.Drop(int64(po.eng.Now()), uint32(p.Flow), telemetry.DropLoss,
				int64(p.Size), int64(po.queue.Bytes()))
		}
		packet.Release(p)
	default:
		delay := po.delay
		if po.jitter > 0 {
			delay += time.Duration(po.rng.Jitter(float64(po.jitter)))
		}
		now := po.eng.Now()
		at := now + sim.Duration(delay)
		if !po.allowReorder && at < po.lastDeliverAt {
			at = po.lastDeliverAt // FIFO link: never overtake an earlier packet
		}
		po.lastDeliverAt = at
		if at > now {
			po.eng.ScheduleHandlerAt(at, &po.deliverH, p)
		} else {
			if po.aud != nil {
				po.audInFlight--
				po.audDelivered++
			}
			po.dst.Receive(now, p)
		}
	}
	po.transmitNext()
}

// portDeliver fires when a packet's propagation delay elapses.
type portDeliver struct{ po *Port }

// OnEvent implements sim.Handler; arg is the delivered *packet.Packet.
func (h *portDeliver) OnEvent(arg any) {
	po := h.po
	p := arg.(*packet.Packet)
	if po.aud != nil {
		po.audInFlight--
		po.audDelivered++
	}
	po.dst.Receive(po.eng.Now(), p)
}

// Path is a convenience wrapper: a sequence of ports ending at an endpoint.
type Path struct {
	first Receiver
}

// NewPath chains hops so that packets injected at the head traverse each
// port in order. The last hop must already point at the final endpoint.
func NewPath(hops ...*Port) *Path {
	if len(hops) == 0 {
		return &Path{}
	}
	for i := 0; i < len(hops)-1; i++ {
		hops[i].SetDst(hops[i+1])
	}
	return &Path{first: hops[0]}
}

// Inject starts a packet down the path.
func (pa *Path) Inject(now sim.Time, p *packet.Packet) {
	if pa.first == nil {
		packet.Release(p)
		return
	}
	pa.first.Receive(now, p)
}

// Sink counts and releases everything it receives; useful in tests and as a
// drop target. When Auditor is set, each received packet is reported as
// terminally consumed for the conservation ledger.
type Sink struct {
	Packets uint64
	Bytes   units.ByteSize
	LastAt  sim.Time
	Auditor *audit.Auditor
}

// Receive implements Receiver.
func (s *Sink) Receive(now sim.Time, p *packet.Packet) {
	s.Packets++
	s.Bytes += p.Size
	s.LastAt = now
	if s.Auditor != nil {
		s.Auditor.PacketConsumed()
	}
	packet.Release(p)
}
