package netem

import (
	"strings"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// TestViolationCarriesFlightRecorder seeds the same accounting bug the
// auditor test uses, but with telemetry armed: the Violation the auditor
// raises must embed the flight-recorder dump — the trailing ring events as
// parseable NDJSON — and the rendered report must show them. This is the
// tracer's first consumer: a sweep failure arrives with the event history
// that led up to it, not just a counter snapshot.
func TestViolationCarriesFlightRecorder(t *testing.T) {
	testHookSkipDownDropAccounting = true
	defer func() { testHookSkipDownDropAccounting = false }()

	eng := sim.NewEngine(1)
	aud := audit.New("netem-flight")
	eng.SetAuditor(aud)
	trc := telemetry.New(telemetry.Options{RingCap: 1024, FlightTail: 256})
	eng.SetTracer(trc)

	q, err := aqm.New(aqm.Config{Kind: aqm.KindFIFO, Capacity: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	sink := &Sink{Auditor: aud}
	po := NewPort(eng, "bneck", 10*units.MegabitPerSec, time.Millisecond, q, sink)

	// Flap near the end of the offered load so the drain's link_down drops
	// sit inside the flight tail rather than being overwritten by later
	// steady-state enqueue/dequeue events.
	injected := overdrive(eng, aud, po, 200*time.Millisecond)
	eng.Schedule(190*time.Millisecond, func() { po.SetDown(true) })
	eng.Schedule(195*time.Millisecond, func() { po.SetDown(false) })
	eng.RunFor(time.Second)
	if *injected == 0 {
		t.Fatal("nothing injected")
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("auditor did not catch the uncounted flap drain")
		}
		v, ok := r.(*audit.Violation)
		if !ok {
			t.Fatalf("panic value is %T, want *audit.Violation", r)
		}
		if v.Trace == "" {
			t.Fatal("violation carries no flight-recorder trace despite tracing enabled")
		}
		// The trace must be self-contained, valid telemetry NDJSON.
		d, err := telemetry.ParseNDJSON(strings.NewReader(v.Trace))
		if err != nil {
			t.Fatalf("flight-recorder trace is not parseable NDJSON: %v\n%s", err, v.Trace)
		}
		if len(d.Rings) == 0 {
			t.Fatal("flight-recorder dump has no rings")
		}
		found := false
		for _, ring := range d.Rings {
			if ring.Name == "port:bneck" && len(ring.Events) > 0 {
				found = true
				// The tail must include the link-down drops the flap caused —
				// the events that explain the violation.
				sawDown := false
				for _, e := range ring.Events {
					if e.Kind == telemetry.KindDrop && e.Aux == telemetry.DropLinkDown {
						sawDown = true
					}
				}
				if !sawDown {
					t.Error("flight tail has no link_down drop events around the breach")
				}
			}
		}
		if !found {
			t.Fatalf("flight-recorder dump missing the bottleneck port ring: %+v", d.Rings)
		}
		// And the human-readable report embeds it.
		msg := v.Error()
		for _, want := range []string{"flight recorder", "  | ", "port:bneck"} {
			if !strings.Contains(msg, want) {
				t.Errorf("rendered violation missing %q:\n%s", want, msg)
			}
		}
	}()
	aud.Finish()
}
