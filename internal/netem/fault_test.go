package netem

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestLossInjectionRate(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "lossy", 10*units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	po.SetLoss(0.1)
	const n = 20000
	for i := 0; i < n; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	lost := po.LossDrops()
	if lost < n/20 || lost > n/5 {
		t.Fatalf("10%% loss dropped %d of %d", lost, n)
	}
	if sink.Packets+lost != n {
		t.Fatalf("conservation: %d delivered + %d lost != %d", sink.Packets, lost, n)
	}
}

func TestLossClamping(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", units.GigabitPerSec, 0, nil, sink)
	po.SetLoss(-0.5) // clamps to 0
	po.Send(data(100))
	eng.Run()
	if sink.Packets != 1 {
		t.Fatal("negative loss rate should clamp to 0")
	}
	po.SetLoss(2) // clamps to 1
	po.Send(data(100))
	eng.Run()
	if po.LossDrops() != 1 {
		t.Fatal("loss rate >1 should clamp to 1 (drop everything)")
	}
}

func TestZeroLossDefault(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	for i := 0; i < 1000; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	if po.LossDrops() != 0 || sink.Packets != 1000 {
		t.Fatal("ports must be lossless by default")
	}
}

func TestJitterSpreadsDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	var times []sim.Time
	rec := ReceiverFunc(func(now sim.Time, p *packet.Packet) {
		times = append(times, now)
		packet.Release(p)
	})
	po := NewPort(eng, "jittery", 100*units.GigabitPerSec, 10*time.Millisecond,
		aqm.NewFIFO(1<<30), rec)
	po.SetJitter(5 * time.Millisecond)
	const n = 500
	for i := 0; i < n; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	if len(times) != n {
		t.Fatalf("delivered %d of %d", len(times), n)
	}
	// With jitter, inter-delivery gaps must vary; all deliveries must fall
	// within [base, base+jitter) of their serialization completion.
	distinct := map[sim.Time]bool{}
	for _, at := range times {
		distinct[at] = true
	}
	if len(distinct) < n/2 {
		t.Fatalf("jitter produced too few distinct delivery times: %d", len(distinct))
	}
}

func TestJitterClamping(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", units.GigabitPerSec, time.Millisecond, nil, sink)
	po.SetJitter(-time.Second) // clamps to 0
	po.Send(data(100))
	eng.Run()
	if sink.Packets != 1 {
		t.Fatal("negative jitter should clamp to 0 and not break delivery")
	}
}
