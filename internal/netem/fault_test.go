package netem

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestLossInjectionRate(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "lossy", 10*units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	po.SetLoss(0.1)
	const n = 20000
	for i := 0; i < n; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	lost := po.LossDrops()
	if lost < n/20 || lost > n/5 {
		t.Fatalf("10%% loss dropped %d of %d", lost, n)
	}
	if sink.Packets+lost != n {
		t.Fatalf("conservation: %d delivered + %d lost != %d", sink.Packets, lost, n)
	}
}

func TestLossClamping(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", units.GigabitPerSec, 0, nil, sink)
	po.SetLoss(-0.5) // clamps to 0
	po.Send(data(100))
	eng.Run()
	if sink.Packets != 1 {
		t.Fatal("negative loss rate should clamp to 0")
	}
	po.SetLoss(2) // clamps to 1
	po.Send(data(100))
	eng.Run()
	if po.LossDrops() != 1 {
		t.Fatal("loss rate >1 should clamp to 1 (drop everything)")
	}
}

func TestZeroLossDefault(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	for i := 0; i < 1000; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	if po.LossDrops() != 0 || sink.Packets != 1000 {
		t.Fatal("ports must be lossless by default")
	}
}

func TestJitterSpreadsDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	var times []sim.Time
	rec := ReceiverFunc(func(now sim.Time, p *packet.Packet) {
		times = append(times, now)
		packet.Release(p)
	})
	po := NewPort(eng, "jittery", 100*units.GigabitPerSec, 10*time.Millisecond,
		aqm.NewFIFO(1<<30), rec)
	po.SetJitter(5 * time.Millisecond)
	po.SetAllowReorder(true)
	const n = 500
	for i := 0; i < n; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	if len(times) != n {
		t.Fatalf("delivered %d of %d", len(times), n)
	}
	// With reordering allowed, inter-delivery gaps must vary; all
	// deliveries must fall within [base, base+jitter) of their
	// serialization completion.
	distinct := map[sim.Time]bool{}
	for _, at := range times {
		distinct[at] = true
	}
	if len(distinct) < n/2 {
		t.Fatalf("jitter produced too few distinct delivery times: %d", len(distinct))
	}
}

// jitterSeqs runs n sequence-stamped packets through a jittery port and
// returns the sequence numbers in delivery order.
func jitterSeqs(allowReorder bool, n int) []int64 {
	eng := sim.NewEngine(7)
	var seqs []int64
	rec := ReceiverFunc(func(now sim.Time, p *packet.Packet) {
		seqs = append(seqs, p.Seq)
		packet.Release(p)
	})
	po := NewPort(eng, "jittery", 100*units.GigabitPerSec, 10*time.Millisecond,
		aqm.NewFIFO(1<<30), rec)
	po.SetJitter(5 * time.Millisecond)
	po.SetAllowReorder(allowReorder)
	for i := 0; i < n; i++ {
		p := data(1000)
		p.Seq = int64(i)
		po.Send(p)
	}
	eng.Run()
	return seqs
}

// TestJitterMonotonicByDefault: a port models a FIFO link, so jitter must
// not let a later packet draw a smaller delay and overtake an earlier one
// unless reordering is explicitly enabled.
func TestJitterMonotonicByDefault(t *testing.T) {
	const n = 500
	seqs := jitterSeqs(false, n)
	if len(seqs) != n {
		t.Fatalf("delivered %d of %d", len(seqs), n)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("default jitter reordered delivery: seq %d after seq %d",
				seqs[i], seqs[i-1])
		}
	}
}

// TestJitterAllowReorderDoesReorder: the explicit knob must actually allow
// inversions (packets at 100 Gbps serialize ~80 ns apart; 5 ms of jitter
// makes inversions overwhelmingly likely over 500 packets).
func TestJitterAllowReorderDoesReorder(t *testing.T) {
	seqs := jitterSeqs(true, 500)
	inversions := 0
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("AllowReorder(true) produced a perfectly ordered stream")
	}
}

// TestPortRNGSeededFromEngine: fault randomness must derive from the
// engine's seeded RNG — same seed ⇒ identical drop pattern, different
// seed ⇒ different pattern.
func TestPortRNGSeededFromEngine(t *testing.T) {
	pattern := func(seed uint64) string {
		eng := sim.NewEngine(seed)
		var got []byte
		rec := ReceiverFunc(func(now sim.Time, p *packet.Packet) {
			got = append(got, byte('0'+p.Seq%10))
			packet.Release(p)
		})
		po := NewPort(eng, "lossy", 10*units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), rec)
		po.SetLoss(0.2)
		for i := 0; i < 2000; i++ {
			p := data(1000)
			p.Seq = int64(i)
			po.Send(p)
		}
		eng.Run()
		return string(got)
	}
	a, b, c := pattern(42), pattern(42), pattern(43)
	if a != b {
		t.Fatal("same engine seed produced different loss patterns")
	}
	if a == c {
		t.Fatal("different engine seeds produced identical loss patterns")
	}
}

// TestGilbertElliottBurstiness: GE loss with lossBad=1 must drop packets
// in bursts whose mean length approaches 1/pBG, far above the ~1 of a
// uniform process with the same average rate, while the long-run loss rate
// matches the chain's stationary distribution.
func TestGilbertElliottBurstiness(t *testing.T) {
	eng := sim.NewEngine(3)
	delivered := map[int64]bool{}
	rec := ReceiverFunc(func(now sim.Time, p *packet.Packet) {
		delivered[p.Seq] = true
		packet.Release(p)
	})
	po := NewPort(eng, "ge", 10*units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), rec)
	const pGB, pBG = 0.02, 0.2
	po.SetGELoss(pGB, pBG, 0, 1)
	const n = 50000
	for i := 0; i < n; i++ {
		p := data(1000)
		p.Seq = int64(i)
		po.Send(p)
	}
	eng.Run()

	lost := int(po.LossDrops())
	wantRate := pGB / (pGB + pBG) // stationary bad fraction ≈ 9.1%
	rate := float64(lost) / n
	if rate < wantRate*0.7 || rate > wantRate*1.3 {
		t.Fatalf("GE loss rate %.4f, want ≈%.4f", rate, wantRate)
	}

	// Mean length of consecutive-loss runs.
	runs, cur := 0, 0
	sum := 0
	for i := int64(0); i < n; i++ {
		if !delivered[i] {
			cur++
			continue
		}
		if cur > 0 {
			runs++
			sum += cur
			cur = 0
		}
	}
	if cur > 0 {
		runs++
		sum += cur
	}
	if runs == 0 {
		t.Fatal("no loss bursts observed")
	}
	mean := float64(sum) / float64(runs)
	if mean < 2.5 {
		t.Fatalf("GE mean burst length %.2f, want ≥2.5 (uniform loss gives ≈1.1)", mean)
	}
}

// TestLinkFlapDrainsQueueAndRecovers: taking a port down must flush its
// queue, destroy traffic offered while down, and resume cleanly on up.
func TestLinkFlapDrainsQueueAndRecovers(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "flappy", units.MegabitPerSec, 0, aqm.NewFIFO(1<<30), sink)
	for i := 0; i < 100; i++ {
		po.Send(data(1000)) // ~0.8s of backlog at 1 Mbps
	}
	eng.RunFor(10 * time.Millisecond) // a couple of packets get through
	deliveredBefore := sink.Packets

	po.SetDown(true)
	if !po.Down() {
		t.Fatal("Down() should report true")
	}
	if po.Queue().Len() != 0 {
		t.Fatalf("queue not drained on carrier loss: %d packets left", po.Queue().Len())
	}
	if po.DownDrops() == 0 {
		t.Fatal("queue drain dropped nothing")
	}
	// Let the packet that was mid-serialization at carrier loss finish; it
	// is destroyed too (the link was down when its last bit left).
	eng.RunFor(20 * time.Millisecond)
	drainDrops := po.DownDrops()
	po.Send(data(1000)) // offered while down
	eng.RunFor(80 * time.Millisecond)
	if sink.Packets != deliveredBefore {
		t.Fatalf("packets delivered while down: %d > %d", sink.Packets, deliveredBefore)
	}
	if po.DownDrops() != drainDrops+1 {
		t.Fatalf("send while down not dropped: %d vs %d", po.DownDrops(), drainDrops+1)
	}

	po.SetDown(false)
	for i := 0; i < 10; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	if sink.Packets < deliveredBefore+10 {
		t.Fatalf("port did not recover after flap: %d delivered", sink.Packets)
	}
}

// TestBandwidthStepChangesServiceRate: after SetRate the serialization
// time of subsequent packets must reflect the new rate.
func TestBandwidthStepChangesServiceRate(t *testing.T) {
	eng := sim.NewEngine(1)
	var times []sim.Time
	rec := ReceiverFunc(func(now sim.Time, p *packet.Packet) {
		times = append(times, now)
		packet.Release(p)
	})
	po := NewPort(eng, "step", 8*units.MegabitPerSec, 0, aqm.NewFIFO(1<<30), rec)
	// 1000-byte packets at 8 Mbps serialize in 1 ms.
	for i := 0; i < 4; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	po.SetRate(800 * units.KilobitPerSec) // 10 ms per packet
	for i := 0; i < 4; i++ {
		po.Send(data(1000))
	}
	eng.Run()
	if len(times) != 8 {
		t.Fatalf("delivered %d of 8", len(times))
	}
	fast := (times[3] - times[0]).Std()
	slow := (times[7] - times[4]).Std()
	if slow < 8*fast {
		t.Fatalf("rate step barely changed pacing: fast window %v, slow window %v", fast, slow)
	}
	po.SetRate(0) // ignored: rate must stay positive
	if po.Rate() != 800*units.KilobitPerSec {
		t.Fatal("SetRate(0) should be ignored")
	}
}

// TestDelayStepShiftsDelivery: SetDelay must change the propagation delay
// of subsequent deliveries, and shrinking it must not reorder in-flight
// packets in the default (monotonic) mode.
func TestDelayStepShiftsDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	var seqs []int64
	var times []sim.Time
	rec := ReceiverFunc(func(now sim.Time, p *packet.Packet) {
		seqs = append(seqs, p.Seq)
		times = append(times, now)
		packet.Release(p)
	})
	po := NewPort(eng, "rtts", 10*units.GigabitPerSec, 10*time.Millisecond,
		aqm.NewFIFO(1<<30), rec)
	p0 := data(1000)
	p0.Seq = 0
	po.Send(p0)
	// While packet 0 is in flight with a 10 ms delay, shrink the delay to
	// zero and send packet 1: it must not overtake packet 0.
	eng.RunFor(time.Millisecond)
	po.SetDelay(0)
	if po.Delay() != 0 {
		t.Fatal("Delay() should report the stepped value")
	}
	p1 := data(1000)
	p1.Seq = 1
	po.Send(p1)
	eng.Run()
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
		t.Fatalf("delay shrink reordered delivery: %v", seqs)
	}
	if times[1] < times[0] {
		t.Fatalf("non-monotonic delivery times: %v", times)
	}
}

func TestJitterClamping(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &Sink{}
	po := NewPort(eng, "p", units.GigabitPerSec, time.Millisecond, nil, sink)
	po.SetJitter(-time.Second) // clamps to 0
	po.Send(data(100))
	eng.Run()
	if sink.Packets != 1 {
		t.Fatal("negative jitter should clamp to 0 and not break delivery")
	}
}
