package netem

import (
	"strings"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/units"
)

// auditedPort builds an engine+auditor+port fixture: a 10 Mbps bottleneck
// with the given discipline at 60 KB, delivering into an audited sink.
func auditedPort(t *testing.T, kind aqm.Kind) (*sim.Engine, *audit.Auditor, *Port, *Sink) {
	t.Helper()
	eng := sim.NewEngine(1)
	aud := audit.New("netem-audit-" + string(kind))
	eng.SetAuditor(aud)
	q, err := aqm.New(aqm.Config{Kind: kind, Capacity: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	sink := &Sink{Auditor: aud}
	po := NewPort(eng, "bneck", 10*units.MegabitPerSec, time.Millisecond, q, sink)
	return eng, aud, po, sink
}

// overdrive injects 1000-byte packets every 500 µs (≈16 Mbps offered on the
// 10 Mbps link) until stopAt, reporting each to the conservation ledger. It
// returns a pointer to the injected count, final after the run.
func overdrive(eng *sim.Engine, aud *audit.Auditor, po *Port, stopAt time.Duration) *uint64 {
	injected := new(uint64)
	var inject func()
	inject = func() {
		if eng.Now() >= sim.Duration(stopAt) {
			return
		}
		aud.PacketCreated()
		*injected++
		po.Send(data(1000))
		eng.Schedule(500*time.Microsecond, inject)
	}
	eng.Schedule(0, inject)
	return injected
}

// TestDropAccountingAllAQMs drives every discipline (FIFO, RED, CoDel,
// FQ-CoDel) past saturation under bursty Gilbert–Elliott loss and a link
// flap that lands mid-queue-drain, then asserts exact packet conservation
// from the production counters alone:
//
//	delivered + AQM drops + loss drops + flap drops == injected
//
// and that the invariant auditor agrees (Finish settles clean).
func TestDropAccountingAllAQMs(t *testing.T) {
	for _, kind := range []aqm.Kind{aqm.KindFIFO, aqm.KindRED, aqm.KindCoDel, aqm.KindFQCoDel} {
		t.Run(string(kind), func(t *testing.T) {
			eng, aud, po, sink := auditedPort(t, kind)
			po.SetGELoss(0.02, 0.3, 0, 0.5)
			injected := overdrive(eng, aud, po, 400*time.Millisecond)

			// Flap the carrier while the queue is backlogged: the drain on
			// SetDown(true) destroys mid-queue packets, and arrivals during
			// the outage are door-dropped.
			eng.Schedule(150*time.Millisecond, func() { po.SetDown(true) })
			eng.Schedule(170*time.Millisecond, func() { po.SetDown(false) })

			eng.RunFor(2 * time.Second) // drain completely

			qs := po.Queue().Stats()
			if po.Queue().Len() != 0 {
				t.Fatalf("queue still holds %d packets after drain", po.Queue().Len())
			}
			accounted := sink.Packets + qs.Dropped + po.LossDrops() + po.DownDrops()
			if accounted != *injected {
				t.Fatalf("conservation: delivered=%d + aqm=%d + loss=%d + flap=%d = %d, injected %d",
					sink.Packets, qs.Dropped, po.LossDrops(), po.DownDrops(), accounted, *injected)
			}
			// The scenario must actually exercise every drop class.
			if qs.Dropped == 0 {
				t.Errorf("%s produced no AQM drops at 1.6x overload", kind)
			}
			if po.LossDrops() == 0 {
				t.Error("GE chain dropped nothing")
			}
			if po.DownDrops() == 0 {
				t.Error("flap mid-drain destroyed nothing")
			}
			aud.Finish() // must settle clean
		})
	}
}

// TestAuditorCatchesSeededDownDropBug seeds a real accounting bug — a flap
// drain that destroys queued packets without incrementing downDrops — and
// proves the auditor catches it with a structured violation naming the rule
// and carrying a counter snapshot. This is the auditor's reason to exist:
// without it, the bug would silently surface as a too-good loss figure.
func TestAuditorCatchesSeededDownDropBug(t *testing.T) {
	testHookSkipDownDropAccounting = true
	defer func() { testHookSkipDownDropAccounting = false }()

	eng, aud, po, _ := auditedPort(t, aqm.KindFIFO)
	injected := overdrive(eng, aud, po, 200*time.Millisecond)
	eng.Schedule(100*time.Millisecond, func() { po.SetDown(true) })
	eng.Schedule(120*time.Millisecond, func() { po.SetDown(false) })
	eng.RunFor(time.Second)
	if *injected == 0 {
		t.Fatal("nothing injected")
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("auditor did not catch the uncounted flap drain")
		}
		v, ok := r.(*audit.Violation)
		if !ok {
			t.Fatalf("panic value is %T, want *audit.Violation", r)
		}
		if v.Layer != "netem" || v.Rule != "port-conservation" {
			t.Fatalf("violation attributed to %s/%s, want netem/port-conservation", v.Layer, v.Rule)
		}
		msg := v.Error()
		for _, want := range []string{"audit violation", "port bneck", "offered=", "flap-dropped=", "ledger:"} {
			if !strings.Contains(msg, want) {
				t.Errorf("structured report missing %q:\n%s", want, msg)
			}
		}
	}()
	aud.Finish()
}

// TestPortConservationDirect checks the audited port balances on a clean
// unsaturated run too (no drops of any kind, packets fully delivered).
func TestPortConservationDirect(t *testing.T) {
	eng := sim.NewEngine(1)
	aud := audit.New("clean")
	eng.SetAuditor(aud)
	sink := &Sink{Auditor: aud}
	po := NewPort(eng, "p", units.GigabitPerSec, 5*time.Millisecond, aqm.NewFIFO(1<<30), sink)
	const n = 5000
	for i := 0; i < n; i++ {
		aud.PacketCreated()
		po.Send(data(1000))
	}
	eng.Run()
	if sink.Packets != n {
		t.Fatalf("delivered %d of %d", sink.Packets, n)
	}
	aud.Finish()
}

// TestAuditedChainConservation pushes packets through two chained audited
// ports into an audited sink — the ledger must balance across hops (each
// hop's handoff is the next hop's offered load).
func TestAuditedChainConservation(t *testing.T) {
	eng := sim.NewEngine(7)
	aud := audit.New("chain")
	eng.SetAuditor(aud)
	sink := &Sink{Auditor: aud}
	p2 := NewPort(eng, "hop2", 50*units.MegabitPerSec, 2*time.Millisecond, aqm.NewFIFO(40_000), sink)
	p1 := NewPort(eng, "hop1", 100*units.MegabitPerSec, time.Millisecond, aqm.NewFIFO(1<<30), p2)
	p2.SetLoss(0.05)
	const n = 4000
	for i := 0; i < n; i++ {
		aud.PacketCreated()
		p1.Send(data(1200))
	}
	eng.Run()
	drops2 := p2.Queue().Stats().Dropped + p2.LossDrops()
	if sink.Packets+drops2 != n {
		t.Fatalf("chain conservation: %d delivered + %d dropped != %d", sink.Packets, drops2, n)
	}
	aud.Finish()
}
