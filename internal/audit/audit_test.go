package audit

import (
	"errors"
	"strings"
	"testing"
)

// mustViolate runs fn expecting a *Violation panic and returns it.
func mustViolate(t *testing.T, fn func()) *Violation {
	t.Helper()
	defer func() {
		t.Helper()
		if r := recover(); r != nil {
			t.Fatalf("panicked with %T %v, want a clean return through the outer recover", r, r)
		}
	}()
	v := func() (v *Violation) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			var ok bool
			if v, ok = r.(*Violation); !ok {
				panic(r)
			}
		}()
		fn()
		return nil
	}()
	if v == nil {
		t.Fatalf("expected a *Violation panic, got none")
	}
	return v
}

func TestBalancedLedgerPasses(t *testing.T) {
	a := New("cfg-1")
	var dropped, resident int64 = 3, 2
	a.RegisterNet(func() NetSample { return NetSample{Name: "p1", Dropped: dropped, Resident: resident} })
	for i := 0; i < 10; i++ {
		a.PacketCreated()
	}
	for i := 0; i < 5; i++ {
		a.PacketConsumed()
	}
	a.Finish() // 10 == 5 + 3 + 2
	if a.Created() != 10 || a.Consumed() != 5 {
		t.Fatalf("ledger counts created=%d consumed=%d, want 10/5", a.Created(), a.Consumed())
	}
}

func TestImbalancedLedgerViolates(t *testing.T) {
	a := New("cfg-imbalance")
	a.RegisterNet(func() NetSample { return NetSample{Name: "p1", Dropped: 1} })
	a.PacketCreated()
	a.PacketCreated()
	// created=2, consumed=0, dropped=1, resident=0 → off by 1.
	v := mustViolate(t, a.Finish)
	if v.Layer != "audit" || v.Rule != "packet-conservation" {
		t.Fatalf("violation attributed to %s/%s, want audit/packet-conservation", v.Layer, v.Rule)
	}
	if v.ConfigID != "cfg-imbalance" {
		t.Fatalf("violation config = %q", v.ConfigID)
	}
	if !strings.Contains(v.Detail, "off by 1") {
		t.Fatalf("detail %q does not state the imbalance", v.Detail)
	}
}

func TestViolationReportStructure(t *testing.T) {
	a := New("the-config-id")
	a.SetClock(func() int64 { return 1_500_000_000 }) // 1.5 s
	a.RegisterNet(func() NetSample { return NetSample{Name: "bottleneck", Dropped: 7, Resident: 4} })
	v := mustViolate(t, func() { a.Failf("netem", "some-rule", "detail %d", 42) })
	msg := v.Error()
	for _, want := range []string{
		"audit violation",
		"[netem/some-rule]",
		`config="the-config-id"`,
		"t=1.500000s",
		"detail 42",
		"ledger:",
		"bottleneck",
		"dropped=7",
		"resident=4",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("report missing %q:\n%s", want, msg)
		}
	}
	// The report must survive the runner's generic %v formatting of a
	// recovered panic value.
	if !strings.Contains(errors.New(v.Error()).Error(), "bottleneck") {
		t.Fatal("report lost through error round-trip")
	}
}

func TestOnFinishChecksRunInOrder(t *testing.T) {
	a := New("cfg")
	var order []string
	a.OnFinish("sim", "first", func() error { order = append(order, "first"); return nil })
	a.OnFinish("tcp", "second", func() error { order = append(order, "second"); return nil })
	a.Finish()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("finish checks ran as %v", order)
	}
}

func TestOnFinishErrorBecomesViolation(t *testing.T) {
	a := New("cfg")
	a.OnFinish("tcp", "seq-space", func() error { return errors.New("segment gap at 1234") })
	v := mustViolate(t, a.Finish)
	if v.Layer != "tcp" || v.Rule != "seq-space" {
		t.Fatalf("violation attributed to %s/%s, want tcp/seq-space", v.Layer, v.Rule)
	}
	if !strings.Contains(v.Detail, "segment gap at 1234") {
		t.Fatalf("detail %q lost the check error", v.Detail)
	}
}

func TestCheckfOnlyFiresWhenFalse(t *testing.T) {
	a := New("cfg")
	a.Checkf(true, "sim", "ok", "should not fire")
	v := mustViolate(t, func() { a.Checkf(false, "sim", "bad", "fired %s", "indeed") })
	if v.Rule != "bad" || !strings.Contains(v.Detail, "fired indeed") {
		t.Fatalf("unexpected violation %v", v)
	}
}

func TestNegativeSampleViolates(t *testing.T) {
	a := New("cfg")
	a.RegisterNet(func() NetSample { return NetSample{Name: "p", Dropped: -1} })
	a.PacketCreated()
	a.PacketConsumed()
	v := mustViolate(t, a.Finish)
	if v.Rule != "negative-sample" {
		t.Fatalf("rule = %s, want negative-sample", v.Rule)
	}
}

func TestViolationIsError(t *testing.T) {
	var err error = &Violation{Layer: "sim", Rule: "r", ConfigID: "c", Detail: "d"}
	if !strings.Contains(err.Error(), "[sim/r]") {
		t.Fatalf("Violation does not render as error: %v", err)
	}
}
