// Package audit implements the simulator's runtime invariant auditor: a
// pluggable correctness layer that the event core, the forwarding plane,
// the queues and the transport endpoints consult while a run executes, and
// that settles a global packet-conservation ledger when the run finishes.
//
// Every number the repo reports — Jain's index, utilization φ, retransmit
// counts — is only as trustworthy as the simulator's bookkeeping, and the
// fault-injection layer (flaps that drain queues, live rate/RTT steps,
// bursty loss) multiplies the ways a packet or a byte can be silently
// double-counted or leaked. The auditor turns such bugs from quiet result
// corruption into loud, structured failures.
//
// # Design
//
// The package is a dependency leaf: it imports nothing from the repo, so
// every layer (sim, netem, aqm, tcp, topo, experiment) can hold an
// *Auditor without import cycles. An Auditor is created per run, attached
// to the run's engine, and discovered by components at construction time.
// Auditing is off by default: a disabled run carries a nil *Auditor, every
// instrumented hot path gates on a single `!= nil` branch, and the
// steady-state forwarding path keeps its ≤1 alloc/packet budget untouched
// (see TestAllocGuardSteadyStateDumbbell).
//
// # Violations
//
// On an invariant breach the auditor panics with a *Violation carrying the
// run's config ID, the simulation time, the breached rule, and a counter
// snapshot. The sweep runner's per-config panic recovery converts the
// panic into an errored Result, so one corrupt simulation surfaces as a
// structured error row instead of poisoning a multi-hour sweep.
//
// # The conservation ledger
//
// Endpoints report every packet they create (PacketCreated) and every
// packet they terminally consume (PacketConsumed). Network elements
// register a probe describing how many packets they destroyed and how many
// are still resident inside them (queued, serializing, or propagating).
// Finish settles the books:
//
//	created == consumed + Σ dropped + Σ resident
//
// using the elements' own production counters (LossDrops, DownDrops, AQM
// drop statistics) on the dropped side — so a skipped counter increment
// anywhere breaks the balance and is reported, not absorbed.
package audit

import (
	"fmt"
	"strings"
)

// Violation is the structured report of one invariant breach. It is the
// panic value raised by Failf; Error renders the full report, so a generic
// recover that formats the panic value with %v preserves everything.
type Violation struct {
	Layer    string // subsystem that failed: "sim", "netem", "aqm", "tcp", "audit"
	Rule     string // short rule identifier, e.g. "packet-conservation"
	ConfigID string // run configuration identity, for sweep triage
	SimNanos int64  // simulation time of the breach, nanoseconds
	Detail   string // what exactly went out of balance
	Counters string // ledger snapshot at the moment of the breach
	// Trace is the flight-recorder dump: when the run carries a telemetry
	// tracer, the last events of every ring (NDJSON) captured at the moment
	// of the breach. Empty when tracing is disabled.
	Trace string
}

// Error implements error with the complete multi-line report.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit violation [%s/%s] config=%q t=%.6fs: %s",
		v.Layer, v.Rule, v.ConfigID, float64(v.SimNanos)/1e9, v.Detail)
	if v.Counters != "" {
		b.WriteString("\n")
		b.WriteString(v.Counters)
	}
	if v.Trace != "" {
		b.WriteString("\n  flight recorder (last events per ring, NDJSON):\n")
		for _, line := range strings.Split(strings.TrimRight(v.Trace, "\n"), "\n") {
			b.WriteString("  | ")
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// String returns the same report as Error.
func (v *Violation) String() string { return v.Error() }

// NetSample is one network element's contribution to the conservation
// ledger, produced by a registered probe.
type NetSample struct {
	Name     string // element identity, e.g. the port name
	Dropped  int64  // packets the element destroyed, from its production counters
	Resident int64  // packets currently inside it (queued/serializing/propagating)
}

// finishCheck is a deferred end-of-run invariant owned by one layer.
type finishCheck struct {
	layer, rule string
	fn          func() error
}

// Auditor validates one run's bookkeeping. It is single-goroutine like the
// engine that owns it: every instrumented component of a run shares the
// run's engine and therefore its goroutine, so no locking is needed. A nil
// *Auditor means auditing is disabled; callers gate their instrumentation
// on that.
type Auditor struct {
	configID string
	clock    func() int64

	// Conservation ledger, bumped by endpoints on the hot path.
	created  int64
	consumed int64

	// Dynamic-flow lifecycle ledger, bumped by open-loop workloads as
	// flows come and go mid-run. Not part of packet conservation (a
	// closed flow's in-flight packets drain through the demux
	// unknown-flow path), but Finish insists the lifecycle itself is
	// sane: a flow cannot close more times than it opened.
	flowsOpened int64
	flowsClosed int64

	probes  []func() NetSample
	finals  []finishCheck
	samples []NetSample // scratch reused by snapshot/Finish

	// flight, when set, captures the telemetry flight-recorder dump at the
	// moment a violation is raised. Installed by the engine when both an
	// auditor and a tracer are attached; consulted only on the failure
	// path, never per packet.
	flight func() string
}

// New returns an enabled auditor for the run identified by configID.
func New(configID string) *Auditor {
	return &Auditor{configID: configID}
}

// SetClock installs the simulation-time source used to stamp violations.
// The engine calls this when the auditor is attached.
func (a *Auditor) SetClock(fn func() int64) { a.clock = fn }

// SetFlightRecorder installs the capture function a violation calls to
// embed the telemetry rings' trailing events in its report. The engine
// wires this to the run's tracer; a run without tracing leaves it nil and
// violations carry no trace.
func (a *Auditor) SetFlightRecorder(fn func() string) { a.flight = fn }

// ConfigID returns the run identity the auditor was created with.
func (a *Auditor) ConfigID() string { return a.configID }

func (a *Auditor) now() int64 {
	if a.clock == nil {
		return 0
	}
	return a.clock()
}

// PacketCreated records one packet entering the network at an endpoint
// (a data segment leaving a sender, an ACK leaving a receiver).
func (a *Auditor) PacketCreated() { a.created++ }

// PacketConsumed records one packet terminally leaving the network at an
// endpoint (delivered to a sink, demux, sender or receiver and released).
func (a *Auditor) PacketConsumed() { a.consumed++ }

// FlowOpened records one dynamic flow entering the network mid-run.
func (a *Auditor) FlowOpened() { a.flowsOpened++ }

// FlowClosed records one dynamic flow leaving the network (completed and
// released, or torn down at end of run).
func (a *Auditor) FlowClosed() { a.flowsClosed++ }

// FlowsOpened returns the lifecycle ledger's opened count.
func (a *Auditor) FlowsOpened() int64 { return a.flowsOpened }

// FlowsClosed returns the lifecycle ledger's closed count.
func (a *Auditor) FlowsClosed() int64 { return a.flowsClosed }

// FlowsOpen returns how many dynamic flows are currently open.
func (a *Auditor) FlowsOpen() int64 { return a.flowsOpened - a.flowsClosed }

// Created returns the ledger's created count (telemetry and tests).
func (a *Auditor) Created() int64 { return a.created }

// Consumed returns the ledger's consumed count (telemetry and tests).
func (a *Auditor) Consumed() int64 { return a.consumed }

// RegisterNet adds a network-element probe to the conservation ledger.
// The probe is consulted at Finish and when rendering violation reports,
// never on the per-packet path.
func (a *Auditor) RegisterNet(probe func() NetSample) {
	a.probes = append(a.probes, probe)
}

// OnFinish registers an end-of-run invariant owned by one layer. Finish
// runs every registered check in registration order; a non-nil error
// becomes a violation attributed to the given layer and rule.
func (a *Auditor) OnFinish(layer, rule string, fn func() error) {
	a.finals = append(a.finals, finishCheck{layer: layer, rule: rule, fn: fn})
}

// Failf raises a violation: it panics with a *Violation carrying the rule,
// the formatted detail, the simulation time and a full counter snapshot.
func (a *Auditor) Failf(layer, rule, format string, args ...any) {
	v := &Violation{
		Layer:    layer,
		Rule:     rule,
		ConfigID: a.configID,
		SimNanos: a.now(),
		Detail:   fmt.Sprintf(format, args...),
		Counters: a.snapshot(),
	}
	if a.flight != nil {
		v.Trace = a.flight()
	}
	panic(v)
}

// Checkf is Failf gated on a condition: it raises the violation when ok is
// false. The condition is evaluated by the caller, so a disabled (nil
// auditor) path pays nothing.
func (a *Auditor) Checkf(ok bool, layer, rule, format string, args ...any) {
	if !ok {
		a.Failf(layer, rule, format, args...)
	}
}

// collect refreshes the scratch sample slice from every probe.
func (a *Auditor) collect() []NetSample {
	a.samples = a.samples[:0]
	for _, p := range a.probes {
		a.samples = append(a.samples, p())
	}
	return a.samples
}

// snapshot renders the ledger and every probe for a violation report.
func (a *Auditor) snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  ledger: created=%d consumed=%d", a.created, a.consumed)
	if a.flowsOpened > 0 {
		fmt.Fprintf(&b, "\n  flows:  opened=%d closed=%d open=%d",
			a.flowsOpened, a.flowsClosed, a.flowsOpened-a.flowsClosed)
	}
	var dropped, resident int64
	for _, s := range a.collect() {
		fmt.Fprintf(&b, "\n  element %-12s dropped=%-8d resident=%d", s.Name, s.Dropped, s.Resident)
		dropped += s.Dropped
		resident += s.Resident
	}
	if len(a.probes) > 0 {
		fmt.Fprintf(&b, "\n  totals: dropped=%d resident=%d balance=%d",
			dropped, resident, a.created-a.consumed-dropped-resident)
	}
	return b.String()
}

// Finish runs every registered end-of-run check and then settles the
// conservation ledger: every packet created by an endpoint must have been
// consumed by an endpoint, destroyed by an accounted drop, or still be
// resident in a network element. Any imbalance — including one caused by a
// production drop counter that was not incremented — raises a violation.
func (a *Auditor) Finish() {
	for _, fc := range a.finals {
		if err := fc.fn(); err != nil {
			a.Failf(fc.layer, fc.rule, "%v", err)
		}
	}
	if a.flowsClosed > a.flowsOpened {
		a.Failf("audit", "flow-lifecycle",
			"closed=%d flows but only opened=%d", a.flowsClosed, a.flowsOpened)
	}
	var dropped, resident int64
	for _, s := range a.collect() {
		if s.Dropped < 0 || s.Resident < 0 {
			a.Failf("audit", "negative-sample",
				"element %s reports dropped=%d resident=%d", s.Name, s.Dropped, s.Resident)
		}
		dropped += s.Dropped
		resident += s.Resident
	}
	if balance := a.created - a.consumed - dropped - resident; balance != 0 {
		a.Failf("audit", "packet-conservation",
			"created=%d != consumed=%d + dropped=%d + resident=%d (off by %d)",
			a.created, a.consumed, dropped, resident, balance)
	}
}
