package cca

import (
	"testing"
	"time"

	"repro/internal/tcp"
	"repro/internal/units"
)

// TestHyStartExitsBeforeOverflow: in a deep (16×BDP) buffer, CUBIC with
// HyStart must leave slow start on the RTT rise — before the first loss —
// while the no-HyStart variant slow-starts straight into an overflow burst.
func TestHyStartExitsBeforeOverflow(t *testing.T) {
	run := func(cc tcp.CongestionControl) (retrans uint64, exitedCleanly bool) {
		fs := newFlowSim(100*units.MegabitPerSec, 16, cc)
		fs.conn.Start()
		for i := 0; i < 100; i++ {
			fs.eng.RunFor(100 * time.Millisecond)
			if !fs.conn.InSlowStart() && fs.conn.Stats().Retransmits == 0 {
				exitedCleanly = true
			}
		}
		return fs.conn.Stats().Retransmits, exitedCleanly
	}
	withRtx, withClean := run(NewCubic())
	withoutRtx, _ := run(NewCubicNoHyStart())
	if !withClean {
		t.Error("HyStart CUBIC never left slow start without losses")
	}
	if withRtx >= withoutRtx {
		t.Errorf("HyStart should reduce startup losses: with=%d without=%d",
			withRtx, withoutRtx)
	}
}

// TestHyStartHarmlessOnShallowBuffer: with a small buffer, loss arrives
// before the delay signal and CUBIC must still work.
func TestHyStartHarmlessOnShallowBuffer(t *testing.T) {
	fs := newFlowSim(100*units.MegabitPerSec, 0.5, NewCubic())
	dur := 20 * time.Second
	fs.run(dur)
	util := fs.goodputBps(dur) / 100e6
	if util < 0.7 {
		t.Fatalf("utilization %.3f", util)
	}
}

// TestLossBasedCCAsSetInternalPacing: after the first RTT sample, reno,
// cubic and htcp must pace at 1.2–2× cwnd/srtt like Linux.
func TestLossBasedCCAsSetInternalPacing(t *testing.T) {
	for _, name := range []Name{Reno, Cubic, HTCP} {
		fs := newFlowSim(100*units.MegabitPerSec, 2, MustNew(name))
		fs.run(2 * time.Second)
		rate := fs.conn.PacingRate()
		if rate <= 0 {
			t.Errorf("%s: no pacing rate set", name)
			continue
		}
		srtt := fs.conn.SRTT()
		ideal := float64(fs.conn.Cwnd()) * 8 / srtt.Seconds()
		ratio := float64(rate) / ideal
		if ratio < 1.1 || ratio > 2.1 {
			t.Errorf("%s: pacing ratio %.2f outside [1.2, 2.0]", name, ratio)
		}
	}
}

// TestPacingKeepsQueueShortDuringGrowth: internal pacing must prevent
// line-rate window bursts; queue occupancy during congestion avoidance
// should stay well below a full window dump.
func TestPacingKeepsQueueShortDuringGrowth(t *testing.T) {
	fs := newFlowSim(100*units.MegabitPerSec, 8, MustNew(Cubic))
	fs.conn.Start()
	fs.eng.RunFor(5 * time.Second) // past startup
	maxBurst := 0
	for i := 0; i < 100; i++ {
		fs.eng.RunFor(20 * time.Millisecond)
		if l := fs.bott.Queue().Len(); l > maxBurst {
			maxBurst = l
		}
	}
	// 8×BDP = ~700 packets of queue space; a paced flow in its concave
	// phase should not be slamming hundreds of packets at once.
	if maxBurst > 600 {
		t.Fatalf("queue burst of %d packets despite pacing", maxBurst)
	}
}
