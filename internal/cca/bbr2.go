package cca

import (
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// BBRv2 constants per the IETF-106 presentation and the v2alpha kernel tree.
const (
	bbr2LossThresh   = 0.02 // the 2% per-round loss threshold the paper cites
	bbr2Beta         = 0.7  // multiplicative cut applied to inflight bounds
	bbr2Headroom     = 0.85 // cruise keeps 15% headroom under inflight_hi
	bbr2ProbeRTTGain = 0.5  // ProbeRTT shrinks to 0.5×BDP (v1 used 4 pkts)
	bbr2StartupGain  = bbrHighGain
	bbr2DrainGain    = bbrDrainGain
	bbr2UpGain       = 1.25
	bbr2DownGain     = 0.75
	bbr2CwndGain     = 2.0
	bbr2ECNThresh    = 0.5 // per-round CE fraction treated as congestion
	bbr2MinRTTWindow = 5 * time.Second
)

// bbr2Phase enumerates the ProbeBW sub-states of BBRv2.
type bbr2Phase int

const (
	bbr2Down bbr2Phase = iota
	bbr2Cruise
	bbr2Refill
	bbr2Up
)

func (p bbr2Phase) String() string {
	switch p {
	case bbr2Down:
		return "down"
	case bbr2Cruise:
		return "cruise"
	case bbr2Refill:
		return "refill"
	default:
		return "up"
	}
}

// bbr2 implements BBR version 2 (simplified from the v2alpha kernel the
// paper's testbed ran): the same model-based core as BBRv1, plus explicit
// inflight bounds adapted from per-round loss and ECN-mark rates. When the
// per-round loss rate exceeds 2%, inflight_hi is cut multiplicatively —
// which is why the paper finds BBRv2 *more* polite than BBRv1 under FIFO
// (where overflow losses are bursty) yet still dominant under RED (whose
// early random drops stay below the 2% threshold).
type bbr2 struct {
	state bbrState
	phase bbr2Phase

	btlBw       maxFilter // by value: no per-flow heap object
	rtProp      time.Duration
	rtPropStamp sim.Time

	pacingGain float64
	cwndGain   float64

	// Inflight bounds (bytes). 0 = unset/unlimited.
	inflightHi int64
	inflightLo int64

	// Per-round loss/ECN accounting.
	lostThisRound      int64
	deliveredThisRound int64
	ceThisRound        int64
	acksThisRound      int64

	// Startup full-pipe detection.
	fullBw      int64
	fullBwCount int
	filled      bool

	// Phase timing.
	phaseStamp  sim.Time
	cruiseUntil sim.Time

	// ProbeRTT.
	probeRTTDoneStamp sim.Time
	probeRTTRoundDone bool
	priorCwnd         int64

	conservationUntilRound int64
}

// NewBBRv2 returns a fresh BBRv2 controller.
func NewBBRv2() tcp.CongestionControl {
	return &bbr2{
		btlBw:      maxFilter{window: bbrBtlBwRounds},
		state:      bbrStartup,
		pacingGain: bbr2StartupGain,
		cwndGain:   bbr2StartupGain,
	}
}

func (b *bbr2) Name() string { return string(BBRv2) }

func (b *bbr2) Init(c *tcp.Conn) {}

func (b *bbr2) OnPacketSent(c *tcp.Conn, bytes int64) {}

// State exposes the state and phase (telemetry/tests).
func (b *bbr2) State() string { return b.stateName() }

// stateName returns the combined state:phase label from a fixed set of
// constants — no concatenation, so the per-ACK trace call cannot allocate.
func (b *bbr2) stateName() string {
	if b.state == bbrProbeBW {
		switch b.phase {
		case bbr2Down:
			return "probe_bw:down"
		case bbr2Cruise:
			return "probe_bw:cruise"
		case bbr2Refill:
			return "probe_bw:refill"
		default:
			return "probe_bw:up"
		}
	}
	return b.state.String()
}

// InflightHi exposes the upper inflight bound (tests).
func (b *bbr2) InflightHi() int64 { return b.inflightHi }

func (b *bbr2) bdpBytes(gain float64) int64 {
	bw := b.btlBw.Get()
	if bw == 0 || b.rtProp == 0 {
		return 0
	}
	return int64(gain * float64(bw) / 8 * b.rtProp.Seconds())
}

func (b *bbr2) OnAck(c *tcp.Conn, s tcp.AckSample) {
	now := s.Now

	// Model updates.
	if s.DeliveryRate > 0 && (!s.RateAppLimited || int64(s.DeliveryRate) > b.btlBw.Get()) {
		b.btlBw.Update(c.RoundCount(), int64(s.DeliveryRate))
	}
	if s.RTT > 0 && (b.rtProp == 0 || s.RTT <= b.rtProp) {
		b.rtProp = s.RTT
		b.rtPropStamp = now
	}

	// Per-round loss/ECN bookkeeping; evaluated at round boundaries.
	b.lostThisRound += s.LostBytes
	b.deliveredThisRound += s.AckedBytes
	b.acksThisRound++
	if s.CE {
		b.ceThisRound++
	}
	if s.RoundStart {
		b.evaluateRound(c, s)
	}

	// State machine.
	switch b.state {
	case bbrStartup:
		b.checkStartupDone(c, s)
	case bbrDrain:
		if s.Inflight <= b.bdpBytes(1.0) {
			b.enterProbeBW(c, now, bbr2Down)
		}
	case bbrProbeBW:
		b.advancePhase(c, s)
	case bbrProbeRTT:
		b.handleProbeRTT(c, s)
	}

	if b.state != bbrProbeRTT && b.rtProp > 0 &&
		now-b.rtPropStamp > sim.Duration(bbr2MinRTTWindow) {
		b.state = bbrProbeRTT
		b.priorCwnd = c.Cwnd()
		b.pacingGain = 1
		b.cwndGain = 1
		b.probeRTTDoneStamp = 0
		b.probeRTTRoundDone = false
	}

	b.setPacingRate(c)
	b.setCwnd(c, s)
	// Every state/phase transition funnels through here; the tracer dedupes,
	// so this records exactly one event per transition (nil-safe when off).
	c.Trace().CCAState(int64(now), b.stateName())
}

// evaluateRound applies the loss/ECN thresholds once per round trip.
func (b *bbr2) evaluateRound(c *tcp.Conn, s tcp.AckSample) {
	total := b.deliveredThisRound + b.lostThisRound
	lossRate := 0.0
	if total > 0 {
		lossRate = float64(b.lostThisRound) / float64(total)
	}
	ceFrac := 0.0
	if b.acksThisRound > 0 {
		ceFrac = float64(b.ceThisRound) / float64(b.acksThisRound)
	}
	tooHigh := lossRate > bbr2LossThresh || ceFrac > bbr2ECNThresh

	if tooHigh {
		// The cut is floored at beta×BDP (as in the v2alpha kernel): the
		// loss may have evaporated the inflight sample, but the path model
		// still knows roughly what fits.
		base := maxI64(s.Inflight, b.bdpBytes(1.0))
		target := int64(bbr2Beta * float64(base))
		if target < 2*c.MSS() {
			target = 2 * c.MSS()
		}
		probing := b.state == bbrStartup ||
			(b.state == bbrProbeBW && (b.phase == bbr2Up || b.phase == bbr2Refill))
		if probing {
			// Excessive loss while probing for more bandwidth: the ceiling
			// is real. Cut the long-term bound and stop the probe.
			if b.inflightHi == 0 || target < b.inflightHi {
				prev := b.inflightHi
				b.inflightHi = target
				c.Trace().InflightHi(int64(s.Now), b.inflightHi, prev)
			}
			if b.state == bbrProbeBW {
				b.enterPhase(c, s.Now, bbr2Down)
			} else {
				// Excessive startup loss ends the search for more bandwidth.
				b.filled = true
			}
		}
		// Loss while cruising or draining (e.g. RED's background random
		// drops) is deliberately NOT folded into the long-term bound:
		// the ceiling is only adapted from rounds that were actively
		// probing it. This is what lets BBRv2 shrug off sub-structural
		// random loss — the paper's explanation for why RED's drops
		// "rarely exceed the 2% threshold" and BBRv2 keeps the bandwidth.
	} else if b.state == bbrProbeBW && b.phase == bbr2Up && b.inflightHi > 0 &&
		s.Inflight >= b.inflightHi*3/4 {
		// The probe actually tested the ceiling and survived: raise it
		// multiplicatively so long-term growth remains possible.
		prev := b.inflightHi
		b.inflightHi += maxI64(b.inflightHi/4, c.MSS())
		c.Trace().InflightHi(int64(s.Now), b.inflightHi, prev)
	}

	b.lostThisRound = 0
	b.deliveredThisRound = 0
	b.ceThisRound = 0
	b.acksThisRound = 0
}

func (b *bbr2) checkStartupDone(c *tcp.Conn, s tcp.AckSample) {
	if !b.filled && s.RoundStart && !s.RateAppLimited {
		bw := b.btlBw.Get()
		if float64(bw) >= float64(b.fullBw)*bbrFullBwThresh {
			b.fullBw = bw
			b.fullBwCount = 0
		} else {
			b.fullBwCount++
			if b.fullBwCount >= bbrFullBwRounds {
				b.filled = true
			}
		}
	}
	if b.filled {
		b.state = bbrDrain
		b.pacingGain = bbr2DrainGain
		b.cwndGain = bbr2CwndGain
	}
}

func (b *bbr2) enterProbeBW(c *tcp.Conn, now sim.Time, ph bbr2Phase) {
	b.state = bbrProbeBW
	b.cwndGain = bbr2CwndGain
	b.enterPhase(c, now, ph)
}

func (b *bbr2) enterPhase(c *tcp.Conn, now sim.Time, ph bbr2Phase) {
	b.phase = ph
	b.phaseStamp = now
	switch ph {
	case bbr2Down:
		b.pacingGain = bbr2DownGain
	case bbr2Cruise:
		b.pacingGain = 1.0
		// Cruise for a randomized 2–3 seconds (wall-clock randomization is
		// what de-synchronizes competing BBRv2 flows).
		b.cruiseUntil = now + sim.Duration(2*time.Second) +
			sim.Duration(time.Duration(c.Rand().Jitter(float64(time.Second))))
	case bbr2Refill:
		b.pacingGain = 1.0
		b.inflightLo = 0 // forget short-term caution before probing
	case bbr2Up:
		b.pacingGain = bbr2UpGain
	}
}

func (b *bbr2) advancePhase(c *tcp.Conn, s tcp.AckSample) {
	now := s.Now
	switch b.phase {
	case bbr2Down:
		if s.Inflight <= b.bdpBytes(1.0) || now-b.phaseStamp > sim.Duration(3*b.rtProp) {
			b.enterPhase(c, now, bbr2Cruise)
		}
	case bbr2Cruise:
		if now >= b.cruiseUntil {
			b.enterPhase(c, now, bbr2Refill)
		}
	case bbr2Refill:
		if now-b.phaseStamp >= sim.Duration(b.rtProp) {
			b.enterPhase(c, now, bbr2Up)
		}
	case bbr2Up:
		hitCeiling := b.inflightHi > 0 && s.Inflight >= b.inflightHi
		longEnough := now-b.phaseStamp > sim.Duration(4*b.rtProp)
		if hitCeiling || longEnough {
			b.enterPhase(c, now, bbr2Down)
		}
	}
}

func (b *bbr2) handleProbeRTT(c *tcp.Conn, s tcp.AckSample) {
	now := s.Now
	target := b.bdpBytes(bbr2ProbeRTTGain)
	if target < bbrMinCwndSegs*c.MSS() {
		target = bbrMinCwndSegs * c.MSS()
	}
	if b.probeRTTDoneStamp == 0 && s.Inflight <= target {
		b.probeRTTDoneStamp = now + sim.Duration(bbrProbeRTTTime)
		b.probeRTTRoundDone = false
	} else if b.probeRTTDoneStamp != 0 {
		if s.RoundStart {
			b.probeRTTRoundDone = true
		}
		if b.probeRTTRoundDone && now > b.probeRTTDoneStamp {
			b.rtPropStamp = now
			if c.Cwnd() < b.priorCwnd {
				c.SetCwnd(b.priorCwnd)
			}
			if b.filled {
				b.enterProbeBW(c, now, bbr2Down)
			} else {
				b.state = bbrStartup
				b.pacingGain = bbr2StartupGain
				b.cwndGain = bbr2StartupGain
			}
		}
	}
}

func (b *bbr2) setPacingRate(c *tcp.Conn) {
	bw := b.btlBw.Get()
	if bw == 0 {
		if srtt := c.SRTT(); srtt > 0 {
			c.SetPacingRate(units.Bandwidth(bbr2StartupGain * float64(c.Cwnd()) * 8 / srtt.Seconds()))
		}
		return
	}
	rate := units.Bandwidth(b.pacingGain * float64(bw))
	if rate > 0 {
		c.SetPacingRate(rate)
	}
}

func (b *bbr2) setCwnd(c *tcp.Conn, s tcp.AckSample) {
	minW := int64(bbrMinCwndSegs) * c.MSS()
	if b.state == bbrProbeRTT {
		target := b.bdpBytes(bbr2ProbeRTTGain)
		if target < minW {
			target = minW
		}
		if c.Cwnd() > target {
			c.SetCwnd(target)
		}
		return
	}
	if c.RoundCount() < b.conservationUntilRound {
		c.SetCwnd(maxI64(s.Inflight+s.AckedBytes, c.MSS()))
		return
	}
	target := b.bdpBytes(b.cwndGain)
	if target == 0 {
		c.SetCwnd(c.Cwnd() + s.AckedBytes)
		return
	}
	// Apply the inflight bounds.
	bound := b.inflightHi
	if bound > 0 && b.state == bbrProbeBW && (b.phase == bbr2Cruise || b.phase == bbr2Down) {
		bound = int64(bbr2Headroom * float64(bound))
	}
	if bound > 0 && target > bound {
		target = bound
	}
	if b.inflightLo > 0 && target > b.inflightLo {
		target = b.inflightLo
	}
	if target < minW {
		target = minW
	}
	w := c.Cwnd()
	if b.filled {
		if w+s.AckedBytes < target {
			w += s.AckedBytes
		} else {
			w = target
		}
	} else {
		w += s.AckedBytes
		if bound > 0 && w > bound {
			w = bound
		}
	}
	c.SetCwnd(w)
}

// OnCongestionEvent: loss reaction happens via the per-round loss-rate
// threshold in evaluateRound, not per event.
func (b *bbr2) OnCongestionEvent(c *tcp.Conn) {}

func (b *bbr2) OnRTO(c *tcp.Conn) {
	c.SetCwnd(c.MSS())
	b.conservationUntilRound = c.RoundCount() + 1
	// An RTO is unambiguous congestion: also clamp the bound.
	if hi := b.bdpBytes(1.0); hi > 0 {
		cut := int64(bbr2Beta * float64(hi))
		if b.inflightHi == 0 || cut < b.inflightHi {
			prev := b.inflightHi
			b.inflightHi = cut
			c.Trace().InflightHi(int64(c.Now()), b.inflightHi, prev)
		}
	}
}
