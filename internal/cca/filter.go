// Package cca implements the five congestion-control algorithms the paper
// studies — Reno (RFC 5681), CUBIC (RFC 8312), H-TCP (Leith & Shorten 2004),
// BBRv1 (Cardwell et al. 2017) and BBRv2 (IETF-106 draft) — against the
// internal/tcp hook interface, plus a registry to construct them by name.
package cca

// minmaxSample is one sample in the windowed filter.
type minmaxSample struct {
	t int64 // timestamp (any monotone unit: rounds or sim time)
	v int64
}

// maxFilter is the Linux kernel's windowed max estimator (lib/minmax.c):
// it tracks the best sample plus two recent runners-up so the estimate
// degrades gracefully when the max leaves the window.
type maxFilter struct {
	window int64
	s      [3]minmaxSample
}

func newMaxFilter(window int64) *maxFilter {
	return &maxFilter{window: window}
}

// Get returns the current windowed maximum.
func (f *maxFilter) Get() int64 { return f.s[0].v }

// Update folds in a new sample at time t and returns the new maximum.
func (f *maxFilter) Update(t, v int64) int64 {
	if v >= f.s[0].v || t-f.s[2].t > f.window {
		// New overall max, or the window has fully expired: reset.
		f.s[0] = minmaxSample{t, v}
		f.s[1] = f.s[0]
		f.s[2] = f.s[0]
		return f.s[0].v
	}
	if v >= f.s[1].v {
		f.s[1] = minmaxSample{t, v}
		f.s[2] = f.s[1]
	} else if v >= f.s[2].v {
		f.s[2] = minmaxSample{t, v}
	}
	return f.subwin(t, v)
}

// subwin handles expiry of the leading samples, promoting runners-up.
func (f *maxFilter) subwin(t, v int64) int64 {
	if t-f.s[0].t > f.window {
		f.s[0] = f.s[1]
		f.s[1] = f.s[2]
		f.s[2] = minmaxSample{t, v}
		if t-f.s[0].t > f.window {
			f.s[0] = f.s[1]
			f.s[1] = f.s[2]
		}
	} else if f.s[1].t == f.s[0].t && t-f.s[1].t > f.window/4 {
		f.s[1] = minmaxSample{t, v}
		f.s[2] = f.s[1]
	} else if f.s[2].t == f.s[1].t && t-f.s[2].t > f.window/2 {
		f.s[2] = minmaxSample{t, v}
	}
	return f.s[0].v
}
