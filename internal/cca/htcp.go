package cca

import (
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// H-TCP constants per Leith & Shorten (PFLDnet 2004).
const (
	htcpDeltaL  = time.Second // low-speed regime threshold Δ_L
	htcpBetaMin = 0.5
	htcpBetaMax = 0.8
)

// htcp implements Hamilton TCP: the additive-increase rate grows as a
// quadratic function of the time elapsed since the last congestion event, and
// the backoff factor adapts to the ratio of minimum to maximum RTT seen in
// the last congestion epoch. Because a bloated buffer inflates RTTmax, H-TCP
// backs off harder as FIFO queues grow — exactly the "interprets queuing
// delay as limited bandwidth" behaviour the paper observes.
type htcp struct {
	lastCongestion sim.Time // time of last congestion event (0 = none yet)
	rttMin, rttMax time.Duration
	beta           float64
	started        bool
	lastThroughput float64 // delivered bytes/sec at previous congestion
	lastDelivered  int64
	lastCongAt     sim.Time
}

// NewHTCP returns a fresh H-TCP controller.
func NewHTCP() tcp.CongestionControl { return &htcp{beta: htcpBetaMin} }

func (h *htcp) Name() string                          { return string(HTCP) }
func (h *htcp) Init(c *tcp.Conn)                      {}
func (h *htcp) OnPacketSent(c *tcp.Conn, bytes int64) {}

// alpha returns the per-RTT additive increase in segments for elapsed Δ.
func (h *htcp) alpha(delta time.Duration) float64 {
	if delta <= htcpDeltaL {
		return 1
	}
	d := (delta - htcpDeltaL).Seconds()
	a := 1 + 10*d + 0.25*d*d
	// RTT-scaling-free variant; the paper's testbed has a fixed 62 ms RTT.
	return a
}

func (h *htcp) OnAck(c *tcp.Conn, s tcp.AckSample) {
	h.growWindow(c, s)
	updateInternalPacing(c)
}

func (h *htcp) growWindow(c *tcp.Conn, s tcp.AckSample) {
	if s.RTT > 0 {
		if h.rttMin == 0 || s.RTT < h.rttMin {
			h.rttMin = s.RTT
		}
		if s.RTT > h.rttMax {
			h.rttMax = s.RTT
		}
	}
	if s.AckedBytes <= 0 || s.InRecovery {
		return
	}
	if c.InSlowStart() {
		c.SetCwnd(c.Cwnd() + s.AckedBytes)
		return
	}
	if !h.started {
		h.started = true
		h.lastCongestion = s.Now
	}
	delta := (s.Now - h.lastCongestion).Std()
	a := h.alpha(delta)
	inc := int64(a * float64(c.MSS()) * float64(s.AckedBytes) / float64(c.Cwnd()))
	if inc < 1 {
		inc = 1
	}
	c.SetCwnd(c.Cwnd() + inc)
}

// adaptiveBeta computes the backoff factor from the RTT spread of the
// closing epoch, with the throughput-stability override from the H-TCP
// framework paper (use 0.5 when throughput shifted more than 20%).
func (h *htcp) adaptiveBeta(c *tcp.Conn, now sim.Time) float64 {
	b := htcpBetaMin
	if h.rttMax > 0 && h.rttMin > 0 {
		b = float64(h.rttMin) / float64(h.rttMax)
	}
	if b < htcpBetaMin {
		b = htcpBetaMin
	}
	if b > htcpBetaMax {
		b = htcpBetaMax
	}
	// Throughput stability check.
	if h.lastCongAt > 0 {
		elapsed := (now - h.lastCongAt).Std().Seconds()
		if elapsed > 0 {
			tp := float64(c.Delivered()-h.lastDelivered) / elapsed
			if h.lastThroughput > 0 {
				shift := (tp - h.lastThroughput) / h.lastThroughput
				if shift < -0.2 || shift > 0.2 {
					b = htcpBetaMin
				}
			}
			h.lastThroughput = tp
		}
	}
	h.lastDelivered = c.Delivered()
	h.lastCongAt = now
	return b
}

func (h *htcp) OnCongestionEvent(c *tcp.Conn) {
	now := c.Now()
	h.beta = h.adaptiveBeta(c, now)
	next := int64(float64(c.Cwnd()) * h.beta)
	c.SetSSThresh(next)
	c.SetCwnd(next)
	h.lastCongestion = now
	// Reset the per-epoch RTT envelope.
	h.rttMin, h.rttMax = 0, 0
}

func (h *htcp) OnRTO(c *tcp.Conn) {
	h.OnCongestionEvent(c)
	c.SetCwnd(c.MSS())
}
