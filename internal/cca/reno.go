package cca

import "repro/internal/tcp"

// reno implements TCP Reno / NewReno (RFC 5681, RFC 6582): slow start,
// additive increase of one segment per RTT in congestion avoidance, and
// multiplicative decrease by half on loss. Its conservative growth is why
// the paper finds it unable to hold its share against CUBIC in large
// buffers and unable to fill high-BDP pipes.
type reno struct{}

// NewReno returns a fresh Reno controller.
func NewReno() tcp.CongestionControl { return &reno{} }

func (r *reno) Name() string                          { return string(Reno) }
func (r *reno) Init(c *tcp.Conn)                      {}
func (r *reno) OnPacketSent(c *tcp.Conn, bytes int64) {}

func (r *reno) OnAck(c *tcp.Conn, s tcp.AckSample) {
	r.growWindow(c, s)
	updateInternalPacing(c)
}

func (r *reno) growWindow(c *tcp.Conn, s tcp.AckSample) {
	if s.AckedBytes <= 0 || s.InRecovery {
		return
	}
	if c.InSlowStart() {
		// Byte-counting slow start: grow by what was acked, not past
		// ssthresh by more than the overshoot.
		c.SetCwnd(c.Cwnd() + s.AckedBytes)
		return
	}
	// Congestion avoidance: +1 MSS per RTT, spread across ACKs.
	inc := c.MSS() * s.AckedBytes / c.Cwnd()
	if inc < 1 {
		inc = 1
	}
	c.SetCwnd(c.Cwnd() + inc)
}

func (r *reno) OnCongestionEvent(c *tcp.Conn) {
	half := c.Cwnd() / 2
	c.SetSSThresh(half)
	c.SetCwnd(half)
}

func (r *reno) OnRTO(c *tcp.Conn) {
	c.SetSSThresh(c.Cwnd() / 2)
	c.SetCwnd(c.MSS())
}
