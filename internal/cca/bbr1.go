package cca

import (
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// BBRv1 constants per the BBR draft and Cardwell et al. (2017).
const (
	bbrHighGain     = 2.885 // 2/ln2: fills the pipe in one RTT per doubling
	bbrDrainGain    = 1 / bbrHighGain
	bbrCwndGain     = 2.0 // the "2×BDP inflight cap" the paper dwells on
	bbrBtlBwRounds  = 10  // max-filter window, in round trips
	bbrMinRTTWindow = 10 * time.Second
	bbrProbeRTTTime = 200 * time.Millisecond
	bbrMinCwndSegs  = 4
	bbrFullBwThresh = 1.25 // startup exits after 3 rounds without 25% growth
	bbrFullBwRounds = 3
	bbrGainCycleLen = 8
)

// bbrState enumerates the BBRv1 state machine.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	switch s {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeBW:
		return "probe_bw"
	default:
		return "probe_rtt"
	}
}

var bbrPacingGainCycle = [bbrGainCycleLen]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// bbr1 implements BBR version 1: it builds an explicit model of the path —
// windowed-max delivery rate (BtlBw) and windowed-min RTT (RTprop) — and
// paces at gain·BtlBw with inflight capped at 2·BDP. It does not reduce its
// rate on packet loss, which is why the paper sees it both dominate CUBIC
// under RED and suffer enormous retransmission counts.
type bbr1 struct {
	state bbrState

	btlBw       maxFilter // bits/sec, keyed by round count (by value: no per-flow heap object)
	rtProp      time.Duration
	rtPropStamp sim.Time

	pacingGain float64
	cwndGain   float64

	// Startup full-pipe detection.
	fullBw      int64
	fullBwCount int
	filled      bool

	// ProbeBW gain cycling.
	cycleIndex int
	cycleStamp sim.Time

	// ProbeRTT bookkeeping.
	probeRTTDoneStamp sim.Time
	probeRTTRoundDone bool
	priorCwnd         int64

	// Post-RTO packet conservation.
	conservationUntilRound int64
}

// NewBBRv1 returns a fresh BBRv1 controller.
func NewBBRv1() tcp.CongestionControl {
	return &bbr1{
		btlBw:      maxFilter{window: bbrBtlBwRounds},
		state:      bbrStartup,
		pacingGain: bbrHighGain,
		cwndGain:   bbrHighGain,
	}
}

func (b *bbr1) Name() string { return string(BBRv1) }

func (b *bbr1) Init(c *tcp.Conn) {}

func (b *bbr1) OnPacketSent(c *tcp.Conn, bytes int64) {}

// State exposes the current state name (telemetry/tests).
func (b *bbr1) State() string { return b.state.String() }

// BtlBw returns the current bottleneck-bandwidth estimate.
func (b *bbr1) BtlBw() units.Bandwidth { return units.Bandwidth(b.btlBw.Get()) }

// bdpBytes returns gain × BtlBw·RTprop in bytes.
func (b *bbr1) bdpBytes(gain float64) int64 {
	bw := b.btlBw.Get()
	if bw == 0 || b.rtProp == 0 {
		return 0
	}
	return int64(gain * float64(bw) / 8 * b.rtProp.Seconds())
}

func (b *bbr1) OnAck(c *tcp.Conn, s tcp.AckSample) {
	now := s.Now

	// Model updates.
	if s.DeliveryRate > 0 && (!s.RateAppLimited || int64(s.DeliveryRate) > b.btlBw.Get()) {
		b.btlBw.Update(c.RoundCount(), int64(s.DeliveryRate))
	}
	if s.RTT > 0 && (b.rtProp == 0 || s.RTT <= b.rtProp) {
		b.rtProp = s.RTT
		b.rtPropStamp = now
	}

	// State machine.
	switch b.state {
	case bbrStartup:
		b.checkFullPipe(s)
		if b.filled {
			b.state = bbrDrain
			b.pacingGain = bbrDrainGain
			b.cwndGain = bbrHighGain
		}
	case bbrDrain:
		if s.Inflight <= b.bdpBytes(1.0) {
			b.enterProbeBW(c, now)
		}
	case bbrProbeBW:
		b.advanceCycle(c, s)
	case bbrProbeRTT:
		b.handleProbeRTT(c, s)
	}

	// Enter ProbeRTT when the min-RTT estimate has gone stale.
	if b.state != bbrProbeRTT && b.rtProp > 0 &&
		now-b.rtPropStamp > sim.Duration(bbrMinRTTWindow) {
		b.enterProbeRTT(c, now)
	}

	b.setPacingRate(c)
	b.setCwnd(c, s)
	// Every transition above funnels through here; the tracer dedupes, so
	// this records exactly one event per state change (nil-safe when off).
	c.Trace().CCAState(int64(now), b.state.String())
}

// checkFullPipe implements startup exit: three rounds without 25% growth.
func (b *bbr1) checkFullPipe(s tcp.AckSample) {
	if b.filled || !s.RoundStart || s.RateAppLimited {
		return
	}
	bw := b.btlBw.Get()
	if float64(bw) >= float64(b.fullBw)*bbrFullBwThresh {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= bbrFullBwRounds {
		b.filled = true
	}
}

func (b *bbr1) enterProbeBW(c *tcp.Conn, now sim.Time) {
	b.state = bbrProbeBW
	b.cwndGain = bbrCwndGain
	// Random initial phase, excluding the 0.75 drain phase (index 1).
	idx := c.Rand().Intn(bbrGainCycleLen - 1)
	if idx >= 1 {
		idx++
	}
	b.cycleIndex = idx
	b.cycleStamp = now
	b.pacingGain = bbrPacingGainCycle[b.cycleIndex]
}

// advanceCycle rotates through the ProbeBW pacing-gain cycle.
func (b *bbr1) advanceCycle(c *tcp.Conn, s tcp.AckSample) {
	now := s.Now
	elapsed := now-b.cycleStamp > sim.Duration(b.rtProp)
	advance := false
	switch g := bbrPacingGainCycle[b.cycleIndex]; {
	case g > 1:
		// Probing up: hold until we actually created 1.25·BDP inflight or
		// saw loss — otherwise the probe told us nothing.
		advance = elapsed && (s.LostBytes > 0 || s.Inflight >= b.bdpBytes(g))
	case g < 1:
		// Draining: leave as soon as the queue we built is gone.
		advance = elapsed || s.Inflight <= b.bdpBytes(1.0)
	default:
		advance = elapsed
	}
	if advance {
		b.cycleIndex = (b.cycleIndex + 1) % bbrGainCycleLen
		b.cycleStamp = now
		b.pacingGain = bbrPacingGainCycle[b.cycleIndex]
	}
}

func (b *bbr1) enterProbeRTT(c *tcp.Conn, now sim.Time) {
	b.state = bbrProbeRTT
	b.priorCwnd = c.Cwnd()
	b.pacingGain = 1
	b.cwndGain = 1
	b.probeRTTDoneStamp = 0
	b.probeRTTRoundDone = false
}

func (b *bbr1) handleProbeRTT(c *tcp.Conn, s tcp.AckSample) {
	now := s.Now
	minW := bbrMinCwndSegs * c.MSS()
	if b.probeRTTDoneStamp == 0 && s.Inflight <= minW {
		b.probeRTTDoneStamp = now + sim.Duration(bbrProbeRTTTime)
		b.probeRTTRoundDone = false
	} else if b.probeRTTDoneStamp != 0 {
		if s.RoundStart {
			b.probeRTTRoundDone = true
		}
		if b.probeRTTRoundDone && now > b.probeRTTDoneStamp {
			b.rtPropStamp = now
			if c.Cwnd() < b.priorCwnd {
				c.SetCwnd(b.priorCwnd)
			}
			if b.filled {
				b.enterProbeBW(c, now)
			} else {
				b.state = bbrStartup
				b.pacingGain = bbrHighGain
				b.cwndGain = bbrHighGain
			}
		}
	}
}

func (b *bbr1) setPacingRate(c *tcp.Conn) {
	bw := b.btlBw.Get()
	if bw == 0 {
		// No rate sample yet: pace the initial window over the first RTT.
		if srtt := c.SRTT(); srtt > 0 {
			c.SetPacingRate(units.Bandwidth(bbrHighGain * float64(c.Cwnd()) * 8 / srtt.Seconds()))
		}
		return
	}
	rate := units.Bandwidth(b.pacingGain * float64(bw))
	if rate > 0 {
		c.SetPacingRate(rate)
	}
}

func (b *bbr1) setCwnd(c *tcp.Conn, s tcp.AckSample) {
	minW := bbrMinCwndSegs * c.MSS()
	if b.state == bbrProbeRTT {
		if c.Cwnd() > minW {
			c.SetCwnd(minW)
		}
		return
	}
	if c.RoundCount() < b.conservationUntilRound {
		// One round of packet conservation after an RTO.
		c.SetCwnd(maxI64(s.Inflight+s.AckedBytes, c.MSS()))
		return
	}
	target := b.bdpBytes(b.cwndGain)
	if target == 0 {
		// No model yet: grow like slow start.
		c.SetCwnd(c.Cwnd() + s.AckedBytes)
		return
	}
	if target < minW {
		target = minW
	}
	w := c.Cwnd()
	if b.filled {
		if w+s.AckedBytes < target {
			w += s.AckedBytes
		} else {
			w = target
		}
	} else {
		// Startup: grow without capping at the (still-forming) target.
		w += s.AckedBytes
	}
	c.SetCwnd(w)
}

// OnCongestionEvent: BBRv1 deliberately ignores packet loss as a congestion
// signal; its model is rate- and delay-based.
func (b *bbr1) OnCongestionEvent(c *tcp.Conn) {}

func (b *bbr1) OnRTO(c *tcp.Conn) {
	// Collapse to one segment and conserve packets for a round, then the
	// model-based cwnd target takes over again.
	c.SetCwnd(c.MSS())
	b.conservationUntilRound = c.RoundCount() + 1
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
