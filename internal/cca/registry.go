package cca

import (
	"fmt"
	"sort"

	"repro/internal/tcp"
)

// Name identifies a congestion-control algorithm.
type Name string

// The paper's five algorithms.
const (
	Reno  Name = "reno"
	Cubic Name = "cubic"
	HTCP  Name = "htcp"
	BBRv1 Name = "bbr1"
	BBRv2 Name = "bbr2"
)

// Ablation variants (not part of the paper's five, but used by the
// design-choice benchmarks in bench_test.go and available to experiments).
const (
	CubicNoHyStart  Name = "cubic-nohystart"
	CubicNoFastConv Name = "cubic-nofastconv"
)

// factories maps names to constructors. Each call returns a fresh,
// per-connection controller instance.
var factories = map[Name]func() tcp.CongestionControl{
	Reno:  func() tcp.CongestionControl { return NewReno() },
	Cubic: func() tcp.CongestionControl { return NewCubic() },
	HTCP:  func() tcp.CongestionControl { return NewHTCP() },
	BBRv1: func() tcp.CongestionControl { return NewBBRv1() },
	BBRv2: func() tcp.CongestionControl { return NewBBRv2() },

	CubicNoHyStart:  func() tcp.CongestionControl { return NewCubicNoHyStart() },
	CubicNoFastConv: func() tcp.CongestionControl { return &cubic{hystart: true, name: CubicNoFastConv} },
}

// New constructs a fresh controller by name.
func New(n Name) (tcp.CongestionControl, error) {
	f, ok := factories[n]
	if !ok {
		return nil, fmt.Errorf("cca: unknown algorithm %q (known: %v)", n, Names())
	}
	return f(), nil
}

// MustNew is New for static names; it panics on unknown names.
func MustNew(n Name) tcp.CongestionControl {
	cc, err := New(n)
	if err != nil {
		panic(err)
	}
	return cc
}

// Names lists the paper's five algorithms, sorted. Variants are excluded;
// see AllNames.
func Names() []Name {
	return []Name{BBRv1, BBRv2, Cubic, HTCP, Reno}
}

// AllNames lists every registered constructor, including ablation variants.
func AllNames() []Name {
	out := make([]Name, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parse validates an algorithm name.
func Parse(s string) (Name, error) {
	if _, ok := factories[Name(s)]; ok {
		return Name(s), nil
	}
	return "", fmt.Errorf("cca: unknown algorithm %q (known: %v)", s, Names())
}
