package cca

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("want 5 algorithms, got %v", names)
	}
	for _, n := range names {
		cc, err := New(n)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if cc.Name() != string(n) {
			t.Errorf("Name mismatch: %q vs %q", cc.Name(), n)
		}
		if MustNew(n).Name() != string(n) {
			t.Errorf("%s: MustNew name mismatch", n)
		}
	}
	if _, err := New("vegas"); err == nil {
		t.Error("unknown name should error")
	}
	if _, err := Parse("cubic"); err != nil {
		t.Error("Parse(cubic) should succeed")
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse(nope) should fail")
	}
}

// --- single-flow integration harness ---

type flowSim struct {
	eng  *sim.Engine
	conn *tcp.Conn
	rcv  *tcp.Receiver
	bott *netem.Port
}

// newFlowSim wires one sender through a bottleneck of the given rate, with a
// queue of qBDP × BDP, and a 62 ms round trip.
func newFlowSim(rate units.Bandwidth, qBDP float64, cc tcp.CongestionControl) *flowSim {
	eng := sim.NewEngine(1)
	rtt := 62 * time.Millisecond
	owd := rtt / 2
	qbytes := units.QueueBytes(rate, rtt, qBDP, 8960)

	fs := &flowSim{eng: eng}
	back := netem.NewPort(eng, "back", 100*units.GigabitPerSec, owd, nil, nil)
	fs.bott = netem.NewPort(eng, "bott", rate, owd, aqm.NewFIFO(qbytes), nil)
	fs.conn = tcp.NewConn(eng, 1, tcp.Config{}, cc, func(p *packet.Packet) { fs.bott.Send(p) })
	fs.rcv = tcp.NewReceiver(eng, 1, 60, func(p *packet.Packet) { back.Send(p) })
	fs.bott.SetDst(fs.rcv)
	back.SetDst(fs.conn)
	return fs
}

func (fs *flowSim) run(d time.Duration) { fs.conn.Start(); fs.eng.RunFor(d) }

func (fs *flowSim) goodputBps(d time.Duration) float64 {
	return float64(fs.rcv.Goodput()) * 8 / d.Seconds()
}

func TestEveryCCAFillsTheLink(t *testing.T) {
	// Reproduction anchor: with FIFO and a 2·BDP buffer, every CCA reaches
	// near-full utilization of a 100 Mbps / 62 ms path (paper Fig. 7a).
	for _, name := range Names() {
		t.Run(string(name), func(t *testing.T) {
			fs := newFlowSim(100*units.MegabitPerSec, 2, MustNew(name))
			dur := 30 * time.Second
			fs.run(dur)
			util := fs.goodputBps(dur) / 100e6
			if util < 0.80 {
				t.Fatalf("%s: utilization %.3f < 0.80", name, util)
			}
			if util > 1.0 {
				t.Fatalf("%s: utilization %.3f > 1 (accounting bug)", name, util)
			}
		})
	}
}

func TestEveryCCASurvivesTinyBuffer(t *testing.T) {
	// 0.5·BDP buffer: all CCAs must still make solid progress (the paper's
	// smallest buffer point).
	for _, name := range Names() {
		t.Run(string(name), func(t *testing.T) {
			fs := newFlowSim(100*units.MegabitPerSec, 0.5, MustNew(name))
			dur := 30 * time.Second
			fs.run(dur)
			util := fs.goodputBps(dur) / 100e6
			if util < 0.35 {
				t.Fatalf("%s: utilization %.3f too low even for 0.5 BDP", name, util)
			}
		})
	}
}

// --- Reno ---

func TestRenoUnitGrowth(t *testing.T) {
	fs := newFlowSim(100*units.MegabitPerSec, 4, NewReno())
	fs.conn.SetSSThresh(20 * fs.conn.MSS()) // force early CA entry
	fs.run(10 * time.Second)
	st := fs.conn.Stats()
	if st.BytesAcked == 0 {
		t.Fatal("no progress")
	}
}

func TestRenoHalvesOnCongestion(t *testing.T) {
	r := NewReno()
	fs := newFlowSim(100*units.MegabitPerSec, 1, r)
	fs.conn.SetCwnd(100 * fs.conn.MSS())
	before := fs.conn.Cwnd()
	r.OnCongestionEvent(fs.conn)
	if got := fs.conn.Cwnd(); got != before/2 {
		t.Fatalf("cwnd after loss = %d, want %d", got, before/2)
	}
	r.OnRTO(fs.conn)
	if fs.conn.Cwnd() != fs.conn.MSS() {
		t.Fatal("RTO must collapse to 1 MSS")
	}
}

// --- CUBIC ---

func TestCubicBetaReduction(t *testing.T) {
	cu := NewCubic()
	fs := newFlowSim(100*units.MegabitPerSec, 1, cu)
	fs.conn.SetCwnd(100 * fs.conn.MSS())
	before := fs.conn.Cwnd()
	cu.OnCongestionEvent(fs.conn)
	want := int64(float64(before) * cubicBeta)
	got := fs.conn.Cwnd()
	if got < want-fs.conn.MSS() || got > want+fs.conn.MSS() {
		t.Fatalf("cwnd after loss = %d, want ≈ %d (0.7×)", got, want)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	cu := NewCubic().(*cubic)
	fs := newFlowSim(100*units.MegabitPerSec, 1, cu)
	mss := float64(fs.conn.MSS())
	fs.conn.SetCwnd(int64(100 * mss))
	cu.OnCongestionEvent(fs.conn) // wMax anchored at 100
	first := cu.wMax
	// Second loss at a lower window: fast convergence shrinks wMax below
	// the current window.
	fs.conn.SetCwnd(int64(80 * mss))
	cu.OnCongestionEvent(fs.conn)
	if cu.wMax >= first {
		t.Fatalf("wMax did not shrink: %.1f -> %.1f", first, cu.wMax)
	}
	if cu.wMax >= 80 {
		t.Fatalf("fast convergence should anchor below the loss window: %.1f", cu.wMax)
	}
}

func TestCubicGrowthAcceleratesPastK(t *testing.T) {
	// After a loss, CUBIC is concave (fast, then flat near wMax) and then
	// convex. Check the window at wMax-crossing time is near wMax.
	cu := NewCubic().(*cubic)
	fs := newFlowSim(500*units.MegabitPerSec, 4, cu)
	dur := 40 * time.Second
	fs.run(dur)
	if cu.wMax == 0 {
		t.Skip("no congestion event occurred")
	}
	util := fs.goodputBps(dur) / 500e6
	if util < 0.80 {
		t.Fatalf("cubic utilization %.3f", util)
	}
}

// --- HTCP ---

func TestHTCPAlphaSchedule(t *testing.T) {
	h := NewHTCP().(*htcp)
	if got := h.alpha(500 * time.Millisecond); got != 1 {
		t.Fatalf("alpha below ΔL = %v", got)
	}
	if got := h.alpha(time.Second); got != 1 {
		t.Fatalf("alpha at ΔL = %v", got)
	}
	// Δ = 2s: 1 + 10·1 + 0.25·1 = 11.25.
	if got := h.alpha(2 * time.Second); got < 11.24 || got > 11.26 {
		t.Fatalf("alpha(2s) = %v, want 11.25", got)
	}
	// Δ = 3s: 1 + 20 + 0.25·4 = 22.
	if got := h.alpha(3 * time.Second); got < 21.9 || got > 22.1 {
		t.Fatalf("alpha(3s) = %v, want 22", got)
	}
	// Monotone.
	prev := 0.0
	for d := time.Second; d < 20*time.Second; d += 100 * time.Millisecond {
		a := h.alpha(d)
		if a < prev {
			t.Fatalf("alpha not monotone at %v", d)
		}
		prev = a
	}
}

func TestHTCPBetaClamped(t *testing.T) {
	h := NewHTCP().(*htcp)
	fs := newFlowSim(100*units.MegabitPerSec, 1, h)
	// Huge RTT spread: beta must clamp at 0.5.
	h.rttMin, h.rttMax = 10*time.Millisecond, 500*time.Millisecond
	if b := h.adaptiveBeta(fs.conn, 0); b != htcpBetaMin {
		t.Fatalf("beta = %v, want clamp at %v", b, htcpBetaMin)
	}
	// Tiny spread: clamp at 0.8.
	h2 := NewHTCP().(*htcp)
	h2.rttMin, h2.rttMax = 100*time.Millisecond, 101*time.Millisecond
	if b := h2.adaptiveBeta(fs.conn, 0); b != htcpBetaMax {
		t.Fatalf("beta = %v, want clamp at %v", b, htcpBetaMax)
	}
}

// --- BBRv1 ---

func TestBBRv1ReachesProbeBW(t *testing.T) {
	b := NewBBRv1().(*bbr1)
	fs := newFlowSim(100*units.MegabitPerSec, 2, b)
	fs.run(5 * time.Second)
	if b.State() != "probe_bw" && b.State() != "probe_rtt" {
		t.Fatalf("state after 5s = %s, want probe_bw", b.State())
	}
	// The bandwidth model must be near the link rate.
	est := b.BtlBw().Mbps()
	if est < 90 || est > 110 {
		t.Fatalf("BtlBw estimate = %.1f Mbps, want ≈100", est)
	}
}

func TestBBRv1RespectsTwoBDPInflightCap(t *testing.T) {
	b := NewBBRv1().(*bbr1)
	fs := newFlowSim(100*units.MegabitPerSec, 16, b)
	fs.run(3 * time.Second) // past startup
	bdp := int64(units.BDP(100*units.MegabitPerSec, 62*time.Millisecond))
	maxInflight := int64(0)
	for i := 0; i < 200; i++ {
		fs.eng.RunFor(50 * time.Millisecond)
		if f := fs.conn.Inflight(); f > maxInflight {
			maxInflight = f
		}
	}
	// cwnd gain is 2; allow some slack for the 1.25 probe phase.
	if maxInflight > int64(2.6*float64(bdp)) {
		t.Fatalf("inflight %d greatly exceeds 2×BDP (%d): cap broken", maxInflight, 2*bdp)
	}
	if maxInflight < bdp {
		t.Fatalf("inflight %d below 1 BDP: underutilizing", maxInflight)
	}
}

func TestBBRv1IgnoresLoss(t *testing.T) {
	b := NewBBRv1()
	fs := newFlowSim(100*units.MegabitPerSec, 2, b)
	fs.run(5 * time.Second)
	w := fs.conn.Cwnd()
	b.OnCongestionEvent(fs.conn)
	if fs.conn.Cwnd() != w {
		t.Fatal("BBRv1 must not react to individual loss events")
	}
}

func TestBBRv1MinRTTTracking(t *testing.T) {
	b := NewBBRv1().(*bbr1)
	fs := newFlowSim(100*units.MegabitPerSec, 8, b)
	fs.run(10 * time.Second)
	if b.rtProp < 62*time.Millisecond || b.rtProp > 75*time.Millisecond {
		t.Fatalf("RTprop = %v, want ≈62ms", b.rtProp)
	}
}

// --- BBRv2 ---

func TestBBRv2LossThresholdCutsInflightHi(t *testing.T) {
	b := NewBBRv2().(*bbr2)
	fs := newFlowSim(100*units.MegabitPerSec, 1, b)
	// Simulate a round with 10% loss.
	b.filled = true
	b.state = bbrProbeBW
	b.phase = bbr2Up
	b.rtProp = 62 * time.Millisecond
	b.btlBw.Update(0, 100_000_000)
	b.lostThisRound = 100_000
	b.deliveredThisRound = 900_000
	b.evaluateRound(fs.conn, tcp.AckSample{Now: fs.eng.Now(), Inflight: 775_000})
	if b.inflightHi == 0 {
		t.Fatal("10% loss round did not set inflight_hi")
	}
	if b.phase != bbr2Down {
		t.Fatalf("excessive loss in Up should force Down, got %v", b.phase)
	}
}

func TestBBRv2IgnoresSubThresholdLoss(t *testing.T) {
	b := NewBBRv2().(*bbr2)
	fs := newFlowSim(100*units.MegabitPerSec, 1, b)
	b.filled = true
	b.state = bbrProbeBW
	b.phase = bbr2Cruise
	// 1% loss — below the 2% threshold: no reaction.
	b.lostThisRound = 10_000
	b.deliveredThisRound = 990_000
	b.evaluateRound(fs.conn, tcp.AckSample{Now: fs.eng.Now(), Inflight: 775_000})
	if b.inflightHi != 0 {
		t.Fatalf("sub-threshold loss set inflight_hi=%d", b.inflightHi)
	}
}

func TestBBRv2CyclesThroughPhases(t *testing.T) {
	b := NewBBRv2().(*bbr2)
	fs := newFlowSim(100*units.MegabitPerSec, 2, b)
	seen := map[string]bool{}
	fs.conn.Start()
	for i := 0; i < 600; i++ {
		fs.eng.RunFor(50 * time.Millisecond)
		seen[b.State()] = true
	}
	for _, want := range []string{"probe_bw:down", "probe_bw:cruise", "probe_bw:refill", "probe_bw:up"} {
		if !seen[want] {
			t.Errorf("phase %s never visited (saw %v)", want, seen)
		}
	}
}

func TestBBRv2FewerRetransmitsThanBBRv1(t *testing.T) {
	// Paper Table 3: BBRv1 retransmits an order of magnitude more than
	// BBRv2 in the same FIFO setting.
	run := func(cc tcp.CongestionControl) uint64 {
		fs := newFlowSim(100*units.MegabitPerSec, 1, cc)
		fs.run(30 * time.Second)
		return fs.conn.Stats().Retransmits
	}
	r1 := run(NewBBRv1())
	r2 := run(NewBBRv2())
	if r2 > r1 {
		t.Fatalf("BBRv2 retransmits (%d) exceed BBRv1 (%d)", r2, r1)
	}
}

func TestStateStrings(t *testing.T) {
	if bbrStartup.String() != "startup" || bbrDrain.String() != "drain" ||
		bbrProbeBW.String() != "probe_bw" || bbrProbeRTT.String() != "probe_rtt" {
		t.Error("bbrState strings wrong")
	}
	if bbr2Down.String() != "down" || bbr2Cruise.String() != "cruise" ||
		bbr2Refill.String() != "refill" || bbr2Up.String() != "up" {
		t.Error("bbr2Phase strings wrong")
	}
}

func BenchmarkCCAOnAck(b *testing.B) {
	for _, name := range Names() {
		b.Run(string(name), func(b *testing.B) {
			cc := MustNew(name)
			fs := newFlowSim(100*units.MegabitPerSec, 2, cc)
			fs.run(2 * time.Second)
			s := tcp.AckSample{
				Now:          fs.eng.Now(),
				AckedBytes:   8900,
				RTT:          63 * time.Millisecond,
				DeliveryRate: 99 * units.MegabitPerSec,
				Inflight:     775_000,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cc.OnAck(fs.conn, s)
			}
		})
	}
}

// twoFlowStates runs two same-CCA flows through one bottleneck (a standing
// queue keeps the min-RTT estimate stale, the condition for ProbeRTT) and
// samples the first controller's state string.
func twoFlowStates(t *testing.T, mk func() tcp.CongestionControl, dur time.Duration) map[string]bool {
	t.Helper()
	eng := sim.NewEngine(1)
	rate := 100 * units.MegabitPerSec
	rtt := 62 * time.Millisecond
	owd := rtt / 2
	qbytes := units.QueueBytes(rate, rtt, 4, 8960)
	back := netem.NewPort(eng, "back", 100*units.GigabitPerSec, owd, nil, nil)
	bott := netem.NewPort(eng, "bott", rate, owd, aqm.NewFIFO(qbytes), nil)

	cc0 := mk()
	type demux struct {
		m map[packet.FlowID]netem.Receiver
	}
	srv := &demux{m: map[packet.FlowID]netem.Receiver{}}
	cli := &demux{m: map[packet.FlowID]netem.Receiver{}}
	recv := func(d *demux) netem.ReceiverFunc {
		return func(now sim.Time, p *packet.Packet) {
			if r, ok := d.m[p.Flow]; ok {
				r.Receive(now, p)
			} else {
				packet.Release(p)
			}
		}
	}
	bott.SetDst(recv(srv))
	back.SetDst(recv(cli))
	for id := packet.FlowID(1); id <= 2; id++ {
		cc := cc0
		if id == 2 {
			cc = mk()
		}
		conn := tcp.NewConn(eng, id, tcp.Config{}, cc, func(p *packet.Packet) { bott.Send(p) })
		rcv := tcp.NewReceiver(eng, id, 60, func(p *packet.Packet) { back.Send(p) })
		srv.m[id] = rcv
		cli.m[id] = conn
		conn.Start()
	}
	type stater interface{ State() string }
	states := map[string]bool{}
	steps := int(dur / (50 * time.Millisecond))
	for i := 0; i < steps; i++ {
		eng.RunFor(50 * time.Millisecond)
		states[cc0.(stater).State()] = true
	}
	return states
}

func TestBBRv1ProbeRTTCycle(t *testing.T) {
	// With a competitor maintaining a standing queue, RTprop goes stale
	// after 10s and BBRv1 must dip into ProbeRTT and come back out.
	states := twoFlowStates(t, NewBBRv1, 35*time.Second)
	if !states["probe_rtt"] {
		t.Fatalf("BBRv1 never entered ProbeRTT: %v", states)
	}
	if !states["probe_bw"] {
		t.Fatalf("BBRv1 never in ProbeBW: %v", states)
	}
}

func TestBBRv2ProbeRTTCycle(t *testing.T) {
	states := twoFlowStates(t, NewBBRv2, 25*time.Second)
	saw := false
	for s := range states {
		if s == "probe_rtt" {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("BBRv2 never entered ProbeRTT (5s window): %v", states)
	}
}

func TestBBRv1RTOConservation(t *testing.T) {
	b := NewBBRv1().(*bbr1)
	fs := newFlowSim(100*units.MegabitPerSec, 1, b)
	fs.run(3 * time.Second)
	round := fs.conn.RoundCount()
	b.OnRTO(fs.conn)
	if fs.conn.Cwnd() != fs.conn.MSS() {
		t.Fatal("RTO must collapse cwnd to 1 MSS")
	}
	if b.conservationUntilRound != round+1 {
		t.Fatalf("conservation window: %d, want %d", b.conservationUntilRound, round+1)
	}
}

func TestBBRv2RTOClampsBound(t *testing.T) {
	b := NewBBRv2().(*bbr2)
	fs := newFlowSim(100*units.MegabitPerSec, 2, b)
	fs.run(3 * time.Second)
	b.OnRTO(fs.conn)
	if fs.conn.Cwnd() != fs.conn.MSS() {
		t.Fatal("RTO must collapse cwnd")
	}
	if b.inflightHi == 0 {
		t.Fatal("RTO should clamp inflight_hi (unambiguous congestion)")
	}
}

func TestCubicVariantNames(t *testing.T) {
	if MustNew(CubicNoHyStart).Name() != string(CubicNoHyStart) {
		t.Error("variant name not reported")
	}
	if MustNew(CubicNoFastConv).Name() != string(CubicNoFastConv) {
		t.Error("variant name not reported")
	}
	all := AllNames()
	if len(all) < 7 {
		t.Errorf("AllNames = %v", all)
	}
}
