package cca

import (
	"testing"
	"testing/quick"
)

func TestMaxFilterTracksMax(t *testing.T) {
	f := newMaxFilter(10)
	f.Update(0, 100)
	if f.Get() != 100 {
		t.Fatalf("got %d", f.Get())
	}
	f.Update(1, 50) // lower sample doesn't displace max
	if f.Get() != 100 {
		t.Fatalf("got %d", f.Get())
	}
	f.Update(2, 200)
	if f.Get() != 200 {
		t.Fatalf("got %d", f.Get())
	}
}

func TestMaxFilterExpiry(t *testing.T) {
	f := newMaxFilter(10)
	f.Update(0, 1000)
	for i := int64(1); i <= 30; i++ {
		f.Update(i, 100)
	}
	if f.Get() != 100 {
		t.Fatalf("stale max survived: %d", f.Get())
	}
}

func TestMaxFilterRunnerUpPromotion(t *testing.T) {
	f := newMaxFilter(10)
	f.Update(0, 1000)
	f.Update(3, 800)
	f.Update(6, 600)
	// At t=11 the 1000 sample is stale; 800 (t=3) should take over.
	got := f.Update(11, 100)
	if got != 800 {
		t.Fatalf("runner-up not promoted: %d", got)
	}
}

func TestMaxFilterNeverBelowLatest(t *testing.T) {
	// Property: after Update(t,v), Get() >= v (the estimate can never be
	// below the newest evidence).
	f := func(vals []uint32) bool {
		mf := newMaxFilter(10)
		for i, v := range vals {
			mf.Update(int64(i), int64(v))
			if mf.Get() < int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxFilterWindowBound(t *testing.T) {
	// Property: the estimate always equals some sample seen within the
	// window (here: never exceeds the max of the last window+1 samples).
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		const w = 5
		mf := newMaxFilter(w)
		for i, v := range vals {
			mf.Update(int64(i), int64(v))
			lo := i - w
			if lo < 0 {
				lo = 0
			}
			windowMax := int64(0)
			for j := lo; j <= i; j++ {
				if int64(vals[j]) > windowMax {
					windowMax = int64(vals[j])
				}
			}
			if mf.Get() > windowMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
