package cca

import (
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// CUBIC constants per RFC 8312.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// cubic implements TCP CUBIC (Ha, Rhee & Xu 2008; RFC 8312), Linux's
// default: window growth follows a cubic function of time since the last
// congestion event, anchored at the window size where loss occurred, with a
// TCP-friendly region and fast convergence. CUBIC's willingness to keep
// occupying buffer space without an inflight cap is what lets it overtake
// the BBR family at large FIFO buffers in the paper.
type cubic struct {
	wMax       float64  // window at last congestion event, in segments
	k          float64  // time to return to wMax, seconds
	epochStart sim.Time // 0 = epoch not started
	wEst       float64  // TCP-friendly (AIMD) estimate, segments
	ackedBytes int64    // bytes acked this epoch (for wEst growth)
	fastConv   bool

	// HyStart (Ha & Rhee 2011), as shipped with Linux CUBIC: leave slow
	// start when the per-round minimum RTT rises noticeably above the
	// baseline, before the loss burst a deep buffer would otherwise absorb.
	name        Name // registry name (variants override)
	hystart     bool
	hsBaseRTT   time.Duration // lowest per-round min seen so far
	hsCurrRTT   time.Duration // min RTT in the current round
	hsSampleCnt int
}

// HyStart thresholds from the Linux implementation.
const (
	hsMinSamples = 8
	hsDelayMin   = 4 * time.Millisecond
	hsDelayMax   = 16 * time.Millisecond
)

// NewCubic returns a fresh CUBIC controller with fast convergence and
// HyStart enabled, like Linux's default.
func NewCubic() tcp.CongestionControl { return &cubic{fastConv: true, hystart: true} }

// NewCubicNoHyStart returns CUBIC with HyStart disabled (ablation).
func NewCubicNoHyStart() tcp.CongestionControl {
	return &cubic{fastConv: true, name: CubicNoHyStart}
}

func (cu *cubic) Name() string {
	if cu.name != "" {
		return string(cu.name)
	}
	return string(Cubic)
}
func (cu *cubic) Init(c *tcp.Conn)                      {}
func (cu *cubic) OnPacketSent(c *tcp.Conn, bytes int64) {}

func (cu *cubic) OnAck(c *tcp.Conn, s tcp.AckSample) {
	cu.growWindow(c, s)
	updateInternalPacing(c)
}

func (cu *cubic) growWindow(c *tcp.Conn, s tcp.AckSample) {
	if s.AckedBytes <= 0 || s.InRecovery {
		return
	}
	if c.InSlowStart() {
		if cu.hystart {
			cu.hystartUpdate(c, s)
		}
		c.SetCwnd(c.Cwnd() + s.AckedBytes)
		return
	}
	mss := float64(c.MSS())
	cwndSeg := float64(c.Cwnd()) / mss

	if cu.epochStart == 0 {
		cu.epochStart = s.Now
		if cu.wMax < cwndSeg {
			// We came back above the previous loss point without a new
			// loss: re-anchor so the curve keeps probing upward.
			cu.wMax = cwndSeg
			cu.k = 0
		} else {
			cu.k = math.Cbrt(cu.wMax * (1 - cubicBeta) / cubicC)
		}
		cu.ackedBytes = 0
		cu.wEst = cwndSeg
	}
	cu.ackedBytes += s.AckedBytes

	rtt := c.SRTT()
	if rtt <= 0 {
		rtt = 100 * time.Millisecond
	}
	// Target is the cubic curve evaluated one RTT ahead (RFC 8312 §4.1).
	t := (s.Now - cu.epochStart).Std() + rtt
	ts := t.Seconds() - cu.k
	target := cubicC*ts*ts*ts + cu.wMax

	// TCP-friendly region (RFC 8312 §4.2): emulate AIMD with
	// alpha = 3(1-beta)/(1+beta) per RTT.
	alpha := 3 * (1 - cubicBeta) / (1 + cubicBeta)
	cu.wEst += alpha * float64(s.AckedBytes) / (float64(c.Cwnd()) / mss) / mss
	if target < cu.wEst {
		target = cu.wEst
	}

	var inc int64
	if target > cwndSeg {
		// Close the gap over roughly one RTT of ACKs.
		inc = int64((target - cwndSeg) / cwndSeg * float64(s.AckedBytes))
		if inc < 1 {
			inc = 1
		}
	} else {
		// Minimal growth in the concave plateau (1 segment per 100 RTTs).
		inc = int64(float64(s.AckedBytes) / cwndSeg / 100)
	}
	c.SetCwnd(c.Cwnd() + inc)
}

// hystartUpdate implements the delay-increase half of HyStart: collect the
// minimum RTT of the first samples of each round; once it exceeds the
// baseline by an eta in [4ms, 16ms], set ssthresh to the current window so
// slow start ends before the buffer-overflow burst.
func (cu *cubic) hystartUpdate(c *tcp.Conn, s tcp.AckSample) {
	if s.RoundStart {
		cu.hsCurrRTT = 0
		cu.hsSampleCnt = 0
	}
	if s.RTT <= 0 {
		return
	}
	if cu.hsSampleCnt < hsMinSamples {
		cu.hsSampleCnt++
		if cu.hsCurrRTT == 0 || s.RTT < cu.hsCurrRTT {
			cu.hsCurrRTT = s.RTT
		}
		return
	}
	if cu.hsBaseRTT == 0 || cu.hsCurrRTT < cu.hsBaseRTT {
		cu.hsBaseRTT = cu.hsCurrRTT
	}
	eta := cu.hsBaseRTT / 8
	if eta < hsDelayMin {
		eta = hsDelayMin
	}
	if eta > hsDelayMax {
		eta = hsDelayMax
	}
	if cu.hsCurrRTT >= cu.hsBaseRTT+eta {
		c.SetSSThresh(c.Cwnd())
	}
}

func (cu *cubic) OnCongestionEvent(c *tcp.Conn) {
	mss := float64(c.MSS())
	cwndSeg := float64(c.Cwnd()) / mss
	cu.epochStart = 0
	if cwndSeg < cu.wMax && cu.fastConv {
		// Fast convergence: release bandwidth to newer flows.
		cu.wMax = cwndSeg * (2 - cubicBeta) / 2
	} else {
		cu.wMax = cwndSeg
	}
	next := int64(float64(c.Cwnd()) * cubicBeta)
	c.SetSSThresh(next)
	c.SetCwnd(next)
}

func (cu *cubic) OnRTO(c *tcp.Conn) {
	cu.OnCongestionEvent(c)
	c.SetCwnd(c.MSS())
}
