package cca

import (
	"repro/internal/tcp"
	"repro/internal/units"
)

// Linux paces every TCP connection internally since 4.13:
// sk_pacing_rate = ratio × cwnd / srtt, with ratio 200% during slow start
// and 120% in congestion avoidance (tcp_update_pacing_rate()). The
// loss-based controllers here apply the same law; without it, every window
// increment leaves the sender as a line-rate burst and large buffers see
// unrealistically bursty drops.
const (
	pacingSSRatio = 2.0
	pacingCARatio = 1.2
)

// updateInternalPacing applies the kernel's pacing law for a loss-based
// controller.
func updateInternalPacing(c *tcp.Conn) {
	srtt := c.SRTT()
	if srtt <= 0 {
		return
	}
	ratio := pacingCARatio
	if c.InSlowStart() {
		ratio = pacingSSRatio
	}
	c.SetPacingRate(units.Bandwidth(ratio * float64(c.Cwnd()) * 8 / srtt.Seconds()))
}
