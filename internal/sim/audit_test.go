package sim

import (
	"container/heap"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
)

// expectViolation runs fn expecting a *Violation panic and returns it.
func expectViolation(t *testing.T, fn func()) *audit.Violation {
	t.Helper()
	var v *audit.Violation
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			var ok bool
			if v, ok = r.(*audit.Violation); !ok {
				panic(r)
			}
		}()
		fn()
	}()
	if v == nil {
		t.Fatal("expected a *audit.Violation panic, got none")
	}
	return v
}

func auditedEngine() (*Engine, *audit.Auditor) {
	e := NewEngine(1)
	a := audit.New("sim-audit-test")
	e.SetAuditor(a)
	return e, a
}

// TestAuditedEngineCleanRun exercises every scheduling surface under the
// auditor — closures, pooled handler events (forcing pool reuse), and a
// self-rearming timer — and requires Finish to settle clean.
func TestAuditedEngineCleanRun(t *testing.T) {
	e, a := auditedEngine()
	h := &countHandler{}
	for i := 0; i < 100; i++ {
		e.ScheduleHandler(time.Duration(i)*time.Millisecond, h, i)
	}
	fired := 0
	e.Schedule(50*time.Millisecond, func() { fired++ })
	var tm Timer
	tm.Init(e, HandlerFunc(func(any) {
		fired++
		if fired < 10 {
			tm.Reset(time.Millisecond)
		}
	}), nil)
	tm.Reset(time.Millisecond)
	e.Run()
	if len(h.args) != 100 || fired != 11 { // 10 timer fires + the 50 ms closure
		t.Fatalf("dispatched %d handler / %d closure+timer events", len(h.args), fired)
	}
	a.Finish()
}

// TestAuditorCatchesPoolDoubleFree releases the same pooled event twice —
// the second release must raise sim/pool-double-free, since the zeroed
// free-list copy no longer carries the pooled mark.
func TestAuditorCatchesPoolDoubleFree(t *testing.T) {
	e, _ := auditedEngine()
	e.ScheduleHandler(0, &countHandler{}, nil)
	e.Run() // fires and releases the pooled event into e.free
	if len(e.free) != 1 {
		t.Fatalf("free list holds %d events, want 1", len(e.free))
	}
	v := expectViolation(t, func() { e.release(e.free[0]) })
	if v.Layer != "sim" || v.Rule != "pool-double-free" {
		t.Fatalf("violation attributed to %s/%s, want sim/pool-double-free", v.Layer, v.Rule)
	}
}

// TestAuditorCatchesReleaseOfQueuedEvent releases a pooled event that is
// still sitting in the heap — the auditor must flag it before the pool and
// the heap end up sharing one event object.
func TestAuditorCatchesReleaseOfQueuedEvent(t *testing.T) {
	e, _ := auditedEngine()
	e.ScheduleHandlerAt(Duration(time.Second), &countHandler{}, nil)
	v := expectViolation(t, func() { e.release(e.queue[0]) })
	if v.Rule != "pool-release-queued" {
		t.Fatalf("rule = %s, want pool-release-queued", v.Rule)
	}
}

// TestAuditorCatchesCorruptFreeList plants a non-zeroed event on the free
// list; the next pooled schedule must refuse to hand it out.
func TestAuditorCatchesCorruptFreeList(t *testing.T) {
	e, _ := auditedEngine()
	e.free = append(e.free, &Event{eng: e, pooled: true, idx: -1})
	v := expectViolation(t, func() { e.ScheduleHandler(0, &countHandler{}, nil) })
	if v.Rule != "pool-corrupt" {
		t.Fatalf("rule = %s, want pool-corrupt", v.Rule)
	}
	if !strings.Contains(v.Detail, "pooled=true") {
		t.Fatalf("detail %q does not describe the corruption", v.Detail)
	}
}

// TestAuditorCatchesTimeRegression corrupts the clock past a queued
// deadline; the dispatch loop must refuse to run time backwards.
func TestAuditorCatchesTimeRegression(t *testing.T) {
	e, _ := auditedEngine()
	e.ScheduleAt(Duration(5*time.Millisecond), func() {})
	e.now = Duration(10 * time.Millisecond)
	v := expectViolation(t, e.Run)
	if v.Rule != "time-monotone" {
		t.Fatalf("rule = %s, want time-monotone", v.Rule)
	}
}

// TestAuditorCatchesStuckEvent verifies the end-of-run quiescence check: an
// event that was due but never dispatched (here forced by corrupting its
// deadline under the heap) is a violation at Finish.
func TestAuditorCatchesStuckEvent(t *testing.T) {
	e, a := auditedEngine()
	e.ScheduleAt(Duration(time.Second), func() {})
	e.RunUntil(Duration(500 * time.Millisecond))
	// Corrupt the queued deadline to be in the past without re-heapifying —
	// the stuck-event shape the check exists to catch.
	e.queue[0].at = Duration(100 * time.Millisecond)
	v := expectViolation(t, a.Finish)
	if v.Layer != "sim" || v.Rule != "quiescence" {
		t.Fatalf("violation attributed to %s/%s, want sim/quiescence", v.Layer, v.Rule)
	}
	if !strings.Contains(v.Detail, "still queued") {
		t.Fatalf("detail %q does not describe the stuck event", v.Detail)
	}
}

// TestQuiescenceAcceptsFutureEvents: events legitimately scheduled beyond
// the run horizon are not violations — only past-due ones are.
func TestQuiescenceAcceptsFutureEvents(t *testing.T) {
	e, a := auditedEngine()
	e.ScheduleAt(Duration(2*time.Second), func() {})
	e.RunUntil(Duration(time.Second))
	a.Finish()
}

// TestAuditedHeapIntegrityAfterChurn cross-checks that heavy cancel/reset
// churn under the auditor leaves a structurally valid heap (indices match
// positions, parent ≤ child ordering).
func TestAuditedHeapIntegrityAfterChurn(t *testing.T) {
	e, a := auditedEngine()
	rng := NewRNG(99)
	var timers [8]Timer
	h := HandlerFunc(func(any) {})
	for i := range timers {
		timers[i].Init(e, h, i)
	}
	for i := 0; i < 2000; i++ {
		switch rng.Intn(4) {
		case 0:
			e.ScheduleHandler(time.Duration(rng.Intn(1000))*time.Microsecond, h, nil)
		case 1:
			e.Schedule(time.Duration(rng.Intn(1000))*time.Microsecond, func() {}).Cancel()
		case 2:
			timers[rng.Intn(len(timers))].Reset(time.Duration(rng.Intn(500)) * time.Microsecond)
		case 3:
			timers[rng.Intn(len(timers))].Stop()
		}
		if i%97 == 0 {
			e.RunFor(200 * time.Microsecond)
		}
	}
	for i, ev := range e.queue {
		if ev.idx != i {
			t.Fatalf("heap[%d] carries idx %d", i, ev.idx)
		}
		if parent := (i - 1) / 2; i > 0 && e.queue.Less(i, parent) {
			t.Fatalf("heap order violated at %d", i)
		}
	}
	e.Run()
	a.Finish()
	_ = heap.Interface(&e.queue) // the heap package contract is what the loop above re-derives
}
