package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != Duration(30*time.Millisecond) {
		t.Errorf("clock = %v, want 30ms", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events not FIFO: %v", got)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.Schedule(time.Millisecond, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	ev.Cancel() // double-cancel is a no-op
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	var tick func()
	n := 0
	tick = func() {
		ticks = append(ticks, e.Now())
		n++
		if n < 5 {
			e.Schedule(time.Second, tick)
		}
	}
	e.Schedule(time.Second, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("want 5 ticks, got %d", len(ticks))
	}
	for i, at := range ticks {
		if want := Duration(time.Duration(i+1) * time.Second); at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunUntilClampsClock(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	e.RunUntil(Duration(10 * time.Second))
	if e.Now() != Duration(10*time.Second) {
		t.Errorf("clock = %v, want 10s", e.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Second, func() { ran++ })
	e.Schedule(3*time.Second, func() { ran++ })
	e.RunUntil(Duration(2 * time.Second))
	if ran != 1 {
		t.Fatalf("want 1 event before deadline, got %d", ran)
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("want the later event to fire on resume, got %d", ran)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++; e.Stop() })
	e.Schedule(2*time.Millisecond, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop: ran=%d", ran)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {
		fired := false
		e.Schedule(-5*time.Second, func() { fired = true })
		e.Schedule(0, func() {
			if !fired {
				t.Error("negative-delay event should run before later zero-delay event")
			}
		})
	})
	e.Run()
	if e.Now() != Duration(time.Second) {
		t.Errorf("clock went backwards: %v", e.Now())
	}
}

func TestHeapOrderProperty(t *testing.T) {
	// Any set of random delays must execute in nondecreasing time order.
	f := func(delays []uint32) bool {
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			e.Schedule(time.Duration(d%1e6)*time.Microsecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds suspiciously correlated: %d/1000 equal", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) did not cover all values in 1000 draws: %d", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if mean < 2.9 || mean > 3.1 {
		t.Errorf("Exp mean = %.3f, want ~3.0", mean)
	}
}

func TestExecutedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	ev := e.Schedule(time.Millisecond, func() {})
	ev.Cancel()
	e.Run()
	if e.Executed() != 5 {
		t.Errorf("Executed = %d, want 5 (cancelled events don't count)", e.Executed())
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		e.Run()
	}
}

func BenchmarkEngineChainedEvents(b *testing.B) {
	// The dominant pattern in the simulator: each event schedules the next.
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(time.Microsecond, step)
	e.Run()
}

func TestTimeHelpers(t *testing.T) {
	ti := Duration(1500 * time.Millisecond)
	if ti.Seconds() != 1.5 {
		t.Errorf("Seconds = %v", ti.Seconds())
	}
	if ti.Std() != 1500*time.Millisecond {
		t.Errorf("Std = %v", ti.Std())
	}
	if ti.String() != "1.500000s" {
		t.Errorf("String = %q", ti.String())
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(2*time.Second, func() {})
	if ev.At() != Duration(2*time.Second) {
		t.Errorf("At = %v", ev.At())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {
		ran := false
		e.ScheduleAt(0, func() { ran = true }) // in the past: clamped to now
		e.Schedule(0, func() {
			if !ran {
				t.Error("past-scheduled event should run immediately")
			}
		})
	})
	e.Run()
}

func TestNilEventCancelSafe(t *testing.T) {
	var ev *Event
	ev.Cancel() // must not panic
	if ev.Pending() {
		t.Error("nil event cannot be pending")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(10)
		if j < 0 || j >= 10 {
			t.Fatalf("jitter out of range: %v", j)
		}
	}
	if r.Jitter(0) != 0 || r.Jitter(-1) != 0 {
		t.Error("non-positive max should yield 0")
	}
	if r.Exp(0) != 0 || r.Exp(-2) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

// --- pooled events, Timer, and the closure-free handler path ---

// countHandler records dispatched args.
type countHandler struct {
	args []any
	eng  *Engine
}

func (h *countHandler) OnEvent(arg any) { h.args = append(h.args, arg) }

func TestScheduleHandlerDispatch(t *testing.T) {
	e := NewEngine(1)
	h := &countHandler{}
	e.ScheduleHandler(2*time.Millisecond, h, "b")
	e.ScheduleHandler(time.Millisecond, h, "a")
	e.Run()
	if len(h.args) != 2 || h.args[0] != "a" || h.args[1] != "b" {
		t.Fatalf("handler dispatch wrong: %v", h.args)
	}
}

func TestPooledEventsReused(t *testing.T) {
	e := NewEngine(1)
	h := &countHandler{}
	for i := 0; i < 8; i++ {
		e.ScheduleHandler(time.Duration(i)*time.Millisecond, h, i)
	}
	e.Run()
	if e.FreeEvents() == 0 {
		t.Fatal("fired pooled events were not returned to the free list")
	}
	free := e.FreeEvents()
	// Re-scheduling the same number of events must not grow the pool.
	for i := 0; i < free; i++ {
		e.ScheduleHandler(time.Millisecond, h, i)
	}
	if e.FreeEvents() != 0 {
		t.Fatalf("pool not drained on reschedule: %d left", e.FreeEvents())
	}
	e.Run()
	if e.FreeEvents() != free {
		t.Fatalf("pool grew across reuse: %d -> %d", free, e.FreeEvents())
	}
}

// TestPooledEventZeroedOnReuse mirrors packet_test.TestPoolReuseZeroes: any
// event the engine recycles must carry no state from its previous life —
// in particular no Handler or arg reference that would pin garbage.
func TestPooledEventZeroedOnReuse(t *testing.T) {
	f := func(delays []uint16, args []int64) bool {
		e := NewEngine(3)
		h := &countHandler{}
		for i, d := range delays {
			var arg any
			if len(args) > 0 {
				arg = args[i%len(args)]
			}
			e.ScheduleHandler(time.Duration(d)*time.Microsecond, h, arg)
		}
		e.Run()
		for _, ev := range e.free {
			if ev.at != 0 || ev.seq != 0 || ev.fn != nil || ev.h != nil ||
				ev.arg != nil || ev.pooled || ev.idx != -1 || ev.eng != e {
				return false
			}
		}
		return len(h.args) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCancelRemovesFromHeapEagerly(t *testing.T) {
	e := NewEngine(1)
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	for _, ev := range evs[10:] {
		ev.Cancel()
	}
	// The old engine left cancelled events queued until popped; the heap
	// must now shrink immediately, or long runs rearming RTO timers leak.
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d after cancelling 90 of 100, want 10", e.Pending())
	}
	ran := 0
	e.Schedule(200*time.Millisecond, func() { ran++ })
	e.Run()
	if ran != 1 || e.Executed() != 11 {
		t.Fatalf("executed %d events (ran=%d), want 11", e.Executed(), ran)
	}
}

func TestTimerBasics(t *testing.T) {
	e := NewEngine(1)
	h := &countHandler{}
	var tm Timer
	tm.Init(e, h, 42)
	if tm.Pending() {
		t.Fatal("fresh timer pending")
	}
	tm.Reset(5 * time.Millisecond)
	if !tm.Pending() || tm.At() != Duration(5*time.Millisecond) {
		t.Fatalf("armed timer: pending=%v at=%v", tm.Pending(), tm.At())
	}
	e.Run()
	if len(h.args) != 1 || h.args[0] != 42 || tm.Pending() {
		t.Fatalf("timer fire: args=%v pending=%v", h.args, tm.Pending())
	}
	// Reuse after firing.
	tm.Reset(time.Millisecond)
	e.Run()
	if len(h.args) != 2 {
		t.Fatalf("timer not reusable: fired %d times", len(h.args))
	}
}

func TestTimerResetReschedulesInPlace(t *testing.T) {
	e := NewEngine(1)
	h := &countHandler{}
	var tm Timer
	tm.Init(e, h, nil)
	tm.Reset(10 * time.Millisecond)
	for i := 0; i < 50; i++ {
		tm.Reset(time.Duration(20+i) * time.Millisecond)
		if e.Pending() != 1 {
			t.Fatalf("Reset pushed a duplicate entry: Pending=%d", e.Pending())
		}
	}
	tm.Reset(time.Millisecond) // move earlier, too
	e.Run()
	if len(h.args) != 1 || e.Now() != Duration(time.Millisecond) {
		t.Fatalf("reset timer fired %d times at %v", len(h.args), e.Now())
	}
}

// TestTimerResetFIFOTieBreak: a Reset counts as a fresh schedule for the
// same-deadline FIFO ordering — it must run after events already queued at
// that deadline, even if the timer was first armed before them.
func TestTimerResetFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var order []string
	rec := HandlerFunc(func(arg any) { order = append(order, arg.(string)) })
	var tm Timer
	tm.Init(e, rec, "timer")
	tm.Reset(time.Millisecond) // armed first...
	e.Schedule(5*time.Millisecond, func() { order = append(order, "closure") })
	tm.Reset(5 * time.Millisecond) // ...but reset to the same deadline later
	e.Run()
	if len(order) != 2 || order[0] != "closure" || order[1] != "timer" {
		t.Fatalf("reset timer must follow same-deadline FIFO: %v", order)
	}
}

func TestTimerStopThenResetInCallback(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	rec := HandlerFunc(func(any) { fired = append(fired, e.Now()) })
	var tm Timer
	tm.Init(e, rec, nil)
	tm.Reset(10 * time.Millisecond)
	e.Schedule(time.Millisecond, func() {
		// Cancel-then-Reset inside one callback must land exactly one fire
		// at the final deadline.
		tm.Stop()
		tm.Reset(3 * time.Millisecond)
		tm.Stop()
		tm.Reset(4 * time.Millisecond)
	})
	e.Run()
	if len(fired) != 1 || fired[0] != Duration(5*time.Millisecond) {
		t.Fatalf("want one fire at 5ms, got %v", fired)
	}
	// And Reset-then-Stop must land none.
	fired = nil
	tm.Reset(time.Millisecond)
	tm.Stop()
	e.Run()
	if len(fired) != 0 {
		t.Fatalf("stopped timer fired: %v", fired)
	}
}

func TestTimerSelfRearmInOwnCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tm Timer
	rec := HandlerFunc(func(any) {
		n++
		if n < 5 {
			tm.Reset(time.Second)
		}
	})
	tm.Init(e, rec, nil)
	tm.Reset(time.Second)
	e.Run()
	if n != 5 || e.Now() != Duration(5*time.Second) {
		t.Fatalf("self-rearming timer: n=%d now=%v", n, e.Now())
	}
}

func BenchmarkEngineHandlerChained(b *testing.B) {
	// The forwarding-plane pattern after the zero-alloc refactor: each
	// pooled handler event schedules the next. Must report 0 allocs/op.
	e := NewEngine(1)
	n := 0
	var h HandlerFunc
	h = func(any) {
		n++
		if n < b.N {
			e.ScheduleHandler(time.Microsecond, h, nil)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleHandler(time.Microsecond, h, nil)
	e.Run()
}

func BenchmarkTimerReset(b *testing.B) {
	// RTO-style rearming: Reset while pending reschedules in place via
	// heap.Fix. Must report 0 allocs/op.
	e := NewEngine(1)
	var tm Timer
	tm.Init(e, HandlerFunc(func(any) {}), nil)
	tm.Reset(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Duration(i%1000) * time.Microsecond)
	}
}

// TestBudgetEventLimit: the watchdog must stop the run loop at exactly the
// event budget and report the overrun, deterministically.
func TestBudgetEventLimit(t *testing.T) {
	eng := NewEngine(1)
	eng.SetBudget(100, 0)
	var fired int
	var rearm func()
	rearm = func() {
		fired++
		eng.Schedule(time.Millisecond, rearm)
	}
	eng.Schedule(time.Millisecond, rearm)
	eng.Run()
	if eng.Overrun() == nil {
		t.Fatal("watchdog did not trip")
	}
	if fired != 100 {
		t.Fatalf("executed %d events past a budget of 100", fired)
	}
	if eng.Executed() != 100 {
		t.Fatalf("Executed() = %d, want 100", eng.Executed())
	}
}

// TestBudgetWallLimit: the wall budget is checked every 2^16 events, so an
// already-expired budget must trip once the event count crosses that mark.
func TestBudgetWallLimit(t *testing.T) {
	eng := NewEngine(1)
	eng.SetBudget(0, time.Nanosecond)
	var fired int
	var rearm func()
	rearm = func() {
		fired++
		if fired < 1<<17 {
			eng.Schedule(time.Microsecond, rearm)
		}
	}
	eng.Schedule(time.Microsecond, rearm)
	eng.Run()
	if eng.Overrun() == nil {
		t.Fatal("wall watchdog did not trip")
	}
	if fired >= 1<<17 {
		t.Fatal("wall watchdog never stopped the loop")
	}
}

// TestBudgetClearedByReset: re-arming the budget clears a previous overrun
// and an unbudgeted engine never trips.
func TestBudgetClearedByReset(t *testing.T) {
	eng := NewEngine(1)
	eng.SetBudget(1, 0)
	eng.Schedule(time.Millisecond, func() {})
	eng.Schedule(2*time.Millisecond, func() {})
	eng.Run()
	if eng.Overrun() == nil {
		t.Fatal("budget of 1 did not trip on the second event")
	}
	eng.SetBudget(0, 0)
	if eng.Overrun() != nil {
		t.Fatal("SetBudget did not clear the overrun")
	}
	eng.Run() // drains the remaining event without a budget
	if eng.Overrun() != nil {
		t.Fatal("unbudgeted run tripped the watchdog")
	}
}
