package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != Duration(30*time.Millisecond) {
		t.Errorf("clock = %v, want 30ms", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events not FIFO: %v", got)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.Schedule(time.Millisecond, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	ev.Cancel() // double-cancel is a no-op
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	var tick func()
	n := 0
	tick = func() {
		ticks = append(ticks, e.Now())
		n++
		if n < 5 {
			e.Schedule(time.Second, tick)
		}
	}
	e.Schedule(time.Second, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("want 5 ticks, got %d", len(ticks))
	}
	for i, at := range ticks {
		if want := Duration(time.Duration(i+1) * time.Second); at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunUntilClampsClock(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	e.RunUntil(Duration(10 * time.Second))
	if e.Now() != Duration(10*time.Second) {
		t.Errorf("clock = %v, want 10s", e.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Second, func() { ran++ })
	e.Schedule(3*time.Second, func() { ran++ })
	e.RunUntil(Duration(2 * time.Second))
	if ran != 1 {
		t.Fatalf("want 1 event before deadline, got %d", ran)
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("want the later event to fire on resume, got %d", ran)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++; e.Stop() })
	e.Schedule(2*time.Millisecond, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop: ran=%d", ran)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {
		fired := false
		e.Schedule(-5*time.Second, func() { fired = true })
		e.Schedule(0, func() {
			if !fired {
				t.Error("negative-delay event should run before later zero-delay event")
			}
		})
	})
	e.Run()
	if e.Now() != Duration(time.Second) {
		t.Errorf("clock went backwards: %v", e.Now())
	}
}

func TestHeapOrderProperty(t *testing.T) {
	// Any set of random delays must execute in nondecreasing time order.
	f := func(delays []uint32) bool {
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			e.Schedule(time.Duration(d%1e6)*time.Microsecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds suspiciously correlated: %d/1000 equal", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) did not cover all values in 1000 draws: %d", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if mean < 2.9 || mean > 3.1 {
		t.Errorf("Exp mean = %.3f, want ~3.0", mean)
	}
}

func TestExecutedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	ev := e.Schedule(time.Millisecond, func() {})
	ev.Cancel()
	e.Run()
	if e.Executed() != 5 {
		t.Errorf("Executed = %d, want 5 (cancelled events don't count)", e.Executed())
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		e.Run()
	}
}

func BenchmarkEngineChainedEvents(b *testing.B) {
	// The dominant pattern in the simulator: each event schedules the next.
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(time.Microsecond, step)
	e.Run()
}

func TestTimeHelpers(t *testing.T) {
	ti := Duration(1500 * time.Millisecond)
	if ti.Seconds() != 1.5 {
		t.Errorf("Seconds = %v", ti.Seconds())
	}
	if ti.Std() != 1500*time.Millisecond {
		t.Errorf("Std = %v", ti.Std())
	}
	if ti.String() != "1.500000s" {
		t.Errorf("String = %q", ti.String())
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(2*time.Second, func() {})
	if ev.At() != Duration(2*time.Second) {
		t.Errorf("At = %v", ev.At())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {
		ran := false
		e.ScheduleAt(0, func() { ran = true }) // in the past: clamped to now
		e.Schedule(0, func() {
			if !ran {
				t.Error("past-scheduled event should run immediately")
			}
		})
	})
	e.Run()
}

func TestNilEventCancelSafe(t *testing.T) {
	var ev *Event
	ev.Cancel() // must not panic
	if ev.Pending() {
		t.Error("nil event cannot be pending")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(10)
		if j < 0 || j >= 10 {
			t.Fatalf("jitter out of range: %v", j)
		}
	}
	if r.Jitter(0) != 0 || r.Jitter(-1) != 0 {
		t.Error("non-positive max should yield 0")
	}
	if r.Exp(0) != 0 || r.Exp(-2) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}
