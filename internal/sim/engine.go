// Package sim implements the discrete-event simulation engine every other
// subsystem runs on: a nanosecond-resolution virtual clock, a binary-heap
// event queue with stable FIFO ordering for simultaneous events, and a
// deterministic random number generator.
//
// One Engine is owned by exactly one goroutine; parallelism in the harness
// comes from running many independent engines concurrently, never from
// sharing one.
//
// # Event ownership and pooling
//
// The engine offers three scheduling surfaces with different ownership
// rules, chosen so the steady-state forwarding path performs zero heap
// allocations per event:
//
//   - Schedule/ScheduleAt (closure API): the returned *Event is owned by
//     the caller, is never recycled, and stays valid forever — Cancel and
//     Pending are safe at any point, including after the event has fired.
//     Use this for setup-time and low-rate work.
//
//   - ScheduleHandler/ScheduleHandlerAt (handler API): the event object is
//     owned by the engine, drawn from a per-engine free list, and returned
//     to it as soon as the event fires. No handle is exposed, so these
//     events cannot be cancelled; they are the right tool for fire-and-
//     forget per-packet work (serialization done, propagation delivery).
//
//   - Timer: a caller-owned, reusable timer for recurring deadlines (RTO,
//     pacing release, delayed ACK, samplers). Its event storage is embedded
//     in the Timer itself, so Reset/Stop never allocate: Reset reschedules
//     in place via heap.Fix when the timer is already queued. A Timer must
//     not be copied after Init (the heap holds a pointer into it).
//
// Cancelling (Event.Cancel, Timer.Stop) removes the entry from the heap
// eagerly, so long runs that repeatedly rearm timers do not accumulate
// dead entries.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/telemetry"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
type Time int64

// Duration converts a standard library duration to simulation ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the timestamp in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Std converts a simulation timestamp back into a time.Duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Handler receives dispatched events without a per-event closure. One
// handler instance typically serves many events, distinguished by arg
// (a packet, a small integer timer id, or nil).
type Handler interface {
	OnEvent(arg any)
}

// HandlerFunc adapts a function to the Handler interface. Func values are
// pointer-shaped, so the interface conversion itself does not allocate —
// but unlike a method on a long-lived struct, a new closure does, so hot
// paths should prefer struct handlers created once.
type HandlerFunc func(arg any)

// OnEvent implements Handler.
func (f HandlerFunc) OnEvent(arg any) { f(arg) }

// Event is a scheduled callback. It fires either a closure (Schedule) or a
// Handler (ScheduleHandler/Timer) at its deadline.
type Event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-time events
	idx int    // heap index, -1 when not queued

	fn  func() // closure dispatch (nil for handler events)
	h   Handler
	arg any

	eng    *Engine // owner, for eager heap removal on Cancel
	pooled bool    // engine-owned: recycled into the free list after firing
}

// Cancel removes a pending event from the queue so it will not run. Safe to
// call multiple times and after the event has fired (then it is a no-op).
// Only valid for caller-owned events (Schedule/ScheduleAt).
func (e *Event) Cancel() {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&e.eng.queue, e.idx)
}

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.idx >= 0 }

// At returns the scheduled time of the event.
func (e *Event) At() Time { return e.at }

// fire dispatches the event's callback.
func (e *Event) fire() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.h.OnEvent(e.arg)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	rng     *RNG

	// free is the pool of engine-owned events for the handler path.
	free []*Event

	// Watchdog budget (see SetBudget). budgeted gates the per-event checks
	// so the unbudgeted hot path pays a single predictable branch.
	budgeted  bool
	maxEvents uint64
	maxWall   time.Duration
	wallStart time.Time
	overrun   error

	// Stats.
	executed uint64

	// aud, when non-nil, validates scheduler invariants (time monotonicity,
	// event-pool hygiene, end-of-run quiescence). Every hot-path check is
	// gated on a single nil test so a disabled engine pays one predictable
	// branch and zero allocations.
	aud *audit.Auditor

	// trc, when non-nil, is the run's telemetry tracer. The engine never
	// emits events itself — components discover the tracer at construction
	// (like the auditor) and hold their own flow/port tracers — but it is
	// the rendezvous point, and it wires the auditor's flight recorder when
	// both are attached.
	trc *telemetry.Tracer
}

// NewEngine returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Executed returns the number of events run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// FreeEvents returns the size of the pooled-event free list (telemetry and
// pool-reuse tests).
func (e *Engine) FreeEvents() int { return len(e.free) }

// SetAuditor attaches (or, with nil, detaches) a runtime invariant auditor.
// The engine becomes the auditor's simulation clock and registers its
// end-of-run quiescence check: after a run, no queued event may be earlier
// than the clock — such an event was due but never dispatched. Components
// built on this engine discover the auditor via Auditor at construction.
func (e *Engine) SetAuditor(a *audit.Auditor) {
	e.aud = a
	if a == nil {
		return
	}
	a.SetClock(func() int64 { return int64(e.now) })
	e.wireFlightRecorder()
	a.OnFinish("sim", "quiescence", func() error {
		if len(e.queue) > 0 && e.queue[0].at < e.now {
			return fmt.Errorf("event due at %v still queued after run ended at %v (%d pending)",
				e.queue[0].at, e.now, len(e.queue))
		}
		return nil
	})
}

// Auditor returns the attached invariant auditor, or nil when auditing is
// disabled.
func (e *Engine) Auditor() *audit.Auditor { return e.aud }

// SetTracer attaches (or, with nil, detaches) the run's telemetry tracer.
// Like SetAuditor it must be called before topology construction so
// components can discover it. When the engine also carries an auditor, the
// auditor's flight recorder is wired to the tracer: a Violation then embeds
// the trailing events of every ring at the moment of the breach.
func (e *Engine) SetTracer(t *telemetry.Tracer) {
	e.trc = t
	e.wireFlightRecorder()
}

// Tracer returns the attached telemetry tracer, or nil when tracing is
// disabled.
func (e *Engine) Tracer() *telemetry.Tracer { return e.trc }

func (e *Engine) wireFlightRecorder() {
	if e.aud == nil {
		return
	}
	if e.trc == nil {
		e.aud.SetFlightRecorder(nil)
		return
	}
	t := e.trc
	e.aud.SetFlightRecorder(func() string { return t.TailNDJSON(0) })
}

// Schedule queues fn to run after delay. A negative delay is clamped to zero
// (runs at the current time, after already-queued same-time events). The
// returned Event is caller-owned and never recycled.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+Duration(delay), fn)
}

// ScheduleAt queues fn to run at absolute time at. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, idx: -1, eng: e}
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleHandler queues h.OnEvent(arg) to run after delay using a pooled,
// engine-owned event: the hot path allocates nothing once the pool has
// warmed up. The event cannot be cancelled (no handle is returned); use a
// Timer for cancellable or recurring work.
func (e *Engine) ScheduleHandler(delay time.Duration, h Handler, arg any) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleHandlerAt(e.now+Duration(delay), h, arg)
}

// ScheduleHandlerAt is ScheduleHandler with an absolute deadline. Times in
// the past are clamped to now.
func (e *Engine) ScheduleHandlerAt(at Time, h Handler, arg any) {
	if at < e.now {
		at = e.now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		if e.aud != nil && (ev.pooled || ev.idx >= 0 || ev.h != nil) {
			e.aud.Failf("sim", "pool-corrupt",
				"free-list event not zeroed: pooled=%v idx=%d handler=%v", ev.pooled, ev.idx, ev.h != nil)
		}
	} else {
		ev = &Event{eng: e}
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	ev.h = h
	ev.arg = arg
	ev.pooled = true
	heap.Push(&e.queue, ev)
}

// release zeroes a pooled event and returns it to the free list.
func (e *Engine) release(ev *Event) {
	if e.aud != nil {
		if !ev.pooled {
			e.aud.Failf("sim", "pool-double-free",
				"release of a non-pooled or already-released event (at=%v)", ev.at)
		}
		if ev.idx >= 0 {
			e.aud.Failf("sim", "pool-release-queued",
				"release of an event still queued at heap index %d (at=%v)", ev.idx, ev.at)
		}
	}
	*ev = Event{eng: e, idx: -1}
	e.free = append(e.free, ev)
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// SetBudget arms the engine watchdog: the run loop aborts once it has
// executed maxEvents events (0 = unlimited) or once maxWall of real time
// has elapsed since SetBudget was called (0 = unlimited). The event budget
// is exact and deterministic; the wall budget is checked every 2^16 events
// and is a machine-dependent safety net for runaway configurations. After
// an overrun the loop stops and Overrun reports why.
func (e *Engine) SetBudget(maxEvents uint64, maxWall time.Duration) {
	e.maxEvents = maxEvents
	e.maxWall = maxWall
	e.wallStart = time.Now()
	e.budgeted = maxEvents > 0 || maxWall > 0
	e.overrun = nil
}

// Overrun returns a non-nil error if a SetBudget limit was exceeded.
func (e *Engine) Overrun() error { return e.overrun }

// checkBudget enforces SetBudget limits; it reports true when the run loop
// must abort.
func (e *Engine) checkBudget() bool {
	if e.overrun != nil {
		return true
	}
	if e.maxEvents > 0 && e.executed >= e.maxEvents {
		e.overrun = fmt.Errorf("sim: watchdog: event budget exceeded (%d events)", e.maxEvents)
		return true
	}
	if e.maxWall > 0 && e.executed&0xffff == 0 && time.Since(e.wallStart) > e.maxWall {
		e.overrun = fmt.Errorf("sim: watchdog: wall budget exceeded (%v)", e.maxWall)
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<63 - 1))
}

// RunUntil executes, in deadline order, every queued event whose deadline is
// <= end (including events those callbacks schedule, as long as they also
// fall within end), then leaves the clock at exactly end. If the queue
// drains early, the clock still advances to end; it never moves past it, so
// later events stay queued for a subsequent Run/RunUntil call. The one
// exception is the sentinel end used by Run (the maximum Time), which
// leaves the clock at the last executed event.
func (e *Engine) RunUntil(end Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.budgeted && e.checkBudget() {
			return // overrun: leave the clock where the watchdog fired
		}
		next := e.queue[0]
		if next.at > end {
			break
		}
		if e.aud != nil && next.at < e.now {
			e.aud.Failf("sim", "time-monotone",
				"heap head due at %v is earlier than the clock %v", next.at, e.now)
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.executed++
		next.fire()
		if next.pooled {
			e.release(next)
		}
	}
	if e.now < end && end < Time(1<<63-1) {
		e.now = end
	}
}

// RunFor executes events for d of simulated time from the current clock.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + Duration(d))
}

// Timer is a reusable, caller-owned timer dispatching to a Handler. The
// zero value is unusable; call Init once, then Reset/Stop freely — neither
// allocates. A Timer must not be copied after Init.
type Timer struct {
	ev Event
}

// Init binds the timer to an engine and its dispatch target. arg is passed
// to h.OnEvent on every expiry (commonly a small integer distinguishing the
// owner's timers). Init must be called exactly once, before any Reset.
func (t *Timer) Init(eng *Engine, h Handler, arg any) {
	t.ev = Event{eng: eng, idx: -1, h: h, arg: arg}
}

// Reset (re)schedules the timer to fire after delay, replacing any pending
// deadline. A reset timer behaves like a freshly scheduled event for
// same-deadline FIFO ordering: it runs after events already queued at that
// time. Negative delays are clamped to zero.
func (t *Timer) Reset(delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	t.ResetAt(t.ev.eng.now + Duration(delay))
}

// ResetAt is Reset with an absolute deadline. Times in the past are clamped
// to now. When the timer is already queued it is rescheduled in place via
// heap.Fix — no allocation, no dead entry left behind.
func (t *Timer) ResetAt(at Time) {
	eng := t.ev.eng
	if at < eng.now {
		at = eng.now
	}
	eng.seq++
	t.ev.at = at
	t.ev.seq = eng.seq
	if t.ev.idx >= 0 {
		heap.Fix(&eng.queue, t.ev.idx)
		return
	}
	heap.Push(&eng.queue, &t.ev)
}

// Stop removes the timer from the queue if pending (eagerly — no dead entry
// remains in the heap). Safe to call on a never-armed or already-fired
// timer.
func (t *Timer) Stop() {
	if t.ev.idx >= 0 {
		heap.Remove(&t.ev.eng.queue, t.ev.idx)
	}
}

// Pending reports whether the timer is queued.
func (t *Timer) Pending() bool { return t.ev.idx >= 0 }

// At returns the timer's current (or last) deadline.
func (t *Timer) At() Time { return t.ev.at }
