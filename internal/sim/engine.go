// Package sim implements the discrete-event simulation engine every other
// subsystem runs on: a nanosecond-resolution virtual clock, a binary-heap
// event queue with stable FIFO ordering for simultaneous events, and a
// deterministic random number generator.
//
// One Engine is owned by exactly one goroutine; parallelism in the harness
// comes from running many independent engines concurrently, never from
// sharing one.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
type Time int64

// Duration converts a standard library duration to simulation ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the timestamp in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Std converts a simulation timestamp back into a time.Duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a scheduled callback. Run executes at the event's deadline.
type Event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-time events
	fn   func()
	dead bool
	idx  int // heap index, -1 when not queued
}

// Cancel prevents a pending event from running. Safe to call multiple times
// and after the event has fired (then it is a no-op).
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.idx >= 0 }

// At returns the scheduled time of the event.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	rng     *RNG

	// Stats.
	executed uint64
}

// NewEngine returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Executed returns the number of events run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay. A negative delay is clamped to zero
// (runs at the current time, after already-queued same-time events).
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+Duration(delay), fn)
}

// ScheduleAt queues fn to run at absolute time at. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, idx: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<63 - 1))
}

// RunUntil executes events with deadlines <= end, advancing the clock to end
// (or to the last event, whichever is later is not: clock finishes at end if
// events ran out earlier).
func (e *Engine) RunUntil(end Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > end {
			break
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		e.executed++
		next.fn()
	}
	if e.now < end && end < Time(1<<63-1) {
		e.now = end
	}
}

// RunFor executes events for d of simulated time from the current clock.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + Duration(d))
}
