package sim

import "math"

// RNG is a small, fast, deterministic random source (xoshiro256** seeded via
// splitmix64). It exists so simulations are reproducible across Go versions;
// math/rand's default source and ordering guarantees have changed before.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64 so that nearby
// seeds produce uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns a uniform value in [0, max).
func (r *RNG) Jitter(max float64) float64 {
	if max <= 0 {
		return 0
	}
	return r.Float64() * max
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
