package metrics

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Sample is one point of a throughput time series.
type Sample struct {
	At   sim.Time
	Rate units.Bandwidth // throughput over the preceding interval
}

// Series is a throughput time series for one measured entity.
type Series struct {
	Name    string
	Samples []Sample
}

// MeanRate returns the average of all samples.
func (s *Series) MeanRate() units.Bandwidth {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum int64
	for _, p := range s.Samples {
		sum += int64(p.Rate)
	}
	return units.Bandwidth(sum / int64(len(s.Samples)))
}

// QueueSample is one gauge reading of a queue's occupancy.
type QueueSample struct {
	At    sim.Time
	Bytes int64
	Pkts  int
}

// QueueSeries is an occupancy time series for one queue. Unlike Series it
// records instantaneous gauge values, not interval deltas.
type QueueSeries struct {
	Name    string
	Samples []QueueSample
}

// Peak returns the largest sampled occupancy in bytes and packets. The two
// maxima are taken independently (they need not occur at the same instant).
func (s *QueueSeries) Peak() (bytes int64, pkts int) {
	for _, p := range s.Samples {
		if p.Bytes > bytes {
			bytes = p.Bytes
		}
		if p.Pkts > pkts {
			pkts = p.Pkts
		}
	}
	return bytes, pkts
}

// Sampler polls byte counters at a fixed simulated interval and converts
// deltas into rates — the iperf3 "interval report" of the harness. It can
// also gauge-sample queue occupancy via TrackQueue.
type Sampler struct {
	eng      *sim.Engine
	interval time.Duration
	probes   []probe
	gauges   []queueProbe
	stopped  bool
	timer    sim.Timer // persistent tick timer (no per-interval allocation)
}

type probe struct {
	series *Series
	read   func() int64
	last   int64
}

type queueProbe struct {
	series *QueueSeries
	read   func() (int64, int)
}

// NewSampler creates a sampler polling every interval.
func NewSampler(eng *sim.Engine, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	sa := &Sampler{eng: eng, interval: interval}
	sa.timer.Init(eng, sa, nil)
	return sa
}

// Track registers a byte counter (e.g. a receiver's goodput) under name and
// returns the series that will accumulate its samples.
func (sa *Sampler) Track(name string, read func() int64) *Series {
	s := &Series{Name: name}
	sa.probes = append(sa.probes, probe{series: s, read: read, last: read()})
	return s
}

// TrackQueue registers a queue-occupancy gauge (read returns current bytes
// and packets queued) under name and returns the series that will accumulate
// its samples on the same tick as the rate probes.
func (sa *Sampler) TrackQueue(name string, read func() (int64, int)) *QueueSeries {
	s := &QueueSeries{Name: name}
	sa.gauges = append(sa.gauges, queueProbe{series: s, read: read})
	return s
}

// Start schedules periodic sampling until Stop or the engine stops running.
func (sa *Sampler) Start() {
	sa.timer.Reset(sa.interval)
}

// Stop ends sampling.
func (sa *Sampler) Stop() {
	sa.stopped = true
	sa.timer.Stop()
}

// OnEvent implements sim.Handler: take one sample and rearm the tick.
func (sa *Sampler) OnEvent(any) {
	if sa.stopped {
		return
	}
	now := sa.eng.Now()
	for i := range sa.probes {
		p := &sa.probes[i]
		cur := p.read()
		rate := units.RateFromBytes(units.ByteSize(cur-p.last), sa.interval)
		p.last = cur
		p.series.Samples = append(p.series.Samples, Sample{At: now, Rate: rate})
	}
	for i := range sa.gauges {
		g := &sa.gauges[i]
		b, n := g.read()
		g.series.Samples = append(g.series.Samples, QueueSample{At: now, Bytes: b, Pkts: n})
	}
	sa.timer.Reset(sa.interval)
}
