package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestJainKnownValues(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{50, 50}, 1.0},
		{[]float64{100, 0}, 0.5},
		{[]float64{1, 1, 1, 1}, 1.0},
		{[]float64{4, 0, 0, 0}, 0.25},
		{[]float64{}, 1.0},
		{[]float64{0, 0}, 1.0},
		{[]float64{75, 25}, (100.0 * 100.0) / (2 * (75*75 + 25*25))},
	}
	for _, c := range cases {
		got := Jain(c.in)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJainBounds(t *testing.T) {
	// Property: 1/n <= J <= 1 for any non-negative shares with a positive sum.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		shares := make([]float64, len(raw))
		positive := false
		for i, r := range raw {
			shares[i] = float64(r)
			if r > 0 {
				positive = true
			}
		}
		j := Jain(shares)
		if !positive {
			return j == 1
		}
		n := float64(len(shares))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainScaleInvariant(t *testing.T) {
	// Property: J(k·x) == J(x).
	f := func(a, b, c uint16, k uint8) bool {
		if k == 0 {
			return true
		}
		x := []float64{float64(a), float64(b), float64(c)}
		y := []float64{x[0] * float64(k), x[1] * float64(k), x[2] * float64(k)}
		return math.Abs(Jain(x)-Jain(y)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainEqualSharesAreMaximal(t *testing.T) {
	f := func(v uint16, n uint8) bool {
		if n == 0 || v == 0 {
			return true
		}
		m := int(n%16) + 2
		shares := make([]float64, m)
		for i := range shares {
			shares[i] = float64(v)
		}
		return math.Abs(Jain(shares)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainNegativeClamped(t *testing.T) {
	if j := Jain([]float64{-5, 10}); j != 0.5 {
		t.Errorf("negative share should clamp to 0: %v", j)
	}
}

func TestUtilization(t *testing.T) {
	// 100 Mbit delivered in 1 s over a 100 Mbps link = 1.0.
	got := Utilization(12_500_000, time.Second, 100*units.MegabitPerSec)
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("φ = %v", got)
	}
	if Utilization(1000, 0, units.GigabitPerSec) != 0 {
		t.Error("zero duration")
	}
	if Utilization(1000, time.Second, 0) != 0 {
		t.Error("zero bottleneck")
	}
	half := Utilization(6_250_000, time.Second, 100*units.MegabitPerSec)
	if math.Abs(half-0.5) > 1e-9 {
		t.Errorf("φ = %v, want 0.5", half)
	}
}

func TestRelativeRetransmissions(t *testing.T) {
	if rr := RelativeRetransmissions(100, 50); rr != 2 {
		t.Errorf("RR = %v", rr)
	}
	if rr := RelativeRetransmissions(0, 0); rr != 1 {
		t.Errorf("0/0 should be 1, got %v", rr)
	}
	if rr := RelativeRetransmissions(7, 0); !math.IsInf(rr, 1) {
		t.Errorf("n/0 should be +Inf, got %v", rr)
	}
}

func TestHarmKnownValues(t *testing.T) {
	cases := []struct {
		solo, workload float64
		want           float64
	}{
		{100, 100, 0},   // no loss, no harm
		{100, 150, 0},   // did better than solo: no harm
		{100, 50, 0.5},  // lost half its solo throughput
		{50, 20, 0.6},   // (50-20)/50
		{100, 0, 1},     // starved completely
		{100, -5, 1},    // negative workload clamps to starved
		{10, 2.5, 0.75}, // (10-2.5)/10
	}
	for _, c := range cases {
		if got := Harm(c.solo, c.workload); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harm(%v, %v) = %v, want %v", c.solo, c.workload, got, c.want)
		}
	}
	if h := Harm(0, 10); !math.IsInf(h, 1) {
		t.Errorf("Harm with zero baseline should be +Inf, got %v", h)
	}
	if h := Harm(-1, 10); !math.IsInf(h, 1) {
		t.Errorf("Harm with negative baseline should be +Inf, got %v", h)
	}
}

func TestHarmBounds(t *testing.T) {
	// Property: 0 <= harm <= 1 for any positive baseline, and harm is
	// antitone in workload (doing worse never decreases harm).
	f := func(soloRaw, w1Raw, w2Raw uint16) bool {
		solo := float64(soloRaw) + 1 // positive baseline
		w1, w2 := float64(w1Raw), float64(w2Raw)
		h1, h2 := Harm(solo, w1), Harm(solo, w2)
		if h1 < 0 || h1 > 1 || h2 < 0 || h2 > 1 {
			return false
		}
		if w1 <= w2 && h1 < h2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarmAsymmetric(t *testing.T) {
	// The defining contrast with Jain: swapping who wins changes nothing
	// for Jain but everything for harm.
	shares := []float64{80, 20}
	swapped := []float64{20, 80}
	if Jain(shares) != Jain(swapped) {
		t.Fatal("Jain should be symmetric")
	}
	fair := 50.0
	if Harm(fair, shares[1]) <= Harm(fair, shares[0]) {
		t.Error("the starved entity should record strictly more harm")
	}
}

func TestMeanAndStddev(t *testing.T) {
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty inputs")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("stddev = %v", s)
	}
}

func TestMeanFinite(t *testing.T) {
	xs := []float64{1, 2, math.Inf(1), 3, math.NaN()}
	if m := MeanFinite(xs); m != 2 {
		t.Errorf("MeanFinite = %v, want 2", m)
	}
	if MeanFinite([]float64{math.Inf(1)}) != 0 {
		t.Error("all-inf should be 0")
	}
}

func TestSamplerRates(t *testing.T) {
	eng := sim.NewEngine(1)
	var counter int64
	// Grow the counter by 1 MB per simulated 100 ms.
	var feed func()
	feed = func() {
		counter += 1_000_000
		eng.Schedule(100*time.Millisecond, feed)
	}
	eng.Schedule(100*time.Millisecond, feed)

	sa := NewSampler(eng, time.Second)
	series := sa.Track("counter", func() int64 { return counter })
	sa.Start()
	eng.RunFor(10 * time.Second)

	if len(series.Samples) < 9 {
		t.Fatalf("samples = %d", len(series.Samples))
	}
	// 10 MB/s = 80 Mbps per interval.
	for _, s := range series.Samples[1:] {
		if s.Rate < 79*units.MegabitPerSec || s.Rate > 81*units.MegabitPerSec {
			t.Fatalf("sample rate = %v, want 80Mbps", s.Rate)
		}
	}
	mean := series.MeanRate()
	if mean < 70*units.MegabitPerSec || mean > 81*units.MegabitPerSec {
		t.Fatalf("mean = %v", mean)
	}
}

func TestSamplerStop(t *testing.T) {
	eng := sim.NewEngine(1)
	sa := NewSampler(eng, time.Second)
	s := sa.Track("x", func() int64 { return 0 })
	sa.Start()
	eng.RunFor(3 * time.Second)
	sa.Stop()
	n := len(s.Samples)
	eng.RunFor(5 * time.Second)
	if len(s.Samples) != n {
		t.Fatal("sampler kept running after Stop")
	}
}

func TestSamplerTrackQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	// Occupancy ramps up 1500 bytes / 1 pkt per simulated 100 ms, peaks,
	// then drains — the gauge must capture the instantaneous values and
	// Peak must find the crest.
	var qBytes int64
	var qPkts int
	var feed func()
	feed = func() {
		if eng.Now() < sim.Duration(5*time.Second) {
			qBytes += 1500
			qPkts++
		} else {
			qBytes -= 1500
			qPkts--
		}
		eng.Schedule(100*time.Millisecond, feed)
	}
	eng.Schedule(100*time.Millisecond, feed)

	sa := NewSampler(eng, 500*time.Millisecond)
	series := sa.TrackQueue("bneck", func() (int64, int) { return qBytes, qPkts })
	sa.Start()
	eng.RunFor(10 * time.Second)

	if len(series.Samples) < 18 {
		t.Fatalf("samples = %d", len(series.Samples))
	}
	pb, pp := series.Peak()
	// Crest at t=5s: 50 increments of 1500B/1pkt.
	if pb < 70_000 || pb > 75_000 {
		t.Fatalf("peak bytes = %d, want ~75000", pb)
	}
	if pp < 47 || pp > 50 {
		t.Fatalf("peak pkts = %d, want ~50", pp)
	}
	// Gauge semantics: bytes and pkts move together in this scenario.
	for _, s := range series.Samples {
		if s.Bytes != int64(s.Pkts)*1500 {
			t.Fatalf("inconsistent gauge sample: %+v", s)
		}
	}
	// The drain must be visible: the last sample sits well below the peak.
	last := series.Samples[len(series.Samples)-1]
	if last.Bytes >= pb {
		t.Fatalf("drain not captured: last=%d peak=%d", last.Bytes, pb)
	}
}

func TestQueueSeriesPeakEmpty(t *testing.T) {
	var s QueueSeries
	if b, p := s.Peak(); b != 0 || p != 0 {
		t.Error("empty queue series peak should be 0,0")
	}
}

func TestSeriesMeanRateEmpty(t *testing.T) {
	var s Series
	if s.MeanRate() != 0 {
		t.Error("empty series mean should be 0")
	}
}
