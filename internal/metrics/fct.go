// Flow-completion-time statistics for open-loop workloads: a bounded,
// deterministic streaming percentile sketch plus the Ware-et-al. harm
// functional adapted to a less-is-better metric.
package metrics

import (
	"math"
	"math/bits"
	"time"
)

// FCTSketch is a streaming log-bucketed histogram of durations (stored in
// nanoseconds) in the HDR-histogram family: 64 sub-buckets per octave give
// a worst-case relative quantile error under 0.8%, in a fixed ~30 KB
// footprint regardless of how many flows are recorded. Everything about it
// is integer arithmetic on int64 nanoseconds, so quantiles are a pure
// function of the recorded multiset — byte-identical across worker counts,
// replay, and architectures. Min, max, and the exact sum are tracked on
// the side, so Min/Max are exact and Mean has no bucketing error at all.
//
// The zero value is not ready; use NewFCTSketch.
type FCTSketch struct {
	counts []uint64
	n      uint64
	min    int64
	max    int64
	sum    int64
}

// subBits is log2 of the sub-bucket count per octave. Values below
// 1<<subBits land in exact unit buckets; above that, each octave o is
// split into 64 buckets of width 2^(o-subBits).
const subBits = 6

// fctBuckets covers the full non-negative int64 range:
// 64 exact buckets + 64 buckets for each octave subBits..62.
const fctBuckets = (1 << subBits) * (64 - subBits)

// NewFCTSketch returns an empty sketch.
func NewFCTSketch() *FCTSketch {
	return &FCTSketch{counts: make([]uint64, fctBuckets), min: math.MaxInt64}
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 1<<subBits {
		return int(v)
	}
	octave := bits.Len64(uint64(v)) - 1 // >= subBits
	shift := octave - subBits
	// v >> shift is in [64, 127]; its low 6 bits pick the sub-bucket.
	return (octave-subBits)<<subBits + int(v>>shift)
}

// bucketMid returns the deterministic representative value of a bucket
// (the midpoint, which halves the worst-case error of either edge).
func bucketMid(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	shift := idx>>subBits - 1
	lower := int64(1<<subBits+idx&(1<<subBits-1)) << shift
	return lower + int64(1)<<shift/2
}

// Record adds one flow completion time. Negative durations clamp to zero.
func (s *FCTSketch) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	s.counts[bucketOf(v)]++
	s.n++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// Count returns the number of recorded completions.
func (s *FCTSketch) Count() uint64 { return s.n }

// Min returns the exact smallest recorded value (0 if empty).
func (s *FCTSketch) Min() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.min)
}

// Max returns the exact largest recorded value (0 if empty).
func (s *FCTSketch) Max() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.max)
}

// Mean returns the exact arithmetic mean (0 if empty), free of bucketing
// error because the sum is tracked outside the histogram.
func (s *FCTSketch) Mean() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.sum / int64(s.n))
}

// Quantile returns the q-quantile (q in [0,1]) as a duration: the
// representative value of the bucket holding the ceil(q·n)-th smallest
// recorded completion, clamped to the exact observed [min, max]. The
// result is deterministic — integer rank selection over integer bucket
// counts — and within <0.8% relative error of the exact order statistic.
func (s *FCTSketch) Quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.max) // unreachable: counts sum to n
}

// HarmFCT computes Ware-et-al. harm for flow completion time, where less
// is better: harm = (workload - solo) / workload, the fraction of the
// competing FCT attributable to the competition. It is 0 when flows
// completed at least as fast as the solo baseline, approaches 1 as the
// competition dominates the completion time, and is +Inf for a
// non-positive solo baseline (no baseline to be harmed relative to).
func HarmFCT(solo, workload float64) float64 {
	if solo <= 0 {
		return math.Inf(1)
	}
	if workload <= solo {
		return 0
	}
	return (workload - solo) / workload
}
