// Package metrics computes the paper's evaluation quantities: Jain's
// fairness index (eq. 2), link utilization φ (eq. 3), relative
// retransmissions RR (eq. 4), and time series of per-flow / per-sender
// throughput sampled from a running simulation.
package metrics

import (
	"math"
	"time"

	"repro/internal/units"
)

// Jain computes Jain's fairness index over per-entity throughputs
// (eq. 2): (Σs)² / (n·Σs²). It is 1 when all shares are equal and
// approaches 1/n when one entity takes everything. Entities with zero
// throughput still count. Returns 1 for empty or all-zero input (an idle
// link is trivially fair).
func Jain(shares []float64) float64 {
	if len(shares) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, s := range shares {
		if s < 0 {
			s = 0
		}
		sum += s
		sumSq += s * s
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(shares)) * sumSq)
}

// Utilization computes φ (eq. 3): total goodput over capacity, for a
// measurement of total bytes delivered during dur over a bottleneck of rate.
func Utilization(totalBytes int64, dur time.Duration, bottleneck units.Bandwidth) float64 {
	if dur <= 0 || bottleneck <= 0 {
		return 0
	}
	return float64(totalBytes) * 8 / dur.Seconds() / float64(bottleneck)
}

// RelativeRetransmissions computes RR (eq. 4): the retransmission count of
// a configuration normalized by the CUBIC-vs-CUBIC reference in the same
// condition. A zero reference with a nonzero numerator returns +Inf; 0/0 is
// defined as 1 (both configurations were loss-free).
func RelativeRetransmissions(observed, cubicRef uint64) float64 {
	if cubicRef == 0 {
		if observed == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(observed) / float64(cubicRef)
}

// Harm computes the harm inflicted on an entity whose throughput (or any
// more-is-better metric) fell from a baseline of solo to workload under
// competition, following Ware et al., "Beyond Jain's Fairness Index"
// (HotNets '19): harm = (solo - workload) / solo, clamped to 0 when the
// entity did at least as well as its baseline. Unlike Jain's index, harm is
// asymmetric — it identifies who was hurt and by how much, and a flow that
// merely fails to exploit headroom inflicts no harm. Returns +Inf for a
// non-positive baseline (no solo performance to be harmed relative to).
func Harm(solo, workload float64) float64 {
	if solo <= 0 {
		return math.Inf(1)
	}
	if workload >= solo {
		return 0
	}
	if workload < 0 {
		workload = 0
	}
	return (solo - workload) / solo
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanFinite averages only the finite values (Table 3's Avg(RR) must not be
// poisoned by an infinite ratio from a loss-free CUBIC reference).
func MeanFinite(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if !math.IsInf(x, 0) && !math.IsNaN(x) {
			s += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Stddev returns the sample standard deviation (0 for n < 2).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
