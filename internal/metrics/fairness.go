package metrics

import (
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// DefaultFairnessWindow is the observatory's sampling cadence when the
// configuration does not override it: fine enough to see BBR's ~10 s
// ProbeRTT dips and CUBIC's epoch-scale convergence, coarse enough that a
// paper-scale 200 s run stays at 2000 windows.
const DefaultFairnessWindow = 100 * time.Millisecond

// DetectorConfig holds the thresholds the fairness detectors run with. All
// detectors are pure functions of the windowed series, so tests can feed
// synthetic series and assert exact outcomes.
type DetectorConfig struct {
	// JainThreshold is the Jain(t) level that counts as "fair" for
	// convergence detection.
	JainThreshold float64 `json:"jain_threshold"`
	// SustainWindows is how many consecutive windows the threshold must
	// hold before the run counts as converged (a single lucky window is
	// not convergence).
	SustainWindows int `json:"sustain_windows"`
	// FairShareEps is the per-flow tolerance: a flow has reached its fair
	// share once its windowed share is at least (1-eps)·(1/n).
	FairShareEps float64 `json:"fair_share_eps"`
	// StarvationFrac is δ: a flow is starving while its windowed share
	// sits below δ·(1/n).
	StarvationFrac float64 `json:"starvation_frac"`
	// StarvationMin is the minimum duration a flow must sit below the
	// starvation line before the stretch counts as an episode.
	StarvationMin time.Duration `json:"starvation_min_ns"`
	// JainFloor is the level for the time-below integral (the paper-style
	// "how long was the link measurably unfair" number).
	JainFloor float64 `json:"jain_floor"`
}

// DefaultDetector returns the thresholds used by experiment runs: converge
// at Jain ≥ 0.95 sustained for 5 windows, fair share within 25%, starvation
// below a quarter of fair share for at least a second, unfairness floor 0.9.
func DefaultDetector() DetectorConfig {
	return DetectorConfig{
		JainThreshold:  0.95,
		SustainWindows: 5,
		FairShareEps:   0.25,
		StarvationFrac: 0.25,
		StarvationMin:  time.Second,
		JainFloor:      0.9,
	}
}

// FlowFairness is one tracked flow's share-of-bottleneck time series and
// its per-flow detector findings.
type FlowFairness struct {
	ID    uint32 `json:"id"`
	CCA   string `json:"cca"`
	Class int    `json:"class"` // sender class index
	// Active is false for a flow that never delivered a byte; such flows
	// are excluded from starvation detection (they never started, so they
	// cannot have been starved by a competitor mid-run).
	Active bool `json:"active"`
	// FirstActive is the end of the first window in which the flow
	// delivered bytes (meaningful only when Active).
	FirstActive time.Duration `json:"first_active_ns"`
	MeanShare   float64       `json:"mean_share"`
	FinalShare  float64       `json:"final_share"`
	// ReachedFair and TimeToFair report when the flow's windowed share
	// first reached (1-eps)·fair-share sustained for SustainWindows.
	ReachedFair bool          `json:"reached_fair"`
	TimeToFair  time.Duration `json:"time_to_fair_ns"`
	// Share is the per-window share-of-bottleneck series (goodput over
	// the window divided by the bottleneck rate).
	Share []float64 `json:"share"`
}

// StarvationEpisode is one contiguous stretch in which a flow's windowed
// share sat below StarvationFrac of fair share for at least StarvationMin.
// Times are simulation times: Start is the beginning of the first starved
// window, End the end of the last one.
type StarvationEpisode struct {
	FlowID uint32        `json:"flow_id"`
	CCA    string        `json:"cca"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
	// MeanShare is the victim's mean share over the episode.
	MeanShare float64 `json:"mean_share"`
	// Culprits lists the flows that took more than 1.5× the equal split
	// of the traffic actually delivered during the episode — who was
	// eating the victim's bandwidth. Normalizing by delivered traffic
	// (not link capacity) still names the culprit when the link ran
	// underutilized, e.g. a BBR flow draining its queue estimate while
	// CUBIC backs off.
	Culprits []uint32 `json:"culprits,omitempty"`
	// Resolved is true when the episode ended before the run did.
	Resolved bool `json:"resolved"`
}

// FairnessReport is the observatory's structured outcome: the windowed
// series plus every detector finding. All fields are derived from
// deterministic integer byte counters sampled at fixed simulation times,
// so the report is byte-identical across worker counts and replay.
type FairnessReport struct {
	Window  time.Duration `json:"window_ns"`
	Windows int           `json:"windows"`

	FinalJain float64 `json:"final_jain"`
	MeanJain  float64 `json:"mean_jain"`
	MinJain   float64 `json:"min_jain"`

	// ActiveFrom is when the last flow that ever delivered bytes became
	// active — the moment all competitors are present. Convergence is
	// scanned from here: before it, windows are trivially fair (an idle or
	// half-populated link says nothing about how competitors share).
	ActiveFrom time.Duration `json:"active_from_ns"`
	// Converged and ConvergenceTime report the first window end at or
	// after ActiveFrom at which Jain(t) ≥ JainThreshold held for
	// SustainWindows consecutive windows.
	Converged       bool          `json:"converged"`
	ConvergenceTime time.Duration `json:"convergence_time_ns"`
	// TimeBelowFloor integrates the windows with Jain(t) < JainFloor.
	TimeBelowFloor time.Duration `json:"time_below_floor_ns"`

	// Jain is the windowed Jain(t) series over the tracked flows' per-
	// window goodput; RetxRate is the aggregate retransmit rate (segments
	// per second) in each window.
	Jain     []float64 `json:"jain"`
	RetxRate []float64 `json:"retx_rate"`

	Flows    []FlowFairness      `json:"flows,omitempty"`
	Episodes []StarvationEpisode `json:"episodes,omitempty"`

	Detector DetectorConfig `json:"detector"`
}

// FairShare returns the equal split across the tracked flows (0 with no
// flows).
func (r *FairnessReport) FairShare() float64 {
	if r == nil || len(r.Flows) == 0 {
		return 0
	}
	return 1 / float64(len(r.Flows))
}

// fairProbe is one tracked flow's counters and its preallocated window ring.
type fairProbe struct {
	id      uint32
	cca     string
	class   int
	goodput func() int64
	retx    func() uint64
	lastG   int64
	lastR   uint64
	firstOn int // window index of first nonzero goodput delta, -1 until seen
	share   []float64
}

// FairnessSampler drives the observatory: a persistent sim.Timer fires at a
// fixed window cadence, reading each tracked flow's cumulative goodput and
// retransmit counters and appending windowed shares to preallocated rings.
// All series are sized for the run horizon up front, so steady-state
// sampling performs no allocation — the observatory rides inside the
// ≤1 alloc/forwarded-packet budget.
type FairnessSampler struct {
	eng        *sim.Engine
	window     time.Duration
	bottleneck units.Bandwidth
	capacity   int
	flows      []fairProbe
	jain       []float64
	retx       []float64
	scratch    []float64 // per-flow window deltas, reused every tick
	ticks      uint64
	stopped    bool
	timer      sim.Timer
}

// NewFairnessSampler creates a sampler ticking every window (0 = the
// default cadence) over a run of the given horizon on a bottleneck of the
// given rate. Track flows with TrackFlow, then Start before running the
// engine.
func NewFairnessSampler(eng *sim.Engine, window, horizon time.Duration, bottleneck units.Bandwidth) *FairnessSampler {
	if window <= 0 {
		window = DefaultFairnessWindow
	}
	capacity := 2
	if horizon > 0 {
		capacity += int(horizon / window)
	}
	fs := &FairnessSampler{
		eng:        eng,
		window:     window,
		bottleneck: bottleneck,
		capacity:   capacity,
		jain:       make([]float64, 0, capacity),
		retx:       make([]float64, 0, capacity),
	}
	fs.timer.Init(eng, fs, nil)
	return fs
}

// Window returns the effective sampling cadence.
func (fs *FairnessSampler) Window() time.Duration { return fs.window }

// Ticks returns the number of sampler timer events the engine executed.
// The runner subtracts this from the result's event count so the
// serialized science — including the determinism fingerprint — is
// byte-identical with the observatory on or off.
func (fs *FairnessSampler) Ticks() uint64 { return fs.ticks }

// TrackFlow registers one flow's cumulative goodput and retransmit readers.
// Must be called before Start.
func (fs *FairnessSampler) TrackFlow(id uint32, cca string, class int, goodput func() int64, retx func() uint64) {
	fs.flows = append(fs.flows, fairProbe{
		id:      id,
		cca:     cca,
		class:   class,
		goodput: goodput,
		retx:    retx,
		lastG:   goodput(),
		lastR:   retx(),
		firstOn: -1,
		share:   make([]float64, 0, fs.capacity),
	})
}

// Start arms the window timer. Call after every TrackFlow.
func (fs *FairnessSampler) Start() {
	fs.scratch = make([]float64, len(fs.flows))
	fs.timer.Reset(fs.window)
}

// Stop ends sampling.
func (fs *FairnessSampler) Stop() {
	fs.stopped = true
	fs.timer.Stop()
}

// OnEvent implements sim.Handler: close one window and rearm. The hot loop
// touches only preallocated storage.
func (fs *FairnessSampler) OnEvent(any) {
	fs.ticks++
	if fs.stopped {
		return
	}
	winSec := fs.window.Seconds()
	var retxDelta uint64
	for i := range fs.flows {
		p := &fs.flows[i]
		g := p.goodput()
		d := g - p.lastG
		p.lastG = g
		r := p.retx()
		retxDelta += r - p.lastR
		p.lastR = r
		if d < 0 {
			d = 0
		}
		if d > 0 && p.firstOn < 0 {
			p.firstOn = len(p.share)
		}
		share := 0.0
		if fs.bottleneck > 0 {
			share = float64(d) * 8 / winSec / float64(fs.bottleneck)
		}
		p.share = append(p.share, share)
		fs.scratch[i] = float64(d)
	}
	// Jain over raw window deltas equals Jain over shares (the index is
	// scale-invariant), and stays well-defined when the bottleneck rate is
	// unknown or zero.
	fs.jain = append(fs.jain, Jain(fs.scratch))
	fs.retx = append(fs.retx, float64(retxDelta)/winSec)
	fs.timer.Reset(fs.window)
}

// Report closes the observatory and runs every detector, returning the
// structured findings. Zero-window runs (horizon shorter than one window,
// or a zero-duration run) report trivially fair series and no findings.
func (fs *FairnessSampler) Report(det DetectorConfig) *FairnessReport {
	rep := &FairnessReport{
		Window:   fs.window,
		Windows:  len(fs.jain),
		Jain:     fs.jain,
		RetxRate: fs.retx,
		Detector: det,
	}
	rep.FinalJain, rep.MeanJain, rep.MinJain = 1, 1, 1
	if len(fs.jain) > 0 {
		rep.FinalJain = fs.jain[len(fs.jain)-1]
		rep.MeanJain = Mean(fs.jain)
		rep.MinJain = fs.jain[0]
		for _, j := range fs.jain {
			if j < rep.MinJain {
				rep.MinJain = j
			}
		}
	}
	// The convergence scan starts once every eventually-active flow is
	// present; leading idle/half-populated windows are trivially fair and
	// must not count as convergence.
	from := 0
	for i := range fs.flows {
		if on := fs.flows[i].firstOn; on >= 0 && on > from {
			from = on
		}
	}
	if from > len(fs.jain) {
		from = len(fs.jain)
	}
	rep.ActiveFrom = time.Duration(from) * fs.window
	rep.ConvergenceTime, rep.Converged = ConvergenceTime(fs.jain[from:], fs.window, det)
	if rep.Converged {
		rep.ConvergenceTime += rep.ActiveFrom
	}
	rep.TimeBelowFloor = TimeBelow(fs.jain, fs.window, det.JainFloor)

	fair := 0.0
	if len(fs.flows) > 0 {
		fair = 1 / float64(len(fs.flows))
	}
	rep.Flows = make([]FlowFairness, 0, len(fs.flows))
	for i := range fs.flows {
		p := &fs.flows[i]
		ff := FlowFairness{
			ID:        p.id,
			CCA:       p.cca,
			Class:     p.class,
			MeanShare: Mean(p.share),
			Share:     p.share,
		}
		if len(p.share) > 0 {
			ff.FinalShare = p.share[len(p.share)-1]
		}
		if p.firstOn >= 0 {
			ff.Active = true
			ff.FirstActive = time.Duration(p.firstOn+1) * fs.window
		}
		ff.TimeToFair, ff.ReachedFair = TimeToFairShare(p.share, fair, fs.window, det)
		rep.Flows = append(rep.Flows, ff)
	}
	rep.Episodes = StarvationEpisodes(rep.Flows, fair, fs.window, det)
	return rep
}

// ConvergenceTime returns the simulation time at which the Jain(t) series
// first reached det.JainThreshold and held it for det.SustainWindows
// consecutive windows: the end of the first window of that sustained
// stretch. NaN values never satisfy the threshold. The second return is
// false when the series never converged.
func ConvergenceTime(jain []float64, window time.Duration, det DetectorConfig) (time.Duration, bool) {
	need := det.SustainWindows
	if need < 1 {
		need = 1
	}
	run := 0
	for i, j := range jain {
		if j >= det.JainThreshold { // NaN compares false: unfair by default
			run++
			if run >= need {
				return time.Duration(i-need+2) * window, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// TimeBelow integrates the duration spent with Jain(t) below floor. NaN
// values do not count as below (they carry no evidence either way).
func TimeBelow(jain []float64, window time.Duration, floor float64) time.Duration {
	n := 0
	for _, j := range jain {
		if j < floor {
			n++
		}
	}
	return time.Duration(n) * window
}

// TimeToFairShare returns when a flow's windowed share first reached
// (1-FairShareEps)·fair and held it for SustainWindows consecutive windows.
// A zero fair share (no flows) never triggers.
func TimeToFairShare(share []float64, fair float64, window time.Duration, det DetectorConfig) (time.Duration, bool) {
	if fair <= 0 {
		return 0, false
	}
	floor := (1 - det.FairShareEps) * fair
	need := det.SustainWindows
	if need < 1 {
		need = 1
	}
	run := 0
	for i, s := range share {
		if s >= floor {
			run++
			if run >= need {
				return time.Duration(i-need+2) * window, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// StarvationEpisodes scans every active flow's share series for contiguous
// stretches below det.StarvationFrac·fair lasting at least
// det.StarvationMin. Scanning starts at the flow's first active window, so
// a late-starting flow is not "starved" before it exists. Culprits are the
// other flows whose mean share over the same windows exceeded fair share.
// Episodes come back sorted by start time, then flow ID.
func StarvationEpisodes(flows []FlowFairness, fair float64, window time.Duration, det DetectorConfig) []StarvationEpisode {
	if fair <= 0 || len(flows) < 2 || window <= 0 {
		return nil
	}
	floor := det.StarvationFrac * fair
	minWin := int((det.StarvationMin + window - 1) / window)
	if minWin < 1 {
		minWin = 1
	}
	var out []StarvationEpisode
	for fi := range flows {
		f := &flows[fi]
		if !f.Active {
			continue
		}
		start := int(f.FirstActive/window) - 1 // index of first active window
		if start < 0 {
			start = 0
		}
		runStart := -1
		flush := func(end int) { // end: one past the last starved window
			if runStart < 0 || end-runStart < minWin {
				runStart = -1
				return
			}
			ep := StarvationEpisode{
				FlowID:    f.ID,
				CCA:       f.CCA,
				Start:     time.Duration(runStart) * window,
				End:       time.Duration(end) * window,
				MeanShare: Mean(f.Share[runStart:end]),
				Resolved:  end < len(f.Share),
			}
			// Culprit rule: more than 1.5× the equal split of what was
			// actually delivered over the episode's windows. Self-
			// normalizing, so it names the hog even when the link ran
			// underutilized (where a capacity-based rule goes blind).
			total := 0.0
			for ci := range flows {
				if end <= len(flows[ci].Share) {
					total += Mean(flows[ci].Share[runStart:end])
				}
			}
			equal := total / float64(len(flows))
			for ci := range flows {
				c := &flows[ci]
				if ci == fi || end > len(c.Share) {
					continue
				}
				if m := Mean(c.Share[runStart:end]); equal > 0 && m > 1.5*equal {
					ep.Culprits = append(ep.Culprits, c.ID)
				}
			}
			out = append(out, ep)
			runStart = -1
		}
		for w := start; w < len(f.Share); w++ {
			if f.Share[w] < floor {
				if runStart < 0 {
					runStart = w
				}
			} else {
				flush(w)
			}
		}
		flush(len(f.Share))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].FlowID < out[j].FlowID
	})
	return out
}
