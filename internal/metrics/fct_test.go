package metrics

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestFCTSketchBuckets: every value maps into range, bucket edges are
// consistent (the representative of a value's bucket is within one bucket
// width), and the relative width bound holds.
func TestFCTSketchBuckets(t *testing.T) {
	vals := []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1e6, 1e9, 1e12, math.MaxInt64 / 2, math.MaxInt64}
	for _, v := range vals {
		idx := bucketOf(v)
		if idx < 0 || idx >= fctBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", v, idx, fctBuckets)
		}
		mid := bucketMid(idx)
		if v < 1<<subBits {
			if mid != v {
				t.Fatalf("exact bucket %d: representative %d != value %d", idx, mid, v)
			}
			continue
		}
		relErr := math.Abs(float64(mid)-float64(v)) / float64(v)
		if relErr > 1.0/128 {
			t.Errorf("bucketOf(%d): representative %d off by %.4f%% (> 1/128)", v, mid, relErr*100)
		}
	}
	// Monotone: bucket indices never decrease with the value.
	prev := -1
	for v := int64(1); v > 0 && v < 1<<40; v *= 3 {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

// TestFCTSketchErrorBound: record 10⁵ synthetic flow completion times from
// a lognormal-shaped distribution and bound the sketch quantiles against
// the exact order statistics at ≤ 2% relative error (the design bound is
// 1/128 ≈ 0.8%; 2% leaves margin for the rank-definition half-bucket).
func TestFCTSketchErrorBound(t *testing.T) {
	const n = 100_000
	rng := sim.NewRNG(42)
	s := NewFCTSketch()
	exact := make([]int64, 0, n)
	var sum int64
	for i := 0; i < n; i++ {
		// Box–Muller normal → lognormal centered near 100ms in ns.
		u1, u2 := 1-rng.Float64(), rng.Float64()
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		v := int64(math.Exp(math.Log(100e6) + 0.8*z))
		exact = append(exact, v)
		sum += v
		s.Record(time.Duration(v))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })

	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	if got := s.Min(); int64(got) != exact[0] {
		t.Errorf("min = %d, want exact %d", got, exact[0])
	}
	if got := s.Max(); int64(got) != exact[n-1] {
		t.Errorf("max = %d, want exact %d", got, exact[n-1])
	}
	if got := s.Mean(); int64(got) != sum/n {
		t.Errorf("mean = %d, want exact %d", got, sum/n)
	}

	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(q * n))
		if rank < 1 {
			rank = 1
		}
		want := float64(exact[rank-1])
		got := float64(s.Quantile(q))
		relErr := math.Abs(got-want) / want
		if relErr > 0.02 {
			t.Errorf("q=%.3f: sketch %v vs exact %v — relative error %.3f%% > 2%%",
				q, time.Duration(got), time.Duration(want), relErr*100)
		}
	}
}

// TestFCTSketchDeterminism: the same multiset recorded in a different
// order yields identical quantiles — the sketch is order-free integer
// arithmetic, which is what makes Result bytes worker-count independent.
func TestFCTSketchDeterminism(t *testing.T) {
	vals := []time.Duration{
		5 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
		1 * time.Second, 250 * time.Microsecond, 3 * time.Second,
	}
	a, b := NewFCTSketch(), NewFCTSketch()
	for _, v := range vals {
		a.Record(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Record(vals[i])
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%.2f: %v != %v across insertion orders", q, a.Quantile(q), b.Quantile(q))
		}
	}
	if a.Mean() != b.Mean() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Errorf("summary stats differ across insertion orders")
	}
}

func TestFCTSketchEmpty(t *testing.T) {
	s := NewFCTSketch()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty sketch must report zeros: count=%d q50=%v mean=%v", s.Count(), s.Quantile(0.5), s.Mean())
	}
}

func TestHarmFCT(t *testing.T) {
	cases := []struct {
		solo, workload, want float64
	}{
		{100, 100, 0},         // no slowdown, no harm
		{100, 50, 0},          // faster under competition: clamped to 0
		{100, 200, 0.5},       // doubled FCT: half the time is the competition's fault
		{100, 1000, 0.9},      // 10×: harm → 1
		{0, 100, math.Inf(1)}, // no baseline
		{-5, 100, math.Inf(1)},
	}
	for _, c := range cases {
		if got := HarmFCT(c.solo, c.workload); got != c.want {
			t.Errorf("HarmFCT(%g, %g) = %g, want %g", c.solo, c.workload, got, c.want)
		}
	}
}
