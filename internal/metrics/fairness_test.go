package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// det returns the default detector with a short sustain for compact
// synthetic series.
func det(sustain int) DetectorConfig {
	d := DefaultDetector()
	d.SustainWindows = sustain
	return d
}

func TestConvergenceTimeKnownValues(t *testing.T) {
	w := 100 * time.Millisecond
	cases := []struct {
		name    string
		jain    []float64
		sustain int
		want    time.Duration
		ok      bool
	}{
		// Converges at index 2; sustain 3 → first window of the stretch
		// ends at (2+1)*w = 300ms.
		{"simple", []float64{0.5, 0.7, 0.96, 0.97, 0.99}, 3, 300 * time.Millisecond, true},
		// A lucky single window does not count with sustain 2.
		{"blip", []float64{0.5, 0.99, 0.5, 0.5}, 2, 0, false},
		// Fair from the very first window.
		{"immediate", []float64{1, 1, 1}, 3, 100 * time.Millisecond, true},
		// Never fair.
		{"never", []float64{0.5, 0.6, 0.7}, 1, 0, false},
		// Empty series.
		{"empty", nil, 3, 0, false},
		// NaN breaks a run: the stretch restarts after it.
		{"nan", []float64{0.99, math.NaN(), 0.99, 0.99}, 2, 300 * time.Millisecond, true},
	}
	for _, c := range cases {
		got, ok := ConvergenceTime(c.jain, w, det(c.sustain))
		if got != c.want || ok != c.ok {
			t.Errorf("%s: ConvergenceTime = (%v, %v), want (%v, %v)", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestTimeBelow(t *testing.T) {
	w := 100 * time.Millisecond
	jain := []float64{0.5, 0.95, 0.89, math.NaN(), 0.91}
	if got := TimeBelow(jain, w, 0.9); got != 200*time.Millisecond {
		t.Errorf("TimeBelow = %v, want 200ms (NaN must not count)", got)
	}
	if got := TimeBelow(nil, w, 0.9); got != 0 {
		t.Errorf("TimeBelow(nil) = %v, want 0", got)
	}
}

func TestTimeToFairShare(t *testing.T) {
	w := 100 * time.Millisecond
	d := det(2)
	// fair = 0.5, eps 0.25 → floor 0.375. Reached at indices 2,3.
	share := []float64{0.1, 0.2, 0.4, 0.45}
	got, ok := TimeToFairShare(share, 0.5, w, d)
	if !ok || got != 300*time.Millisecond {
		t.Errorf("TimeToFairShare = (%v, %v), want (300ms, true)", got, ok)
	}
	// Zero fair share (no flows) never triggers.
	if _, ok := TimeToFairShare(share, 0, w, d); ok {
		t.Error("zero fair share must never trigger")
	}
}

func TestStarvationEpisodesKnownValues(t *testing.T) {
	w := 100 * time.Millisecond
	d := DefaultDetector()
	d.StarvationMin = 300 * time.Millisecond // 3 windows
	// Two flows, fair = 0.5, starvation floor = 0.125. The victim sits at
	// 0.01 for windows 2..5 (4 windows ≥ 3) while the hog takes ~0.9.
	victim := FlowFairness{ID: 2, CCA: "cubic", Active: true, FirstActive: w,
		Share: []float64{0.45, 0.4, 0.01, 0.01, 0.01, 0.01, 0.4, 0.45}}
	hog := FlowFairness{ID: 1, CCA: "bbr1", Active: true, FirstActive: w,
		Share: []float64{0.45, 0.5, 0.9, 0.9, 0.9, 0.9, 0.5, 0.45}}
	eps := StarvationEpisodes([]FlowFairness{hog, victim}, 0.5, w, d)
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1: %+v", len(eps), eps)
	}
	ep := eps[0]
	if ep.FlowID != 2 || ep.CCA != "cubic" {
		t.Errorf("victim = flow %d (%s), want flow 2 (cubic)", ep.FlowID, ep.CCA)
	}
	if ep.Start != 200*time.Millisecond || ep.End != 600*time.Millisecond {
		t.Errorf("episode span = %v-%v, want 200ms-600ms", ep.Start, ep.End)
	}
	if !ep.Resolved {
		t.Error("episode ended mid-run and must be resolved")
	}
	if len(ep.Culprits) != 1 || ep.Culprits[0] != 1 {
		t.Errorf("culprits = %v, want [1]", ep.Culprits)
	}
	if math.Abs(ep.MeanShare-0.01) > 1e-12 {
		t.Errorf("victim mean share = %v, want 0.01", ep.MeanShare)
	}
}

func TestStarvationEpisodeUnresolvedAtEnd(t *testing.T) {
	w := 100 * time.Millisecond
	d := DefaultDetector()
	d.StarvationMin = 200 * time.Millisecond
	victim := FlowFairness{ID: 2, CCA: "reno", Active: true, FirstActive: w,
		Share: []float64{0.4, 0.01, 0.01, 0.01}}
	hog := FlowFairness{ID: 1, CCA: "bbr1", Active: true, FirstActive: w,
		Share: []float64{0.4, 0.9, 0.9, 0.9}}
	eps := StarvationEpisodes([]FlowFairness{hog, victim}, 0.5, w, d)
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	if eps[0].Resolved {
		t.Error("episode running into the end of the series must be unresolved")
	}
}

func TestStarvationEpisodesUnderutilizedLinkNamesCulprit(t *testing.T) {
	// The culprit rule normalizes by delivered traffic, not capacity: with
	// the link 60% idle the hog's absolute share (0.35) is below fair share
	// (0.5) but still >1.5× the equal split of what was delivered.
	w := 100 * time.Millisecond
	d := DefaultDetector()
	d.StarvationMin = 300 * time.Millisecond
	victim := FlowFairness{ID: 2, CCA: "cubic", Active: true, FirstActive: w,
		Share: []float64{0.4, 0.01, 0.01, 0.01, 0.4}}
	hog := FlowFairness{ID: 1, CCA: "bbr1", Active: true, FirstActive: w,
		Share: []float64{0.4, 0.35, 0.35, 0.35, 0.4}}
	eps := StarvationEpisodes([]FlowFairness{hog, victim}, 0.5, w, d)
	if len(eps) != 1 || len(eps[0].Culprits) != 1 || eps[0].Culprits[0] != 1 {
		t.Fatalf("underutilized-link culprit not named: %+v", eps)
	}
}

func TestStarvationEpisodesDegenerate(t *testing.T) {
	w := 100 * time.Millisecond
	d := DefaultDetector()
	solo := []FlowFairness{{ID: 1, Active: true, Share: []float64{0, 0, 0}}}
	if eps := StarvationEpisodes(solo, 1, w, d); eps != nil {
		t.Errorf("single flow cannot starve itself: %+v", eps)
	}
	two := []FlowFairness{
		{ID: 1, Active: true, Share: []float64{0, 0}},
		{ID: 2, Active: true, Share: []float64{0, 0}},
	}
	if eps := StarvationEpisodes(two, 0, w, d); eps != nil {
		t.Errorf("zero fair share must yield no episodes: %+v", eps)
	}
	if eps := StarvationEpisodes(two, 0.5, 0, d); eps != nil {
		t.Errorf("zero window must yield no episodes: %+v", eps)
	}
	// A flow that never delivered a byte is not starved — it never started.
	inactive := []FlowFairness{
		{ID: 1, Active: true, Share: []float64{0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9}},
		{ID: 2, Active: false, Share: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
	}
	if eps := StarvationEpisodes(inactive, 0.5, w, d); eps != nil {
		t.Errorf("never-active flow reported starved: %+v", eps)
	}
}

// feedCounter grows a cumulative byte counter at a fixed rate via engine
// events, simulating a receiver's goodput counter.
type feedCounter struct {
	eng    *sim.Engine
	val    int64
	step   int64
	period time.Duration
	from   time.Duration
}

func (f *feedCounter) run() {
	if f.eng.Now() >= sim.Duration(f.from) {
		f.val += f.step
	}
	f.eng.Schedule(f.period, f.run)
}

func TestFairnessSamplerStaggeredKnownValues(t *testing.T) {
	eng := sim.NewEngine(1)
	// Flow 1 delivers 125 kB / 10 ms (100 Mbps) from t=0; flow 2 the same
	// from t=1s. Bottleneck 200 Mbps → shares 0.5 each once both run.
	f1 := &feedCounter{eng: eng, step: 125_000, period: 10 * time.Millisecond}
	f2 := &feedCounter{eng: eng, step: 125_000, period: 10 * time.Millisecond, from: time.Second}
	eng.Schedule(10*time.Millisecond, f1.run)
	eng.Schedule(10*time.Millisecond, f2.run)

	fs := NewFairnessSampler(eng, 100*time.Millisecond, 3*time.Second, 200*units.MegabitPerSec)
	fs.TrackFlow(1, "cubic", 0, func() int64 { return f1.val }, func() uint64 { return 0 })
	fs.TrackFlow(2, "cubic", 1, func() int64 { return f2.val }, func() uint64 { return 0 })
	fs.Start()
	eng.RunFor(3 * time.Second)

	rep := fs.Report(DefaultDetector())
	if rep.Windows != 30 {
		t.Fatalf("windows = %d, want 30", rep.Windows)
	}
	// Solo phase: flow 1 alone → Jain 0.5. Duo phase: equal → Jain 1.
	if rep.Jain[0] != 0.5 || rep.Jain[5] != 0.5 {
		t.Errorf("solo-phase Jain = %v/%v, want 0.5", rep.Jain[0], rep.Jain[5])
	}
	if rep.Jain[15] != 1 || rep.FinalJain != 1 {
		t.Errorf("duo-phase Jain = %v final %v, want 1", rep.Jain[15], rep.FinalJain)
	}
	// Flow 2 first delivers in window index 10 → ActiveFrom 1s; the
	// convergence scan starts there, so the pre-start solo windows (all
	// 0.5) cannot have converged the run. Jain is fair from the first
	// scanned window, and ConvergenceTime reports the end of the first
	// window of the sustained stretch → 1.1s.
	if rep.ActiveFrom != time.Second {
		t.Errorf("ActiveFrom = %v, want 1s", rep.ActiveFrom)
	}
	if !rep.Converged || rep.ConvergenceTime != 1100*time.Millisecond {
		t.Errorf("convergence = (%v, %v), want (1.1s, true)", rep.ConvergenceTime, rep.Converged)
	}
	// Shares: flow 1 at 0.5 throughout; flow 2 at 0 then 0.5.
	if got := rep.Flows[0].Share[3]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("flow 1 share = %v, want 0.5", got)
	}
	if got := rep.Flows[1].Share[3]; got != 0 {
		t.Errorf("flow 2 pre-start share = %v, want 0", got)
	}
	if !rep.Flows[1].Active || rep.Flows[1].FirstActive != 1100*time.Millisecond {
		t.Errorf("flow 2 FirstActive = %v (active=%v), want 1.1s", rep.Flows[1].FirstActive, rep.Flows[1].Active)
	}
	if len(rep.Episodes) != 0 {
		t.Errorf("episodes = %+v, want none (flow 2 scanned only from its start)", rep.Episodes)
	}
}

func TestFairnessSamplerSingleFlow(t *testing.T) {
	eng := sim.NewEngine(1)
	f1 := &feedCounter{eng: eng, step: 125_000, period: 10 * time.Millisecond}
	eng.Schedule(10*time.Millisecond, f1.run)
	fs := NewFairnessSampler(eng, 100*time.Millisecond, 2*time.Second, 100*units.MegabitPerSec)
	fs.TrackFlow(1, "cubic", 0, func() int64 { return f1.val }, func() uint64 { return 0 })
	fs.Start()
	eng.RunFor(2 * time.Second)

	rep := fs.Report(DefaultDetector())
	// One flow is trivially fair: Jain ≡ 1, no episodes.
	for i, j := range rep.Jain {
		if j != 1 {
			t.Fatalf("Jain[%d] = %v, want 1 for a single flow", i, j)
		}
	}
	if !rep.Converged || rep.TimeBelowFloor != 0 || len(rep.Episodes) != 0 {
		t.Errorf("single flow: converged=%v below=%v episodes=%d, want true/0/0",
			rep.Converged, rep.TimeBelowFloor, len(rep.Episodes))
	}
}

func TestFairnessSamplerZeroLengthRun(t *testing.T) {
	eng := sim.NewEngine(1)
	fs := NewFairnessSampler(eng, 100*time.Millisecond, 0, 100*units.MegabitPerSec)
	fs.TrackFlow(1, "cubic", 0, func() int64 { return 0 }, func() uint64 { return 0 })
	// Engine never runs: zero windows.
	rep := fs.Report(DefaultDetector())
	if rep.Windows != 0 || len(rep.Jain) != 0 {
		t.Fatalf("zero-length run: windows = %d", rep.Windows)
	}
	if rep.FinalJain != 1 || rep.MeanJain != 1 || rep.MinJain != 1 {
		t.Errorf("zero-length run Jain summary = %v/%v/%v, want 1/1/1 (trivially fair)",
			rep.FinalJain, rep.MeanJain, rep.MinJain)
	}
	if rep.Converged || len(rep.Episodes) != 0 {
		t.Errorf("zero-length run cannot converge or starve")
	}
}

func TestFairnessSamplerZeroThroughputGuard(t *testing.T) {
	eng := sim.NewEngine(1)
	// Two flows that never deliver a byte, on a zero-rate bottleneck: no
	// division blows up, every window is trivially fair, nothing is NaN.
	fs := NewFairnessSampler(eng, 100*time.Millisecond, time.Second, 0)
	fs.TrackFlow(1, "cubic", 0, func() int64 { return 0 }, func() uint64 { return 0 })
	fs.TrackFlow(2, "cubic", 1, func() int64 { return 0 }, func() uint64 { return 0 })
	fs.Start()
	eng.RunFor(time.Second)

	rep := fs.Report(DefaultDetector())
	if rep.Windows == 0 {
		t.Fatal("sampler never ticked")
	}
	for i, j := range rep.Jain {
		if math.IsNaN(j) || j != 1 {
			t.Fatalf("Jain[%d] = %v, want 1 (idle link is trivially fair)", i, j)
		}
	}
	for _, f := range rep.Flows {
		if f.Active {
			t.Errorf("flow %d active with zero throughput", f.ID)
		}
		for i, s := range f.Share {
			if math.IsNaN(s) || s != 0 {
				t.Fatalf("share[%d] = %v on a zero-rate bottleneck, want 0", i, s)
			}
		}
	}
	if len(rep.Episodes) != 0 {
		t.Errorf("idle flows reported starved: %+v", rep.Episodes)
	}
}

func TestFairnessSamplerStop(t *testing.T) {
	eng := sim.NewEngine(1)
	fs := NewFairnessSampler(eng, 100*time.Millisecond, 2*time.Second, 100*units.MegabitPerSec)
	fs.TrackFlow(1, "cubic", 0, func() int64 { return 0 }, func() uint64 { return 0 })
	fs.Start()
	eng.RunFor(time.Second)
	fs.Stop()
	n := len(fs.jain)
	eng.RunFor(time.Second)
	if len(fs.jain) != n {
		t.Fatal("sampler kept running after Stop")
	}
}

func TestFairnessSamplerRetxRate(t *testing.T) {
	eng := sim.NewEngine(1)
	var retx uint64
	var feed func()
	feed = func() {
		retx += 3 // 3 retransmits per 100ms = 30/s
		eng.Schedule(100*time.Millisecond, feed)
	}
	eng.Schedule(100*time.Millisecond, feed)
	fs := NewFairnessSampler(eng, 100*time.Millisecond, time.Second, 100*units.MegabitPerSec)
	fs.TrackFlow(1, "cubic", 0, func() int64 { return 0 }, func() uint64 { return retx })
	fs.Start()
	eng.RunFor(time.Second)
	rep := fs.Report(DefaultDetector())
	if len(rep.RetxRate) == 0 {
		t.Fatal("no retx windows")
	}
	// Skip the first window (event-order transient); the rest must be 30/s.
	for i, r := range rep.RetxRate[1:] {
		if math.Abs(r-30) > 1e-9 {
			t.Fatalf("retx rate[%d] = %v, want 30/s", i+1, r)
		}
	}
}
