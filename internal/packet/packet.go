// Package packet defines the unit of traffic the simulator forwards: data
// segments and ACKs, with the ECN codepoints AQMs may mark. A small free
// list keeps high-bandwidth runs from thrashing the allocator.
package packet

import (
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/units"
)

// ECN is the two-bit Explicit Congestion Notification codepoint.
type ECN uint8

// ECN codepoints per RFC 3168.
const (
	NotECT ECN = iota // endpoint does not support ECN
	ECT0              // ECN-capable transport
	ECT1
	CE // congestion experienced (set by an AQM instead of dropping)
)

// Kind discriminates data segments from pure ACKs.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	Ack
)

// FlowID identifies one TCP flow (one iperf3 stream in the paper's terms).
type FlowID uint32

// Packet is one frame in flight. Fields are plain data; ownership passes
// along the forwarding path and back to the pool on Release.
type Packet struct {
	Kind Kind
	Flow FlowID
	Size units.ByteSize // wire size including headers
	ECN  ECN

	// Data segment fields.
	Seq     int64 // first byte carried
	DataLen int64 // payload bytes
	Retrans bool  // this is a retransmission

	// ACK fields.
	CumAck    int64 // next byte expected by the receiver
	SackSeq   int64 // highest out-of-order byte seen (simplified SACK)
	AckedSeq  int64 // Seq of the segment that triggered this ACK
	EchoCE    bool  // receiver saw CE on the acked segment
	EchoSent  sim.Time
	EchoAcked int64 // DataLen of segment that triggered this ACK

	// Timestamps for delay accounting.
	SentAt    sim.Time // when the sender transmitted it
	EnqueueAt sim.Time // when it entered the current queue (CoDel sojourn)

	// Delivery-rate sampling state copied from the sender at transmit time
	// (per the BBR delivery-rate-estimation draft).
	Delivered     int64    // connection's delivered counter at send
	DeliveredTime sim.Time // when that counter was last advanced
	FirstSentTime sim.Time // send time of the first packet of this sample window
	AppLimited    bool
}

func (p *Packet) String() string {
	if p.Kind == Ack {
		return fmt.Sprintf("ack{flow=%d cum=%d}", p.Flow, p.CumAck)
	}
	return fmt.Sprintf("data{flow=%d seq=%d len=%d}", p.Flow, p.Seq, p.DataLen)
}

var pool = sync.Pool{New: func() any { return new(Packet) }}

// New fetches a zeroed packet from the free list.
func New() *Packet {
	p := pool.Get().(*Packet)
	*p = Packet{}
	return p
}

// Release returns a packet to the free list. The caller must not touch it
// afterwards.
func Release(p *Packet) {
	if p != nil {
		pool.Put(p)
	}
}

// FlowHash maps a flow ID onto nbuckets hash buckets, the way FQ-CoDel
// classifies flows. perturb decorrelates the mapping between runs.
func FlowHash(f FlowID, perturb uint64, nbuckets int) int {
	if nbuckets <= 1 {
		return 0
	}
	x := uint64(f)*0x9e3779b97f4a7c15 ^ perturb
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return int(x % uint64(nbuckets))
}
