package packet

import (
	"testing"
	"testing/quick"
)

func TestPoolReuseZeroes(t *testing.T) {
	p := New()
	p.Seq = 99
	p.Flow = 7
	p.Retrans = true
	Release(p)
	q := New()
	if q.Seq != 0 || q.Flow != 0 || q.Retrans {
		t.Fatalf("pooled packet not zeroed: %+v", q)
	}
	Release(q)
	Release(nil) // must not panic
}

func TestString(t *testing.T) {
	d := &Packet{Kind: Data, Flow: 3, Seq: 100, DataLen: 8900}
	if got := d.String(); got != "data{flow=3 seq=100 len=8900}" {
		t.Errorf("data String = %q", got)
	}
	a := &Packet{Kind: Ack, Flow: 3, CumAck: 9000}
	if got := a.String(); got != "ack{flow=3 cum=9000}" {
		t.Errorf("ack String = %q", got)
	}
}

func TestFlowHashInRange(t *testing.T) {
	f := func(flow uint32, perturb uint64, nb uint16) bool {
		n := int(nb%2048) + 1
		h := FlowHash(FlowID(flow), perturb, n)
		return h >= 0 && h < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowHashDeterministic(t *testing.T) {
	if FlowHash(5, 1, 1024) != FlowHash(5, 1, 1024) {
		t.Error("hash not deterministic")
	}
}

func TestFlowHashDisperses(t *testing.T) {
	// 500 flows into 1024 buckets should mostly avoid collisions.
	buckets := map[int]int{}
	for f := FlowID(0); f < 500; f++ {
		buckets[FlowHash(f, 42, 1024)]++
	}
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	if max > 5 {
		t.Errorf("hash badly skewed: max bucket load %d", max)
	}
	if len(buckets) < 300 {
		t.Errorf("hash collides too much: only %d distinct buckets", len(buckets))
	}
}

func TestFlowHashPerturbationChangesMapping(t *testing.T) {
	moved := 0
	for f := FlowID(0); f < 200; f++ {
		if FlowHash(f, 1, 1024) != FlowHash(f, 2, 1024) {
			moved++
		}
	}
	if moved < 150 {
		t.Errorf("perturbation barely changes mapping: %d/200 moved", moved)
	}
}

func TestFlowHashSingleBucket(t *testing.T) {
	if FlowHash(123, 9, 1) != 0 || FlowHash(123, 9, 0) != 0 {
		t.Error("degenerate bucket counts must map to 0")
	}
}

func BenchmarkPoolCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := New()
		p.Seq = int64(i)
		Release(p)
	}
}

func BenchmarkFlowHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FlowHash(FlowID(i), 42, 1024)
	}
}
