// Package paper encodes the publication's reported results — Table 3 in
// full, plus the qualitative claims of §5 — and compares a simulated sweep
// against them. cmd/report uses it to generate EXPERIMENTS.md, so the
// paper-vs-measured record always reflects an actual run.
package paper

import (
	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
)

// Table3Row is one published row of Table 3.
type Table3Row struct {
	Pairing experiment.Pairing
	AQM     aqm.Kind
	AvgPhi  float64
	AvgRR   float64
	AvgJain float64
}

// Table3 returns the paper's Table 3 exactly as printed.
func Table3() []Table3Row {
	p := func(a, b cca.Name) experiment.Pairing { return experiment.Pairing{CCA1: a, CCA2: b} }
	return []Table3Row{
		{p(cca.BBRv1, cca.BBRv1), aqm.KindFIFO, 0.986, 23.164, 0.995},
		{p(cca.BBRv1, cca.Cubic), aqm.KindFIFO, 0.997, 14.916, 0.803},
		{p(cca.BBRv2, cca.BBRv2), aqm.KindFIFO, 0.995, 1.141, 0.98},
		{p(cca.BBRv2, cca.Cubic), aqm.KindFIFO, 0.998, 1.823, 0.934},
		{p(cca.HTCP, cca.HTCP), aqm.KindFIFO, 0.999, 2.493, 1.0},
		{p(cca.HTCP, cca.Cubic), aqm.KindFIFO, 0.997, 1.624, 0.971},
		{p(cca.Reno, cca.Reno), aqm.KindFIFO, 0.997, 1.235, 0.994},
		{p(cca.Reno, cca.Cubic), aqm.KindFIFO, 0.998, 1.01, 0.847},
		{p(cca.Cubic, cca.Cubic), aqm.KindFIFO, 0.995, 1.0, 0.997},

		{p(cca.BBRv1, cca.BBRv1), aqm.KindRED, 0.938, 47.687, 0.938},
		{p(cca.BBRv1, cca.Cubic), aqm.KindRED, 0.94, 41.056, 0.522},
		{p(cca.BBRv2, cca.BBRv2), aqm.KindRED, 0.903, 4.872, 0.999},
		{p(cca.BBRv2, cca.Cubic), aqm.KindRED, 0.901, 3.675, 0.722},
		{p(cca.HTCP, cca.HTCP), aqm.KindRED, 0.794, 1.497, 0.999},
		{p(cca.HTCP, cca.Cubic), aqm.KindRED, 0.796, 1.272, 0.979},
		{p(cca.Reno, cca.Reno), aqm.KindRED, 0.738, 1.281, 1.0},
		{p(cca.Reno, cca.Cubic), aqm.KindRED, 0.766, 1.136, 1.0},
		{p(cca.Cubic, cca.Cubic), aqm.KindRED, 0.788, 1.0, 1.0},

		{p(cca.BBRv1, cca.BBRv1), aqm.KindFQCoDel, 0.971, 24.468, 1.0},
		{p(cca.BBRv1, cca.Cubic), aqm.KindFQCoDel, 0.97, 13.986, 0.994},
		{p(cca.BBRv2, cca.BBRv2), aqm.KindFQCoDel, 0.977, 4.386, 1.0},
		{p(cca.BBRv2, cca.Cubic), aqm.KindFQCoDel, 0.975, 2.312, 0.998},
		{p(cca.HTCP, cca.HTCP), aqm.KindFQCoDel, 0.969, 1.135, 1.0},
		{p(cca.HTCP, cca.Cubic), aqm.KindFQCoDel, 0.972, 1.057, 1.0},
		{p(cca.Reno, cca.Reno), aqm.KindFQCoDel, 0.94, 0.852, 1.0},
		{p(cca.Reno, cca.Cubic), aqm.KindFQCoDel, 0.96, 0.891, 0.998},
		{p(cca.Cubic, cca.Cubic), aqm.KindFQCoDel, 0.974, 1.0, 1.0},
	}
}

// FindTable3 returns the published row for a pairing×AQM, or nil.
func FindTable3(p experiment.Pairing, a aqm.Kind) *Table3Row {
	for _, r := range Table3() {
		if r.Pairing == p && r.AQM == a {
			row := r
			return &row
		}
	}
	return nil
}

// Verdict grades one claim's reproduction.
type Verdict string

// Verdict levels.
const (
	Reproduced Verdict = "REPRODUCED" // direction and rough magnitude hold
	Partial    Verdict = "PARTIAL"    // direction holds, magnitude differs
	Deviates   Verdict = "DEVIATES"   // direction differs
	NoData     Verdict = "NO DATA"    // sweep lacks the needed cells
)

// Claim is one qualitative finding of the paper, checkable against a
// summarized sweep.
type Claim struct {
	ID     string // e.g. "fig2-equilibrium"
	Source string // where the paper states it
	Text   string // the claim, paraphrased
	Check  func(s *experiment.Summary) (Verdict, string)
}
