package paper

import (
	"strings"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/units"
)

func TestTable3Complete(t *testing.T) {
	rows := Table3()
	if len(rows) != 27 {
		t.Fatalf("Table 3 has %d rows, want 27 (9 pairings × 3 AQMs)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.Pairing.String() + "/" + string(r.AQM)
		if seen[key] {
			t.Errorf("duplicate row %s", key)
		}
		seen[key] = true
		if r.AvgPhi <= 0 || r.AvgPhi > 1 {
			t.Errorf("%s: φ=%v out of range", key, r.AvgPhi)
		}
		if r.AvgJain <= 0 || r.AvgJain > 1 {
			t.Errorf("%s: J=%v out of range", key, r.AvgJain)
		}
		if r.AvgRR <= 0 {
			t.Errorf("%s: RR=%v", key, r.AvgRR)
		}
	}
	// Spot-check a few printed values.
	r := FindTable3(experiment.Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic}, aqm.KindRED)
	if r == nil || r.AvgRR != 41.056 || r.AvgJain != 0.522 {
		t.Fatalf("BBRv1-vs-CUBIC RED row: %+v", r)
	}
	if FindTable3(experiment.Pairing{CCA1: "x", CCA2: "y"}, aqm.KindFIFO) != nil {
		t.Fatal("FindTable3 should return nil for unknown pairing")
	}
}

func TestClaimsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Text == "" || c.Source == "" || c.Check == nil {
			t.Errorf("incomplete claim: %+v", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d claims encoded", len(seen))
	}
}

func TestClaimsNoDataOnEmptySweep(t *testing.T) {
	s := experiment.Summarize(nil)
	for _, c := range Claims() {
		v, _ := c.Check(s)
		if v != NoData {
			t.Errorf("claim %s on empty sweep: %s, want NO DATA", c.ID, v)
		}
	}
}

// miniSweep runs a small real sweep (100 Mbps, 3 buffers) used by the claim
// and report tests.
func miniSweep(t *testing.T) *experiment.Summary {
	t.Helper()
	var cfgs []experiment.Config
	for _, p := range experiment.PaperPairings() {
		for _, a := range aqm.Kinds() {
			for _, q := range []float64{0.5, 2, 16} {
				cfgs = append(cfgs, experiment.Config{
					Pairing: p, AQM: a, QueueBDP: q,
					Bottleneck: 100 * units.MegabitPerSec,
					Duration:   15 * time.Second, Seed: 1,
				})
			}
		}
	}
	results, err := experiment.RunAll(cfgs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return experiment.Summarize(results)
}

func TestClaimsAgainstMiniSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("mini sweep is expensive")
	}
	s := miniSweep(t)
	deviating := 0
	for _, c := range Claims() {
		v, detail := c.Check(s)
		t.Logf("%-24s %-10s %s", c.ID, v, detail)
		if v == Deviates {
			deviating++
		}
	}
	// The single-bandwidth mini sweep cannot satisfy the multi-tier claims
	// (they report NO DATA), but nothing that can be checked should flip
	// direction.
	if deviating > 1 {
		t.Errorf("%d claims deviate on the mini sweep", deviating)
	}
}

func TestReportRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("mini sweep is expensive")
	}
	s := miniSweep(t)
	md := Report(s, ReportOptions{Note: "mini sweep (tests)", IncludeFigures: true})
	for _, want := range []string{
		"# EXPERIMENTS",
		"## Qualitative findings",
		"## Table 3",
		"BBR1 vs CUBIC",
		"## Known deviations",
		"### Figure 7",
		"mini sweep (tests)",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Count(md, "REPRODUCED") < 4 {
		t.Errorf("report shows too few reproduced claims:\n%s", md[:min(2000, len(md))])
	}
}
