package paper

import (
	"fmt"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/units"
)

func pair(a, b cca.Name) experiment.Pairing { return experiment.Pairing{CCA1: a, CCA2: b} }

// lowestBW returns the smallest bandwidth present in the sweep (claims are
// evaluated there when they are bandwidth-independent — it is the tier with
// the least simulation noise).
func lowestBW(s *experiment.Summary) (units.Bandwidth, bool) {
	bws := s.Bandwidths()
	if len(bws) == 0 {
		return 0, false
	}
	return bws[0], true
}

// highestBW returns the largest bandwidth present.
func highestBW(s *experiment.Summary) (units.Bandwidth, bool) {
	bws := s.Bandwidths()
	if len(bws) == 0 {
		return 0, false
	}
	return bws[len(bws)-1], true
}

// Claims returns the paper's checkable findings in presentation order.
func Claims() []Claim {
	return []Claim{
		{
			ID:     "fig2-equilibrium",
			Source: "§5.1, Fig. 2(a)–(e)",
			Text:   "Under FIFO, BBRv1 beats CUBIC below an equilibrium buffer size and CUBIC takes over beyond it.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				mults := s.QueueMults()
				if len(mults) < 2 {
					return NoData, "need ≥2 buffer sizes"
				}
				small := s.Lookup(pair(cca.BBRv1, cca.Cubic), aqm.KindFIFO, mults[0], bw)
				large := s.Lookup(pair(cca.BBRv1, cca.Cubic), aqm.KindFIFO, mults[len(mults)-1], bw)
				if small == nil || large == nil {
					return NoData, "missing cells"
				}
				bbrLeadsSmall := small.SenderBps[0] > small.SenderBps[1]
				cubicLeadsLarge := large.SenderBps[1] > large.SenderBps[0]
				detail := fmt.Sprintf("at %v: %gxBDP %.0f/%.0f Mbps, %gxBDP %.0f/%.0f Mbps",
					bw, mults[0], small.SenderBps[0]/1e6, small.SenderBps[1]/1e6,
					mults[len(mults)-1], large.SenderBps[0]/1e6, large.SenderBps[1]/1e6)
				if bbrLeadsSmall && cubicLeadsLarge {
					if q, ok := s.EquilibriumBDP(pair(cca.BBRv1, cca.Cubic), aqm.KindFIFO, bw); ok {
						detail += fmt.Sprintf("; equilibrium at %gxBDP (paper: 2xBDP at 100 Mbps)", q)
					}
					return Reproduced, detail
				}
				if cubicLeadsLarge {
					return Partial, detail
				}
				return Deviates, detail
			},
		},
		{
			ID:     "fig2-bbr2-large-buffer",
			Source: "§5.1 \"BBRv2's takeover\"",
			Text:   "BBRv2 performs even worse than BBRv1 against CUBIC at high-BDP FIFO buffers (its inflight_hi reacts to overflow loss).",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				mults := s.QueueMults()
				q := mults[len(mults)-1]
				b1 := s.Lookup(pair(cca.BBRv1, cca.Cubic), aqm.KindFIFO, q, bw)
				b2 := s.Lookup(pair(cca.BBRv2, cca.Cubic), aqm.KindFIFO, q, bw)
				if b1 == nil || b2 == nil {
					return NoData, "missing cells"
				}
				d := fmt.Sprintf("at %v %gxBDP: BBRv1 %.0fM, BBRv2 %.0fM vs CUBIC",
					bw, q, b1.SenderBps[0]/1e6, b2.SenderBps[0]/1e6)
				if b2.SenderBps[0] <= b1.SenderBps[0] {
					return Reproduced, d
				}
				return Partial, d
			},
		},
		{
			ID:     "fig2-reno-fades",
			Source: "§5.1 \"Reno's takeover\"",
			Text:   "Reno holds near-parity with CUBIC at small FIFO buffers but loses badly as buffers grow.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				mults := s.QueueMults()
				small := s.Lookup(pair(cca.Reno, cca.Cubic), aqm.KindFIFO, mults[0], bw)
				large := s.Lookup(pair(cca.Reno, cca.Cubic), aqm.KindFIFO, mults[len(mults)-1], bw)
				if small == nil || large == nil {
					return NoData, "missing cells"
				}
				smallRatio := small.SenderBps[0] / (small.SenderBps[0] + small.SenderBps[1])
				largeRatio := large.SenderBps[0] / (large.SenderBps[0] + large.SenderBps[1])
				d := fmt.Sprintf("Reno share: %.2f at %gxBDP, %.2f at %gxBDP",
					smallRatio, mults[0], largeRatio, mults[len(mults)-1])
				switch {
				case smallRatio > 0.35 && largeRatio < smallRatio && largeRatio < 0.45:
					return Reproduced, d
				case largeRatio < smallRatio:
					return Partial, d
				default:
					return Deviates, d
				}
			},
		},
		{
			ID:     "fig4-bbr1-red-dominance",
			Source: "§5.2, Fig. 4(a)–(e)",
			Text:   "Under RED, BBRv1 consumes almost all bandwidth and CUBIC is starved, at every buffer size.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				wins, total := 0, 0
				var minShare = 1.0
				for _, q := range s.QueueMults() {
					c := s.Lookup(pair(cca.BBRv1, cca.Cubic), aqm.KindRED, q, bw)
					if c == nil {
						continue
					}
					total++
					share := c.SenderBps[0] / (c.SenderBps[0] + c.SenderBps[1])
					if share < minShare {
						minShare = share
					}
					if share > 0.55 {
						wins++
					}
				}
				if total == 0 {
					return NoData, "missing cells"
				}
				d := fmt.Sprintf("BBRv1 leads in %d/%d buffer sizes at %v (min share %.2f)", wins, total, bw, minShare)
				if wins == total {
					return Reproduced, d
				}
				if wins > total/2 {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "fig4-bbr2-red-majority",
			Source: "§5.2, Fig. 4(f)–(j)",
			Text:   "Under RED, BBRv2 consistently takes the majority of the bandwidth from CUBIC (drops stay under its 2% threshold).",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				wins, total := 0, 0
				for _, q := range s.QueueMults() {
					c := s.Lookup(pair(cca.BBRv2, cca.Cubic), aqm.KindRED, q, bw)
					if c == nil {
						continue
					}
					total++
					if c.SenderBps[0] > c.SenderBps[1] {
						wins++
					}
				}
				if total == 0 {
					return NoData, "missing cells"
				}
				d := fmt.Sprintf("BBRv2 leads in %d/%d buffer sizes at %v", wins, total, bw)
				if wins == total {
					return Reproduced, d
				}
				if wins > total/2 {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "fig4-htcp-red",
			Source: "§5.2, Fig. 4(k)–(o)",
			Text:   "Under RED, HTCP beats CUBIC regardless of buffer size.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				wins, total := 0, 0
				for _, q := range s.QueueMults() {
					c := s.Lookup(pair(cca.HTCP, cca.Cubic), aqm.KindRED, q, bw)
					if c == nil {
						continue
					}
					total++
					if c.SenderBps[0] > c.SenderBps[1] {
						wins++
					}
				}
				if total == 0 {
					return NoData, "missing cells"
				}
				d := fmt.Sprintf("HTCP leads in %d/%d buffer sizes at %v", wins, total, bw)
				if wins == total {
					return Reproduced, d
				}
				if wins > total/2 {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "fig4-reno-red-balance",
			Source: "§5.2, Fig. 4(p)–(t), Fig. 5",
			Text:   "Under RED, Reno and CUBIC achieve balanced throughput (J ≈ 1).",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				var js []float64
				for _, q := range s.QueueMults() {
					if c := s.Lookup(pair(cca.Reno, cca.Cubic), aqm.KindRED, q, bw); c != nil {
						js = append(js, c.Jain)
					}
				}
				if len(js) == 0 {
					return NoData, "missing cells"
				}
				mean := metrics.Mean(js)
				d := fmt.Sprintf("mean J = %.3f at %v (paper: 1.0)", mean, bw)
				if mean > 0.95 {
					return Reproduced, d
				}
				if mean > 0.85 {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "fig6-fqcodel-fairness",
			Source: "§5.2, Fig. 6",
			Text:   "FQ_CODEL yields near-equal shares for every pairing, inter- and intra-CCA.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				var worst = 1.0
				n := 0
				for _, p := range experiment.PaperPairings() {
					for _, q := range s.QueueMults() {
						if c := s.Lookup(p, aqm.KindFQCoDel, q, bw); c != nil {
							n++
							if c.Jain < worst {
								worst = c.Jain
							}
						}
					}
				}
				if n == 0 {
					return NoData, "missing cells"
				}
				d := fmt.Sprintf("worst J across %d cells = %.3f at %v (paper: ≈1)", n, worst, bw)
				if worst > 0.9 {
					return Reproduced, d
				}
				if worst > 0.8 {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "fig7-fifo-full",
			Source: "§5.3, Fig. 7(a)–(b)",
			Text:   "With FIFO, every CCA achieves near-full link utilization.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				var worst = 1.0
				n := 0
				for _, p := range experiment.IntraPairings() {
					if c := s.Lookup(p, aqm.KindFIFO, 2, bw); c != nil {
						n++
						if c.Utilization < worst {
							worst = c.Utilization
						}
					}
				}
				if n == 0 {
					return NoData, "missing 2xBDP cells"
				}
				d := fmt.Sprintf("worst intra-CCA φ at 2xBDP, %v = %.3f (paper: ≈0.99)", bw, worst)
				if worst > 0.9 {
					return Reproduced, d
				}
				if worst > 0.8 {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "fig7-red-lags-highbw",
			Source: "§5.3, Fig. 7(c)–(d)",
			Text:   "RED utilization lags significantly at bandwidths ≥1 Gbps.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				hi, ok := highestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				if hi < units.GigabitPerSec {
					return NoData, "sweep has no ≥1Gbps tier"
				}
				var redU, fifoU []float64
				for _, p := range experiment.IntraPairings() {
					if c := s.Lookup(p, aqm.KindRED, 2, hi); c != nil {
						redU = append(redU, c.Utilization)
					}
					if c := s.Lookup(p, aqm.KindFIFO, 2, hi); c != nil {
						fifoU = append(fifoU, c.Utilization)
					}
				}
				if len(redU) == 0 || len(fifoU) == 0 {
					return NoData, "missing cells"
				}
				mr, mf := metrics.Mean(redU), metrics.Mean(fifoU)
				d := fmt.Sprintf("at %v: mean φ RED %.3f vs FIFO %.3f", hi, mr, mf)
				if mr < mf-0.1 {
					return Reproduced, d
				}
				if mr < mf {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "fig7-fqcodel-25g",
			Source: "§5.3 / §6",
			Text:   "FQ_CODEL achieves near-full utilization except at 25 Gbps, where it falls short.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bws := s.Bandwidths()
				if len(bws) < 2 {
					return NoData, "need multiple bandwidth tiers"
				}
				lo, hi := bws[0], bws[len(bws)-1]
				if hi < 25*units.GigabitPerSec {
					return NoData, "sweep has no 25Gbps tier"
				}
				var loU, hiU []float64
				for _, p := range experiment.IntraPairings() {
					if c := s.Lookup(p, aqm.KindFQCoDel, 4, lo); c != nil {
						loU = append(loU, c.Utilization)
					}
					if c := s.Lookup(p, aqm.KindFQCoDel, 4, hi); c != nil {
						hiU = append(hiU, c.Utilization)
					}
				}
				if len(loU) == 0 || len(hiU) == 0 {
					return NoData, "missing cells"
				}
				ml, mh := metrics.Mean(loU), metrics.Mean(hiU)
				d := fmt.Sprintf("mean FQ_CODEL φ: %.3f at %v vs %.3f at %v", ml, lo, mh, hi)
				if mh < ml-0.03 {
					return Reproduced, d
				}
				if mh < ml {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "fig8-bbr1-retrans",
			Source: "§5.4, Fig. 8, Table 3",
			Text:   "BBRv1 retransmits far more than every other CCA; BBRv2 is second; Reno and CUBIC are lowest.",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				get := func(n cca.Name) float64 {
					var sum float64
					cnt := 0
					for _, a := range s.AQMs() {
						for _, q := range s.QueueMults() {
							if c := s.Lookup(pair(n, n), a, q, bw); c != nil {
								sum += c.Retransmits
								cnt++
							}
						}
					}
					if cnt == 0 {
						return -1
					}
					return sum / float64(cnt)
				}
				b1, b2, cu, re := get(cca.BBRv1), get(cca.BBRv2), get(cca.Cubic), get(cca.Reno)
				if b1 < 0 || b2 < 0 || cu < 0 || re < 0 {
					return NoData, "missing cells"
				}
				d := fmt.Sprintf("mean rtx at %v: bbr1=%.0f bbr2=%.0f cubic=%.0f reno=%.0f", bw, b1, b2, cu, re)
				if b1 > b2 && b2 > cu && b1 > 2*cu && b1 > 2*re {
					return Reproduced, d
				}
				if b1 > cu && b1 > re {
					return Partial, d
				}
				return Deviates, d
			},
		},
		{
			ID:     "red-buffer-flat",
			Source: "§5.2/§5.4",
			Text:   "RED's outcomes are insensitive to the configured buffer size (its thresholds govern, not the limit).",
			Check: func(s *experiment.Summary) (Verdict, string) {
				bw, ok := lowestBW(s)
				if !ok {
					return NoData, "empty sweep"
				}
				mults := s.QueueMults()
				if len(mults) < 2 {
					return NoData, "need ≥2 buffer sizes"
				}
				a := s.Lookup(pair(cca.Cubic, cca.Cubic), aqm.KindRED, mults[len(mults)-2], bw)
				b := s.Lookup(pair(cca.Cubic, cca.Cubic), aqm.KindRED, mults[len(mults)-1], bw)
				if a == nil || b == nil {
					return NoData, "missing cells"
				}
				diff := a.Utilization - b.Utilization
				if diff < 0 {
					diff = -diff
				}
				d := fmt.Sprintf("CUBIC φ at %gxBDP vs %gxBDP: %.3f vs %.3f",
					mults[len(mults)-2], mults[len(mults)-1], a.Utilization, b.Utilization)
				if diff < 0.05 {
					return Reproduced, d
				}
				if diff < 0.15 {
					return Partial, d
				}
				return Deviates, d
			},
		},
	}
}
