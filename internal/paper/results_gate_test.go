package paper

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
)

// TestRecordedSweepReproduces grades the checked-in sweep results (the ones
// EXPERIMENTS.md is generated from) against the paper's claims. Skipped
// when no recorded results are present (e.g. a fresh checkout) — run
// `cmd/sweep` into results/ to enable it.
func TestRecordedSweepReproduces(t *testing.T) {
	dir := filepath.Join("..", "..", "results")
	paths, _ := filepath.Glob(filepath.Join(dir, "b*.json"))
	if len(paths) == 0 {
		t.Skip("no recorded sweep results under results/")
	}
	var all []experiment.Result
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := experiment.ReadJSON(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		all = append(all, rs.Results...)
	}
	s := experiment.Summarize(all)

	reproduced, deviates := 0, 0
	for _, c := range Claims() {
		v, detail := c.Check(s)
		t.Logf("%-24s %-10s %s", c.ID, v, detail)
		switch v {
		case Reproduced:
			reproduced++
		case Deviates:
			deviates++
		}
	}
	if reproduced < 8 {
		t.Errorf("only %d claims reproduced on the recorded sweep", reproduced)
	}
	if deviates > 2 {
		t.Errorf("%d claims deviate on the recorded sweep", deviates)
	}
}
