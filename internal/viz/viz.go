// Package viz renders text plots for the figure tooling: grouped bar
// charts for per-sender throughput (the Figure 2/4 family), heat-style
// matrices for fairness indices, and sparklines for time series. Pure
// string output — every figure the paper prints can be eyeballed in a
// terminal or pasted into a markdown report.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar renders one horizontal bar of width proportional to value/max,
// annotated with the value.
func Bar(value, max float64, width int, label string) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 {
		n = int(math.Round(value / max * float64(width)))
	}
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return fmt.Sprintf("%-14s |%s%s| %s",
		truncate(label, 14), strings.Repeat("█", n), strings.Repeat(" ", width-n),
		fmtVal(value))
}

// GroupedBars renders a two-series bar chart: for each category, two bars
// (e.g. sender 1 vs sender 2 throughput per buffer size).
type GroupedBars struct {
	Title      string
	SeriesA    string // e.g. "bbr1"
	SeriesB    string // e.g. "cubic"
	Categories []string
	A, B       []float64
	Width      int // bar width in cells (default 40)
	Unit       string
}

// Render draws the chart.
func (g *GroupedBars) Render() string {
	width := g.Width
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, v := range g.A {
		max = math.Max(max, v)
	}
	for _, v := range g.B {
		max = math.Max(max, v)
	}
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "%s\n", g.Title)
	}
	for i, cat := range g.Categories {
		var va, vb float64
		if i < len(g.A) {
			va = g.A[i]
		}
		if i < len(g.B) {
			vb = g.B[i]
		}
		fmt.Fprintf(&b, "  %-8s %s %s\n", truncate(cat, 8),
			Bar(va, max, width, g.SeriesA), g.Unit)
		fmt.Fprintf(&b, "  %-8s %s %s\n", "", Bar(vb, max, width, g.SeriesB), g.Unit)
	}
	return b.String()
}

// Matrix renders a labelled value grid with a shade character per cell —
// the Jain-index "heatmap" view of Figures 3/5/6.
type Matrix struct {
	Title    string
	RowNames []string
	ColNames []string
	Values   [][]float64 // Values[row][col]; NaN = missing
	// Lo..Hi maps to the shade ramp; values outside are clamped.
	Lo, Hi float64
}

var shades = []rune{'░', '▒', '▓', '█'}

// Render draws the matrix with both shades and numbers.
func (m *Matrix) Render() string {
	var b strings.Builder
	if m.Title != "" {
		fmt.Fprintf(&b, "%s\n", m.Title)
	}
	fmt.Fprintf(&b, "  %-16s", "")
	for _, c := range m.ColNames {
		fmt.Fprintf(&b, " %9s", truncate(c, 9))
	}
	b.WriteString("\n")
	for i, r := range m.RowNames {
		fmt.Fprintf(&b, "  %-16s", truncate(r, 16))
		for j := range m.ColNames {
			v := math.NaN()
			if i < len(m.Values) && j < len(m.Values[i]) {
				v = m.Values[i][j]
			}
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %9s", "-")
				continue
			}
			fmt.Fprintf(&b, " %s %.3f", string(m.shade(v)), v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (m *Matrix) shade(v float64) rune {
	lo, hi := m.Lo, m.Hi
	if hi <= lo {
		lo, hi = 0, 1
	}
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	idx := int(t * float64(len(shades)-1))
	return shades[idx]
}

// Sparkline renders a compact one-line trend of the series.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		t := 0.0
		if hi > lo {
			t = (v - lo) / (hi - lo)
		}
		b.WriteRune(ramp[int(t*float64(len(ramp)-1))])
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

func fmtVal(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
