package viz

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBarProportions(t *testing.T) {
	full := Bar(100, 100, 20, "x")
	if strings.Count(full, "█") != 20 {
		t.Errorf("full bar: %q", full)
	}
	half := Bar(50, 100, 20, "x")
	if strings.Count(half, "█") != 10 {
		t.Errorf("half bar: %q", half)
	}
	empty := Bar(0, 100, 20, "x")
	if strings.Count(empty, "█") != 0 {
		t.Errorf("empty bar: %q", empty)
	}
}

func TestBarClamps(t *testing.T) {
	over := Bar(200, 100, 20, "x")
	if strings.Count(over, "█") != 20 {
		t.Errorf("overlong bar: %q", over)
	}
	neg := Bar(-5, 100, 20, "x")
	if strings.Count(neg, "█") != 0 {
		t.Errorf("negative bar: %q", neg)
	}
	zeromax := Bar(5, 0, 20, "x")
	if strings.Count(zeromax, "█") != 0 {
		t.Errorf("zero-max bar: %q", zeromax)
	}
}

func TestBarNeverPanics(t *testing.T) {
	f := func(v, max float64, w uint8) bool {
		if math.IsNaN(v) || math.IsNaN(max) {
			return true
		}
		_ = Bar(v, max, int(w%60), "label")
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupedBars(t *testing.T) {
	g := &GroupedBars{
		Title:      "throughput",
		SeriesA:    "bbr1",
		SeriesB:    "cubic",
		Categories: []string{"0.5xBDP", "2xBDP"},
		A:          []float64{60, 10},
		B:          []float64{30, 85},
		Width:      30,
		Unit:       "Mbps",
	}
	out := g.Render()
	if !strings.Contains(out, "throughput") || !strings.Contains(out, "bbr1") {
		t.Fatalf("render:\n%s", out)
	}
	if strings.Count(out, "Mbps") != 4 {
		t.Fatalf("want 4 bars:\n%s", out)
	}
	// Largest value (85) renders the widest bar.
	lines := strings.Split(out, "\n")
	maxBlocks, maxLine := 0, ""
	for _, l := range lines {
		if n := strings.Count(l, "█"); n > maxBlocks {
			maxBlocks, maxLine = n, l
		}
	}
	if !strings.Contains(maxLine, "85") {
		t.Fatalf("widest bar should be 85:\n%s", out)
	}
}

func TestGroupedBarsLengthMismatchSafe(t *testing.T) {
	g := &GroupedBars{
		Categories: []string{"a", "b", "c"},
		A:          []float64{1},
		B:          nil,
	}
	if out := g.Render(); out == "" {
		t.Fatal("render should still produce output")
	}
}

func TestMatrixRender(t *testing.T) {
	m := &Matrix{
		Title:    "jain",
		RowNames: []string{"bbr1-vs-cubic", "reno-vs-cubic"},
		ColNames: []string{"100Mbps", "1Gbps"},
		Values:   [][]float64{{0.52, 0.61}, {0.99, math.NaN()}},
		Lo:       0.5, Hi: 1.0,
	}
	out := m.Render()
	if !strings.Contains(out, "0.520") || !strings.Contains(out, "0.990") {
		t.Fatalf("values missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("NaN cell should render '-':\n%s", out)
	}
	// Shade for 0.99 must be darker than for 0.52.
	if m.shade(0.99) == m.shade(0.52) {
		t.Error("shades should differ across the range")
	}
}

func TestMatrixShadeClamping(t *testing.T) {
	m := &Matrix{Lo: 0, Hi: 1}
	if m.shade(-5) != shades[0] || m.shade(99) != shades[len(shades)-1] {
		t.Error("out-of-range values must clamp")
	}
	degenerate := &Matrix{Lo: 1, Hi: 1} // falls back to [0,1]
	_ = degenerate.shade(0.5)
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("len = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("ramp endpoints: %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat series should render minimum glyphs: %q", flat)
		}
	}
}

func TestTruncate(t *testing.T) {
	if truncate("short", 10) != "short" {
		t.Error("no-op truncate")
	}
	if got := truncate("averylongname", 8); len(got) > 10 { // ellipsis is 3 bytes
		t.Errorf("truncate too long: %q", got)
	}
	if truncate("ab", 1) != "a" {
		t.Error("n=1 truncate")
	}
}

func TestFmtVal(t *testing.T) {
	if fmtVal(1234) != "1234" || fmtVal(56.78) != "56.8" || fmtVal(0.123) != "0.123" {
		t.Errorf("fmtVal: %s %s %s", fmtVal(1234), fmtVal(56.78), fmtVal(0.123))
	}
}
