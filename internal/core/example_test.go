package core_test

import (
	"fmt"
	"os"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/units"
)

// The one-call entry point: compare two congestion controllers on the
// simulated FABRIC dumbbell with everything else at the paper's defaults.
func ExampleCompare() {
	res, err := core.Compare(cca.BBRv1, cca.Cubic, units.GigabitPerSec, aqm.KindFIFO, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("BBRv1 %.0f Mbps, CUBIC %.0f Mbps, J=%.2f\n",
		res.SenderMbps(0), res.SenderMbps(1), res.Jain)
}

// Full control: custom configuration plus live interval reporting and
// iperf3-style trace output.
func ExampleRunDetailed() {
	cfg := experiment.Config{
		Pairing:        experiment.Pairing{CCA1: cca.BBRv2, CCA2: cca.Cubic},
		AQM:            aqm.KindFQCoDel,
		QueueBDP:       4,
		Bottleneck:     500 * units.MegabitPerSec,
		Duration:       10 * time.Second,
		FlowsPerSender: 5,
	}
	res, err := core.RunDetailed(cfg, core.RunOptions{
		IntervalWriter: os.Stdout,       // iperf3-like per-second report
		TraceDir:       "/tmp/tcp-logs", // one JSON log per flow
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("utilization %.2f, retransmissions %d\n", res.Utilization, res.TotalRetransmits)
}
