package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/trace"
	"repro/internal/units"
)

func TestCompare(t *testing.T) {
	res, err := Compare(cca.Cubic, cca.Cubic, 100*units.MegabitPerSec, aqm.KindFIFO, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.7 {
		t.Fatalf("utilization %.3f", res.Utilization)
	}
	if res.Config.Pairing.CCA1 != cca.Cubic {
		t.Fatal("config not propagated")
	}
}

func TestRunDetailedIntervalOutput(t *testing.T) {
	var buf bytes.Buffer
	samples := 0
	res, err := RunDetailed(experiment.Config{
		Pairing:    experiment.Pairing{CCA1: cca.Reno, CCA2: cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 100 * units.MegabitPerSec,
		Duration:   5 * time.Second,
	}, RunOptions{
		IntervalWriter: &buf,
		OnSample:       func(at time.Duration, bps [2]float64) { samples++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") < 4 {
		t.Fatalf("interval report too short:\n%s", out)
	}
	if !strings.Contains(out, "sender1(reno ") || !strings.Contains(out, "Mbps") {
		t.Fatalf("interval format:\n%s", out)
	}
	if samples < 4 {
		t.Fatalf("OnSample called %d times", samples)
	}
	if res.Events == 0 {
		t.Fatal("no events recorded")
	}
}

func TestRunDetailedMatchesExperimentRun(t *testing.T) {
	cfg := experiment.Config{
		Pairing:    experiment.Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 100 * units.MegabitPerSec,
		Duration:   5 * time.Second,
		Seed:       3,
	}
	a, err := RunDetailed(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The sampler adds events but must not change outcomes.
	if a.SenderBps != b.SenderBps || a.TotalRetransmits != b.TotalRetransmits {
		t.Fatalf("RunDetailed diverges from Run: %+v vs %+v", a.SenderBps, b.SenderBps)
	}
}

func TestRunDetailedTraceFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := experiment.Config{
		Pairing:        experiment.Pairing{CCA1: cca.BBRv2, CCA2: cca.Cubic},
		AQM:            aqm.KindFQCoDel,
		QueueBDP:       2,
		Bottleneck:     100 * units.MegabitPerSec,
		Duration:       5 * time.Second,
		FlowsPerSender: 2,
	}
	if _, err := RunDetailed(cfg, RunOptions{TraceDir: dir}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 4 {
		t.Fatalf("want 4 trace files, got %v (%v)", files, err)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, err := trace.Parse(f)
	if err != nil {
		t.Fatalf("trace not parseable: %v", err)
	}
	if len(l.Intervals) < 4 {
		t.Fatalf("trace has %d intervals", len(l.Intervals))
	}
	if l.Start.Congestion != "bbr2" && l.Start.Congestion != "cubic" {
		t.Fatalf("trace CCA: %q", l.Start.Congestion)
	}
	if l.End.SumReceived.Bytes <= 0 {
		t.Fatal("trace end summary empty")
	}
}

func TestRunDetailedBadCCA(t *testing.T) {
	_, err := RunDetailed(experiment.Config{
		Pairing:    experiment.Pairing{CCA1: "bogus", CCA2: cca.Cubic},
		Bottleneck: units.GigabitPerSec,
		Duration:   time.Second,
	}, RunOptions{})
	if err == nil {
		t.Fatal("want error for unknown CCA")
	}
}
