// Package core is the high-level facade of the library: it runs fairness
// experiments on the simulated FABRIC dumbbell with live interval
// reporting (iperf3-style), per-flow JSON trace emission, and convenience
// helpers for head-to-head CCA comparisons. Lower layers remain available
// for custom setups: topo (wiring), tcp/cca (endpoints), aqm (queues),
// experiment (grids and sweeps).
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/cca"
	"repro/internal/experiment"
	"repro/internal/flows"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// RunOptions control the extra outputs of RunDetailed.
type RunOptions struct {
	// IntervalWriter, when set, receives an iperf3-like per-interval
	// report of the two senders' throughput.
	IntervalWriter io.Writer
	// TraceDir, when set, receives one iperf3-style JSON log per flow.
	TraceDir string
	// OnSample, when set, is called once per sample interval with the
	// current per-sender rates (bits/sec).
	OnSample func(at time.Duration, senderBps [2]float64)
	// TelemetryOut, when set and cfg.Trace is armed, receives the run's
	// full telemetry dump as NDJSON after the simulation completes.
	TelemetryOut io.Writer
	// OnQueueSeries, when set, is called after the run with the bottleneck
	// queue's occupancy series, gauge-sampled every SampleInterval.
	OnQueueSeries func(*metrics.QueueSeries)
}

// RunDetailed executes one experiment configuration like experiment.Run,
// additionally producing interval reports, per-flow traces and sample
// callbacks as requested.
func RunDetailed(cfg experiment.Config, opts RunOptions) (experiment.Result, error) {
	cfg = cfg.Normalize()
	start := time.Now()

	eng := sim.NewEngine(cfg.Seed)
	if cfg.MaxEvents > 0 || cfg.MaxWall > 0 {
		eng.SetBudget(cfg.MaxEvents, cfg.MaxWall)
	}
	// Attach the auditor before building the topology: ports and endpoints
	// discover it from the engine at construction time.
	var aud *audit.Auditor
	if cfg.Audit {
		aud = audit.New(cfg.ID())
		eng.SetAuditor(aud)
	}
	// Same constraint for the tracer.
	var trc *telemetry.Tracer
	if cfg.Trace {
		trc = telemetry.New(telemetry.Options{
			RingCap: cfg.TraceRingCap,
			SampleN: cfg.TraceSampleN,
		})
		eng.SetTracer(trc)
	}
	// As in experiment.Run: the trace knobs are observation-only, so scrub
	// them from the recorded config to keep traced results byte-identical
	// to untraced ones wherever they serialize.
	recCfg := cfg
	recCfg.Trace, recCfg.TraceRingCap, recCfg.TraceSampleN = false, 0, 0
	recCfg.Fairness, recCfg.FairnessWindow = false, 0
	net, err := experiment.BuildNet(eng, cfg)
	if err != nil {
		return experiment.Result{}, fmt.Errorf("core: %w", err)
	}

	type flowMeta struct {
		flow     *topo.Flow
		recorder *trace.Recorder
	}
	// Same RNG discipline as experiment.Run: elephants draw start jitter
	// from the engine RNG in construction order; the open-loop workload
	// (if any) owns per-population derived streams. Solo FCT baselines
	// attach no elephants.
	var tracked []flowMeta
	if !cfg.SoloFCT {
		for ci := 0; ci < net.NumClasses(); ci++ {
			name := experiment.ClassCCA(cfg, net.ClassSpec(ci), ci)
			for i := 0; i < experiment.ClassFlowCount(cfg, net.ClassSpec(ci)); i++ {
				cc, err := cca.New(name)
				if err != nil {
					return experiment.Result{}, fmt.Errorf("core: %w", err)
				}
				f := net.AddFlow(ci, tcp.Config{ECN: cfg.ECN, DelayedAck: cfg.DelayedAck}, cc)
				delay := workload.StartJitter(eng.RNG(), cfg.StartSpread)
				eng.Schedule(delay, f.Conn.Start)
				var rec *trace.Recorder
				if opts.TraceDir != "" {
					title := fmt.Sprintf("%s/flow%d", cfg.ID(), f.ID)
					rec = trace.NewRecorder(title, string(name), ci, uint32(f.ID), delay)
				}
				tracked = append(tracked, flowMeta{flow: f, recorder: rec})
			}
		}
	}
	var fr *flows.Runner
	if cfg.Flows != nil {
		fr, err = flows.NewRunner(eng, net, cfg.Flows, flows.Options{
			Seed:    cfg.Seed,
			Horizon: cfg.Duration,
			TCP:     tcp.Config{ECN: cfg.ECN, DelayedAck: cfg.DelayedAck},
		})
		if err != nil {
			return experiment.Result{}, fmt.Errorf("core: %w", err)
		}
		fr.Start()
	}
	fsam := experiment.AttachFairness(eng, net, cfg)

	mon := net.Monitor()

	// Periodic observation: interval report, trace records, callbacks. The
	// interval line keeps the historical two-sender shape on the dumbbell
	// and switches to one class=rate column per group on graph topologies.
	nc := net.NumClasses()
	lastClass := make([]int64, nc)
	rates := make([]float64, nc)
	var tick func()
	tick = func() {
		now := eng.Now()
		for ci := 0; ci < nc; ci++ {
			cur := net.ClassGoodput(ci)
			rates[ci] = float64(cur-lastClass[ci]) * 8 / cfg.SampleInterval.Seconds()
			lastClass[ci] = cur
		}
		if opts.IntervalWriter != nil {
			if cfg.Topology == nil {
				fmt.Fprintf(opts.IntervalWriter,
					"[%7.2fs] sender1(%-5s) %9.2f Mbps | sender2(%-5s) %9.2f Mbps | queue %6d pkts\n",
					now.Seconds(), cfg.Pairing.CCA1, rates[0]/1e6,
					cfg.Pairing.CCA2, rates[1]/1e6, mon.Queue().Len())
			} else {
				fmt.Fprintf(opts.IntervalWriter, "[%7.2fs]", now.Seconds())
				for ci := 0; ci < nc; ci++ {
					fmt.Fprintf(opts.IntervalWriter, " %s %9.2f Mbps |",
						net.ClassSpec(ci).Name, rates[ci]/1e6)
				}
				fmt.Fprintf(opts.IntervalWriter, " %s queue %6d pkts\n",
					net.MonitorName(), mon.Queue().Len())
			}
		}
		if opts.OnSample != nil {
			var pair [2]float64
			copy(pair[:], rates)
			opts.OnSample(now.Std(), pair)
		}
		for _, fm := range tracked {
			if fm.recorder != nil {
				st := fm.flow.Conn.Stats()
				fm.recorder.Observe(now.Seconds(), fm.flow.Rcv.Goodput(),
					st.Retransmits, fm.flow.Conn.Cwnd(), fm.flow.Conn.SRTT())
			}
		}
		eng.Schedule(cfg.SampleInterval, tick)
	}
	eng.Schedule(cfg.SampleInterval, tick)

	var qSeries *metrics.QueueSeries
	if opts.OnQueueSeries != nil {
		gauge := "bottleneck"
		if cfg.Topology != nil {
			gauge = net.MonitorName()
		}
		sam := metrics.NewSampler(eng, cfg.SampleInterval)
		qSeries = sam.TrackQueue(gauge, func() (int64, int) {
			q := mon.Queue()
			return int64(q.Bytes()), q.Len()
		})
		sam.Start()
	}

	eng.RunFor(cfg.Duration)
	if werr := eng.Overrun(); werr != nil {
		return experiment.Result{Config: recCfg, Error: werr.Error(), Events: eng.Executed(),
				Wall: time.Since(start)},
			fmt.Errorf("core: %s: %w", cfg.ID(), werr)
	}
	if aud != nil {
		// Settle the conservation ledger; a violation panics with its
		// structured report for the caller (CLI or runner) to surface.
		aud.Finish()
	}

	res := experiment.Result{
		Config:     recCfg,
		Flows:      len(net.Flows()),
		SimSeconds: cfg.Duration.Seconds(),
		Events:     eng.Executed(),
		Wall:       time.Since(start),
	}
	for s := 0; s < 2 && s < nc; s++ {
		g := net.ClassGoodput(s)
		res.SenderBps[s] = float64(g) * 8 / cfg.Duration.Seconds()
		res.Retransmits[s] = net.ClassRetransmits(s)
	}
	res.TotalRetransmits = net.TotalRetransmits()
	res.Jain = metrics.Jain([]float64{res.SenderBps[0], res.SenderBps[1]})
	perFlow := make([]float64, 0, len(net.Flows()))
	for _, f := range net.Flows() {
		perFlow = append(perFlow, float64(f.Rcv.Goodput()))
	}
	res.FlowJain = metrics.Jain(perFlow)
	var totalBytes int64
	for _, ci := range net.MonitorClasses() {
		totalBytes += net.ClassGoodput(ci)
	}
	res.Utilization = metrics.Utilization(totalBytes, cfg.Duration, cfg.Bottleneck)
	qs := mon.Queue().Stats()
	res.QueueDropped = qs.Dropped
	res.QueueMarked = qs.Marked
	sj := mon.Sojourn()
	res.SojournMean = sj.Mean
	res.SojournMax = sj.Max
	res.FaultLossDrops = mon.LossDrops()
	res.FaultDownDrops = mon.DownDrops()
	pb, pp := mon.PeakQueue()
	res.PeakQueueBytes = int64(pb)
	res.PeakQueuePackets = pp
	if cfg.Topology != nil {
		res.Groups = experiment.GroupResults(net, cfg)
		res.Ports = experiment.PortResults(net, cfg.Duration)
	}
	if fr != nil {
		res.FCT = experiment.FCTFromRunner(fr)
	}
	if fsam != nil {
		res.Fairness = fsam.Report(metrics.DefaultDetector())
		// The sampler's timer ticks executed on the engine; subtract them
		// so the event-count fingerprint matches an observatory-off run.
		res.Events -= fsam.Ticks()
	}
	if trc != nil {
		res.Trace = trc.Dump()
		if opts.TelemetryOut != nil {
			if err := telemetry.EncodeNDJSON(opts.TelemetryOut, res.Trace); err != nil {
				return res, fmt.Errorf("core: telemetry: %w", err)
			}
		}
	}
	if opts.OnQueueSeries != nil {
		opts.OnQueueSeries(qSeries)
	}

	if opts.TraceDir != "" {
		if err := os.MkdirAll(opts.TraceDir, 0o755); err != nil {
			return res, fmt.Errorf("core: trace dir: %w", err)
		}
		for _, fm := range tracked {
			st := fm.flow.Conn.Stats()
			l := fm.recorder.Finish(cfg.Duration.Seconds(), st.BytesSent,
				fm.flow.Rcv.Goodput(), st.Retransmits)
			name := fmt.Sprintf("%s_flow%d.json", cfg.ID(), fm.flow.ID)
			if err := writeTrace(filepath.Join(opts.TraceDir, name), l); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

func writeTrace(path string, l *trace.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: trace file: %w", err)
	}
	defer f.Close()
	if err := trace.Write(f, l); err != nil {
		return err
	}
	return f.Close()
}

// Compare runs a head-to-head between two CCAs with everything else at the
// paper's defaults and returns the result — the one-call entry point used
// by the quickstart example.
func Compare(cca1, cca2 cca.Name, bw units.Bandwidth, kind aqm.Kind, queueBDP float64) (experiment.Result, error) {
	return experiment.Run(experiment.Config{
		Pairing:    experiment.Pairing{CCA1: cca1, CCA2: cca2},
		AQM:        kind,
		QueueBDP:   queueBDP,
		Bottleneck: bw,
	})
}
