// The open-loop arrival machinery: lognormal size sampling pinned by its
// 5th/95th percentiles, and a Poisson arrival process whose schedule is a
// pure function of (seed, population index, population parameters).
package flows

import (
	"math"
	"time"

	"repro/internal/sim"
)

// z95 is the standard normal 95th-percentile quantile Φ⁻¹(0.95); the
// 5th is its negation, which is what makes the p5/p95 inversion below a
// two-equation linear system in (μ, σ).
const z95 = 1.6448536269514722

// LognormalParams inverts the (p5, p95) percentile parameterization into
// the underlying normal's (μ, σ): ln p5 = μ − z95·σ and ln p95 = μ + z95·σ,
// so μ is the mid-point of the log-percentiles (the log of the geometric
// mean) and σ their half-spread over z95. p5 == p95 yields σ = 0, a
// degenerate point mass — every flow the same size.
func LognormalParams(p5, p95 float64) (mu, sigma float64) {
	lp5, lp95 := math.Log(p5), math.Log(p95)
	return (lp5 + lp95) / 2, (lp95 - lp5) / (2 * z95)
}

// sizeSampler draws flow sizes in bytes from the population's lognormal.
type sizeSampler struct {
	mu, sigma float64
}

func newSizeSampler(p Population) sizeSampler {
	mu, sigma := LognormalParams(float64(p.SizeP5), float64(p.SizeP95))
	return sizeSampler{mu: mu, sigma: sigma}
}

// sample draws one flow size, clamped to [1, maxFlowSize] so a far-tail
// draw can neither underflow to an empty transfer nor exceed the spec cap.
// Exactly two uniform draws are consumed per sample (Box–Muller with a
// shifted u1 that can never be 0), keeping the RNG stream position a pure
// function of the sample count.
func (s sizeSampler) sample(rng *sim.RNG) int64 {
	u1 := 1 - rng.Float64() // in (0, 1]: log is finite
	u2 := rng.Float64()
	n := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	v := math.Exp(s.mu + s.sigma*n)
	if !(v > 1) { // NaN-safe clamp
		return 1
	}
	if v > float64(maxFlowSize) {
		return int64(maxFlowSize)
	}
	return int64(math.Round(v))
}

// arrivalSalt spaces the per-population RNG seeds (the splitmix64/
// golden-gamma increment, the same constant the seeder mixes with, so
// nearby experiment seeds and population indices land on uncorrelated
// streams).
const arrivalSalt = 0x9e3779b97f4a7c15

// Process generates one population's arrival schedule. Its RNG is
// derived from (seed, population index) alone — not the engine RNG — so
// arrival times and flow sizes are fixed by the experiment config,
// unperturbed by elephant jitter draws or any other simulation
// randomness, and identical across worker counts and replay.
type Process struct {
	pop     Population
	rng     *sim.RNG
	sampler sizeSampler
	next    time.Duration // absolute time of the next arrival
	n       int           // arrivals emitted so far
}

// NewProcess builds the arrival process for population index pi of a run
// seeded with seed.
func NewProcess(seed uint64, pi int, pop Population) *Process {
	p := &Process{
		pop:     pop,
		rng:     sim.NewRNG(seed + uint64(pi+1)*arrivalSalt),
		sampler: newSizeSampler(pop),
	}
	p.next = pop.Start + p.gap()
	return p
}

// gap draws one exponential inter-arrival time.
func (p *Process) gap() time.Duration {
	return time.Duration(p.rng.Exp(float64(p.pop.MeanArrival)))
}

// Next returns the absolute arrival time and size of the next flow, and
// advances the process. ok is false once the population's MaxFlows cap
// is reached (the caller stops the process at the run horizon itself).
func (p *Process) Next() (at time.Duration, size int64, ok bool) {
	if p.pop.MaxFlows > 0 && p.n >= p.pop.MaxFlows {
		return 0, 0, false
	}
	at = p.next
	size = p.sampler.sample(p.rng)
	p.next += p.gap()
	p.n++
	return at, size, true
}

// Emitted returns how many arrivals the process has generated.
func (p *Process) Emitted() int { return p.n }
