// Runner drives a Spec inside a built network: it schedules each
// population's Poisson arrivals on the engine, opens an ephemeral TCP
// flow per arrival, and on completion records the FCT into bounded
// per-size-class percentile sketches and releases the flow's resources.
package flows

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/cca"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// SizeClass buckets flows by transfer size for per-class FCT reporting.
// Thresholds are fixed (not data-dependent) so the class of a flow is a
// property of the flow alone: small ≤ 256KB, medium ≤ 4MB, large above.
type SizeClass int

const (
	ClassAll SizeClass = iota
	ClassSmall
	ClassMedium
	ClassLarge
	NumSizeClasses
)

const (
	SmallMax  = 256 * units.Kilobyte
	MediumMax = 4 * units.Megabyte
)

// ClassOf returns the size class of a transfer.
func ClassOf(size int64) SizeClass {
	switch {
	case size <= int64(SmallMax):
		return ClassSmall
	case size <= int64(MediumMax):
		return ClassMedium
	default:
		return ClassLarge
	}
}

func (c SizeClass) String() string {
	switch c {
	case ClassAll:
		return "all"
	case ClassSmall:
		return "small"
	case ClassMedium:
		return "medium"
	case ClassLarge:
		return "large"
	}
	return "invalid"
}

// Options configures a Runner.
type Options struct {
	// Seed is the experiment seed; each population derives its own RNG
	// stream from it (see Process).
	Seed uint64
	// Horizon stops scheduling arrivals at this simulation time
	// (normally the run duration). Flows opened before the horizon that
	// have not completed by the end of the run count as still open.
	Horizon time.Duration
	// TCP is the base connection config shared with the long-running
	// flows (ECN, delayed ACKs, MSS); LimitBytes is set per flow.
	TCP tcp.Config
}

// Runner owns every ephemeral flow of one run. It is engine-single-
// threaded like everything else in a simulation.
type Runner struct {
	eng  *sim.Engine
	net  *topo.Network
	aud  *audit.Auditor
	opts Options
	pops []runnerPop

	sketches   [NumSizeClasses]*metrics.FCTSketch
	classBytes [NumSizeClasses]int64
	opened     int
	completed  int
	rr         int // round-robin sender-class cursor
}

type runnerPop struct {
	proc *Process
	cc   cca.Name
}

// NewRunner builds a runner for spec on a built network. The spec is
// normalized and validated; population order fixes RNG stream derivation.
// When the engine carries an auditor, the runner feeds the dynamic-flow
// lifecycle ledger and registers an end-of-run consistency check.
func NewRunner(eng *sim.Engine, net *topo.Network, spec *Spec, opts Options) (*Runner, error) {
	n := spec.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if n.Empty() {
		return nil, fmt.Errorf("flows: empty spec")
	}
	r := &Runner{eng: eng, net: net, aud: eng.Auditor(), opts: opts}
	for i := range r.sketches {
		r.sketches[i] = metrics.NewFCTSketch()
	}
	for pi, pop := range n.Populations {
		name, err := cca.Parse(string(pop.CCA))
		if err != nil {
			return nil, fmt.Errorf("flows: %s: %w", pop.Name, err)
		}
		r.pops = append(r.pops, runnerPop{proc: NewProcess(opts.Seed, pi, pop), cc: name})
	}
	if r.aud != nil {
		r.aud.OnFinish("flows", "lifecycle", r.checkLifecycle)
	}
	return r, nil
}

// Start schedules the first arrival of every population. Must be called
// before the engine runs (arrivals are absolute times from t=0).
func (r *Runner) Start() {
	for i := range r.pops {
		r.scheduleNext(&r.pops[i])
	}
}

// scheduleNext pulls one arrival from the population's process and
// schedules it, unless the process is exhausted or past the horizon.
func (r *Runner) scheduleNext(p *runnerPop) {
	at, size, ok := p.proc.Next()
	if !ok || at >= r.opts.Horizon {
		return
	}
	delay := at - time.Duration(r.eng.Now())
	if delay < 0 {
		delay = 0 // arrival time already passed (burst): open immediately
	}
	r.eng.Schedule(delay, func() {
		r.open(p, size)
		r.scheduleNext(p)
	})
}

// open attaches one ephemeral flow and starts its transfer. Sender
// classes are assigned round-robin so multi-class topologies spread the
// background load deterministically.
func (r *Runner) open(p *runnerPop, size int64) {
	tcpCfg := r.opts.TCP
	tcpCfg.LimitBytes = size
	ci := r.rr % r.net.NumClasses()
	r.rr++
	f := r.net.AddEphemeralFlow(ci, tcpCfg, cca.MustNew(p.cc))
	r.opened++
	if r.aud != nil {
		r.aud.FlowOpened()
	}
	openedAt := r.eng.Now()
	f.Conn.Trace().FlowOpen(int64(openedAt), size)
	f.Conn.OnDone(func(*tcp.Conn) { r.complete(f, openedAt, size) })
	f.Conn.Start()
}

// complete records the finished transfer and releases the flow. Packets
// of the flow still in flight (duplicate ACKs, stale retransmits) drain
// through the demux unknown-flow path, so the conservation ledger stays
// settled.
func (r *Runner) complete(f *topo.Flow, openedAt sim.Time, size int64) {
	fct := time.Duration(r.eng.Now() - openedAt)
	r.sketches[ClassAll].Record(fct)
	r.classBytes[ClassAll] += size
	c := ClassOf(size)
	r.sketches[c].Record(fct)
	r.classBytes[c] += size
	r.completed++
	if r.aud != nil {
		r.aud.FlowClosed()
	}
	f.Conn.Trace().FlowComplete(int64(r.eng.Now()), int64(fct), size)
	r.net.ReleaseFlow(f)
}

// checkLifecycle is the end-of-run audit invariant: the runner's own
// open/complete counters must agree with the auditor's lifecycle ledger,
// and no flow may complete more than once.
func (r *Runner) checkLifecycle() error {
	if r.completed > r.opened {
		return fmt.Errorf("%d completions for %d opened flows", r.completed, r.opened)
	}
	if got, want := r.aud.FlowsOpened(), int64(r.opened); got != want {
		return fmt.Errorf("auditor saw %d flow opens, runner opened %d", got, want)
	}
	if got, want := r.aud.FlowsClosed(), int64(r.completed); got != want {
		return fmt.Errorf("auditor saw %d flow closes, runner completed %d", got, want)
	}
	return nil
}

// Opened returns how many flows arrived and were attached.
func (r *Runner) Opened() int { return r.opened }

// Completed returns how many flows finished their transfer.
func (r *Runner) Completed() int { return r.completed }

// Open returns how many flows were still transferring at the end.
func (r *Runner) Open() int { return r.opened - r.completed }

// Sketch returns the FCT sketch of one size class.
func (r *Runner) Sketch(c SizeClass) *metrics.FCTSketch { return r.sketches[c] }

// ClassBytes returns the completed payload bytes of one size class.
func (r *Runner) ClassBytes(c SizeClass) int64 { return r.classBytes[c] }
