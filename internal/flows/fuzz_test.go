package flows

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzFlowSpecParse throws arbitrary workload specs at the parser. A spec
// may be rejected, but an accepted one must be safe to hand to the
// simulator: normalization is a fixed point, every population has a
// positive sub-cap size range with p5 ≤ p95, a bounded arrival rate, and
// a known CCA, and the spec's identity survives a JSON round trip — the
// property the sweep's content-addressed result identity relies on.
func FuzzFlowSpecParse(f *testing.F) {
	for _, s := range []string{
		"",
		"mice",
		"elephants",
		"mixed",
		"mice+elephants+mice",
		"mice:arrival=100ms,p95=1MB+elephants:cca=bbr1",
		"mice:p5=64KB,p95=2MB,start=5s,max=100",
		"mice:p5=0",
		"mice:p5=0.2",
		"mice:p95=NaN",
		"mice:p95=Inf",
		"mice:p95=-Inf",
		"mice:p5=1e309",
		"mice:p95=2000GB",
		"mice:p5=4MB,p95=1MB",
		"mice:arrival=1ns",
		"mice:arrival=-1s",
		"mice:max=-3",
		"mixed:arrival=1s",
		"mice:=,=",
		"+",
		"bogus",
		`{"populations":[{"name":"web","mean_arrival_ns":100000000,"size_p5_bytes":2000,"size_p95_bytes":50000}]}`,
		`{"populations":[{"size_p5_bytes":0}]}`,
		`{"populations":[{"size_p5_bytes":-9223372036854775808,"size_p95_bytes":9223372036854775807}]}`,
		`{"populations":[{"mean_arrival_ns":1}]}`,
		`{"populations":[]}`,
		"{",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if strings.HasPrefix(strings.TrimSpace(spec), "@") {
			t.Skip("file specs read the filesystem")
		}
		s, err := Parse(spec)
		if err != nil {
			if s != nil {
				t.Fatalf("Parse(%q) returned both a spec and %v", spec, err)
			}
			return
		}
		if s == nil {
			return // blank spec
		}
		n := s.Normalize()
		if again := n.Normalize(); !reflect.DeepEqual(n, again) {
			t.Fatalf("Normalize not idempotent for %q:\n%+v\n%+v", spec, n, again)
		}
		if n.Empty() || len(n.Populations) > maxPopulations {
			t.Fatalf("Parse(%q): population count %d escaped validation", spec, len(n.Populations))
		}
		for _, p := range n.Populations {
			if p.SizeP5 < 1 || p.SizeP95 < p.SizeP5 || p.SizeP95 > maxFlowSize {
				t.Fatalf("Parse(%q): %s: size range [%d, %d] escaped validation",
					spec, p.Name, p.SizeP5, p.SizeP95)
			}
			if p.MeanArrival < minMeanArrival {
				t.Fatalf("Parse(%q): %s: arrival %v escaped validation", spec, p.Name, p.MeanArrival)
			}
			if p.Start < 0 || p.MaxFlows < 0 {
				t.Fatalf("Parse(%q): %s: negative start/max survived normalization", spec, p.Name)
			}
			// The percentile inversion must be finite for every accepted
			// population — the sampler trusts this.
			mu, sigma := LognormalParams(float64(p.SizeP5), float64(p.SizeP95))
			if math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0 {
				t.Fatalf("Parse(%q): %s: degenerate lognormal (mu=%v sigma=%v)", spec, p.Name, mu, sigma)
			}
		}
		if s.ID() != n.ID() {
			t.Fatalf("Parse(%q): identity changes under normalization: %q vs %q", spec, s.ID(), n.ID())
		}
		// Specs travel inside checkpointed configs as JSON; identity must
		// survive the round trip.
		data, jerr := json.Marshal(&n)
		if jerr != nil {
			t.Fatalf("Parse(%q): spec does not marshal: %v", spec, jerr)
		}
		rt, rerr := Parse(string(data))
		if rerr != nil {
			t.Fatalf("Parse(%q): round trip rejected %s: %v", spec, data, rerr)
		}
		if rt.ID() != s.ID() {
			t.Fatalf("Parse(%q): identity lost in JSON round trip: %q vs %q", spec, s.ID(), rt.ID())
		}
	})
}
