package flows

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cca"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestLognormalParams checks the p5/p95 → (μ, σ) inversion against hand
// computations and the defining round-trip identities.
func TestLognormalParams(t *testing.T) {
	// Degenerate point mass: p5 == p95 == e² → μ = 2, σ = 0.
	mu, sigma := LognormalParams(math.Exp(2), math.Exp(2))
	if math.Abs(mu-2) > 1e-12 || sigma != 0 {
		t.Fatalf("point mass: got mu=%v sigma=%v, want mu=2 sigma=0", mu, sigma)
	}

	// Symmetric case: p5 = e^(2−z95), p95 = e^(2+z95) → μ = 2, σ = 1.
	mu, sigma = LognormalParams(math.Exp(2-z95), math.Exp(2+z95))
	if math.Abs(mu-2) > 1e-12 || math.Abs(sigma-1) > 1e-12 {
		t.Fatalf("unit sigma: got mu=%v sigma=%v, want mu=2 sigma=1", mu, sigma)
	}

	// Round trip on the default mice parameters: the implied percentiles
	// exp(μ ± z95·σ) must recover p5 and p95.
	p5, p95 := float64(DefaultSizeP5), float64(DefaultSizeP95)
	mu, sigma = LognormalParams(p5, p95)
	if got := math.Exp(mu - z95*sigma); math.Abs(got-p5)/p5 > 1e-12 {
		t.Errorf("round-trip p5: got %v want %v", got, p5)
	}
	if got := math.Exp(mu + z95*sigma); math.Abs(got-p95)/p95 > 1e-12 {
		t.Errorf("round-trip p95: got %v want %v", got, p95)
	}
	// μ is the log of the geometric mean.
	if want := math.Log(math.Sqrt(p5 * p95)); math.Abs(mu-want) > 1e-9 {
		t.Errorf("mu: got %v want log geometric mean %v", mu, want)
	}
}

// TestSamplerMoments draws a large sample and checks that the empirical
// 5th/95th percentile mass lands where the parameterization pins it.
func TestSamplerMoments(t *testing.T) {
	pop := Population{SizeP5: DefaultSizeP5, SizeP95: DefaultSizeP95}
	s := newSizeSampler(pop)
	rng := sim.NewRNG(7)
	const n = 100000
	below, above := 0, 0
	for i := 0; i < n; i++ {
		v := s.sample(rng)
		if v < 1 {
			t.Fatalf("sample %d below 1 byte: %d", i, v)
		}
		if v > int64(maxFlowSize) {
			t.Fatalf("sample %d above cap: %d", i, v)
		}
		if v < int64(pop.SizeP5) {
			below++
		}
		if v > int64(pop.SizeP95) {
			above++
		}
	}
	if f := float64(below) / n; f < 0.04 || f > 0.06 {
		t.Errorf("mass below p5: %.4f, want ≈0.05", f)
	}
	if f := float64(above) / n; f < 0.04 || f > 0.06 {
		t.Errorf("mass above p95: %.4f, want ≈0.05", f)
	}
}

// TestSamplerPointMass: p5 == p95 pins every flow to that size.
func TestSamplerPointMass(t *testing.T) {
	s := newSizeSampler(Population{SizeP5: 1000, SizeP95: 1000})
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := s.sample(rng); v != 1000 {
			t.Fatalf("point-mass sample %d: got %d want 1000", i, v)
		}
	}
}

// TestProcessDeterminism: the arrival schedule is a pure function of
// (seed, population index, parameters) — replaying yields the identical
// sequence, and distinct population indices get uncorrelated streams.
func TestProcessDeterminism(t *testing.T) {
	pop := Population{MeanArrival: 50 * time.Millisecond,
		SizeP5: DefaultSizeP5, SizeP95: DefaultSizeP95}
	type arrival struct {
		at   time.Duration
		size int64
	}
	draw := func(seed uint64, pi int) []arrival {
		p := NewProcess(seed, pi, pop)
		var out []arrival
		for i := 0; i < 200; i++ {
			at, size, ok := p.Next()
			if !ok {
				t.Fatalf("uncapped process exhausted at %d", i)
			}
			out = append(out, arrival{at, size})
		}
		return out
	}
	a, b := draw(42, 0), draw(42, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at arrival %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := draw(42, 1)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Errorf("population streams correlated: %d/%d identical arrivals", same, len(a))
	}
	// Arrival times strictly advance (Exp never returns 0 gaps of exactly
	// zero is fine, but the sequence must be non-decreasing).
	for i := 1; i < len(a); i++ {
		if a[i].at < a[i-1].at {
			t.Fatalf("arrival %d before its predecessor: %v < %v", i, a[i].at, a[i-1].at)
		}
	}
}

// TestProcessCapAndStart: MaxFlows caps emissions and Start delays the
// first arrival.
func TestProcessCapAndStart(t *testing.T) {
	pop := Population{MeanArrival: 10 * time.Millisecond, SizeP5: 1000,
		SizeP95: 1000, Start: time.Second, MaxFlows: 3}
	p := NewProcess(9, 0, pop)
	var n int
	for {
		at, _, ok := p.Next()
		if !ok {
			break
		}
		if at < time.Second {
			t.Fatalf("arrival %d before Start: %v", n, at)
		}
		n++
		if n > 10 {
			t.Fatal("MaxFlows cap not honored")
		}
	}
	if n != 3 || p.Emitted() != 3 {
		t.Fatalf("emitted %d (Emitted()=%d), want 3", n, p.Emitted())
	}
}

func TestParsePresets(t *testing.T) {
	s, err := Parse("mice")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Populations) != 1 || s.Populations[0].Name != "mice" {
		t.Fatalf("mice preset: %+v", s)
	}
	p := s.Populations[0]
	if p.MeanArrival != DefaultMeanArrival || p.SizeP5 != DefaultSizeP5 ||
		p.SizeP95 != DefaultSizeP95 || p.CCA != cca.Cubic {
		t.Fatalf("mice defaults: %+v", p)
	}

	s, err = Parse("mixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Populations) != 2 || s.Populations[0].Name != "mice" || s.Populations[1].Name != "elephants" {
		t.Fatalf("mixed preset: %+v", s)
	}

	s, err = Parse("mice:arrival=100ms,p95=1MB,cca=bbr1,start=2s,max=50+elephants")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Populations) != 2 {
		t.Fatalf("want 2 populations, got %+v", s)
	}
	p = s.Populations[0]
	if p.MeanArrival != 100*time.Millisecond || p.SizeP95 != units.Megabyte ||
		p.CCA != cca.BBRv1 || p.Start != 2*time.Second || p.MaxFlows != 50 {
		t.Fatalf("customized mice: %+v", p)
	}
}

func TestParseJSONAndFile(t *testing.T) {
	js := `{"populations":[{"name":"web","mean_arrival_ns":100000000,"size_p5_bytes":2000,"size_p95_bytes":50000,"cca":"reno"}]}`
	s, err := Parse(js)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Populations) != 1 || s.Populations[0].Name != "web" || s.Populations[0].CCA != cca.Reno {
		t.Fatalf("inline JSON: %+v", s)
	}

	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Parse("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID() != s.ID() {
		t.Fatalf("file vs inline spec identity: %q vs %q", s2.ID(), s.ID())
	}
}

func TestParseEmpty(t *testing.T) {
	for _, in := range []string{"", "   "} {
		s, err := Parse(in)
		if err != nil || s != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", in, s, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in, wantSub string
	}{
		{"bogus", "unknown preset"},
		{"mixed:arrival=1s", "takes no arguments"},
		{"mice:weird=1", "unknown key"},
		{"mice:arrival=xyz", "bad arrival"},
		{"mice:p5=NaN", "out of range"},
		{"mice:p95=Inf", "out of range"},
		{"mice:p5=0", "out of range"},
		{"mice:p5=0.2", "out of range"},
		{"mice:p95=900TB", "bad size"},
		{"mice:p95=2000GB", "out of range"},
		{"mice:p5=4MB,p95=1MB", "below p5"},
		{"mice:arrival=1us", "below minimum"},
		{"mice+" + strings.Repeat("mice+", 16) + "mice", "populations (max"},
		{`{"populations":[]}`, "generates no flows"},
		{`{"populations":[{"size_p5_bytes":-5}]}`, "at least 1 byte"},
		{`{bad json`, "parse spec JSON"},
		{"@/nonexistent/flows.json", "read spec"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.in, err, c.wantSub)
		}
	}
}

// TestSpecID: the identifier is stable, captures every parameter, and
// distinguishes differing specs.
func TestSpecID(t *testing.T) {
	s, err := Parse("mice:arrival=100ms,start=1s,max=9")
	if err != nil {
		t.Fatal(err)
	}
	want := "mice-100ms-64.00KB-2.00MB-cubic@1sx9"
	if got := s.ID(); got != want {
		t.Fatalf("ID: got %q want %q", got, want)
	}
	var empty *Spec
	if empty.ID() != "" {
		t.Fatalf("nil spec ID: %q", empty.ID())
	}
	a, _ := Parse("mice")
	b, _ := Parse("mice:p95=1MB")
	if a.ID() == b.ID() {
		t.Fatalf("distinct specs share ID %q", a.ID())
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	s := Spec{Populations: []Population{{Start: -time.Second, MaxFlows: -1}}}
	n := s.Normalize()
	p := n.Populations[0]
	if p.Name != "pop0" || p.MeanArrival != DefaultMeanArrival ||
		p.SizeP5 != DefaultSizeP5 || p.SizeP95 != DefaultSizeP95 ||
		p.CCA != cca.Cubic || p.Start != 0 || p.MaxFlows != 0 {
		t.Fatalf("normalized population: %+v", p)
	}
}

func TestSizeClass(t *testing.T) {
	cases := []struct {
		size int64
		want SizeClass
	}{
		{1, ClassSmall},
		{int64(SmallMax), ClassSmall},
		{int64(SmallMax) + 1, ClassMedium},
		{int64(MediumMax), ClassMedium},
		{int64(MediumMax) + 1, ClassLarge},
		{1 << 40, ClassLarge},
	}
	for _, c := range cases {
		if got := ClassOf(c.size); got != c.want {
			t.Errorf("ClassOf(%d) = %v, want %v", c.size, got, c.want)
		}
	}
	names := map[SizeClass]string{ClassAll: "all", ClassSmall: "small",
		ClassMedium: "medium", ClassLarge: "large", NumSizeClasses: "invalid"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
