// Package flows implements the open-loop flow-arrival workload: named
// populations of short transfers ("mice") arriving by a Poisson process
// with lognormally distributed sizes, opened and torn down dynamically
// inside the engine while the long-running elephants hold the link. It
// follows the ccafct-style FCT methodology — mean inter-arrival and a
// size distribution pinned by its 5th/95th percentiles — so each
// CCA×AQM pairing can be scored by the flow-completion-time damage it
// inflicts on background traffic.
//
// A Spec is pure data (JSON-serializable, content-addressed into
// experiment result identity exactly like fault profiles and topologies).
// All randomness in the arrival process comes from per-population RNGs
// derived from the experiment seed — never from the engine RNG — so the
// arrival times and flow sizes are a pure function of (seed, spec),
// independent of anything else the simulation does.
package flows

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cca"
	"repro/internal/units"
)

// Population is one open-loop arrival process: flows arrive with
// exponential inter-arrival times of mean MeanArrival, each transferring
// a lognormally distributed number of bytes whose 5th and 95th
// percentiles are SizeP5 and SizeP95, under congestion control CCA.
type Population struct {
	Name        string         `json:"name"`
	MeanArrival time.Duration  `json:"mean_arrival_ns"`
	SizeP5      units.ByteSize `json:"size_p5_bytes"`
	SizeP95     units.ByteSize `json:"size_p95_bytes"`
	CCA         cca.Name       `json:"cca"`

	// Start delays the first arrival (flows never arrive before it).
	Start time.Duration `json:"start_ns,omitempty"`
	// MaxFlows caps the number of arrivals (0 = unlimited for the run).
	MaxFlows int `json:"max_flows,omitempty"`
}

// Spec is a complete open-loop workload: one or more populations sharing
// the link with the configured long-running flows.
type Spec struct {
	Populations []Population `json:"populations"`
}

// Defaults are the ccafct-style mice parameters used when a population
// leaves a field zero.
const (
	DefaultMeanArrival = 200 * time.Millisecond
	DefaultSizeP5      = 64 * units.Kilobyte
	DefaultSizeP95     = 2 * units.Megabyte
)

// maxFlowSize bounds a single transfer; hostile specs whose lognormal
// percentiles imply terabyte mice are rejected, not simulated.
const maxFlowSize = units.ByteSize(1) << 40 // 1 TiB

// maxPopulations bounds a spec; each population costs one arrival process
// and one RNG stream.
const maxPopulations = 16

// minMeanArrival bounds the arrival rate; an adversarial near-zero mean
// would schedule unbounded arrivals per simulated second.
const minMeanArrival = time.Millisecond

// Empty reports whether the spec generates no flows.
func (s *Spec) Empty() bool { return s == nil || len(s.Populations) == 0 }

// Normalize returns the effective spec: zero fields filled with the
// ccafct defaults (arrival 200ms, sizes 64KB–2MB, CCA cubic), unnamed
// populations named by position, and negative Start/MaxFlows clamped to
// zero. Population order is preserved — it is part of the workload's
// identity, since it fixes which RNG stream each population draws from.
func (s Spec) Normalize() Spec {
	pops := make([]Population, 0, len(s.Populations))
	for i, p := range s.Populations {
		if p.Name == "" {
			p.Name = fmt.Sprintf("pop%d", i)
		}
		if p.MeanArrival == 0 {
			p.MeanArrival = DefaultMeanArrival
		}
		if p.SizeP5 == 0 {
			p.SizeP5 = DefaultSizeP5
		}
		if p.SizeP95 == 0 {
			p.SizeP95 = DefaultSizeP95
		}
		if p.CCA == "" {
			p.CCA = cca.Cubic
		}
		if p.Start < 0 {
			p.Start = 0
		}
		if p.MaxFlows < 0 {
			p.MaxFlows = 0
		}
		pops = append(pops, p)
	}
	s.Populations = pops
	return s
}

// Validate rejects specs the simulator should refuse to run: zero or
// negative flow sizes, inverted percentiles, absurd sizes or arrival
// rates, and unknown congestion controllers. Call on a normalized spec.
func (s *Spec) Validate() error {
	if s.Empty() {
		return nil
	}
	if len(s.Populations) > maxPopulations {
		return fmt.Errorf("flows: %d populations (max %d)", len(s.Populations), maxPopulations)
	}
	for _, p := range s.Populations {
		if p.MeanArrival < minMeanArrival {
			return fmt.Errorf("flows: %s: mean arrival %v below minimum %v", p.Name, p.MeanArrival, minMeanArrival)
		}
		if p.SizeP5 < 1 {
			return fmt.Errorf("flows: %s: size p5 %d bytes (flows must be at least 1 byte)", p.Name, p.SizeP5)
		}
		if p.SizeP95 < p.SizeP5 {
			return fmt.Errorf("flows: %s: size p95 %v below p5 %v", p.Name, p.SizeP95, p.SizeP5)
		}
		if p.SizeP95 > maxFlowSize {
			return fmt.Errorf("flows: %s: size p95 %v exceeds the %v cap", p.Name, p.SizeP95, maxFlowSize)
		}
		if _, err := cca.Parse(string(p.CCA)); err != nil {
			return fmt.Errorf("flows: %s: %w", p.Name, err)
		}
	}
	return nil
}

// ID renders a compact, filesystem-safe identifier capturing every
// parameter of the (normalized) spec, for embedding in experiment result
// identities. An empty spec renders "".
func (s *Spec) ID() string {
	if s.Empty() {
		return ""
	}
	n := s.Normalize()
	parts := make([]string, 0, len(n.Populations))
	for _, p := range n.Populations {
		part := fmt.Sprintf("%s-%s-%s-%s-%s", p.Name, p.MeanArrival, p.SizeP5, p.SizeP95, p.CCA)
		if p.Start > 0 {
			part += "@" + p.Start.String()
		}
		if p.MaxFlows > 0 {
			part += fmt.Sprintf("x%d", p.MaxFlows)
		}
		parts = append(parts, part)
	}
	return strings.Join(parts, "+")
}

// Presets, ccafct-flavored: "mice" is the short-transfer background
// population the FCT methodology measures; "elephants" is an open-loop
// stream of bulk transfers; "mixed" is both.
func preset(name string) (Spec, bool) {
	mice := Population{Name: "mice", MeanArrival: DefaultMeanArrival,
		SizeP5: DefaultSizeP5, SizeP95: DefaultSizeP95, CCA: cca.Cubic}
	elephants := Population{Name: "elephants", MeanArrival: 2 * time.Second,
		SizeP5: 8 * units.Megabyte, SizeP95: 64 * units.Megabyte, CCA: cca.Cubic}
	switch name {
	case "mice":
		return Spec{Populations: []Population{mice}}, true
	case "elephants":
		return Spec{Populations: []Population{elephants}}, true
	case "mixed":
		return Spec{Populations: []Population{mice, elephants}}, true
	}
	return Spec{}, false
}

// Parse builds a workload spec from a CLI string. Three forms are
// accepted, mirroring faults.Parse:
//
//   - "@path" — read a JSON Spec from a file
//
//   - "{...}" — an inline JSON Spec
//
//   - preset list — "+"-separated presets, each "name" or
//     "name:key=value,key=value". Presets (one population each, except
//     mixed which adds both):
//
//     mice       arrival (200ms), p5 (64KB), p95 (2MB), cca (cubic)
//     elephants  arrival (2s), p5 (8MB), p95 (64MB), cca (cubic)
//     mixed      both of the above (no keys)
//
//     Shared keys: arrival (duration), p5/p95 (sizes like 64KB, 2MB),
//     cca, start (duration), max (arrival cap).
//
// e.g. "mice" or "mice:arrival=100ms,p95=1MB+elephants:cca=bbr1". An
// empty spec returns (nil, nil). The result is normalized and validated.
func Parse(spec string) (*Spec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("flows: read spec: %w", err)
		}
		return parseJSON(data)
	}
	if strings.HasPrefix(spec, "{") {
		return parseJSON([]byte(spec))
	}
	var s Spec
	for _, clause := range strings.Split(spec, "+") {
		if err := applyPreset(&s, strings.TrimSpace(clause)); err != nil {
			return nil, err
		}
	}
	return finish(s, spec)
}

func parseJSON(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("flows: parse spec JSON: %w", err)
	}
	return finish(s, string(data))
}

func finish(s Spec, src string) (*Spec, error) {
	n := s.Normalize()
	if n.Empty() {
		return nil, fmt.Errorf("flows: spec %q generates no flows", src)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// applyPreset parses one "name[:k=v,...]" clause into s.
func applyPreset(s *Spec, clause string) error {
	if clause == "" {
		return fmt.Errorf("flows: empty preset clause")
	}
	name, argstr, _ := strings.Cut(clause, ":")
	base, ok := preset(name)
	if !ok {
		return fmt.Errorf("flows: unknown preset %q (want mice, elephants or mixed)", name)
	}
	if argstr == "" {
		s.Populations = append(s.Populations, base.Populations...)
		return nil
	}
	if len(base.Populations) != 1 {
		return fmt.Errorf("flows: preset %q takes no arguments (customize mice/elephants individually)", name)
	}
	p := base.Populations[0]
	for _, kv := range strings.Split(argstr, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("flows: bad preset argument %q (want key=value)", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "arrival":
			p.MeanArrival, err = time.ParseDuration(v)
		case "p5":
			p.SizeP5, err = parseSize(v)
		case "p95":
			p.SizeP95, err = parseSize(v)
		case "cca":
			p.CCA, err = cca.Parse(v)
		case "start":
			p.Start, err = time.ParseDuration(v)
		case "max":
			p.MaxFlows, err = strconv.Atoi(v)
		default:
			return fmt.Errorf("flows: %s: unknown key %q", name, k)
		}
		if err != nil {
			return fmt.Errorf("flows: %s: bad %s: %w", name, k, err)
		}
	}
	s.Populations = append(s.Populations, p)
	return nil
}

// parseSize parses a byte size like "64KB", "2MB", "1.5GB" or "9000"
// (decimal units, matching units.ByteSize). NaN, infinities, fractions
// under one byte and sizes beyond the per-flow cap are rejected here so
// hostile CLI specs fail fast instead of reaching the sampler.
func parseSize(v string) (units.ByteSize, error) {
	t := strings.TrimSpace(v)
	mult := 1.0
	switch u := strings.ToUpper(t); {
	case strings.HasSuffix(u, "GB"):
		mult, t = float64(units.Gigabyte), t[:len(t)-2]
	case strings.HasSuffix(u, "MB"):
		mult, t = float64(units.Megabyte), t[:len(t)-2]
	case strings.HasSuffix(u, "KB"):
		mult, t = float64(units.Kilobyte), t[:len(t)-2]
	case strings.HasSuffix(u, "B"):
		t = t[:len(t)-1]
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", v)
	}
	b := f * mult
	if math.IsNaN(b) || math.IsInf(b, 0) || b < 1 || b > float64(maxFlowSize) {
		return 0, fmt.Errorf("size %q out of range [1B, %v]", v, maxFlowSize)
	}
	return units.ByteSize(b), nil
}
