// Package trace writes and parses iperf3-style JSON logs. The paper's
// shared dataset is a tree of iperf3 interval reports; the harness emits the
// same shape so existing parsing/plotting pipelines (and ML training jobs)
// can consume simulator output unchanged.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Interval is one periodic report, mirroring iperf3's
// intervals[].sum object.
type Interval struct {
	Start         float64 `json:"start"`           // seconds since flow start
	End           float64 `json:"end"`             //
	Seconds       float64 `json:"seconds"`         //
	Bytes         int64   `json:"bytes"`           // payload bytes this interval
	BitsPerSecond float64 `json:"bits_per_second"` //
	Retransmits   uint64  `json:"retransmits"`     //
	SndCwnd       int64   `json:"snd_cwnd"`        // bytes
	RTT           int64   `json:"rtt"`             // microseconds, like iperf3
}

// End holds the closing summary, mirroring iperf3's end.sum_sent /
// end.sum_received objects.
type End struct {
	SumSent struct {
		Seconds       float64 `json:"seconds"`
		Bytes         int64   `json:"bytes"`
		BitsPerSecond float64 `json:"bits_per_second"`
		Retransmits   uint64  `json:"retransmits"`
	} `json:"sum_sent"`
	SumReceived struct {
		Seconds       float64 `json:"seconds"`
		Bytes         int64   `json:"bytes"`
		BitsPerSecond float64 `json:"bits_per_second"`
	} `json:"sum_received"`
}

// Log is one flow's full report.
type Log struct {
	Title string `json:"title"` // e.g. "bbr1-vs-cubic/fifo/2bdp/1gbps/seed1/flow3"
	Start struct {
		Congestion string  `json:"congestion"` // CCA name
		Sender     int     `json:"sender"`     // client node 0 or 1
		FlowID     uint32  `json:"flow_id"`    //
		TestStart  float64 `json:"test_start"` // sim seconds
	} `json:"start"`
	Intervals []Interval `json:"intervals"`
	End       End        `json:"end"`
}

// Recorder accumulates a Log from periodic Observe calls.
type Recorder struct {
	log       Log
	lastBytes int64
	lastRtx   uint64
	lastAt    float64
	started   bool
}

// NewRecorder starts a log for one flow.
func NewRecorder(title, cca string, sender int, flowID uint32, startAt time.Duration) *Recorder {
	r := &Recorder{}
	r.log.Title = title
	r.log.Start.Congestion = cca
	r.log.Start.Sender = sender
	r.log.Start.FlowID = flowID
	r.log.Start.TestStart = startAt.Seconds()
	return r
}

// Observe appends an interval given current cumulative counters at simulated
// time now (seconds).
func (r *Recorder) Observe(now float64, bytes int64, retransmits uint64, cwnd int64, rtt time.Duration) {
	if !r.started {
		r.started = true
		r.lastAt = r.log.Start.TestStart
	}
	dur := now - r.lastAt
	if dur <= 0 {
		return
	}
	db := bytes - r.lastBytes
	iv := Interval{
		Start:         r.lastAt,
		End:           now,
		Seconds:       dur,
		Bytes:         db,
		BitsPerSecond: float64(db) * 8 / dur,
		Retransmits:   retransmits - r.lastRtx,
		SndCwnd:       cwnd,
		RTT:           rtt.Microseconds(),
	}
	r.log.Intervals = append(r.log.Intervals, iv)
	r.lastBytes = bytes
	r.lastRtx = retransmits
	r.lastAt = now
}

// Finish fills the end summary and returns the completed log.
func (r *Recorder) Finish(totalSeconds float64, sentBytes int64, rcvdBytes int64, retransmits uint64) *Log {
	r.log.End.SumSent.Seconds = totalSeconds
	r.log.End.SumSent.Bytes = sentBytes
	r.log.End.SumSent.Retransmits = retransmits
	if totalSeconds > 0 {
		r.log.End.SumSent.BitsPerSecond = float64(sentBytes) * 8 / totalSeconds
		r.log.End.SumReceived.BitsPerSecond = float64(rcvdBytes) * 8 / totalSeconds
	}
	r.log.End.SumReceived.Seconds = totalSeconds
	r.log.End.SumReceived.Bytes = rcvdBytes
	return &r.log
}

// Write serializes a log as indented JSON, like `iperf3 --json`.
func Write(w io.Writer, l *Log) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Parse reads one log back.
func Parse(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &l, nil
}

// MeanBps returns the mean of the interval rates (the statistic the paper's
// plots are built from).
func (l *Log) MeanBps() float64 {
	if len(l.Intervals) == 0 {
		return 0
	}
	s := 0.0
	for _, iv := range l.Intervals {
		s += iv.BitsPerSecond
	}
	return s / float64(len(l.Intervals))
}
