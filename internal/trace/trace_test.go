package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRecorderIntervals(t *testing.T) {
	r := NewRecorder("t/flow1", "cubic", 0, 1, 0)
	r.Observe(1.0, 1_000_000, 0, 100_000, 62*time.Millisecond)
	r.Observe(2.0, 2_500_000, 3, 120_000, 63*time.Millisecond)
	l := r.Finish(2.0, 2_600_000, 2_500_000, 3)

	if len(l.Intervals) != 2 {
		t.Fatalf("intervals = %d", len(l.Intervals))
	}
	iv0 := l.Intervals[0]
	if iv0.Bytes != 1_000_000 || math.Abs(iv0.BitsPerSecond-8e6) > 1 {
		t.Fatalf("interval 0: %+v", iv0)
	}
	iv1 := l.Intervals[1]
	if iv1.Bytes != 1_500_000 || iv1.Retransmits != 3 {
		t.Fatalf("interval 1: %+v", iv1)
	}
	if iv1.RTT != 63000 {
		t.Fatalf("rtt us = %d", iv1.RTT)
	}
	if l.End.SumSent.Bytes != 2_600_000 || l.End.SumReceived.Bytes != 2_500_000 {
		t.Fatalf("end: %+v", l.End)
	}
	if math.Abs(l.End.SumReceived.BitsPerSecond-1e7) > 1 {
		t.Fatalf("recv bps: %v", l.End.SumReceived.BitsPerSecond)
	}
}

func TestRecorderZeroDurationIgnored(t *testing.T) {
	r := NewRecorder("t", "reno", 1, 2, 0)
	r.Observe(1.0, 100, 0, 0, 0)
	r.Observe(1.0, 200, 0, 0, 0) // same timestamp: dropped
	l := r.Finish(1, 200, 200, 0)
	if len(l.Intervals) != 1 {
		t.Fatalf("intervals = %d", len(l.Intervals))
	}
}

func TestRecorderStartOffset(t *testing.T) {
	r := NewRecorder("t", "bbr1", 0, 3, 500*time.Millisecond)
	r.Observe(1.5, 1000, 0, 0, 0)
	l := r.Finish(1, 1000, 1000, 0)
	if l.Intervals[0].Start != 0.5 || l.Intervals[0].Seconds != 1.0 {
		t.Fatalf("offset interval: %+v", l.Intervals[0])
	}
	if l.Start.TestStart != 0.5 {
		t.Fatalf("test_start = %v", l.Start.TestStart)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	r := NewRecorder("exp/fifo/2bdp", "bbr2", 1, 7, 0)
	for i := 1; i <= 10; i++ {
		r.Observe(float64(i), int64(i)*1_000_000, uint64(i), 50_000, 62*time.Millisecond)
	}
	l := r.Finish(10, 10_500_000, 10_000_000, 10)

	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"congestion": "bbr2"`) {
		t.Error("missing CCA in JSON")
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != l.Title || len(got.Intervals) != 10 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Start.Congestion != "bbr2" || got.Start.FlowID != 7 {
		t.Fatalf("start block: %+v", got.Start)
	}
	if got.End.SumSent.Bytes != 10_500_000 {
		t.Fatalf("end block: %+v", got.End)
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse(strings.NewReader("{broken")); err == nil {
		t.Error("want parse error")
	}
}

func TestMeanBps(t *testing.T) {
	var l Log
	if l.MeanBps() != 0 {
		t.Error("empty log mean should be 0")
	}
	l.Intervals = []Interval{{BitsPerSecond: 10}, {BitsPerSecond: 20}}
	if l.MeanBps() != 15 {
		t.Errorf("mean = %v", l.MeanBps())
	}
}
