package failpoint

import (
	"testing"
	"time"
)

func TestSpecParsing(t *testing.T) {
	defer DisableAll()
	good := []string{
		"a=err",
		"a=err(disk full)",
		"a=short:7",
		"a=delay:5ms",
		"a=exit",
		"a=exit:7",
		"a=err@hit=3",
		"a=err@from=2,times=4",
		"a=err@p=0.5,seed=42",
		"a=err@arg=cubic-vs-reno",
		"a=err;b=short:0;c=delay:1us",
	}
	for _, spec := range good {
		if err := Enable(spec); err != nil {
			t.Errorf("Enable(%q): %v", spec, err)
		}
		DisableAll()
	}
	bad := []string{
		"a",            // no action
		"=err",         // no name
		"a=explode",    // unknown action
		"a=short:-1",   // negative short
		"a=delay:fast", // bad duration
		"a=err@boom",   // trigger without =
		"a=err@n=3",    // unknown trigger
		"a=err@hit=x",  // bad int
	}
	for _, spec := range bad {
		if err := Enable(spec); err == nil {
			t.Errorf("Enable(%q) accepted a bad spec", spec)
		}
		DisableAll()
	}
}

func TestInjectErrAndDisable(t *testing.T) {
	defer DisableAll()
	if err := Enable("p1=err(no space left on device)"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("p1"); err == nil || err.Error() != "no space left on device" {
		t.Fatalf("Inject(p1) = %v, want injected message", err)
	}
	if err := Inject("other"); err != nil {
		t.Fatalf("unarmed name fired: %v", err)
	}
	Disable("p1")
	if err := Inject("p1"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestHitFromTimesTriggers(t *testing.T) {
	defer DisableAll()

	// hit=3: fires exactly on the third evaluation.
	if err := Enable("h=err@hit=3"); err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	for i := 0; i < 5; i++ {
		pattern = append(pattern, Inject("h") != nil)
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("hit=3 pattern = %v, want %v", pattern, want)
		}
	}
	DisableAll()

	// from=3,times=2: fires on evaluations 3 and 4 only.
	if err := Enable("f=err@from=3,times=2"); err != nil {
		t.Fatal(err)
	}
	pattern = pattern[:0]
	for i := 0; i < 6; i++ {
		pattern = append(pattern, Inject("f") != nil)
	}
	want = []bool{false, false, true, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("from=3,times=2 pattern = %v, want %v", pattern, want)
		}
	}
}

func TestProbabilityIsDeterministic(t *testing.T) {
	defer DisableAll()
	run := func() []bool {
		if err := Enable("p=err@p=0.5,seed=7"); err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Inject("p") != nil)
		}
		DisableAll()
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at evaluation %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times; coin looks broken", fired, len(a))
	}
}

func TestArgSubstringMatch(t *testing.T) {
	defer DisableAll()
	if err := Enable("w=err@arg=cubic-vs-reno_fifo"); err != nil {
		t.Fatal(err)
	}
	if InjectCtx("w", "reno-vs-reno_fifo_2bdp_100Mbps_seed1") != nil {
		t.Fatal("fired on non-matching arg")
	}
	if InjectCtx("w", "cubic-vs-reno_fifo_2bdp_100Mbps_seed1") == nil {
		t.Fatal("did not fire on matching arg")
	}
	// Non-matching evaluations must not consume the hit counter.
	DisableAll()
	if err := Enable("w=err@arg=target,hit=1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if InjectCtx("w", "other") != nil {
			t.Fatal("fired on non-matching arg")
		}
	}
	if InjectCtx("w", "the-target-config") == nil {
		t.Fatal("hit counter consumed by non-matching evaluations")
	}
}

func TestShortWriteAndDelayActions(t *testing.T) {
	defer DisableAll()
	if err := Enable("s=short:5"); err != nil {
		t.Fatal(err)
	}
	f := Eval("s")
	if f == nil || f.ShortN != 5 || f.Err == nil {
		t.Fatalf("short:5 → %+v", f)
	}
	DisableAll()
	if err := Enable("d=delay:10ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("d"); err != nil {
		t.Fatalf("pure delay returned error %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("delay:10ms returned after %v", elapsed)
	}
}

func TestReenableResetsCounters(t *testing.T) {
	defer DisableAll()
	if err := Enable("r=err@times=1"); err != nil {
		t.Fatal(err)
	}
	if Inject("r") == nil {
		t.Fatal("first hit did not fire")
	}
	if Inject("r") != nil {
		t.Fatal("times=1 fired twice")
	}
	if err := Enable("r=err@times=1"); err != nil {
		t.Fatal(err)
	}
	if Inject("r") == nil {
		t.Fatal("re-enable did not reset the firing budget")
	}
}

// TestDisarmedZeroAlloc pins the contract the hot paths rely on: a
// disarmed hook is one atomic load and zero allocations, and even an
// armed process pays no allocation at points that are not firing.
func TestDisarmedZeroAlloc(t *testing.T) {
	DisableAll()
	if got := testing.AllocsPerRun(1000, func() {
		if Inject("checkpoint.fsync") != nil {
			t.Fatal("disarmed point fired")
		}
	}); got != 0 {
		t.Fatalf("disarmed Inject allocates %.1f/op, want 0", got)
	}
	if err := Enable("unrelated.point=err"); err != nil {
		t.Fatal(err)
	}
	defer DisableAll()
	if got := testing.AllocsPerRun(1000, func() {
		if Inject("checkpoint.fsync") != nil {
			t.Fatal("wrong point fired")
		}
	}); got != 0 {
		t.Fatalf("armed-but-miss Inject allocates %.1f/op, want 0", got)
	}
}
