// Package failpoint provides named, deterministically seeded fault
// injection points for chaos testing the storage and cluster stack.
//
// A failpoint is a named hook compiled into production code
// (fail.Inject("checkpoint.fsync") style) that does nothing until armed.
// Arming happens explicitly via Enable — typically from a -failpoints
// flag or the FAILPOINTS environment variable — with a spec of the form
//
//	name=action[@trigger,trigger,...][;name=action...]
//
// Actions:
//
//	err            inject a generic error
//	err(message)   inject an error with the given message
//	short:N        short write: the caller persists only the first N bytes,
//	               then fails (only honored by write-shaped points)
//	delay:DUR      sleep DUR (Go duration syntax) before proceeding
//	exit           exit the process (code 1)
//	exit:CODE      exit the process with CODE
//
// Triggers (all optional, comma separated):
//
//	hit=N          fire only on exactly the Nth matching evaluation
//	from=N         fire from the Nth matching evaluation onward
//	times=N        fire at most N times in total
//	p=F            fire with probability F per evaluation
//	seed=N         seed for the p= coin (default 1) — runs replay identically
//	arg=S          fire only when the EvalCtx argument contains substring S
//
// Disarmed points cost one atomic load and zero allocations, so hooks can
// stay compiled into hot paths; the repository's alloc gates pin this.
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Failure describes the fault an armed point injects on one firing.
type Failure struct {
	Err      error         // error to return to the caller (nil for pure delay)
	ShortN   int           // >= 0: persist only the first ShortN bytes before failing
	Delay    time.Duration // latency to add before returning
	Exit     bool          // terminate the process instead of returning
	ExitCode int           // process exit code when Exit is set
}

// Sleep applies the failure's latency, if any. Safe on a nil receiver.
func (f *Failure) Sleep() {
	if f != nil && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}

// apply sleeps, honors exit mode, and returns the injected error.
func (f *Failure) apply() error {
	f.Sleep()
	if f.Exit {
		os.Exit(f.ExitCode)
	}
	return f.Err
}

type point struct {
	action Failure
	arg    string // substring the EvalCtx argument must contain ("" = any)
	hit    int    // fire only on exactly this matching evaluation (0 = any)
	from   int    // fire from this matching evaluation onward (0 = start)
	times  int    // maximum firings (< 0 = unlimited)
	p      float64
	rng    *rand.Rand
	count  int // matching evaluations so far
	fired  int
}

var (
	// armed is the fast-path gate: false means no point is registered and
	// every Eval returns nil after a single atomic load.
	armed  atomic.Bool
	mu     sync.Mutex
	points = map[string]*point{}
)

// Enable parses and arms one or more failpoint specs (see package doc).
// Re-enabling a name replaces its previous spec and resets its counters.
func Enable(specs string) error {
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, rest, ok := strings.Cut(spec, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || rest == "" {
			return fmt.Errorf("failpoint: bad spec %q (want name=action[@triggers])", spec)
		}
		actionStr, trigStr, hasTrig := strings.Cut(rest, "@")
		pt, err := parseAction(actionStr)
		if err != nil {
			return fmt.Errorf("failpoint: %s: %w", name, err)
		}
		seed := int64(1)
		if hasTrig {
			for _, trig := range strings.Split(trigStr, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(trig), "=")
				if !ok {
					return fmt.Errorf("failpoint: %s: bad trigger %q", name, trig)
				}
				switch k {
				case "hit":
					pt.hit, err = strconv.Atoi(v)
				case "from":
					pt.from, err = strconv.Atoi(v)
				case "times":
					pt.times, err = strconv.Atoi(v)
				case "p":
					pt.p, err = strconv.ParseFloat(v, 64)
				case "seed":
					seed, err = strconv.ParseInt(v, 10, 64)
				case "arg":
					pt.arg = v
				default:
					return fmt.Errorf("failpoint: %s: unknown trigger %q", name, k)
				}
				if err != nil {
					return fmt.Errorf("failpoint: %s: trigger %q: %w", name, trig, err)
				}
			}
		}
		pt.rng = rand.New(rand.NewSource(seed))
		mu.Lock()
		points[name] = pt
		armed.Store(true)
		mu.Unlock()
	}
	return nil
}

func parseAction(s string) (*point, error) {
	pt := &point{times: -1}
	pt.action.ShortN = -1
	switch {
	case s == "err":
		pt.action.Err = errors.New("failpoint: injected error")
	case strings.HasPrefix(s, "err(") && strings.HasSuffix(s, ")"):
		pt.action.Err = errors.New(s[len("err(") : len(s)-1])
	case strings.HasPrefix(s, "short:"):
		n, err := strconv.Atoi(s[len("short:"):])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad short action %q", s)
		}
		pt.action.ShortN = n
		pt.action.Err = fmt.Errorf("failpoint: injected short write (%d bytes)", n)
	case strings.HasPrefix(s, "delay:"):
		d, err := time.ParseDuration(s[len("delay:"):])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad delay action %q", s)
		}
		pt.action.Delay = d
	case s == "exit":
		pt.action.Exit = true
		pt.action.ExitCode = 1
	case strings.HasPrefix(s, "exit:"):
		code, err := strconv.Atoi(s[len("exit:"):])
		if err != nil {
			return nil, fmt.Errorf("bad exit action %q", s)
		}
		pt.action.Exit = true
		pt.action.ExitCode = code
	default:
		return nil, fmt.Errorf("unknown action %q", s)
	}
	return pt, nil
}

// Disable disarms one named point.
func Disable(name string) {
	mu.Lock()
	delete(points, name)
	armed.Store(len(points) > 0)
	mu.Unlock()
}

// DisableAll disarms every point. Tests defer this.
func DisableAll() {
	mu.Lock()
	points = map[string]*point{}
	armed.Store(false)
	mu.Unlock()
}

// List returns the armed point names, for diagnostics.
func List() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	return out
}

// Eval reports whether the named point fires on this hit, returning the
// failure to inject or nil. Disarmed cost: one atomic load, no allocation.
func Eval(name string) *Failure {
	if !armed.Load() {
		return nil
	}
	return evalSlow(name, "")
}

// EvalCtx is Eval with a caller-supplied argument (e.g. a config ID or RPC
// op name) matched against the point's arg= trigger.
func EvalCtx(name, arg string) *Failure {
	if !armed.Load() {
		return nil
	}
	return evalSlow(name, arg)
}

func evalSlow(name, arg string) *Failure {
	mu.Lock()
	defer mu.Unlock()
	pt := points[name]
	if pt == nil {
		return nil
	}
	if pt.arg != "" && !strings.Contains(arg, pt.arg) {
		return nil
	}
	pt.count++
	if pt.hit != 0 && pt.count != pt.hit {
		return nil
	}
	if pt.from != 0 && pt.count < pt.from {
		return nil
	}
	if pt.times >= 0 && pt.fired >= pt.times {
		return nil
	}
	if pt.p > 0 && pt.p < 1 && pt.rng.Float64() >= pt.p {
		return nil
	}
	pt.fired++
	f := pt.action
	return &f
}

// Inject evaluates the named point and applies its failure: sleeps the
// configured latency, exits the process for exit-mode points, and returns
// the configured error. Nil when disarmed or not firing.
func Inject(name string) error {
	f := Eval(name)
	if f == nil {
		return nil
	}
	return f.apply()
}

// InjectCtx is Inject with an EvalCtx argument.
func InjectCtx(name, arg string) error {
	f := EvalCtx(name, arg)
	if f == nil {
		return nil
	}
	return f.apply()
}
