package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseNDJSON drives the strict NDJSON parser with arbitrary input.
// Properties:
//
//  1. never panics, never hangs (the scanner's buffer is bounded);
//  2. anything it accepts re-encodes and re-parses to the same Dump
//     (accept ⇒ fixed point), so the parser cannot launder a malformed
//     trace into something the encoder would not produce.
func FuzzParseNDJSON(f *testing.F) {
	f.Add(`{"v":1,"states":[]}`)
	f.Add("{\"v\":1,\"states\":[\"startup\",\"drain\"]}\n" +
		"{\"ring\":\"flow:1\",\"kind\":\"flow\",\"label\":\"bbr1\",\"cap\":8,\"sample_n\":1,\"total\":2,\"dropped\":0}\n" +
		"{\"r\":\"flow:1\",\"t\":1000,\"ev\":\"cwnd\",\"flow\":1,\"a\":14480,\"b\":99}\n" +
		"{\"r\":\"flow:1\",\"t\":2000,\"ev\":\"cca_state\",\"flow\":1,\"a\":0,\"b\":1}")
	f.Add("{\"v\":1,\"states\":[]}\n" +
		"{\"ring\":\"port:r1->r2\",\"kind\":\"port\",\"cap\":4,\"sample_n\":2,\"total\":9,\"dropped\":5}\n" +
		"{\"r\":\"port:r1->r2\",\"t\":5,\"ev\":\"drop\",\"aux\":\"red_early\",\"flow\":2,\"a\":1514,\"b\":0}\n" +
		"{\"r\":\"port:r1->r2\",\"t\":6,\"ev\":\"fault\",\"aux\":\"down\",\"flow\":0,\"a\":0,\"b\":3}")
	f.Add(`{"v":2,"states":[]}`)
	f.Add("{\"v\":1,\"states\":[]}\n{\"r\":\"ghost\",\"t\":1,\"ev\":\"cwnd\",\"flow\":1,\"a\":0,\"b\":0}")
	f.Add("not json at all")

	f.Fuzz(func(t *testing.T, in string) {
		d, err := ParseNDJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeNDJSON(&buf, d); err != nil {
			t.Fatalf("accepted dump failed to re-encode: %v", err)
		}
		d2, err := ParseNDJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded dump failed to re-parse: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("parse∘encode not a fixed point:\nfirst  %+v\nsecond %+v", d, d2)
		}
	})
}
