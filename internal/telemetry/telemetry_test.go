package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// buildDump exercises every event kind, both ring kinds, state interning,
// and ring wraparound — the canonical fixture the codec tests round-trip.
func buildDump(t *testing.T) (*Tracer, *Dump) {
	t.Helper()
	tr := New(Options{RingCap: 8, SampleN: 1, FlightTail: 4})
	f1 := tr.Flow(1, "bbr1")
	f2 := tr.Flow(2, "cubic")
	pt := tr.Port("r1->r2")

	f1.CCAState(0, "startup")
	f1.Cwnd(1_000, 14480, 1<<30)
	f1.Pacing(1_000, 250_000_000)
	f1.RTT(2_000, 62_000_000, 62_500_000)
	f1.CCAState(3_000, "drain")
	f1.CCAState(4_000, "probe_bw")
	f1.InflightHi(5_000, 90_000, 120_000)
	f1.RTO(6_000, 250_000_000, 2)

	f2.CCAState(0, "slow_start")
	f2.Cwnd(1_500, 29000, 1<<30)
	f2.Cwnd(1_500, 29000, 1<<30) // dedup: must not produce a second event

	pt.Enqueue(1_000, 1, 1514, 1)
	pt.Enqueue(1_100, 2, 3028, 2)
	pt.Dequeue(1_200, 1, 1514, 200)
	pt.Drop(1_300, 2, DropTail, 1514, 3028)
	pt.Mark(1_400, 1, MarkRED, 1514, 1514)
	pt.Fault(2_000, FaultDown, 0, 3)
	pt.Fault(2_500, FaultUp, 0, 0)

	return tr, tr.Dump()
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Options{RingCap: 4})
	f := tr.Flow(7, "reno")
	for i := int64(1); i <= 10; i++ {
		f.Cwnd(i, i*100, 1)
	}
	d := tr.Dump()
	r := d.Rings[0]
	if r.Total != 10 || r.Dropped != 6 || len(r.Events) != 4 {
		t.Fatalf("ring accounting: total=%d dropped=%d len=%d, want 10/6/4",
			r.Total, r.Dropped, len(r.Events))
	}
	// Oldest-first snapshot of the surviving window.
	for i, ev := range r.Events {
		if want := int64(7+i) * 100; ev.A != want {
			t.Fatalf("event %d: cwnd=%d, want %d", i, ev.A, want)
		}
	}
}

func TestSamplingKeepsMandatoryKinds(t *testing.T) {
	tr := New(Options{RingCap: 1024, SampleN: 10})
	f := tr.Flow(1, "cubic")
	p := tr.Port("q")
	for i := int64(0); i < 100; i++ {
		f.Cwnd(i, 1000+i, 1) // all distinct: dedup never fires
		p.Enqueue(i, 1, 1514*(i%3+1), i%3+1)
	}
	p.Drop(200, 1, DropCoDel, 1514, 0)
	f.RTO(201, 1_000_000, 1)
	f.CCAState(202, "recovery")

	d := tr.Dump()
	counts := map[Kind]int{}
	for _, r := range d.Rings {
		for _, ev := range r.Events {
			counts[ev.Kind]++
		}
	}
	if counts[KindCwnd] != 10 {
		t.Errorf("sampled cwnd events = %d, want 10 (1-in-10 of 100)", counts[KindCwnd])
	}
	if counts[KindDrop] != 1 || counts[KindRTO] != 1 || counts[KindCCAState] != 1 {
		t.Errorf("mandatory kinds decimated: drop=%d rto=%d state=%d, want 1 each",
			counts[KindDrop], counts[KindRTO], counts[KindCCAState])
	}
	if counts[KindHiWater] == 0 {
		t.Errorf("high-watermark events missing under sampling")
	}
}

func TestCCAStateInterningAndDedup(t *testing.T) {
	tr := New(Options{})
	f := tr.Flow(1, "bbr2")
	f.CCAState(0, "startup")
	f.CCAState(1, "startup") // unchanged: no event
	f.CCAState(2, "probe_bw:up")
	f.CCAState(3, "startup") // revisit: re-uses the interned code
	d := tr.Dump()
	if !reflect.DeepEqual(d.States, []string{"startup", "probe_bw:up"}) {
		t.Fatalf("state table = %v", d.States)
	}
	evs := d.Rings[0].Events
	if len(evs) != 3 {
		t.Fatalf("got %d state events, want 3: %v", len(evs), evs)
	}
	// First transition comes from code -1 ("no state yet").
	if evs[0].A != -1 || evs[0].B != 0 || evs[1].B != 1 || evs[2].B != 0 {
		t.Fatalf("transition codes wrong: %v", evs)
	}
	if tr.StateName(evs[1].B) != "probe_bw:up" {
		t.Fatalf("StateName(%d) = %q", evs[1].B, tr.StateName(evs[1].B))
	}
}

func TestNilTracersAreNoOps(t *testing.T) {
	var f *FlowTracer
	var p *PortTracer
	// Must not panic; exercised exactly as the gated-but-unchecked sites do.
	f.Cwnd(1, 2, 3)
	f.Pacing(1, 2)
	f.CCAState(1, "x")
	f.InflightHi(1, 2, 3)
	f.RTT(1, 2, 3)
	f.RTO(1, 2, 3)
	p.Enqueue(1, 1, 2, 3)
	p.Dequeue(1, 1, 2, 3)
	p.Drop(1, 1, DropTail, 2, 3)
	p.Mark(1, 1, MarkRED, 2, 3)
	p.Fault(1, FaultDown, 0, 0)
	if b, k := p.Peak(); b != 0 || k != 0 {
		t.Fatal("nil PortTracer Peak not zero")
	}
}

// TestNDJSONGoldenRoundTrip is the satellite's schema contract: encode →
// parse → deep-equal, over a dump that covers every kind, aux, both ring
// kinds, and a wrapped ring.
func TestNDJSONGoldenRoundTrip(t *testing.T) {
	_, d := buildDump(t)
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, d); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := ParseNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\nencoded:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip not identity:\nwant %+v\ngot  %+v\nencoded:\n%s", d, got, buf.String())
	}
	// Schema stability: field order and names are part of the contract.
	first, _, _ := strings.Cut(buf.String(), "\n")
	if first != `{"v":1,"states":["startup","drain","probe_bw","slow_start"]}` {
		t.Fatalf("header line changed: %s", first)
	}
	if !strings.Contains(buf.String(), `"ev":"drop","aux":"tail"`) {
		t.Fatalf("drop reason not serialized:\n%s", buf.String())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	_, d := buildDump(t)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, d); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := ParseBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("binary round trip not identity:\nwant %+v\ngot  %+v", d, got)
	}
	var nd bytes.Buffer
	EncodeNDJSON(&nd, d)
	if buf.Len() >= nd.Len() {
		t.Errorf("binary (%d bytes) not denser than NDJSON (%d bytes)", buf.Len(), nd.Len())
	}
}

func TestParseNDJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no header":      `{"ring":"flow:1","kind":"flow","cap":4,"sample_n":1,"total":0,"dropped":0}`,
		"bad version":    `{"v":2,"states":[]}`,
		"unknown kind":   "{\"v\":1,\"states\":[]}\n{\"ring\":\"x\",\"kind\":\"flow\",\"cap\":1,\"sample_n\":1,\"total\":1,\"dropped\":0}\n{\"r\":\"x\",\"t\":1,\"ev\":\"warp\",\"flow\":1,\"a\":0,\"b\":0}",
		"unknown aux":    "{\"v\":1,\"states\":[]}\n{\"ring\":\"x\",\"kind\":\"flow\",\"cap\":1,\"sample_n\":1,\"total\":1,\"dropped\":0}\n{\"r\":\"x\",\"t\":1,\"ev\":\"drop\",\"aux\":\"gremlin\",\"flow\":1,\"a\":0,\"b\":0}",
		"orphan event":   "{\"v\":1,\"states\":[]}\n{\"r\":\"ghost\",\"t\":1,\"ev\":\"cwnd\",\"flow\":1,\"a\":0,\"b\":0}",
		"duplicate ring": "{\"v\":1,\"states\":[]}\n{\"ring\":\"x\",\"kind\":\"flow\",\"cap\":1,\"sample_n\":1,\"total\":0,\"dropped\":0}\n{\"ring\":\"x\",\"kind\":\"flow\",\"cap\":1,\"sample_n\":1,\"total\":0,\"dropped\":0}",
		"overfull ring":  "{\"v\":1,\"states\":[]}\n{\"ring\":\"x\",\"kind\":\"flow\",\"cap\":1,\"sample_n\":1,\"total\":0,\"dropped\":0}\n{\"r\":\"x\",\"t\":1,\"ev\":\"cwnd\",\"flow\":1,\"a\":0,\"b\":0}",
		"not json":       "{\"v\":1,\"states\":[]}\nwat",
		"bad ring kind":  "{\"v\":1,\"states\":[]}\n{\"ring\":\"x\",\"kind\":\"queue\",\"cap\":1,\"sample_n\":1,\"total\":0,\"dropped\":0}",
	}
	for name, in := range cases {
		if _, err := ParseNDJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted malformed input", name)
		}
	}
}

func TestTailNDJSONWindowsEveryRing(t *testing.T) {
	tr := New(Options{RingCap: 64, FlightTail: 3})
	f := tr.Flow(1, "htcp")
	p := tr.Port("r1->r2")
	for i := int64(0); i < 20; i++ {
		f.Cwnd(i, 100+i, 1)
		p.Enqueue(i, 1, 1514, 1)
	}
	d, err := ParseNDJSON(strings.NewReader(tr.TailNDJSON(0)))
	if err != nil {
		t.Fatalf("tail dump does not parse: %v", err)
	}
	for _, r := range d.Rings {
		if len(r.Events) > 3 {
			t.Errorf("ring %s tail has %d events, want <= FlightTail=3", r.Name, len(r.Events))
		}
		if len(r.Events) == 0 {
			t.Errorf("ring %s tail empty", r.Name)
		}
		// The window keeps the *latest* events.
		if last := r.Events[len(r.Events)-1].At; last != 19 {
			t.Errorf("ring %s tail ends at t=%d, want 19", r.Name, last)
		}
	}
}

func TestDumpPortOrderIsStable(t *testing.T) {
	tr := New(Options{})
	tr.Port("z-last")
	tr.Port("a-first")
	tr.Flow(3, "reno")
	d := tr.Dump()
	var names []string
	for _, r := range d.Rings {
		names = append(names, r.Name)
	}
	want := []string{"flow:3", "port:a-first", "port:z-last"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("ring order = %v, want %v", names, want)
	}
}
