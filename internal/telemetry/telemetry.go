// Package telemetry is the simulator's flight recorder: a ring-buffer
// event tracer threaded through sim, tcp, cca, netem, and aqm.
//
// Design constraints, in priority order:
//
//  1. Free when disabled. Every producer holds a *FlowTracer / *PortTracer
//     that is nil when tracing is off, and every emission site is gated on
//     that one nil check — no allocation, no branch beyond the check, and
//     (proven by the alloc guard) no change to the simulation's allocation
//     profile or results.
//  2. Bounded when enabled. All storage is preallocated at attach time:
//     each flow and each port writes typed 32-byte events into its own
//     fixed-capacity ring, overwriting the oldest once full. Steady-state
//     tracing therefore allocates nothing per packet; memory is
//     rings × capacity × 32 bytes, chosen up front.
//  3. Diagnosable after the fact. Rings carry enough (total count, dropped
//     count, sampling factor) to interpret a partial window, and the whole
//     tracer serializes to NDJSON or a compact binary form (codec.go) for
//     cmd/timeline and the sweepd trace endpoint. When the invariant
//     auditor raises a Violation, the last FlightTail events of every ring
//     are dumped alongside the structured report.
//
// The package is a leaf: it imports nothing from the repo (times are int64
// nanoseconds mirroring sim.Time, flow IDs are uint32 mirroring
// packet.FlowID), so any layer may depend on it without cycles.
package telemetry

import (
	"sort"
	"strconv"
)

// Kind is the event type. A and B are kind-specific payloads; Aux refines
// drop/mark/fault events with a per-discipline reason.
type Kind uint8

const (
	KindNone       Kind = iota
	KindCwnd            // A=cwnd bytes, B=ssthresh bytes
	KindPacing          // A=pacing rate, bits/s
	KindCCAState        // A=previous state code, B=new state code (index into Dump.States)
	KindInflightHi      // A=new inflight_hi bytes, B=previous inflight_hi bytes
	KindRTT             // A=sample ns, B=smoothed RTT ns
	KindRTO             // A=RTO interval ns, B=consecutive backoff count
	KindEnqueue         // A=queue bytes after, B=queue packets after
	KindDequeue         // A=queue bytes after, B=sojourn ns
	KindDrop            // Aux=reason, A=packet bytes, B=queue bytes at drop
	KindMark            // Aux=reason (ECN), A=packet bytes, B=queue bytes at mark
	KindHiWater         // A=queue bytes high-watermark, B=queue packets high-watermark
	KindFault           // Aux=fault kind, A=value (rate bps, delay ns), B=packets drained
	KindFlowOpen        // A=flow size bytes (open-loop workload arrival)
	KindFlowDone        // A=completion time ns, B=flow size bytes
	kindCount
)

var kindNames = [kindCount]string{
	KindNone:       "none",
	KindCwnd:       "cwnd",
	KindPacing:     "pacing",
	KindCCAState:   "cca_state",
	KindInflightHi: "inflight_hi",
	KindRTT:        "rtt",
	KindRTO:        "rto",
	KindEnqueue:    "enq",
	KindDequeue:    "deq",
	KindDrop:       "drop",
	KindMark:       "mark",
	KindHiWater:    "hiwater",
	KindFault:      "fault",
	KindFlowOpen:   "flow_open",
	KindFlowDone:   "flow_done",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Aux is the reason taxonomy for drop, mark, and fault events. Drop reasons
// are per-discipline: a FIFO tail drop, a RED probabilistic early drop, and
// a CoDel control-law drop are different mechanisms in the paper's fairness
// story and must stay distinguishable in the trace.
type Aux uint8

const (
	AuxNone       Aux = iota
	DropTail          // FIFO (and RED hard-limit) buffer overflow
	DropREDEarly      // RED probabilistic early drop (pa lottery)
	DropREDForced     // RED forced drop (avg above max threshold)
	DropCoDel         // CoDel control-law drop at dequeue
	DropOverlimit     // FQ-CoDel fat-flow eviction / CoDel door drop
	DropLinkDown      // carrier down: arrival or drain during a flap
	DropLoss          // injected stochastic loss (GE chain or uniform)
	MarkRED           // RED ECN mark instead of early drop
	MarkCoDel         // CoDel/FQ-CoDel ECN mark instead of drop
	FaultDown         // carrier went down
	FaultUp           // carrier restored
	FaultRate         // bottleneck rate step (A = new bps)
	FaultDelay        // one-way delay step (A = new ns)
	auxCount
)

var auxNames = [auxCount]string{
	AuxNone:       "",
	DropTail:      "tail",
	DropREDEarly:  "red_early",
	DropREDForced: "red_forced",
	DropCoDel:     "codel",
	DropOverlimit: "overlimit",
	DropLinkDown:  "link_down",
	DropLoss:      "loss",
	MarkRED:       "red_mark",
	MarkCoDel:     "codel_mark",
	FaultDown:     "down",
	FaultUp:       "up",
	FaultRate:     "rate",
	FaultDelay:    "delay",
}

func (a Aux) String() string {
	if int(a) < len(auxNames) {
		return auxNames[a]
	}
	return "invalid"
}

// Event is one trace record: 32 bytes, fixed layout, no pointers — a ring
// of them is a single allocation the GC never scans.
type Event struct {
	At   int64 // simulation time, nanoseconds
	A, B int64 // kind-specific payload
	Flow uint32
	Kind Kind
	Aux  Aux
}

// ring is a fixed-capacity overwrite-oldest event buffer.
type ring struct {
	ev    []Event
	total uint64 // events ever written; ev[total%cap] is the next slot
}

func (r *ring) put(e Event) {
	r.ev[r.total%uint64(len(r.ev))] = e
	r.total++
}

// snapshot appends the ring's contents, oldest first, to buf.
func (r *ring) snapshot(buf []Event) []Event {
	n := uint64(len(r.ev))
	if r.total < n {
		n = r.total
	}
	for i := r.total - n; i < r.total; i++ {
		buf = append(buf, r.ev[i%uint64(len(r.ev))])
	}
	return buf
}

// Options size the tracer. The zero value is usable: defaults are applied
// by New.
type Options struct {
	// RingCap is the per-flow and per-port ring capacity in events
	// (default 4096; 32 bytes each, so the default ring is 128 KiB).
	RingCap int
	// SampleN records 1 in N high-rate events (cwnd/pacing/RTT updates,
	// enqueues, dequeues). Default 1 = full fidelity. Drops, marks, CCA
	// state transitions, inflight_hi moves, RTOs, high-watermarks, and
	// fault transitions are always recorded regardless of SampleN.
	SampleN int
	// FlightTail is how many trailing events per ring a flight-recorder
	// dump (TailNDJSON) includes when the auditor raises a Violation
	// (default 64).
	FlightTail int
}

func (o Options) withDefaults() Options {
	if o.RingCap <= 0 {
		o.RingCap = 4096
	}
	if o.SampleN <= 0 {
		o.SampleN = 1
	}
	if o.FlightTail <= 0 {
		o.FlightTail = 64
	}
	return o
}

// Tracer owns the per-flow and per-port rings for one simulation run. It is
// attached to the engine before topology construction (mirroring the
// auditor); components discover it at construction time and hold their own
// FlowTracer/PortTracer, so the per-event path never touches the Tracer.
// Not safe for concurrent use — the simulator is single-threaded by design.
type Tracer struct {
	opt   Options
	flows []*FlowTracer
	ports []*PortTracer

	// CCA state names are interned once per distinct string; events carry
	// the small integer code so recording a state transition is two integer
	// stores, not a string.
	states     []string
	stateCodes map[string]int64
}

// New returns a Tracer with the given options (zero values take defaults).
func New(opt Options) *Tracer {
	return &Tracer{
		opt:        opt.withDefaults(),
		stateCodes: make(map[string]int64),
	}
}

// Options returns the tracer's effective (defaulted) options.
func (t *Tracer) Options() Options { return t.opt }

// Flow allocates the ring for one flow and returns its tracer. label is the
// flow's congestion-control name, carried into the dump for rendering.
func (t *Tracer) Flow(id uint32, label string) *FlowTracer {
	f := &FlowTracer{
		t:         t,
		id:        id,
		label:     label,
		sampleN:   uint32(t.opt.SampleN),
		lastState: -1,
	}
	f.ring.ev = make([]Event, t.opt.RingCap)
	t.flows = append(t.flows, f)
	return f
}

// Port allocates the ring for one netem port and returns its tracer.
func (t *Tracer) Port(name string) *PortTracer {
	p := &PortTracer{t: t, name: name, sampleN: uint32(t.opt.SampleN)}
	p.ring.ev = make([]Event, t.opt.RingCap)
	t.ports = append(t.ports, p)
	return p
}

func (t *Tracer) stateCode(name string) int64 {
	if c, ok := t.stateCodes[name]; ok {
		return c
	}
	c := int64(len(t.states))
	t.states = append(t.states, name)
	t.stateCodes[name] = c
	return c
}

// StateName resolves a CCA state code from a trace back to its name.
func (t *Tracer) StateName(code int64) string {
	if code >= 0 && code < int64(len(t.states)) {
		return t.states[code]
	}
	return "?"
}

// FlowTracer records one flow's congestion-control dynamics into its ring.
// All methods are nil-receiver-safe, so a disabled run (nil tracer) costs
// exactly the nil check at each gated call site.
type FlowTracer struct {
	t     *Tracer
	id    uint32
	label string
	ring  ring

	sampleN uint32
	nth     uint32 // shared 1-in-N counter for the sampled kinds

	lastCwnd   int64
	lastSS     int64
	lastPacing int64
	lastState  int64
}

// sample implements the 1-in-N decimation for high-rate kinds.
func (f *FlowTracer) sample() bool {
	f.nth++
	return f.nth%f.sampleN == 0
}

// Cwnd records a congestion-window / ssthresh update. Unchanged values are
// deduplicated before the sampling counter advances.
func (f *FlowTracer) Cwnd(at int64, cwnd, ssthresh int64) {
	if f == nil || (cwnd == f.lastCwnd && ssthresh == f.lastSS) {
		return
	}
	f.lastCwnd, f.lastSS = cwnd, ssthresh
	if !f.sample() {
		return
	}
	f.ring.put(Event{At: at, Flow: f.id, Kind: KindCwnd, A: cwnd, B: ssthresh})
}

// Pacing records a pacing-rate update in bits/s, deduplicated and sampled.
func (f *FlowTracer) Pacing(at int64, rateBps int64) {
	if f == nil || rateBps == f.lastPacing {
		return
	}
	f.lastPacing = rateBps
	if !f.sample() {
		return
	}
	f.ring.put(Event{At: at, Flow: f.id, Kind: KindPacing, A: rateBps})
}

// CCAState records a congestion-control state transition (e.g. BBR
// startup→drain, probe_bw:down→probe_bw:cruise). The name is interned;
// repeat calls with the unchanged state are free after the nil check and
// one map lookup is avoided entirely for them only when the caller
// deduplicates — callers may instead call unconditionally per ACK, since
// the intern table lookup does not allocate and unchanged states return
// before touching the ring.
func (f *FlowTracer) CCAState(at int64, state string) {
	if f == nil {
		return
	}
	code := f.t.stateCode(state)
	if code == f.lastState {
		return
	}
	f.ring.put(Event{At: at, Flow: f.id, Kind: KindCCAState, A: f.lastState, B: code})
	f.lastState = code
}

// InflightHi records a BBRv2 inflight_hi move (loss-driven cut, probe
// raise, or RTO collapse). Always recorded.
func (f *FlowTracer) InflightHi(at int64, hi, prev int64) {
	if f == nil || hi == prev {
		return
	}
	f.ring.put(Event{At: at, Flow: f.id, Kind: KindInflightHi, A: hi, B: prev})
}

// RTT records a round-trip sample and the resulting smoothed RTT, sampled.
func (f *FlowTracer) RTT(at int64, sampleNS, srttNS int64) {
	if f == nil || !f.sample() {
		return
	}
	f.ring.put(Event{At: at, Flow: f.id, Kind: KindRTT, A: sampleNS, B: srttNS})
}

// RTO records a retransmission-timeout fire. Always recorded — RTOs are
// rare and carry most of the diagnosis weight in a stall.
func (f *FlowTracer) RTO(at int64, rtoNS int64, backoff int64) {
	if f == nil {
		return
	}
	f.ring.put(Event{At: at, Flow: f.id, Kind: KindRTO, A: rtoNS, B: backoff})
}

// FlowOpen records an open-loop flow arrival with its transfer size.
// Always recorded — arrivals are rare relative to packets and define the
// workload timeline.
func (f *FlowTracer) FlowOpen(at int64, sizeBytes int64) {
	if f == nil {
		return
	}
	f.ring.put(Event{At: at, Flow: f.id, Kind: KindFlowOpen, A: sizeBytes})
}

// FlowComplete records an open-loop flow finishing its transfer: the
// completion time and the bytes moved. Always recorded.
func (f *FlowTracer) FlowComplete(at int64, fctNS, sizeBytes int64) {
	if f == nil {
		return
	}
	f.ring.put(Event{At: at, Flow: f.id, Kind: KindFlowDone, A: fctNS, B: sizeBytes})
}

// PortTracer records one port's queue dynamics into its ring. Methods are
// nil-receiver-safe. The high-watermark is folded into Enqueue: a new
// maximum emits a KindHiWater event (monotone, so bounded by the maximum
// occupancy ever reached, not by traffic volume).
type PortTracer struct {
	t    *Tracer
	name string
	ring ring

	sampleN uint32
	nth     uint32

	hiBytes int64
	hiPkts  int64
}

func (p *PortTracer) sample() bool {
	p.nth++
	return p.nth%p.sampleN == 0
}

// Enqueue records a packet accepted into the queue, with the post-enqueue
// occupancy; sampled, except that a new occupancy high-watermark is always
// recorded (as its own event) even when the enqueue itself is decimated.
func (p *PortTracer) Enqueue(at int64, flow uint32, qBytes, qPkts int64) {
	if p == nil {
		return
	}
	if qBytes > p.hiBytes {
		p.hiBytes = qBytes
		if qPkts > p.hiPkts {
			p.hiPkts = qPkts
		}
		p.ring.put(Event{At: at, Flow: flow, Kind: KindHiWater, A: p.hiBytes, B: p.hiPkts})
	} else if qPkts > p.hiPkts {
		p.hiPkts = qPkts
	}
	if !p.sample() {
		return
	}
	p.ring.put(Event{At: at, Flow: flow, Kind: KindEnqueue, A: qBytes, B: qPkts})
}

// Dequeue records a packet leaving the queue for transmission, with the
// post-dequeue occupancy and the packet's sojourn time; sampled.
func (p *PortTracer) Dequeue(at int64, flow uint32, qBytes, sojournNS int64) {
	if p == nil || !p.sample() {
		return
	}
	p.ring.put(Event{At: at, Flow: flow, Kind: KindDequeue, A: qBytes, B: sojournNS})
}

// Drop records a packet drop with its per-discipline reason. Always
// recorded.
func (p *PortTracer) Drop(at int64, flow uint32, reason Aux, pktBytes, qBytes int64) {
	if p == nil {
		return
	}
	p.ring.put(Event{At: at, Flow: flow, Kind: KindDrop, Aux: reason, A: pktBytes, B: qBytes})
}

// Mark records an ECN mark with its discipline. Always recorded.
func (p *PortTracer) Mark(at int64, flow uint32, reason Aux, pktBytes, qBytes int64) {
	if p == nil {
		return
	}
	p.ring.put(Event{At: at, Flow: flow, Kind: KindMark, Aux: reason, A: pktBytes, B: qBytes})
}

// Fault records a link fault transition (carrier down/up, rate step, delay
// step). Always recorded.
func (p *PortTracer) Fault(at int64, kind Aux, a, b int64) {
	if p == nil {
		return
	}
	p.ring.put(Event{At: at, Kind: KindFault, Aux: kind, A: a, B: b})
}

// Peak returns the port's occupancy high-watermark seen by the tracer.
func (p *PortTracer) Peak() (bytes, pkts int64) {
	if p == nil {
		return 0, 0
	}
	return p.hiBytes, p.hiPkts
}

// Dump is the serializable snapshot of a tracer: the interned CCA state
// table plus every ring's metadata and surviving events (oldest first).
// It is what the codecs encode and what cmd/timeline renders.
type Dump struct {
	V      int        `json:"v"`
	States []string   `json:"states"`
	Rings  []RingDump `json:"rings,omitempty"`
}

// RingDump is one ring's snapshot. Total counts events ever written;
// Dropped = Total - len(Events) is how many the ring overwrote, so a reader
// knows whether it is looking at the whole run or a trailing window.
type RingDump struct {
	Name    string  `json:"ring"`
	Kind    string  `json:"kind"` // "flow" or "port"
	Label   string  `json:"label,omitempty"`
	Cap     int     `json:"cap"`
	SampleN int     `json:"sample_n"`
	Total   uint64  `json:"total"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"-"` // serialized as individual NDJSON lines / binary records
}

// Dump snapshots every ring, flows first (by attach order, which is flow-ID
// order under the dumbbell topology), then ports.
func (t *Tracer) Dump() *Dump { return t.dump(0) }

// dump snapshots the tracer; tail > 0 limits each ring to its trailing
// tail events (the flight-recorder window).
func (t *Tracer) dump(tail int) *Dump {
	d := &Dump{V: 1, States: t.states}
	if d.States == nil {
		d.States = []string{}
	}
	for _, f := range t.flows {
		d.Rings = append(d.Rings, snapshotRing(
			"flow:"+strconv.FormatUint(uint64(f.id), 10), "flow", f.label, &f.ring, t.opt.SampleN, tail))
	}
	// Attach order for ports follows topology construction; sort by name so
	// dumps are stable even if construction order changes.
	ports := make([]*PortTracer, len(t.ports))
	copy(ports, t.ports)
	sort.Slice(ports, func(i, j int) bool { return ports[i].name < ports[j].name })
	for _, p := range ports {
		d.Rings = append(d.Rings, snapshotRing(
			"port:"+p.name, "port", "", &p.ring, t.opt.SampleN, tail))
	}
	return d
}

func snapshotRing(name, kind, label string, r *ring, sampleN, tail int) RingDump {
	rd := RingDump{
		Name:    name,
		Kind:    kind,
		Label:   label,
		Cap:     len(r.ev),
		SampleN: sampleN,
		Total:   r.total,
	}
	rd.Events = r.snapshot(nil)
	rd.Dropped = rd.Total - uint64(len(rd.Events))
	if tail > 0 && len(rd.Events) > tail {
		rd.Events = rd.Events[len(rd.Events)-tail:]
	}
	if rd.Events == nil {
		rd.Events = []Event{}
	}
	return rd
}
