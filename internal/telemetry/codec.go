package telemetry

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// NDJSON wire format, one JSON object per line:
//
//	{"v":1,"states":["startup","drain",...]}                    header (first line)
//	{"ring":"flow:1","kind":"flow","label":"bbr1","cap":4096,
//	 "sample_n":1,"total":812,"dropped":0}                      ring header
//	{"r":"flow:1","t":1000000,"ev":"cwnd","flow":1,"a":14480,"b":9223372036854775807}
//	{"r":"port:r1->r2","t":2000000,"ev":"drop","aux":"tail","flow":2,"a":1514,"b":125000}
//
// Events follow their ring's header and reference it by name in "r".
// CCA-state events carry integer codes in a/b that index the header's
// states table. ParseNDJSON is strict — a torn tail or unknown name is an
// error, not a partial result; dumps are written whole, never appended.

// EncodeNDJSON writes the dump in the NDJSON wire format.
func EncodeNDJSON(w io.Writer, d *Dump) error {
	bw := bufio.NewWriter(w)
	hdr := struct {
		V      int      `json:"v"`
		States []string `json:"states"`
	}{d.V, d.States}
	if err := writeJSONLine(bw, hdr); err != nil {
		return err
	}
	for i := range d.Rings {
		r := &d.Rings[i]
		rh := struct {
			Ring    string `json:"ring"`
			Kind    string `json:"kind"`
			Label   string `json:"label,omitempty"`
			Cap     int    `json:"cap"`
			SampleN int    `json:"sample_n"`
			Total   uint64 `json:"total"`
			Dropped uint64 `json:"dropped"`
		}{r.Name, r.Kind, r.Label, r.Cap, r.SampleN, r.Total, r.Dropped}
		if err := writeJSONLine(bw, rh); err != nil {
			return err
		}
		for _, ev := range r.Events {
			if err := writeEventLine(bw, r.Name, ev); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeJSONLine(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// writeEventLine hand-renders one event. Field order is fixed so encoding
// is deterministic (golden-testable) and cheap: no reflection, one small
// append-built line per event.
func writeEventLine(w *bufio.Writer, ringName string, ev Event) error {
	var buf [192]byte
	b := buf[:0]
	b = append(b, `{"r":`...)
	b = strconv.AppendQuote(b, ringName)
	b = append(b, `,"t":`...)
	b = strconv.AppendInt(b, ev.At, 10)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, ev.Kind.String())
	if ev.Aux != AuxNone {
		b = append(b, `,"aux":`...)
		b = strconv.AppendQuote(b, ev.Aux.String())
	}
	b = append(b, `,"flow":`...)
	b = strconv.AppendUint(b, uint64(ev.Flow), 10)
	b = append(b, `,"a":`...)
	b = strconv.AppendInt(b, ev.A, 10)
	b = append(b, `,"b":`...)
	b = strconv.AppendInt(b, ev.B, 10)
	b = append(b, "}\n"...)
	_, err := w.Write(b)
	return err
}

// ndLine is the union of the three NDJSON line shapes; presence of "v",
// "ring", or "r" discriminates.
type ndLine struct {
	V      *int     `json:"v"`
	States []string `json:"states"`

	Ring    string `json:"ring"`
	RKind   string `json:"kind"`
	Label   string `json:"label"`
	Cap     int    `json:"cap"`
	SampleN int    `json:"sample_n"`
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`

	R    string `json:"r"`
	T    int64  `json:"t"`
	Ev   string `json:"ev"`
	Aux  string `json:"aux"`
	Flow uint32 `json:"flow"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

var (
	kindByName = func() map[string]Kind {
		m := make(map[string]Kind, int(kindCount))
		for k := Kind(1); k < kindCount; k++ {
			m[k.String()] = k
		}
		return m
	}()
	auxByName = func() map[string]Aux {
		m := make(map[string]Aux, int(auxCount))
		for a := Aux(1); a < auxCount; a++ {
			m[a.String()] = a
		}
		return m
	}()
)

// ParseNDJSON reads a dump back from the NDJSON wire format. It is strict:
// unknown event kinds, events referencing undeclared rings, events before
// any ring header, a missing version header, or malformed JSON are errors.
// A round trip through EncodeNDJSON/ParseNDJSON is the identity (tested,
// fuzzed).
func ParseNDJSON(r io.Reader) (*Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	d := &Dump{}
	rings := make(map[string]int)
	lineNo := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if len(line) == 0 {
			continue
		}
		var l ndLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %v", lineNo, err)
		}
		switch {
		case l.V != nil:
			if lineNo != 1 {
				return nil, fmt.Errorf("telemetry: line %d: version header not first", lineNo)
			}
			if *l.V != 1 {
				return nil, fmt.Errorf("telemetry: unsupported version %d", *l.V)
			}
			d.V = *l.V
			d.States = l.States
			if d.States == nil {
				d.States = []string{}
			}
		case l.Ring != "":
			if d.V == 0 {
				return nil, fmt.Errorf("telemetry: line %d: ring header before version header", lineNo)
			}
			if _, dup := rings[l.Ring]; dup {
				return nil, fmt.Errorf("telemetry: line %d: duplicate ring %q", lineNo, l.Ring)
			}
			if l.RKind != "flow" && l.RKind != "port" {
				return nil, fmt.Errorf("telemetry: line %d: ring %q has unknown kind %q", lineNo, l.Ring, l.RKind)
			}
			if l.Cap < 0 || l.Dropped > l.Total {
				return nil, fmt.Errorf("telemetry: line %d: ring %q has inconsistent counters", lineNo, l.Ring)
			}
			rings[l.Ring] = len(d.Rings)
			d.Rings = append(d.Rings, RingDump{
				Name:    l.Ring,
				Kind:    l.RKind,
				Label:   l.Label,
				Cap:     l.Cap,
				SampleN: l.SampleN,
				Total:   l.Total,
				Dropped: l.Dropped,
				Events:  []Event{},
			})
		case l.R != "":
			idx, ok := rings[l.R]
			if !ok {
				return nil, fmt.Errorf("telemetry: line %d: event for undeclared ring %q", lineNo, l.R)
			}
			k, ok := kindByName[l.Ev]
			if !ok {
				return nil, fmt.Errorf("telemetry: line %d: unknown event kind %q", lineNo, l.Ev)
			}
			var aux Aux
			if l.Aux != "" {
				if aux, ok = auxByName[l.Aux]; !ok {
					return nil, fmt.Errorf("telemetry: line %d: unknown aux %q", lineNo, l.Aux)
				}
			}
			rd := &d.Rings[idx]
			if uint64(len(rd.Events)) >= rd.Total {
				return nil, fmt.Errorf("telemetry: line %d: ring %q has more events than its total", lineNo, l.R)
			}
			rd.Events = append(rd.Events, Event{At: l.T, Flow: l.Flow, Kind: k, Aux: aux, A: l.A, B: l.B})
		default:
			return nil, fmt.Errorf("telemetry: line %d: unrecognized line shape", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %v", err)
	}
	if d.V == 0 {
		return nil, fmt.Errorf("telemetry: missing version header")
	}
	return d, nil
}

// TailNDJSON renders the trailing n events of every ring as NDJSON — the
// flight-recorder window the auditor embeds in a Violation. n <= 0 uses the
// tracer's FlightTail option.
func (t *Tracer) TailNDJSON(n int) string {
	if n <= 0 {
		n = t.opt.FlightTail
	}
	var sb strings.Builder
	// Encoding to a strings.Builder cannot fail.
	_ = EncodeNDJSON(&sb, t.dump(n))
	return sb.String()
}

// Binary wire format: magic, then the same structure as NDJSON with
// uvarint-framed counts and strings and fixed 30-byte little-endian event
// records. Roughly 6× denser than NDJSON for steady-state traces.
const binaryMagic = "TFTR1\n"

// EncodeBinary writes the dump in the compact binary format.
func EncodeBinary(w io.Writer, d *Dump) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putString := func(s string) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := putUvarint(uint64(len(d.States))); err != nil {
		return err
	}
	for _, s := range d.States {
		if err := putString(s); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(d.Rings))); err != nil {
		return err
	}
	for i := range d.Rings {
		r := &d.Rings[i]
		for _, s := range []string{r.Name, r.Kind, r.Label} {
			if err := putString(s); err != nil {
				return err
			}
		}
		for _, v := range []uint64{uint64(r.Cap), uint64(r.SampleN), r.Total, r.Dropped, uint64(len(r.Events))} {
			if err := putUvarint(v); err != nil {
				return err
			}
		}
		var rec [30]byte
		for _, ev := range r.Events {
			binary.LittleEndian.PutUint64(rec[0:], uint64(ev.At))
			binary.LittleEndian.PutUint64(rec[8:], uint64(ev.A))
			binary.LittleEndian.PutUint64(rec[16:], uint64(ev.B))
			binary.LittleEndian.PutUint32(rec[24:], ev.Flow)
			rec[28] = byte(ev.Kind)
			rec[29] = byte(ev.Aux)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ParseBinary reads a dump back from the compact binary format.
func ParseBinary(r io.Reader) (*Dump, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != binaryMagic {
		return nil, fmt.Errorf("telemetry: bad binary magic")
	}
	const maxFrame = 16 << 20 // defensive cap on any single count or string
	getUvarint := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if v > maxFrame {
			return 0, fmt.Errorf("telemetry: frame too large (%d)", v)
		}
		return v, nil
	}
	getString := func() (string, error) {
		n, err := getUvarint()
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	d := &Dump{V: 1}
	nStates, err := getUvarint()
	if err != nil {
		return nil, fmt.Errorf("telemetry: states count: %v", err)
	}
	d.States = make([]string, 0, min(nStates, 1024))
	for i := uint64(0); i < nStates; i++ {
		s, err := getString()
		if err != nil {
			return nil, fmt.Errorf("telemetry: state %d: %v", i, err)
		}
		d.States = append(d.States, s)
	}
	nRings, err := getUvarint()
	if err != nil {
		return nil, fmt.Errorf("telemetry: rings count: %v", err)
	}
	for i := uint64(0); i < nRings; i++ {
		var rd RingDump
		if rd.Name, err = getString(); err != nil {
			return nil, fmt.Errorf("telemetry: ring %d name: %v", i, err)
		}
		if rd.Kind, err = getString(); err != nil {
			return nil, fmt.Errorf("telemetry: ring %d kind: %v", i, err)
		}
		if rd.Label, err = getString(); err != nil {
			return nil, fmt.Errorf("telemetry: ring %d label: %v", i, err)
		}
		var capN, sampleN, nEv uint64
		if capN, err = getUvarint(); err == nil {
			if sampleN, err = getUvarint(); err == nil {
				if rd.Total, err = getUvarint(); err == nil {
					if rd.Dropped, err = getUvarint(); err == nil {
						nEv, err = getUvarint()
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: ring %d counters: %v", i, err)
		}
		rd.Cap, rd.SampleN = int(capN), int(sampleN)
		if nEv > rd.Total || rd.Dropped > rd.Total {
			return nil, fmt.Errorf("telemetry: ring %q has inconsistent counters", rd.Name)
		}
		rd.Events = make([]Event, 0, min(nEv, 1<<16))
		var rec [30]byte
		for j := uint64(0); j < nEv; j++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("telemetry: ring %q event %d: %v", rd.Name, j, err)
			}
			ev := Event{
				At:   int64(binary.LittleEndian.Uint64(rec[0:])),
				A:    int64(binary.LittleEndian.Uint64(rec[8:])),
				B:    int64(binary.LittleEndian.Uint64(rec[16:])),
				Flow: binary.LittleEndian.Uint32(rec[24:]),
				Kind: Kind(rec[28]),
				Aux:  Aux(rec[29]),
			}
			if ev.Kind == KindNone || ev.Kind >= kindCount || ev.Aux >= auxCount {
				return nil, fmt.Errorf("telemetry: ring %q event %d: invalid kind/aux", rd.Name, j)
			}
			rd.Events = append(rd.Events, ev)
		}
		d.Rings = append(d.Rings, rd)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("telemetry: trailing bytes after dump")
	}
	return d, nil
}
