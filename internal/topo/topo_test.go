package topo

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{BottleneckBW: units.GigabitPerSec}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.EdgeBW != 25*units.GigabitPerSec || cfg.CoreBW != 100*units.GigabitPerSec {
		t.Errorf("edge/core defaults: %v %v", cfg.EdgeBW, cfg.CoreBW)
	}
	if cfg.RTT != 62*time.Millisecond {
		t.Errorf("RTT default: %v", cfg.RTT)
	}
	if cfg.Queue.Capacity <= 0 {
		t.Error("queue capacity not defaulted")
	}
	var bad Config
	if err := bad.defaults(); err == nil {
		t.Error("zero bottleneck should error")
	}
}

func TestDumbbellRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	d, err := NewDumbbell(eng, Config{BottleneckBW: units.GigabitPerSec})
	if err != nil {
		t.Fatal(err)
	}
	f := d.AddFlow(0, tcp.Config{}, cca.MustNew(cca.Cubic))
	f.Conn.Start()
	eng.RunFor(3 * time.Second)
	min := f.Conn.MinRTT()
	if min < 62*time.Millisecond || min > 66*time.Millisecond {
		t.Fatalf("measured min RTT = %v, want ≈62ms", min)
	}
}

func TestDumbbellSingleFlowUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := Config{
		BottleneckBW: 100 * units.MegabitPerSec,
		Queue: aqm.Config{
			Kind:     aqm.KindFIFO,
			Capacity: units.QueueBytes(100*units.MegabitPerSec, 62*time.Millisecond, 2, 8960),
		},
	}
	d, err := NewDumbbell(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := d.AddFlow(0, tcp.Config{}, cca.MustNew(cca.Cubic))
	f.Conn.Start()
	dur := 30 * time.Second
	eng.RunFor(dur)
	rate := float64(d.SenderGoodput(0)) * 8 / dur.Seconds()
	if rate < 0.85*100e6 {
		t.Fatalf("utilization %.2f Mbps", rate/1e6)
	}
}

func TestTwoSendersShareBottleneck(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := Config{
		BottleneckBW: 100 * units.MegabitPerSec,
		Queue: aqm.Config{
			Kind:     aqm.KindFIFO,
			Capacity: units.QueueBytes(100*units.MegabitPerSec, 62*time.Millisecond, 2, 8960),
		},
	}
	d, err := NewDumbbell(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f0 := d.AddFlow(0, tcp.Config{}, cca.MustNew(cca.Cubic))
	f1 := d.AddFlow(1, tcp.Config{}, cca.MustNew(cca.Cubic))
	f0.Conn.Start()
	f1.Conn.Start()
	dur := 60 * time.Second
	eng.RunFor(dur)
	g0 := float64(d.SenderGoodput(0))
	g1 := float64(d.SenderGoodput(1))
	total := (g0 + g1) * 8 / dur.Seconds()
	if total < 0.85*100e6 {
		t.Fatalf("combined utilization only %.1f Mbps", total/1e6)
	}
	ratio := g0 / g1
	if ratio < 0.6 || ratio > 1.7 {
		t.Fatalf("identical CUBIC flows wildly unfair: %.0f vs %.0f (ratio %.2f)", g0, g1, ratio)
	}
}

func TestDemuxUnknownFlowReleased(t *testing.T) {
	d := NewDemux()
	p := packet.New()
	p.Flow = 99
	d.Receive(0, p) // must not panic
}

func TestSenderAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	d, _ := NewDumbbell(eng, Config{BottleneckBW: units.GigabitPerSec})
	d.AddFlow(0, tcp.Config{}, cca.MustNew(cca.Reno))
	d.AddFlow(0, tcp.Config{}, cca.MustNew(cca.Reno))
	d.AddFlow(1, tcp.Config{}, cca.MustNew(cca.Cubic))
	if len(d.Flows()) != 3 {
		t.Fatalf("flows = %d", len(d.Flows()))
	}
	if len(d.SenderFlows(0)) != 2 || len(d.SenderFlows(1)) != 1 {
		t.Fatal("sender grouping wrong")
	}
	ids := map[packet.FlowID]bool{}
	for _, f := range d.Flows() {
		if ids[f.ID] {
			t.Fatal("duplicate flow ID")
		}
		ids[f.ID] = true
	}
}

func TestAddFlowPanicsOnBadSender(t *testing.T) {
	eng := sim.NewEngine(1)
	d, _ := NewDumbbell(eng, Config{BottleneckBW: units.GigabitPerSec})
	defer func() {
		if recover() == nil {
			t.Error("want panic for sender=2")
		}
	}()
	d.AddFlow(2, tcp.Config{}, cca.MustNew(cca.Reno))
}

func TestBottleneckCarriesConfiguredAQM(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, kind := range aqm.Kinds() {
		d, err := NewDumbbell(eng, Config{
			BottleneckBW: units.GigabitPerSec,
			Queue:        aqm.Config{Kind: kind, Capacity: 1 << 20},
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := d.Bottleneck.Queue().Name(); got != string(kind) {
			t.Errorf("bottleneck queue = %s, want %s", got, kind)
		}
	}
}
