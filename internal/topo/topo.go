// Package topo builds the paper's experimental topology (Fig. 1): a
// dumbbell of two traffic-generating client nodes (Clemson), two routers
// (Washington, NCSA) whose interconnect is the bottleneck carrying the AQM
// under test, and two server nodes (TACC), with a 62 ms end-to-end RTT.
package topo

import (
	"fmt"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Config describes the dumbbell. Zero values select the paper's setup.
type Config struct {
	BottleneckBW units.Bandwidth // router1→router2 rate (the tc-limited link)
	EdgeBW       units.Bandwidth // client/server NIC rate (default 25 Gbps)
	CoreBW       units.Bandwidth // router2→servers and reverse core (default 100 Gbps)
	RTT          time.Duration   // end-to-end round trip (default 62 ms)
	Queue        aqm.Config      // bottleneck queue discipline + capacity

	// PathLoss injects uniform random loss on the forward core segment
	// (router2→servers), after the bottleneck queue — the "variable rates
	// of packet loss" anomaly from the paper's future-work section.
	PathLoss float64

	// Faults, when non-nil, arms a deterministic fault timeline (bursty
	// loss, link flaps, bandwidth/RTT steps) on the bottleneck port.
	Faults *faults.Profile
}

func (cfg *Config) defaults() error {
	if cfg.BottleneckBW <= 0 {
		return fmt.Errorf("topo: BottleneckBW must be positive")
	}
	if cfg.EdgeBW <= 0 {
		cfg.EdgeBW = 25 * units.GigabitPerSec
	}
	if cfg.CoreBW <= 0 {
		cfg.CoreBW = 100 * units.GigabitPerSec
	}
	if cfg.RTT <= 0 {
		cfg.RTT = 62 * time.Millisecond
	}
	if cfg.Queue.Capacity <= 0 {
		cfg.Queue.Capacity = units.QueueBytes(cfg.BottleneckBW, cfg.RTT, 1, 8960)
	}
	return nil
}

// Demux routes packets to per-flow endpoints at the edge of the network.
type Demux struct {
	m map[packet.FlowID]netem.Receiver

	// aud, when non-nil, reports packets released for an unknown flow as
	// terminally consumed, keeping the conservation ledger balanced (matched
	// packets are consumed by the endpoint they are handed to).
	aud *audit.Auditor
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux { return &Demux{m: make(map[packet.FlowID]netem.Receiver)} }

// Register binds a flow to an endpoint.
func (d *Demux) Register(id packet.FlowID, r netem.Receiver) { d.m[id] = r }

// Receive implements netem.Receiver.
func (d *Demux) Receive(now sim.Time, p *packet.Packet) {
	if r, ok := d.m[p.Flow]; ok {
		r.Receive(now, p)
		return
	}
	if d.aud != nil {
		d.aud.PacketConsumed()
	}
	packet.Release(p)
}

// Flow is one sender/receiver pair attached to the dumbbell.
type Flow struct {
	ID     packet.FlowID
	Sender int // 0 or 1: which client node the flow originates from
	Conn   *tcp.Conn
	Rcv    *tcp.Receiver
	CCName string
}

// Dumbbell is the wired topology. Flows attach via AddFlow.
type Dumbbell struct {
	Eng *sim.Engine
	Cfg Config

	// Bottleneck is router1's egress toward router2 — the port carrying
	// the AQM and rate limit under test.
	Bottleneck *netem.Port

	clientTx [2]*netem.Port // client NIC egress (forward direction)
	serverTx [2]*netem.Port // server NIC egress (ACK direction)
	fwdCore  *netem.Port    // router2 → servers
	revCore1 *netem.Port    // router2 → router1 (reverse)
	revCore2 *netem.Port    // router1 → clients (reverse)

	srvDemux *Demux
	cliDemux *Demux

	flows  []*Flow
	nextID packet.FlowID
}

// NewDumbbell wires the topology on eng.
func NewDumbbell(eng *sim.Engine, cfg Config) (*Dumbbell, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	d := &Dumbbell{Eng: eng, Cfg: cfg, srvDemux: NewDemux(), cliDemux: NewDemux()}
	d.srvDemux.aud = eng.Auditor()
	d.cliDemux.aud = eng.Auditor()

	// One-way delay split across the three forward hops, mirroring the
	// Clemson→Washington→NCSA→TACC legs.
	owd := cfg.RTT / 2
	dEdge := owd / 4 // client→router1 and router2→server
	dCore := owd / 2 // router1→router2 (the long continental leg)

	// RED thresholds default to half the link BDP, capped at a fixed
	// 400 KB — i.e. RED tuned for a 100 Mbps-class link and never
	// rescaled. This is deliberate calibration to the paper: its RED
	// results are flat in buffer size (thresholds don't track the
	// configured limit), tolerable at 100-500 Mbps, and collapse as
	// bandwidth grows past 1 Gbps, with the authors concluding RED's
	// "internal parameters need to be properly optimized" for high-BW
	// links — the signature of fixed thresholds starving a growing BDP.
	// RED also needs the egress packet time for its idle-decay law.
	q := cfg.Queue
	if q.Kind == aqm.KindRED {
		if q.RED.MaxTh <= 0 {
			q.RED.MaxTh = units.BDP(cfg.BottleneckBW, cfg.RTT) / 2
			if q.RED.MaxTh > 400_000 {
				q.RED.MaxTh = 400_000
			}
		}
		if q.RED.MinTh <= 0 {
			q.RED.MinTh = q.RED.MaxTh / 3
		}
		if q.RED.MeanPktTime <= 0 {
			q.RED.MeanPktTime = units.TransmissionTime(8960, cfg.BottleneckBW)
		}
		// max_p 1%: with Floyd's count-based spreading the effective drop
		// rate approaches 2·max_p near MaxTh, and the paper's analysis
		// hinges on RED's random-drop rate "rarely exceeding" BBRv2's 2%
		// per-round loss threshold.
		if q.RED.MaxP <= 0 {
			q.RED.MaxP = 0.01
		}
	}
	// Linux fq_codel enforces a 32 MB memory_limit by default no matter
	// what packet limit is configured. At 25 Gbps that is only ~0.17 BDP,
	// which is why the paper finds FQ_CODEL unable to fill its largest
	// link while doing fine at 10 Gbps and below.
	if q.Kind == aqm.KindFQCoDel && q.Capacity > 32*units.Megabyte {
		q.Capacity = 32 * units.Megabyte
	}
	queue, err := aqm.New(q)
	if err != nil {
		return nil, err
	}

	// Forward direction.
	d.fwdCore = netem.NewPort(eng, "r2->srv", cfg.CoreBW, dEdge, nil, d.srvDemux)
	if cfg.PathLoss > 0 {
		d.fwdCore.SetLoss(cfg.PathLoss)
	}
	d.Bottleneck = netem.NewPort(eng, "r1->r2", cfg.BottleneckBW, dCore, queue, d.fwdCore)
	d.clientTx[0] = netem.NewPort(eng, "c1->r1", cfg.EdgeBW, dEdge, aqm.NewFIFO(1<<34), d.Bottleneck)
	d.clientTx[1] = netem.NewPort(eng, "c2->r1", cfg.EdgeBW, dEdge, aqm.NewFIFO(1<<34), d.Bottleneck)

	// Reverse (ACK) direction: uncongested core.
	d.revCore2 = netem.NewPort(eng, "r1->cli", cfg.CoreBW, dEdge, nil, d.cliDemux)
	d.revCore1 = netem.NewPort(eng, "r2->r1", cfg.CoreBW, dCore, nil, d.revCore2)
	d.serverTx[0] = netem.NewPort(eng, "s1->r2", cfg.EdgeBW, dEdge, aqm.NewFIFO(1<<34), d.revCore1)
	d.serverTx[1] = netem.NewPort(eng, "s2->r2", cfg.EdgeBW, dEdge, aqm.NewFIFO(1<<34), d.revCore1)

	d.ApplyFaults(cfg.Faults)
	return d, nil
}

// ApplyFaults arms a fault profile on the bottleneck port — the link whose
// impairments the fairness experiments study. Timeline entries are
// scheduled relative to the current simulation time; a nil or empty
// profile is a no-op. NewDumbbell calls this for Config.Faults, so it only
// needs to be called directly for profiles decided after construction.
func (d *Dumbbell) ApplyFaults(p *faults.Profile) {
	faults.Apply(d.Eng, d.Bottleneck, p)
}

// AddFlow attaches a new flow originating at client node sender (0 or 1),
// with congestion controller cc. The flow is not started; call
// Flow.Conn.Start (or schedule it) to begin transmitting.
func (d *Dumbbell) AddFlow(sender int, tcpCfg tcp.Config, cc tcp.CongestionControl) *Flow {
	if sender != 0 && sender != 1 {
		panic(fmt.Sprintf("topo: sender must be 0 or 1, got %d", sender))
	}
	d.nextID++
	id := d.nextID

	cliPort := d.clientTx[sender]
	srvPort := d.serverTx[sender]

	conn := tcp.NewConn(d.Eng, id, tcpCfg, cc, func(p *packet.Packet) { cliPort.Send(p) })
	mkRcv := tcp.NewReceiver
	if tcpCfg.DelayedAck {
		mkRcv = tcp.NewDelayedAckReceiver
	}
	rcv := mkRcv(d.Eng, id, tcpCfg.Header, func(p *packet.Packet) { srvPort.Send(p) })
	d.srvDemux.Register(id, rcv)
	d.cliDemux.Register(id, conn)

	f := &Flow{ID: id, Sender: sender, Conn: conn, Rcv: rcv, CCName: cc.Name()}
	d.flows = append(d.flows, f)
	return f
}

// Flows returns all attached flows.
func (d *Dumbbell) Flows() []*Flow { return d.flows }

// SenderFlows returns the flows originating at client node sender.
func (d *Dumbbell) SenderFlows(sender int) []*Flow {
	var out []*Flow
	for _, f := range d.flows {
		if f.Sender == sender {
			out = append(out, f)
		}
	}
	return out
}

// SenderGoodput returns the cumulative contiguous bytes received across all
// flows of one sender — the paper's per-sender throughput numerator.
func (d *Dumbbell) SenderGoodput(sender int) int64 {
	var total int64
	for _, f := range d.flows {
		if f.Sender == sender {
			total += f.Rcv.Goodput()
		}
	}
	return total
}

// SenderRetransmits returns total retransmitted segments for one sender.
func (d *Dumbbell) SenderRetransmits(sender int) uint64 {
	var total uint64
	for _, f := range d.flows {
		if f.Sender == sender {
			total += f.Conn.Stats().Retransmits
		}
	}
	return total
}

// TotalRetransmits sums retransmissions across all flows.
func (d *Dumbbell) TotalRetransmits() uint64 {
	return d.SenderRetransmits(0) + d.SenderRetransmits(1)
}
