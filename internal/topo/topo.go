// Package topo models experimental network topologies as declarative
// graphs. A Spec describes nodes, unidirectional links (rate, delay, queue
// discipline, loss, faults) and static per-class routes; Build instantiates
// it on a sim.Engine as netem ports wired with audit conservation probes
// and telemetry rings, returning named attachment points for tcp endpoints.
//
// The paper's own setup (Fig. 1) — a dumbbell of two traffic-generating
// client nodes (Clemson), two routers (Washington, NCSA) whose interconnect
// is the bottleneck carrying the AQM under test, and two server nodes
// (TACC) at a 62 ms end-to-end RTT — is the DumbbellSpec preset, and
// NewDumbbell remains as a thin compatibility wrapper that builds it.
// ParkingLotSpec, ReversePathSpec and CrossTrafficSpec extend the family to
// the multi-bottleneck scenarios where fairness conclusions change.
package topo

import (
	"fmt"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Config describes the dumbbell. Zero values select the paper's setup.
type Config struct {
	BottleneckBW units.Bandwidth // router1→router2 rate (the tc-limited link)
	EdgeBW       units.Bandwidth // client/server NIC rate (default 25 Gbps)
	CoreBW       units.Bandwidth // router2→servers and reverse core (default 100 Gbps)
	RTT          time.Duration   // end-to-end round trip (default 62 ms)
	Queue        aqm.Config      // bottleneck queue discipline + capacity

	// PathLoss injects uniform random loss on the forward core segment
	// (router2→servers), after the bottleneck queue — the "variable rates
	// of packet loss" anomaly from the paper's future-work section.
	PathLoss float64

	// Faults, when non-nil, arms a deterministic fault timeline (bursty
	// loss, link flaps, bandwidth/RTT steps) on the bottleneck port.
	Faults *faults.Profile
}

func (cfg *Config) defaults() error {
	if cfg.BottleneckBW <= 0 {
		return fmt.Errorf("topo: BottleneckBW must be positive")
	}
	if cfg.EdgeBW <= 0 {
		cfg.EdgeBW = 25 * units.GigabitPerSec
	}
	if cfg.CoreBW <= 0 {
		cfg.CoreBW = 100 * units.GigabitPerSec
	}
	if cfg.RTT <= 0 {
		cfg.RTT = 62 * time.Millisecond
	}
	if cfg.Queue.Capacity <= 0 {
		cfg.Queue.Capacity = units.QueueBytes(cfg.BottleneckBW, cfg.RTT, 1, 8960)
	}
	return nil
}

// Demux routes packets to per-flow endpoints at divergence points of the
// graph (route forks and network edges).
type Demux struct {
	m map[packet.FlowID]netem.Receiver

	// aud, when non-nil, reports packets released for an unknown flow as
	// terminally consumed, keeping the conservation ledger balanced (matched
	// packets are consumed by the endpoint they are handed to).
	aud *audit.Auditor
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux { return &Demux{m: make(map[packet.FlowID]netem.Receiver)} }

// Register binds a flow to an endpoint.
func (d *Demux) Register(id packet.FlowID, r netem.Receiver) { d.m[id] = r }

// Unregister removes a flow's binding. Packets for the flow still in
// flight fall to the unknown-flow path in Receive (consumed + released),
// so tearing a flow down mid-run keeps the conservation ledger settled.
func (d *Demux) Unregister(id packet.FlowID) { delete(d.m, id) }

// Receive implements netem.Receiver.
func (d *Demux) Receive(now sim.Time, p *packet.Packet) {
	if r, ok := d.m[p.Flow]; ok {
		r.Receive(now, p)
		return
	}
	if d.aud != nil {
		d.aud.PacketConsumed()
	}
	packet.Release(p)
}

// Flow is one sender/receiver pair attached to the network.
type Flow struct {
	ID     packet.FlowID
	Sender int // sender class index (0 or 1 on the dumbbell)
	Conn   *tcp.Conn
	Rcv    *tcp.Receiver
	CCName string
}

// Dumbbell is the classic two-sender topology, kept as a named wrapper
// over the generic Network built from DumbbellSpec.
type Dumbbell struct {
	*Network
	Cfg Config

	// Bottleneck is router1's egress toward router2 — the port carrying
	// the AQM and rate limit under test.
	Bottleneck *netem.Port
}

// NewDumbbell wires the paper topology on eng by building DumbbellSpec —
// proven byte-identical to the historical hand-wired construction.
func NewDumbbell(eng *sim.Engine, cfg Config) (*Dumbbell, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n, err := Build(eng, DumbbellSpec(), Params{
		Bottleneck: cfg.BottleneckBW,
		RTT:        cfg.RTT,
		Queue:      cfg.Queue,
		EdgeBW:     cfg.EdgeBW,
		CoreBW:     cfg.CoreBW,
		PathLoss:   cfg.PathLoss,
		Faults:     cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	return &Dumbbell{Network: n, Cfg: cfg, Bottleneck: n.Monitor()}, nil
}

// AddFlow attaches a new flow originating at client node sender (0 or 1),
// with congestion controller cc. The flow is not started; call
// Flow.Conn.Start (or schedule it) to begin transmitting.
func (d *Dumbbell) AddFlow(sender int, tcpCfg tcp.Config, cc tcp.CongestionControl) *Flow {
	if sender != 0 && sender != 1 {
		panic(fmt.Sprintf("topo: sender must be 0 or 1, got %d", sender))
	}
	return d.Network.AddFlow(sender, tcpCfg, cc)
}

// SenderFlows returns the flows originating at client node sender.
func (d *Dumbbell) SenderFlows(sender int) []*Flow { return d.ClassFlows(sender) }

// SenderGoodput returns the cumulative contiguous bytes received across all
// flows of one sender — the paper's per-sender throughput numerator.
func (d *Dumbbell) SenderGoodput(sender int) int64 { return d.ClassGoodput(sender) }

// SenderRetransmits returns total retransmitted segments for one sender.
func (d *Dumbbell) SenderRetransmits(sender int) uint64 { return d.ClassRetransmits(sender) }
