package topo

import (
	"fmt"
	"time"

	"repro/internal/aqm"
	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Params are the grid-swept quantities a Spec's role defaults resolve
// against: the bottleneck rate and AQM under test, the end-to-end RTT the
// per-link delay fractions scale, and the shared edge/core rates. Zero
// values select the paper's setup (25 Gbps edges, 100 Gbps core, 62 ms).
type Params struct {
	Bottleneck units.Bandwidth
	RTT        time.Duration
	// Queue configures every bottleneck-role link without an explicit queue
	// override — the grid's AQM axis.
	Queue  aqm.Config
	EdgeBW units.Bandwidth
	CoreBW units.Bandwidth
	// PathLoss arms uniform loss on links marked ConfigLoss.
	PathLoss float64
	// Faults is armed on the monitor link after construction, exactly where
	// the legacy dumbbell applied Config.Faults.
	Faults *faults.Profile
}

func (p *Params) defaults() error {
	if p.Bottleneck <= 0 {
		return fmt.Errorf("topo: Bottleneck must be positive")
	}
	if p.EdgeBW <= 0 {
		p.EdgeBW = 25 * units.GigabitPerSec
	}
	if p.CoreBW <= 0 {
		p.CoreBW = 100 * units.GigabitPerSec
	}
	if p.RTT <= 0 {
		p.RTT = 62 * time.Millisecond
	}
	if p.Queue.Capacity <= 0 {
		p.Queue.Capacity = units.QueueBytes(p.Bottleneck, p.RTT, 1, 8960)
	}
	return nil
}

// hop is one demultiplexing point along a class's route: at flow-attach
// time the flow registers itself in d, bound to next (or to its terminal
// endpoint when next is nil).
type hop struct {
	d    *Demux
	next netem.Receiver // nil = route ends past this link
}

// class is one instantiated sender class.
type class struct {
	spec    SenderSpec
	fwd     *netem.Port // injection port for data (Path[0])
	ret     *netem.Port // injection port for ACKs (Return[0])
	fwdHops []hop
	retHops []hop
	flows   []*Flow
}

// Network is a Spec instantiated on an engine: one netem port per link
// (wired with audit conservation probes and telemetry rings exactly as the
// legacy dumbbell was), static per-class routing, and named attachment
// points for tcp endpoints via AddFlow.
type Network struct {
	Eng  *sim.Engine
	Spec Spec   // normalized
	Par  Params // resolved (defaults filled)

	ports   []*netem.Port // in Spec.Links order
	rates   []units.Bandwidth
	portIdx map[string]int
	monitor *netem.Port

	classes []*class
	flows   []*Flow
	nextID  packet.FlowID
}

// Build instantiates spec on eng. Routing is resolved statically per link:
// when every class crossing a link continues to the same next link, the
// port chains to it directly (the zero-overhead fast path — the dumbbell
// resolves entirely to direct chains plus its two terminal demuxes);
// otherwise the link gets a per-flow demux filled in by AddFlow. Ports are
// created in Spec.Links order, which fixes per-port RNG derivation and
// telemetry ring order — the spec's link order is part of reproducibility.
func Build(eng *sim.Engine, spec Spec, par Params) (*Network, error) {
	if err := par.defaults(); err != nil {
		return nil, err
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Eng:     eng,
		Spec:    spec,
		Par:     par,
		ports:   make([]*netem.Port, len(spec.Links)),
		rates:   make([]units.Bandwidth, len(spec.Links)),
		portIdx: make(map[string]int, len(spec.Links)),
	}
	for i, l := range spec.Links {
		n.portIdx[l.Name] = i
	}

	// Continuation analysis: the set of next links (or terminal, "") each
	// link feeds across every class route.
	nexts := make([]map[string]bool, len(spec.Links))
	for i := range nexts {
		nexts[i] = map[string]bool{}
	}
	noteRoute := func(route []string) {
		for i, name := range route {
			next := ""
			if i+1 < len(route) {
				next = route[i+1]
			}
			nexts[n.portIdx[name]][next] = true
		}
	}
	for _, sd := range spec.Senders {
		noteRoute(sd.Path)
		noteRoute(sd.Return)
	}

	for i, l := range spec.Links {
		rate := n.linkRate(l)
		queue, err := n.linkQueue(l, rate)
		if err != nil {
			return nil, fmt.Errorf("topo: link %q: %w", l.Name, err)
		}
		po := netem.NewPort(eng, l.Name, rate, n.linkDelay(l), queue, nil)
		if loss := combinedLoss(l, par); loss > 0 {
			po.SetLoss(loss)
		}
		n.ports[i] = po
		n.rates[i] = rate
	}

	// Wire destinations; links with a terminal or divergent continuation
	// set get a per-flow demux.
	demuxes := make([]*Demux, len(spec.Links))
	for i := range spec.Links {
		nx := nexts[i]
		if len(nx) == 0 {
			continue // unused by any route: never carries traffic
		}
		if len(nx) == 1 {
			var only string
			for k := range nx {
				only = k
			}
			if only != "" {
				n.ports[i].SetDst(n.ports[n.portIdx[only]])
				continue
			}
		}
		d := NewDemux()
		d.aud = eng.Auditor()
		demuxes[i] = d
		n.ports[i].SetDst(d)
	}

	// Resolve each class's attachment ports and demux registration points.
	for _, sd := range spec.Senders {
		cl := &class{
			spec: sd,
			fwd:  n.ports[n.portIdx[sd.Path[0]]],
			ret:  n.ports[n.portIdx[sd.Return[0]]],
		}
		collect := func(route []string) []hop {
			var hops []hop
			for i, name := range route {
				d := demuxes[n.portIdx[name]]
				if d == nil {
					continue
				}
				var next netem.Receiver
				if i+1 < len(route) {
					next = n.ports[n.portIdx[route[i+1]]]
				}
				hops = append(hops, hop{d: d, next: next})
			}
			return hops
		}
		cl.fwdHops = collect(sd.Path)
		cl.retHops = collect(sd.Return)
		n.classes = append(n.classes, cl)
	}

	n.monitor = n.ports[n.portIdx[spec.monitorLink()]]

	// Per-link fault timelines, then the grid profile on the monitor link —
	// the same position in construction order where the legacy dumbbell
	// applied Config.Faults.
	for i, l := range spec.Links {
		faults.Apply(eng, n.ports[i], l.Faults)
	}
	faults.Apply(eng, n.monitor, par.Faults)
	return n, nil
}

// linkRate resolves a link's rate: explicit, factor × bottleneck, or the
// role default.
func (n *Network) linkRate(l LinkSpec) units.Bandwidth {
	if l.Rate > 0 {
		return l.Rate
	}
	if l.RateFactor > 0 {
		r := units.Bandwidth(float64(n.Par.Bottleneck) * l.RateFactor)
		if r < 1 {
			r = 1
		}
		return r
	}
	switch l.Role {
	case RoleBottleneck:
		return n.Par.Bottleneck
	case RoleEdge:
		return n.Par.EdgeBW
	default:
		return n.Par.CoreBW
	}
}

// linkDelay resolves a link's one-way propagation delay.
func (n *Network) linkDelay(l LinkSpec) time.Duration {
	if l.Delay > 0 {
		return l.Delay
	}
	if l.DelayRTTFrac > 0 {
		return time.Duration(float64(n.Par.RTT) * l.DelayRTTFrac)
	}
	return 0
}

// linkQueue resolves a link's queue discipline. Bottleneck-role links
// without an override carry the grid AQM under test (with the calibration
// NewDumbbell historically applied); edge links get the deep injection
// FIFO; core links return nil and let netem substitute its effectively
// unbounded default.
func (n *Network) linkQueue(l LinkSpec, rate units.Bandwidth) (aqm.Queue, error) {
	if l.Queue == nil {
		switch l.Role {
		case RoleBottleneck:
			return aqm.New(calibrate(n.Par.Queue, rate, n.Par.RTT))
		case RoleEdge:
			return aqm.NewFIFO(1 << 34), nil
		default:
			return nil, nil
		}
	}
	qs := l.Queue
	kind := aqm.Kind(qs.Kind)
	if qs.Kind != "" {
		var err error
		if kind, err = aqm.ParseKind(qs.Kind); err != nil {
			return nil, err
		}
	}
	capacity := qs.Capacity
	if capacity <= 0 {
		mult := qs.BDP
		if mult <= 0 {
			mult = 1
		}
		capacity = units.QueueBytes(rate, n.Par.RTT, mult, 8960)
	}
	cfg := aqm.Config{
		Kind:     kind,
		Capacity: capacity,
		ECN:      qs.ECN || n.Par.Queue.ECN,
		RED:      aqm.REDParams{Seed: n.Par.Queue.RED.Seed},
		FQCoDel:  aqm.FQCoDelParams{Perturb: n.Par.Queue.FQCoDel.Perturb},
	}
	return aqm.New(calibrate(cfg, rate, n.Par.RTT))
}

// calibrate applies the paper-deliberate queue calibration to a resolved
// link: RED thresholds fixed at half the link BDP capped at 400 KB (the
// "never rescaled for high-BW links" behaviour the paper observes), RED's
// idle-decay packet time from the link's own egress rate, max_p 1%, and
// fq_codel's Linux 32 MB memory_limit clamp.
func calibrate(q aqm.Config, rate units.Bandwidth, rtt time.Duration) aqm.Config {
	if q.Kind == aqm.KindRED {
		if q.RED.MaxTh <= 0 {
			q.RED.MaxTh = units.BDP(rate, rtt) / 2
			if q.RED.MaxTh > 400_000 {
				q.RED.MaxTh = 400_000
			}
		}
		if q.RED.MinTh <= 0 {
			q.RED.MinTh = q.RED.MaxTh / 3
		}
		if q.RED.MeanPktTime <= 0 {
			q.RED.MeanPktTime = units.TransmissionTime(8960, rate)
		}
		if q.RED.MaxP <= 0 {
			q.RED.MaxP = 0.01
		}
	}
	if q.Kind == aqm.KindFQCoDel && q.Capacity > 32*units.Megabyte {
		q.Capacity = 32 * units.Megabyte
	}
	return q
}

// combinedLoss merges a link's own loss rate with the grid PathLoss on the
// ConfigLoss-marked link (independent processes compose as complements).
func combinedLoss(l LinkSpec, par Params) float64 {
	loss := l.PathLoss
	if l.ConfigLoss && par.PathLoss > 0 {
		loss = 1 - (1-loss)*(1-par.PathLoss)
	}
	return loss
}

// AddFlow attaches a flow to sender class ci: a tcp.Conn injecting into
// the class's first forward link, a receiver past its last, and per-flow
// demux registrations at every divergence point along both routes. The
// flow is not started; call Flow.Conn.Start (or schedule it).
func (n *Network) AddFlow(ci int, tcpCfg tcp.Config, cc tcp.CongestionControl) *Flow {
	f := n.attach(ci, tcpCfg, cc)
	n.classes[ci].flows = append(n.classes[ci].flows, f)
	n.flows = append(n.flows, f)
	return f
}

// AddEphemeralFlow attaches a short-lived flow to class ci — same wiring
// and flow-ID sequence as AddFlow, but the flow is not recorded in the
// class or network flow lists: class goodput, retransmit totals, and
// fairness indices stay scoped to the long-running flows, and the caller
// (the open-loop workload runner) owns the flow's lifecycle and must
// ReleaseFlow it when done.
func (n *Network) AddEphemeralFlow(ci int, tcpCfg tcp.Config, cc tcp.CongestionControl) *Flow {
	return n.attach(ci, tcpCfg, cc)
}

// ReleaseFlow detaches a flow attached by AddEphemeralFlow: its demux
// registrations along both routes are removed, the sender's timers are
// cancelled, and the receiver is closed. Packets of the flow still in
// flight drain to the demux unknown-flow path (consumed + released), so
// the audit ledger settles no matter when in the transfer this is called.
func (n *Network) ReleaseFlow(f *Flow) {
	cl := n.classes[f.Sender]
	for _, h := range cl.fwdHops {
		h.d.Unregister(f.ID)
	}
	for _, h := range cl.retHops {
		h.d.Unregister(f.ID)
	}
	f.Conn.Stop()
	f.Rcv.Close()
}

func (n *Network) attach(ci int, tcpCfg tcp.Config, cc tcp.CongestionControl) *Flow {
	if ci < 0 || ci >= len(n.classes) {
		panic(fmt.Sprintf("topo: sender class must be 0..%d, got %d", len(n.classes)-1, ci))
	}
	cl := n.classes[ci]
	n.nextID++
	id := n.nextID

	fwdPort := cl.fwd
	retPort := cl.ret
	conn := tcp.NewConn(n.Eng, id, tcpCfg, cc, func(p *packet.Packet) { fwdPort.Send(p) })
	mkRcv := tcp.NewReceiver
	if tcpCfg.DelayedAck {
		mkRcv = tcp.NewDelayedAckReceiver
	}
	rcv := mkRcv(n.Eng, id, tcpCfg.Header, func(p *packet.Packet) { retPort.Send(p) })
	for _, h := range cl.fwdHops {
		if h.next != nil {
			h.d.Register(id, h.next)
		} else {
			h.d.Register(id, rcv)
		}
	}
	for _, h := range cl.retHops {
		if h.next != nil {
			h.d.Register(id, h.next)
		} else {
			h.d.Register(id, conn)
		}
	}

	return &Flow{ID: id, Sender: ci, Conn: conn, Rcv: rcv, CCName: cc.Name()}
}

// NumClasses returns how many sender classes the spec declares.
func (n *Network) NumClasses() int { return len(n.classes) }

// ClassSpec returns the declaration of class ci.
func (n *Network) ClassSpec(ci int) SenderSpec { return n.classes[ci].spec }

// Flows returns all attached flows.
func (n *Network) Flows() []*Flow { return n.flows }

// ClassFlows returns the flows attached to class ci.
func (n *Network) ClassFlows(ci int) []*Flow { return n.classes[ci].flows }

// ClassGoodput returns the cumulative contiguous bytes received across a
// class's flows — the per-sender throughput numerator.
func (n *Network) ClassGoodput(ci int) int64 {
	var total int64
	for _, f := range n.classes[ci].flows {
		total += f.Rcv.Goodput()
	}
	return total
}

// ClassRetransmits returns total retransmitted segments for one class.
func (n *Network) ClassRetransmits(ci int) uint64 {
	var total uint64
	for _, f := range n.classes[ci].flows {
		total += f.Conn.Stats().Retransmits
	}
	return total
}

// TotalRetransmits sums retransmissions across all flows.
func (n *Network) TotalRetransmits() uint64 {
	var total uint64
	for _, f := range n.flows {
		total += f.Conn.Stats().Retransmits
	}
	return total
}

// Monitor returns the monitor link's port — the "bottleneck" of the
// legacy single-bottleneck result fields.
func (n *Network) Monitor() *netem.Port { return n.monitor }

// MonitorName returns the monitor link's name.
func (n *Network) MonitorName() string { return n.Spec.monitorLink() }

// MonitorClasses returns the indices of non-background classes whose
// forward path crosses the monitor link — the classes the legacy
// utilization figure aggregates.
func (n *Network) MonitorClasses() []int {
	mon := n.Spec.monitorLink()
	var out []int
	for i, cl := range n.classes {
		for _, name := range cl.spec.Path {
			if name == mon {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Port returns the named link's port, or nil.
func (n *Network) Port(name string) *netem.Port {
	if i, ok := n.portIdx[name]; ok {
		return n.ports[i]
	}
	return nil
}

// Ports returns every port in spec link order.
func (n *Network) Ports() []*netem.Port { return n.ports }

// PortRate returns the resolved construction-time rate of port i — the
// utilization denominator even after BW-step faults mutate the live rate.
func (n *Network) PortRate(i int) units.Bandwidth { return n.rates[i] }

// ReportPorts returns the indices of links worth reporting per-port
// results for: bottleneck-role links, links with an explicit queue
// override, and the monitor link.
func (n *Network) ReportPorts() []int {
	mon := n.Spec.monitorLink()
	var out []int
	for i, l := range n.Spec.Links {
		if l.Role == RoleBottleneck || l.Queue != nil || l.Name == mon {
			out = append(out, i)
		}
	}
	return out
}

// ApplyFaults arms a fault profile on the monitor link. Build applies
// Params.Faults itself; this is for profiles decided after construction.
func (n *Network) ApplyFaults(p *faults.Profile) {
	faults.Apply(n.Eng, n.monitor, p)
}
