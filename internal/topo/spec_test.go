package topo

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/cca"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

func TestPresetsValidate(t *testing.T) {
	specs := map[string]Spec{
		"dumbbell":        DumbbellSpec(),
		"parking-lot-1":   ParkingLotSpec(1),
		"parking-lot-3":   ParkingLotSpec(3),
		"parking-lot-8":   ParkingLotSpec(8),
		"reverse-path":    ReversePathSpec(0, 0),
		"cross-traffic":   CrossTrafficSpec(""),
		"cross-traffic-b": CrossTrafficSpec("bbr1"),
	}
	for name, s := range specs {
		n := s.Normalize()
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParsePresets(t *testing.T) {
	cases := []struct {
		spec string
		id   string
	}{
		{"dumbbell", "dumbbell"},
		{"parking-lot", "parking-lot-3"},
		{"parking-lot-5", "parking-lot-5"},
		{"parking-lot:hops=2", "parking-lot-2"},
		{"reverse-path", "reverse-path-x0.01"},
		{"reverse-path:factor=0.005", "reverse-path-x0.005"},
		{"reverse-path:factor=0.02,buf=131072", "reverse-path-x0.02"},
		{"cross-traffic", "cross-traffic-cubic"},
		{"cross-traffic:cca=bbr1", "cross-traffic-bbr1"},
	}
	for _, c := range cases {
		s, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if s.ID() != c.id {
			t.Errorf("Parse(%q).ID() = %q, want %q", c.spec, s.ID(), c.id)
		}
	}
	if s, err := Parse(""); err != nil || s != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", s, err)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"bogus-topology", "unknown preset"},
		{"parking-lot:hops=0", "hops must be"},
		{"parking-lot:hops=17", "hops must be"},
		{"parking-lot-x", "hop count"},
		{"parking-lot:hops=3,color=red", "unknown key"},
		{"reverse-path:factor=0", "factor must be"},
		{"reverse-path:factor=2", "factor must be"},
		{"reverse-path:factor=NaN", "factor must be"},
		{"reverse-path:buf=-1", "buf must be"},
		{"dumbbell:frob=1", "unknown key"},
		{"dumbbell:frob", "want key=value"},
		{"{not json", "parse spec JSON"},
		{"@/nonexistent/spec.json", "read spec"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
}

// mutate applies f to a copy of the dumbbell and returns it.
func mutate(f func(*Spec)) *Spec {
	s := DumbbellSpec()
	f(&s)
	return &s
}

func TestValidateRejectsMalformedGraphs(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want string
	}{
		{"no nodes", &Spec{Links: []LinkSpec{{Name: "l", From: "a", To: "b"}}}, "at least one node"},
		{"no senders", mutate(func(s *Spec) { s.Senders = nil }), "no senders"},
		{"dup node", mutate(func(s *Spec) { s.Nodes = append(s.Nodes, NodeSpec{Name: "r1"}) }), "duplicate node"},
		{"dup link", mutate(func(s *Spec) { s.Links = append(s.Links, s.Links[1]) }), "duplicate link"},
		{"dangling from", mutate(func(s *Spec) { s.Links[0].From = "ghost" }), "unknown node"},
		{"dangling to", mutate(func(s *Spec) { s.Links[0].To = "ghost" }), "unknown node"},
		{"self loop", mutate(func(s *Spec) { s.Links[0].To = s.Links[0].From }), "self-loop"},
		{"bad role", mutate(func(s *Spec) { s.Links[0].Role = "warp" }), "unknown role"},
		{"negative rate", mutate(func(s *Spec) { s.Links[0].Rate = -1 }), "negative rate"},
		{"rate conflict", mutate(func(s *Spec) { s.Links[0].Rate = 1e6; s.Links[0].RateFactor = 0.5 }), "mutually exclusive"},
		{"negative delay", mutate(func(s *Spec) { s.Links[0].Delay = -time.Second; s.Links[0].DelayRTTFrac = 0 }), "negative delay"},
		{"delay conflict", mutate(func(s *Spec) { s.Links[0].Delay = time.Millisecond }), "mutually exclusive"},
		{"bad queue kind", mutate(func(s *Spec) { s.Links[0].Queue = &QueueSpec{Kind: "codel2"} }), "unknown discipline"},
		{"negative capacity", mutate(func(s *Spec) { s.Links[0].Queue = &QueueSpec{Capacity: -5} }), "negative queue capacity"},
		{"bad monitor", mutate(func(s *Spec) { s.Monitor = "nope" }), "monitor names unknown link"},
		{"dup sender", mutate(func(s *Spec) { s.Senders[1].Name = "s1" }), "duplicate sender"},
		{"empty route", mutate(func(s *Spec) { s.Senders[0].Path = nil }), "empty path route"},
		{"unknown route link", mutate(func(s *Spec) { s.Senders[0].Path = []string{"warp"} }), "unknown link"},
		{"disconnected route", mutate(func(s *Spec) { s.Senders[0].Path = []string{"c1->r1", "r2->srv"} }), "route breaks"},
		{"route cycle", mutate(func(s *Spec) {
			s.Links = append(s.Links, LinkSpec{Name: "r2->r1b", From: "r2", To: "r1"})
			s.Senders[0].Path = []string{"c1->r1", "r1->r2", "r2->r1b"}
		}), "cycle"},
		{"too many flows", mutate(func(s *Spec) { s.Senders[0].Flows = maxFlows + 1 }), "exceeds"},
	}
	for _, c := range cases {
		n := c.spec.Normalize()
		err := n.Validate()
		if err == nil {
			t.Errorf("%s: validated", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestIsDumbbell(t *testing.T) {
	if !IsDumbbell(nil) {
		t.Error("nil spec is the dumbbell")
	}
	d := DumbbellSpec()
	if !IsDumbbell(&d) {
		t.Error("preset dumbbell not recognized")
	}
	// Cosmetic respellings must still fold to the dumbbell.
	cos := DumbbellSpec()
	cos.Links[1].Role = " Bottleneck "
	cos.Monitor = " r1->r2 "
	if !IsDumbbell(&cos) {
		t.Error("cosmetically respelled dumbbell not recognized")
	}
	pl := ParkingLotSpec(3)
	if IsDumbbell(&pl) {
		t.Error("parking lot mistaken for the dumbbell")
	}
	// Same graph, different name: not canonically the dumbbell (name is
	// identity — it lands in ID and filenames).
	renamed := DumbbellSpec()
	renamed.Name = "dumbbell2"
	if IsDumbbell(&renamed) {
		t.Error("renamed dumbbell treated as canonical")
	}
}

func TestSpecKeyAndID(t *testing.T) {
	d := DumbbellSpec()
	pl := ParkingLotSpec(3)
	if d.Key() == pl.Key() {
		t.Error("distinct graphs share a content key")
	}
	if pl.ID() != "parking-lot-3" {
		t.Errorf("ID = %q", pl.ID())
	}
	anon := DumbbellSpec()
	anon.Name = ""
	if id := anon.ID(); !strings.HasPrefix(id, "graph-") || len(id) != len("graph-")+8 {
		t.Errorf("anonymous spec ID = %q, want graph-<hash8>", id)
	}
	// Key is order-sensitive on links (construction order is science: it
	// fixes RNG derivation order), so a reordered graph is a different key.
	swapped := DumbbellSpec()
	swapped.Links[2], swapped.Links[3] = swapped.Links[3], swapped.Links[2]
	swapped.Name = d.Name
	if swapped.Key() == d.Key() {
		t.Error("link order does not affect the content key")
	}
}

// TestBuildDemuxRouting: a built parking lot must deliver every class's
// packets end to end through shared bottlenecks — the demux-per-divergent-
// link wiring — and account all goodput on the right class.
func TestBuildDemuxRouting(t *testing.T) {
	eng := sim.NewEngine(1)
	n, err := Build(eng, ParkingLotSpec(2), Params{
		Bottleneck: 20 * units.MegabitPerSec,
		RTT:        40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumClasses() != 3 {
		t.Fatalf("classes = %d, want 3 (long, hop1, hop2)", n.NumClasses())
	}
	for ci := 0; ci < n.NumClasses(); ci++ {
		f := n.AddFlow(ci, tcp.Config{}, cca.MustNew(cca.Cubic))
		eng.Schedule(0, f.Conn.Start)
	}
	eng.RunFor(3 * time.Second)
	for ci := 0; ci < n.NumClasses(); ci++ {
		if g := n.ClassGoodput(ci); g <= 0 {
			t.Errorf("class %d (%s) moved no data", ci, n.ClassSpec(ci).Name)
		}
	}
	// The long class crosses both bottlenecks; hop classes exactly one.
	mc := n.MonitorClasses()
	if len(mc) != 2 { // long + hop1 cross b1
		t.Errorf("monitor classes = %v, want [long hop1] indices", mc)
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	pl := ParkingLotSpec(2)
	data, err := json.Marshal(pl.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Parse(string(data))
	if err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	if rt.Key() != pl.Key() {
		t.Errorf("identity lost in JSON round trip: %s vs %s", rt.Key(), pl.Key())
	}
}
