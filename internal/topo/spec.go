package topo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/aqm"
	"repro/internal/faults"
	"repro/internal/units"
)

// Link roles. A role picks the rate, delay, and queue a link gets when the
// spec does not pin them explicitly, so one spec can be swept across the
// grid's bottleneck-bandwidth and AQM axes without rewriting every link.
const (
	// RoleBottleneck resolves to the grid's bottleneck bandwidth and the AQM
	// configuration under test.
	RoleBottleneck = "bottleneck"
	// RoleEdge resolves to the host NIC rate (EdgeBW) with a deep FIFO — the
	// injection links flows transmit into.
	RoleEdge = "edge"
	// RoleCore resolves to the backbone rate (CoreBW), never the congestion
	// point. Links with an empty role are core links.
	RoleCore = "core"
)

// Spec is a declarative, JSON-serializable network graph: nodes,
// unidirectional links, and per-sender-class static routes. It is pure data
// and part of experiment science identity — two configs with the same
// normalized spec simulate identically, and experiment.Config folds the
// spec into Config.Key. Build instantiates it on an engine.
type Spec struct {
	// Name labels the spec ("dumbbell", "parking-lot-3"); preset generators
	// set it and ID prefers it over the content hash.
	Name  string     `json:"name,omitempty"`
	Nodes []NodeSpec `json:"nodes"`
	Links []LinkSpec `json:"links"`
	// Senders declares the traffic classes. Class i of a built Network
	// corresponds to Senders[i]; experiment.Run maps the grid pairing onto
	// classes by index (0 → CCA1, others → CCA2) unless a class pins its CCA.
	Senders []SenderSpec `json:"senders"`
	// Monitor names the link whose queue fills the legacy single-bottleneck
	// result fields and receives Config.Faults. Empty selects the first
	// bottleneck-role link.
	Monitor string `json:"monitor,omitempty"`
}

// NodeSpec is a named vertex. Nodes carry no behaviour of their own — all
// queueing and delay live on links — but every link endpoint must be
// declared, which is what lets Validate reject dangling references.
type NodeSpec struct {
	Name string `json:"name"`
}

// LinkSpec is one unidirectional link: a netem port at From with
// propagation toward To. Rate and delay may be pinned absolutely, scaled
// off the grid parameters, or left to the role default.
type LinkSpec struct {
	Name string `json:"name"`
	From string `json:"from"`
	To   string `json:"to"`
	// Role selects parameter defaults; see the Role constants. Empty = core.
	Role string `json:"role,omitempty"`

	// Rate pins the link rate absolutely; RateFactor scales the grid
	// bottleneck bandwidth (reverse-path uses it to constrain the ACK
	// channel proportionally). At most one may be set; zero defers to the
	// role default.
	Rate       units.Bandwidth `json:"rate_bps,omitempty"`
	RateFactor float64         `json:"rate_factor,omitempty"`

	// Delay pins the one-way propagation delay absolutely; DelayRTTFrac
	// scales the grid RTT (the dumbbell's legs are 1/8 and 1/4 of RTT).
	// Both zero means a zero-delay link.
	Delay        time.Duration `json:"delay_ns,omitempty"`
	DelayRTTFrac float64       `json:"delay_rtt_frac,omitempty"`

	// Queue overrides the role's queue. Nil keeps the role default
	// (bottleneck → the grid AQM under test, edge → deep FIFO, core →
	// effectively unbounded FIFO).
	Queue *QueueSpec `json:"queue,omitempty"`

	// PathLoss arms uniform random loss on this link. ConfigLoss marks the
	// link that additionally receives the grid Config.PathLoss (the
	// dumbbell's forward core segment).
	PathLoss   float64 `json:"path_loss,omitempty"`
	ConfigLoss bool    `json:"config_loss,omitempty"`

	// Faults arms a per-link fault timeline at build time, independent of
	// the Config.Faults profile applied to the monitor link.
	Faults *faults.Profile `json:"faults,omitempty"`
}

// QueueSpec pins a link's queue discipline. Capacity may be absolute bytes
// or a BDP multiple of the link's resolved rate × the grid RTT.
type QueueSpec struct {
	Kind     string         `json:"kind,omitempty"` // aqm kind; empty = fifo
	Capacity units.ByteSize `json:"capacity_bytes,omitempty"`
	BDP      float64        `json:"bdp,omitempty"`
	ECN      bool           `json:"ecn,omitempty"`
}

// SenderSpec is one traffic class: where its flows inject, the ordered
// links their data and ACKs traverse, and optional CCA/flow-count pins.
type SenderSpec struct {
	Name string `json:"name"`
	// Path is the ordered list of link names data packets traverse; flows
	// inject into Path[0] and the receiver sits past the last link.
	Path []string `json:"path"`
	// Return is the ordered ACK route back to the sender.
	Return []string `json:"return"`
	// CCA pins the class's congestion controller ("cubic", "bbr1", ...).
	// Empty defers to the grid pairing by class index.
	CCA string `json:"cca,omitempty"`
	// Flows pins the class's flow count; zero defers to FlowsPerSender.
	Flows int `json:"flows,omitempty"`
	// Background marks ambient cross-traffic, excluded from the legacy
	// two-sender fairness fields (still present in Result.Groups).
	Background bool `json:"background,omitempty"`
}

// Sanity bounds enforced by Validate — far above any realistic scenario,
// they exist to keep fuzzed and hostile specs from ballooning a build.
const (
	maxNodes   = 256
	maxLinks   = 256
	maxSenders = 64
	maxFlows   = 4096
)

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Normalize returns the canonical form of the spec: names trimmed, empty
// roles resolved to "core", loss probabilities clamped to [0,1] (NaN → 0,
// mirroring faults), fault profiles normalized (empty → nil), and all-zero
// queue overrides dropped. Canonical form is what ID, Key and the
// experiment identity hash see, so cosmetic spellings of the same graph
// share one identity.
func (s Spec) Normalize() Spec {
	s.Name = strings.TrimSpace(s.Name)
	s.Monitor = strings.TrimSpace(s.Monitor)
	nodes := make([]NodeSpec, len(s.Nodes))
	for i, n := range s.Nodes {
		n.Name = strings.TrimSpace(n.Name)
		nodes[i] = n
	}
	s.Nodes = nodes
	links := make([]LinkSpec, len(s.Links))
	for i, l := range s.Links {
		l.Name = strings.TrimSpace(l.Name)
		l.From = strings.TrimSpace(l.From)
		l.To = strings.TrimSpace(l.To)
		l.Role = strings.ToLower(strings.TrimSpace(l.Role))
		if l.Role == "" {
			l.Role = RoleCore
		}
		if !(l.PathLoss > 0) { // negatives and NaN clamp to 0
			l.PathLoss = 0
		} else if l.PathLoss > 1 {
			l.PathLoss = 1
		}
		if l.Queue != nil {
			q := *l.Queue
			q.Kind = strings.ToLower(strings.TrimSpace(q.Kind))
			if q == (QueueSpec{}) {
				l.Queue = nil
			} else {
				l.Queue = &q
			}
		}
		if l.Faults != nil {
			f := l.Faults.Normalize()
			if f.Empty() {
				l.Faults = nil
			} else {
				l.Faults = &f
			}
		}
		links[i] = l
	}
	s.Links = links
	senders := make([]SenderSpec, len(s.Senders))
	for i, sd := range s.Senders {
		sd.Name = strings.TrimSpace(sd.Name)
		sd.CCA = strings.ToLower(strings.TrimSpace(sd.CCA))
		if sd.Flows < 0 {
			sd.Flows = 0
		}
		path := make([]string, len(sd.Path))
		for j, ln := range sd.Path {
			path[j] = strings.TrimSpace(ln)
		}
		sd.Path = path
		ret := make([]string, len(sd.Return))
		for j, ln := range sd.Return {
			ret[j] = strings.TrimSpace(ln)
		}
		sd.Return = ret
		senders[i] = sd
	}
	s.Senders = senders
	return s
}

// Validate rejects malformed graphs: duplicate or empty names, dangling
// node references, self-loops, non-finite or negative parameters, unknown
// roles and queue kinds, routes over undeclared links, disconnected route
// steps, and routes that revisit a node (the static-route cycle guard).
// Call on a normalized spec; Build normalizes and validates internally.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if len(s.Nodes) == 0 || len(s.Links) == 0 {
		return fmt.Errorf("topo: spec needs at least one node and one link")
	}
	if len(s.Senders) == 0 {
		return fmt.Errorf("topo: spec declares no senders")
	}
	if len(s.Nodes) > maxNodes || len(s.Links) > maxLinks || len(s.Senders) > maxSenders {
		return fmt.Errorf("topo: spec too large (max %d nodes, %d links, %d senders)",
			maxNodes, maxLinks, maxSenders)
	}
	nodes := make(map[string]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("topo: node with empty name")
		}
		if nodes[n.Name] {
			return fmt.Errorf("topo: duplicate node %q", n.Name)
		}
		nodes[n.Name] = true
	}
	links := make(map[string]*LinkSpec, len(s.Links))
	for i := range s.Links {
		l := &s.Links[i]
		if l.Name == "" {
			return fmt.Errorf("topo: link %d has empty name", i)
		}
		if _, dup := links[l.Name]; dup {
			return fmt.Errorf("topo: duplicate link %q", l.Name)
		}
		if !nodes[l.From] {
			return fmt.Errorf("topo: link %q: unknown node %q", l.Name, l.From)
		}
		if !nodes[l.To] {
			return fmt.Errorf("topo: link %q: unknown node %q", l.Name, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("topo: link %q: self-loop at %q", l.Name, l.From)
		}
		switch l.Role {
		case RoleBottleneck, RoleEdge, RoleCore:
		default:
			return fmt.Errorf("topo: link %q: unknown role %q (want bottleneck, edge or core)",
				l.Name, l.Role)
		}
		if l.Rate < 0 {
			return fmt.Errorf("topo: link %q: negative rate", l.Name)
		}
		if !finite(l.RateFactor) || l.RateFactor < 0 {
			return fmt.Errorf("topo: link %q: rate factor must be finite and non-negative", l.Name)
		}
		if l.Rate > 0 && l.RateFactor > 0 {
			return fmt.Errorf("topo: link %q: rate and rate_factor are mutually exclusive", l.Name)
		}
		if l.Delay < 0 {
			return fmt.Errorf("topo: link %q: negative delay", l.Name)
		}
		if !finite(l.DelayRTTFrac) || l.DelayRTTFrac < 0 {
			return fmt.Errorf("topo: link %q: delay fraction must be finite and non-negative", l.Name)
		}
		if l.Delay > 0 && l.DelayRTTFrac > 0 {
			return fmt.Errorf("topo: link %q: delay and delay_rtt_frac are mutually exclusive", l.Name)
		}
		if q := l.Queue; q != nil {
			if q.Kind != "" {
				if _, err := aqm.ParseKind(q.Kind); err != nil {
					return fmt.Errorf("topo: link %q: %w", l.Name, err)
				}
			}
			if q.Capacity < 0 {
				return fmt.Errorf("topo: link %q: negative queue capacity", l.Name)
			}
			if !finite(q.BDP) || q.BDP < 0 {
				return fmt.Errorf("topo: link %q: queue bdp must be finite and non-negative", l.Name)
			}
		}
		links[l.Name] = l
	}
	if s.Monitor != "" {
		if _, ok := links[s.Monitor]; !ok {
			return fmt.Errorf("topo: monitor names unknown link %q", s.Monitor)
		}
	}
	senderNames := make(map[string]bool, len(s.Senders))
	totalFlows := 0
	for i, sd := range s.Senders {
		if sd.Name == "" {
			return fmt.Errorf("topo: sender %d has empty name", i)
		}
		if senderNames[sd.Name] {
			return fmt.Errorf("topo: duplicate sender %q", sd.Name)
		}
		senderNames[sd.Name] = true
		if sd.Flows > maxFlows {
			return fmt.Errorf("topo: sender %q: flows exceeds %d", sd.Name, maxFlows)
		}
		totalFlows += sd.Flows
		if err := validRoute(sd.Name, "path", sd.Path, links); err != nil {
			return err
		}
		if err := validRoute(sd.Name, "return", sd.Return, links); err != nil {
			return err
		}
	}
	if totalFlows > maxFlows {
		return fmt.Errorf("topo: total pinned flows exceed %d", maxFlows)
	}
	return nil
}

// validRoute checks one static route: non-empty, every link declared, each
// hop starting where the previous one ended, and no node visited twice —
// a repeated node is a routing cycle, which a static per-flow route can
// never legitimately contain.
func validRoute(sender, kind string, route []string, links map[string]*LinkSpec) error {
	if len(route) == 0 {
		return fmt.Errorf("topo: sender %q: empty %s route", sender, kind)
	}
	visited := make(map[string]bool, len(route)+1)
	var prev *LinkSpec
	for _, name := range route {
		l, ok := links[name]
		if !ok {
			return fmt.Errorf("topo: sender %q: %s route uses unknown link %q", sender, kind, name)
		}
		if prev != nil && prev.To != l.From {
			return fmt.Errorf("topo: sender %q: %s route breaks at %q→%q (node %q != %q)",
				sender, kind, prev.Name, l.Name, prev.To, l.From)
		}
		if visited[l.From] {
			return fmt.Errorf("topo: sender %q: %s route revisits node %q (cycle)",
				sender, kind, l.From)
		}
		visited[l.From] = true
		prev = l
	}
	if visited[prev.To] {
		return fmt.Errorf("topo: sender %q: %s route revisits node %q (cycle)",
			sender, kind, prev.To)
	}
	return nil
}

// monitorLink resolves the monitor link name on a normalized, valid spec:
// the explicit Monitor, else the first bottleneck-role link, else the
// first link.
func (s *Spec) monitorLink() string {
	if s.Monitor != "" {
		return s.Monitor
	}
	for _, l := range s.Links {
		if l.Role == RoleBottleneck {
			return l.Name
		}
	}
	return s.Links[0].Name
}

// Canonical renders the normalized spec as canonical JSON — the byte form
// the identity hash covers.
func (s *Spec) Canonical() []byte {
	n := s.Normalize()
	data, err := json.Marshal(n)
	if err != nil { // pure data; cannot happen
		panic(err)
	}
	return data
}

// Key is the spec's content address: a hex digest of the canonical JSON.
func (s *Spec) Key() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])[:16]
}

// ID renders a short identifier for experiment IDs and filenames: the
// preset name when the spec has one, otherwise "graph-" plus the content
// hash.
func (s *Spec) ID() string {
	if s == nil {
		return ""
	}
	if n := s.Normalize(); n.Name != "" {
		return sanitizeID(n.Name)
	}
	return "graph-" + s.Key()[:8]
}

func sanitizeID(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-', r == '.', r == '_':
			return r
		}
		return '-'
	}, name)
}

// IsDumbbell reports whether the spec is (canonically) the preset paper
// dumbbell. experiment.Config.Normalize uses this to drop an explicit
// dumbbell spec from the config, keeping `-topo dumbbell` byte- and
// key-identical to a legacy config with no topology at all.
func IsDumbbell(s *Spec) bool {
	if s == nil {
		return true
	}
	return string(s.Canonical()) == string(dumbbellCanonical())
}

var dumbbellCanonicalJSON []byte

func dumbbellCanonical() []byte {
	if dumbbellCanonicalJSON == nil {
		sp := DumbbellSpec()
		dumbbellCanonicalJSON = sp.Canonical()
	}
	return dumbbellCanonicalJSON
}

func nodeList(names ...string) []NodeSpec {
	out := make([]NodeSpec, len(names))
	for i, n := range names {
		out[i] = NodeSpec{Name: n}
	}
	return out
}

// DumbbellSpec returns the paper's Fig. 1 dumbbell as a declarative spec:
// two client nodes feeding router r1, the r1→r2 bottleneck under test, two
// server nodes past r2, and an uncongested reverse core for ACKs. Link
// order mirrors the historical wiring order exactly — port construction
// order determines telemetry ring order and per-port RNG derivation, so
// this spec builds byte-identical results to the pre-spec NewDumbbell.
func DumbbellSpec() Spec {
	return Spec{
		Name:  "dumbbell",
		Nodes: nodeList("c1", "c2", "r1", "r2", "srv", "cli", "s1", "s2"),
		Links: []LinkSpec{
			{Name: "r2->srv", From: "r2", To: "srv", Role: RoleCore, DelayRTTFrac: 0.125, ConfigLoss: true},
			{Name: "r1->r2", From: "r1", To: "r2", Role: RoleBottleneck, DelayRTTFrac: 0.25},
			{Name: "c1->r1", From: "c1", To: "r1", Role: RoleEdge, DelayRTTFrac: 0.125},
			{Name: "c2->r1", From: "c2", To: "r1", Role: RoleEdge, DelayRTTFrac: 0.125},
			{Name: "r1->cli", From: "r1", To: "cli", Role: RoleCore, DelayRTTFrac: 0.125},
			{Name: "r2->r1", From: "r2", To: "r1", Role: RoleCore, DelayRTTFrac: 0.25},
			{Name: "s1->r2", From: "s1", To: "r2", Role: RoleEdge, DelayRTTFrac: 0.125},
			{Name: "s2->r2", From: "s2", To: "r2", Role: RoleEdge, DelayRTTFrac: 0.125},
		},
		Senders: []SenderSpec{
			{Name: "s1", Path: []string{"c1->r1", "r1->r2", "r2->srv"},
				Return: []string{"s1->r2", "r2->r1", "r1->cli"}},
			{Name: "s2", Path: []string{"c2->r1", "r1->r2", "r2->srv"},
				Return: []string{"s2->r2", "r2->r1", "r1->cli"}},
		},
		Monitor: "r1->r2",
	}
}

// ParkingLotSpec returns an N-bottleneck parking lot: one long flow class
// traverses every bottleneck b1..bN while a per-hop class enters and exits
// at each hop, contending on exactly one bottleneck. The long class is
// class 0 (the grid pairing's CCA1); hop classes take CCA2. Monitor is b1.
func ParkingLotSpec(hops int) Spec {
	if hops < 1 {
		hops = 1
	}
	r := func(i int) string { return fmt.Sprintf("r%d", i) }
	s := Spec{
		Name:    fmt.Sprintf("parking-lot-%d", hops),
		Monitor: "b1",
	}
	s.Nodes = nodeList("src", "dst")
	for i := 0; i <= hops; i++ {
		s.Nodes = append(s.Nodes, NodeSpec{Name: r(i)})
	}
	for i := 1; i <= hops; i++ {
		s.Nodes = append(s.Nodes,
			NodeSpec{Name: fmt.Sprintf("h%ds", i)},
			NodeSpec{Name: fmt.Sprintf("h%dd", i)})
	}
	// Bottleneck delays split the long path's one-way RTT/2 across the
	// chain: 1/8 on each end leg, the rest shared by the bottlenecks.
	bFrac := 0.25 / float64(hops)

	long := SenderSpec{Name: "long", Path: []string{"src->r0"}}
	s.Links = append(s.Links, LinkSpec{
		Name: "src->r0", From: "src", To: r(0), Role: RoleEdge, DelayRTTFrac: 0.125})
	for i := 1; i <= hops; i++ {
		b := fmt.Sprintf("b%d", i)
		s.Links = append(s.Links, LinkSpec{
			Name: b, From: r(i - 1), To: r(i), Role: RoleBottleneck, DelayRTTFrac: bFrac})
		long.Path = append(long.Path, b)
	}
	last := fmt.Sprintf("%s->dst", r(hops))
	s.Links = append(s.Links, LinkSpec{
		Name: last, From: r(hops), To: "dst", Role: RoleCore, DelayRTTFrac: 0.125})
	long.Path = append(long.Path, last)

	// Per-hop entry/exit links.
	for i := 1; i <= hops; i++ {
		s.Links = append(s.Links,
			LinkSpec{Name: fmt.Sprintf("h%ds->%s", i, r(i-1)), From: fmt.Sprintf("h%ds", i),
				To: r(i - 1), Role: RoleEdge, DelayRTTFrac: 0.125},
			LinkSpec{Name: fmt.Sprintf("%s->h%dd", r(i), i), From: r(i),
				To: fmt.Sprintf("h%dd", i), Role: RoleCore, DelayRTTFrac: 0.125})
	}

	// Reverse (ACK) core: dst back down the chain to src, plus per-hop
	// host returns that share the reverse routers.
	s.Links = append(s.Links, LinkSpec{
		Name: "dst->" + r(hops), From: "dst", To: r(hops), Role: RoleEdge, DelayRTTFrac: 0.125})
	long.Return = []string{"dst->" + r(hops)}
	for i := hops; i >= 1; i-- {
		rev := fmt.Sprintf("%s->%s", r(i), r(i-1))
		s.Links = append(s.Links, LinkSpec{
			Name: rev, From: r(i), To: r(i - 1), Role: RoleCore, DelayRTTFrac: bFrac})
		long.Return = append(long.Return, rev)
	}
	s.Links = append(s.Links, LinkSpec{
		Name: r(0) + "->src", From: r(0), To: "src", Role: RoleCore, DelayRTTFrac: 0.125})
	long.Return = append(long.Return, r(0)+"->src")
	for i := 1; i <= hops; i++ {
		s.Links = append(s.Links,
			LinkSpec{Name: fmt.Sprintf("h%dd->%s", i, r(i)), From: fmt.Sprintf("h%dd", i),
				To: r(i), Role: RoleEdge, DelayRTTFrac: 0.125},
			LinkSpec{Name: fmt.Sprintf("%s->h%ds", r(i-1), i), From: r(i - 1),
				To: fmt.Sprintf("h%ds", i), Role: RoleCore, DelayRTTFrac: 0.125})
	}

	s.Senders = append(s.Senders, long)
	for i := 1; i <= hops; i++ {
		s.Senders = append(s.Senders, SenderSpec{
			Name: fmt.Sprintf("hop%d", i),
			Path: []string{
				fmt.Sprintf("h%ds->%s", i, r(i-1)),
				fmt.Sprintf("b%d", i),
				fmt.Sprintf("%s->h%dd", r(i), i),
			},
			Return: []string{
				fmt.Sprintf("h%dd->%s", i, r(i)),
				fmt.Sprintf("%s->%s", r(i), r(i-1)),
				fmt.Sprintf("%s->h%ds", r(i-1), i),
			},
		})
	}
	return s
}

// ReversePathSpec returns the dumbbell with a constrained return core: the
// r2→r1 ACK channel is throttled to factor × the forward bottleneck rate
// behind a small FIFO, so acknowledgements themselves congest — the
// classic reverse-path/ACK-congestion scenario. buf is the return queue in
// bytes (0 selects 64 KB).
func ReversePathSpec(factor float64, buf units.ByteSize) Spec {
	if !(factor > 0) {
		factor = 0.01
	}
	if buf <= 0 {
		buf = 64 * 1024
	}
	s := DumbbellSpec()
	s.Name = fmt.Sprintf("reverse-path-x%g", factor)
	for i := range s.Links {
		if s.Links[i].Name == "r2->r1" {
			s.Links[i].RateFactor = factor
			s.Links[i].Queue = &QueueSpec{Kind: string(aqm.KindFIFO), Capacity: buf}
		}
	}
	return s
}

// CrossTrafficSpec returns the dumbbell plus a background elephant class
// sharing the bottleneck hop: a third sender with its own edge hosts whose
// flows cross r1→r2 alongside the measured pair. cc pins the background
// CCA (empty = cubic).
func CrossTrafficSpec(cc string) Spec {
	cc = strings.ToLower(strings.TrimSpace(cc))
	if cc == "" {
		cc = "cubic"
	}
	s := DumbbellSpec()
	s.Name = "cross-traffic-" + cc
	s.Nodes = append(s.Nodes, NodeSpec{Name: "cx"}, NodeSpec{Name: "cxd"})
	s.Links = append(s.Links,
		LinkSpec{Name: "cx->r1", From: "cx", To: "r1", Role: RoleEdge, DelayRTTFrac: 0.125},
		LinkSpec{Name: "r2->cxd", From: "r2", To: "cxd", Role: RoleCore, DelayRTTFrac: 0.125},
		LinkSpec{Name: "cxd->r2", From: "cxd", To: "r2", Role: RoleEdge, DelayRTTFrac: 0.125},
		LinkSpec{Name: "r1->cx", From: "r1", To: "cx", Role: RoleCore, DelayRTTFrac: 0.125},
	)
	s.Senders = append(s.Senders, SenderSpec{
		Name:       "bg",
		Path:       []string{"cx->r1", "r1->r2", "r2->cxd"},
		Return:     []string{"cxd->r2", "r2->r1", "r1->cx"},
		CCA:        cc,
		Background: true,
	})
	return s
}

// Parse builds a spec from a CLI value. Four forms are accepted:
//
//   - "" — nil spec (the legacy dumbbell path)
//
//   - "@path" — read a JSON Spec from a file
//
//   - "{...}" — an inline JSON Spec
//
//   - a preset clause — "name" or "name:key=value,...". Presets and their
//     keys (defaults in parentheses):
//
//     dumbbell
//     parking-lot    hops (3); "parking-lot-N" is shorthand for hops=N
//     reverse-path   factor (0.01), buf (65536 bytes)
//     cross-traffic  cca (cubic)
//
// Parsed specs are normalized and validated; "dumbbell" returns a non-nil
// spec that experiment.Config.Normalize folds away.
func Parse(spec string) (*Spec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("topo: read spec: %w", err)
		}
		return parseJSON(data)
	}
	if strings.HasPrefix(spec, "{") {
		return parseJSON([]byte(spec))
	}
	s, err := parsePreset(spec)
	if err != nil {
		return nil, err
	}
	n := s.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

func parseJSON(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("topo: parse spec JSON: %w", err)
	}
	n := s.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// parsePreset resolves one "name[:k=v,...]" clause.
func parsePreset(clause string) (Spec, error) {
	name, argstr, _ := strings.Cut(clause, ":")
	name = strings.TrimSpace(name)
	args := map[string]string{}
	if argstr != "" {
		for _, kv := range strings.Split(argstr, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Spec{}, fmt.Errorf("topo: bad preset argument %q (want key=value)", kv)
			}
			args[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	getInt := func(key string, def int) (int, error) {
		v, ok := args[key]
		if !ok {
			return def, nil
		}
		delete(args, key)
		i, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("topo: %s: bad %s: %w", name, key, err)
		}
		return i, nil
	}
	getFloat := func(key string, def float64) (float64, error) {
		v, ok := args[key]
		if !ok {
			return def, nil
		}
		delete(args, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("topo: %s: bad %s: %w", name, key, err)
		}
		return f, nil
	}

	var s Spec
	switch {
	case name == "dumbbell":
		s = DumbbellSpec()
	case name == "parking-lot" || strings.HasPrefix(name, "parking-lot-"):
		def := 3
		if suffix, ok := strings.CutPrefix(name, "parking-lot-"); ok {
			n, err := strconv.Atoi(suffix)
			if err != nil {
				return Spec{}, fmt.Errorf("topo: bad parking-lot hop count %q", suffix)
			}
			def = n
		}
		hops, err := getInt("hops", def)
		if err != nil {
			return Spec{}, err
		}
		if hops < 1 || hops > 16 {
			return Spec{}, fmt.Errorf("topo: parking-lot: hops must be 1..16, got %d", hops)
		}
		s = ParkingLotSpec(hops)
	case name == "reverse-path":
		factor, err := getFloat("factor", 0.01)
		if err != nil {
			return Spec{}, err
		}
		if !finite(factor) || factor <= 0 || factor > 1 {
			return Spec{}, fmt.Errorf("topo: reverse-path: factor must be in (0,1]")
		}
		buf, err := getInt("buf", 64*1024)
		if err != nil {
			return Spec{}, err
		}
		if buf <= 0 {
			return Spec{}, fmt.Errorf("topo: reverse-path: buf must be positive")
		}
		s = ReversePathSpec(factor, units.ByteSize(buf))
	case name == "cross-traffic":
		cc := args["cca"]
		delete(args, "cca")
		s = CrossTrafficSpec(cc)
	default:
		return Spec{}, fmt.Errorf(
			"topo: unknown preset %q (want dumbbell, parking-lot[-N], reverse-path or cross-traffic)",
			name)
	}
	for k := range args {
		return Spec{}, fmt.Errorf("topo: %s: unknown key %q", name, k)
	}
	return s, nil
}
