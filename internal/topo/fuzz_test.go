package topo

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzTopoSpec throws arbitrary spec clauses at the topology parser. A
// clause may be rejected, but an accepted one must yield a spec that
// validates (no cycles, no dangling references, finite parameters), whose
// normal form is a fixed point, and whose content key survives a JSON
// round trip — the properties experiment identity and the graph builder
// rely on. Build trusts Validate, so anything Parse lets through here is
// something Build must not crash on.
func FuzzTopoSpec(f *testing.F) {
	for _, s := range []string{
		"",
		"dumbbell",
		"parking-lot",
		"parking-lot-5",
		"parking-lot:hops=2",
		"parking-lot:hops=0",
		"parking-lot-999",
		"reverse-path",
		"reverse-path:factor=0.005,buf=131072",
		"reverse-path:factor=NaN",
		"reverse-path:factor=2",
		"cross-traffic",
		"cross-traffic:cca=bbr1",
		"dumbbell:frob=1",
		"bogus",
		"{",
		`{"name":"x"}`,
		`{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"name":"l","from":"a","to":"b"}],"senders":[{"name":"s","path":["l"],"return":["l"]}]}`,
		`{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"name":"l","from":"a","to":"a"}],"senders":[{"name":"s","path":["l"],"return":["l"]}]}`,
		`{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"name":"l","from":"a","to":"b","rate_factor":1e308}],"senders":[{"name":"s","path":["l"],"return":["l"]}]}`,
		`{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"name":"l","from":"a","to":"b","path_loss":-3}],"senders":[{"name":"s","path":["l"],"return":["l"]}]}`,
		`{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"name":"l","from":"a","to":"b","queue":{"kind":"red","bdp":2}}],"senders":[{"name":"s","path":["l"],"return":["l"]}],"monitor":"l"}`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, clause string) {
		if strings.HasPrefix(strings.TrimSpace(clause), "@") {
			t.Skip("file specs read the filesystem")
		}
		s, err := Parse(clause)
		if err != nil {
			if s != nil {
				t.Fatalf("Parse(%q) returned both a spec and %v", clause, err)
			}
			return
		}
		if s == nil {
			return // blank clause: the legacy dumbbell path
		}
		// Parse promises a normalized, valid spec.
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid spec: %v", clause, verr)
		}
		n := s.Normalize()
		if again := n.Normalize(); !reflect.DeepEqual(n, again) {
			t.Fatalf("Normalize not idempotent for %q:\n%+v\n%+v", clause, n, again)
		}
		for _, l := range n.Links {
			if !finite(l.PathLoss) || l.PathLoss < 0 || l.PathLoss > 1 {
				t.Fatalf("Parse(%q): link %q path loss %v escaped clamping", clause, l.Name, l.PathLoss)
			}
			if !finite(l.RateFactor) || !finite(l.DelayRTTFrac) {
				t.Fatalf("Parse(%q): link %q non-finite factor survived", clause, l.Name)
			}
		}
		// Identity must be stable across normalization and a JSON round
		// trip — specs travel inside checkpointed experiment configs.
		if s.Key() != n.Key() {
			t.Fatalf("Parse(%q): key changes under normalization: %q vs %q", clause, s.Key(), n.Key())
		}
		data, jerr := json.Marshal(&n)
		if jerr != nil {
			t.Fatalf("Parse(%q): spec does not marshal: %v", clause, jerr)
		}
		rt, rerr := Parse(string(data))
		if rerr != nil {
			t.Fatalf("Parse(%q): round trip rejected %s: %v", clause, data, rerr)
		}
		if rt.Key() != s.Key() {
			t.Fatalf("Parse(%q): key lost in JSON round trip: %q vs %q", clause, s.Key(), rt.Key())
		}
	})
}
