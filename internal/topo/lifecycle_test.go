package topo

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/cca"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

func auditedDumbbell(t *testing.T) (*sim.Engine, *audit.Auditor, *Dumbbell) {
	t.Helper()
	eng := sim.NewEngine(1)
	aud := audit.New(t.Name())
	eng.SetAuditor(aud)
	d, err := NewDumbbell(eng, Config{
		BottleneckBW: 100 * units.MegabitPerSec,
		Queue: aqm.Config{
			Kind:     aqm.KindFIFO,
			Capacity: units.QueueBytes(100*units.MegabitPerSec, 62*time.Millisecond, 2, 8960),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, aud, d
}

// finish settles the auditor, converting a violation panic into a test
// error (or, when expect is true, into success).
func finish(t *testing.T, aud *audit.Auditor, expectViolation bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			if expectViolation {
				t.Fatal("auditor settled; want a conservation violation")
			}
			return
		}
		v, ok := r.(*audit.Violation)
		if !ok {
			panic(r)
		}
		if !expectViolation {
			t.Fatalf("audit violation: %v", v)
		}
	}()
	aud.Finish()
}

// TestEphemeralFlowLifecycleSettles is the dynamic-flow audit story: with
// one elephant holding the link, an ephemeral flow that completes and is
// released, and another torn down mid-transfer with packets still in
// flight, the conservation ledger must settle — strays drain through the
// demux unknown-flow path.
func TestEphemeralFlowLifecycleSettles(t *testing.T) {
	eng, aud, d := auditedDumbbell(t)

	elephant := d.AddFlow(0, tcp.Config{}, cca.MustNew(cca.Cubic))
	elephant.Conn.Start()

	// Ephemeral flow 1: a 200 KB mouse that completes and is released.
	completed := false
	e1 := d.AddEphemeralFlow(1, tcp.Config{LimitBytes: 200_000}, cca.MustNew(cca.Cubic))
	aud.FlowOpened()
	e1.Conn.OnDone(func(*tcp.Conn) {
		completed = true
		aud.FlowClosed()
		d.ReleaseFlow(e1)
	})
	e1.Conn.Start()

	// Ephemeral flow 2: a large transfer released mid-flight at t=1s, with
	// a full window of data and ACK packets still traversing the path.
	e2 := d.AddEphemeralFlow(0, tcp.Config{LimitBytes: 1 << 30}, cca.MustNew(cca.Cubic))
	aud.FlowOpened()
	e2.Conn.Start()
	eng.Schedule(time.Second, func() {
		aud.FlowClosed()
		d.ReleaseFlow(e2)
	})

	eng.RunFor(3 * time.Second)
	finish(t, aud, false)

	if !completed {
		t.Fatal("200KB ephemeral flow did not complete in 3s")
	}
	if got := aud.FlowsOpened(); got != 2 {
		t.Fatalf("FlowsOpened = %d, want 2", got)
	}
	if got := aud.FlowsOpen(); got != 0 {
		t.Fatalf("FlowsOpen = %d, want 0", got)
	}
	// Ephemeral flows must not pollute the long-running flow accounting.
	if got := len(d.Flows()); got != 1 {
		t.Fatalf("Flows() lists %d flows, want just the elephant", got)
	}
	if got := len(d.SenderFlows(0)); got != 1 {
		t.Fatalf("SenderFlows(0) lists %d flows, want 1", got)
	}
	if got := len(d.SenderFlows(1)); got != 0 {
		t.Fatalf("SenderFlows(1) lists %d flows, want 0", got)
	}
}

// TestReleasedFlowStopsTransmitting: after ReleaseFlow, the sender's
// retransmit timers are dead and its receiver no longer advances — the
// flow is truly gone, not idling.
func TestReleasedFlowStopsTransmitting(t *testing.T) {
	eng, aud, d := auditedDumbbell(t)
	e := d.AddEphemeralFlow(0, tcp.Config{LimitBytes: 1 << 30}, cca.MustNew(cca.Cubic))
	aud.FlowOpened()
	e.Conn.Start()
	var atRelease int64
	eng.Schedule(time.Second, func() {
		aud.FlowClosed()
		d.ReleaseFlow(e)
		atRelease = e.Rcv.Goodput()
	})
	eng.RunFor(4 * time.Second)
	finish(t, aud, false)
	if got := e.Rcv.Goodput(); got != atRelease {
		t.Fatalf("receiver advanced after release: %d -> %d bytes", atRelease, got)
	}
}

// TestLeakedSegmentTripsConservation is the regression guard for the
// teardown accounting: if the demux fallback ever stops reporting
// unknown-flow packets as consumed (simulated white-box by clearing the
// demux's auditor hook before a mid-flight release), the leaked in-flight
// segments must trip the packet-conservation check at Finish.
func TestLeakedSegmentTripsConservation(t *testing.T) {
	eng, aud, d := auditedDumbbell(t)
	e := d.AddEphemeralFlow(0, tcp.Config{LimitBytes: 1 << 30}, cca.MustNew(cca.Cubic))
	aud.FlowOpened()
	e.Conn.Start()
	eng.Schedule(time.Second, func() {
		// Sabotage: every demux on the flow's routes forgets its auditor, so
		// the strays that drain after the release vanish unaccounted.
		cl := d.Network.classes[e.Sender]
		for _, h := range cl.fwdHops {
			h.d.aud = nil
		}
		for _, h := range cl.retHops {
			h.d.aud = nil
		}
		aud.FlowClosed()
		d.ReleaseFlow(e)
	})
	eng.RunFor(2 * time.Second)
	finish(t, aud, true)
}
