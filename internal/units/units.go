// Package units provides value types for the quantities the simulator
// manipulates constantly: bandwidths, byte sizes, and durations, plus the
// bandwidth-delay-product arithmetic the paper's buffer sizing is built on
// (eq. 1 of the paper).
//
// All conversions are integer-exact where possible so simulations stay
// deterministic across platforms.
package units

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Bandwidth is a link or flow rate in bits per second.
type Bandwidth int64

// Common bandwidths, including the paper's five bottleneck settings.
const (
	BitPerSecond  Bandwidth = 1
	KilobitPerSec           = 1000 * BitPerSecond
	MegabitPerSec           = 1000 * KilobitPerSec
	GigabitPerSec           = 1000 * MegabitPerSec
)

// PaperBandwidths are the five bottleneck bandwidths of Table 1.
func PaperBandwidths() []Bandwidth {
	return []Bandwidth{
		100 * MegabitPerSec,
		500 * MegabitPerSec,
		1 * GigabitPerSec,
		10 * GigabitPerSec,
		25 * GigabitPerSec,
	}
}

// BitsPerSecond returns the rate as a plain int64.
func (b Bandwidth) BitsPerSecond() int64 { return int64(b) }

// BytesPerSecond returns the rate in bytes per second.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) / 8 }

// Mbps returns the rate in megabits per second.
func (b Bandwidth) Mbps() float64 { return float64(b) / float64(MegabitPerSec) }

// Gbps returns the rate in gigabits per second.
func (b Bandwidth) Gbps() float64 { return float64(b) / float64(GigabitPerSec) }

// String renders the bandwidth with an adaptive unit, e.g. "25Gbps".
func (b Bandwidth) String() string {
	switch {
	case b >= GigabitPerSec && b%GigabitPerSec == 0:
		return fmt.Sprintf("%dGbps", int64(b/GigabitPerSec))
	case b >= GigabitPerSec:
		return fmt.Sprintf("%.2fGbps", b.Gbps())
	case b >= MegabitPerSec && b%MegabitPerSec == 0:
		return fmt.Sprintf("%dMbps", int64(b/MegabitPerSec))
	case b >= MegabitPerSec:
		return fmt.Sprintf("%.2fMbps", b.Mbps())
	case b >= KilobitPerSec:
		return fmt.Sprintf("%dKbps", int64(b/KilobitPerSec))
	default:
		return fmt.Sprintf("%dbps", int64(b))
	}
}

// ParseBandwidth parses strings like "100Mbps", "25Gbps", "1.5Gbps",
// "800Kbps" or a raw bits-per-second integer.
func ParseBandwidth(s string) (Bandwidth, error) {
	t := strings.TrimSpace(s)
	lower := strings.ToLower(t)
	mult := Bandwidth(1)
	for _, suffix := range []struct {
		name string
		m    Bandwidth
	}{
		{"gbps", GigabitPerSec}, {"gbit/s", GigabitPerSec}, {"g", GigabitPerSec},
		{"mbps", MegabitPerSec}, {"mbit/s", MegabitPerSec}, {"m", MegabitPerSec},
		{"kbps", KilobitPerSec}, {"kbit/s", KilobitPerSec}, {"k", KilobitPerSec},
		{"bps", 1},
	} {
		if strings.HasSuffix(lower, suffix.name) {
			mult = suffix.m
			t = t[:len(t)-len(suffix.name)]
			break
		}
	}
	t = strings.TrimSpace(t)
	if t == "" {
		return 0, fmt.Errorf("units: empty bandwidth %q", s)
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad bandwidth %q: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative bandwidth %q", s)
	}
	return Bandwidth(v * float64(mult)), nil
}

// ByteSize is a size in bytes (queue limits, windows, BDPs).
type ByteSize int64

// Size units.
const (
	Byte     ByteSize = 1
	Kilobyte          = 1000 * Byte
	Megabyte          = 1000 * Kilobyte
	Gigabyte          = 1000 * Megabyte
)

// Bytes returns the size as a plain int64.
func (s ByteSize) Bytes() int64 { return int64(s) }

// String renders the size with an adaptive unit.
func (s ByteSize) String() string {
	switch {
	case s >= Gigabyte:
		return fmt.Sprintf("%.2fGB", float64(s)/float64(Gigabyte))
	case s >= Megabyte:
		return fmt.Sprintf("%.2fMB", float64(s)/float64(Megabyte))
	case s >= Kilobyte:
		return fmt.Sprintf("%.2fKB", float64(s)/float64(Kilobyte))
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// BDP computes the bandwidth-delay product in bytes for a bottleneck rate
// and a round-trip time, per eq. 1 of the paper: BDP = BW * RTT / 8.
func BDP(bw Bandwidth, rtt time.Duration) ByteSize {
	// bits/sec * sec = bits; /8 = bytes. Use 128-bit-safe ordering: at
	// 25 Gbps and 62 ms, bw*rtt.Nanoseconds() = 1.55e18, inside int64.
	bits := float64(bw) * rtt.Seconds()
	return ByteSize(bits / 8)
}

// QueueBytes returns mult × BDP rounded up to a whole packet of the given
// size, and never smaller than one packet: a queue that cannot hold a single
// packet cannot forward at all. This mirrors how the paper sizes `tc limit`.
func QueueBytes(bw Bandwidth, rtt time.Duration, mult float64, pktSize ByteSize) ByteSize {
	if pktSize <= 0 {
		pktSize = 1
	}
	raw := float64(BDP(bw, rtt)) * mult
	pkts := int64(raw / float64(pktSize))
	if pkts < 1 {
		pkts = 1
	}
	return ByteSize(pkts) * pktSize
}

// TransmissionTime returns the serialization delay for size bytes at rate bw.
func TransmissionTime(size ByteSize, bw Bandwidth) time.Duration {
	if bw <= 0 {
		return 0
	}
	ns := float64(size) * 8 * 1e9 / float64(bw)
	return time.Duration(ns)
}

// RateFromBytes returns the average rate of transferring n bytes in d.
func RateFromBytes(n ByteSize, d time.Duration) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(float64(n) * 8 / d.Seconds())
}
