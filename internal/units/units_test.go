package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want Bandwidth
		err  bool
	}{
		{"100Mbps", 100 * MegabitPerSec, false},
		{"25Gbps", 25 * GigabitPerSec, false},
		{"1.5Gbps", Bandwidth(1.5e9), false},
		{"500mbps", 500 * MegabitPerSec, false},
		{"800Kbps", 800 * KilobitPerSec, false},
		{" 10 Gbps ", 10 * GigabitPerSec, false},
		{"42bps", 42, false},
		{"9600", 9600, false},
		{"1g", GigabitPerSec, false},
		{"", 0, true},
		{"fast", 0, true},
		{"-3Mbps", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBandwidth(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBandwidth(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBandwidth(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		in   Bandwidth
		want string
	}{
		{100 * MegabitPerSec, "100Mbps"},
		{25 * GigabitPerSec, "25Gbps"},
		{Bandwidth(1.5e9), "1.50Gbps"},
		{800 * KilobitPerSec, "800Kbps"},
		{42, "42bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	// Whole-unit bandwidths must survive String -> Parse unchanged.
	f := func(mbps uint16) bool {
		b := Bandwidth(mbps%1000) * MegabitPerSec // whole Mbps < 1 Gbps formats exactly
		got, err := ParseBandwidth(b.String())
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBDPPaperValues(t *testing.T) {
	// The paper: RTT 62 ms. BDP(100Mbps) = 100e6*0.062/8 = 775000 bytes.
	rtt := 62 * time.Millisecond
	cases := []struct {
		bw   Bandwidth
		want ByteSize
	}{
		{100 * MegabitPerSec, 775_000},
		{500 * MegabitPerSec, 3_875_000},
		{1 * GigabitPerSec, 7_750_000},
		{10 * GigabitPerSec, 77_500_000},
		{25 * GigabitPerSec, 193_750_000},
	}
	for _, c := range cases {
		if got := BDP(c.bw, rtt); got != c.want {
			t.Errorf("BDP(%v, 62ms) = %d, want %d", c.bw, got, c.want)
		}
	}
}

func TestQueueBytes(t *testing.T) {
	rtt := 62 * time.Millisecond
	pkt := ByteSize(8960)
	q := QueueBytes(100*MegabitPerSec, rtt, 2, pkt)
	if q <= 0 || q%pkt != 0 {
		t.Fatalf("QueueBytes not a packet multiple: %d", q)
	}
	want2 := 2 * float64(BDP(100*MegabitPerSec, rtt))
	if diff := float64(q) - want2; diff > float64(pkt) || diff < -float64(pkt) {
		t.Errorf("QueueBytes 2BDP off by more than a packet: got %d want ~%.0f", q, want2)
	}
	// Tiny multiplier still holds at least one packet.
	if q := QueueBytes(1*MegabitPerSec, time.Millisecond, 0.001, pkt); q < pkt {
		t.Errorf("QueueBytes floor: got %d want >= %d", q, pkt)
	}
}

func TestQueueBytesMonotoneInMultiplier(t *testing.T) {
	rtt := 62 * time.Millisecond
	pkt := ByteSize(8960)
	f := func(a, b uint8) bool {
		ma, mb := float64(a)/8, float64(b)/8
		if ma > mb {
			ma, mb = mb, ma
		}
		qa := QueueBytes(1*GigabitPerSec, rtt, ma, pkt)
		qb := QueueBytes(1*GigabitPerSec, rtt, mb, pkt)
		return qa <= qb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransmissionTime(t *testing.T) {
	// 8960 bytes at 100 Mbps = 8960*8/1e8 s = 716.8 us.
	d := TransmissionTime(8960, 100*MegabitPerSec)
	if want := 716800 * time.Nanosecond; d != want {
		t.Errorf("TransmissionTime = %v, want %v", d, want)
	}
	if TransmissionTime(1000, 0) != 0 {
		t.Error("zero bandwidth should yield zero duration")
	}
}

func TestRateFromBytes(t *testing.T) {
	got := RateFromBytes(12_500_000, time.Second) // 100 Mbit in 1 s
	if got != 100*MegabitPerSec {
		t.Errorf("RateFromBytes = %v, want 100Mbps", got)
	}
	if RateFromBytes(100, 0) != 0 {
		t.Error("zero duration should yield zero rate")
	}
}

func TestTransmissionRateInverse(t *testing.T) {
	// RateFromBytes(TransmissionTime(n, bw)) ~= bw for non-degenerate inputs.
	f := func(kb uint16) bool {
		n := ByteSize(kb)*Kilobyte + 1000
		bw := 1 * GigabitPerSec
		d := TransmissionTime(n, bw)
		r := RateFromBytes(n, d)
		ratio := float64(r) / float64(bw)
		return ratio > 0.999 && ratio < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{500, "500B"},
		{1500, "1.50KB"},
		{2_000_000, "2.00MB"},
		{3_000_000_000, "3.00GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestPaperBandwidths(t *testing.T) {
	bws := PaperBandwidths()
	if len(bws) != 5 {
		t.Fatalf("want 5 paper bandwidths, got %d", len(bws))
	}
	for i := 1; i < len(bws); i++ {
		if bws[i] <= bws[i-1] {
			t.Errorf("paper bandwidths not ascending at %d", i)
		}
	}
}

func TestBandwidthStringFractional(t *testing.T) {
	cases := []struct {
		in   Bandwidth
		want string
	}{
		{Bandwidth(2.5e6), "2.50Mbps"},
		{GigabitPerSec + 1, "1.00Gbps"},
		{KilobitPerSec, "1Kbps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBandwidthAccessors(t *testing.T) {
	b := 100 * MegabitPerSec
	if b.BitsPerSecond() != 100e6 {
		t.Error("BitsPerSecond")
	}
	if b.BytesPerSecond() != 12.5e6 {
		t.Error("BytesPerSecond")
	}
	if b.Mbps() != 100 || b.Gbps() != 0.1 {
		t.Error("Mbps/Gbps")
	}
	if (2 * Gigabyte).Bytes() != 2e9 {
		t.Error("ByteSize.Bytes")
	}
}

func TestParseBandwidthMoreSuffixes(t *testing.T) {
	for in, want := range map[string]Bandwidth{
		"1gbit/s":  GigabitPerSec,
		"10mbit/s": 10 * MegabitPerSec,
		"5kbit/s":  5 * KilobitPerSec,
		"3m":       3 * MegabitPerSec,
		"7k":       7 * KilobitPerSec,
	} {
		got, err := ParseBandwidth(in)
		if err != nil || got != want {
			t.Errorf("ParseBandwidth(%q) = %v, %v", in, got, err)
		}
	}
}
