package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/failpoint"
)

func writeV1Line(t *testing.T, w *bytes.Buffer, res Result) {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(data)
	w.WriteByte('\n')
}

// TestJournalV2FlippedBitRecoversBothSides is the headline durability
// claim: flip any single bit anywhere in a v2 journal and reopening it
// recovers every record on both sides of the damage — at most the one
// record containing the flip is lost, the loss is always detected and
// counted, and the open never fails.
func TestJournalV2FlippedBitRecoversBothSides(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		res := durabilityResult(uint64(i+1), 0.9)
		keys[i] = res.Config.Key()
		if err := ck.Append(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "flipped.ckpt")
	for off := 0; off < len(orig); off++ {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x01
		if err := os.WriteFile(target, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenCheckpoint(target)
		if err != nil {
			t.Fatalf("flip at offset %d: open failed: %v", off, err)
		}
		lost := 0
		for _, key := range keys {
			if _, ok := re.Lookup(key); !ok {
				lost++
			}
		}
		st := re.Stats()
		re.Close()
		if lost > 1 {
			t.Fatalf("flip at offset %d lost %d records; damage must stay local to one record", off, lost)
		}
		if lost == 1 && st.Damaged()+st.Errored == 0 {
			t.Errorf("flip at offset %d lost a record without the loss being counted: %+v", off, st)
		}
	}
}

// TestJournalV1BadRegionLostSuffixV2Recovers proves the regression the v2
// reader fixes. A v1 journal with an unbroken corrupt region longer than
// the scanner token cap made the historical loader (replicated inline
// below, byte-for-byte the old OpenCheckpoint loop) abort the entire open
// — every record was lost, including the intact suffix after the damage
// and the intact prefix before it. The resilient reader skips the region
// in streaming chunks and recovers both sides.
func TestJournalV1BadRegionLostSuffixV2Recovers(t *testing.T) {
	var buf bytes.Buffer
	const n = 6
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		res := durabilityResult(uint64(i+1), 0.9)
		keys[i] = res.Config.Key()
		if i == n/2 {
			buf.WriteString(strings.Repeat("x", maxJournalLine+2))
			buf.WriteByte('\n')
		}
		writeV1Line(t, &buf, res)
	}
	path := filepath.Join(t.TempDir(), "v1.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// The historical v1 loader.
	readV1Strict := func() (int, error) {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		loaded := 0
		for sc.Scan() {
			var res Result
			if json.Unmarshal(sc.Bytes(), &res) != nil || res.Errored() {
				continue
			}
			loaded++
		}
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return loaded, nil
	}
	if got, err := readV1Strict(); err == nil {
		t.Fatalf("historical reader loaded %d records from the damaged journal; "+
			"expected it to abort (the failure mode v2 exists to fix)", got)
	}

	re, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("v2 reader failed on the damaged journal: %v", err)
	}
	defer re.Close()
	for i, key := range keys {
		if _, ok := re.Lookup(key); !ok {
			t.Fatalf("record %d lost (key %s); want every record on both sides of the bad region", i, key)
		}
	}
	if st := re.Stats(); st.Oversized != 1 || st.V1 != n {
		t.Fatalf("stats = %+v, want Oversized=1 V1=%d", st, n)
	}
}

// TestJournalV1SilentCorruptionDetectedByV2: a flipped bit inside a JSON
// number leaves a v1 line perfectly parseable — the v1 journal accepts
// wrong science without a trace. The same payload under v2 framing fails
// its CRC and is quarantined instead.
func TestJournalV1SilentCorruptionDetectedByV2(t *testing.T) {
	res := durabilityResult(1, 0.9)
	key := res.Config.Key()
	payload, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(payload, []byte(`"jain":0.9`))
	if idx < 0 {
		t.Fatalf("payload %s does not contain the jain field", payload)
	}
	flip := idx + len(`"jain":0.`)
	dir := t.TempDir()

	// v1: the corrupted line is accepted, silently wrong.
	bad := append([]byte(nil), payload...)
	bad[flip] ^= 0x01 // '9' -> '8': still valid JSON, different science
	v1 := filepath.Join(dir, "v1.ckpt")
	if err := os.WriteFile(v1, append(bad, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	ck1, err := OpenCheckpoint(v1)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ck1.Lookup(key)
	st1 := ck1.Stats()
	ck1.Close()
	if !ok || got.Jain == res.Jain {
		t.Fatalf("v1 setup broken: ok=%v jain=%v", ok, got.Jain)
	}
	if st1.Damaged() != 0 {
		t.Fatalf("v1 stats flagged the silent corruption (%+v) — update this test's premise", st1)
	}

	// v2: the same flip is caught by the record CRC and quarantined.
	frame, _, err := encodeFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	frameFlip := bytes.Index(frame, payload) + flip
	frame[frameFlip] ^= 0x01
	v2 := filepath.Join(dir, "v2.ckpt")
	if err := os.WriteFile(v2, append([]byte(journalHeaderV2+"\n"), frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(v2)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if _, ok := ck2.Lookup(key); ok {
		t.Fatal("v2 accepted a CRC-invalid record")
	}
	if st := ck2.Stats(); st.Corrupt != 1 || st.Records != 0 {
		t.Fatalf("v2 stats = %+v, want the flip counted as 1 corrupt record", st)
	}
}

// TestJournalFusedRecordsRecoveredByResync: destroying the newline between
// two framed records fuses them onto one physical line; the reader must
// resynchronize mid-line and recover both.
func TestJournalFusedRecordsRecoveredByResync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := durabilityResult(1, 0.9), durabilityResult(2, 0.8)
	for _, res := range []Result{r1, r2} {
		if err := ck.Append(res); err != nil {
			t.Fatal(err)
		}
	}
	ck.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The last "\nr " boundary separates the two records (the first follows
	// the version header).
	idx := bytes.LastIndex(data[:len(data)-1], []byte("\nr "))
	if idx <= len(journalHeaderV2) {
		t.Fatalf("could not locate the record boundary in %q...", data[:40])
	}
	data[idx] = 'X'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, res := range []Result{r1, r2} {
		if _, ok := re.Lookup(res.Config.Key()); !ok {
			t.Fatalf("record %s lost to a fused line", res.Config.ID())
		}
	}
	if st := re.Stats(); st.V2 != 2 || st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want both records recovered and 1 corrupt region", st)
	}
}

// TestJournalKeyMismatchQuarantined: a CRC-valid record journaled under a
// science key that doesn't match its own payload is a writer-level
// inconsistency; the reader must quarantine it rather than trust either key.
func TestJournalKeyMismatchQuarantined(t *testing.T) {
	res := durabilityResult(1, 0.9)
	other := durabilityResult(2, 0.8)
	payload, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	line := fmt.Sprintf("%s\nr %d %08x %s %s\n",
		journalHeaderV2, len(payload), crc32.ChecksumIEEE(payload), other.Config.Key(), payload)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Len() != 0 {
		t.Fatalf("key-mismatched record was accepted (%d live)", ck.Len())
	}
	if st := ck.Stats(); st.KeyMismatch != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want KeyMismatch=1", st)
	}
}

// TestJournalV1CompatAndCompactUpgrades: bare-JSONL v1 journals load
// transparently, appends land as v2 frames alongside them, and Compact
// rewrites everything as a clean v2 journal.
func TestJournalV1CompatAndCompactUpgrades(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		writeV1Line(t, &buf, durabilityResult(uint64(i+1), 0.9))
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := ck.Stats(); st.V1 != 3 || st.V2 != 0 || ck.Len() != 3 {
		t.Fatalf("v1 load: stats %+v len %d, want 3 v1 records", st, ck.Len())
	}
	if err := ck.Append(durabilityResult(4, 0.7)); err != nil {
		t.Fatal(err)
	}
	if err := ck.Compact(); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if lines[0] != journalHeaderV2 {
		t.Fatalf("compacted journal starts with %q, want the v2 header", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, frameMagic) {
			t.Fatalf("compacted journal still has a non-framed line: %q", l)
		}
	}
	re, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.Stats(); st.V2 != 4 || st.V1 != 0 || st.Damaged() != 0 || re.Len() != 4 {
		t.Fatalf("reloaded upgraded journal: stats %+v len %d, want 4 clean v2 records", st, re.Len())
	}
}

// TestFsckJournalRepairs: fsck must report damage without touching the
// file, then (with repair) quarantine the damaged raw lines to a side file
// and compact the journal so a second pass finds it clean.
func TestFsckJournalRepairs(t *testing.T) {
	res := durabilityResult(1, 0.5)
	res.Utilization = 0.5
	superseded := res
	superseded.Utilization = 0.25
	mismatched := durabilityResult(3, 0.8)
	payload, err := json.Marshal(mismatched)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writeV1Line(t, &buf, superseded)
	buf.WriteString("this is not a journal record\n")
	writeV1Line(t, &buf, res) // duplicate key: supersedes the first line
	fmt.Fprintf(&buf, "r %d %08x %s %s\n",
		len(payload), crc32.ChecksumIEEE(payload), res.Config.Key(), payload)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := FsckJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Dirty() || rep.Repaired {
		t.Fatalf("dry run: %+v, want dirty and untouched", rep)
	}
	st := rep.Stats
	if st.V1 != 2 || st.Corrupt != 1 || st.KeyMismatch != 1 || st.Duplicates != 1 || rep.Live != 1 {
		t.Fatalf("fsck stats = %+v live %d, want 2 v1 / 1 corrupt / 1 key-mismatch / 1 duplicate / 1 live", st, rep.Live)
	}

	rep, err = FsckJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired || rep.QuarantineFile == "" {
		t.Fatalf("repair run: %+v", rep)
	}
	qdata, err := os.ReadFile(rep.QuarantineFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(qdata, []byte("this is not a journal record")) {
		t.Fatalf("quarantine file missing the corrupt line: %q", qdata)
	}

	rep, err = FsckJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dirty() || rep.Repaired || rep.Live != 1 {
		t.Fatalf("post-repair fsck: %+v, want clean", rep)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if got, ok := ck.Lookup(res.Config.Key()); !ok || got.Utilization != 0.5 {
		t.Fatalf("repair kept the wrong generation: %+v ok=%v", got, ok)
	}
}

// TestCheckpointFailpoints: injected short writes and fsync failures must
// be retryable — the journal heals the partial record, later appends land,
// and nothing valid is lost across a reopen.
func TestCheckpointFailpoints(t *testing.T) {
	defer failpoint.DisableAll()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetSyncPolicy(0, 0)
	r1, r2, r3 := durabilityResult(1, 0.9), durabilityResult(2, 0.8), durabilityResult(3, 0.7)
	if err := ck.Append(r1); err != nil {
		t.Fatal(err)
	}

	// Short write: 10 bytes of the record land, then the disk "fails".
	if err := failpoint.Enable("checkpoint.append.write=short:10@times=1"); err != nil {
		t.Fatal(err)
	}
	if err := ck.Append(r2); err == nil {
		t.Fatal("short-write failpoint did not surface an append error")
	}
	// Retry after the disk recovers: the torn partial record must be
	// terminated so the records cannot fuse.
	if err := ck.Append(r2); err != nil {
		t.Fatalf("append after short write: %v", err)
	}

	// fsync failure: the record is written, the sync error is surfaced.
	if err := failpoint.Enable("checkpoint.fsync=err(injected EIO)@times=1"); err != nil {
		t.Fatal(err)
	}
	if err := ck.Append(r3); err == nil || !strings.Contains(err.Error(), "injected EIO") {
		t.Fatalf("fsync failpoint: err = %v", err)
	}
	if err := ck.Sync(); err != nil { // disarmed again: durability recovers
		t.Fatal(err)
	}
	ck.Close()

	re, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, res := range []Result{r1, r2, r3} {
		if _, ok := re.Lookup(res.Config.Key()); !ok {
			t.Fatalf("record %s lost across the failpoint storm", res.Config.ID())
		}
	}
	if st := re.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want exactly the torn 10-byte fragment counted corrupt", st)
	}
}
