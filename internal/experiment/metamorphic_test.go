// Metamorphic validation: relations that must hold between runs whose
// configurations differ in a controlled way. Unlike the point assertions in
// the paper-shape tests, these catch bugs with no oracle — if permuting the
// seed order, widening the worker pool, or scaling bandwidth and duration
// together changes what should be invariant, some piece of state is leaking
// between runs or some quantity is not scaling the way the model claims.
// Every run here executes under the invariant auditor, so each relation is
// checked on top of a conservation-clean simulation.
package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/units"
)

// TestMetamorphicSeedPermutation: running the same seed set in three
// different orders must produce identical per-seed results — and every run
// stays audit-clean. Order sensitivity would mean hidden shared state
// (a package-level RNG, a reused pool) bleeding across runs.
func TestMetamorphicSeedPermutation(t *testing.T) {
	mk := func(seed uint64) Config {
		c := auditedCfg(Pairing{cca.BBRv1, cca.Cubic}, aqm.KindRED, seed, 2*time.Second)
		c.Faults = &faults.Profile{
			GE: &faults.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.5},
		}
		return c
	}
	orders := [][]uint64{
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{3, 1, 5, 2, 4},
	}
	bySeed := make([]map[uint64][]byte, len(orders))
	for oi, order := range orders {
		cfgs := make([]Config, len(order))
		for i, s := range order {
			cfgs[i] = mk(s)
		}
		results, err := RunAll(cfgs, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		bySeed[oi] = make(map[uint64][]byte)
		for i, r := range results {
			if r.Errored() {
				t.Fatalf("order %d seed %d errored: %s", oi, order[i], r.Error)
			}
			stripWall(&r)
			j, _ := json.Marshal(r)
			bySeed[oi][order[i]] = j
		}
	}
	for seed, want := range bySeed[0] {
		for oi := 1; oi < len(orders); oi++ {
			if !bytes.Equal(want, bySeed[oi][seed]) {
				t.Fatalf("seed %d result depends on run order:\n%s\n%s", seed, want, bySeed[oi][seed])
			}
		}
	}
}

// TestMetamorphicBandwidthScaling: doubling the bottleneck bandwidth while
// doubling nothing else the workload depends on (flows and duration pinned)
// must leave utilization in the same regime — two long-running elephants
// keep a pipe of either size full, so φ may not collapse or exceed 1. The
// relation is deliberately loose (±0.15): it is a scaling sanity check, not
// a throughput regression test.
func TestMetamorphicBandwidthScaling(t *testing.T) {
	run := func(bw units.Bandwidth) Result {
		cfg := Config{
			Pairing:        Pairing{cca.Cubic, cca.Cubic},
			AQM:            aqm.KindFIFO,
			QueueBDP:       2,
			Bottleneck:     bw,
			Duration:       6 * time.Second, // pinned: defaults scale with bw
			FlowsPerSender: 1,               // pinned for the same reason
			Seed:           1,
			Audit:          true,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(100 * units.MegabitPerSec)
	doubled := run(200 * units.MegabitPerSec)
	if base.Utilization < 0.5 || doubled.Utilization < 0.5 {
		t.Fatalf("elephants failed to fill the pipe: φ=%.3f at 100M, φ=%.3f at 200M",
			base.Utilization, doubled.Utilization)
	}
	if d := math.Abs(base.Utilization - doubled.Utilization); d > 0.15 {
		t.Fatalf("utilization shifted %.3f across a bandwidth doubling (%.3f → %.3f)",
			d, base.Utilization, doubled.Utilization)
	}
	if base.Utilization > 1.001 || doubled.Utilization > 1.001 {
		t.Fatalf("utilization exceeds capacity: %.3f / %.3f", base.Utilization, doubled.Utilization)
	}
}

// TestMetamorphicWorkerWidthUnderAudit re-asserts worker-count independence
// with the auditor on: pool width is scheduling, not simulation, so results
// must be byte-identical at 1 and 4 workers even while every run carries
// the extra audit bookkeeping.
func TestMetamorphicWorkerWidthUnderAudit(t *testing.T) {
	profile := &faults.Profile{
		GE:    &faults.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.5},
		Flaps: []faults.Flap{{At: time.Second, Down: 100 * time.Millisecond}},
	}
	cfgs := make([]Config, 4)
	for i := range cfgs {
		cfgs[i] = auditedCfg(Pairing{cca.Cubic, cca.BBRv1}, aqm.KindFQCoDel, uint64(i+1), 2*time.Second)
		cfgs[i].Faults = profile
	}
	serial, err := RunAll(cfgs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunAll(cfgs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if serial[i].Errored() || wide[i].Errored() {
			t.Fatalf("config %d errored under audit: %q / %q", i, serial[i].Error, wide[i].Error)
		}
		stripWall(&serial[i], &wide[i])
		js, _ := json.Marshal(serial[i])
		jw, _ := json.Marshal(wide[i])
		if !bytes.Equal(js, jw) {
			t.Fatalf("config %d: workers=1 vs workers=4 diverged under audit:\n%s\n%s", i, js, jw)
		}
	}
}

// TestMetamorphicReplayUnderAudit: an audited run replayed from the same
// config is byte-identical — determinism survives the observer.
func TestMetamorphicReplayUnderAudit(t *testing.T) {
	cfg := auditedCfg(Pairing{cca.BBRv2, cca.Reno}, aqm.KindCoDel, 9, 3*time.Second)
	cfg.Faults = &faults.Profile{
		Flaps: []faults.Flap{{At: time.Second, Down: 150 * time.Millisecond}},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(&a, &b)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("audited replay diverged:\n%s\n%s", ja, jb)
	}
}
