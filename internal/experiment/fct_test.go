package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/flows"
)

// fctCfg is auditedCfg plus the mice workload: the standard open-loop
// configuration the FCT tests exercise.
func fctCfg(p Pairing, kind aqm.Kind, seed uint64, dur time.Duration) Config {
	c := auditedCfg(p, kind, seed, dur)
	c.Flows = &flows.Spec{Populations: []flows.Population{{Name: "mice"}}}
	return c
}

// TestFCTResultPopulated: a run carrying a workload spec produces FCT
// percentiles in its Result — the "all" class always, size classes when
// non-empty — and the solo variant of the same config runs no elephants.
func TestFCTResultPopulated(t *testing.T) {
	res, err := Run(fctCfg(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.FCT == nil {
		t.Fatal("result carries no FCT block")
	}
	if res.FCT.Opened == 0 || res.FCT.Completed == 0 {
		t.Fatalf("no flows ran: %+v", res.FCT)
	}
	if res.FCT.Open != res.FCT.Opened-res.FCT.Completed {
		t.Fatalf("open count inconsistent: %+v", res.FCT)
	}
	all := res.FCT.Class("all")
	if all == nil || all.Count == 0 {
		t.Fatalf("no 'all' class: %+v", res.FCT.Classes)
	}
	if all.P50 <= 0 || all.P95 < all.P50 || all.P99 < all.P95 || all.Max < all.P99 || all.Min > all.P50 {
		t.Fatalf("percentile ordering broken: %+v", all)
	}
	if res.Flows != 2 {
		t.Fatalf("competition run should report 2 elephants, got %d", res.Flows)
	}

	solo := fctCfg(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 3*time.Second)
	solo.SoloFCT = true
	sres, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Flows != 0 {
		t.Fatalf("solo baseline ran %d elephants, want 0", sres.Flows)
	}
	sAll := sres.FCT.Class("all")
	if sAll == nil || sAll.Count == 0 {
		t.Fatal("solo baseline completed no flows")
	}
	// The background population arrives identically (same seed-derived
	// streams) but finishes faster with the link to itself.
	if sres.FCT.Opened != res.FCT.Opened {
		t.Fatalf("arrival schedule differs solo vs competition: %d vs %d",
			sres.FCT.Opened, res.FCT.Opened)
	}
	if sAll.P95 >= all.P95 {
		t.Fatalf("solo p95 (%v) not faster than competition p95 (%v)", sAll.P95, all.P95)
	}
}

// TestSoloFCTKeyDedup: SoloFCT pins the pairing, so baselines derived from
// different pairings of the same condition share one Key — the property
// GridSpec.Expand's dedup and HarmFCTMatrix's matching rely on.
func TestSoloFCTKeyDedup(t *testing.T) {
	a := fctCfg(Pairing{cca.BBRv1, cca.Cubic}, aqm.KindFIFO, 1, 3*time.Second)
	b := fctCfg(Pairing{cca.Reno, cca.Reno}, aqm.KindFIFO, 1, 3*time.Second)
	if a.Normalize().Key() == b.Normalize().Key() {
		t.Fatal("competition configs with different pairings share a key")
	}
	a.SoloFCT, b.SoloFCT = true, true
	ka, kb := a.Normalize().Key(), b.Normalize().Key()
	if ka != kb {
		t.Fatalf("solo baselines should dedupe across pairings:\n%s\n%s", ka, kb)
	}
	// And a solo key differs from the competition key of the same config.
	if ka == fctCfg(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 3*time.Second).Normalize().Key() {
		t.Fatal("solo and competition configs share a key")
	}
	// Without a workload, SoloFCT is meaningless and normalizes away.
	c := auditedCfg(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 3*time.Second)
	c.SoloFCT = true
	if c.Normalize().SoloFCT {
		t.Fatal("SoloFCT without Flows survived normalization")
	}
}

// TestGridSpecFlowsExpansion: a -flows grid expands to the competition
// configs plus one deduped solo baseline per (AQM, queue, bw, seed)
// condition, after -configs truncation.
func TestGridSpecFlowsExpansion(t *testing.T) {
	spec := GridSpec{
		Bandwidths: "100Mbps",
		Queues:     "2",
		AQMs:       "fifo",
		Pairings:   "cubic:cubic,bbr1:cubic",
		Seeds:      2,
		Duration:   "2s",
		Flows:      "mice",
	}
	cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var comp, solo int
	for _, c := range cfgs {
		if c.Flows == nil {
			t.Fatalf("expanded config without workload: %s", c.ID())
		}
		if c.SoloFCT {
			solo++
			if c.Pairing.CCA1 != cca.Cubic || c.Pairing.CCA2 != cca.Cubic {
				t.Fatalf("solo baseline pairing not pinned: %s", c.ID())
			}
		} else {
			comp++
		}
	}
	// 2 pairings × 2 seeds competition; the two pairings share baselines,
	// so 2 seeds of solo runs.
	if comp != 4 || solo != 2 {
		t.Fatalf("expanded %d competition + %d solo configs, want 4 + 2", comp, solo)
	}
	keys := map[string]bool{}
	for _, c := range cfgs {
		k := c.Key()
		if keys[k] {
			t.Fatalf("duplicate key in expansion: %s", k)
		}
		keys[k] = true
	}

	if _, err := (&GridSpec{Flows: "bogus"}).Expand(); err == nil {
		t.Fatal("bad workload spec accepted")
	}

	// The canonical form must capture the workload (checkpoint identity),
	// and equivalent spellings of the same workload must canonicalize
	// identically.
	can, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(can.Flows), []byte("mice")) {
		t.Fatalf("canonical spec does not capture the workload: %q", can.Flows)
	}
	spec2 := spec
	spec2.Flows = "mice:arrival=200ms"
	can2, err := spec2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if can.Flows != can2.Flows {
		t.Fatalf("equivalent workload spellings canonicalize differently:\n%q\n%q", can.Flows, can2.Flows)
	}
}

// TestHarmFCTMatrix builds the matrix from a small real sweep: one
// competition pairing plus its solo baseline, harm finite and positive
// (elephants always cost the mice something on a saturated 100 Mbps link),
// and competition results without baselines counted as unmatched.
func TestHarmFCTMatrix(t *testing.T) {
	comp := fctCfg(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 3*time.Second)
	solo := fctCfg(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 3*time.Second)
	solo.SoloFCT = true
	results, err := RunAll([]Config{comp, solo}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := HarmFCTMatrix(results)
	if len(m) != 1 {
		t.Fatalf("matrix has %d cells, want 1: %+v", len(m), m)
	}
	cell := m[0]
	if cell.N != 1 || cell.Unmatched != 0 {
		t.Fatalf("cell accounting: %+v", cell)
	}
	for name, h := range map[string]float64{
		"p50": cell.HarmP50, "p95": cell.HarmP95, "p99": cell.HarmP99, "mean": cell.HarmMean,
	} {
		if math.IsNaN(h) || h < 0 || h >= 1 {
			t.Fatalf("harm %s out of range: %v", name, h)
		}
	}
	if cell.HarmMean == 0 {
		t.Fatal("elephants cost the mice nothing on a saturated link?")
	}

	// Solo-only and competition-only sets degrade gracefully.
	if m := HarmFCTMatrix(results[1:]); len(m) != 0 {
		t.Fatalf("solo-only set produced cells: %+v", m)
	}
	m = HarmFCTMatrix(results[:1])
	if len(m) != 1 || m[0].N != 0 || m[0].Unmatched != 1 {
		t.Fatalf("baseline-less competition should be unmatched: %+v", m)
	}
	if m := HarmFCTMatrix(nil); len(m) != 0 {
		t.Fatalf("empty set produced cells: %+v", m)
	}
}

// TestMetamorphicFCTDeterminism extends the determinism contract to the
// open-loop workload: runs carrying dynamic flow arrivals must stay
// byte-identical across worker widths and replay, elephants and mice
// drawing from their documented, disjoint RNG streams.
func TestMetamorphicFCTDeterminism(t *testing.T) {
	mixed := &flows.Spec{Populations: []flows.Population{
		{Name: "mice"},
		{Name: "elephants", MeanArrival: time.Second, SizeP5: 4 << 20, SizeP95: 16 << 20},
	}}
	cfgs := make([]Config, 4)
	for i := range cfgs {
		cfgs[i] = auditedCfg(Pairing{cca.Cubic, cca.BBRv1}, aqm.KindFQCoDel, uint64(i+1), 2*time.Second)
		cfgs[i].Flows = mixed
		if i%2 == 1 {
			cfgs[i].SoloFCT = true
		}
	}
	serial, err := RunAll(cfgs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunAll(cfgs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if serial[i].Errored() || wide[i].Errored() {
			t.Fatalf("config %d errored: %q / %q", i, serial[i].Error, wide[i].Error)
		}
		if serial[i].FCT == nil {
			t.Fatalf("config %d: no FCT data", i)
		}
		stripWall(&serial[i], &wide[i])
		js, _ := json.Marshal(serial[i])
		jw, _ := json.Marshal(wide[i])
		if !bytes.Equal(js, jw) {
			t.Fatalf("config %d: workers=1 vs workers=4 diverged:\n%s\n%s", i, js, jw)
		}
	}
	// Replay one of them.
	again, err := Run(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	stripWall(&again)
	ja, _ := json.Marshal(again)
	if !bytes.Equal(ja, func() []byte { j, _ := json.Marshal(serial[0]); return j }()) {
		t.Fatalf("replay diverged:\n%s", ja)
	}
}
