package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ResultSet is the serialized form of a sweep.
type ResultSet struct {
	// Note documents what produced the set (scaled vs paper-scale, seeds).
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// WriteJSON streams a result set to w.
func WriteJSON(w io.Writer, rs *ResultSet) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rs); err != nil {
		return fmt.Errorf("experiment: encode results: %w", err)
	}
	return nil
}

// ReadJSON parses a result set from r.
func ReadJSON(r io.Reader) (*ResultSet, error) {
	var rs ResultSet
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("experiment: decode results: %w", err)
	}
	return &rs, nil
}

// SaveFile writes a result set to path, creating parent directories.
func SaveFile(path string, rs *ResultSet) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("experiment: mkdir %s: %w", dir, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: create %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteJSON(f, rs); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a result set from path.
func LoadFile(path string) (*ResultSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSON(f)
}
