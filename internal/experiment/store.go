package experiment

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// ResultSet is the serialized form of a sweep.
type ResultSet struct {
	// Note documents what produced the set (scaled vs paper-scale, seeds).
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// WriteJSON streams a result set to w.
func WriteJSON(w io.Writer, rs *ResultSet) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rs); err != nil {
		return fmt.Errorf("experiment: encode results: %w", err)
	}
	return nil
}

// ReadJSON parses a result set from r.
func ReadJSON(r io.Reader) (*ResultSet, error) {
	var rs ResultSet
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("experiment: decode results: %w", err)
	}
	return &rs, nil
}

// SaveFile writes a result set to path, creating parent directories.
func SaveFile(path string, rs *ResultSet) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("experiment: mkdir %s: %w", dir, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: create %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteJSON(f, rs); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a result set from path.
func LoadFile(path string) (*ResultSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSON(f)
}

// Checkpoint is an append-only journal of completed results — one
// CRC-framed record per line (journal format v2; bare-JSONL v1 journals
// load transparently) — that lets a multi-hour sweep survive a crash: the
// runner appends each result as it finishes, and a restarted sweep opens
// the same file and skips every configuration whose science identity
// (Config.Key — the grid cell plus duration, paper scale, and every other
// field that changes a run's bytes) is already journaled. Only clean
// results are appended — errored configurations (panic, watchdog) re-run
// on resume. Append is safe for concurrent use by the worker pool.
type Checkpoint struct {
	path string

	mu   sync.Mutex
	f    *os.File
	err  error // sticky: set when the journal handle is unusable (failed Compact reopen)
	done map[string]Result

	// Load-time integrity accounting: what the resilient reader saw, and
	// up to maxDamagedBytes of the raw damaged lines for fsck quarantine.
	stats   JournalStats
	damaged [][]byte

	// torn records that the last append failed partway through a record;
	// the next append first terminates the partial line so the two records
	// cannot fuse.
	torn bool

	// Durability policy: Append fsyncs once syncEvery results accumulate
	// unsynced or syncInterval has passed since the last sync, whichever
	// comes first — bounding how many journaled-but-volatile results a
	// power loss can take (the torn-tail healing in OpenCheckpoint already
	// bounds the damage of a partial line to that one line). Syncing every
	// append would serialize the worker pool on the disk; never syncing
	// (the old behavior) left an entire page cache of results exposed.
	syncEvery    int
	syncInterval time.Duration
	unsynced     int
	lastSync     time.Time
	syncs        uint64
}

// Default durability policy: at most 8 results or 200ms between fsyncs.
const (
	defaultSyncEvery    = 8
	defaultSyncInterval = 200 * time.Millisecond
)

// OpenCheckpoint opens (creating if needed) the journal at path and loads
// every previously completed result. Damage — a torn final write, flipped
// bits, whole corrupt regions — is skipped and counted per record, never
// fatal: every record whose integrity still proves out is recovered, on
// both sides of the damage, and losing a record costs one re-run, never
// the sweep. Stats reports what the load saw.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	if err := failpoint.Inject("checkpoint.open"); err != nil {
		return nil, fmt.Errorf("experiment: open checkpoint %s: %w", path, err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("experiment: checkpoint mkdir %s: %w", dir, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: open checkpoint %s: %w", path, err)
	}
	c := &Checkpoint{path: path, f: f, done: make(map[string]Result),
		syncEvery: defaultSyncEvery, syncInterval: defaultSyncInterval, lastSync: time.Now()}
	damagedBytes := 0
	err = readJournal(f, &c.stats, func(key string, res Result) {
		if _, dup := c.done[key]; dup {
			c.stats.Duplicates++
		}
		c.done[key] = res
	}, func(line []byte) {
		if damagedBytes+len(line) > maxDamagedBytes {
			return
		}
		damagedBytes += len(line)
		c.damaged = append(c.damaged, append([]byte(nil), line...))
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: read checkpoint %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: checkpoint %s: %w", path, err)
	}
	// Heal a torn final line (a crash mid-append leaves no trailing
	// newline): terminate it now, or the next Append would fuse with the
	// torn fragment and corrupt a fresh result too. A brand-new journal
	// instead gets the v2 version header.
	if st, err := f.Stat(); err == nil {
		if st.Size() == 0 {
			if _, err := f.Write([]byte(journalHeaderV2 + "\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("experiment: checkpoint %s: %w", path, err)
			}
		} else {
			var last [1]byte
			if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
				if _, err := f.Write([]byte("\n")); err != nil {
					f.Close()
					return nil, fmt.Errorf("experiment: checkpoint %s: %w", path, err)
				}
			}
		}
	}
	return c, nil
}

// Stats returns the integrity accounting from the load that opened this
// journal (appends after open are not re-counted).
func (c *Checkpoint) Stats() JournalStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of completed results loaded or appended so far.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Lookup returns the journaled result for a configuration's science
// identity (Config.Key), if present.
func (c *Checkpoint) Lookup(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.done[key]
	return res, ok
}

// Append journals one completed result as a CRC-framed v2 record. Errored
// results are ignored (they must re-run on resume). Each record is written
// atomically with respect to other Append calls; a failed write is
// retryable — the next append terminates any partial record first, so a
// recovering disk never fuses two records.
func (c *Checkpoint) Append(res Result) error {
	if res.Errored() {
		return nil
	}
	data, key, err := encodeFrame(res)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.torn {
		if _, err := c.f.Write([]byte("\n")); err != nil {
			return fmt.Errorf("experiment: checkpoint append: %w", err)
		}
		c.torn = false
	}
	if fp := failpoint.Eval("checkpoint.append.write"); fp != nil {
		fp.Sleep()
		if fp.ShortN >= 0 && fp.ShortN < len(data) {
			c.f.Write(data[:fp.ShortN])
			c.torn = true
		}
		if fp.Err != nil {
			return fmt.Errorf("experiment: checkpoint append: %w", fp.Err)
		}
	}
	if n, err := c.f.Write(data); err != nil {
		if n > 0 && n < len(data) {
			c.torn = true
		}
		return fmt.Errorf("experiment: checkpoint append: %w", err)
	}
	c.done[key] = res
	c.unsynced++
	if c.unsynced >= c.syncEvery || time.Since(c.lastSync) >= c.syncInterval {
		if err := c.syncLocked(); err != nil {
			return fmt.Errorf("experiment: checkpoint sync: %w", err)
		}
	}
	return nil
}

// SetSyncPolicy overrides the durability policy: fsync after every results
// or after interval since the last sync, whichever trips first. every <= 0
// syncs on every append; interval <= 0 disables the time trigger.
func (c *Checkpoint) SetSyncPolicy(every int, interval time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if every <= 0 {
		every = 1
	}
	if interval <= 0 {
		interval = time.Duration(1<<63 - 1)
	}
	c.syncEvery, c.syncInterval = every, interval
}

// Syncs reports how many fsyncs the policy has issued (for tests and
// durability accounting).
func (c *Checkpoint) Syncs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncs
}

// Sync forces the journal to stable storage immediately, regardless of how
// few appends are pending.
func (c *Checkpoint) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return c.syncLocked()
}

func (c *Checkpoint) syncLocked() error {
	if c.f == nil {
		return nil
	}
	if err := failpoint.Inject("checkpoint.fsync"); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.unsynced = 0
	c.lastSync = time.Now()
	c.syncs++
	return nil
}

// Results returns every live journaled result, sorted by config ID (with
// the science Key breaking ties between runs of the same grid cell under
// different overrides) — the deterministic snapshot order Compact writes
// and sweepd's cache loads.
func (c *Checkpoint) Results() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resultsLocked()
}

func (c *Checkpoint) resultsLocked() []Result {
	out := make([]Result, 0, len(c.done))
	for _, res := range c.done {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Config.ID(), out[j].Config.ID()
		if a != b {
			return a < b
		}
		return out[i].Config.Key() < out[j].Config.Key()
	})
	return out
}

// Compact rewrites the journal to hold exactly the live results — one line
// per config ID, last write wins — and atomically replaces the file. The
// append-only journal otherwise grows without bound across resumes
// (duplicate lines, torn fragments, superseded results); callers compact on
// successful sweep completion. The journal stays open and appendable after
// a compaction, and a compacted journal resumes identically to the
// original.
func (c *Checkpoint) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("experiment: checkpoint compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	if _, err := w.WriteString(journalHeaderV2 + "\n"); err != nil {
		tmp.Close()
		return fmt.Errorf("experiment: checkpoint compact write: %w", err)
	}
	for _, res := range c.resultsLocked() {
		data, _, err := encodeFrame(res)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := w.Write(data); err != nil {
			tmp.Close()
			return fmt.Errorf("experiment: checkpoint compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("experiment: checkpoint compact flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("experiment: checkpoint compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("experiment: checkpoint compact close: %w", err)
	}
	if err := failpoint.Inject("checkpoint.compact.rename"); err != nil {
		return fmt.Errorf("experiment: checkpoint compact rename: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		return fmt.Errorf("experiment: checkpoint compact rename: %w", err)
	}
	// Swap the open handle to the new file so later Appends land in the
	// compacted journal, not the unlinked original.
	f, err := os.OpenFile(c.path, os.O_RDWR|os.O_APPEND, 0o644)
	if ferr := failpoint.Inject("checkpoint.compact.reopen"); ferr != nil && err == nil {
		f.Close()
		f, err = nil, ferr
	}
	if err != nil {
		// The rename already replaced the on-disk journal; the old handle
		// points at the unlinked inode, so anything appended through it
		// would be silently lost. Mark the checkpoint unusable instead:
		// subsequent Appends fail fast rather than vanishing.
		c.err = fmt.Errorf("experiment: checkpoint compact reopen: %w", err)
		c.f.Close()
		c.f = nil
		return c.err
	}
	c.f.Close()
	c.f = f
	// The compacted file was synced before the rename; nothing is pending
	// and any torn partial record is gone with the old file.
	c.unsynced = 0
	c.torn = false
	c.lastSync = time.Now()
	return nil
}

// Close syncs any appends still pending under the batch policy and closes
// the journal file — a cleanly shut-down journal is always durable.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return c.err
	}
	if c.unsynced > 0 {
		if err := c.syncLocked(); err != nil {
			c.f.Close()
			return fmt.Errorf("experiment: checkpoint close sync: %w", err)
		}
	}
	return c.f.Close()
}
