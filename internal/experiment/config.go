// Package experiment drives the paper's measurement campaign over the
// simulator: the 810-point configuration grid of Table 1 (9 CCA pairings ×
// 3 AQMs × 6 queue lengths × 5 bottleneck bandwidths), a parallel sweep
// runner, per-metric aggregation, and renderers for every figure and table
// in the evaluation section.
package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/flows"
	"repro/internal/topo"
	"repro/internal/units"
	"repro/internal/workload"
)

// Pairing is one row of Table 1's CCA column: sender 1 runs CCA1, sender 2
// runs CCA2. Intra-CCA experiments have CCA1 == CCA2.
type Pairing struct {
	CCA1 cca.Name `json:"cca1"`
	CCA2 cca.Name `json:"cca2"`
}

// Intra reports whether both senders run the same algorithm.
func (p Pairing) Intra() bool { return p.CCA1 == p.CCA2 }

// String renders "bbr1-vs-cubic".
func (p Pairing) String() string { return fmt.Sprintf("%s-vs-%s", p.CCA1, p.CCA2) }

// PaperPairings returns Table 1's nine pairings in presentation order.
func PaperPairings() []Pairing {
	return []Pairing{
		{cca.BBRv1, cca.Cubic},
		{cca.BBRv2, cca.Cubic},
		{cca.HTCP, cca.Cubic},
		{cca.Reno, cca.Cubic},
		{cca.Cubic, cca.Cubic},
		{cca.BBRv1, cca.BBRv1},
		{cca.BBRv2, cca.BBRv2},
		{cca.HTCP, cca.HTCP},
		{cca.Reno, cca.Reno},
	}
}

// InterPairings returns the four X-vs-CUBIC pairings (Figures 2–6).
func InterPairings() []Pairing {
	return []Pairing{
		{cca.BBRv1, cca.Cubic},
		{cca.BBRv2, cca.Cubic},
		{cca.HTCP, cca.Cubic},
		{cca.Reno, cca.Cubic},
	}
}

// IntraPairings returns the five same-CCA pairings (Figures 7–8).
func IntraPairings() []Pairing {
	return []Pairing{
		{cca.BBRv1, cca.BBRv1},
		{cca.BBRv2, cca.BBRv2},
		{cca.HTCP, cca.HTCP},
		{cca.Reno, cca.Reno},
		{cca.Cubic, cca.Cubic},
	}
}

// PaperQueueMults returns the buffer sizes of Table 1 in BDP multiples.
// (Table 1 lists 0.5–8; the figures and conclusion extend to 16 BDP, and
// 6 sizes × 9 pairings × 3 AQMs × 5 BWs = the 810 configurations the paper
// reports collecting.)
func PaperQueueMults() []float64 { return []float64{0.5, 1, 2, 4, 8, 16} }

// Config is one experiment configuration (one cell of the grid, one seed).
type Config struct {
	Pairing    Pairing         `json:"pairing"`
	AQM        aqm.Kind        `json:"aqm"`
	QueueBDP   float64         `json:"queue_bdp"` // buffer size in BDP multiples
	Bottleneck units.Bandwidth `json:"bottleneck_bps"`

	RTT            time.Duration `json:"rtt_ns"`             // default 62 ms
	Duration       time.Duration `json:"duration_ns"`        // default: workload.DefaultDuration
	FlowsPerSender int           `json:"flows_per_sender"`   // default: Table 2 plan (scaled)
	Seed           uint64        `json:"seed"`               // replica seed
	PaperScale     bool          `json:"paper_scale"`        // full 200 s, uncapped flows
	ECN            bool          `json:"ecn"`                // enable ECN end to end
	SampleInterval time.Duration `json:"sample_interval_ns"` // throughput series step
	StartSpread    time.Duration `json:"start_spread_ns"`    // flow start jitter window
	// PathLoss injects random loss on the forward core segment (the
	// paper's future-work "network anomalies" scenario).
	PathLoss float64 `json:"path_loss,omitempty"`
	// DelayedAck enables RFC 1122 delayed acknowledgements on receivers.
	DelayedAck bool `json:"delayed_ack,omitempty"`
	// Faults arms a deterministic fault timeline (Gilbert–Elliott bursty
	// loss, link flaps, bandwidth/RTT steps) on the bottleneck port. The
	// profile is part of result identity: it lands in ID and JSON.
	Faults *faults.Profile `json:"faults,omitempty"`
	// Topology selects the network graph the run builds. Nil (and the
	// canonical dumbbell, which Normalize folds to nil) is the paper's
	// dumbbell — so legacy configs keep their exact Key and the sweepd
	// cache and checkpoint journals stay valid. Non-dumbbell specs are
	// science: they land in the JSON identity and in ID.
	Topology *topo.Spec `json:"topology,omitempty"`
	// Flows arms an open-loop background workload: populations of short
	// transfers arriving by seeded Poisson processes while the pairing's
	// long-running flows hold the link. Like faults and topologies it is
	// science and part of the identity (Key via JSON, ID via its compact
	// form); nil keeps the legacy elephant-only run and its exact Key.
	Flows *flows.Spec `json:"flows,omitempty"`
	// SoloFCT runs the open-loop workload alone — no long-running flows —
	// as the Ware harm-to-FCT baseline. Normalize pins the pairing of a
	// solo run to cubic:cubic so one baseline per (AQM, queue, bandwidth,
	// seed) cell is shared by every pairing in the grid (identical Key →
	// one simulation, cached for all).
	SoloFCT bool `json:"solo_fct,omitempty"`
	// MaxEvents aborts the run after this many simulator events (0 =
	// unlimited) — the sweep watchdog against runaway configurations. The
	// abort is deterministic.
	MaxEvents uint64 `json:"max_events,omitempty"`
	// MaxWall aborts the run after this much real time (0 = unlimited), a
	// machine-dependent safety net; aborted runs come back as errors.
	MaxWall time.Duration `json:"max_wall_ns,omitempty"`
	// Audit arms the runtime invariant auditor for the run: packet
	// conservation, queue accounting, TCP sequence-space sanity and engine
	// checks, with violations surfacing as errored results. Auditing
	// observes but never alters the simulation, so — like the watchdog
	// budgets — it is not part of the configuration's identity (ID).
	Audit bool `json:"audit,omitempty"`
	// Trace arms the flight-recorder telemetry tracer: cwnd/RTT/CCA-state
	// events per flow and enqueue/dequeue/drop events per port, recorded
	// into bounded rings and returned in Result.Trace. Like Audit it
	// observes without altering the simulation, so it is excluded from Key.
	Trace bool `json:"trace,omitempty"`
	// TraceRingCap overrides the per-ring event capacity (0 = default).
	TraceRingCap int `json:"trace_ring_cap,omitempty"`
	// TraceSampleN keeps only every Nth high-rate event (cwnd updates,
	// enqueues/dequeues, RTT samples); 0 or 1 records them all. Drops,
	// marks, state transitions, RTOs and faults are never sampled away.
	TraceSampleN int `json:"trace_sample_n,omitempty"`
	// Fairness arms the fairness observatory: fixed-cadence per-flow
	// goodput windows feeding a windowed Jain(t) series, per-flow
	// share-of-bottleneck series, windowed retransmit rate, and the
	// convergence/starvation detectors reported in Result.Fairness. Like
	// Audit and Trace it observes without altering the simulation, so it
	// is excluded from Key.
	Fairness bool `json:"fairness,omitempty"`
	// FairnessWindow overrides the observatory's sampling window
	// (0 = metrics.DefaultFairnessWindow, 100 ms). Observation-only,
	// excluded from Key like the trace knobs.
	FairnessWindow time.Duration `json:"fairness_window_ns,omitempty"`
}

// Normalize fills defaults, returning the effective configuration.
func (c Config) Normalize() Config {
	if c.RTT <= 0 {
		c.RTT = 62 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = workload.DefaultDuration(c.Bottleneck, c.PaperScale)
	}
	if c.FlowsPerSender <= 0 {
		plan := workload.ScaledPlan(c.Bottleneck, workload.DefaultMaxFlows(c.Bottleneck, c.PaperScale))
		c.FlowsPerSender = plan.FlowsPerNode()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.StartSpread <= 0 {
		c.StartSpread = 100 * time.Millisecond
	}
	if c.AQM == "" {
		c.AQM = aqm.KindFIFO
	}
	if c.Faults != nil {
		n := c.Faults.Normalize()
		if n.Empty() {
			c.Faults = nil
		} else {
			c.Faults = &n
		}
	}
	if c.Topology != nil {
		if topo.IsDumbbell(c.Topology) {
			c.Topology = nil
		} else {
			n := c.Topology.Normalize()
			c.Topology = &n
		}
	}
	if c.Flows != nil {
		if c.Flows.Empty() {
			c.Flows = nil
		} else {
			n := c.Flows.Normalize()
			c.Flows = &n
		}
	}
	if c.Flows == nil {
		c.SoloFCT = false // nothing to baseline without a workload
	}
	if c.SoloFCT {
		// The solo baseline has no long-running flows, so the pairing is
		// irrelevant to the simulation; pinning it dedupes the baseline's
		// Key across every pairing of the grid.
		c.Pairing = Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic}
	}
	return c
}

// ID renders a filesystem- and log-friendly identifier. Fault profiles are
// part of the identity, so a faulted run never collides with (or resumes
// from) a clean run of the same grid cell.
func (c Config) ID() string {
	id := fmt.Sprintf("%s_%s_%gbdp_%s_seed%d", c.Pairing, c.AQM, c.QueueBDP,
		c.Bottleneck, c.Seed)
	if fid := c.Faults.ID(); fid != "" {
		id += "_" + fid
	}
	if c.Topology != nil && !topo.IsDumbbell(c.Topology) {
		id += "_" + c.Topology.ID()
	}
	if fid := c.Flows.ID(); fid != "" {
		id += "_flows-" + fid
	}
	if c.SoloFCT {
		id += "_solo"
	}
	return id
}

// Key returns the configuration's full science identity: a hex digest of
// the normalized configuration with the fields that cannot change a run's
// bytes — the watchdog budgets and the observation-only audit bit —
// cleared. Unlike ID, which renders only the grid cell, seed, and fault
// profile, Key also covers duration, paper scale, RTT, flow counts, ECN,
// and every other science-affecting field, so two configurations share a
// Key iff they simulate identically. The checkpoint journal and sweepd's
// result cache are keyed by it; ID remains the human-readable label.
func (c Config) Key() string {
	n := c.Normalize()
	n.MaxEvents = 0
	n.MaxWall = 0
	n.Audit = false
	n.Trace = false
	n.TraceRingCap = 0
	n.TraceSampleN = 0
	n.Fairness = false
	n.FairnessWindow = 0
	data, err := json.Marshal(n)
	if err != nil { // Config is plain data; cannot happen
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:16]
}

// GridOptions controls grid generation.
type GridOptions struct {
	Pairings   []Pairing
	AQMs       []aqm.Kind
	QueueMults []float64
	Bandwidths []units.Bandwidth
	Seeds      []uint64
	PaperScale bool
}

// PaperGrid returns the full Table 1 grid options with the given replica
// seeds (the paper ran 5 per configuration).
func PaperGrid(seeds ...uint64) GridOptions {
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3, 4, 5}
	}
	return GridOptions{
		Pairings:   PaperPairings(),
		AQMs:       aqm.Kinds(),
		QueueMults: PaperQueueMults(),
		Bandwidths: units.PaperBandwidths(),
		Seeds:      seeds,
	}
}

// Grid expands options into the cross-product of configurations.
func Grid(o GridOptions) []Config {
	var out []Config
	for _, p := range o.Pairings {
		for _, a := range o.AQMs {
			for _, q := range o.QueueMults {
				for _, bw := range o.Bandwidths {
					for _, s := range o.Seeds {
						out = append(out, Config{
							Pairing:    p,
							AQM:        a,
							QueueBDP:   q,
							Bottleneck: bw,
							Seed:       s,
							PaperScale: o.PaperScale,
						})
					}
				}
			}
		}
	}
	return out
}
