package experiment

// Paper-shape tests: each test pins one qualitative finding of the paper's
// evaluation section (§5) as an assertion over the simulator, with tolerant
// thresholds. These are the reproduction anchors listed in DESIGN.md §3;
// EXPERIMENTS.md records the quantitative paper-vs-measured comparison.

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/units"
)

func run100M(t *testing.T, p Pairing, kind aqm.Kind, q float64, dur time.Duration) Result {
	t.Helper()
	res, err := Run(Config{
		Pairing: p, AQM: kind, QueueBDP: q,
		Bottleneck: 100 * units.MegabitPerSec, Duration: dur, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Shape 1 (Fig. 2a, §5.1 "BBRv1's takeover"): against CUBIC under FIFO,
// BBRv1 wins at sub-BDP buffers and CUBIC takes over at large buffers; the
// paper's equilibrium at 100 Mbps is 2×BDP.
func TestShapeFIFOBBRv1Equilibrium(t *testing.T) {
	small := run100M(t, Pairing{cca.BBRv1, cca.Cubic}, aqm.KindFIFO, 0.5, 30*time.Second)
	large := run100M(t, Pairing{cca.BBRv1, cca.Cubic}, aqm.KindFIFO, 8, 30*time.Second)
	if small.SenderBps[0] <= small.SenderBps[1] {
		t.Errorf("0.5xBDP: BBRv1 (%.1fM) should lead CUBIC (%.1fM)",
			small.SenderMbps(0), small.SenderMbps(1))
	}
	if large.SenderBps[1] <= large.SenderBps[0] {
		t.Errorf("8xBDP: CUBIC (%.1fM) should lead BBRv1 (%.1fM)",
			large.SenderMbps(1), large.SenderMbps(0))
	}
}

// Shape 2 (§5.1): at large FIFO buffers the 2×BDP inflight cap hobbles both
// BBR versions, and Reno loses to CUBIC's adaptive decrease.
func TestShapeFIFOLargeBufferCubicDominance(t *testing.T) {
	for _, tc := range []struct {
		first cca.Name
		dur   time.Duration
	}{
		{cca.BBRv1, 30 * time.Second},
		{cca.BBRv2, 30 * time.Second},
		// Reno fills the deep buffer in slow start while CUBIC's HyStart
		// yields early; CUBIC's cubic growth needs the paper's longer
		// 200 s horizon to take the buffer back (and does, decisively).
		{cca.Reno, 150 * time.Second},
	} {
		res := run100M(t, Pairing{tc.first, cca.Cubic}, aqm.KindFIFO, 16, tc.dur)
		if res.SenderBps[1] < 1.2*res.SenderBps[0] {
			t.Errorf("%s vs CUBIC at 16xBDP FIFO (%v): CUBIC %.1fM not clearly ahead of %.1fM",
				tc.first, tc.dur, res.SenderMbps(1), res.SenderMbps(0))
		}
	}
}

// Shape 3 (Fig. 4, §5.2): under RED, both BBR versions starve CUBIC, while
// Reno and CUBIC split the link roughly evenly.
func TestShapeREDBBRDominance(t *testing.T) {
	for _, first := range []cca.Name{cca.BBRv1, cca.BBRv2} {
		res := run100M(t, Pairing{first, cca.Cubic}, aqm.KindRED, 2, 30*time.Second)
		if res.SenderBps[0] < 1.2*res.SenderBps[1] {
			t.Errorf("%s vs CUBIC under RED: %.1fM not clearly ahead of CUBIC %.1fM",
				first, res.SenderMbps(0), res.SenderMbps(1))
		}
	}
	reno := run100M(t, Pairing{cca.Reno, cca.Cubic}, aqm.KindRED, 2, 30*time.Second)
	if reno.Jain < 0.9 {
		t.Errorf("Reno vs CUBIC under RED should be roughly fair: J=%.3f", reno.Jain)
	}
}

// Shape 4 (Fig. 6, §5.2): FQ_CODEL delivers near-perfect fairness for every
// pairing, inter- and intra-CCA.
func TestShapeFQCoDelFairness(t *testing.T) {
	for _, p := range PaperPairings() {
		res := run100M(t, p, aqm.KindFQCoDel, 2, 30*time.Second)
		if res.Jain < 0.90 {
			t.Errorf("%s under FQ_CODEL: J=%.3f < 0.90", p, res.Jain)
		}
	}
}

// Shape 5 (Fig. 7, §5.3): with FIFO every intra-CCA pairing achieves high
// utilization at 2×BDP, and RED utilization falls behind FIFO.
func TestShapeUtilizationFIFOVsRED(t *testing.T) {
	for _, p := range IntraPairings() {
		fifo := run100M(t, p, aqm.KindFIFO, 2, 30*time.Second)
		if fifo.Utilization < 0.80 {
			t.Errorf("%s FIFO 2xBDP: φ=%.3f < 0.80", p, fifo.Utilization)
		}
	}
	// Averaged across the intra pairings, RED must lag FIFO.
	var fifoSum, redSum float64
	for _, p := range IntraPairings() {
		fifoSum += run100M(t, p, aqm.KindFIFO, 2, 20*time.Second).Utilization
		redSum += run100M(t, p, aqm.KindRED, 2, 20*time.Second).Utilization
	}
	if redSum >= fifoSum {
		t.Errorf("RED mean utilization (%.3f) should lag FIFO (%.3f)", redSum/5, fifoSum/5)
	}
}

// Shape 6 (Fig. 8, §5.4): BBRv1 retransmits more than BBRv2 under FIFO
// and far more under RED (where its loss-blindness keeps it pumping into
// random drops); both far exceed CUBIC under RED. FIFO retransmissions
// fall as the buffer grows.
func TestShapeRetransmissionOrdering(t *testing.T) {
	b1 := run100M(t, Pairing{cca.BBRv1, cca.BBRv1}, aqm.KindFIFO, 1, 30*time.Second)
	b2 := run100M(t, Pairing{cca.BBRv2, cca.BBRv2}, aqm.KindFIFO, 1, 30*time.Second)
	if b1.TotalRetransmits <= b2.TotalRetransmits {
		t.Errorf("FIFO: BBRv1 rtx (%d) should exceed BBRv2 (%d)",
			b1.TotalRetransmits, b2.TotalRetransmits)
	}
	r1 := run100M(t, Pairing{cca.BBRv1, cca.BBRv1}, aqm.KindRED, 1, 30*time.Second)
	r2 := run100M(t, Pairing{cca.BBRv2, cca.BBRv2}, aqm.KindRED, 1, 30*time.Second)
	rc := run100M(t, Pairing{cca.Cubic, cca.Cubic}, aqm.KindRED, 1, 30*time.Second)
	if r1.TotalRetransmits < 2*r2.TotalRetransmits {
		t.Errorf("RED: BBRv1 rtx (%d) should far exceed BBRv2 (%d)",
			r1.TotalRetransmits, r2.TotalRetransmits)
	}
	if r1.TotalRetransmits < 4*rc.TotalRetransmits {
		t.Errorf("RED: BBRv1 rtx (%d) should dwarf CUBIC (%d)",
			r1.TotalRetransmits, rc.TotalRetransmits)
	}

	// Buffer-size dependence (Fig. 8a–b): the paper highlights the BBR
	// family's "significantly low intermittent retransmissions" at 16 BDP
	// — the 2×BDP inflight cap keeps them from ever testing the limit of
	// a deep buffer, unlike at 0.5 BDP where every probe overflows.
	for _, name := range []cca.Name{cca.BBRv1, cca.BBRv2} {
		tiny := run100M(t, Pairing{name, name}, aqm.KindFIFO, 0.5, 60*time.Second)
		deep := run100M(t, Pairing{name, name}, aqm.KindFIFO, 16, 60*time.Second)
		if deep.TotalRetransmits*2 >= tiny.TotalRetransmits {
			t.Errorf("%s intra FIFO rtx should collapse at 16xBDP: 0.5xBDP=%d, 16xBDP=%d",
				name, tiny.TotalRetransmits, deep.TotalRetransmits)
		}
	}
}

// Shape 7 (§5.2, intra-CCA): every CCA shares fairly with itself under
// FIFO at moderate buffers.
func TestShapeIntraCCAFIFOFairness(t *testing.T) {
	for _, p := range IntraPairings() {
		res, err := Run(Config{
			Pairing: p, AQM: aqm.KindFIFO, QueueBDP: 2,
			Bottleneck: 100 * units.MegabitPerSec, Duration: 60 * time.Second, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Jain < 0.85 {
			t.Errorf("%s FIFO 2xBDP intra fairness: J=%.3f < 0.85", p, res.Jain)
		}
	}
}

// Shape 8 (§5.3, conclusion): FQ_CODEL achieves near-full utilization at
// the lower bandwidths but falls short at 25 Gbps, where its 32 MB memory
// cap is a small fraction of the BDP. The comparison is within FQ_CODEL
// across bandwidth tiers so startup transients cancel.
func TestShapeFQCoDel25GUnderutilization(t *testing.T) {
	if testing.Short() {
		t.Skip("25G simulation is expensive")
	}
	low, err := Run(Config{
		Pairing: Pairing{cca.Cubic, cca.Cubic}, AQM: aqm.KindFQCoDel, QueueBDP: 4,
		Bottleneck: 500 * units.MegabitPerSec, Duration: 20 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(Config{
		Pairing: Pairing{cca.Cubic, cca.Cubic}, AQM: aqm.KindFQCoDel, QueueBDP: 4,
		Bottleneck: 25 * units.GigabitPerSec, Duration: 5 * time.Second,
		FlowsPerSender: 24, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if low.Utilization < 0.90 {
		t.Errorf("FQ_CODEL at 500 Mbps should be near-full: φ=%.3f", low.Utilization)
	}
	if high.Utilization > low.Utilization-0.025 {
		t.Errorf("FQ_CODEL at 25G (φ=%.3f) should lag 500M (φ=%.3f)",
			high.Utilization, low.Utilization)
	}
}
