package experiment

import (
	"fmt"
	"runtime"
	"sync"
)

// Progress reports sweep progress to a callback.
type Progress struct {
	Done    int
	Total   int
	Skipped int // configs satisfied from the checkpoint, not re-run
	Errored int // configs that panicked or hit the watchdog so far
	Last    Result
	LastID  string
}

// RunAllOptions controls a hardened sweep.
type RunAllOptions struct {
	// Workers is the worker-pool width (0 = GOMAXPROCS).
	Workers int
	// OnProgress, when set, is called (serialized) after every completed
	// configuration.
	OnProgress func(Progress)
	// KeepGoing makes RunAllOpts return a nil error even when individual
	// configurations fail; failures are still recorded in Result.Error.
	// Without it the first failure is returned as the sweep error — but
	// only after every configuration has been attempted either way.
	KeepGoing bool
	// Checkpoint, when set, is consulted before running (configs whose
	// science identity is already journaled are filled from it and skipped)
	// and appended to as each configuration completes.
	Checkpoint *Checkpoint
}

// testHookBeforeRun, when non-nil, runs inside the per-config recover()
// scope before each simulation — the injection point for the runner's
// panic-hardening tests.
var testHookBeforeRun func(Config)

// runSafe executes one configuration, converting a panic anywhere under
// Run into an ordinary error so one poisoned configuration cannot take
// down the worker pool (and with it a multi-hour sweep).
func runSafe(cfg Config) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if testHookBeforeRun != nil {
		testHookBeforeRun(cfg)
	}
	return Run(cfg)
}

// RunOne executes a single configuration with the sweep runner's hardening:
// a panic anywhere under Run comes back as an errored Result carrying the
// normalized config for identification, never a crash. It is the unit of
// work sweepd's sharded pool schedules, so daemon-run configurations get
// exactly the same recovery, watchdog, and audit semantics as a CLI sweep.
func RunOne(cfg Config) Result {
	res, err := runSafe(cfg)
	if err != nil {
		res.Config = cfg.Normalize()
		res.Error = err.Error()
	}
	return res
}

// RunAll executes the configurations on a worker pool of the given width
// (0 = GOMAXPROCS) and returns results in input order. Each simulation is
// single-threaded and deterministic; parallelism is purely across
// configurations, so results are independent of worker count.
func RunAll(cfgs []Config, workers int, onProgress func(Progress)) ([]Result, error) {
	return RunAllOpts(cfgs, RunAllOptions{Workers: workers, OnProgress: onProgress})
}

// RunAllOpts is RunAll with hardening options: per-config panic recovery,
// keep-going error policy, and checkpoint/resume. Every configuration is
// attempted exactly once (or resumed from the checkpoint); a failed
// configuration yields an errored Result identified by its config and
// never stops the others.
func RunAllOpts(cfgs []Config, o RunAllOptions) ([]Result, error) {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) && len(cfgs) > 0 {
		workers = len(cfgs)
	}

	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	skip := make([]bool, len(cfgs))
	skipped := 0
	if o.Checkpoint != nil {
		for i := range cfgs {
			if res, ok := o.Checkpoint.Lookup(cfgs[i].Key()); ok {
				results[i] = res
				skip[i] = true
				skipped++
			}
		}
	}

	jobs := make(chan int)

	var mu sync.Mutex
	done := skipped
	errored := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := runSafe(cfgs[i])
				if err != nil {
					res.Config = cfgs[i].Normalize()
					res.Error = err.Error()
				}
				results[i] = res
				errs[i] = err
				mu.Lock()
				if err == nil && o.Checkpoint != nil {
					if cerr := o.Checkpoint.Append(res); cerr != nil && errs[i] == nil {
						errs[i] = cerr
					}
				}
				done++
				if err != nil {
					errored++
				}
				if o.OnProgress != nil {
					o.OnProgress(Progress{Done: done, Total: len(cfgs), Skipped: skipped,
						Errored: errored, Last: res, LastID: res.Config.ID()})
				}
				mu.Unlock()
			}
		}()
	}
	for i := range cfgs {
		if !skip[i] {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()

	if o.KeepGoing {
		return results, nil
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("config %d (%s): %w", i, results[i].Config.ID(), err)
		}
	}
	return results, nil
}
