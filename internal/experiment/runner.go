package experiment

import (
	"fmt"
	"runtime"
	"sync"
)

// Progress reports sweep progress to a callback.
type Progress struct {
	Done   int
	Total  int
	Last   Result
	LastID string
}

// RunAll executes the configurations on a worker pool of the given width
// (0 = GOMAXPROCS) and returns results in input order. Each simulation is
// single-threaded and deterministic; parallelism is purely across
// configurations, so results are independent of worker count.
func RunAll(cfgs []Config, workers int, onProgress func(Progress)) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) && len(cfgs) > 0 {
		workers = len(cfgs)
	}

	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	jobs := make(chan int)

	var mu sync.Mutex
	done := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := Run(cfgs[i])
				results[i] = res
				errs[i] = err
				if onProgress != nil {
					mu.Lock()
					done++
					onProgress(Progress{Done: done, Total: len(cfgs), Last: res, LastID: cfgs[i].ID()})
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("config %d (%s): %w", i, cfgs[i].ID(), err)
		}
	}
	return results, nil
}
