package experiment

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/units"
)

func quick100M(p Pairing, kind aqm.Kind, q float64, seed uint64, dur time.Duration) Config {
	return Config{
		Pairing:    p,
		AQM:        kind,
		QueueBDP:   q,
		Bottleneck: 100 * units.MegabitPerSec,
		Duration:   dur,
		Seed:       seed,
	}
}

func TestGridSize(t *testing.T) {
	cfgs := Grid(PaperGrid(1, 2, 3, 4, 5))
	// 9 pairings × 3 AQMs × 6 buffers × 5 BWs × 5 seeds = 4050 runs,
	// i.e. the paper's 810 configurations × 5 repetitions.
	if len(cfgs) != 4050 {
		t.Fatalf("grid size = %d, want 4050", len(cfgs))
	}
	distinct := map[string]bool{}
	for _, c := range cfgs {
		distinct[c.ID()] = true
	}
	if len(distinct) != 4050 {
		t.Fatalf("IDs not unique: %d", len(distinct))
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{Bottleneck: 100 * units.MegabitPerSec}.Normalize()
	if c.RTT != 62*time.Millisecond {
		t.Errorf("rtt = %v", c.RTT)
	}
	if c.FlowsPerSender != 1 { // Table 2: one flow per node at 100 Mbps
		t.Errorf("flows = %d", c.FlowsPerSender)
	}
	if c.Duration <= 0 || c.Seed == 0 || c.AQM != aqm.KindFIFO {
		t.Errorf("defaults: %+v", c)
	}
	c25 := Config{Bottleneck: 25 * units.GigabitPerSec}.Normalize()
	if c25.FlowsPerSender > 32 {
		t.Errorf("25G scaled flows = %d, want capped", c25.FlowsPerSender)
	}
	p25 := Config{Bottleneck: 25 * units.GigabitPerSec, PaperScale: true}.Normalize()
	if p25.FlowsPerSender != 250 {
		t.Errorf("25G paper-scale flows = %d, want 250", p25.FlowsPerSender)
	}
}

func TestRunSingleConfig(t *testing.T) {
	res, err := Run(quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 1, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.7 || res.Utilization > 1.0 {
		t.Fatalf("utilization = %.3f", res.Utilization)
	}
	if res.Jain < 0.5 || res.Jain > 1.0 {
		t.Fatalf("jain = %.3f", res.Jain)
	}
	if res.Flows != 2 {
		t.Fatalf("flows = %d", res.Flows)
	}
	if res.Events == 0 || res.SimSeconds != 10 {
		t.Fatalf("meta: %+v", res)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := quick100M(Pairing{cca.BBRv1, cca.Cubic}, aqm.KindFIFO, 2, 7, 5*time.Second)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SenderBps != b.SenderBps || a.TotalRetransmits != b.TotalRetransmits {
		t.Fatalf("same seed diverged: %+v vs %+v", a.SenderBps, b.SenderBps)
	}
}

func TestRunAllParallelMatchesSerial(t *testing.T) {
	cfgs := []Config{
		quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 1, 3*time.Second),
		quick100M(Pairing{cca.Reno, cca.Cubic}, aqm.KindFIFO, 1, 1, 3*time.Second),
		quick100M(Pairing{cca.HTCP, cca.Cubic}, aqm.KindRED, 1, 1, 3*time.Second),
		quick100M(Pairing{cca.BBRv2, cca.Cubic}, aqm.KindFQCoDel, 1, 1, 3*time.Second),
	}
	progress := 0
	par, err := RunAll(cfgs, 4, func(p Progress) { progress = p.Done })
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunAll(cfgs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if progress != len(cfgs) {
		t.Fatalf("progress = %d", progress)
	}
	for i := range cfgs {
		if par[i].SenderBps != ser[i].SenderBps {
			t.Fatalf("cfg %d: parallel %v != serial %v", i, par[i].SenderBps, ser[i].SenderBps)
		}
	}
}

func TestRunAllErrorPropagates(t *testing.T) {
	cfgs := []Config{{Pairing: Pairing{"bogus", "cubic"}, Bottleneck: units.GigabitPerSec}}
	if _, err := RunAll(cfgs, 1, nil); err == nil {
		t.Fatal("want error for unknown CCA")
	}
}

func TestSummarizeAveragesSeeds(t *testing.T) {
	cfgs := []Config{
		quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 1, 3*time.Second),
		quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 2, 3*time.Second),
	}
	results, err := RunAll(cfgs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	c := s.Lookup(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 100*units.MegabitPerSec)
	if c == nil || c.N != 2 {
		t.Fatalf("cell: %+v", c)
	}
	wantPhi := (results[0].Utilization + results[1].Utilization) / 2
	if diff := c.Utilization - wantPhi; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean utilization %v, want %v", c.Utilization, wantPhi)
	}
	if len(s.QueueMults()) != 1 || len(s.Bandwidths()) != 1 || len(s.Pairings()) != 1 {
		t.Fatal("axis extraction wrong")
	}
}

func TestTable3AndRenderers(t *testing.T) {
	// A minimal grid that still exercises the Table 3 math: two pairings
	// (one of them the CUBIC reference), one AQM, two buffers.
	var cfgs []Config
	for _, p := range []Pairing{{cca.Cubic, cca.Cubic}, {cca.Reno, cca.Cubic}} {
		for _, q := range []float64{1, 4} {
			cfgs = append(cfgs, quick100M(p, aqm.KindFIFO, q, 1, 5*time.Second))
		}
	}
	results, err := RunAll(cfgs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	rows := s.Table3()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var cubicRow *Table3Row
	for i := range rows {
		if rows[i].Pairing.Intra() {
			cubicRow = &rows[i]
		}
	}
	if cubicRow == nil {
		t.Fatal("no cubic-cubic row")
	}
	// RR of the reference against itself must be exactly 1 per condition.
	if cubicRow.AvgRR < 0.99 || cubicRow.AvgRR > 1.01 {
		t.Fatalf("cubic reference AvgRR = %v, want 1", cubicRow.AvgRR)
	}

	md := s.RenderTable3()
	if !strings.Contains(md, "| CUBIC vs CUBIC |") || !strings.Contains(md, "Avg(phi)") {
		t.Fatalf("table3 render:\n%s", md)
	}
	fig := s.RenderThroughputFigure(Pairing{cca.Reno, cca.Cubic}, aqm.KindFIFO)
	if !strings.Contains(fig, "sender1") || !strings.Contains(fig, "1xBDP") {
		t.Fatalf("fig render:\n%s", fig)
	}
	jain := s.RenderJainFigure(aqm.KindFIFO, 1)
	if !strings.Contains(jain, "inter-CCA") {
		t.Fatalf("jain render:\n%s", jain)
	}
	util := s.RenderUtilizationFigure(aqm.KindFIFO, 1)
	if !strings.Contains(util, "cubic") {
		t.Fatalf("util render:\n%s", util)
	}
	rtx := s.RenderRetransFigure(aqm.KindFIFO, 1)
	if !strings.Contains(rtx, "Retransmissions") {
		t.Fatalf("rtx render:\n%s", rtx)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	res, err := Run(quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 1, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rs := &ResultSet{Note: "test", Results: []Result{res}}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "test" || len(got.Results) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Results[0].Jain != res.Jain {
		t.Fatal("jain lost in serialization")
	}

	path := filepath.Join(t.TempDir(), "sub", "results.json")
	if err := SaveFile(path, rs); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Results[0].Config.ID() != res.Config.ID() {
		t.Fatal("config lost in file round trip")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestEquilibriumBDP(t *testing.T) {
	s := Summarize([]Result{
		{Config: Config{Pairing: Pairing{cca.BBRv1, cca.Cubic}, AQM: aqm.KindFIFO, QueueBDP: 1, Bottleneck: units.GigabitPerSec}, SenderBps: [2]float64{80, 20}},
		{Config: Config{Pairing: Pairing{cca.BBRv1, cca.Cubic}, AQM: aqm.KindFIFO, QueueBDP: 4, Bottleneck: units.GigabitPerSec}, SenderBps: [2]float64{30, 70}},
	})
	q, ok := s.EquilibriumBDP(Pairing{cca.BBRv1, cca.Cubic}, aqm.KindFIFO, units.GigabitPerSec)
	if !ok || q != 4 {
		t.Fatalf("equilibrium = %v,%v want 4,true", q, ok)
	}
	_, ok = s.EquilibriumBDP(Pairing{cca.Reno, cca.Cubic}, aqm.KindFIFO, units.GigabitPerSec)
	if ok {
		t.Fatal("missing pairing should report no equilibrium")
	}
}

func TestFlowJainComputed(t *testing.T) {
	res, err := Run(Config{
		Pairing: Pairing{cca.Cubic, cca.Cubic}, AQM: aqm.KindFQCoDel, QueueBDP: 2,
		Bottleneck: 100 * units.MegabitPerSec, Duration: 10 * time.Second,
		FlowsPerSender: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowJain <= 0 || res.FlowJain > 1 {
		t.Fatalf("FlowJain = %v", res.FlowJain)
	}
	// FQ-CoDel with 6 identical flows: per-flow fairness should be high.
	if res.FlowJain < 0.9 {
		t.Fatalf("FQ_CODEL per-flow Jain = %.3f, want ≥0.9", res.FlowJain)
	}
}

func TestVizRenderers(t *testing.T) {
	s := Summarize([]Result{
		{Config: Config{Pairing: Pairing{cca.BBRv1, cca.Cubic}, AQM: aqm.KindFIFO, QueueBDP: 0.5, Bottleneck: 100 * units.MegabitPerSec}, SenderBps: [2]float64{60e6, 30e6}, Jain: 0.9, Utilization: 0.9},
		{Config: Config{Pairing: Pairing{cca.BBRv1, cca.Cubic}, AQM: aqm.KindFIFO, QueueBDP: 2, Bottleneck: 100 * units.MegabitPerSec}, SenderBps: [2]float64{20e6, 70e6}, Jain: 0.75, Utilization: 0.9},
		{Config: Config{Pairing: Pairing{cca.Cubic, cca.Cubic}, AQM: aqm.KindFIFO, QueueBDP: 2, Bottleneck: 100 * units.MegabitPerSec}, SenderBps: [2]float64{45e6, 45e6}, Jain: 1, Utilization: 0.9},
	})
	bars := s.RenderThroughputBars(Pairing{cca.BBRv1, cca.Cubic}, aqm.KindFIFO, 100*units.MegabitPerSec)
	if !strings.Contains(bars, "0.5xBDP") || !strings.Contains(bars, "bbr1") {
		t.Fatalf("bars:\n%s", bars)
	}
	if s.RenderThroughputBars(Pairing{cca.Reno, cca.Reno}, aqm.KindFIFO, 100*units.MegabitPerSec) != "" {
		t.Fatal("missing pairing should render empty")
	}
	jm := s.RenderJainMatrix(aqm.KindFIFO, 2)
	if !strings.Contains(jm, "0.750") || !strings.Contains(jm, "100Mbps") {
		t.Fatalf("jain matrix:\n%s", jm)
	}
	um := s.RenderUtilizationMatrix(aqm.KindFIFO, 2)
	if !strings.Contains(um, "cubic") {
		t.Fatalf("util matrix:\n%s", um)
	}
	sp := s.RenderSenderSparklines(Pairing{cca.BBRv1, cca.Cubic}, aqm.KindFIFO)
	if !strings.Contains(sp, "100Mbps") {
		t.Fatalf("sparklines:\n%s", sp)
	}
}

func TestSummarizeStddev(t *testing.T) {
	mk := func(seed uint64, jain float64) Result {
		return Result{
			Config: Config{Pairing: Pairing{cca.Cubic, cca.Cubic}, AQM: aqm.KindFIFO,
				QueueBDP: 1, Bottleneck: units.GigabitPerSec, Seed: seed},
			Jain: jain, Utilization: 0.9,
		}
	}
	s := Summarize([]Result{mk(1, 0.8), mk(2, 1.0)})
	c := s.Lookup(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, units.GigabitPerSec)
	if c.N != 2 || c.Jain != 0.9 {
		t.Fatalf("cell: %+v", c)
	}
	if c.JainStd < 0.14 || c.JainStd > 0.15 {
		t.Fatalf("JainStd = %v, want ~0.1414", c.JainStd)
	}
	if c.UtilStd != 0 {
		t.Fatalf("UtilStd = %v, want 0 for identical values", c.UtilStd)
	}
}

func TestSojournReported(t *testing.T) {
	// A deep FIFO buffer filled by CUBIC must show substantial queueing
	// delay at the bottleneck; FQ-CoDel must keep it near its 5ms target.
	fifo, err := Run(quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 8, 1, 15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if fifo.SojournMax < 50*time.Millisecond {
		t.Fatalf("8xBDP FIFO max sojourn = %v, want bufferbloat", fifo.SojournMax)
	}
	fq, err := Run(quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFQCoDel, 8, 1, 15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if fq.SojournMean > 30*time.Millisecond {
		t.Fatalf("FQ_CODEL mean sojourn = %v, want controlled delay", fq.SojournMean)
	}
	if fq.SojournMean >= fifo.SojournMean {
		t.Fatalf("CoDel (%v) should beat FIFO (%v) on queueing delay",
			fq.SojournMean, fifo.SojournMean)
	}
}
