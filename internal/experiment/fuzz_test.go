package experiment

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
)

func mustUnmarshalResult(data []byte) Result {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		panic(err)
	}
	return res
}

// journalLine renders one checkpoint JSONL line for a synthetic result.
func journalLine(t *testing.T, seed uint64, jain float64, errMsg string) []byte {
	t.Helper()
	res := Result{
		Config: quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, seed, time.Second).Normalize(),
		Jain:   jain,
		Error:  errMsg,
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointLastWriteWins: when a journal carries several lines for the
// same config ID (a config re-run after a crash landed mid-sweep), Lookup
// must return the newest — the reload is a fold, not a first-match scan.
func TestCheckpointLastWriteWins(t *testing.T) {
	var journal bytes.Buffer
	journal.Write(journalLine(t, 1, 0.111, ""))
	journal.WriteByte('\n')
	journal.Write(journalLine(t, 2, 0.5, ""))
	journal.WriteByte('\n')
	journal.Write(journalLine(t, 1, 0.999, "")) // same ID as line 1, newer
	journal.WriteByte('\n')

	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, journal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Len() != 2 {
		t.Fatalf("journal with one duplicate loaded %d entries, want 2", ck.Len())
	}
	key := quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 1, time.Second).Key()
	got, ok := ck.Lookup(key)
	if !ok {
		t.Fatalf("duplicated config %s missing after reload", key)
	}
	if got.Jain != 0.999 {
		t.Fatalf("Lookup returned Jain=%v, want the last write 0.999", got.Jain)
	}
}

// oracleLine is the reference decoder for one journal line, deliberately
// simpler than the real reader: it accepts exactly clean whole-line v2
// frames and clean v1 JSON lines. The real reader may additionally recover
// frames embedded in damaged lines (resync), so the oracle's accept set is
// a lower bound — the fuzz targets assert containment always and equality
// only when the reader reports a pristine file.
//
// Returns (result, accepted, ambiguous): ambiguous marks a line the oracle
// refuses to rule on (a non-frame line containing the frame magic, where
// the real reader's resync may legitimately see more than a line-based
// decoder can).
func oracleLine(line []byte) (Result, bool, bool) {
	var zero Result
	if len(line) == 0 || line[0] == '#' {
		return zero, false, false
	}
	if bytes.HasPrefix(line, []byte("r ")) {
		res, n, ok := oracleFrame(line)
		if ok && n == len(line) {
			return res, true, false
		}
		return zero, false, true // damaged frame territory: reader's call
	}
	var res Result
	if json.Unmarshal(line, &res) != nil || res.Errored() {
		return zero, false, bytes.Contains(line, []byte("r "))
	}
	if bytes.Contains(line, []byte("r ")) {
		// Valid v1 JSON that also contains the frame magic: the reader
		// scans it for embedded frames first, so don't pin its behavior.
		return zero, false, true
	}
	return res, true, false
}

// oracleFrame strictly decodes "r <len> <crc8> <key16> <payload>" at the
// start of b, returning the consumed length.
func oracleFrame(b []byte) (Result, int, bool) {
	var zero Result
	rest := b[2:]
	sp := bytes.IndexByte(rest, ' ')
	if sp <= 0 || sp > 8 {
		return zero, 0, false
	}
	plen, err := strconv.Atoi(string(rest[:sp]))
	if err != nil || plen <= 0 {
		return zero, 0, false
	}
	rest = rest[sp+1:]
	if len(rest) < 26+plen || rest[8] != ' ' || rest[25] != ' ' {
		return zero, 0, false
	}
	crc, err := strconv.ParseUint(string(rest[:8]), 16, 32)
	if err != nil || crc32.ChecksumIEEE(rest[26:26+plen]) != uint32(crc) {
		return zero, 0, false
	}
	var res Result
	if json.Unmarshal(rest[26:26+plen], &res) != nil ||
		string(rest[9:25]) != res.Config.Key() || res.Errored() {
		return zero, 0, false
	}
	return res, 2 + sp + 1 + 26 + plen, true
}

// journalOracle folds oracleLine over a whole journal image.
func journalOracle(data []byte) (want map[string][]byte, ambiguous int) {
	want = map[string][]byte{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		res, ok, amb := oracleLine(line)
		if amb {
			ambiguous++
		}
		if !ok {
			continue
		}
		j, _ := json.Marshal(res)
		want[res.Config.Key()] = j
	}
	return want, ambiguous
}

// FuzzCheckpointReload feeds arbitrary bytes to the checkpoint reader as a
// journal file — torn lines, duplicate IDs, interleaved garbage, partial
// JSON, v1 and v2 records — and checks OpenCheckpoint against the
// line-by-line oracle: every record the oracle accepts is recovered
// (exactly, when the reader saw no damage), everything else is skipped
// without failing the open, and the reopened journal still accepts appends.
func FuzzCheckpointReload(f *testing.F) {
	// Build realistic seeds out of genuine journal lines. TB-wise f is
	// usable with journalLine via the fuzz target's *testing.T only, so
	// seeds are assembled from raw marshaled results here.
	mk := func(seed uint64, jain float64, errMsg string) []byte {
		res := Result{
			Config: quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, seed, time.Second).Normalize(),
			Jain:   jain,
			Error:  errMsg,
		}
		data, _ := json.Marshal(res)
		return data
	}
	valid := mk(1, 0.9, "")
	dup := mk(1, 0.4, "")
	errored := mk(2, 0, "panic: boom")
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add(valid)
	f.Add(append(append(append([]byte{}, valid...), '\n'), dup...))
	f.Add(append(append(append([]byte{}, valid...), '\n'), errored...))
	f.Add(append(append([]byte{}, valid...), valid[:len(valid)/2]...)) // torn tail
	f.Add([]byte("{\"config\":{}}\nnot json at all\n{\"jain\":"))
	f.Add([]byte("null\n{}\n[]\n42\n\"str\""))
	// The fsync-policy crash shape: a synced prefix of whole lines followed
	// by an unsynced tail torn mid-line (see
	// TestCheckpointSyncedPrefixSurvivesTornTail for the directed version).
	prefix := append(append(append([]byte{}, valid...), '\n'), errored...)
	prefix = append(prefix, '\n')
	f.Add(append(prefix, dup[:len(dup)/3]...))
	// v2 shapes: a clean framed journal, a mixed-version journal, and a
	// frame with a flipped payload bit (CRC must catch it).
	frame := func(data []byte) []byte {
		fr, _, err := encodeFrame(mustUnmarshalResult(data))
		if err != nil {
			f.Fatal(err)
		}
		return fr
	}
	header := []byte(journalHeaderV2 + "\n")
	f.Add(append(append([]byte{}, header...), frame(valid)...))
	f.Add(append(append(append([]byte{}, frame(valid)...), dup...), '\n'))
	flipped := append([]byte{}, frame(valid)...)
	flipped[len(flipped)/2] ^= 0x04
	f.Add(append(append([]byte{}, header...), flipped...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("OpenCheckpoint rejected a journal it must tolerate: %v", err)
		}
		defer ck.Close()

		want, ambiguous := journalOracle(data)
		st := ck.Stats()
		pristine := st.Damaged() == 0 && ambiguous == 0
		if pristine && ck.Len() != len(want) {
			t.Fatalf("pristine reload kept %d entries, oracle says %d", ck.Len(), len(want))
		}
		for id, wantJSON := range want {
			got, ok := ck.Lookup(id)
			if !ok {
				t.Fatalf("entry %q lost in reload", id)
			}
			if pristine {
				gotJSON, _ := json.Marshal(got)
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Fatalf("entry %q: reload kept\n%s\noracle wants (last write)\n%s", id, gotJSON, wantJSON)
				}
			}
		}

		// The journal must remain appendable after swallowing garbage, and
		// the append must survive a reopen.
		fresh := Result{
			Config: quick100M(Pairing{cca.BBRv1, cca.Reno}, aqm.KindRED, 2, 77, time.Second).Normalize(),
			Jain:   0.777,
		}
		if err := ck.Append(fresh); err != nil {
			t.Fatalf("append after corrupt reload: %v", err)
		}
		ck.Close()
		ck2, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer ck2.Close()
		if got, ok := ck2.Lookup(fresh.Config.Key()); !ok || got.Jain != 0.777 {
			t.Fatalf("appended result lost across reopen (ok=%v)", ok)
		}
	})
}

// FuzzJournalV2Reload attacks the CRC-framed v2 decoder specifically —
// truncated headers, flipped bits, fused and interleaved frames, v1/v2
// mixtures (the checked-in corpus under testdata/fuzz seeds these shapes)
// — and checks the recovery fixed point: whatever the resilient reader
// salvages, compacting and reloading yields byte-identical results from a
// journal that is now clean v2. Recovery loses nothing to re-encoding and
// never manufactures damage.
func FuzzJournalV2Reload(f *testing.F) {
	mk := func(seed uint64, jain float64, errMsg string) []byte {
		res := Result{
			Config: quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, seed, time.Second).Normalize(),
			Jain:   jain,
			Error:  errMsg,
		}
		data, _ := json.Marshal(res)
		return data
	}
	frame := func(data []byte) []byte {
		fr, _, err := encodeFrame(mustUnmarshalResult(data))
		if err != nil {
			f.Fatal(err)
		}
		return fr
	}
	v1a, v1b := mk(1, 0.9, ""), mk(2, 0.5, "")
	header := []byte(journalHeaderV2 + "\n")
	f.Add(append([]byte{}, header...))                                   // header only
	f.Add([]byte(journalHeaderV2[:7]))                                   // truncated header
	f.Add(append(append([]byte{}, header...), frame(v1a)...))            // one clean frame
	f.Add(append(append([]byte{}, frame(v1a)...), frame(v1b)...))        // two frames, no header
	f.Add(append(append([]byte{}, frame(v1a)...), v1b...))               // v2 then torn v1
	f.Add(append(append(append([]byte{}, v1a...), '\n'), frame(v1b)...)) // v1 then v2
	half := frame(v1a)
	f.Add(half[:len(half)/2]) // truncated frame
	fused := append(append([]byte{}, frame(v1a)...), frame(v1b)...)
	fused[len(frame(v1a))-1] = 'X' // newline destroyed: records fuse
	f.Add(fused)
	flip := append([]byte{}, frame(v1b)...)
	flip[len(flip)-4] ^= 0x20 // flipped bit in the payload
	f.Add(append(append([]byte{}, frame(v1a)...), flip...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("OpenCheckpoint rejected a journal it must tolerate: %v", err)
		}
		recovered, err := json.Marshal(ck.Results())
		if err != nil {
			t.Fatal(err)
		}
		want, ambiguous := journalOracle(data)
		if st := ck.Stats(); st.Damaged() == 0 && ambiguous == 0 && ck.Len() != len(want) {
			t.Fatalf("pristine reload kept %d entries, oracle says %d", ck.Len(), len(want))
		}
		for id := range want {
			if _, ok := ck.Lookup(id); !ok {
				t.Fatalf("entry %q lost in reload", id)
			}
		}
		if err := ck.Compact(); err != nil {
			t.Fatalf("compact of recovered journal: %v", err)
		}
		if err := ck.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("reopen of compacted journal: %v", err)
		}
		defer re.Close()
		if st := re.Stats(); st.Damaged() != 0 || st.V1 != 0 || st.Duplicates != 0 {
			t.Fatalf("compacted journal is not clean v2: %+v", st)
		}
		reloaded, err := json.Marshal(re.Results())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(recovered, reloaded) {
			t.Fatalf("recovery is not a fixed point:\nfirst load: %s\nafter compact+reload: %s", recovered, reloaded)
		}
	})
}
