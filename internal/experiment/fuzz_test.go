package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
)

// journalLine renders one checkpoint JSONL line for a synthetic result.
func journalLine(t *testing.T, seed uint64, jain float64, errMsg string) []byte {
	t.Helper()
	res := Result{
		Config: quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, seed, time.Second).Normalize(),
		Jain:   jain,
		Error:  errMsg,
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointLastWriteWins: when a journal carries several lines for the
// same config ID (a config re-run after a crash landed mid-sweep), Lookup
// must return the newest — the reload is a fold, not a first-match scan.
func TestCheckpointLastWriteWins(t *testing.T) {
	var journal bytes.Buffer
	journal.Write(journalLine(t, 1, 0.111, ""))
	journal.WriteByte('\n')
	journal.Write(journalLine(t, 2, 0.5, ""))
	journal.WriteByte('\n')
	journal.Write(journalLine(t, 1, 0.999, "")) // same ID as line 1, newer
	journal.WriteByte('\n')

	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, journal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Len() != 2 {
		t.Fatalf("journal with one duplicate loaded %d entries, want 2", ck.Len())
	}
	key := quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 1, time.Second).Key()
	got, ok := ck.Lookup(key)
	if !ok {
		t.Fatalf("duplicated config %s missing after reload", key)
	}
	if got.Jain != 0.999 {
		t.Fatalf("Lookup returned Jain=%v, want the last write 0.999", got.Jain)
	}
}

// FuzzCheckpointReload feeds arbitrary bytes to the checkpoint reader as a
// journal file — torn lines, duplicate IDs, interleaved garbage, partial
// JSON — and checks OpenCheckpoint against a line-by-line oracle: every
// well-formed non-errored line is loaded with last-write-wins semantics,
// everything else is skipped without failing the open, and the reopened
// journal still accepts appends.
func FuzzCheckpointReload(f *testing.F) {
	// Build realistic seeds out of genuine journal lines. TB-wise f is
	// usable with journalLine via the fuzz target's *testing.T only, so
	// seeds are assembled from raw marshaled results here.
	mk := func(seed uint64, jain float64, errMsg string) []byte {
		res := Result{
			Config: quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, seed, time.Second).Normalize(),
			Jain:   jain,
			Error:  errMsg,
		}
		data, _ := json.Marshal(res)
		return data
	}
	valid := mk(1, 0.9, "")
	dup := mk(1, 0.4, "")
	errored := mk(2, 0, "panic: boom")
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add(valid)
	f.Add(append(append(append([]byte{}, valid...), '\n'), dup...))
	f.Add(append(append(append([]byte{}, valid...), '\n'), errored...))
	f.Add(append(append([]byte{}, valid...), valid[:len(valid)/2]...)) // torn tail
	f.Add([]byte("{\"config\":{}}\nnot json at all\n{\"jain\":"))
	f.Add([]byte("null\n{}\n[]\n42\n\"str\""))
	// The fsync-policy crash shape: a synced prefix of whole lines followed
	// by an unsynced tail torn mid-line (see
	// TestCheckpointSyncedPrefixSurvivesTornTail for the directed version).
	prefix := append(append(append([]byte{}, valid...), '\n'), errored...)
	prefix = append(prefix, '\n')
	f.Add(append(prefix, dup[:len(dup)/3]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := OpenCheckpoint(path)
		if err != nil {
			// Only a scanner-level failure (e.g. a line beyond the 16 MiB
			// buffer) may reject a journal; fuzz inputs stay far below it.
			t.Fatalf("OpenCheckpoint rejected a journal it must tolerate: %v", err)
		}
		defer ck.Close()

		want := map[string][]byte{}
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var res Result
			if json.Unmarshal(line, &res) != nil || res.Errored() {
				continue
			}
			j, _ := json.Marshal(res)
			want[res.Config.Key()] = j
		}
		if ck.Len() != len(want) {
			t.Fatalf("reload kept %d entries, oracle says %d", ck.Len(), len(want))
		}
		for id, wantJSON := range want {
			got, ok := ck.Lookup(id)
			if !ok {
				t.Fatalf("entry %q lost in reload", id)
			}
			gotJSON, _ := json.Marshal(got)
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatalf("entry %q: reload kept\n%s\noracle wants (last write)\n%s", id, gotJSON, wantJSON)
			}
		}

		// The journal must remain appendable after swallowing garbage, and
		// the append must survive a reopen.
		fresh := Result{
			Config: quick100M(Pairing{cca.BBRv1, cca.Reno}, aqm.KindRED, 2, 77, time.Second).Normalize(),
			Jain:   0.777,
		}
		if err := ck.Append(fresh); err != nil {
			t.Fatalf("append after corrupt reload: %v", err)
		}
		ck.Close()
		ck2, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer ck2.Close()
		if got, ok := ck2.Lookup(fresh.Config.Key()); !ok || got.Jain != 0.777 {
			t.Fatalf("appended result lost across reopen (ok=%v)", ok)
		}
	})
}
