package experiment

import (
	"encoding/json"
	"flag"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestGridSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    GridSpec
		wantErr string // substring; "" = valid
	}{
		{"zero value is the full default grid", GridSpec{}, ""},
		{"bandwidth subset", GridSpec{Bandwidths: "100Mbps,1Gbps"}, ""},
		{"queue subset", GridSpec{Queues: "0.5,2,16"}, ""},
		{"aqm subset", GridSpec{AQMs: "fifo,fq_codel"}, ""},
		{"pairing subset", GridSpec{Pairings: "bbr1:cubic,reno:reno"}, ""},
		{"whitespace tolerated", GridSpec{Pairings: " bbr1 : cubic , reno:reno "}, ""},
		{"faults preset", GridSpec{Faults: "flap"}, ""},
		{"everything at once", GridSpec{
			Bandwidths: "1Gbps", Queues: "2", AQMs: "red", Pairings: "cubic:cubic",
			Seeds: 3, Duration: "6s", MaxWall: "1m", Configs: 2, Faults: "flap",
		}, ""},

		{"unknown bandwidth unit", GridSpec{Bandwidths: "100Parsecs"}, "bandwidth"},
		{"negative queue", GridSpec{Queues: "-1"}, "buffer multiplier"},
		{"zero queue", GridSpec{Queues: "0"}, "buffer multiplier"},
		{"unparseable queue", GridSpec{Queues: "deep"}, "buffer multiplier"},
		{"unknown aqm", GridSpec{AQMs: "codel2"}, "aqm"},
		{"unknown cca in pairing", GridSpec{Pairings: "bbr9:cubic"}, "pairing"},
		{"pairing missing colon", GridSpec{Pairings: "bbr1cubic"}, "want cca1:cca2"},
		{"pairing with empty half", GridSpec{Pairings: ":cubic"}, "pairing"},
		{"bad duration", GridSpec{Duration: "six seconds"}, "duration"},
		{"negative duration", GridSpec{Duration: "-2s"}, "duration"},
		{"bad max wall", GridSpec{MaxWall: "soon"}, "duration"},
		{"negative configs", GridSpec{Configs: -1}, "negative"},
		{"bad fault spec", GridSpec{Faults: "ge:pgb=notanumber"}, "faults"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want ok", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted %+v, want error containing %q", c.spec, c.wantErr)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.wantErr)) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestGridSpecExpand(t *testing.T) {
	spec := GridSpec{Bandwidths: "100Mbps", Queues: "2", AQMs: "fifo",
		Pairings: "reno:reno,cubic:cubic", Seeds: 2, Duration: "3s"}
	cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 { // 2 pairings × 2 seeds
		t.Fatalf("expanded %d configs, want 4", len(cfgs))
	}
	for _, c := range cfgs {
		if c.Duration.Seconds() != 3 {
			t.Fatalf("duration override not applied: %v", c.Duration)
		}
		if c.Bottleneck != 100*units.MegabitPerSec {
			t.Fatalf("bandwidth subset not applied: %v", c.Bottleneck)
		}
	}
	// Truncation keeps the canonical grid prefix.
	spec.Configs = 3
	cfgs, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("truncated to %d configs, want 3", len(cfgs))
	}
}

// TestGridSpecKeyCanonicalization: equivalent spellings must share a
// content address; different grids must not.
func TestGridSpecKeyCanonicalization(t *testing.T) {
	key := func(s GridSpec) string {
		t.Helper()
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	a := GridSpec{Bandwidths: "100Mbps, 1Gbps", Queues: "2.0,16", Pairings: "bbr1:cubic"}
	b := GridSpec{Bandwidths: "0.1Gbps,1000Mbps", Queues: "2,16", Pairings: " bbr1 : cubic "}
	if key(a) != key(b) {
		t.Errorf("equivalent spellings got different keys: %s vs %s", key(a), key(b))
	}
	c := GridSpec{Bandwidths: "100Mbps,1Gbps", Queues: "2,16", Pairings: "bbr2:cubic"}
	if key(a) == key(c) {
		t.Error("different pairings share a key")
	}
	d := a
	d.Seeds = 1 // the implicit default made explicit
	if key(a) != key(d) {
		t.Error("seeds=0 and seeds=1 should canonicalize identically")
	}
	e := a
	e.Audit = true // audit is part of the spec (job identity), unlike config identity
	if key(a) == key(e) {
		t.Error("audit toggle should change the spec key")
	}
}

// TestGridSpecFlagsMatchJSON: a spec parsed from the canonical CLI flags
// must equal the same spec arriving as a JSON body — the property that lets
// cmd/sweep -remote and a local run share one parser.
func TestGridSpecFlagsMatchJSON(t *testing.T) {
	var fromFlags GridSpec
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fromFlags.RegisterFlags(fs)
	err := fs.Parse([]string{
		"-bws", "100Mbps", "-queues", "2,16", "-aqms", "red", "-pairings", "bbr1:cubic",
		"-seeds", "2", "-duration", "6s", "-faults", "flap", "-configs", "3",
		"-max-events", "500", "-max-wall", "1m", "-audit",
	})
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON GridSpec
	body := `{"bandwidths":"100Mbps","queues":"2,16","aqms":"red","pairings":"bbr1:cubic",
		"seeds":2,"duration":"6s","faults":"flap","configs":3,"max_events":500,
		"max_wall":"1m","audit":true}`
	if err := json.Unmarshal([]byte(body), &fromJSON); err != nil {
		t.Fatal(err)
	}
	if fromFlags != fromJSON {
		t.Fatalf("flag and JSON parses disagree:\nflags: %+v\njson:  %+v", fromFlags, fromJSON)
	}
	kf, err := fromFlags.Key()
	if err != nil {
		t.Fatal(err)
	}
	kj, err := fromJSON.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kf != kj {
		t.Fatalf("keys disagree: %s vs %s", kf, kj)
	}
}

// TestGridSpecNoteDeterministic: the provenance note must be identical
// however the spec was spelled, since it is embedded in served result sets.
func TestGridSpecNoteDeterministic(t *testing.T) {
	a := GridSpec{Bandwidths: "100Mbps", Queues: "2", Pairings: "reno:reno", Faults: "flap"}
	b := GridSpec{Bandwidths: "0.1Gbps", Queues: "2.0", Pairings: " reno:reno ", Faults: "flap"}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if a.Note() != b.Note() || a.Note() != ca.Note() {
		t.Fatalf("notes differ:\n%s\n%s\n%s", a.Note(), b.Note(), ca.Note())
	}
	if !strings.Contains(a.Note(), "faults=") || !strings.Contains(a.Note(), "spec=") {
		t.Fatalf("note missing provenance fields: %s", a.Note())
	}
}
