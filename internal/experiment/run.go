package experiment

import (
	"fmt"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/cca"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/units"
	"repro/internal/workload"
)

// Result is the outcome of one experiment run (one configuration, one seed).
type Result struct {
	Config Config `json:"config"`

	// SenderBps is each sender's aggregate goodput in bits/sec — the
	// paper's per-sender throughput (Figures 2 and 4).
	SenderBps [2]float64 `json:"sender_bps"`
	// Jain is the per-sender fairness index, n=2 (Figures 3, 5, 6).
	Jain float64 `json:"jain"`
	// FlowJain is Jain's index across every individual flow — finer
	// grained than the paper's per-sender view (and 1.0 only when every
	// single stream got an equal share).
	FlowJain float64 `json:"flow_jain"`
	// Utilization is φ (Figure 7).
	Utilization float64 `json:"utilization"`
	// Retransmits counts retransmitted segments per sender and in total
	// (Figure 8 and eq. 4).
	Retransmits      [2]uint64 `json:"retransmits"`
	TotalRetransmits uint64    `json:"total_retransmits"`

	// Bottleneck queue accounting.
	QueueDropped uint64 `json:"queue_dropped"`
	QueueMarked  uint64 `json:"queue_marked"`
	// Peak bottleneck queue occupancy over the whole run, tracked by an
	// always-on watermark in the port (present whether or not tracing ran).
	PeakQueueBytes   int64 `json:"peak_queue_bytes"`
	PeakQueuePackets int   `json:"peak_queue_packets"`
	// Bottleneck queueing delay (bufferbloat evidence).
	SojournMean time.Duration `json:"sojourn_mean_ns"`
	SojournMax  time.Duration `json:"sojourn_max_ns"`

	// Injected-fault accounting (zero on clean runs): packets destroyed by
	// loss injection and by link flaps at the bottleneck.
	FaultLossDrops uint64 `json:"fault_loss_drops,omitempty"`
	FaultDownDrops uint64 `json:"fault_down_drops,omitempty"`

	// Error is set when the run did not complete cleanly (panic recovered
	// by the sweep runner, or watchdog abort). Errored results carry their
	// Config for identification but no measurements, and are skipped by
	// Summarize and by checkpoint resume.
	Error string `json:"error,omitempty"`

	// Run metadata.
	Flows      int           `json:"flows"`
	SimSeconds float64       `json:"sim_seconds"`
	Events     uint64        `json:"events"`
	Wall       time.Duration `json:"wall_ns"`

	// Trace is the telemetry dump when Config.Trace was set, nil otherwise.
	// It is deliberately excluded from the result JSON — traces have their
	// own NDJSON/binary encodings and their own files — so result bytes are
	// identical with tracing on or off.
	Trace *telemetry.Dump `json:"-"`
}

// Errored reports whether the result records a failed run.
func (r Result) Errored() bool { return r.Error != "" }

// SenderMbps returns a sender's throughput in Mbps.
func (r Result) SenderMbps(i int) float64 { return r.SenderBps[i] / 1e6 }

// Run executes one experiment and returns its result. Each call owns a
// private engine; Run is safe to invoke from many goroutines at once.
func Run(cfg Config) (Result, error) {
	cfg = cfg.Normalize()
	start := time.Now()

	eng := sim.NewEngine(cfg.Seed)
	if cfg.MaxEvents > 0 || cfg.MaxWall > 0 {
		eng.SetBudget(cfg.MaxEvents, cfg.MaxWall)
	}
	// The auditor must be attached before the topology is built: ports and
	// endpoints discover it from the engine at construction time.
	var aud *audit.Auditor
	if cfg.Audit {
		aud = audit.New(cfg.ID())
		eng.SetAuditor(aud)
	}
	// Same constraint for the tracer: flows and ports pick it up from the
	// engine when they are built.
	var trc *telemetry.Tracer
	if cfg.Trace {
		trc = telemetry.New(telemetry.Options{
			RingCap: cfg.TraceRingCap,
			SampleN: cfg.TraceSampleN,
		})
		eng.SetTracer(trc)
	}
	// The trace knobs are observation-only and excluded from Config.Key();
	// scrub them from the recorded config too, so a traced result serializes
	// byte-identically to an untraced one everywhere results land (result
	// files, the sweepd cache, checkpoint journals).
	recCfg := cfg
	recCfg.Trace, recCfg.TraceRingCap, recCfg.TraceSampleN = false, 0, 0
	queueBytes := units.QueueBytes(cfg.Bottleneck, cfg.RTT, cfg.QueueBDP, 8960)
	d, err := topo.NewDumbbell(eng, topo.Config{
		BottleneckBW: cfg.Bottleneck,
		RTT:          cfg.RTT,
		PathLoss:     cfg.PathLoss,
		Faults:       cfg.Faults,
		Queue: aqm.Config{
			Kind:     cfg.AQM,
			Capacity: queueBytes,
			ECN:      cfg.ECN,
			RED:      aqm.REDParams{Seed: cfg.Seed},
			FQCoDel:  aqm.FQCoDelParams{Perturb: cfg.Seed},
		},
	})
	if err != nil {
		return Result{}, fmt.Errorf("experiment %s: %w", cfg.ID(), err)
	}

	ccas := [2]cca.Name{cfg.Pairing.CCA1, cfg.Pairing.CCA2}
	for sender := 0; sender < 2; sender++ {
		for i := 0; i < cfg.FlowsPerSender; i++ {
			cc, err := cca.New(ccas[sender])
			if err != nil {
				return Result{}, fmt.Errorf("experiment %s: %w", cfg.ID(), err)
			}
			f := d.AddFlow(sender, tcp.Config{ECN: cfg.ECN, DelayedAck: cfg.DelayedAck}, cc)
			delay := workload.StartJitter(eng.RNG(), cfg.StartSpread)
			conn := f.Conn
			eng.Schedule(delay, conn.Start)
		}
	}

	eng.RunFor(cfg.Duration)
	if werr := eng.Overrun(); werr != nil {
		return Result{Config: recCfg, Error: werr.Error(), Events: eng.Executed(),
				Wall: time.Since(start)},
			fmt.Errorf("experiment %s: %w", cfg.ID(), werr)
	}
	if aud != nil {
		// Settle the conservation ledger and run every registered end-of-run
		// check. A violation panics with its structured report; the sweep
		// runner's recovery turns that into an errored Result.
		aud.Finish()
	}

	res := Result{
		Config:     recCfg,
		Flows:      2 * cfg.FlowsPerSender,
		SimSeconds: cfg.Duration.Seconds(),
		Events:     eng.Executed(),
		Wall:       time.Since(start),
	}
	var totalBytes int64
	for s := 0; s < 2; s++ {
		g := d.SenderGoodput(s)
		totalBytes += g
		res.SenderBps[s] = float64(g) * 8 / cfg.Duration.Seconds()
		res.Retransmits[s] = d.SenderRetransmits(s)
	}
	res.TotalRetransmits = res.Retransmits[0] + res.Retransmits[1]
	res.Jain = metrics.Jain([]float64{res.SenderBps[0], res.SenderBps[1]})
	perFlow := make([]float64, 0, len(d.Flows()))
	for _, f := range d.Flows() {
		perFlow = append(perFlow, float64(f.Rcv.Goodput()))
	}
	res.FlowJain = metrics.Jain(perFlow)
	res.Utilization = metrics.Utilization(totalBytes, cfg.Duration, cfg.Bottleneck)
	qs := d.Bottleneck.Queue().Stats()
	res.QueueDropped = qs.Dropped
	res.QueueMarked = qs.Marked
	pb, pp := d.Bottleneck.PeakQueue()
	res.PeakQueueBytes = int64(pb)
	res.PeakQueuePackets = pp
	if trc != nil {
		res.Trace = trc.Dump()
	}
	sj := d.Bottleneck.Sojourn()
	res.SojournMean = sj.Mean
	res.SojournMax = sj.Max
	res.FaultLossDrops = d.Bottleneck.LossDrops()
	res.FaultDownDrops = d.Bottleneck.DownDrops()
	return res, nil
}
