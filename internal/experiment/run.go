package experiment

import (
	"fmt"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/cca"
	"repro/internal/flows"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/units"
	"repro/internal/workload"
)

// Result is the outcome of one experiment run (one configuration, one seed).
type Result struct {
	Config Config `json:"config"`

	// SenderBps is each sender's aggregate goodput in bits/sec — the
	// paper's per-sender throughput (Figures 2 and 4).
	SenderBps [2]float64 `json:"sender_bps"`
	// Jain is the per-sender fairness index, n=2 (Figures 3, 5, 6).
	Jain float64 `json:"jain"`
	// FlowJain is Jain's index across every individual flow — finer
	// grained than the paper's per-sender view (and 1.0 only when every
	// single stream got an equal share).
	FlowJain float64 `json:"flow_jain"`
	// Utilization is φ (Figure 7).
	Utilization float64 `json:"utilization"`
	// Retransmits counts retransmitted segments per sender and in total
	// (Figure 8 and eq. 4).
	Retransmits      [2]uint64 `json:"retransmits"`
	TotalRetransmits uint64    `json:"total_retransmits"`

	// Bottleneck queue accounting.
	QueueDropped uint64 `json:"queue_dropped"`
	QueueMarked  uint64 `json:"queue_marked"`
	// Peak bottleneck queue occupancy over the whole run, tracked by an
	// always-on watermark in the port (present whether or not tracing ran).
	PeakQueueBytes   int64 `json:"peak_queue_bytes"`
	PeakQueuePackets int   `json:"peak_queue_packets"`
	// Bottleneck queueing delay (bufferbloat evidence).
	SojournMean time.Duration `json:"sojourn_mean_ns"`
	SojournMax  time.Duration `json:"sojourn_max_ns"`

	// Injected-fault accounting (zero on clean runs): packets destroyed by
	// loss injection and by link flaps at the bottleneck.
	FaultLossDrops uint64 `json:"fault_loss_drops,omitempty"`
	FaultDownDrops uint64 `json:"fault_down_drops,omitempty"`

	// Error is set when the run did not complete cleanly (panic recovered
	// by the sweep runner, or watchdog abort). Errored results carry their
	// Config for identification but no measurements, and are skipped by
	// Summarize and by checkpoint resume.
	Error string `json:"error,omitempty"`

	// Groups and Ports carry per-sender-class and per-link results for
	// non-dumbbell topologies (parking lot, reverse path, cross traffic).
	// Both are omitted for the legacy dumbbell so its result bytes are
	// unchanged; the two-sender fields above always cover classes 0 and 1.
	Groups []GroupResult `json:"groups,omitempty"`
	Ports  []PortResult  `json:"ports,omitempty"`

	// FCT carries the open-loop workload's flow-completion-time outcome
	// when Config.Flows was set: arrival/completion counts and bounded-
	// sketch percentiles per size class. Nil for elephant-only runs, so
	// legacy result bytes are unchanged.
	FCT *FCTResult `json:"fct,omitempty"`

	// Fairness carries the fairness observatory's windowed Jain(t)/share
	// series and detector findings (convergence time, time-to-fair-share,
	// starvation episodes) when Config.Fairness was set; nil otherwise so
	// legacy result bytes are unchanged. The observatory is observation-
	// only: every science field above is byte-identical with it on or off,
	// and its knobs are excluded from Config.Key(), so cached results
	// simulated without it still serve fairness-armed specs (minus this
	// block), exactly like traces.
	Fairness *metrics.FairnessReport `json:"fairness,omitempty"`

	// Run metadata.
	Flows      int           `json:"flows"`
	SimSeconds float64       `json:"sim_seconds"`
	Events     uint64        `json:"events"`
	Wall       time.Duration `json:"wall_ns"`

	// Trace is the telemetry dump when Config.Trace was set, nil otherwise.
	// It is deliberately excluded from the result JSON — traces have their
	// own NDJSON/binary encodings and their own files — so result bytes are
	// identical with tracing on or off.
	Trace *telemetry.Dump `json:"-"`
}

// GroupResult is one sender class's outcome on a graph topology.
type GroupResult struct {
	Name        string  `json:"name"`
	CCA         string  `json:"cca"`
	Flows       int     `json:"flows"`
	Bps         float64 `json:"bps"`
	Retransmits uint64  `json:"retransmits"`
	Background  bool    `json:"background,omitempty"`
}

// PortResult is one reported link's counters: the bottleneck-role links,
// links with explicit queue overrides, and the monitor link. Utilization
// here is wire utilization (TxBytes over the link's resolved rate), unlike
// the goodput-based top-level φ.
type PortResult struct {
	Name             string          `json:"name"`
	RateBps          units.Bandwidth `json:"rate_bps"`
	TxBytes          int64           `json:"tx_bytes"`
	Utilization      float64         `json:"utilization"`
	Dropped          uint64          `json:"dropped"`
	Marked           uint64          `json:"marked"`
	PeakQueueBytes   int64           `json:"peak_queue_bytes"`
	PeakQueuePackets int             `json:"peak_queue_packets"`
	SojournMean      time.Duration   `json:"sojourn_mean_ns"`
	SojournMax       time.Duration   `json:"sojourn_max_ns"`
}

// Errored reports whether the result records a failed run.
func (r Result) Errored() bool { return r.Error != "" }

// SenderMbps returns a sender's throughput in Mbps.
func (r Result) SenderMbps(i int) float64 { return r.SenderBps[i] / 1e6 }

// Run executes one experiment and returns its result. Each call owns a
// private engine; Run is safe to invoke from many goroutines at once.
func Run(cfg Config) (Result, error) {
	cfg = cfg.Normalize()
	start := time.Now()

	eng := sim.NewEngine(cfg.Seed)
	if cfg.MaxEvents > 0 || cfg.MaxWall > 0 {
		eng.SetBudget(cfg.MaxEvents, cfg.MaxWall)
	}
	// The auditor must be attached before the topology is built: ports and
	// endpoints discover it from the engine at construction time.
	var aud *audit.Auditor
	if cfg.Audit {
		aud = audit.New(cfg.ID())
		eng.SetAuditor(aud)
	}
	// Same constraint for the tracer: flows and ports pick it up from the
	// engine when they are built.
	var trc *telemetry.Tracer
	if cfg.Trace {
		trc = telemetry.New(telemetry.Options{
			RingCap: cfg.TraceRingCap,
			SampleN: cfg.TraceSampleN,
		})
		eng.SetTracer(trc)
	}
	// The trace knobs are observation-only and excluded from Config.Key();
	// scrub them from the recorded config too, so a traced result serializes
	// byte-identically to an untraced one everywhere results land (result
	// files, the sweepd cache, checkpoint journals).
	recCfg := cfg
	recCfg.Trace, recCfg.TraceRingCap, recCfg.TraceSampleN = false, 0, 0
	recCfg.Fairness, recCfg.FairnessWindow = false, 0
	net, err := BuildNet(eng, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("experiment %s: %w", cfg.ID(), err)
	}

	// RNG discipline: the long-running flows draw their start jitter from
	// the engine RNG in construction order (exactly as before open-loop
	// workloads existed), while every open-loop arrival process below owns
	// a stream derived from (Seed, population index). Neither side can
	// perturb the other, which is what keeps both the legacy elephant
	// bytes and the arrival schedule reproducible. A SoloFCT baseline
	// attaches no long-running flows at all.
	if !cfg.SoloFCT {
		for ci := 0; ci < net.NumClasses(); ci++ {
			name := ClassCCA(cfg, net.ClassSpec(ci), ci)
			for i := 0; i < ClassFlowCount(cfg, net.ClassSpec(ci)); i++ {
				cc, err := cca.New(name)
				if err != nil {
					return Result{}, fmt.Errorf("experiment %s: %w", cfg.ID(), err)
				}
				f := net.AddFlow(ci, tcp.Config{ECN: cfg.ECN, DelayedAck: cfg.DelayedAck}, cc)
				delay := workload.StartJitter(eng.RNG(), cfg.StartSpread)
				conn := f.Conn
				eng.Schedule(delay, conn.Start)
			}
		}
	}
	var fr *flows.Runner
	if cfg.Flows != nil {
		fr, err = flows.NewRunner(eng, net, cfg.Flows, flows.Options{
			Seed:    cfg.Seed,
			Horizon: cfg.Duration,
			TCP:     tcp.Config{ECN: cfg.ECN, DelayedAck: cfg.DelayedAck},
		})
		if err != nil {
			return Result{}, fmt.Errorf("experiment %s: %w", cfg.ID(), err)
		}
		fr.Start()
	}
	fsam := AttachFairness(eng, net, cfg)

	eng.RunFor(cfg.Duration)
	if werr := eng.Overrun(); werr != nil {
		return Result{Config: recCfg, Error: werr.Error(), Events: eng.Executed(),
				Wall: time.Since(start)},
			fmt.Errorf("experiment %s: %w", cfg.ID(), werr)
	}
	if aud != nil {
		// Settle the conservation ledger and run every registered end-of-run
		// check. A violation panics with its structured report; the sweep
		// runner's recovery turns that into an errored Result.
		aud.Finish()
	}

	res := Result{
		Config:     recCfg,
		Flows:      len(net.Flows()),
		SimSeconds: cfg.Duration.Seconds(),
		Events:     eng.Executed(),
		Wall:       time.Since(start),
	}
	for s := 0; s < 2 && s < net.NumClasses(); s++ {
		g := net.ClassGoodput(s)
		res.SenderBps[s] = float64(g) * 8 / cfg.Duration.Seconds()
		res.Retransmits[s] = net.ClassRetransmits(s)
	}
	res.TotalRetransmits = net.TotalRetransmits()
	res.Jain = metrics.Jain([]float64{res.SenderBps[0], res.SenderBps[1]})
	perFlow := make([]float64, 0, len(net.Flows()))
	for _, f := range net.Flows() {
		perFlow = append(perFlow, float64(f.Rcv.Goodput()))
	}
	res.FlowJain = metrics.Jain(perFlow)
	// φ aggregates goodput over the classes crossing the monitor link, over
	// that link's rate — for the dumbbell, exactly the two senders over the
	// bottleneck.
	var totalBytes int64
	for _, ci := range net.MonitorClasses() {
		totalBytes += net.ClassGoodput(ci)
	}
	res.Utilization = metrics.Utilization(totalBytes, cfg.Duration, cfg.Bottleneck)
	mon := net.Monitor()
	qs := mon.Queue().Stats()
	res.QueueDropped = qs.Dropped
	res.QueueMarked = qs.Marked
	pb, pp := mon.PeakQueue()
	res.PeakQueueBytes = int64(pb)
	res.PeakQueuePackets = pp
	if trc != nil {
		res.Trace = trc.Dump()
	}
	sj := mon.Sojourn()
	res.SojournMean = sj.Mean
	res.SojournMax = sj.Max
	res.FaultLossDrops = mon.LossDrops()
	res.FaultDownDrops = mon.DownDrops()
	if cfg.Topology != nil {
		res.Groups = GroupResults(net, cfg)
		res.Ports = PortResults(net, cfg.Duration)
	}
	if fr != nil {
		res.FCT = FCTFromRunner(fr)
	}
	if fsam != nil {
		res.Fairness = fsam.Report(metrics.DefaultDetector())
		// The sampler's timer ticks executed on the engine; subtract them
		// so the event-count fingerprint matches an observatory-off run.
		res.Events -= fsam.Ticks()
	}
	return res, nil
}

// AttachFairness arms the fairness observatory on a built network when the
// configuration asks for it, tracking every long-running flow (open-loop
// ephemeral flows are churn, not elephants — they are not in net.Flows()
// and stay out of the fairness series). Returns nil when Config.Fairness
// is off: the disabled path installs no timer and no per-packet work at
// all, so it is provably free, like tracing. Call after all flows attach
// and before the engine runs.
func AttachFairness(eng *sim.Engine, net *topo.Network, cfg Config) *metrics.FairnessSampler {
	if !cfg.Fairness {
		return nil
	}
	fsam := metrics.NewFairnessSampler(eng, cfg.FairnessWindow, cfg.Duration, cfg.Bottleneck)
	for _, f := range net.Flows() {
		conn, rcv := f.Conn, f.Rcv
		fsam.TrackFlow(uint32(f.ID), f.CCName, f.Sender, rcv.Goodput,
			func() uint64 { return conn.Stats().Retransmits })
	}
	fsam.Start()
	return fsam
}

// BuildNet instantiates the config's topology (Config.Topology, or the
// paper dumbbell when nil) with the grid parameters as role defaults.
func BuildNet(eng *sim.Engine, cfg Config) (*topo.Network, error) {
	spec := topo.DumbbellSpec()
	if cfg.Topology != nil {
		spec = *cfg.Topology
	}
	return topo.Build(eng, spec, topo.Params{
		Bottleneck: cfg.Bottleneck,
		RTT:        cfg.RTT,
		PathLoss:   cfg.PathLoss,
		Faults:     cfg.Faults,
		Queue: aqm.Config{
			Kind:     cfg.AQM,
			Capacity: units.QueueBytes(cfg.Bottleneck, cfg.RTT, cfg.QueueBDP, 8960),
			ECN:      cfg.ECN,
			RED:      aqm.REDParams{Seed: cfg.Seed},
			FQCoDel:  aqm.FQCoDelParams{Perturb: cfg.Seed},
		},
	})
}

// ClassCCA resolves the congestion controller for sender class ci: the
// class's pinned CCA when declared, otherwise the grid pairing by index
// (class 0 runs CCA1, every other class CCA2).
func ClassCCA(cfg Config, cls topo.SenderSpec, ci int) cca.Name {
	if cls.CCA != "" {
		return cca.Name(cls.CCA)
	}
	if ci == 0 {
		return cfg.Pairing.CCA1
	}
	return cfg.Pairing.CCA2
}

// ClassFlowCount resolves a class's flow count (pinned, else FlowsPerSender).
func ClassFlowCount(cfg Config, cls topo.SenderSpec) int {
	if cls.Flows > 0 {
		return cls.Flows
	}
	return cfg.FlowsPerSender
}

// GroupResults assembles the per-class results for a built network.
func GroupResults(net *topo.Network, cfg Config) []GroupResult {
	out := make([]GroupResult, 0, net.NumClasses())
	for ci := 0; ci < net.NumClasses(); ci++ {
		cls := net.ClassSpec(ci)
		out = append(out, GroupResult{
			Name:        cls.Name,
			CCA:         string(ClassCCA(cfg, cls, ci)),
			Flows:       len(net.ClassFlows(ci)),
			Bps:         float64(net.ClassGoodput(ci)) * 8 / cfg.Duration.Seconds(),
			Retransmits: net.ClassRetransmits(ci),
			Background:  cls.Background,
		})
	}
	return out
}

// PortResults assembles the per-link results for the network's reported
// ports (bottleneck-role, explicitly queued, and monitor links).
func PortResults(net *topo.Network, dur time.Duration) []PortResult {
	idxs := net.ReportPorts()
	out := make([]PortResult, 0, len(idxs))
	for _, i := range idxs {
		po := net.Ports()[i]
		qs := po.Queue().Stats()
		pb, pp := po.PeakQueue()
		sj := po.Sojourn()
		rate := net.PortRate(i)
		out = append(out, PortResult{
			Name:             po.Name,
			RateBps:          rate,
			TxBytes:          int64(po.TxBytes()),
			Utilization:      float64(po.TxBytes()) * 8 / dur.Seconds() / float64(rate),
			Dropped:          qs.Dropped,
			Marked:           qs.Marked,
			PeakQueueBytes:   int64(pb),
			PeakQueuePackets: pp,
			SojournMean:      sj.Mean,
			SojournMax:       sj.Max,
		})
	}
	return out
}
