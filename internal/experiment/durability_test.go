package experiment

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
)

func durabilityResult(seed uint64, jain float64) Result {
	return Result{
		Config: quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, seed, time.Second).Normalize(),
		Jain:   jain,
		Flows:  2,
	}
}

// TestCheckpointSyncBatchPolicy: Append must fsync once the unsynced batch
// reaches the policy's size, and Close must sync whatever is still pending —
// so a cleanly closed journal is always durable and a crash loses at most
// one batch. (Regression: Append never fsynced at all, so a power loss
// could take a whole page cache of "checkpointed" results with it.)
func TestCheckpointSyncBatchPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetSyncPolicy(3, 0) // batch of 3, no time trigger
	for i := 0; i < 7; i++ {
		if err := ck.Append(durabilityResult(uint64(i+1), 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ck.Syncs(); got != 2 { // after appends 3 and 6; 7th is pending
		t.Fatalf("7 appends at batch 3 issued %d syncs, want 2", got)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ck.Syncs(); got != 3 {
		t.Fatalf("Close left the pending batch unsynced: %d total syncs, want 3", got)
	}

	// every <= 0 collapses to sync-per-append.
	path2 := filepath.Join(t.TempDir(), "sweep2.ckpt")
	ck2, err := OpenCheckpoint(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	ck2.SetSyncPolicy(0, 0)
	for i := 0; i < 3; i++ {
		if err := ck2.Append(durabilityResult(uint64(i+1), 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ck2.Syncs(); got != 3 {
		t.Fatalf("sync-per-append policy issued %d syncs for 3 appends, want 3", got)
	}
}

// TestCheckpointSyncIntervalPolicy: with a huge batch size, the time trigger
// alone must still bound how long an appended result stays volatile.
func TestCheckpointSyncIntervalPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	ck.SetSyncPolicy(1<<20, 20*time.Millisecond)
	if err := ck.Append(durabilityResult(1, 0.9)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := ck.Append(durabilityResult(2, 0.9)); err != nil {
		t.Fatal(err)
	}
	if got := ck.Syncs(); got < 1 {
		t.Fatalf("interval trigger never fired: %d syncs", got)
	}
}

// TestCheckpointSyncedPrefixSurvivesTornTail: the crash model the sync
// policy defends against — everything up to the last fsync is on disk, the
// unsynced tail may be torn mid-line. Reopening such a journal must recover
// the entire synced prefix, skip the torn fragment, and stay appendable;
// the healed journal then closes with the tail terminated. This is the
// directed version of FuzzCheckpointReload's torn-tail shapes.
func TestCheckpointSyncedPrefixSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetSyncPolicy(0, 0) // sync every append: all 4 results are the durable prefix
	for i := 0; i < 4; i++ {
		if err := ck.Append(durabilityResult(uint64(i+1), 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-append: a torn, unterminated fragment lands after the synced
	// prefix and the process dies without Close (write through the raw
	// handle, bypassing Append's policy).
	if _, err := ck.f.Write([]byte(`{"config":{"pairing":["cubic",`)); err != nil {
		t.Fatal(err)
	}
	ck.f.Close() // crash: no Close(), no final sync

	re, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 4 {
		t.Fatalf("torn tail cost the synced prefix: recovered %d results, want 4", re.Len())
	}
	for i := 0; i < 4; i++ {
		key := quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, uint64(i+1), time.Second).Key()
		if _, ok := re.Lookup(key); !ok {
			t.Fatalf("synced result %d lost to the torn tail", i+1)
		}
	}
	// The healed journal keeps working: append, close, reopen, all present.
	if err := re.Append(durabilityResult(9, 0.5)); err != nil {
		t.Fatalf("append after torn-tail heal: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 5 {
		t.Fatalf("post-heal append lost across reopen: %d results, want 5", re2.Len())
	}
	// The raw file must carry no unterminated fragment anymore.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("healed journal still ends without a newline")
	}
}
