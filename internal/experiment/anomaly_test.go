package experiment

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/units"
)

// TestPathLossPlumbing: injected loss must actually reach the forward path
// and depress a loss-based CCA's throughput.
func TestPathLossPlumbing(t *testing.T) {
	base := Config{
		Pairing: Pairing{cca.Reno, cca.Reno}, AQM: aqm.KindFIFO, QueueBDP: 2,
		Bottleneck: 100 * units.MegabitPerSec, Duration: 20 * time.Second, Seed: 1,
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	lossy := base
	lossy.PathLoss = 0.01
	dirty, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Utilization > 0.6*clean.Utilization {
		t.Fatalf("1%% path loss barely hurt Reno: %.3f vs %.3f",
			dirty.Utilization, clean.Utilization)
	}
	if dirty.TotalRetransmits == 0 {
		t.Fatal("no retransmissions despite injected loss")
	}
}

// TestAnomalyShapeBBRvLossBased (paper future work, §6): under random
// non-congestive loss, BBRv1 retains far more throughput than Reno.
func TestAnomalyShapeBBRvLossBased(t *testing.T) {
	run := func(name cca.Name) float64 {
		res, err := Run(Config{
			Pairing: Pairing{name, name}, AQM: aqm.KindFIFO, QueueBDP: 2,
			Bottleneck: 100 * units.MegabitPerSec, Duration: 20 * time.Second,
			Seed: 1, PathLoss: 0.005,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Utilization
	}
	bbr := run(cca.BBRv1)
	reno := run(cca.Reno)
	if bbr < 2*reno {
		t.Fatalf("BBRv1 (φ=%.3f) should dominate Reno (φ=%.3f) under 0.5%% random loss",
			bbr, reno)
	}
	if bbr < 0.7 {
		t.Fatalf("BBRv1 should stay near full rate under random loss: φ=%.3f", bbr)
	}
}
