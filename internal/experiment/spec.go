package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/flows"
	"repro/internal/topo"
	"repro/internal/units"
)

// GridSpec is the wire- and flag-level description of a sweep: which subset
// of the Table-1 grid to run and under which overrides. It is the single
// parser shared by cmd/sweep's flags and the sweepd HTTP API, so a spec
// submitted over the wire expands to exactly the configurations the CLI
// would run. All list fields are comma-separated strings (the flag syntax);
// empty fields select the paper defaults. The zero value is the full scaled
// Table-1 grid with one seed.
type GridSpec struct {
	// Bandwidths subsets the bottleneck bandwidths, e.g. "100Mbps,1Gbps".
	Bandwidths string `json:"bandwidths,omitempty"`
	// Queues subsets the buffer multipliers in BDP units, e.g. "0.5,2,16".
	Queues string `json:"queues,omitempty"`
	// AQMs subsets the queue disciplines, e.g. "fifo,fq_codel".
	AQMs string `json:"aqms,omitempty"`
	// Pairings subsets the CCA pairings, e.g. "bbr1:cubic,reno:reno".
	Pairings string `json:"pairings,omitempty"`
	// Seeds is the replica count: seeds 1..N run per grid cell (min 1).
	Seeds int `json:"seeds,omitempty"`
	// Duration overrides the simulated duration of every run, as a Go
	// duration string like "6s" (empty = bandwidth-scaled default).
	Duration string `json:"duration,omitempty"`
	// PaperScale selects full 200 s runs and uncapped flow counts.
	PaperScale bool `json:"paper_scale,omitempty"`
	// Faults is a fault-profile spec: preset list, inline JSON, or @file
	// (the faults.Parse syntax).
	Faults string `json:"faults,omitempty"`
	// Topo selects the network graph for every run: a preset name
	// ("dumbbell", "parking-lot-3", "reverse-path:factor=0.005",
	// "cross-traffic"), inline JSON, or @file (the topo.Parse syntax).
	// Empty (and the canonical dumbbell) is the legacy dumbbell.
	Topo string `json:"topo,omitempty"`
	// Flows is an open-loop workload spec: preset list ("mice", "mixed",
	// "mice:arrival=100ms+elephants:cca=bbr1"), inline JSON, or @file
	// (the flows.Parse syntax). When set, the grid grows one SoloFCT
	// baseline per distinct (AQM, queue, bandwidth, seed) condition —
	// the denominators of the harm-to-FCT matrix.
	Flows string `json:"flows,omitempty"`
	// Configs truncates the expanded grid to its first N configurations
	// (0 = all; for smoke tests).
	Configs int `json:"configs,omitempty"`
	// MaxEvents is the per-run event-budget watchdog (0 = unlimited).
	MaxEvents uint64 `json:"max_events,omitempty"`
	// MaxWall is the per-run wall-clock watchdog as a Go duration string
	// (empty = unlimited). Machine-dependent; not part of result science.
	MaxWall string `json:"max_wall,omitempty"`
	// Audit arms the runtime invariant auditor on every run.
	Audit bool `json:"audit,omitempty"`
	// Fairness arms the fairness observatory on every run: windowed
	// Jain/share series plus convergence and starvation detectors, attached
	// to each result as its fairness block. Observation-only — excluded
	// from config identity, so armed and plain runs share cache entries.
	Fairness bool `json:"fairness,omitempty"`
}

// RegisterFlags binds the spec's fields to the canonical sweep flag names
// on fs. Both cmd/sweep and any future client register through here, so
// flag syntax and the HTTP spec body can never drift apart.
func (s *GridSpec) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.Bandwidths, "bws", s.Bandwidths, "comma-separated bandwidth subset (default: all five paper BWs)")
	fs.StringVar(&s.Queues, "queues", s.Queues, "comma-separated buffer multipliers (default: 0.5,1,2,4,8,16)")
	fs.StringVar(&s.AQMs, "aqms", s.AQMs, "comma-separated AQM subset (default: fifo,red,fq_codel)")
	fs.StringVar(&s.Pairings, "pairings", s.Pairings, "comma-separated pairing subset like bbr1:cubic,reno:reno (default: all nine)")
	fs.IntVar(&s.Seeds, "seeds", s.Seeds, "replica seeds per configuration (paper used 5)")
	fs.StringVar(&s.Duration, "duration", s.Duration, "override simulated duration for every run (e.g. 6s)")
	fs.BoolVar(&s.PaperScale, "paper-scale", s.PaperScale, "full 200s runs and uncapped flow counts")
	fs.StringVar(&s.Faults, "faults", s.Faults, "fault profile for every run: preset list (e.g. flap or ge:pgb=0.01+flap:at=10s), inline JSON, or @file.json")
	fs.StringVar(&s.Topo, "topo", s.Topo, "network topology for every run: preset (dumbbell, parking-lot-3, reverse-path[:factor=0.005], cross-traffic[:cca=bbr1]), inline JSON, or @file.json")
	fs.StringVar(&s.Flows, "flows", s.Flows, "open-loop background workload for every run: preset list (mice, elephants, mixed, e.g. mice:arrival=100ms,p95=1MB), inline JSON, or @file.json; adds one solo FCT baseline per condition")
	fs.IntVar(&s.Configs, "configs", s.Configs, "truncate the grid to its first N configurations (0 = all; for smoke tests)")
	fs.Uint64Var(&s.MaxEvents, "max-events", s.MaxEvents, "per-run watchdog: abort a configuration after this many simulator events (0 = unlimited)")
	fs.StringVar(&s.MaxWall, "max-wall", s.MaxWall, "per-run watchdog: abort a configuration after this much wall time (empty = unlimited)")
	fs.BoolVar(&s.Audit, "audit", s.Audit, "enable the runtime invariant auditor on every run; violations become errored results")
	fs.BoolVar(&s.Fairness, "fairness", s.Fairness, "arm the fairness observatory on every run: windowed Jain(t)/share series, convergence time, starvation episodes")
}

// parsed is the typed expansion of a GridSpec's string fields.
type parsed struct {
	opts     GridOptions
	duration time.Duration
	maxWall  time.Duration
	profile  *faults.Profile
	topology *topo.Spec
	flowSpec *flows.Spec
}

func (s GridSpec) parse() (parsed, error) {
	var p parsed
	seeds := s.Seeds
	if seeds < 1 {
		seeds = 1
	}
	seedList := make([]uint64, seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	p.opts = PaperGrid(seedList...)
	p.opts.PaperScale = s.PaperScale

	if s.Bandwidths != "" {
		p.opts.Bandwidths = nil
		for _, f := range splitList(s.Bandwidths) {
			bw, err := units.ParseBandwidth(f)
			if err != nil {
				return p, fmt.Errorf("experiment: spec bandwidths: %w", err)
			}
			p.opts.Bandwidths = append(p.opts.Bandwidths, bw)
		}
	}
	if s.Queues != "" {
		p.opts.QueueMults = nil
		for _, f := range splitList(s.Queues) {
			q, err := strconv.ParseFloat(f, 64)
			if err != nil || q <= 0 {
				return p, fmt.Errorf("experiment: spec queues: bad buffer multiplier %q", f)
			}
			p.opts.QueueMults = append(p.opts.QueueMults, q)
		}
	}
	if s.AQMs != "" {
		p.opts.AQMs = nil
		for _, f := range splitList(s.AQMs) {
			k, err := aqm.ParseKind(f)
			if err != nil {
				return p, fmt.Errorf("experiment: spec aqms: %w", err)
			}
			p.opts.AQMs = append(p.opts.AQMs, k)
		}
	}
	if s.Pairings != "" {
		p.opts.Pairings = nil
		for _, f := range splitList(s.Pairings) {
			parts := strings.SplitN(f, ":", 2)
			if len(parts) != 2 {
				return p, fmt.Errorf("experiment: spec pairings: bad pairing %q (want cca1:cca2)", f)
			}
			c1, err := cca.Parse(strings.TrimSpace(parts[0]))
			if err != nil {
				return p, fmt.Errorf("experiment: spec pairings: %w", err)
			}
			c2, err := cca.Parse(strings.TrimSpace(parts[1]))
			if err != nil {
				return p, fmt.Errorf("experiment: spec pairings: %w", err)
			}
			p.opts.Pairings = append(p.opts.Pairings, Pairing{CCA1: c1, CCA2: c2})
		}
	}
	if s.Duration != "" {
		d, err := time.ParseDuration(s.Duration)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("experiment: spec duration: bad duration %q", s.Duration)
		}
		p.duration = d
	}
	if s.MaxWall != "" {
		d, err := time.ParseDuration(s.MaxWall)
		if err != nil || d < 0 {
			return p, fmt.Errorf("experiment: spec max-wall: bad duration %q", s.MaxWall)
		}
		p.maxWall = d
	}
	if s.Configs < 0 {
		return p, fmt.Errorf("experiment: spec configs: negative truncation %d", s.Configs)
	}
	profile, err := faults.Parse(s.Faults)
	if err != nil {
		return p, fmt.Errorf("experiment: spec faults: %w", err)
	}
	p.profile = profile
	topology, err := topo.Parse(s.Topo)
	if err != nil {
		return p, fmt.Errorf("experiment: spec topo: %w", err)
	}
	p.topology = topology
	flowSpec, err := flows.Parse(s.Flows)
	if err != nil {
		return p, fmt.Errorf("experiment: spec flows: %w", err)
	}
	p.flowSpec = flowSpec
	return p, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Validate checks every field without expanding the grid.
func (s GridSpec) Validate() error {
	_, err := s.parse()
	return err
}

// Expand validates the spec and returns its configurations in canonical
// grid order — the same order cmd/sweep runs and serializes them.
func (s GridSpec) Expand() ([]Config, error) {
	p, err := s.parse()
	if err != nil {
		return nil, err
	}
	cfgs := Grid(p.opts)
	if s.Configs > 0 && s.Configs < len(cfgs) {
		cfgs = cfgs[:s.Configs]
	}
	for i := range cfgs {
		if p.duration > 0 {
			cfgs[i].Duration = p.duration
		}
		cfgs[i].Faults = p.profile
		cfgs[i].Topology = p.topology
		cfgs[i].Flows = p.flowSpec
		cfgs[i].MaxEvents = s.MaxEvents
		cfgs[i].MaxWall = p.maxWall
		cfgs[i].Audit = s.Audit
		cfgs[i].Fairness = s.Fairness
	}
	if p.flowSpec != nil {
		// One solo FCT baseline per distinct non-pairing condition in the
		// (possibly truncated) grid, appended after it in first-appearance
		// order. Normalize pins a solo run's pairing, so baselines for
		// different pairings of the same condition collapse to one Key —
		// the dedup below keeps them from even appearing twice.
		seen := map[string]bool{}
		var solos []Config
		for _, c := range cfgs {
			c.SoloFCT = true
			c = c.Normalize()
			k := c.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			solos = append(solos, c)
		}
		cfgs = append(cfgs, solos...)
	}
	return cfgs, nil
}

// Canonical returns the spec with every list normalized (whitespace
// trimmed, bandwidths and durations re-rendered in canonical form) so that
// equivalent spellings — "100Mbps, 1Gbps" vs "0.1Gbps,1000Mbps" — produce
// the same canonical spec and therefore the same content-address Key.
func (s GridSpec) Canonical() (GridSpec, error) {
	p, err := s.parse()
	if err != nil {
		return s, err
	}
	if s.Bandwidths != "" {
		var bws []string
		for _, bw := range p.opts.Bandwidths {
			bws = append(bws, bw.String())
		}
		s.Bandwidths = strings.Join(bws, ",")
	}
	if s.Queues != "" {
		var qs []string
		for _, q := range p.opts.QueueMults {
			qs = append(qs, strconv.FormatFloat(q, 'g', -1, 64))
		}
		s.Queues = strings.Join(qs, ",")
	}
	if s.AQMs != "" {
		var as []string
		for _, a := range p.opts.AQMs {
			as = append(as, string(a))
		}
		s.AQMs = strings.Join(as, ",")
	}
	if s.Pairings != "" {
		var ps []string
		for _, pr := range p.opts.Pairings {
			ps = append(ps, string(pr.CCA1)+":"+string(pr.CCA2))
		}
		s.Pairings = strings.Join(ps, ",")
	}
	if s.Seeds < 1 {
		s.Seeds = 1
	}
	if s.Duration != "" {
		s.Duration = p.duration.String()
	}
	if s.MaxWall != "" {
		s.MaxWall = p.maxWall.String()
	}
	if s.Faults != "" {
		// Normalize any fault spelling (preset, JSON, @file) to the
		// profile's compact ID-free JSON? The profile ID is stable and
		// short; use the canonical JSON so @file specs hash by content,
		// not by path.
		if p.profile != nil && !p.profile.Empty() {
			data, err := json.Marshal(p.profile.Normalize())
			if err != nil {
				return s, fmt.Errorf("experiment: spec faults: %w", err)
			}
			s.Faults = string(data)
		} else {
			s.Faults = ""
		}
	}
	if s.Topo != "" {
		// Same rule for topologies: any spelling (preset, JSON, @file)
		// canonicalizes to the spec's content JSON, and the canonical
		// dumbbell canonicalizes away entirely — so "-topo dumbbell"
		// submissions share keys, caches and journals with legacy sweeps.
		if p.topology != nil && !topo.IsDumbbell(p.topology) {
			s.Topo = string(p.topology.Canonical())
		} else {
			s.Topo = ""
		}
	}
	if s.Flows != "" {
		// Same rule for workloads: presets, inline JSON and @file specs all
		// canonicalize to the normalized spec's content JSON, so equivalent
		// spellings coalesce onto one sweepd job and one cache entry.
		if p.flowSpec != nil && !p.flowSpec.Empty() {
			data, err := json.Marshal(p.flowSpec.Normalize())
			if err != nil {
				return s, fmt.Errorf("experiment: spec flows: %w", err)
			}
			s.Flows = string(data)
		} else {
			s.Flows = ""
		}
	}
	return s, nil
}

// Key returns the spec's content address: a hex digest of the canonical
// JSON encoding. Two specs that expand to the same grid under the same
// overrides share a Key; sweepd coalesces concurrent submissions by it.
func (s GridSpec) Key() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("experiment: spec key: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:16], nil
}

// Note renders the deterministic provenance string recorded in a
// ResultSet. cmd/sweep and sweepd both use it verbatim, which is what
// makes a served result set byte-identical to a CLI sweep of the same
// spec.
func (s GridSpec) Note() string {
	seeds := s.Seeds
	if seeds < 1 {
		seeds = 1
	}
	n := 0
	if cfgs, err := s.Expand(); err == nil {
		n = len(cfgs)
	}
	note := fmt.Sprintf("grid sweep: %d configs, seeds=%d, paperScale=%v", n, seeds, s.PaperScale)
	if profile, err := faults.Parse(s.Faults); err == nil {
		if id := profile.ID(); id != "" {
			note += ", faults=" + id
		}
	}
	if topology, err := topo.Parse(s.Topo); err == nil {
		if topology != nil && !topo.IsDumbbell(topology) {
			note += ", topo=" + topology.ID()
		}
	}
	if flowSpec, err := flows.Parse(s.Flows); err == nil {
		if id := flowSpec.ID(); id != "" {
			note += ", flows=" + id
		}
	}
	if key, err := s.Key(); err == nil {
		note += ", spec=" + key
	}
	return note
}
