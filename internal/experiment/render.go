package experiment

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/aqm"
	"repro/internal/units"
)

// RenderThroughputFigure renders the Figure 2/4 family: per-sender
// throughput against buffer size, one block per bottleneck bandwidth, for a
// given pairing and AQM. (Figure 2 is kind=fifo, Figure 4 is kind=red.)
func (s *Summary) RenderThroughputFigure(p Pairing, kind aqm.Kind) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-sender throughput, %s, AQM=%s\n", p, kind)
	for _, bw := range s.Bandwidths() {
		fmt.Fprintf(&b, "\n  bottleneck %v:\n", bw)
		fmt.Fprintf(&b, "    %-10s %14s %14s %8s\n", "buffer", "sender1(Mbps)", "sender2(Mbps)", "J")
		for _, q := range s.QueueMults() {
			c := s.Lookup(p, kind, q, bw)
			if c == nil {
				continue
			}
			fmt.Fprintf(&b, "    %-10s %14.1f %14.1f %8.3f\n",
				fmt.Sprintf("%gxBDP", q), c.SenderBps[0]/1e6, c.SenderBps[1]/1e6, c.Jain)
		}
	}
	return b.String()
}

// RenderJainFigure renders the Figure 3/5/6 family: Jain's index per
// pairing × bandwidth at one buffer size, split into inter- and intra-CCA
// panels, for one AQM.
func (s *Summary) RenderJainFigure(kind aqm.Kind, queueBDP float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Jain's fairness index, AQM=%s, buffer=%gxBDP\n", kind, queueBDP)
	render := func(title string, pairings []Pairing) {
		fmt.Fprintf(&b, "\n  %s:\n    %-16s", title, "pairing")
		for _, bw := range s.Bandwidths() {
			fmt.Fprintf(&b, " %9s", bw)
		}
		b.WriteString("\n")
		for _, p := range pairings {
			found := false
			row := fmt.Sprintf("    %-16s", p)
			for _, bw := range s.Bandwidths() {
				c := s.Lookup(p, kind, queueBDP, bw)
				if c == nil {
					row += fmt.Sprintf(" %9s", "-")
					continue
				}
				found = true
				row += fmt.Sprintf(" %9.3f", c.Jain)
			}
			if found {
				b.WriteString(row + "\n")
			}
		}
	}
	render("inter-CCA", InterPairings())
	render("intra-CCA", IntraPairings())
	return b.String()
}

// RenderUtilizationFigure renders Figure 7: overall link utilization φ for
// the intra-CCA experiments, per AQM at one buffer size.
func (s *Summary) RenderUtilizationFigure(kind aqm.Kind, queueBDP float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Link utilization (intra-CCA), AQM=%s, buffer=%gxBDP\n", kind, queueBDP)
	fmt.Fprintf(&b, "    %-16s", "cca")
	for _, bw := range s.Bandwidths() {
		fmt.Fprintf(&b, " %9s", bw)
	}
	b.WriteString("\n")
	for _, p := range IntraPairings() {
		found := false
		row := fmt.Sprintf("    %-16s", p.CCA1)
		for _, bw := range s.Bandwidths() {
			c := s.Lookup(p, kind, queueBDP, bw)
			if c == nil {
				row += fmt.Sprintf(" %9s", "-")
				continue
			}
			found = true
			row += fmt.Sprintf(" %9.3f", c.Utilization)
		}
		if found {
			b.WriteString(row + "\n")
		}
	}
	return b.String()
}

// RenderRetransFigure renders Figure 8: retransmission counts for the
// intra-CCA experiments, per AQM at one buffer size.
func (s *Summary) RenderRetransFigure(kind aqm.Kind, queueBDP float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Retransmissions (intra-CCA), AQM=%s, buffer=%gxBDP\n", kind, queueBDP)
	fmt.Fprintf(&b, "    %-16s", "cca")
	for _, bw := range s.Bandwidths() {
		fmt.Fprintf(&b, " %12s", bw)
	}
	b.WriteString("\n")
	for _, p := range IntraPairings() {
		found := false
		row := fmt.Sprintf("    %-16s", p.CCA1)
		for _, bw := range s.Bandwidths() {
			c := s.Lookup(p, kind, queueBDP, bw)
			if c == nil {
				row += fmt.Sprintf(" %12s", "-")
				continue
			}
			found = true
			row += fmt.Sprintf(" %12.0f", c.Retransmits)
		}
		if found {
			b.WriteString(row + "\n")
		}
	}
	return b.String()
}

// RenderTable3 renders the overall comparison as a markdown table matching
// the paper's Table 3 layout.
func (s *Summary) RenderTable3() string {
	var b strings.Builder
	b.WriteString("| CCA1 vs CCA2 | AQM | Avg(phi) | Avg(RR) | Avg(J_index) | Avg(H) |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	lastAQM := aqm.Kind("")
	for _, row := range s.Table3() {
		aqmCell := ""
		if row.AQM != lastAQM {
			aqmCell = strings.ToUpper(string(row.AQM))
			lastAQM = row.AQM
		}
		rr := "-"
		if !math.IsNaN(row.AvgRR) {
			rr = fmt.Sprintf("%.3f", row.AvgRR)
		}
		fmt.Fprintf(&b, "| %s vs %s | %s | %.3f | %s | %.3f | %.3f |\n",
			strings.ToUpper(string(row.Pairing.CCA1)), strings.ToUpper(string(row.Pairing.CCA2)),
			aqmCell, row.AvgPhi, rr, row.AvgJain, row.AvgHarm)
	}
	return b.String()
}

// EquilibriumBDP finds the buffer multiplier at which sender 2 (CUBIC in
// the inter-CCA pairings) first overtakes sender 1 — the paper's
// "equilibrium point" narrative for Figure 2. Returns the multiplier and
// true, or 0,false if sender 1 leads at every measured buffer size.
func (s *Summary) EquilibriumBDP(p Pairing, kind aqm.Kind, bw units.Bandwidth) (float64, bool) {
	for _, q := range s.QueueMults() {
		c := s.Lookup(p, kind, q, bw)
		if c == nil {
			continue
		}
		if c.SenderBps[1] > c.SenderBps[0] {
			return q, true
		}
	}
	return 0, false
}
