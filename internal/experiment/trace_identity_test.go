package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// TestTracingByteIdenticalResults proves tracing is observation-only: the
// same configuration run with and without telemetry must produce
// byte-identical result JSON (modulo wall_ns, the only wall-clock field).
// The Trace dump itself is excluded from the JSON (json:"-"), and the trace
// knobs are zeroed out of Config.Key(), so a traced result is
// interchangeable with an untraced one everywhere: result files, the sweepd
// cache, checkpoint journals.
func TestTracingByteIdenticalResults(t *testing.T) {
	base := Config{
		Pairing:    Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 50 * units.MegabitPerSec,
		Duration:   500 * time.Millisecond,
	}

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	traced := base
	traced.Trace = true
	traced.TraceRingCap = 2048
	res, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("traced run returned no telemetry dump")
	}
	events := 0
	for _, r := range res.Trace.Rings {
		events += len(r.Events)
	}
	if events == 0 {
		t.Fatal("traced run recorded zero events")
	}

	if plain.Config.Key() != res.Config.Key() {
		t.Fatalf("trace knobs leaked into the science key: %s != %s",
			plain.Config.Key(), res.Config.Key())
	}

	// Run scrubs the observation-only trace knobs from the recorded config,
	// so after neutralizing the one legitimately nondeterministic field the
	// serialized results must match byte for byte — configs included.
	if res.Config.Trace || res.Config.TraceRingCap != 0 || res.Config.TraceSampleN != 0 {
		t.Fatalf("trace knobs leaked into the recorded config: %+v", res.Config)
	}
	plain.Wall, res.Wall = 0, 0
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("tracing changed the result bytes:\nuntraced: %s\ntraced:   %s", a, b)
	}
}

// TestTraceDumpRoundTripsThroughRun sanity-checks that a dump produced by a
// real simulation survives the NDJSON codec (the path cmd/sweep -trace-dir
// and sweepd /trace serve).
func TestTraceDumpRoundTripsThroughRun(t *testing.T) {
	cfg := Config{
		Pairing:    Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 50 * units.MegabitPerSec,
		Duration:   300 * time.Millisecond,
		Trace:      true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.EncodeNDJSON(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	got, err := telemetry.ParseNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rings) != len(res.Trace.Rings) {
		t.Fatalf("round trip lost rings: %d != %d", len(got.Rings), len(res.Trace.Rings))
	}
	for i := range got.Rings {
		if len(got.Rings[i].Events) != len(res.Trace.Rings[i].Events) {
			t.Fatalf("ring %s lost events: %d != %d", got.Rings[i].Name,
				len(got.Rings[i].Events), len(res.Trace.Rings[i].Events))
		}
	}
}
