package experiment

// Scenario tests for the graph topologies: each pins the qualitative
// network-layer behaviour its preset was built to exhibit — per-hop
// contention on the parking lot, ACK-channel congestion on the constrained
// reverse path, and fairness shift under background cross-traffic. All run
// with the invariant auditor armed: a multi-bottleneck graph must conserve
// packets exactly like the dumbbell.

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/topo"
	"repro/internal/units"
)

func runTopo(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParkingLotPerHopUtilization: with a long flow crossing every hop and
// one single-hop class per bottleneck, each of the three bottlenecks must
// run near capacity (the hop class fills whatever the long flow concedes),
// and the long flow — facing three queues and triple the loss exposure —
// must get the smallest share. The audit bit keeps packet conservation
// checked across the demux fan-out.
func TestParkingLotPerHopUtilization(t *testing.T) {
	pl := topo.ParkingLotSpec(3)
	res := runTopo(t, Config{
		Pairing:    Pairing{cca.Cubic, cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 100 * units.MegabitPerSec,
		Duration:   10 * time.Second,
		Seed:       1,
		Topology:   &pl,
		Audit:      true,
	})
	if len(res.Ports) != 3 {
		t.Fatalf("ports = %d, want the 3 bottlenecks", len(res.Ports))
	}
	for _, p := range res.Ports {
		if p.Utilization < 0.85 {
			t.Errorf("bottleneck %s underutilized: %.3f (want ≥ 0.85)", p.Name, p.Utilization)
		}
		if p.Utilization > 1.01 {
			t.Errorf("bottleneck %s over unity: %.3f", p.Name, p.Utilization)
		}
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d, want long + 3 hop classes", len(res.Groups))
	}
	long := res.Groups[0]
	if long.Name != "long" {
		t.Fatalf("class 0 = %q, want the long flow", long.Name)
	}
	for _, g := range res.Groups[1:] {
		if long.Bps >= g.Bps {
			t.Errorf("long flow (%.1f Mbps) should trail single-hop %s (%.1f Mbps)",
				long.Bps/1e6, g.Name, g.Bps/1e6)
		}
	}
}

// TestReversePathAckCongestion: when the ACK channel is squeezed to a small
// fraction of the forward rate behind a shallow FIFO, acknowledgements
// themselves queue and drop; delayed ACKs halve the ACK packet rate, so
// enabling them must recover substantial forward throughput. This is the
// classic asymmetric-path result the preset exists to reproduce.
func TestReversePathAckCongestion(t *testing.T) {
	rp := topo.ReversePathSpec(0.004, 64*1024)
	base := Config{
		Pairing:    Pairing{cca.Cubic, cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 100 * units.MegabitPerSec,
		Duration:   10 * time.Second,
		Seed:       1,
		Topology:   &rp,
		Audit:      true,
	}
	plain := runTopo(t, base)
	delayed := base
	delayed.DelayedAck = true
	dack := runTopo(t, delayed)

	tput := func(r Result) float64 { return r.SenderBps[0] + r.SenderBps[1] }
	if tput(plain) >= 0.8*100e6 {
		t.Errorf("constrained reverse path did not bite: %.1f Mbps total forward", tput(plain)/1e6)
	}
	if dack.Utilization <= plain.Utilization*1.1 {
		t.Errorf("delayed ACKs should relieve ACK congestion: util %.3f (delayed) vs %.3f (per-packet ACKs)",
			dack.Utilization, plain.Utilization)
	}
	// The squeezed return link must show real queueing pressure.
	var ret *PortResult
	for i := range plain.Ports {
		if plain.Ports[i].Name == "r2->r1" {
			ret = &plain.Ports[i]
		}
	}
	if ret == nil {
		t.Fatalf("return link missing from port results: %+v", plain.Ports)
	}
	if ret.Utilization < 0.9 {
		t.Errorf("ACK channel not saturated: %.3f", ret.Utilization)
	}
	if ret.SojournMean <= time.Millisecond {
		t.Errorf("no ACK queueing delay on the constrained return: %v", ret.SojournMean)
	}
}

// TestCrossTrafficShiftsFairness: adding a background CUBIC elephant to the
// bottleneck must change the measured pair's fairness relative to the clean
// dumbbell — the background class takes real bandwidth (reported in Groups
// but excluded from the two-sender Jain) — while total bottleneck
// utilization stays high.
func TestCrossTrafficShiftsFairness(t *testing.T) {
	base := Config{
		Pairing:    Pairing{cca.BBRv1, cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 100 * units.MegabitPerSec,
		Duration:   10 * time.Second,
		Seed:       1,
		Audit:      true,
	}
	solo := runTopo(t, base)

	ct := topo.CrossTrafficSpec("cubic")
	crossed := base
	crossed.Topology = &ct
	cross := runTopo(t, crossed)

	if len(cross.Groups) != 3 {
		t.Fatalf("groups = %d, want s1 + s2 + bg", len(cross.Groups))
	}
	bg := cross.Groups[2]
	if !bg.Background || bg.Name != "bg" {
		t.Fatalf("class 2 is not the background elephant: %+v", bg)
	}
	if bg.Bps <= 1e6 {
		t.Errorf("background class moved almost nothing: %.1f Mbps", bg.Bps/1e6)
	}
	if cross.Jain == solo.Jain {
		t.Errorf("cross traffic left the pair's fairness untouched: jain=%.6f both ways", solo.Jain)
	}
	// The pair's combined share must shrink: the elephant's bytes crossed
	// the same bottleneck.
	soloPair := solo.SenderBps[0] + solo.SenderBps[1]
	crossPair := cross.SenderBps[0] + cross.SenderBps[1]
	if crossPair >= soloPair {
		t.Errorf("measured pair lost no bandwidth to cross traffic: %.1f vs %.1f Mbps",
			crossPair/1e6, soloPair/1e6)
	}
	if cross.Utilization < 0.85 {
		t.Errorf("bottleneck underutilized with three classes: %.3f", cross.Utilization)
	}
}
