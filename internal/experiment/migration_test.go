package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/topo"
	"repro/internal/units"
)

// TestMigrationDumbbellByteIdentity: the dumbbell preset Spec driving the
// graph builder must reproduce the pre-refactor hard-wired dumbbell
// byte-for-byte. The golden file was produced by `cmd/sweep` before
// internal/topo was rewritten; every result here must serialize to the
// exact same JSON (wall time aside, which measures the host, not the
// simulation).
func TestMigrationDumbbellByteIdentity(t *testing.T) {
	rs, err := LoadFile("testdata/migration/dumbbell_seed.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 6 {
		t.Fatalf("golden set has %d results, want 6", len(rs.Results))
	}
	for i, want := range rs.Results {
		got, err := Run(want.Config)
		if err != nil {
			t.Fatalf("result %d (%s): %v", i, want.Config.ID(), err)
		}
		got.Wall, want.Wall = 0, 0
		gb, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, wb) {
			t.Errorf("result %d (%s): graph-built dumbbell diverged from the pre-refactor golden\n got: %s\nwant: %s",
				i, want.Config.ID(), gb, wb)
		}
	}
}

// TestMigrationLegacyKeysStable: configurations without a Topology field
// must keep the exact Config.Key() they had before the topology field
// existed — the sweepd result cache and checkpoint journals are keyed by
// it. The hashes below were pinned from the pre-refactor tree.
func TestMigrationLegacyKeysStable(t *testing.T) {
	cases := []struct {
		cfg Config
		key string
	}{
		{
			Config{Pairing: Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic}, AQM: aqm.KindFIFO,
				QueueBDP: 2, Bottleneck: 100 * units.MegabitPerSec, Seed: 1},
			"8a599272ed1c802f",
		},
		{
			Config{Pairing: Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic}, AQM: aqm.KindRED,
				QueueBDP: 16, Bottleneck: units.GigabitPerSec, Seed: 3, Duration: 6 * time.Second},
			"fc51209ffd0eabc6",
		},
		{
			Config{Pairing: Pairing{CCA1: cca.Reno, CCA2: cca.Reno}, AQM: aqm.KindFQCoDel,
				QueueBDP: 0.5, Bottleneck: 10 * units.GigabitPerSec, Seed: 2, ECN: true, DelayedAck: true,
				Faults: &faults.Profile{Flaps: []faults.Flap{{At: time.Second, Down: 100 * time.Millisecond}}}},
			"eeed232b32046c6e",
		},
	}
	for i, c := range cases {
		if got := c.cfg.Key(); got != c.key {
			t.Errorf("case %d (%s): Key() = %q, want pinned legacy %q",
				i, c.cfg.ID(), got, c.key)
		}
	}
}

// TestMigrationDumbbellTopologyFoldsAway: explicitly requesting the
// dumbbell preset (as `-topo dumbbell` does) must be identity-equivalent
// to the nil legacy default — same Key, same ID, Topology normalized away.
func TestMigrationDumbbellTopologyFoldsAway(t *testing.T) {
	base := Config{Pairing: Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic}, AQM: aqm.KindFIFO,
		QueueBDP: 2, Bottleneck: 100 * units.MegabitPerSec, Seed: 1}
	spec := topo.DumbbellSpec()
	explicit := base
	explicit.Topology = &spec

	if n := explicit.Normalize(); n.Topology != nil {
		t.Fatal("canonical dumbbell Topology survived Normalize")
	}
	if explicit.Key() != base.Key() {
		t.Errorf("dumbbell topology changed Key: %s vs %s", explicit.Key(), base.Key())
	}
	if explicit.Normalize().ID() != base.Normalize().ID() {
		t.Errorf("dumbbell topology changed ID: %s vs %s",
			explicit.Normalize().ID(), base.Normalize().ID())
	}

	// A non-dumbbell graph is science: it must move both Key and ID.
	pl := topo.ParkingLotSpec(3)
	graph := base
	graph.Topology = &pl
	if graph.Key() == base.Key() {
		t.Error("parking-lot topology did not change Key")
	}
	if n := graph.Normalize(); n.Topology == nil {
		t.Fatal("parking-lot Topology normalized away")
	} else if id := n.ID(); id == base.Normalize().ID() {
		t.Errorf("parking-lot topology did not change ID: %s", id)
	} else if want := base.Normalize().ID() + "_parking-lot-3"; id != want {
		t.Errorf("parking-lot ID = %q, want %q", id, want)
	}
}
