package experiment

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
)

// journalLines returns the journal's raw non-empty record lines (the v2
// version header doesn't count — it is metadata, not a record).
func journalLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, l := range strings.Split(string(data), "\n") {
		if l != "" && !strings.HasPrefix(l, "#") {
			out = append(out, l)
		}
	}
	return out
}

// TestCheckpointCompact: a journal bloated by resumes — superseded results,
// torn fragments — must shrink to one line per live config ID on Compact,
// stay appendable afterwards, and resume identically to the original.
func TestCheckpointCompact(t *testing.T) {
	cfgs := hardeningConfigs(3)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int, util float64) Result {
		return Result{Config: cfgs[i].Normalize(), Utilization: util, Jain: 1, Flows: 2}
	}
	// Two generations of config 0 (last write wins), one of config 1, and a
	// torn fragment as from a crash mid-append.
	for _, res := range []Result{mk(0, 0.5), mk(1, 0.7), mk(0, 0.9)} {
		if err := ck.Append(res); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ck.f.Write([]byte(`{"config":{"pairing":`)); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	ck, err = OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	before := ck.Results()
	if len(journalLines(t, path)) != 4 { // 3 appends + healed torn line
		t.Fatalf("pre-compact journal has %d lines, want 4", len(journalLines(t, path)))
	}
	if err := ck.Compact(); err != nil {
		t.Fatal(err)
	}
	lines := journalLines(t, path)
	if len(lines) != 2 {
		t.Fatalf("compacted journal has %d lines, want 2 (one per live config):\n%s",
			len(lines), strings.Join(lines, "\n"))
	}
	if !reflect.DeepEqual(ck.Results(), before) {
		t.Fatal("Compact changed the live result set")
	}

	// The handle must still append into the compacted file.
	if err := ck.Append(mk(2, 0.8)); err != nil {
		t.Fatal(err)
	}
	if len(journalLines(t, path)) != 3 {
		t.Fatal("post-compact Append did not land in the compacted journal")
	}

	// A fresh open of the compacted journal resumes identically: every
	// config is satisfied from it, nothing re-runs, and the superseded
	// generation of config 0 is gone for good.
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 3 {
		t.Fatalf("reloaded compacted journal has %d results, want 3", ck2.Len())
	}
	if res, ok := ck2.Lookup(cfgs[0].Key()); !ok || res.Utilization != 0.9 {
		t.Fatalf("config 0 after compact+reload: %+v, %v (want the last-written generation)", res, ok)
	}
	runs := withPanicOn(t) // counts runs, panics never
	results, err := RunAllOpts(cfgs, RunAllOptions{Workers: 2, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 0 {
		t.Fatalf("resume from compacted journal re-ran %d configs, want 0", got)
	}
	for i, res := range results {
		if res.Config.ID() != cfgs[i].Normalize().ID() {
			t.Fatalf("config %d resumed out of order", i)
		}
	}
}

// TestCheckpointKeyedByScience: a journaled result may only satisfy a
// resume of the configuration that produced it. The same grid cell under a
// different duration or paper scale is different science and must re-run;
// the watchdog budgets and audit bit must not split the key. (Regression:
// the journal was once keyed by Config.ID, which omits the overrides, so a
// resume under a different -duration silently served wrong results.)
func TestCheckpointKeyedByScience(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	cfg := quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 1, time.Second)
	if err := ck.Append(Result{Config: cfg.Normalize(), Jain: 1, Flows: 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.Lookup(cfg.Key()); !ok {
		t.Fatal("identical config missing from journal")
	}
	longer := cfg
	longer.Duration = 2 * time.Second
	if _, ok := ck.Lookup(longer.Key()); ok {
		t.Error("a 2s resume was served the 1s result")
	}
	paper := cfg
	paper.PaperScale = true
	if _, ok := ck.Lookup(paper.Key()); ok {
		t.Error("a paper-scale resume was served the scaled result")
	}
	budgeted := cfg
	budgeted.Audit = true
	budgeted.MaxEvents = 1 << 40
	if _, ok := ck.Lookup(budgeted.Key()); !ok {
		t.Error("audit/watchdog toggles must not orphan journaled work")
	}
}

// TestCheckpointBrokenHandleFailsFast: once the post-compact reopen has
// failed, the old handle points at an unlinked inode — Append and Compact
// must return the sticky error instead of silently writing into the void.
func TestCheckpointBrokenHandleFailsFast(t *testing.T) {
	cfgs := hardeningConfigs(2)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Append(Result{Config: cfgs[0].Normalize(), Jain: 1, Flows: 2}); err != nil {
		t.Fatal(err)
	}
	// Inject the state Compact leaves behind when the reopen fails.
	ck.mu.Lock()
	ck.err = errors.New("injected: compact reopen failed")
	ck.f.Close()
	ck.f = nil
	ck.mu.Unlock()
	if err := ck.Append(Result{Config: cfgs[1].Normalize(), Jain: 1, Flows: 2}); err == nil {
		t.Error("Append succeeded on a broken journal handle")
	}
	if err := ck.Compact(); err == nil {
		t.Error("Compact succeeded on a broken journal handle")
	}
	if err := ck.Close(); err == nil {
		t.Error("Close swallowed the sticky journal error")
	}
}

// TestCheckpointResultsSorted: Results must come back ordered by config ID
// regardless of append order, so compaction and cache loads are
// deterministic.
func TestCheckpointResultsSorted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	for _, seed := range []uint64{3, 1, 2} {
		cfg := quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, seed, 2*time.Second)
		if err := ck.Append(Result{Config: cfg.Normalize(), Jain: 1}); err != nil {
			t.Fatal(err)
		}
	}
	got := ck.Results()
	for i := 1; i < len(got); i++ {
		if got[i-1].Config.ID() >= got[i].Config.ID() {
			t.Fatalf("Results not sorted: %s >= %s", got[i-1].Config.ID(), got[i].Config.ID())
		}
	}
}
