package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/units"
)

// TestFairnessByteIdenticalResults proves the observatory is
// observation-only: the same configuration run with and without the
// fairness sampler must produce byte-identical science — every serialized
// field except the fairness block itself (and wall_ns, which measures the
// machine). The fairness knobs are zeroed out of Config.Key() and scrubbed
// from the recorded config, so an armed result is interchangeable with a
// plain one everywhere: result files, the sweepd cache, checkpoint
// journals.
func TestFairnessByteIdenticalResults(t *testing.T) {
	base := Config{
		Pairing:    Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
		AQM:        aqm.KindFIFO,
		QueueBDP:   2,
		Bottleneck: 50 * units.MegabitPerSec,
		Duration:   500 * time.Millisecond,
	}

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	armed := base
	armed.Fairness = true
	armed.FairnessWindow = 50 * time.Millisecond
	res, err := Run(armed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fairness == nil {
		t.Fatal("armed run returned no fairness report")
	}
	if res.Fairness.Windows < 8 {
		t.Fatalf("windows = %d, want ~10 over 500ms at 50ms cadence", res.Fairness.Windows)
	}

	if plain.Config.Key() != res.Config.Key() {
		t.Fatalf("fairness knobs leaked into the science key: %s != %s",
			plain.Config.Key(), res.Config.Key())
	}
	if res.Config.Fairness || res.Config.FairnessWindow != 0 {
		t.Fatalf("fairness knobs leaked into the recorded config: %+v", res.Config)
	}

	// After removing the fairness block (additive, like FCT) and the one
	// legitimately nondeterministic field, the serialized results must
	// match byte for byte — configs included.
	plain.Wall, res.Wall = 0, 0
	res.Fairness = nil
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("fairness sampling changed the science bytes:\nplain: %s\narmed: %s", a, b)
	}
}

// TestFairnessKnobsExcludedFromKey pins the identity contract directly:
// flipping the observatory on, or changing its cadence, must not move the
// science key — while any genuinely scientific field must.
func TestFairnessKnobsExcludedFromKey(t *testing.T) {
	base := Config{
		Pairing:    Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
		AQM:        aqm.KindRED,
		QueueBDP:   4,
		Bottleneck: 100 * units.MegabitPerSec,
		Duration:   2 * time.Second,
	}
	k := base.Key()

	armed := base
	armed.Fairness = true
	if armed.Key() != k {
		t.Error("Fairness=true changed the science key")
	}
	armed.FairnessWindow = 10 * time.Millisecond
	if armed.Key() != k {
		t.Error("FairnessWindow changed the science key")
	}

	science := base
	science.QueueBDP = 8
	if science.Key() == k {
		t.Error("QueueBDP did not change the science key (key is not discriminating)")
	}
}

// TestFairnessMetamorphicWorkerWidth: the fairness report is derived from
// deterministic byte counters sampled at fixed simulation times, so the
// serialized report must be byte-identical whether the sweep ran serial or
// 4-wide — and across a straight replay.
func TestFairnessMetamorphicWorkerWidth(t *testing.T) {
	cfgs := make([]Config, 3)
	for i := range cfgs {
		cfgs[i] = Config{
			Pairing:        Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
			AQM:            aqm.KindFIFO,
			QueueBDP:       4,
			Bottleneck:     50 * units.MegabitPerSec,
			Duration:       2 * time.Second,
			Seed:           uint64(i + 1),
			Fairness:       true,
			FairnessWindow: 100 * time.Millisecond,
		}
	}
	serial, err := RunAll(cfgs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunAll(cfgs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if serial[i].Errored() || wide[i].Errored() {
			t.Fatalf("config %d errored: %q / %q", i, serial[i].Error, wide[i].Error)
		}
		if serial[i].Fairness == nil || wide[i].Fairness == nil {
			t.Fatalf("config %d missing fairness report", i)
		}
		stripWall(&serial[i], &wide[i])
		js, _ := json.Marshal(serial[i])
		jw, _ := json.Marshal(wide[i])
		if !bytes.Equal(js, jw) {
			t.Fatalf("config %d: workers=1 vs workers=4 fairness diverged:\n%s\n%s", i, js, jw)
		}
	}

	// Replay: the same config a second time, byte-identical report included.
	again, err := Run(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	stripWall(&again)
	ja, _ := json.Marshal(serial[0])
	jb, _ := json.Marshal(again)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("fairness replay diverged:\n%s\n%s", ja, jb)
	}
}

// TestFairnessStaggeredCubicConverges is the acceptance scenario: two CUBIC
// flows starting 2 s apart on a FIFO dumbbell must converge to fairness in
// finite time — after the second flow's start, not before it exists — and
// end the run near-perfectly fair.
func TestFairnessStaggeredCubicConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 10s of traffic; skipped in -short mode")
	}
	cfg := Config{
		Pairing:        Pairing{CCA1: cca.Cubic, CCA2: cca.Cubic},
		AQM:            aqm.KindFIFO,
		QueueBDP:       2,
		Bottleneck:     100 * units.MegabitPerSec,
		Duration:       10 * time.Second,
		FlowsPerSender: 1,
		StartSpread:    2 * time.Second,
		Fairness:       true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Fairness
	if fr == nil {
		t.Fatal("no fairness report")
	}
	if !fr.Converged {
		t.Fatalf("staggered CUBIC flows never converged: final Jain %.3f over %d windows",
			fr.FinalJain, fr.Windows)
	}
	if fr.ConvergenceTime <= fr.ActiveFrom {
		t.Fatalf("converged at %v, before all flows were active (%v) — the scan must start at ActiveFrom",
			fr.ConvergenceTime, fr.ActiveFrom)
	}
	if fr.FinalJain < 0.95 {
		t.Fatalf("final Jain = %.4f, want ≥ 0.95 for homogeneous CUBIC", fr.FinalJain)
	}
	if len(fr.Episodes) != 0 {
		t.Fatalf("homogeneous CUBIC reported starvation: %+v", fr.Episodes)
	}
}

// TestFairnessBBRStarvesCubicInDeepFIFO is the second acceptance scenario:
// BBRv1 against CUBIC in a deep (4×BDP) FIFO. BBRv1's startup overshoot
// crushes CUBIC early — the detectors must report at least one starvation
// episode with the CUBIC flow as victim and the BBR flow among the
// culprits (Hock et al.'s observation, the paper's central unfairness
// case).
func TestFairnessBBRStarvesCubicInDeepFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 10s of traffic; skipped in -short mode")
	}
	cfg := Config{
		Pairing:        Pairing{CCA1: cca.BBRv1, CCA2: cca.Cubic},
		AQM:            aqm.KindFIFO,
		QueueBDP:       4,
		Bottleneck:     100 * units.MegabitPerSec,
		Duration:       10 * time.Second,
		FlowsPerSender: 1,
		Fairness:       true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Fairness
	if fr == nil {
		t.Fatal("no fairness report")
	}
	if len(fr.Episodes) == 0 {
		t.Fatalf("no starvation episode detected (min Jain %.3f, time below floor %v)",
			fr.MinJain, fr.TimeBelowFloor)
	}
	ep := fr.Episodes[0]
	if ep.CCA != "cubic" {
		t.Errorf("victim = %s, want the cubic flow", ep.CCA)
	}
	if ep.End <= ep.Start {
		t.Errorf("episode span %v-%v is empty", ep.Start, ep.End)
	}
	foundBBR := false
	for _, c := range ep.Culprits {
		for _, f := range fr.Flows {
			if f.ID == c && f.CCA == "bbr1" {
				foundBBR = true
			}
		}
	}
	if !foundBBR {
		t.Errorf("culprits = %v, want the bbr1 flow among them", ep.Culprits)
	}
	if fr.TimeBelowFloor == 0 {
		t.Error("starved run reported zero time below the Jain floor")
	}
}
