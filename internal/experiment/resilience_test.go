package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// TestFlapRecoveryAllCCAs: a 200 ms bottleneck outage destroys the whole
// in-flight window, so every CCA must stall into RTO retransmission and
// then climb back to at least 90 % of its pre-flap goodput — the link
// comes back unchanged, so a healthy controller has no excuse not to.
func TestFlapRecoveryAllCCAs(t *testing.T) {
	for _, name := range []cca.Name{cca.Reno, cca.Cubic, cca.HTCP, cca.BBRv1, cca.BBRv2} {
		name := name
		t.Run(string(name), func(t *testing.T) {
			t.Parallel()
			bw := 100 * units.MegabitPerSec
			rtt := 62 * time.Millisecond
			eng := sim.NewEngine(1)
			d, err := topo.NewDumbbell(eng, topo.Config{
				BottleneckBW: bw,
				RTT:          rtt,
				Queue: aqm.Config{
					Kind:     aqm.KindFIFO,
					Capacity: units.QueueBytes(bw, rtt, 2, 8960),
				},
				Faults: &faults.Profile{
					Flaps: []faults.Flap{{At: 12 * time.Second, Down: 200 * time.Millisecond}},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			cc, err := cca.New(name)
			if err != nil {
				t.Fatal(err)
			}
			f := d.AddFlow(0, tcp.Config{}, cc)
			f.Conn.Start()

			eng.RunFor(4 * time.Second) // warm-up: out of slow start
			g0 := f.Rcv.Goodput()
			eng.RunFor(8 * time.Second) // pre-flap window [4 s, 12 s)
			pre := f.Rcv.Goodput() - g0
			rtosBefore := f.Conn.Stats().RTOs

			eng.RunFor(2 * time.Second) // the flap and the recovery transient
			if got := f.Conn.Stats().RTOs; got <= rtosBefore {
				t.Fatalf("no RTO during a 200 ms outage (before %d, after %d)", rtosBefore, got)
			}
			if d.Bottleneck.DownDrops() == 0 {
				t.Fatal("flap destroyed no packets — outage never reached the bottleneck")
			}

			g2 := f.Rcv.Goodput()
			eng.RunFor(8 * time.Second) // post-flap window [14 s, 22 s)
			post := f.Rcv.Goodput() - g2

			if pre == 0 {
				t.Fatal("no pre-flap goodput")
			}
			ratio := float64(post) / float64(pre)
			if ratio < 0.9 {
				t.Fatalf("%s recovered to only %.1f%% of pre-flap goodput (pre %d B, post %d B)",
					name, 100*ratio, pre, post)
			}
		})
	}
}

// TestGELossInversionBBRvLossBased: under bursty Gilbert–Elliott loss
// (~2.4 % average in ~10-packet bursts) the loss-based controllers halve
// their window on every burst while BBRv1's model ignores loss entirely —
// the fairness inversion the paper's future-work section points at.
func TestGELossInversionBBRvLossBased(t *testing.T) {
	ge := &faults.Profile{GE: &faults.GilbertElliott{
		PGoodBad: 0.005, PBadGood: 0.1, LossBad: 0.5,
	}}
	run := func(name cca.Name) Result {
		res, err := Run(Config{
			Pairing: Pairing{name, name}, AQM: aqm.KindFIFO, QueueBDP: 2,
			Bottleneck: 100 * units.MegabitPerSec, Duration: 20 * time.Second,
			Seed: 1, Faults: ge,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bbr := run(cca.BBRv1)
	reno := run(cca.Reno)
	cubic := run(cca.Cubic)
	if bbr.FaultLossDrops == 0 {
		t.Fatal("GE chain dropped nothing — fault profile not plumbed through")
	}
	if bbr.Utilization < 2*reno.Utilization {
		t.Fatalf("BBRv1 (φ=%.3f) should dominate Reno (φ=%.3f) under bursty loss",
			bbr.Utilization, reno.Utilization)
	}
	if bbr.Utilization < 2*cubic.Utilization {
		t.Fatalf("BBRv1 (φ=%.3f) should dominate CUBIC (φ=%.3f) under bursty loss",
			bbr.Utilization, cubic.Utilization)
	}
	if bbr.Utilization < 0.5 {
		t.Fatalf("BBRv1 should retain most of the link under bursty loss: φ=%.3f",
			bbr.Utilization)
	}
}

// stripWall zeroes the wall-clock telemetry, the one field allowed to
// differ between byte-identical runs.
func stripWall(results ...*Result) {
	for _, r := range results {
		r.Wall = 0
	}
}

// TestFaultedRunDeterminism: the same seed and fault profile must yield a
// byte-identical Result — run to run, and regardless of worker count.
func TestFaultedRunDeterminism(t *testing.T) {
	profile := &faults.Profile{
		GE:    &faults.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.5},
		Flaps: []faults.Flap{{At: 2 * time.Second, Down: 200 * time.Millisecond}},
	}
	cfg := Config{
		Pairing: Pairing{cca.Cubic, cca.BBRv1}, AQM: aqm.KindFIFO, QueueBDP: 2,
		Bottleneck: 100 * units.MegabitPerSec, Duration: 5 * time.Second,
		Seed: 7, Faults: profile,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(&a, &b)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed+profile, different results:\n%s\n%s", ja, jb)
	}
	if a.FaultLossDrops == 0 || a.FaultDownDrops == 0 {
		t.Fatalf("fault accounting empty: %+v", a)
	}

	// Worker-count independence: each simulation owns a private engine, so
	// pool width must not leak into results.
	cfgs := make([]Config, 4)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = uint64(i + 1)
	}
	serial, err := RunAll(cfgs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunAll(cfgs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		stripWall(&serial[i], &wide[i])
		js, _ := json.Marshal(serial[i])
		jw, _ := json.Marshal(wide[i])
		if !bytes.Equal(js, jw) {
			t.Fatalf("config %d: workers=1 vs workers=4 diverged:\n%s\n%s", i, js, jw)
		}
	}
}

// TestFaultProfileInResultIdentity: the profile must be part of the config
// ID so faulted results can never collide with clean ones in a checkpoint.
func TestFaultProfileInResultIdentity(t *testing.T) {
	base := quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 1, time.Second)
	faulted := base
	faulted.Faults = &faults.Profile{Flaps: []faults.Flap{{At: time.Second, Down: 100 * time.Millisecond}}}
	if base.ID() == faulted.ID() {
		t.Fatalf("fault profile invisible in ID: %s", base.ID())
	}
	// Budgets are telemetry, not identity: a resume may relax a bad budget
	// without orphaning finished work.
	budgeted := base
	budgeted.MaxEvents = 1 << 40
	budgeted.MaxWall = time.Hour
	if base.ID() != budgeted.ID() {
		t.Fatalf("watchdog budget leaked into ID: %s vs %s", base.ID(), budgeted.ID())
	}
}

// TestConfigKeyScienceIdentity: Key must cover every field that changes a
// run's bytes — duration, paper scale, RTT, ECN, seed, faults — and exclude
// only the watchdog budgets and the observation-only audit bit. This is the
// contract that keeps the checkpoint journal and sweepd's result cache from
// ever serving a result simulated under different physics.
func TestConfigKeyScienceIdentity(t *testing.T) {
	base := quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 1, time.Second)
	science := []struct {
		name string
		mut  func(*Config)
	}{
		{"duration", func(c *Config) { c.Duration = 2 * time.Second }},
		{"paper_scale", func(c *Config) { c.PaperScale = true }},
		{"seed", func(c *Config) { c.Seed = 9 }},
		{"rtt", func(c *Config) { c.RTT = 10 * time.Millisecond }},
		{"ecn", func(c *Config) { c.ECN = true }},
		{"path_loss", func(c *Config) { c.PathLoss = 0.01 }},
		{"faults", func(c *Config) {
			c.Faults = &faults.Profile{Flaps: []faults.Flap{{At: time.Second, Down: 100 * time.Millisecond}}}
		}},
	}
	for _, tc := range science {
		mutated := base
		tc.mut(&mutated)
		if mutated.Key() == base.Key() {
			t.Errorf("%s change invisible in Key %s", tc.name, base.Key())
		}
	}
	observation := []struct {
		name string
		mut  func(*Config)
	}{
		{"max_events", func(c *Config) { c.MaxEvents = 1 << 40 }},
		{"max_wall", func(c *Config) { c.MaxWall = time.Hour }},
		{"audit", func(c *Config) { c.Audit = true }},
	}
	for _, tc := range observation {
		mutated := base
		tc.mut(&mutated)
		if mutated.Key() != base.Key() {
			t.Errorf("%s leaked into Key: %s vs %s", tc.name, mutated.Key(), base.Key())
		}
	}
	// Spelling a default explicitly is the same science as leaving it zero.
	zero := base
	zero.Duration = 0
	explicit := zero
	explicit.Duration = zero.Normalize().Duration
	if zero.Key() != explicit.Key() {
		t.Errorf("explicit default duration changed Key: %s vs %s", zero.Key(), explicit.Key())
	}
}
