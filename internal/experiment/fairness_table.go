package experiment

import (
	"sort"
	"time"

	"repro/internal/aqm"
	"repro/internal/metrics"
)

// FairnessCell is one row of the fairness-dynamics table: for a pairing ×
// AQM, the convergence and starvation behavior the observatory measured,
// aggregated over the (queue, bandwidth, seed) conditions that carried a
// fairness report.
type FairnessCell struct {
	Pairing Pairing  `json:"pairing"`
	AQM     aqm.Kind `json:"aqm"`
	// N counts the results aggregated; Converged how many of them reached
	// sustained fairness.
	N         int `json:"n"`
	Converged int `json:"converged"`
	// MeanConvergence averages the convergence time over the runs that
	// converged (0 when none did).
	MeanConvergence time.Duration `json:"mean_convergence_ns"`
	// MeanTimeBelow averages the time spent below the Jain floor per run.
	MeanTimeBelow time.Duration `json:"mean_time_below_ns"`
	MeanFinalJain float64       `json:"mean_final_jain"`
	// Episodes counts starvation episodes across all runs; Unresolved the
	// ones still open when their run ended; StarvedTime their total
	// duration.
	Episodes    int           `json:"episodes"`
	Unresolved  int           `json:"unresolved"`
	StarvedTime time.Duration `json:"starved_time_ns"`
}

// FairnessLine is the NDJSON line shape shared by sweepd's
// GET /v1/sweeps/{id}/fairness endpoint and cmd/sweep -fairness-out: one
// line per fairness-armed configuration, naming the config by science key
// and human-readable ID. Sharing the struct keeps the two outputs
// byte-diffable.
type FairnessLine struct {
	Config   string                  `json:"config"`
	ID       string                  `json:"id"`
	Fairness *metrics.FairnessReport `json:"fairness"`
}

// FairnessTable aggregates the observatory findings of a result set per
// pairing × AQM, in Table-3 order. Results without a fairness report
// (errored, solo baselines, or runs with the observatory off) are skipped;
// a set with none yields an empty table.
func FairnessTable(results []Result) []FairnessCell {
	type acc struct {
		cell        FairnessCell
		convSum     time.Duration
		belowSum    time.Duration
		finalJains  []float64
		starvedTime time.Duration
	}
	cells := map[CellKey]*acc{}
	for i := range results {
		r := &results[i]
		if r.Errored() || r.Config.SoloFCT || r.Fairness == nil {
			continue
		}
		f := r.Fairness
		k := CellKey{r.Config.Pairing, r.Config.AQM, 0, 0}
		a := cells[k]
		if a == nil {
			a = &acc{cell: FairnessCell{Pairing: r.Config.Pairing, AQM: r.Config.AQM}}
			cells[k] = a
		}
		a.cell.N++
		if f.Converged {
			a.cell.Converged++
			a.convSum += f.ConvergenceTime
		}
		a.belowSum += f.TimeBelowFloor
		a.finalJains = append(a.finalJains, f.FinalJain)
		a.cell.Episodes += len(f.Episodes)
		for _, ep := range f.Episodes {
			if !ep.Resolved {
				a.cell.Unresolved++
			}
			a.starvedTime += ep.End - ep.Start
		}
	}

	out := make([]FairnessCell, 0, len(cells))
	for _, a := range cells {
		if a.cell.Converged > 0 {
			a.cell.MeanConvergence = a.convSum / time.Duration(a.cell.Converged)
		}
		a.cell.MeanTimeBelow = a.belowSum / time.Duration(a.cell.N)
		a.cell.MeanFinalJain = metrics.Mean(a.finalJains)
		a.cell.StarvedTime = a.starvedTime
		out = append(out, a.cell)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := aqmOrder(out[i].AQM), aqmOrder(out[j].AQM)
		if ai != aj {
			return ai < aj
		}
		pi, pj := pairingOrder(out[i].Pairing), pairingOrder(out[j].Pairing)
		if pi != pj {
			return pi < pj
		}
		return out[i].Pairing.String() < out[j].Pairing.String()
	})
	return out
}
