package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
)

// Checkpoint journal format v2.
//
// v1 journals were bare JSONL: one Result per line, integrity checked only
// by "does it still parse". That survives a torn tail but nothing else — a
// flipped bit inside a number is accepted silently as wrong science, and a
// long unbroken corrupt region aborted the whole load (the scanner's token
// limit), losing every record on both sides of the damage.
//
// v2 frames every record:
//
//	#tcpfair-journal v2
//	r <len> <crc32-ieee hex8> <science-key hex16> <json payload>
//
// The explicit payload length makes records self-delimiting, the CRC makes
// any bit flip detectable, and the science key — written by the producer,
// re-derived from the payload by the reader — proves key/result agreement
// end to end. The reader is a resynchronizing scanner: damage is skipped
// and quarantined per record (or per unbroken region), and every record
// whose CRC still proves it intact is recovered, including records after a
// bad region and records fused onto a damaged line by a destroyed newline.
// v1 lines remain readable forever; Compact rewrites everything as v2.
const (
	journalHeaderV2 = "#tcpfair-journal v2"
	frameMagic      = "r "

	// maxJournalLine bounds a single physical line. Longer unbroken regions
	// are discarded in streaming chunks (never buffered whole) and counted
	// as Oversized. Matches the old scanner token cap, so every journal
	// that loaded before still loads.
	maxJournalLine = 1 << 24

	// maxDamagedBytes caps how much damaged raw data a load retains in
	// memory for fsck's quarantine side file.
	maxDamagedBytes = 1 << 20
)

var frameMagicBytes = []byte(frameMagic)

// JournalStats describes what a journal load saw.
type JournalStats struct {
	Records     int // live records accepted (V1 + V2, before dedup)
	V2          int // accepted CRC-framed records
	V1          int // accepted legacy bare-JSONL records
	Duplicates  int // accepted records superseded by another with the same key
	Errored     int // journaled errored results, skipped (they re-run)
	Corrupt     int // damaged regions: framing, CRC, or JSON failures
	KeyMismatch int // CRC-valid records whose stored key ≠ recomputed science key
	Oversized   int // unbroken regions longer than maxJournalLine, skipped wholesale
}

// Damaged reports how many regions or records the load had to drop for
// integrity reasons (excluding errored results, which are dropped by
// policy, and duplicates, which lose only redundancy).
func (s JournalStats) Damaged() int {
	return s.Corrupt + s.KeyMismatch + s.Oversized
}

// encodeFrame renders one result as a v2 journal record (trailing newline
// included) and returns it with the result's science key.
func encodeFrame(res Result) ([]byte, string, error) {
	payload, err := json.Marshal(res)
	if err != nil {
		return nil, "", fmt.Errorf("experiment: checkpoint encode: %w", err)
	}
	key := res.Config.Key()
	buf := make([]byte, 0, len(frameMagic)+32+len(key)+len(payload)+4)
	buf = append(buf, frameMagic...)
	buf = strconv.AppendInt(buf, int64(len(payload)), 10)
	buf = append(buf, ' ')
	buf = fmt.Appendf(buf, "%08x", crc32.ChecksumIEEE(payload))
	buf = append(buf, ' ')
	buf = append(buf, key...)
	buf = append(buf, ' ')
	buf = append(buf, payload...)
	buf = append(buf, '\n')
	return buf, key, nil
}

// readJournal streams every record of a v1 or v2 journal from r, calling
// visit for each live result (in file order, so last write wins at the
// caller) and damaged (optional) with the raw bytes of each damaged line.
// Damage is never fatal; only a real read error aborts the load.
func readJournal(r io.Reader, st *JournalStats, visit func(key string, res Result), damaged func(line []byte)) error {
	br := bufio.NewReaderSize(r, 64<<10)
	buf := make([]byte, 0, 4<<10)
	for {
		buf = buf[:0]
		skipping := false
		var readErr error
		for {
			chunk, err := br.ReadSlice('\n')
			if !skipping {
				buf = append(buf, chunk...)
				if len(buf) > maxJournalLine {
					// The region can't be one legal record; stop buffering
					// and discard to the next newline in streaming chunks.
					// (The v1 scanner aborted the entire load here, losing
					// every record on both sides of the region.)
					skipping = true
					buf = buf[:0]
				}
			}
			if err == nil {
				break
			}
			if err == bufio.ErrBufferFull {
				continue
			}
			readErr = err
			break
		}
		if readErr != nil && readErr != io.EOF {
			return readErr
		}
		if skipping {
			st.Oversized++
		} else {
			line := buf
			if n := len(line); n > 0 && line[n-1] == '\n' {
				line = line[:n-1]
			}
			parseJournalLine(line, st, visit, damaged)
		}
		if readErr == io.EOF {
			return nil
		}
	}
}

// parseJournalLine classifies and decodes one physical line: version
// header, one clean v2 frame, a legacy v1 record, or a damaged region
// possibly containing recoverable frames.
func parseJournalLine(line []byte, st *JournalStats, visit func(string, Result), damaged func([]byte)) {
	if len(line) == 0 {
		return
	}
	// Scan for v2 frames anywhere in the line. A healthy line is exactly
	// one frame at offset 0; after corruption destroys framing (a flipped
	// length digit, a newline overwritten so two records fuse) the scan
	// resynchronizes on the next "r " and recovers every frame whose CRC
	// still proves it intact.
	frames, covered, pos := 0, 0, 0
	for pos < len(line) {
		idx := bytes.Index(line[pos:], frameMagicBytes)
		if idx < 0 {
			break
		}
		start := pos + idx
		n := parseFrame(line[start:], st, visit, damaged)
		if n == 0 {
			pos = start + 1 // no frame here; resync one byte on
			continue
		}
		frames++
		covered += n
		pos = start + n
	}
	switch {
	case frames == 1 && covered == len(line):
		// One clean whole-line frame (already counted by parseFrame).
	case frames > 0:
		// Valid frames embedded in a damaged line: the frames were
		// recovered above; the uncovered bytes are one corrupt region.
		st.Corrupt++
		if damaged != nil {
			damaged(line)
		}
	default:
		if line[0] == '#' {
			return // version header / comment
		}
		parseV1Line(line, st, visit, damaged)
	}
}

// parseFrame decodes one v2 frame at the start of b, returning the number
// of bytes consumed (0 if b does not begin with a CRC-valid frame). A
// frame that passes the CRC but fails payload checks — undecodable JSON,
// science-key disagreement, an errored result — is consumed and counted,
// never re-scanned.
func parseFrame(b []byte, st *JournalStats, visit func(string, Result), damaged func([]byte)) int {
	if !bytes.HasPrefix(b, frameMagicBytes) {
		return 0
	}
	rest := b[len(frameMagic):]
	sp := bytes.IndexByte(rest, ' ')
	if sp <= 0 || sp > 8 {
		return 0
	}
	plen, err := strconv.Atoi(string(rest[:sp]))
	if err != nil || plen <= 0 || plen > maxJournalLine {
		return 0
	}
	rest = rest[sp+1:]
	// crc(8) + ' ' + key(16) + ' ' + payload(plen)
	if len(rest) < 8+1+16+1+plen || rest[8] != ' ' || rest[25] != ' ' {
		return 0
	}
	crc, err := strconv.ParseUint(string(rest[:8]), 16, 32)
	if err != nil {
		return 0
	}
	key := rest[9:25]
	payload := rest[26 : 26+plen]
	if crc32.ChecksumIEEE(payload) != uint32(crc) {
		return 0
	}
	consumed := len(frameMagic) + sp + 1 + 26 + plen
	var res Result
	if err := json.Unmarshal(payload, &res); err != nil {
		st.Corrupt++
		if damaged != nil {
			damaged(payload)
		}
		return consumed
	}
	if string(key) != res.Config.Key() {
		// The payload is intact but journaled under the wrong science
		// identity (writer bug or tampering): quarantine, don't trust.
		st.KeyMismatch++
		if damaged != nil {
			damaged(b[:consumed])
		}
		return consumed
	}
	if res.Errored() {
		st.Errored++
		return consumed
	}
	st.V2++
	st.Records++
	visit(string(key), res)
	return consumed
}

func parseV1Line(line []byte, st *JournalStats, visit func(string, Result), damaged func([]byte)) {
	var res Result
	if err := json.Unmarshal(line, &res); err != nil {
		st.Corrupt++
		if damaged != nil {
			damaged(line)
		}
		return
	}
	if res.Errored() {
		st.Errored++
		return
	}
	st.V1++
	st.Records++
	visit(res.Config.Key(), res)
}

// FsckReport summarizes a journal integrity scan.
type FsckReport struct {
	Path           string
	Stats          JournalStats
	Live           int    // distinct live results after last-write-wins dedup
	Dropped        int    // records/regions a repair drops from the journal
	Repaired       bool   // journal was rewritten as a compacted clean v2 file
	QuarantineFile string // side file holding damaged raw data, if any was saved
}

// Dirty reports whether the journal needs a repair pass: any damage,
// redundant or errored records, or legacy v1 records awaiting upgrade.
func (r FsckReport) Dirty() bool {
	s := r.Stats
	return s.Damaged() > 0 || s.Duplicates > 0 || s.Errored > 0 || s.V1 > 0
}

// String renders the report in sweepd's one-line-per-fact log style.
func (r FsckReport) String() string {
	s := r.Stats
	return fmt.Sprintf("%d records (%d v2, %d v1), %d live, %d duplicate, %d errored, %d corrupt, %d key-mismatched, %d oversized region(s)",
		s.Records, s.V2, s.V1, r.Live, s.Duplicates, s.Errored, s.Corrupt, s.KeyMismatch, s.Oversized)
}

// FsckJournal verifies the journal at path — per-record CRCs, duplicate-key
// consistency, science-key/result agreement — and, when repair is true and
// anything is wrong, quarantines damaged raw lines to path+".quarantined"
// and rewrites the journal as a compacted v2 file holding exactly the live
// results. sweepd -fsck and the boot-time integrity scan both use this.
func FsckJournal(path string, repair bool) (FsckReport, error) {
	ck, err := OpenCheckpoint(path)
	if err != nil {
		return FsckReport{Path: path}, err
	}
	defer ck.Close()
	rep := fsckReport(ck)
	if !repair || !rep.Dirty() {
		return rep, nil
	}
	qfile, err := ck.Repair()
	if err != nil {
		return rep, err
	}
	rep.Repaired = true
	rep.QuarantineFile = qfile
	return rep, nil
}

func fsckReport(ck *Checkpoint) FsckReport {
	st := ck.Stats()
	return FsckReport{
		Path:    ck.path,
		Stats:   st,
		Live:    ck.Len(),
		Dropped: st.Damaged() + st.Errored + st.Duplicates,
	}
}

// Repair quarantines the damaged raw lines retained at load (appending
// them to path+".quarantined", returned when written) and compacts the
// journal into a clean v2 snapshot of the live results.
func (c *Checkpoint) Repair() (string, error) {
	c.mu.Lock()
	samples := c.damaged
	c.damaged = nil
	c.mu.Unlock()
	qfile := ""
	if len(samples) > 0 {
		qfile = c.path + ".quarantined"
		qf, err := os.OpenFile(qfile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return "", fmt.Errorf("experiment: checkpoint quarantine %s: %w", qfile, err)
		}
		for _, line := range samples {
			if _, err := qf.Write(append(line, '\n')); err != nil {
				qf.Close()
				return "", fmt.Errorf("experiment: checkpoint quarantine %s: %w", qfile, err)
			}
		}
		if err := qf.Close(); err != nil {
			return "", fmt.Errorf("experiment: checkpoint quarantine %s: %w", qfile, err)
		}
	}
	if err := c.Compact(); err != nil {
		return qfile, err
	}
	return qfile, nil
}
