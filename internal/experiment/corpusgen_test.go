package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
)

// TestWriteJournalFuzzCorpus regenerates the checked-in seed corpus for
// FuzzJournalV2Reload when JOURNAL_CORPUS=1 — the corruption shapes the
// fuzzer must always start from: legacy v1 journals, truncated headers,
// and flipped-bit (CRC-failing) v2 records.
func TestWriteJournalFuzzCorpus(t *testing.T) {
	if os.Getenv("JOURNAL_CORPUS") == "" {
		t.Skip("set JOURNAL_CORPUS=1 to regenerate the seed corpus")
	}
	mk := func(seed uint64, jain float64) []byte {
		res := Result{
			Config: quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, seed, time.Second).Normalize(),
			Jain:   jain,
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	frameOf := func(data []byte) []byte {
		fr, _, err := encodeFrame(mustUnmarshalResult(data))
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	v1a, v1b := mk(1, 0.9), mk(2, 0.5)
	flipped := frameOf(v1b)
	flipped[len(flipped)/2] ^= 0x01
	corpus := map[string][]byte{
		"v1-journal":       append(append(append([]byte{}, v1a...), '\n'), append(v1b, '\n')...),
		"truncated-header": []byte(journalHeaderV2[:9]),
		"flipped-bit-record": append(append(append([]byte(journalHeaderV2+"\n"), frameOf(v1a)...),
			flipped...), frameOf(v1a)...),
		"mixed-v1-v2": append(append(append([]byte(journalHeaderV2+"\n"), frameOf(v1a)...), v1b...), '\n'),
	}
	dir := "testdata/fuzz/FuzzJournalV2Reload"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range corpus {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(dir+"/"+name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
