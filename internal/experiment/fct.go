package experiment

import (
	"sort"
	"time"

	"repro/internal/aqm"
	"repro/internal/flows"
	"repro/internal/metrics"
	"repro/internal/units"
)

// FCTClass is one size class's flow-completion-time statistics, read off
// the runner's bounded percentile sketch at end of run. Durations are
// integer nanoseconds from deterministic sketches, so the JSON is
// byte-identical across worker counts and replay.
type FCTClass struct {
	Class string        `json:"class"`
	Count uint64        `json:"count"`
	Bytes int64         `json:"bytes"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Mean  time.Duration `json:"mean_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

// FCTResult is the open-loop workload's outcome for one run.
type FCTResult struct {
	Opened    int `json:"opened"`    // flows that arrived and attached
	Completed int `json:"completed"` // flows that finished their transfer
	Open      int `json:"open"`      // still transferring at end of run
	// Classes holds "all" first, then the non-empty size classes in
	// small/medium/large order.
	Classes []FCTClass `json:"classes"`
}

// Class returns the named class's stats, or nil.
func (f *FCTResult) Class(name string) *FCTClass {
	if f == nil {
		return nil
	}
	for i := range f.Classes {
		if f.Classes[i].Class == name {
			return &f.Classes[i]
		}
	}
	return nil
}

// FCTFromRunner reads a finished runner's sketches into the Result form.
// The "all" class is always present (even when zero flows completed, so a
// served result still shows the workload ran); per-size classes are
// included only when non-empty.
func FCTFromRunner(r *flows.Runner) *FCTResult {
	out := &FCTResult{
		Opened:    r.Opened(),
		Completed: r.Completed(),
		Open:      r.Open(),
	}
	for c := flows.ClassAll; c < flows.NumSizeClasses; c++ {
		s := r.Sketch(c)
		if c != flows.ClassAll && s.Count() == 0 {
			continue
		}
		out.Classes = append(out.Classes, FCTClass{
			Class: c.String(),
			Count: s.Count(),
			Bytes: r.ClassBytes(c),
			P50:   s.Quantile(0.50),
			P95:   s.Quantile(0.95),
			P99:   s.Quantile(0.99),
			Mean:  s.Mean(),
			Min:   s.Min(),
			Max:   s.Max(),
		})
	}
	return out
}

// FCTHarmCell is one row of the harm-to-FCT matrix: for a pairing × AQM,
// the mean Ware harm the long-running flows inflicted on the background
// population's completion times, relative to the solo baseline of the
// same (AQM, queue, bandwidth, seed) cell. Harm on the p99 is usually the
// headline: tail completion times are where elephants hurt mice first.
type FCTHarmCell struct {
	Pairing  Pairing  `json:"pairing"`
	AQM      aqm.Kind `json:"aqm"`
	HarmP50  float64  `json:"harm_p50"`
	HarmP95  float64  `json:"harm_p95"`
	HarmP99  float64  `json:"harm_p99"`
	HarmMean float64  `json:"harm_mean"`
	// N counts the (queue, bandwidth, seed) conditions averaged; Unmatched
	// counts competition results that had no solo baseline in the set.
	N         int `json:"n"`
	Unmatched int `json:"unmatched,omitempty"`
}

// fctBaseKey identifies the condition a solo baseline is shared across:
// everything that shapes the background flows' path except the competing
// pairing.
type fctBaseKey struct {
	aqm   aqm.Kind
	queue float64
	bw    units.Bandwidth
	seed  uint64
}

// HarmFCTMatrix computes the solo-vs-competition harm matrix from a mixed
// result set: results with SoloFCT are the baselines, every other result
// carrying FCT data is a competition measurement matched to the baseline
// of its (AQM, queue, bandwidth, seed) condition. Harm is computed on the
// "all" size class's p50/p95/p99/mean and averaged per pairing × AQM.
// Rows come back in Table-3 order. Results sets without FCT data (or
// without baselines) yield an empty matrix.
func HarmFCTMatrix(results []Result) []FCTHarmCell {
	solo := map[fctBaseKey]*FCTClass{}
	for i := range results {
		r := &results[i]
		if r.Errored() || !r.Config.SoloFCT {
			continue
		}
		if c := r.FCT.Class("all"); c != nil && c.Count > 0 {
			solo[fctBaseKey{r.Config.AQM, r.Config.QueueBDP, r.Config.Bottleneck, r.Config.Seed}] = c
		}
	}

	type acc struct {
		cell FCTHarmCell
		p50  []float64
		p95  []float64
		p99  []float64
		mean []float64
	}
	cells := map[CellKey]*acc{}
	for i := range results {
		r := &results[i]
		if r.Errored() || r.Config.SoloFCT || r.FCT == nil {
			continue
		}
		comp := r.FCT.Class("all")
		if comp == nil || comp.Count == 0 {
			continue
		}
		k := CellKey{r.Config.Pairing, r.Config.AQM, 0, 0}
		a := cells[k]
		if a == nil {
			a = &acc{cell: FCTHarmCell{Pairing: r.Config.Pairing, AQM: r.Config.AQM}}
			cells[k] = a
		}
		base := solo[fctBaseKey{r.Config.AQM, r.Config.QueueBDP, r.Config.Bottleneck, r.Config.Seed}]
		if base == nil {
			a.cell.Unmatched++
			continue
		}
		a.p50 = append(a.p50, metrics.HarmFCT(float64(base.P50), float64(comp.P50)))
		a.p95 = append(a.p95, metrics.HarmFCT(float64(base.P95), float64(comp.P95)))
		a.p99 = append(a.p99, metrics.HarmFCT(float64(base.P99), float64(comp.P99)))
		a.mean = append(a.mean, metrics.HarmFCT(float64(base.Mean), float64(comp.Mean)))
		a.cell.N++
	}

	out := make([]FCTHarmCell, 0, len(cells))
	for _, a := range cells {
		if a.cell.N == 0 && a.cell.Unmatched == 0 {
			continue
		}
		a.cell.HarmP50 = metrics.MeanFinite(a.p50)
		a.cell.HarmP95 = metrics.MeanFinite(a.p95)
		a.cell.HarmP99 = metrics.MeanFinite(a.p99)
		a.cell.HarmMean = metrics.MeanFinite(a.mean)
		out = append(out, a.cell)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := aqmOrder(out[i].AQM), aqmOrder(out[j].AQM)
		if ai != aj {
			return ai < aj
		}
		pi, pj := pairingOrder(out[i].Pairing), pairingOrder(out[j].Pairing)
		if pi != pj {
			return pi < pj
		}
		return out[i].Pairing.String() < out[j].Pairing.String()
	})
	return out
}
