package experiment

import (
	"math"
	"sort"

	"repro/internal/aqm"
	"repro/internal/cca"
	"repro/internal/metrics"
	"repro/internal/units"
)

// CellKey identifies one averaged grid cell (all seeds of one condition).
type CellKey struct {
	Pairing    Pairing
	AQM        aqm.Kind
	QueueBDP   float64
	Bottleneck units.Bandwidth
}

// Cell is the seed-averaged measurement for one condition.
type Cell struct {
	Key         CellKey
	SenderBps   [2]float64 // mean per-sender throughput
	Jain        float64
	Utilization float64
	Retransmits float64 // mean total retransmissions
	// Harm is the asymmetric counterpart to Jain (Ware et al., HotNets
	// '19): the mean, over replicas, of the worse sender's normalized
	// shortfall below its fair share of the bottleneck (capacity/2). Zero
	// when both senders hold their fair share; approaches 1 as one sender
	// is starved. Unlike Jain it also charges utilization collapse: two
	// senders sharing a dead link are perfectly fair but maximally harmed.
	Harm float64
	N    int // replicas averaged

	// Replica spread (sample standard deviations; 0 when N < 2).
	JainStd float64
	UtilStd float64
}

// Summary aggregates a result set by condition.
type Summary struct {
	cells map[CellKey]*Cell
}

// Summarize averages results over seeds, recording the replica spread.
// Errored results (panicked or watchdog-aborted configurations) carry no
// measurements and are skipped.
func Summarize(results []Result) *Summary {
	acc := map[CellKey]*Cell{}
	jains := map[CellKey][]float64{}
	utils := map[CellKey][]float64{}
	for _, r := range results {
		if r.Errored() {
			continue
		}
		if r.Config.SoloFCT {
			// Solo FCT baselines run no long-running flows: their sender
			// throughput, fairness and utilization are not grid science.
			// They exist only as the denominator of HarmFCTMatrix.
			continue
		}
		k := CellKey{r.Config.Pairing, r.Config.AQM, r.Config.QueueBDP, r.Config.Bottleneck}
		c := acc[k]
		if c == nil {
			c = &Cell{Key: k}
			acc[k] = c
		}
		c.SenderBps[0] += r.SenderBps[0]
		c.SenderBps[1] += r.SenderBps[1]
		c.Jain += r.Jain
		c.Utilization += r.Utilization
		c.Retransmits += float64(r.TotalRetransmits)
		c.Harm += resultHarm(r)
		c.N++
		jains[k] = append(jains[k], r.Jain)
		utils[k] = append(utils[k], r.Utilization)
	}
	for k, c := range acc {
		n := float64(c.N)
		c.SenderBps[0] /= n
		c.SenderBps[1] /= n
		c.Jain /= n
		c.Utilization /= n
		c.Retransmits /= n
		c.Harm /= n
		c.JainStd = metrics.Stddev(jains[k])
		c.UtilStd = metrics.Stddev(utils[k])
	}
	return &Summary{cells: acc}
}

// resultHarm is one replica's harm: the worse sender's shortfall below its
// fair share of the bottleneck, capacity/2 standing in for the solo
// baseline (a lone elephant saturates the link, so its fair-share
// entitlement under competition is half of it).
func resultHarm(r Result) float64 {
	fair := float64(r.Config.Bottleneck) / 2
	h := metrics.Harm(fair, r.SenderBps[0])
	if h2 := metrics.Harm(fair, r.SenderBps[1]); h2 > h {
		h = h2
	}
	if math.IsInf(h, 1) { // zero-capacity config: no baseline to be harmed against
		return 0
	}
	return h
}

// Lookup returns the cell for a condition, or nil.
func (s *Summary) Lookup(p Pairing, a aqm.Kind, q float64, bw units.Bandwidth) *Cell {
	return s.cells[CellKey{p, a, q, bw}]
}

// Cells returns all cells in a deterministic order.
func (s *Summary) Cells() []*Cell {
	out := make([]*Cell, 0, len(s.cells))
	for _, c := range s.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Pairing != b.Pairing {
			return a.Pairing.String() < b.Pairing.String()
		}
		if a.AQM != b.AQM {
			return a.AQM < b.AQM
		}
		if a.QueueBDP != b.QueueBDP {
			return a.QueueBDP < b.QueueBDP
		}
		return a.Bottleneck < b.Bottleneck
	})
	return out
}

// QueueMults returns the distinct buffer multipliers present, ascending.
func (s *Summary) QueueMults() []float64 {
	seen := map[float64]bool{}
	for k := range s.cells {
		seen[k.QueueBDP] = true
	}
	out := make([]float64, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Float64s(out)
	return out
}

// Bandwidths returns the distinct bottleneck bandwidths present, ascending.
func (s *Summary) Bandwidths() []units.Bandwidth {
	seen := map[units.Bandwidth]bool{}
	for k := range s.cells {
		seen[k.Bottleneck] = true
	}
	out := make([]units.Bandwidth, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Pairings returns the distinct pairings present, in paper order where
// possible.
func (s *Summary) Pairings() []Pairing {
	seen := map[Pairing]bool{}
	for k := range s.cells {
		seen[k.Pairing] = true
	}
	var out []Pairing
	for _, p := range PaperPairings() {
		if seen[p] {
			out = append(out, p)
			delete(seen, p)
		}
	}
	rest := make([]Pairing, 0, len(seen))
	for p := range seen {
		rest = append(rest, p)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].String() < rest[j].String() })
	return append(out, rest...)
}

// AQMs returns the distinct disciplines present, in paper order.
func (s *Summary) AQMs() []aqm.Kind {
	seen := map[aqm.Kind]bool{}
	for k := range s.cells {
		seen[k.AQM] = true
	}
	var out []aqm.Kind
	for _, a := range aqm.Kinds() {
		if seen[a] {
			out = append(out, a)
		}
	}
	return out
}

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Pairing Pairing
	AQM     aqm.Kind
	AvgPhi  float64 // Avg(φ): mean utilization across all conditions
	AvgRR   float64 // Avg(RR): mean retransmissions relative to CUBIC-vs-CUBIC
	AvgJain float64 // Avg(J_index)
	AvgHarm float64 // Avg(H): mean per-cell harm (asymmetric unfairness)
}

// Table3 computes the overall performance comparison: for every pairing ×
// AQM, the utilization, fairness, and CUBIC-normalized retransmission
// ratios averaged over all buffer sizes and bandwidths (eq. 4 and §5.5).
func (s *Summary) Table3() []Table3Row {
	cubicRef := Pairing{cca.Cubic, cca.Cubic}
	var rows []Table3Row
	for _, a := range s.AQMs() {
		for _, p := range s.Pairings() {
			var phis, jains, harms, rrs []float64
			for _, q := range s.QueueMults() {
				for _, bw := range s.Bandwidths() {
					c := s.Lookup(p, a, q, bw)
					if c == nil {
						continue
					}
					phis = append(phis, c.Utilization)
					jains = append(jains, c.Jain)
					harms = append(harms, c.Harm)
					if ref := s.Lookup(cubicRef, a, q, bw); ref != nil {
						rrs = append(rrs, metrics.RelativeRetransmissions(
							uint64(c.Retransmits+0.5), uint64(ref.Retransmits+0.5)))
					}
				}
			}
			if len(phis) == 0 {
				continue
			}
			rows = append(rows, Table3Row{
				Pairing: p,
				AQM:     a,
				AvgPhi:  metrics.Mean(phis),
				AvgRR:   metrics.MeanFinite(rrs),
				AvgJain: metrics.Mean(jains),
				AvgHarm: metrics.Mean(harms),
			})
		}
	}
	// Paper order: grouped by AQM (FIFO, RED, FQ_CODEL), pairings inside.
	sort.SliceStable(rows, func(i, j int) bool {
		ai, aj := aqmOrder(rows[i].AQM), aqmOrder(rows[j].AQM)
		if ai != aj {
			return ai < aj
		}
		return pairingOrder(rows[i].Pairing) < pairingOrder(rows[j].Pairing)
	})
	return rows
}

func aqmOrder(a aqm.Kind) int {
	for i, k := range aqm.Kinds() {
		if a == k {
			return i
		}
	}
	return 99
}

func pairingOrder(p Pairing) int {
	// Table 3 order: intra/inter interleaved as printed in the paper.
	order := []Pairing{
		{cca.BBRv1, cca.BBRv1},
		{cca.BBRv1, cca.Cubic},
		{cca.BBRv2, cca.BBRv2},
		{cca.BBRv2, cca.Cubic},
		{cca.HTCP, cca.HTCP},
		{cca.HTCP, cca.Cubic},
		{cca.Reno, cca.Reno},
		{cca.Reno, cca.Cubic},
		{cca.Cubic, cca.Cubic},
	}
	for i, q := range order {
		if p == q {
			return i
		}
	}
	return 99
}
