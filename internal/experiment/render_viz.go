package experiment

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/aqm"
	"repro/internal/units"
	"repro/internal/viz"
)

// RenderThroughputBars draws one Figure 2/4 panel (a single pairing at one
// bandwidth) as a grouped bar chart: two bars per buffer size.
func (s *Summary) RenderThroughputBars(p Pairing, kind aqm.Kind, bw units.Bandwidth) string {
	g := &viz.GroupedBars{
		Title:   fmt.Sprintf("%s, AQM=%s, %v", p, kind, bw),
		SeriesA: string(p.CCA1),
		SeriesB: string(p.CCA2),
		Unit:    "Mbps",
	}
	for _, q := range s.QueueMults() {
		c := s.Lookup(p, kind, q, bw)
		if c == nil {
			continue
		}
		g.Categories = append(g.Categories, fmt.Sprintf("%gxBDP", q))
		g.A = append(g.A, c.SenderBps[0]/1e6)
		g.B = append(g.B, c.SenderBps[1]/1e6)
	}
	if len(g.Categories) == 0 {
		return ""
	}
	return g.Render()
}

// RenderJainMatrix draws a Figure 3/5/6 panel as a shaded matrix: rows are
// pairings, columns bandwidths, cells the Jain index at one buffer size.
func (s *Summary) RenderJainMatrix(kind aqm.Kind, queueBDP float64) string {
	m := &viz.Matrix{
		Title: fmt.Sprintf("Jain's index, AQM=%s, buffer=%gxBDP", kind, queueBDP),
		Lo:    0.5,
		Hi:    1.0,
	}
	for _, bw := range s.Bandwidths() {
		m.ColNames = append(m.ColNames, bw.String())
	}
	for _, p := range s.Pairings() {
		row := make([]float64, len(m.ColNames))
		any := false
		for j, bw := range s.Bandwidths() {
			if c := s.Lookup(p, kind, queueBDP, bw); c != nil {
				row[j] = c.Jain
				any = true
			} else {
				row[j] = math.NaN()
			}
		}
		if any {
			m.RowNames = append(m.RowNames, p.String())
			m.Values = append(m.Values, row)
		}
	}
	return m.Render()
}

// RenderUtilizationMatrix draws a Figure 7 panel as a shaded matrix of φ.
func (s *Summary) RenderUtilizationMatrix(kind aqm.Kind, queueBDP float64) string {
	m := &viz.Matrix{
		Title: fmt.Sprintf("Link utilization, AQM=%s, buffer=%gxBDP (intra-CCA)", kind, queueBDP),
		Lo:    0.4,
		Hi:    1.0,
	}
	for _, bw := range s.Bandwidths() {
		m.ColNames = append(m.ColNames, bw.String())
	}
	for _, p := range IntraPairings() {
		row := make([]float64, len(m.ColNames))
		any := false
		for j, bw := range s.Bandwidths() {
			if c := s.Lookup(p, kind, queueBDP, bw); c != nil {
				row[j] = c.Utilization
				any = true
			} else {
				row[j] = math.NaN()
			}
		}
		if any {
			m.RowNames = append(m.RowNames, string(p.CCA1))
			m.Values = append(m.Values, row)
		}
	}
	return m.Render()
}

// RenderSenderSparklines renders per-sender throughput across buffer sizes
// as compact sparklines, one line per bandwidth — the full Figure 2 grid at
// a glance.
func (s *Summary) RenderSenderSparklines(p Pairing, kind aqm.Kind) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s, AQM=%s — per-sender throughput across buffer sizes %v\n",
		p, kind, s.QueueMults())
	for _, bw := range s.Bandwidths() {
		var a1, a2 []float64
		for _, q := range s.QueueMults() {
			if c := s.Lookup(p, kind, q, bw); c != nil {
				a1 = append(a1, c.SenderBps[0])
				a2 = append(a2, c.SenderBps[1])
			}
		}
		if len(a1) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %-8s %s   %-8s %s\n", bw,
			p.CCA1, viz.Sparkline(a1), p.CCA2, viz.Sparkline(a2))
	}
	return b.String()
}
