package experiment

import (
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/cca"
)

func hardeningConfigs(n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2,
			uint64(i+1), 2*time.Second)
	}
	return cfgs
}

// withPanicOn installs a test hook that panics for configs whose seed is in
// the given set, restoring the hook on cleanup.
func withPanicOn(t *testing.T, seeds ...uint64) *atomic.Int64 {
	t.Helper()
	bad := map[uint64]bool{}
	for _, s := range seeds {
		bad[s] = true
	}
	var runs atomic.Int64
	prev := testHookBeforeRun
	testHookBeforeRun = func(cfg Config) {
		runs.Add(1)
		if bad[cfg.Seed] {
			panic("injected failure")
		}
	}
	t.Cleanup(func() { testHookBeforeRun = prev })
	return &runs
}

// TestRunAllSurvivesPanic: a configuration that panics must become an
// errored Result identified by its config ID while every other
// configuration still completes.
func TestRunAllSurvivesPanic(t *testing.T) {
	cfgs := hardeningConfigs(4)
	withPanicOn(t, cfgs[1].Seed)

	results, err := RunAllOpts(cfgs, RunAllOptions{Workers: 2, KeepGoing: true})
	if err != nil {
		t.Fatalf("KeepGoing sweep returned error: %v", err)
	}
	for i, res := range results {
		if i == 1 {
			if !res.Errored() || !strings.Contains(res.Error, "injected failure") {
				t.Fatalf("panicked config not reported: %+v", res)
			}
			if res.Config.ID() != cfgs[1].Normalize().ID() {
				t.Fatalf("errored result misidentified: %s", res.Config.ID())
			}
			continue
		}
		if res.Errored() {
			t.Fatalf("config %d errored: %s", i, res.Error)
		}
		if res.Utilization <= 0 {
			t.Fatalf("config %d did not actually run: %+v", i, res)
		}
	}

	// Without KeepGoing the sweep error names the failed config, but only
	// after every configuration was attempted.
	results, err = RunAllOpts(cfgs, RunAllOptions{Workers: 2})
	if err == nil {
		t.Fatal("strict sweep swallowed the failure")
	}
	if !strings.Contains(err.Error(), cfgs[1].Normalize().ID()) {
		t.Fatalf("sweep error does not identify the config: %v", err)
	}
	for i, res := range results {
		if i != 1 && res.Errored() {
			t.Fatalf("strict mode abandoned config %d", i)
		}
	}
}

// TestRunAllWatchdogAbort: a configuration with an impossible event budget
// must be reported errored without disturbing its neighbours.
func TestRunAllWatchdogAbort(t *testing.T) {
	cfgs := hardeningConfigs(3)
	cfgs[1].MaxEvents = 1000 // a 2 s run needs far more events than this

	results, err := RunAllOpts(cfgs, RunAllOptions{Workers: 3, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !results[1].Errored() || !strings.Contains(results[1].Error, "watchdog") {
		t.Fatalf("watchdog abort not reported: %+v", results[1])
	}
	if results[0].Errored() || results[2].Errored() {
		t.Fatal("watchdog abort leaked into healthy configs")
	}
}

// TestCheckpointResume: a resumed sweep must not re-run configurations
// already journaled, must re-run errored ones, and must produce the same
// results either way.
func TestCheckpointResume(t *testing.T) {
	cfgs := hardeningConfigs(4)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// First pass: config 2 panics, the rest complete and are journaled.
	runs := withPanicOn(t, cfgs[2].Seed)
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunAllOpts(cfgs, RunAllOptions{Workers: 2, KeepGoing: true, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 4 {
		t.Fatalf("first pass ran %d configs, want 4", got)
	}
	if ck.Len() != 3 {
		t.Fatalf("checkpoint has %d results, want 3 (errored config must not journal)", ck.Len())
	}
	ck.Close()

	// Second pass, fresh process: only the previously-errored config runs.
	runs = withPanicOn(t) // no panics this time
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 3 {
		t.Fatalf("reloaded checkpoint has %d results, want 3", ck2.Len())
	}
	var progress []Progress
	second, err := RunAllOpts(cfgs, RunAllOptions{
		Workers:    2,
		Checkpoint: ck2,
		OnProgress: func(p Progress) { progress = append(progress, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("resume ran %d configs, want 1", got)
	}
	if len(progress) != 1 || progress[0].Skipped != 3 || progress[0].Done != 4 {
		t.Fatalf("resume progress: %+v", progress)
	}
	for i := range cfgs {
		if second[i].Errored() {
			t.Fatalf("config %d errored on resume: %s", i, second[i].Error)
		}
		if i != 2 && !reflect.DeepEqual(second[i], first[i]) {
			t.Fatalf("config %d: resumed result differs from journaled original", i)
		}
	}
	if ck2.Len() != 4 {
		t.Fatalf("checkpoint after resume has %d results, want 4", ck2.Len())
	}
}

// TestCheckpointToleratesTornLine: a torn final line (crash mid-write) must
// cost exactly that one configuration a re-run, nothing more.
func TestCheckpointToleratesTornLine(t *testing.T) {
	cfgs := hardeningConfigs(2)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAllOpts(cfgs, RunAllOptions{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	// Tear the last line in half, as a crash mid-Append would.
	if _, err := ck.f.Seek(-40, 2); err != nil {
		t.Fatal(err)
	}
	if err := ck.f.Truncate(mustSize(t, ck) - 40); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 1 {
		t.Fatalf("torn checkpoint loaded %d results, want 1", ck2.Len())
	}
}

func mustSize(t *testing.T, ck *Checkpoint) int64 {
	t.Helper()
	fi, err := ck.f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRunAllConcurrentProgress: the progress callback must be serialized
// and monotone even with a wide worker pool.
func TestRunAllConcurrentProgress(t *testing.T) {
	cfgs := hardeningConfigs(6)
	var mu sync.Mutex
	lastDone := 0
	_, err := RunAllOpts(cfgs, RunAllOptions{
		Workers: 6,
		OnProgress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Done != lastDone+1 {
				t.Errorf("progress jumped from %d to %d", lastDone, p.Done)
			}
			lastDone = p.Done
			if p.Total != 6 {
				t.Errorf("total = %d", p.Total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != 6 {
		t.Fatalf("final done = %d", lastDone)
	}
}
