package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/units"
)

// auditedCfg returns a quick 100 Mbps config with the invariant auditor on.
func auditedCfg(p Pairing, kind aqm.Kind, seed uint64, dur time.Duration) Config {
	c := quick100M(p, kind, 2, seed, dur)
	c.Audit = true
	return c
}

// TestAuditCleanAcrossGridSample runs a representative slice of the paper
// grid — every AQM (plus standalone CoDel), mixed pairings, with and
// without faults — under the invariant auditor. Any conservation or
// accounting violation panics, so a clean pass here is the simulator
// asserting its own bookkeeping end to end.
func TestAuditCleanAcrossGridSample(t *testing.T) {
	flap := &faults.Profile{
		GE:    &faults.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.5},
		Flaps: []faults.Flap{{At: time.Second, Down: 150 * time.Millisecond}},
	}
	cases := []struct {
		name   string
		cfg    Config
		faults *faults.Profile
	}{
		{"cubic-cubic-fifo", auditedCfg(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 1, 3*time.Second), nil},
		{"bbr1-cubic-red", auditedCfg(Pairing{cca.BBRv1, cca.Cubic}, aqm.KindRED, 2, 3*time.Second), nil},
		{"reno-htcp-codel", auditedCfg(Pairing{cca.Reno, cca.HTCP}, aqm.KindCoDel, 3, 3*time.Second), nil},
		{"bbr2-bbr1-fqcodel", auditedCfg(Pairing{cca.BBRv2, cca.BBRv1}, aqm.KindFQCoDel, 4, 3*time.Second), nil},
		{"cubic-bbr1-fifo-faulted", auditedCfg(Pairing{cca.Cubic, cca.BBRv1}, aqm.KindFIFO, 5, 4*time.Second), flap},
		{"bbr2-reno-fqcodel-faulted", auditedCfg(Pairing{cca.BBRv2, cca.Reno}, aqm.KindFQCoDel, 6, 4*time.Second), flap},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tc.cfg.Faults = tc.faults
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatalf("audited run failed: %v", err)
			}
			if res.Utilization <= 0 {
				t.Fatalf("audited run moved no traffic: %+v", res)
			}
		})
	}
}

// TestViolationPanicBecomesErroredResult proves the contract between the
// auditor and the sweep runner: a violation raised mid-run (panic with a
// *audit.Violation) is recovered per-configuration and journaled as an
// errored Result whose Error carries the full structured report — the
// sweep survives and the evidence is preserved.
func TestViolationPanicBecomesErroredResult(t *testing.T) {
	cfgs := []Config{
		quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 1, time.Second),
		quick100M(Pairing{cca.Cubic, cca.Cubic}, aqm.KindFIFO, 2, 2, time.Second),
	}
	poisoned := cfgs[0].Normalize().ID()

	prev := testHookBeforeRun
	testHookBeforeRun = func(cfg Config) {
		if cfg.Normalize().ID() == poisoned {
			panic(&audit.Violation{
				Layer:    "netem",
				Rule:     "port-conservation",
				ConfigID: poisoned,
				SimNanos: 1_250_000_000,
				Detail:   "port bneck: offered=100 accounted=99 (off by 1)",
				Counters: "ledger: created=100 consumed=99",
			})
		}
	}
	t.Cleanup(func() { testHookBeforeRun = prev })

	results, err := RunAllOpts(cfgs, RunAllOptions{Workers: 2, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Errored() {
		t.Fatal("violation did not surface as an errored result")
	}
	for _, want := range []string{
		"audit violation",
		"[netem/port-conservation]",
		poisoned,
		"t=1.250000s",
		"off by 1",
		"ledger: created=100",
	} {
		if !strings.Contains(results[0].Error, want) {
			t.Errorf("errored result lost report fragment %q:\n%s", want, results[0].Error)
		}
	}
	if results[1].Errored() {
		t.Fatalf("violation in config 0 poisoned config 1: %s", results[1].Error)
	}
}

// TestAuditObservesWithoutPerturbing: the auditor must be a pure observer —
// the same configuration with auditing on and off yields byte-identical
// results (modulo wall clock and the flag itself), and the flag stays out
// of the config identity so checkpoints are shared between the two.
func TestAuditObservesWithoutPerturbing(t *testing.T) {
	base := quick100M(Pairing{cca.BBRv1, cca.Cubic}, aqm.KindFQCoDel, 2, 3, 3*time.Second)
	base.Faults = &faults.Profile{
		Flaps: []faults.Flap{{At: time.Second, Down: 100 * time.Millisecond}},
	}
	audited := base
	audited.Audit = true

	if base.Normalize().ID() != audited.Normalize().ID() {
		t.Fatalf("audit flag leaked into config identity: %s vs %s",
			base.Normalize().ID(), audited.Normalize().ID())
	}

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Run(audited)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(&plain, &checked)
	checked.Config.Audit = false
	jp, _ := json.Marshal(plain)
	jc, _ := json.Marshal(checked)
	if !bytes.Equal(jp, jc) {
		t.Fatalf("auditing perturbed the simulation:\n%s\n%s", jp, jc)
	}
}

// TestAuditedRunAtScaleStaysClean pushes a longer faulted run (10 s, both
// fault classes, FQ-CoDel's per-flow accounting) through the auditor — the
// soak case where a slow leak in any counter would finally show.
func TestAuditedRunAtScaleStaysClean(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := auditedCfg(Pairing{cca.BBRv2, cca.Cubic}, aqm.KindFQCoDel, 11, 10*time.Second)
	cfg.Bottleneck = units.GigabitPerSec
	cfg.Faults = &faults.Profile{
		GE:    &faults.GilbertElliott{PGoodBad: 0.005, PBadGood: 0.2, LossBad: 0.4},
		Flaps: []faults.Flap{{At: 3 * time.Second, Down: 200 * time.Millisecond}, {At: 7 * time.Second, Down: 50 * time.Millisecond}},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("audited soak failed: %v", err)
	}
}
