package tcp

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/audit"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// ackMangler sits on the ACK return path and, driven by the fuzz input,
// drops, delays (reordering), or passes each ACK. It participates in the
// conservation ledger: dropped ACKs and ACKs it is still holding are
// reported through a net probe so the auditor can still balance the books.
type ackMangler struct {
	eng   *sim.Engine
	dst   netem.Receiver
	data  []byte
	i     int
	held  int64
	drops int64
}

func (m *ackMangler) sample() audit.NetSample {
	return audit.NetSample{Name: "ack-mangler", Dropped: m.drops, Resident: m.held}
}

func (m *ackMangler) Receive(now sim.Time, p *packet.Packet) {
	var b byte = 0xFF // no fuzz data: pass everything
	if len(m.data) > 0 {
		b = m.data[m.i%len(m.data)]
		m.i++
	}
	switch {
	case b < 24: // ~9%: drop the ACK
		m.drops++
		packet.Release(p)
	case b < 96: // ~28%: delay it (reorders against later ACKs)
		m.held++
		m.eng.Schedule(time.Duration(b)*50*time.Microsecond, func() {
			m.held--
			m.dst.Receive(m.eng.Now(), p)
		})
	default:
		m.dst.Receive(now, p)
	}
}

// FuzzConnAckProcessing runs a full sender↔receiver transfer where the fuzz
// input programs the hostile parts of the path: byte 0 sets a random-loss
// rate on the data direction (forcing SACK recovery and RTOs), the rest
// schedules ACK drops, delays and reorderings. The runtime invariant
// auditor rides along, so any sequence-space corruption (sndUna regression,
// inflight drift, retransmit of a SACKed segment) or packet leak panics the
// run. This is the fuzz surface for the ACK/SACK state machine.
func FuzzConnAckProcessing(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{40, 0, 200, 10, 90, 95, 23, 24})
	f.Add([]byte{255, 255, 0, 0, 255, 0})
	ramp := make([]byte, 128)
	for i := range ramp {
		ramp[i] = byte(i * 2)
	}
	f.Add(ramp)

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := sim.NewEngine(1)
		aud := audit.New("fuzz-conn-ack")
		eng.SetAuditor(aud)

		owd := 5 * time.Millisecond
		back := netem.NewPort(eng, "back", 10*units.GigabitPerSec, owd, nil, nil)
		bott := netem.NewPort(eng, "bottleneck", 50*units.MegabitPerSec, owd,
			aqm.NewFIFO(64_000), nil)
		if len(data) > 0 {
			bott.SetLoss(float64(data[0]%52) / 256) // up to ~20% data loss
		}

		cc := &stubCC{fixedCwnd: 0}
		conn := NewConn(eng, 1, Config{LimitBytes: 120_000}, cc, func(p *packet.Packet) { bott.Send(p) })
		conn.SetCwnd(32 * conn.MSS())
		rcv := NewReceiver(eng, 1, Config{}.Header, func(p *packet.Packet) { back.Send(p) })
		bott.SetDst(rcv)

		mangle := &ackMangler{eng: eng, dst: conn, data: data}
		if len(data) > 1 {
			mangle.data = data[1:]
		}
		back.SetDst(mangle)
		aud.RegisterNet(mangle.sample)

		conn.Start()
		eng.RunFor(2 * time.Minute)

		// Whatever the mangler did, the state machine must stay coherent:
		// the auditor's deep sequence-space walk and the global conservation
		// ledger both have to close. (Completion is not guaranteed — a
		// hostile enough schedule can starve the transfer — but corruption
		// or leakage is a failure regardless.)
		if err := conn.auditSeqSpace(); err != nil {
			t.Fatalf("sequence space corrupt after mangled run: %v", err)
		}
		aud.Finish()

		// The receiver must never have handed up out-of-order data.
		if g := rcv.Goodput(); g > 120_000 {
			t.Fatalf("receiver goodput %d exceeds the %d-byte transfer", g, 120_000)
		}
		// With no fuzz input the path is clean, so the transfer must finish —
		// otherwise the harness is broken and every fuzz pass is vacuous.
		if len(data) == 0 && rcv.Goodput() != 120_000 {
			t.Fatalf("clean path moved %d of 120000 bytes", rcv.Goodput())
		}
	})
}
