package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/aqm"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestPropertyTransferCompletesUnderAnyLoss: for any loss rate below 30%
// and any small transfer, the protocol must deliver every byte exactly, in
// order, within a generous deadline — the end-to-end reliability invariant.
func TestPropertyTransferCompletesUnderAnyLoss(t *testing.T) {
	f := func(seed uint64, lossPct uint8, sizeKB uint16) bool {
		loss := float64(lossPct%30) / 100
		size := int64(sizeKB%512)*1000 + 10_000

		eng := sim.NewEngine(seed)
		cc := &stubCC{fixedCwnd: 64 * 8900}
		back := netem.NewPort(eng, "back", 10*units.GigabitPerSec, 2*time.Millisecond, nil, nil)
		fwd := netem.NewPort(eng, "fwd", 1*units.GigabitPerSec, 2*time.Millisecond, aqm.NewFIFO(1<<30), nil)
		fwd.SetLoss(loss)
		conn := NewConn(eng, 1, Config{LimitBytes: size}, cc, func(p *packet.Packet) { fwd.Send(p) })
		rcv := NewReceiver(eng, 1, 60, func(p *packet.Packet) { back.Send(p) })
		fwd.SetDst(rcv)
		back.SetDst(conn)
		conn.Start()
		eng.RunFor(10 * time.Minute)
		return rcv.Goodput() == size && conn.Stats().BytesAcked == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInflightNeverNegative: inflight accounting must stay
// non-negative and bounded by cwnd+1 segment under randomized loss.
func TestPropertyInflightNeverNegative(t *testing.T) {
	f := func(seed uint64, lossPct uint8) bool {
		loss := float64(lossPct%20) / 100
		eng := sim.NewEngine(seed)
		cc := &stubCC{fixedCwnd: 32 * 8900}
		back := netem.NewPort(eng, "back", 10*units.GigabitPerSec, time.Millisecond, nil, nil)
		fwd := netem.NewPort(eng, "fwd", 500*units.MegabitPerSec, time.Millisecond, aqm.NewFIFO(40*8960), nil)
		fwd.SetLoss(loss)
		conn := NewConn(eng, 1, Config{}, cc, func(p *packet.Packet) { fwd.Send(p) })
		rcv := NewReceiver(eng, 1, 60, func(p *packet.Packet) { back.Send(p) })
		fwd.SetDst(rcv)
		back.SetDst(conn)
		conn.Start()
		ok := true
		for i := 0; i < 100 && ok; i++ {
			eng.RunFor(50 * time.Millisecond)
			infl := conn.Inflight()
			if infl < 0 || infl > conn.Cwnd()+8900 {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGoodputNeverExceedsLink: no accounting bug may let measured
// goodput exceed what the bottleneck could physically carry.
func TestPropertyGoodputNeverExceedsLink(t *testing.T) {
	f := func(seed uint64, mbps uint16) bool {
		rate := units.Bandwidth(int64(mbps%400)+50) * units.MegabitPerSec
		eng := sim.NewEngine(seed)
		cc := &stubCC{fixedCwnd: 1 << 28}
		back := netem.NewPort(eng, "back", 100*units.GigabitPerSec, time.Millisecond, nil, nil)
		fwd := netem.NewPort(eng, "fwd", rate, time.Millisecond, aqm.NewFIFO(1<<24), nil)
		conn := NewConn(eng, 1, Config{}, cc, func(p *packet.Packet) { fwd.Send(p) })
		rcv := NewReceiver(eng, 1, 60, func(p *packet.Packet) { back.Send(p) })
		fwd.SetDst(rcv)
		back.SetDst(conn)
		conn.Start()
		dur := 5 * time.Second
		eng.RunFor(dur)
		// Payload goodput must be below the line rate (headers eat some).
		gbps := float64(rcv.Goodput()) * 8 / dur.Seconds()
		return gbps <= float64(rate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterminism: identical seeds must yield byte-identical
// outcomes regardless of how the run is segmented in wall-clock terms.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed uint64, chunks int) (int64, uint64) {
		eng := sim.NewEngine(seed)
		cc := &stubCC{fixedCwnd: 48 * 8900}
		back := netem.NewPort(eng, "back", 10*units.GigabitPerSec, 3*time.Millisecond, nil, nil)
		fwd := netem.NewPort(eng, "fwd", 200*units.MegabitPerSec, 3*time.Millisecond, aqm.NewFIFO(20*8960), nil)
		fwd.SetLoss(0.01)
		conn := NewConn(eng, 1, Config{}, cc, func(p *packet.Packet) { fwd.Send(p) })
		rcv := NewReceiver(eng, 1, 60, func(p *packet.Packet) { back.Send(p) })
		fwd.SetDst(rcv)
		back.SetDst(conn)
		conn.Start()
		for i := 0; i < chunks; i++ {
			eng.RunFor(10 * time.Second / time.Duration(chunks))
		}
		return rcv.Goodput(), conn.Stats().Retransmits
	}
	g1, r1 := run(42, 1)
	g2, r2 := run(42, 7)
	if g1 != g2 || r1 != r2 {
		t.Fatalf("segmented run diverged: %d/%d vs %d/%d", g1, r1, g2, r2)
	}
	g3, _ := run(43, 1)
	if g3 == g1 {
		t.Log("different seeds coincidentally equal (unlikely but possible)")
	}
}
