package tcp

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func newDelAckNet(t testing.TB, cc CongestionControl, cfg Config) *testNet {
	t.Helper()
	eng := sim.NewEngine(1)
	n := &testNet{eng: eng}
	back := netem.NewPort(eng, "back", 100*units.GigabitPerSec, 5*time.Millisecond, nil, nil)
	n.bott = netem.NewPort(eng, "bott", 100*units.MegabitPerSec, 5*time.Millisecond, aqm.NewFIFO(1<<30), nil)
	n.conn = NewConn(eng, 1, cfg, cc, func(p *packet.Packet) { n.bott.Send(p) })
	n.rcv = NewDelayedAckReceiver(eng, 1, cfg.Header, func(p *packet.Packet) { back.Send(p) })
	n.bott.SetDst(n.rcv)
	back.SetDst(n.conn)
	return n
}

func TestDelayedAckHalvesAckCount(t *testing.T) {
	cc := &stubCC{fixedCwnd: 64 * 8900}
	n := newDelAckNet(t, cc, Config{LimitBytes: 5_000_000})
	n.conn.Start()
	n.eng.RunFor(20 * time.Second)
	if n.rcv.Goodput() != 5_000_000 {
		t.Fatalf("transfer incomplete: %d", n.rcv.Goodput())
	}
	segments := uint64(5_000_000/8900) + 1
	acks := n.rcv.AcksSent()
	// Roughly one ACK per two segments (plus timer flushes).
	if acks > segments*3/4 {
		t.Fatalf("delayed ACKs barely coalesced: %d acks for %d segments", acks, segments)
	}
	if acks < segments/3 {
		t.Fatalf("too few ACKs: %d for %d segments", acks, segments)
	}
}

func TestDelayedAckTimerFlushesLoneSegment(t *testing.T) {
	cc := &stubCC{fixedCwnd: 8900} // window of one segment: every ACK is lone
	n := newDelAckNet(t, cc, Config{LimitBytes: 8900})
	n.conn.Start()
	n.eng.RunFor(2 * time.Second)
	if n.conn.Stats().BytesAcked != 8900 {
		t.Fatal("lone segment never acknowledged — delayed-ACK timer broken")
	}
	if n.conn.Stats().RTOs != 0 {
		t.Fatal("delack timer (40ms) must fire before the RTO (200ms)")
	}
}

func TestDelayedAckStillRecoveresLoss(t *testing.T) {
	// Out-of-order arrivals must generate immediate dupacks even in
	// delayed-ACK mode, keeping loss detection fast.
	eng := sim.NewEngine(1)
	cc := &stubCC{fixedCwnd: 64 * 8900}
	back := netem.NewPort(eng, "back", 100*units.GigabitPerSec, 5*time.Millisecond, nil, nil)
	fwd := netem.NewPort(eng, "fwd", 100*units.MegabitPerSec, 5*time.Millisecond, aqm.NewFIFO(1<<30), nil)
	fwd.SetLoss(0.01)
	conn := NewConn(eng, 1, Config{LimitBytes: 5_000_000}, cc, func(p *packet.Packet) { fwd.Send(p) })
	rcv := NewDelayedAckReceiver(eng, 1, 60, func(p *packet.Packet) { back.Send(p) })
	fwd.SetDst(rcv)
	back.SetDst(conn)
	done := false
	conn.OnDone(func(*Conn) { done = true })
	conn.Start()
	eng.RunFor(60 * time.Second)
	if !done || rcv.Goodput() != 5_000_000 {
		t.Fatalf("lossy delack transfer incomplete: %d", rcv.Goodput())
	}
}

func TestDelayedAckThroughputComparable(t *testing.T) {
	// Coalesced ACKs must not tank throughput for a windowed sender.
	run := func(delack bool) float64 {
		cc := &stubCC{fixedCwnd: 4 * 775_000}
		var n *testNet
		if delack {
			n = newDelAckNet(t, cc, Config{})
		} else {
			n = newTestNet(t, 100*units.MegabitPerSec, 5*time.Millisecond,
				aqm.NewFIFO(1<<30), cc, Config{})
		}
		n.conn.Start()
		n.eng.RunFor(10 * time.Second)
		return float64(n.rcv.Goodput()) * 8 / 10
	}
	with := run(true)
	without := run(false)
	if with < 0.85*without {
		t.Fatalf("delayed ACKs cost too much: %.1fM vs %.1fM", with/1e6, without/1e6)
	}
}
