// Package tcp implements the transport endpoints the experiments drive: a
// bulk-transfer sender with window- and pacing-based transmission, RACK-style
// loss detection, RFC 6298 retransmission timing, a delivery-rate sampler
// (per the BBR draft), and a receiver that ACKs every segment. Congestion
// control is pluggable through the CongestionControl interface; the five
// algorithms the paper studies live in internal/cca.
package tcp

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// AckSample is everything a congestion controller learns from one ACK.
type AckSample struct {
	Now        sim.Time
	AckedBytes int64         // bytes newly acknowledged cumulatively
	RTT        time.Duration // RTT sample from the triggering segment (0 if none)
	Delivered  int64         // connection's total delivered bytes

	// DeliveryRate is the sampled delivery rate per the BBR
	// delivery-rate-estimation draft; 0 when the sample is invalid.
	DeliveryRate   units.Bandwidth
	RateAppLimited bool

	Inflight   int64 // bytes in flight after processing this ACK
	LostBytes  int64 // bytes newly marked lost while processing this ACK
	CE         bool  // the acked segment was ECN CE-marked
	RoundStart bool  // this ACK begins a new round trip
	InRecovery bool
}

// CongestionControl is the pluggable algorithm deciding cwnd and pacing.
// Implementations mutate the connection through SetCwnd/SetPacingRate and
// read its telemetry accessors. All callbacks run on the simulation
// goroutine.
type CongestionControl interface {
	// Name identifies the algorithm ("cubic", "bbr1", ...).
	Name() string
	// Init is called once when the connection is created.
	Init(c *Conn)
	// OnAck is called for every arriving ACK after the connection has
	// updated its own state.
	OnAck(c *Conn, s AckSample)
	// OnCongestionEvent is called once per recovery episode, when loss (or
	// an ECN echo, if the controller opted in) is first detected.
	OnCongestionEvent(c *Conn)
	// OnRTO is called when the retransmission timer fires.
	OnRTO(c *Conn)
	// OnPacketSent is called after each (re)transmission.
	OnPacketSent(c *Conn, bytes int64)
}

// rttEstimator implements RFC 6298 smoothing with a Linux-style 200 ms
// minimum RTO and exponential backoff.
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	minRTT time.Duration
	rto    time.Duration
	init   bool
}

const (
	minRTO     = 200 * time.Millisecond
	maxRTO     = 60 * time.Second
	initialRTO = time.Second
)

func newRTTEstimator() rttEstimator {
	return rttEstimator{rto: initialRTO}
}

// update folds in one RTT sample.
func (r *rttEstimator) update(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if r.minRTT == 0 || sample < r.minRTT {
		r.minRTT = sample
	}
	if !r.init {
		r.srtt = sample
		r.rttvar = sample / 2
		r.init = true
	} else {
		d := r.srtt - sample
		if d < 0 {
			d = -d
		}
		r.rttvar = (3*r.rttvar + d) / 4
		r.srtt = (7*r.srtt + sample) / 8
	}
	r.rto = r.srtt + 4*r.rttvar
	if r.rto < minRTO {
		r.rto = minRTO
	}
	if r.rto > maxRTO {
		r.rto = maxRTO
	}
}
