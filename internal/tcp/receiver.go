package tcp

import (
	"time"

	"repro/internal/audit"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// Receiver is the data sink of one flow. By default it ACKs every arriving
// segment (cumulative ACK plus the echo fields the sender's loss detection
// and delivery-rate sampler need); with delayed ACKs enabled it
// acknowledges every second in-order segment or after the 40 ms timer,
// while out-of-order arrivals are ACKed immediately (RFC 5681 §4.2).
type Receiver struct {
	eng    *sim.Engine
	flow   packet.FlowID
	hdr    units.ByteSize
	inject func(*packet.Packet) // injects ACKs toward the sender

	rcvNxt int64
	ooo    map[int64]int64 // out-of-order segments: seq -> len

	bytesIn     int64 // all payload bytes that arrived (incl. duplicates)
	dupSegments uint64

	// Delayed-ACK state. pendingAck is held by value (valid when
	// hasPending) so holding an ACK allocates nothing, and delTimer is a
	// persistent reusable timer.
	delayAck   bool
	pendingAck pendingEcho
	hasPending bool
	delTimer   sim.Timer
	acksSent   uint64

	// aud, when non-nil, records the endpoint's side of the conservation
	// ledger: every arriving packet is consumed here, every ACK is created.
	aud *audit.Auditor
}

// pendingEcho holds the echo fields of the newest unacknowledged segment.
type pendingEcho struct {
	ackedSeq      int64
	echoSent      sim.Time
	echoCE        bool
	delivered     int64
	deliveredTime sim.Time
	firstSentTime sim.Time
	appLimited    bool
}

// delAckTimeout mirrors Linux's delayed-ACK timer.
const delAckTimeout = 40 * time.Millisecond

// NewReceiver creates the receiving endpoint for flow id; ACKs are injected
// via inject (typically the server NIC port).
func NewReceiver(eng *sim.Engine, id packet.FlowID, header units.ByteSize, inject func(*packet.Packet)) *Receiver {
	if header <= 0 {
		header = 60
	}
	r := &Receiver{
		eng:    eng,
		flow:   id,
		hdr:    header,
		inject: inject,
		ooo:    make(map[int64]int64),
	}
	r.delTimer.Init(eng, r, nil)
	r.aud = eng.Auditor()
	return r
}

// OnEvent implements sim.Handler: the delayed-ACK timer expired, so flush
// the held acknowledgement.
func (r *Receiver) OnEvent(any) {
	if r.hasPending {
		e := r.pendingAck
		r.hasPending = false
		r.sendAck(e)
	}
}

// Close retires the receiver when its flow is torn down mid-run: the
// delayed-ACK timer is cancelled and any held acknowledgement is dropped
// unsent. A held ACK has not touched the conservation ledger (ACKs are
// only counted as created in sendAck), so closing leaves the ledger
// settled. Stats accessors stay valid after Close.
func (r *Receiver) Close() {
	r.hasPending = false
	r.delTimer.Stop()
}

// NewDelayedAckReceiver returns a receiver with delayed ACKs enabled.
func NewDelayedAckReceiver(eng *sim.Engine, id packet.FlowID, header units.ByteSize, inject func(*packet.Packet)) *Receiver {
	r := NewReceiver(eng, id, header, inject)
	r.delayAck = true
	return r
}

// AcksSent returns how many ACK packets left this receiver.
func (r *Receiver) AcksSent() uint64 { return r.acksSent }

// Goodput returns the contiguous bytes received so far.
func (r *Receiver) Goodput() int64 { return r.rcvNxt }

// BytesIn returns all payload bytes that arrived, duplicates included.
func (r *Receiver) BytesIn() int64 { return r.bytesIn }

// DupSegments returns how many duplicate segments arrived.
func (r *Receiver) DupSegments() uint64 { return r.dupSegments }

// Receive implements netem.Receiver for the data direction.
func (r *Receiver) Receive(now sim.Time, p *packet.Packet) {
	if r.aud != nil {
		r.aud.PacketConsumed()
	}
	if p.Kind != packet.Data {
		packet.Release(p)
		return
	}
	r.bytesIn += p.DataLen

	inOrder := false
	switch {
	case p.Seq == r.rcvNxt:
		inOrder = true
		r.rcvNxt += p.DataLen
		// Merge any buffered continuation.
		for {
			l, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt += l
		}
	case p.Seq > r.rcvNxt:
		if _, dup := r.ooo[p.Seq]; dup {
			r.dupSegments++
		} else {
			r.ooo[p.Seq] = p.DataLen
		}
	default:
		r.dupSegments++ // already delivered
	}

	echo := pendingEcho{
		ackedSeq:      p.Seq,
		echoSent:      p.SentAt,
		echoCE:        p.ECN == packet.CE,
		delivered:     p.Delivered,
		deliveredTime: p.DeliveredTime,
		firstSentTime: p.FirstSentTime,
		appLimited:    p.AppLimited,
	}
	packet.Release(p)

	if !r.delayAck || !inOrder || echo.echoCE {
		// Immediate ACK: per-packet mode, out-of-order arrival (dupack for
		// fast loss detection), or a CE echo the sender must see promptly.
		if r.hasPending {
			r.hasPending = false
			r.delTimer.Stop()
		}
		r.sendAck(echo)
		return
	}

	if r.hasPending {
		// Second in-order segment: ACK now, covering both.
		r.hasPending = false
		r.delTimer.Stop()
		r.sendAck(echo)
		return
	}
	// First in-order segment: hold and arm the delayed-ACK timer.
	r.pendingAck = echo
	r.hasPending = true
	r.delTimer.Reset(delAckTimeout)
}

// sendAck emits a cumulative ACK carrying the given echo fields.
func (r *Receiver) sendAck(e pendingEcho) {
	ack := packet.New()
	ack.Kind = packet.Ack
	ack.Flow = r.flow
	ack.Size = r.hdr
	ack.CumAck = r.rcvNxt
	ack.AckedSeq = e.ackedSeq
	ack.EchoSent = e.echoSent
	ack.EchoCE = e.echoCE
	ack.Delivered = e.delivered
	ack.DeliveredTime = e.deliveredTime
	ack.FirstSentTime = e.firstSentTime
	ack.AppLimited = e.appLimited
	r.acksSent++
	if r.aud != nil {
		r.aud.PacketCreated()
	}
	r.inject(ack)
}
