package tcp

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// stubCC is a fixed-window controller with Reno-ish halving, used to test
// the connection machinery in isolation from the real algorithms.
type stubCC struct {
	fixedCwnd  int64
	congEvents int
	rtoEvents  int
	acks       int
	lastSample AckSample
}

func (s *stubCC) Name() string { return "stub" }
func (s *stubCC) Init(c *Conn) {
	if s.fixedCwnd > 0 {
		c.SetCwnd(s.fixedCwnd)
	}
}
func (s *stubCC) OnAck(c *Conn, a AckSample) {
	s.acks++
	s.lastSample = a
	if s.fixedCwnd > 0 {
		c.SetCwnd(s.fixedCwnd)
	}
}
func (s *stubCC) OnCongestionEvent(c *Conn) {
	s.congEvents++
	if s.fixedCwnd == 0 {
		c.SetCwnd(c.Cwnd() / 2)
	}
}
func (s *stubCC) OnRTO(c *Conn) {
	s.rtoEvents++
	c.SetCwnd(c.MSS())
}
func (s *stubCC) OnPacketSent(c *Conn, bytes int64) {}

// testNet wires one sender and receiver through a bottleneck port and a
// clean return path.
type testNet struct {
	eng  *sim.Engine
	conn *Conn
	rcv  *Receiver
	bott *netem.Port
}

func newTestNet(t testing.TB, rate units.Bandwidth, owd time.Duration, queue aqm.Queue, cc CongestionControl, cfg Config) *testNet {
	t.Helper()
	eng := sim.NewEngine(1)
	n := &testNet{eng: eng}

	// Reverse path: ample bandwidth, same propagation delay.
	back := netem.NewPort(eng, "back", 100*units.GigabitPerSec, owd, nil, nil)
	// Forward path: the bottleneck.
	n.bott = netem.NewPort(eng, "bottleneck", rate, owd, queue, nil)

	n.conn = NewConn(eng, 1, cfg, cc, func(p *packet.Packet) { n.bott.Send(p) })
	n.rcv = NewReceiver(eng, 1, cfg.Header, func(p *packet.Packet) { back.Send(p) })
	n.bott.SetDst(n.rcv)
	back.SetDst(n.conn)
	return n
}

func TestSingleFlowTransfersAllBytes(t *testing.T) {
	cc := &stubCC{fixedCwnd: 64 * 8900}
	n := newTestNet(t, 100*units.MegabitPerSec, 5*time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{LimitBytes: 1_000_000})
	doneAt := sim.Time(0)
	n.conn.OnDone(func(c *Conn) { doneAt = n.eng.Now() })
	n.conn.Start()
	n.eng.RunFor(10 * time.Second)
	if got := n.rcv.Goodput(); got != 1_000_000 {
		t.Fatalf("goodput = %d, want 1000000", got)
	}
	if n.conn.Stats().BytesAcked != 1_000_000 {
		t.Fatalf("acked = %d", n.conn.Stats().BytesAcked)
	}
	if doneAt == 0 {
		t.Fatal("OnDone never fired")
	}
	if n.conn.Stats().Retransmits != 0 {
		t.Fatalf("unexpected retransmits on a clean path: %d", n.conn.Stats().Retransmits)
	}
}

func TestThroughputMatchesWindowOverRTT(t *testing.T) {
	// With a fixed window W and no losses, rate ≈ W/RTT (window-limited).
	w := int64(16 * 8900)
	cc := &stubCC{fixedCwnd: w}
	n := newTestNet(t, 10*units.GigabitPerSec, 31*time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{})
	n.conn.Start()
	dur := 10 * time.Second
	n.eng.RunFor(dur)
	rtt := 62 * time.Millisecond
	wantBytes := float64(w) * dur.Seconds() / rtt.Seconds()
	got := float64(n.conn.Stats().BytesAcked)
	if got < 0.85*wantBytes || got > 1.1*wantBytes {
		t.Fatalf("window-limited goodput = %.0f, want ≈ %.0f", got, wantBytes)
	}
}

func TestSingleFlowFillsBottleneck(t *testing.T) {
	// Big window: throughput should approach the bottleneck rate.
	cc := &stubCC{fixedCwnd: 4 * 775_000} // 4 BDP at 100 Mbps / 62 ms
	n := newTestNet(t, 100*units.MegabitPerSec, 31*time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{})
	n.conn.Start()
	dur := 20 * time.Second
	n.eng.RunFor(dur)
	rate := float64(n.conn.Stats().BytesAcked) * 8 / dur.Seconds()
	if rate < 0.90*100e6 {
		t.Fatalf("utilization too low: %.1f Mbps", rate/1e6)
	}
	if rate > 100e6*1.01 {
		t.Fatalf("goodput exceeds link rate: %.1f Mbps", rate/1e6)
	}
}

func TestLossRecoveryRetransmits(t *testing.T) {
	// A tiny queue forces drops; the transfer must still complete.
	cc := &stubCC{fixedCwnd: 64 * 8900}
	n := newTestNet(t, 50*units.MegabitPerSec, 5*time.Millisecond,
		aqm.NewFIFO(10*8960), cc, Config{LimitBytes: 3_000_000})
	done := false
	n.conn.OnDone(func(c *Conn) { done = true })
	n.conn.Start()
	n.eng.RunFor(30 * time.Second)
	if !done {
		t.Fatalf("transfer incomplete: acked=%d", n.conn.Stats().BytesAcked)
	}
	st := n.conn.Stats()
	if st.Retransmits == 0 {
		t.Fatal("expected retransmissions through the tiny queue")
	}
	if cc.congEvents == 0 {
		t.Fatal("expected congestion events")
	}
	if n.rcv.Goodput() != 3_000_000 {
		t.Fatalf("receiver got %d contiguous bytes", n.rcv.Goodput())
	}
}

func TestRTTEstimator(t *testing.T) {
	r := newRTTEstimator()
	if r.rto != initialRTO {
		t.Fatalf("initial RTO = %v", r.rto)
	}
	r.update(100 * time.Millisecond)
	if r.srtt != 100*time.Millisecond {
		t.Fatalf("first sample srtt = %v", r.srtt)
	}
	if r.rto != 300*time.Millisecond {
		t.Fatalf("rto after first sample = %v, want srtt+4*var = 300ms", r.rto)
	}
	for i := 0; i < 100; i++ {
		r.update(100 * time.Millisecond)
	}
	if r.rttvar > 5*time.Millisecond {
		t.Fatalf("rttvar should converge toward 0 on constant samples: %v", r.rttvar)
	}
	if r.rto < minRTO {
		t.Fatalf("rto below floor: %v", r.rto)
	}
	if r.minRTT != 100*time.Millisecond {
		t.Fatalf("minRTT = %v", r.minRTT)
	}
	r.update(80 * time.Millisecond)
	if r.minRTT != 80*time.Millisecond {
		t.Fatalf("minRTT should track new minimum: %v", r.minRTT)
	}
	r.update(0) // ignored
	r.update(-time.Second)
	if r.minRTT != 80*time.Millisecond {
		t.Fatal("non-positive samples must be ignored")
	}
}

func TestMeasuredRTTMatchesPath(t *testing.T) {
	cc := &stubCC{fixedCwnd: 4 * 8900}
	n := newTestNet(t, 1*units.GigabitPerSec, 31*time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{})
	n.conn.Start()
	n.eng.RunFor(2 * time.Second)
	srtt := n.conn.SRTT()
	if srtt < 62*time.Millisecond || srtt > 64*time.Millisecond {
		t.Fatalf("srtt = %v, want ≈62ms", srtt)
	}
	if n.conn.MinRTT() < 62*time.Millisecond {
		t.Fatalf("minRTT below propagation: %v", n.conn.MinRTT())
	}
}

func TestRTOFiresWhenPathBlackholes(t *testing.T) {
	// Receiver never sees packets (capacity-zero queue drops all): the
	// sender must hit RTO and back off, not spin.
	eng := sim.NewEngine(1)
	cc := &stubCC{fixedCwnd: 8 * 8900}
	conn := NewConn(eng, 1, Config{}, cc, func(p *packet.Packet) { packet.Release(p) })
	conn.Start()
	eng.RunFor(10 * time.Second)
	if cc.rtoEvents == 0 {
		t.Fatal("RTO never fired on a blackholed path")
	}
	st := conn.Stats()
	if st.RTOs == 0 || st.Retransmits == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Exponential backoff: far fewer RTOs than 10s / 200ms.
	if st.RTOs > 10 {
		t.Fatalf("RTO storm: %d fires in 10s, backoff broken", st.RTOs)
	}
}

func TestPacingSmoothsTransmissions(t *testing.T) {
	// With pacing at 10 Mbps and a huge window, send rate must be ~10 Mbps
	// even though the link is 1 Gbps.
	cc := &stubCC{fixedCwnd: 1 << 30}
	n := newTestNet(t, 1*units.GigabitPerSec, 5*time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{})
	n.conn.SetPacingRate(10 * units.MegabitPerSec)
	// Keep the stub from disturbing pacing.
	n.conn.Start()
	dur := 5 * time.Second
	n.eng.RunFor(dur)
	rate := float64(n.conn.Stats().BytesSent) * 8 / dur.Seconds()
	if rate < 8e6 || rate > 12e6 {
		t.Fatalf("paced send rate = %.2f Mbps, want ≈10", rate/1e6)
	}
	// Queue should stay essentially empty.
	if l := n.bott.Queue().Len(); l > 2 {
		t.Fatalf("paced flow built a queue: %d", l)
	}
}

func TestDeliveryRateSampling(t *testing.T) {
	cc := &stubCC{fixedCwnd: 32 * 8900}
	n := newTestNet(t, 100*units.MegabitPerSec, 10*time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{})
	n.conn.Start()
	n.eng.RunFor(5 * time.Second)
	rate := n.conn.Stats().DeliveryRate
	if rate <= 0 {
		t.Fatal("no delivery-rate samples")
	}
	// The sampled rate must never exceed the bottleneck (within rounding).
	if rate > 105*units.MegabitPerSec {
		t.Fatalf("delivery rate %v exceeds bottleneck 100Mbps", rate)
	}
	if rate < 80*units.MegabitPerSec {
		t.Fatalf("delivery rate %v far below bottleneck for a saturating flow", rate)
	}
}

func TestRoundCounting(t *testing.T) {
	cc := &stubCC{fixedCwnd: 16 * 8900}
	n := newTestNet(t, 1*units.GigabitPerSec, 31*time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{})
	n.conn.Start()
	dur := 6200 * time.Millisecond // 100 RTTs
	n.eng.RunFor(dur)
	rounds := n.conn.RoundCount()
	if rounds < 80 || rounds > 120 {
		t.Fatalf("rounds = %d over 100 RTTs", rounds)
	}
}

func TestECNEchoTriggersCongestionEvent(t *testing.T) {
	// RED with ECN marks instead of dropping; the stub must see congestion
	// events without retransmissions.
	cc := &stubCC{}
	q := aqm.NewRED(40*8960, true, aqm.REDParams{Seed: 1})
	n := newTestNet(t, 50*units.MegabitPerSec, 5*time.Millisecond, q, cc,
		Config{ECN: true, InitialCwnd: 10})
	// Grow aggressively via the stub: double cwnd every ACK until congestion.
	cc.fixedCwnd = 0
	n.conn.SetCwnd(200 * 8900)
	n.conn.Start()
	n.eng.RunFor(20 * time.Second)
	if q.Stats().Marked == 0 {
		t.Skip("RED produced no marks in this configuration")
	}
	if cc.congEvents == 0 {
		t.Fatal("CE echoes produced no congestion events")
	}
}

func TestSegDeque(t *testing.T) {
	var d segDeque
	if d.front() != nil || d.pop() != nil {
		t.Fatal("empty deque should return nil")
	}
	for i := 0; i < 100; i++ {
		d.push(&seg{seq: int64(i)})
	}
	for i := 0; i < 40; i++ {
		if s := d.pop(); s.seq != int64(i) {
			t.Fatalf("pop %d got %d", i, s.seq)
		}
	}
	for i := 100; i < 200; i++ {
		d.push(&seg{seq: int64(i)})
	}
	if d.len() != 160 {
		t.Fatalf("len = %d", d.len())
	}
	for i := 0; i < d.len(); i++ {
		if d.at(i).seq != int64(40+i) {
			t.Fatalf("at(%d) = %d", i, d.at(i).seq)
		}
	}
}

func TestStopHaltsTransmission(t *testing.T) {
	cc := &stubCC{fixedCwnd: 8 * 8900}
	n := newTestNet(t, 100*units.MegabitPerSec, 5*time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{})
	n.conn.Start()
	n.eng.RunFor(time.Second)
	sent := n.conn.Stats().BytesSent
	n.conn.Stop()
	n.eng.RunFor(time.Second)
	if got := n.conn.Stats().BytesSent; got != sent {
		t.Fatalf("sent %d bytes after Stop", got-sent)
	}
}

func TestFinalShortSegment(t *testing.T) {
	// LimitBytes not a multiple of MSS: the tail segment must be short.
	cc := &stubCC{fixedCwnd: 64 * 8900}
	n := newTestNet(t, 100*units.MegabitPerSec, time.Millisecond,
		aqm.NewFIFO(1<<30), cc, Config{LimitBytes: 8900*3 + 1234})
	n.conn.Start()
	n.eng.RunFor(5 * time.Second)
	if got := n.rcv.Goodput(); got != 8900*3+1234 {
		t.Fatalf("goodput = %d", got)
	}
}

func BenchmarkSingleFlowSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cc := &stubCC{fixedCwnd: 128 * 8900}
		n := newTestNet(b, 1*units.GigabitPerSec, 10*time.Millisecond,
			aqm.NewFIFO(1<<30), cc, Config{})
		n.conn.Start()
		n.eng.RunFor(time.Second)
	}
}
