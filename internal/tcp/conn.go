package tcp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/audit"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Config parameterizes a connection. Zero values select the paper's setup:
// 8900-byte jumbo payloads, 60-byte headers, IW10.
type Config struct {
	MSS         units.ByteSize // payload bytes per segment (default 8900)
	Header      units.ByteSize // per-packet header overhead (default 60)
	InitialCwnd int            // initial window in segments (default 10)
	ECN         bool           // negotiate ECT(0) on data packets
	// LimitBytes stops the transfer after this many payload bytes
	// (0 = unlimited elephant flow).
	LimitBytes int64
	// DelayedAck enables RFC 1122 delayed acknowledgements on the
	// receiver side (every second in-order segment or 40 ms).
	DelayedAck bool
}

func (cfg *Config) defaults() {
	if cfg.MSS <= 0 {
		cfg.MSS = 8900
	}
	if cfg.Header <= 0 {
		cfg.Header = 60
	}
	if cfg.InitialCwnd <= 0 {
		cfg.InitialCwnd = 10
	}
}

// seg tracks one outstanding segment on the sender.
type seg struct {
	seq        int64
	len        int64
	lastSentAt sim.Time
	sentCount  int
	lost       bool // marked lost, awaiting retransmission
	sacked     bool // delivered out of order (selectively acknowledged)
	inRtxQ     bool // referenced by rtxQ; must not be recycled while set
}

// Stats is a snapshot of a connection's counters.
type Stats struct {
	BytesSent    int64 // payload bytes transmitted, including retransmissions
	BytesAcked   int64 // payload bytes cumulatively acknowledged
	Retransmits  uint64
	RTOs         uint64
	Acks         uint64
	CongEvents   uint64 // recovery episodes entered
	MinRTT       time.Duration
	SRTT         time.Duration
	DeliveryRate units.Bandwidth // latest valid sample
}

// Conn is the sending endpoint of one bulk-transfer flow. It implements
// netem.Receiver for the returning ACK stream.
type Conn struct {
	eng  *sim.Engine
	id   packet.FlowID
	cfg  Config
	cc   CongestionControl
	inj  func(*packet.Packet) // injects data packets toward the receiver
	done func(*Conn)          // optional completion callback

	// Sender sequence state.
	sndUna  int64
	sndNxt  int64
	segs    segDeque
	rtxQ    []*seg
	segFree []*seg // recycled seg records (zero-alloc steady state)

	// Windows. cwnd and ssthresh are in bytes.
	cwnd       int64
	ssthresh   int64
	pacingRate units.Bandwidth
	inflight   int64

	// Pacing.
	nextSendAt sim.Time
	paceTimer  sim.Timer

	// Recovery episode state.
	inRecovery bool
	recoverSeq int64

	// RTT/RTO.
	rtt      rttEstimator
	rtoTimer sim.Timer

	// Delivery-rate sampling (BBR draft).
	delivered     int64
	deliveredTime sim.Time
	firstSentTime sim.Time
	appLimited    bool

	// Round counting.
	roundCount         int64
	nextRoundDelivered int64

	stats   Stats
	started bool
	stopped bool

	// aud, when non-nil, validates sequence-space sanity: it checks cheap
	// per-ACK rules inline, walks the whole segment list every
	// auditDeepCheckEvery ACKs, and re-walks it at end of run.
	aud *audit.Auditor

	// trc, when tracing is enabled on the engine, records cwnd/RTT/RTO
	// events into this flow's telemetry ring. All FlowTracer methods are
	// nil-receiver safe, so call sites need no guard.
	trc *telemetry.FlowTracer
}

// NewConn creates a sender for flow id that injects data packets via inject
// (typically the client NIC port) and is driven by cc.
func NewConn(eng *sim.Engine, id packet.FlowID, cfg Config, cc CongestionControl, inject func(*packet.Packet)) *Conn {
	cfg.defaults()
	c := &Conn{
		eng:      eng,
		id:       id,
		cfg:      cfg,
		cc:       cc,
		inj:      inject,
		ssthresh: math.MaxInt64 / 4,
		rtt:      newRTTEstimator(),
	}
	c.cwnd = int64(cfg.InitialCwnd) * int64(cfg.MSS)
	c.rtoTimer.Init(eng, c, timerRTO)
	c.paceTimer.Init(eng, c, timerPace)
	if a := eng.Auditor(); a != nil {
		c.aud = a
		a.OnFinish("tcp", "seq-space", c.auditSeqSpace)
	}
	if t := eng.Tracer(); t != nil {
		c.trc = t.Flow(uint32(id), cc.Name())
	}
	cc.Init(c)
	return c
}

// auditDeepCheckEvery is how many ACKs pass between O(outstanding) segment
// list walks on an audited connection.
const auditDeepCheckEvery = 64

// auditSeqSpace walks the outstanding segment list and checks the sender's
// sequence-space invariants: segments contiguous and sorted, the list
// spanning exactly [sndUna, sndNxt), and the inflight byte count derived
// from segment flags (not lost, not sacked) matching the count the
// congestion controller sees.
func (c *Conn) auditSeqSpace() error {
	n := c.segs.len()
	if n == 0 {
		if c.inflight != 0 {
			return fmt.Errorf("conn %d: no outstanding segments but inflight=%d", c.id, c.inflight)
		}
		return nil
	}
	var liveBytes int64
	for i := 0; i < n; i++ {
		s := c.segs.at(i)
		if i+1 < n {
			if next := c.segs.at(i + 1); s.seq+s.len != next.seq {
				return fmt.Errorf("conn %d: segment list not contiguous: [%d..%d) then [%d..%d)",
					c.id, s.seq, s.seq+s.len, next.seq, next.seq+next.len)
			}
		}
		if !s.lost && !s.sacked {
			liveBytes += s.len
		}
	}
	front, last := c.segs.front(), c.segs.at(n-1)
	if front.seq > c.sndUna || front.seq+front.len <= c.sndUna {
		return fmt.Errorf("conn %d: first outstanding segment [%d..%d) does not contain sndUna=%d",
			c.id, front.seq, front.seq+front.len, c.sndUna)
	}
	if end := last.seq + last.len; end != c.sndNxt {
		return fmt.Errorf("conn %d: last outstanding segment ends at %d, sndNxt=%d", c.id, end, c.sndNxt)
	}
	if liveBytes != c.inflight {
		return fmt.Errorf("conn %d: segment list implies %d bytes in flight, controller sees %d",
			c.id, liveBytes, c.inflight)
	}
	return nil
}

// timerID distinguishes the connection's persistent timers in OnEvent.
type timerID uint8

const (
	timerRTO timerID = iota
	timerPace
)

// OnEvent implements sim.Handler, dispatching the connection's timers.
func (c *Conn) OnEvent(arg any) {
	switch arg.(timerID) {
	case timerRTO:
		c.onRTO()
	case timerPace:
		c.trySend()
	}
}

// --- accessors used by congestion controllers and telemetry ---

// ID returns the flow id.
func (c *Conn) ID() packet.FlowID { return c.id }

// Now returns the current simulation time.
func (c *Conn) Now() sim.Time { return c.eng.Now() }

// Rand returns the engine's deterministic RNG.
func (c *Conn) Rand() *sim.RNG { return c.eng.RNG() }

// MSS returns the payload bytes per segment.
func (c *Conn) MSS() int64 { return int64(c.cfg.MSS) }

// Cwnd returns the congestion window in bytes.
func (c *Conn) Cwnd() int64 { return c.cwnd }

// SetCwnd sets the congestion window, clamped to at least one segment.
func (c *Conn) SetCwnd(w int64) {
	if w < c.MSS() {
		w = c.MSS()
	}
	c.cwnd = w
}

// SSThresh returns the slow-start threshold in bytes.
func (c *Conn) SSThresh() int64 { return c.ssthresh }

// SetSSThresh sets the slow-start threshold, clamped to two segments.
func (c *Conn) SetSSThresh(v int64) {
	if v < 2*c.MSS() {
		v = 2 * c.MSS()
	}
	c.ssthresh = v
}

// InSlowStart reports cwnd < ssthresh.
func (c *Conn) InSlowStart() bool { return c.cwnd < c.ssthresh }

// InRecovery reports whether a loss-recovery episode is in progress.
func (c *Conn) InRecovery() bool { return c.inRecovery }

// PacingRate returns the configured pacing rate (0 = unpaced, ACK-clocked).
func (c *Conn) PacingRate() units.Bandwidth { return c.pacingRate }

// SetPacingRate enables pacing at rate (0 disables).
func (c *Conn) SetPacingRate(r units.Bandwidth) {
	if r < 0 {
		r = 0
	}
	c.pacingRate = r
}

// Trace returns the flow's telemetry tracer (nil when tracing is off).
// Congestion controllers use it to record state transitions; every
// FlowTracer method is nil-receiver safe, so callers need no guard.
func (c *Conn) Trace() *telemetry.FlowTracer { return c.trc }

// Inflight returns the bytes currently considered in flight.
func (c *Conn) Inflight() int64 { return c.inflight }

// Delivered returns the total payload bytes delivered (cumulatively ACKed).
func (c *Conn) Delivered() int64 { return c.delivered }

// RoundCount returns the number of completed round trips.
func (c *Conn) RoundCount() int64 { return c.roundCount }

// SRTT returns the smoothed RTT (0 before the first sample).
func (c *Conn) SRTT() time.Duration { return c.rtt.srtt }

// MinRTT returns the minimum RTT observed.
func (c *Conn) MinRTT() time.Duration { return c.rtt.minRTT }

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() time.Duration { return c.rtt.rto }

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() Stats {
	s := c.stats
	s.MinRTT = c.rtt.minRTT
	s.SRTT = c.rtt.srtt
	return s
}

// --- lifecycle ---

// Start begins transmitting at the current simulation time.
func (c *Conn) Start() {
	if c.started {
		return
	}
	c.started = true
	c.trySend()
}

// Stop freezes the sender (no new transmissions, timers cancelled).
func (c *Conn) Stop() {
	c.stopped = true
	c.rtoTimer.Stop()
	c.paceTimer.Stop()
}

// OnDone registers a callback invoked when LimitBytes are fully acked.
func (c *Conn) OnDone(fn func(*Conn)) { c.done = fn }

// --- sending ---

// hasAppData reports whether the application still has bytes to send.
func (c *Conn) hasAppData() bool {
	return c.cfg.LimitBytes == 0 || c.sndNxt < c.cfg.LimitBytes
}

// nextSegmentLen returns the payload size of the next new segment.
func (c *Conn) nextSegmentLen() int64 {
	n := c.MSS()
	if c.cfg.LimitBytes > 0 && c.sndNxt+n > c.cfg.LimitBytes {
		n = c.cfg.LimitBytes - c.sndNxt
	}
	return n
}

// trySend transmits as much as the window and pacing gates allow.
func (c *Conn) trySend() {
	if c.stopped || !c.started {
		return
	}
	for {
		// Pick what to send: retransmissions take priority.
		var rtx *seg
		for len(c.rtxQ) > 0 {
			s := c.rtxQ[0]
			if s.lost && !s.sacked && s.seq+s.len > c.sndUna { // still relevant
				rtx = s
				break
			}
			s.inRtxQ = false
			c.rtxQ = c.rtxQ[1:]
		}
		var segLen int64
		if rtx != nil {
			segLen = rtx.len
		} else {
			if !c.hasAppData() {
				c.appLimited = true
				return
			}
			segLen = c.nextSegmentLen()
			if segLen <= 0 {
				return
			}
		}

		// Window gate.
		if c.inflight+segLen > c.cwnd {
			return
		}
		// Pacing gate.
		now := c.eng.Now()
		if c.pacingRate > 0 && now < c.nextSendAt {
			c.armPacing()
			return
		}

		if rtx != nil {
			rtx.inRtxQ = false
			c.rtxQ = c.rtxQ[1:]
			rtx.lost = false
			c.transmit(rtx)
		} else {
			s := c.newSeg(c.sndNxt, segLen)
			c.sndNxt += segLen
			c.segs.push(s)
			c.transmit(s)
		}
	}
}

// newSeg fetches a zeroed seg record from the connection's free list (or
// allocates when the list is empty) — steady state runs allocation-free.
func (c *Conn) newSeg(seq, length int64) *seg {
	if n := len(c.segFree); n > 0 {
		s := c.segFree[n-1]
		c.segFree[n-1] = nil
		c.segFree = c.segFree[:n-1]
		*s = seg{seq: seq, len: length}
		return s
	}
	return &seg{seq: seq, len: length}
}

// freeSeg recycles a fully-acknowledged seg. Segments still referenced by
// the retransmission queue are left for the garbage collector instead
// (recycling them would let a stale rtxQ entry alias a new segment).
func (c *Conn) freeSeg(s *seg) {
	if s.inRtxQ {
		return
	}
	c.segFree = append(c.segFree, s)
}

// armPacing schedules the pacing release timer.
func (c *Conn) armPacing() {
	if c.paceTimer.Pending() {
		return
	}
	c.paceTimer.ResetAt(c.nextSendAt)
}

// transmit puts one segment on the wire.
func (c *Conn) transmit(s *seg) {
	now := c.eng.Now()
	if c.aud != nil {
		if s.sacked {
			c.aud.Failf("tcp", "retransmit-sacked",
				"conn %d: retransmitting segment [%d..%d) already selectively acknowledged",
				c.id, s.seq, s.seq+s.len)
		}
		c.aud.PacketCreated()
	}
	s.lastSentAt = now
	s.sentCount++

	if c.inflight == 0 {
		// Restarting from idle: reset the rate-sample anchors.
		c.firstSentTime = now
		c.deliveredTime = now
	}

	p := packet.New()
	p.Kind = packet.Data
	p.Flow = c.id
	p.Seq = s.seq
	p.DataLen = s.len
	p.Size = units.ByteSize(s.len) + c.cfg.Header
	p.SentAt = now
	p.Retrans = s.sentCount > 1
	if c.cfg.ECN {
		p.ECN = packet.ECT0
	}
	p.Delivered = c.delivered
	p.DeliveredTime = c.deliveredTime
	p.FirstSentTime = c.firstSentTime
	p.AppLimited = c.appLimited

	c.inflight += s.len
	c.stats.BytesSent += s.len
	if s.sentCount > 1 {
		c.stats.Retransmits++
	}
	if c.pacingRate > 0 {
		delta := sim.Duration(units.TransmissionTime(p.Size, c.pacingRate))
		if c.nextSendAt < now {
			c.nextSendAt = now + delta
		} else {
			c.nextSendAt += delta
		}
	}
	c.appLimited = false
	c.inj(p)
	c.armRTO()
	c.cc.OnPacketSent(c, s.len)
}

// --- receiving ACKs ---

// Receive implements netem.Receiver for the ACK return path.
func (c *Conn) Receive(now sim.Time, p *packet.Packet) {
	if c.aud != nil {
		// The sender terminally consumes every packet it receives, whether
		// or not it processes it.
		c.aud.PacketConsumed()
		if p.Kind == packet.Ack && p.CumAck > c.sndNxt {
			c.aud.Failf("tcp", "ack-beyond-sndnxt",
				"conn %d: cumulative ACK %d acknowledges bytes never sent (sndNxt=%d)",
				c.id, p.CumAck, c.sndNxt)
		}
	}
	if p.Kind != packet.Ack || c.stopped {
		packet.Release(p)
		return
	}
	c.stats.Acks++

	// RTT sample from the echoed transmit timestamp. Retransmitted
	// segments can produce ambiguous samples (Karn's rule); the echo is of
	// the transmission that actually arrived, so the sample is safe here.
	var rttSample time.Duration
	if p.EchoSent > 0 {
		rttSample = (now - p.EchoSent).Std()
		c.rtt.update(rttSample)
		c.trc.RTT(int64(now), int64(rttSample), int64(c.rtt.srtt))
	}

	// Selective delivery: the ACK names the exact segment that triggered
	// it, so that segment is known delivered even if a hole below it
	// blocks the cumulative ACK. Without this, RACK marking would declare
	// every not-yet-cum-ACKed segment above a hole lost and flood the
	// path with spurious retransmissions.
	if s := c.segs.find(p.AckedSeq); s != nil && !s.sacked {
		s.sacked = true
		if s.lost {
			s.lost = false // it arrived after all; don't retransmit
		} else {
			c.inflight -= s.len
		}
		// The rate sampler credits delivery when the evidence arrives,
		// like Linux's tcp_rate: SACKed bytes count immediately.
		c.delivered += s.len
		c.deliveredTime = now
	}

	// Cumulative ACK processing. Bytes already credited at SACK time are
	// not credited again.
	newlyAcked := int64(0)
	if p.CumAck > c.sndUna {
		newlyAcked = p.CumAck - c.sndUna
		c.sndUna = p.CumAck
		c.stats.BytesAcked += newlyAcked
		for {
			s := c.segs.front()
			if s == nil || s.seq+s.len > c.sndUna {
				break
			}
			if !s.lost && !s.sacked {
				c.inflight -= s.len
			}
			if !s.sacked {
				c.delivered += s.len
				c.deliveredTime = now
			}
			c.freeSeg(c.segs.pop())
		}
	}

	// Round accounting: the ACKed packet carried the delivered count at its
	// send time; when that catches up to the marker, a round has elapsed.
	roundStart := false
	if p.Delivered >= c.nextRoundDelivered {
		roundStart = true
		c.nextRoundDelivered = c.delivered
		c.roundCount++
	}

	// Delivery-rate sample (per the BBR delivery-rate-estimation draft).
	var rate units.Bandwidth
	rateAppLimited := p.AppLimited
	if p.DeliveredTime > 0 && c.delivered > p.Delivered {
		sendElapsed := p.EchoSent - p.FirstSentTime
		ackElapsed := c.deliveredTime - p.DeliveredTime
		interval := sendElapsed
		if ackElapsed > interval {
			interval = ackElapsed
		}
		if interval > 0 {
			rate = units.RateFromBytes(units.ByteSize(c.delivered-p.Delivered), interval.Std())
			c.stats.DeliveryRate = rate
		}
	}
	if p.EchoSent > c.firstSentTime {
		c.firstSentTime = p.EchoSent
	}

	// RACK-style loss marking: any segment whose latest transmission
	// predates the transmission that triggered this ACK must have been
	// dropped (the simulated path never reorders).
	lostBytes := c.markLost(p.EchoSent)

	// Recovery episode bookkeeping.
	if c.inRecovery && c.sndUna >= c.recoverSeq {
		c.inRecovery = false
	}
	congestion := false
	if lostBytes > 0 && !c.inRecovery {
		c.inRecovery = true
		c.recoverSeq = c.sndNxt
		c.stats.CongEvents++
		congestion = true
	}
	// An ECN echo is a congestion signal with the same once-per-episode
	// gating, but nothing to retransmit.
	if p.EchoCE && !c.inRecovery {
		c.inRecovery = true
		c.recoverSeq = c.sndNxt
		c.stats.CongEvents++
		congestion = true
	}

	sample := AckSample{
		Now:            now,
		AckedBytes:     newlyAcked,
		RTT:            rttSample,
		Delivered:      c.delivered,
		DeliveryRate:   rate,
		RateAppLimited: rateAppLimited,
		Inflight:       c.inflight,
		LostBytes:      lostBytes,
		CE:             p.EchoCE,
		RoundStart:     roundStart,
		InRecovery:     c.inRecovery,
	}
	if congestion {
		c.cc.OnCongestionEvent(c)
	}
	c.cc.OnAck(c, sample)
	c.trc.Cwnd(int64(now), c.cwnd, c.ssthresh)
	c.trc.Pacing(int64(now), int64(c.pacingRate))
	packet.Release(p)

	// Timer management. Any ACK is evidence the path is delivering (the
	// receiver only ACKs on data arrival), so the timer restarts on every
	// ACK while data is outstanding — mirroring Linux's rearm on SACK
	// progress. A true blackhole produces no ACKs and still times out.
	if c.segs.len() == 0 && len(c.rtxQ) == 0 {
		c.rtoTimer.Stop()
	} else {
		c.rearmRTO()
	}

	if c.cfg.LimitBytes > 0 && c.sndUna >= c.cfg.LimitBytes && c.done != nil {
		done := c.done
		c.done = nil
		done(c)
	}
	if c.aud != nil && c.stats.Acks%auditDeepCheckEvery == 0 {
		if err := c.auditSeqSpace(); err != nil {
			c.aud.Failf("tcp", "seq-space", "%v", err)
		}
	}
	c.trySend()
}

// markLost marks as lost every leading outstanding segment whose latest
// transmission is older than trigSentAt, returning the bytes marked.
func (c *Conn) markLost(trigSentAt sim.Time) int64 {
	if trigSentAt <= 0 {
		return 0
	}
	lost := int64(0)
	for i := 0; i < c.segs.len(); i++ {
		s := c.segs.at(i)
		if s.lost || s.sacked {
			continue
		}
		if s.lastSentAt < trigSentAt {
			s.lost = true
			s.inRtxQ = true
			c.inflight -= s.len
			lost += s.len
			c.rtxQ = append(c.rtxQ, s)
		} else {
			break
		}
	}
	return lost
}

// --- RTO ---

func (c *Conn) armRTO() {
	if c.rtoTimer.Pending() {
		return
	}
	c.rtoTimer.Reset(c.rtt.rto)
}

func (c *Conn) rearmRTO() {
	c.rtoTimer.Reset(c.rtt.rto)
}

// onRTO handles retransmission-timer expiry: exponential backoff, mark all
// outstanding data lost, and let the controller collapse the window.
func (c *Conn) onRTO() {
	if c.stopped {
		return
	}
	if c.segs.len() == 0 && len(c.rtxQ) == 0 {
		return // nothing outstanding
	}
	c.stats.RTOs++
	c.rtt.rto *= 2
	if c.rtt.rto > maxRTO {
		c.rtt.rto = maxRTO
	}
	c.trc.RTO(int64(c.eng.Now()), int64(c.rtt.rto), int64(c.stats.RTOs))

	// Everything outstanding and undelivered is presumed lost; rebuild the
	// retransmission queue in sequence order.
	c.rtxQ = c.rtxQ[:0]
	for i := 0; i < c.segs.len(); i++ {
		s := c.segs.at(i)
		if s.sacked {
			s.inRtxQ = false // no longer referenced by the emptied rtxQ
			continue         // already delivered; nothing to resend
		}
		if !s.lost {
			s.lost = true
			c.inflight -= s.len
		}
		s.inRtxQ = true
		c.rtxQ = append(c.rtxQ, s)
	}
	c.inflight = 0
	c.inRecovery = false
	c.cc.OnRTO(c)
	c.rearmRTO()
	c.trySend()
}

// segDeque is a growable ring of outstanding segments ordered by sequence.
type segDeque struct {
	buf  []*seg
	head int
	n    int
}

func (d *segDeque) len() int { return d.n }

func (d *segDeque) at(i int) *seg { return d.buf[(d.head+i)%len(d.buf)] }

func (d *segDeque) front() *seg {
	if d.n == 0 {
		return nil
	}
	return d.buf[d.head]
}

func (d *segDeque) push(s *seg) {
	if d.n == len(d.buf) {
		nb := make([]*seg, max(16, len(d.buf)*2))
		for i := 0; i < d.n; i++ {
			nb[i] = d.at(i)
		}
		d.buf = nb
		d.head = 0
	}
	d.buf[(d.head+d.n)%len(d.buf)] = s
	d.n++
}

// find returns the outstanding segment starting at seq, or nil. Segments
// are stored in increasing sequence order, so a binary search suffices.
func (d *segDeque) find(seq int64) *seg {
	lo, hi := 0, d.n
	for lo < hi {
		mid := (lo + hi) / 2
		if d.at(mid).seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < d.n {
		if s := d.at(lo); s.seq == seq {
			return s
		}
	}
	return nil
}

func (d *segDeque) pop() *seg {
	if d.n == 0 {
		return nil
	}
	s := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return s
}
