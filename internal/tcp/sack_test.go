package tcp

import (
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestSegDequeFind(t *testing.T) {
	var d segDeque
	if d.find(0) != nil {
		t.Fatal("find on empty deque")
	}
	for i := int64(0); i < 50; i++ {
		d.push(&seg{seq: i * 8900, len: 8900})
	}
	// Rotate the ring to exercise wraparound indexing.
	for i := 0; i < 20; i++ {
		d.pop()
	}
	for i := int64(50); i < 80; i++ {
		d.push(&seg{seq: i * 8900, len: 8900})
	}
	for i := int64(20); i < 80; i++ {
		s := d.find(i * 8900)
		if s == nil || s.seq != i*8900 {
			t.Fatalf("find(%d) = %v", i*8900, s)
		}
	}
	if d.find(19*8900) != nil {
		t.Fatal("found popped segment")
	}
	if d.find(12345) != nil {
		t.Fatal("found nonexistent seq")
	}
}

// TestNoSpuriousRetransmissions: with SACK-accurate loss detection, the
// retransmission count must closely track the actual drop count — delivered
// segments above a hole must never be resent.
func TestNoSpuriousRetransmissions(t *testing.T) {
	cc := &stubCC{fixedCwnd: 200 * 8900}
	n := newTestNet(t, 100*units.MegabitPerSec, 31*time.Millisecond,
		aqm.NewFIFO(30*8960), cc, Config{})
	n.conn.Start()
	n.eng.RunFor(20 * time.Second)
	drops := n.bott.Queue().Stats().Dropped
	rtx := n.conn.Stats().Retransmits
	if drops == 0 {
		t.Skip("no drops in this configuration")
	}
	// Every drop needs one retransmission; re-drops of retransmissions add
	// a few more. More than 1.5× indicates spurious marking.
	if float64(rtx) > 1.5*float64(drops)+10 {
		t.Fatalf("spurious retransmissions: %d rtx for %d drops", rtx, drops)
	}
	if rtx < uint64(float64(drops)*0.8) {
		t.Fatalf("missing retransmissions: %d rtx for %d drops", rtx, drops)
	}
}

// TestInjectedLossRecovery: random 1% wire loss (not queue drops) must be
// recovered exactly, with goodput intact and retransmissions ≈ losses.
func TestInjectedLossRecovery(t *testing.T) {
	eng := sim.NewEngine(1)
	cc := &stubCC{fixedCwnd: 64 * 8900}
	back := netem.NewPort(eng, "back", 100*units.GigabitPerSec, 5*time.Millisecond, nil, nil)
	fwd := netem.NewPort(eng, "fwd", 1*units.GigabitPerSec, 5*time.Millisecond, aqm.NewFIFO(1<<30), nil)
	fwd.SetLoss(0.01)
	conn := NewConn(eng, 1, Config{LimitBytes: 20_000_000}, cc, func(p *packet.Packet) { fwd.Send(p) })
	rcv := NewReceiver(eng, 1, 60, func(p *packet.Packet) { back.Send(p) })
	fwd.SetDst(rcv)
	back.SetDst(conn)
	done := false
	conn.OnDone(func(*Conn) { done = true })
	conn.Start()
	eng.RunFor(60 * time.Second)
	if !done {
		t.Fatalf("transfer incomplete: acked %d/20000000", conn.Stats().BytesAcked)
	}
	if rcv.Goodput() != 20_000_000 {
		t.Fatalf("goodput %d", rcv.Goodput())
	}
	lost := fwd.LossDrops()
	rtx := conn.Stats().Retransmits
	if rtx < lost || float64(rtx) > 1.6*float64(lost)+10 {
		t.Fatalf("rtx %d vs injected losses %d", rtx, lost)
	}
}

// TestSackedSegmentNotRetransmittedOnRTO: segments known delivered must not
// be resent even when the RTO fires and everything else is.
func TestSackedSegmentNotRetransmittedOnRTO(t *testing.T) {
	eng := sim.NewEngine(1)
	cc := &stubCC{fixedCwnd: 8 * 8900}
	var delivered []int64
	// Custom path: drop the FIRST data packet only, deliver the rest, then
	// blackhole all ACKs after the dupacks so the sender must RTO.
	dropFirst := true
	ackCount := 0
	var conn *Conn
	var rcv *Receiver
	rcv = NewReceiver(eng, 1, 60, func(p *packet.Packet) {
		ackCount++
		if ackCount > 5 {
			packet.Release(p) // blackhole later ACKs to force RTO
			return
		}
		a := p
		eng.Schedule(time.Millisecond, func() { conn.Receive(eng.Now(), a) })
	})
	inject := func(p *packet.Packet) {
		if dropFirst && p.Kind == packet.Data && p.Seq == 0 && !p.Retrans {
			dropFirst = false
			packet.Release(p)
			return
		}
		if p.Kind == packet.Data {
			delivered = append(delivered, p.Seq)
		}
		d := p
		eng.Schedule(time.Millisecond, func() { rcv.Receive(eng.Now(), d) })
	}
	conn = NewConn(eng, 1, Config{LimitBytes: 8 * 8900}, cc, inject)
	conn.Start()
	eng.RunFor(5 * time.Second)

	// Count duplicate deliveries of segments 1..4 (they were SACKed before
	// the blackhole; the RTO should resend seq 0 and the un-SACKed tail,
	// not the SACKed ones again and again).
	seen := map[int64]int{}
	for _, s := range delivered {
		seen[s]++
	}
	for seq, cnt := range seen {
		if seq >= 8900 && seq < 5*8900 && cnt > 2 {
			t.Errorf("SACKed segment %d delivered %d times", seq, cnt)
		}
	}
}

// TestReceiverDuplicateAccounting: duplicates must be counted and not
// corrupt goodput.
func TestReceiverDuplicateAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	var acks []*packet.Packet
	rcv := NewReceiver(eng, 1, 60, func(p *packet.Packet) { acks = append(acks, p) })
	mk := func(seq int64) *packet.Packet {
		p := packet.New()
		p.Kind = packet.Data
		p.Flow = 1
		p.Seq = seq
		p.DataLen = 100
		p.Size = 160
		return p
	}
	rcv.Receive(0, mk(0))
	rcv.Receive(0, mk(0)) // duplicate in-order
	rcv.Receive(0, mk(300))
	rcv.Receive(0, mk(300)) // duplicate out-of-order
	rcv.Receive(0, mk(100))
	rcv.Receive(0, mk(200)) // fills the hole; merges 300
	if got := rcv.Goodput(); got != 400 {
		t.Fatalf("goodput = %d, want 400", got)
	}
	if rcv.DupSegments() != 2 {
		t.Fatalf("dups = %d, want 2", rcv.DupSegments())
	}
	if rcv.BytesIn() != 600 {
		t.Fatalf("bytesIn = %d, want 600", rcv.BytesIn())
	}
	// Last ACK must cumulatively cover everything.
	last := acks[len(acks)-1]
	if last.CumAck != 400 {
		t.Fatalf("final cumack = %d", last.CumAck)
	}
	for _, a := range acks {
		packet.Release(a)
	}
}

// TestNonDataToReceiverIgnored: stray ACKs arriving at a receiver are
// dropped without effect.
func TestNonDataToReceiverIgnored(t *testing.T) {
	eng := sim.NewEngine(1)
	sent := 0
	rcv := NewReceiver(eng, 1, 60, func(p *packet.Packet) { sent++; packet.Release(p) })
	a := packet.New()
	a.Kind = packet.Ack
	rcv.Receive(0, a)
	if sent != 0 || rcv.Goodput() != 0 {
		t.Fatal("ACK should be ignored by receiver")
	}
}

// TestConnIgnoresDataPackets: stray data packets arriving at a sender are
// dropped without effect.
func TestConnIgnoresDataPackets(t *testing.T) {
	eng := sim.NewEngine(1)
	cc := &stubCC{fixedCwnd: 8900}
	conn := NewConn(eng, 1, Config{}, cc, func(p *packet.Packet) { packet.Release(p) })
	d := packet.New()
	d.Kind = packet.Data
	conn.Receive(0, d)
	if conn.Stats().Acks != 0 {
		t.Fatal("data packet counted as ACK")
	}
}
