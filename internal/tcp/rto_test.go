package tcp

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// rtoTraceCC is a stub controller that timestamps every RTO event.
type rtoTraceCC struct {
	stubCC
	eng     *sim.Engine
	fireAt  []sim.Time
	rtoSeen []time.Duration // Conn.RTO() immediately after each backoff
	conn    *Conn
}

func (s *rtoTraceCC) OnRTO(c *Conn) {
	s.stubCC.OnRTO(c)
	s.fireAt = append(s.fireAt, s.eng.Now())
	s.rtoSeen = append(s.rtoSeen, c.RTO())
}

// TestRTOExponentialBackoffDoubling: on a blackholed path every expiry
// must double the retransmission timeout — 1s, 2s, 4s, ... — until the
// 60 s maxRTO clamp, and the inter-expiry gaps must match exactly (the
// simulation is deterministic; there is no tolerance to hide behind).
func TestRTOExponentialBackoffDoubling(t *testing.T) {
	eng := sim.NewEngine(1)
	cc := &rtoTraceCC{stubCC: stubCC{fixedCwnd: 8 * 8900}, eng: eng}
	conn := NewConn(eng, 1, Config{}, cc, func(p *packet.Packet) { packet.Release(p) })
	cc.conn = conn
	conn.Start()
	eng.RunFor(250 * time.Second)

	// 1+2+4+8+16+32+60+60 s of backoff fits 8 fires in 250 s.
	if len(cc.fireAt) < 8 {
		t.Fatalf("only %d RTOs in 250s", len(cc.fireAt))
	}
	wantRTO := 2 * time.Second // after the first fire: initialRTO doubled
	for i, got := range cc.rtoSeen {
		if got != wantRTO {
			t.Fatalf("after RTO %d: rto = %v, want %v", i+1, got, wantRTO)
		}
		wantRTO *= 2
		if wantRTO > 60*time.Second {
			wantRTO = 60 * time.Second
		}
	}
	// The gap between consecutive fires is the post-backoff rto itself.
	for i := 1; i < len(cc.fireAt); i++ {
		gap := time.Duration(cc.fireAt[i] - cc.fireAt[i-1])
		if gap != cc.rtoSeen[i-1] {
			t.Fatalf("gap %d = %v, want %v (timer not re-armed with the backed-off rto)",
				i, gap, cc.rtoSeen[i-1])
		}
	}
	last := cc.rtoSeen[len(cc.rtoSeen)-1]
	if last != 60*time.Second {
		t.Fatalf("backoff never reached the maxRTO clamp: %v", last)
	}
	if conn.Stats().RTOs != uint64(len(cc.fireAt)) {
		t.Fatalf("stats.RTOs = %d, traced %d", conn.Stats().RTOs, len(cc.fireAt))
	}
}

// TestRTORearmAfterSuccessfulRetransmit: once the path heals, the first
// retransmission that gets through must (a) leave the retransmission timer
// armed and (b) let fresh RTT samples collapse the backed-off rto back to
// the estimator's value — a connection must not stay stuck at a multi-
// second timeout after one bad episode.
func TestRTORearmAfterSuccessfulRetransmit(t *testing.T) {
	eng := sim.NewEngine(1)
	owd := 5 * time.Millisecond

	back := netem.NewPort(eng, "back", 100*units.GigabitPerSec, owd, nil, nil)
	bott := netem.NewPort(eng, "bottleneck", 100*units.MegabitPerSec, owd, nil, nil)

	blackhole := true
	cc := &stubCC{fixedCwnd: 8 * 8900}
	conn := NewConn(eng, 1, Config{}, cc, func(p *packet.Packet) {
		if blackhole {
			packet.Release(p)
			return
		}
		bott.Send(p)
	})
	rcv := NewReceiver(eng, 1, 0, func(p *packet.Packet) { back.Send(p) })
	bott.SetDst(rcv)
	back.SetDst(conn)

	conn.Start()
	// Blackhole through two expiries: rto walks 1s → 2s → 4s.
	eng.RunFor(3500 * time.Millisecond)
	if got := conn.Stats().RTOs; got != 2 {
		t.Fatalf("expected exactly 2 RTOs while blackholed, got %d", got)
	}
	if conn.RTO() != 4*time.Second {
		t.Fatalf("rto after two backoffs = %v, want 4s", conn.RTO())
	}

	// Heal the path; the 3rd expiry's retransmission gets through.
	blackhole = false
	eng.RunFor(10 * time.Second)

	if rcv.Goodput() == 0 {
		t.Fatal("no data delivered after the path healed")
	}
	if got := conn.Stats().RTOs; got != 3 {
		t.Fatalf("RTOs after healing = %d, want exactly 3 (timer must stop firing once ACKs flow)", got)
	}
	if !conn.rtoTimer.Pending() {
		t.Fatal("retransmission timer not re-armed while data is outstanding")
	}
	// Fresh samples on a ~10 ms path bring rto back to the 200 ms floor.
	if conn.RTO() >= time.Second {
		t.Fatalf("rto still backed off after recovery: %v", conn.RTO())
	}
	before := rcv.Goodput()
	eng.RunFor(2 * time.Second)
	if rcv.Goodput() <= before {
		t.Fatal("transfer stalled after recovery")
	}
}
