package svc

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/failpoint"
)

// WorkerOptions configure a cluster worker (sweepd -join).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8422".
	Coordinator string
	// Name labels the worker in coordinator logs and metrics (default
	// "host:pid").
	Name string
	// Parallel is how many configurations simulate concurrently (0 =
	// GOMAXPROCS).
	Parallel int
	// Journal optionally persists a worker-local result cache: a restarted
	// worker re-leased a configuration it already simulated serves it from
	// its journal instead of re-running it, and sweepd -merge can fold
	// worker journals into a coordinator journal offline.
	Journal string
	// Heartbeat overrides the coordinator-suggested heartbeat interval
	// (0 = accept the coordinator's).
	Heartbeat time.Duration
	// HTTP overrides the transport (nil = a fresh http.Client). Tests
	// inject partition-simulating transports here.
	HTTP *http.Client
	// Run overrides the simulation function (nil = experiment.RunOne).
	// Tests inject instrumented or gated runners.
	Run func(experiment.Config) experiment.Result
	// Logf receives progress lines (nil = stderr).
	Logf func(format string, args ...any)
	// Retry overrides the RPC backoff schedule (zero value = package
	// default).
	Retry retryPolicy
}

// Worker is the execution half of the cluster split: it registers with the
// coordinator, heartbeats, pulls leased batches of configurations, runs
// them through the same hardened experiment.RunOne path the single-process
// pool uses, and uploads each result as it lands. Every RPC goes through
// the shared retry helper (jittered exponential backoff under per-attempt
// deadlines), uploads are idempotent (keyed by Config.Key() coordinator-
// side), and a context cancellation drains gracefully: in-flight
// simulations finish and upload, unstarted lease work is released back to
// the coordinator so it reschedules immediately instead of waiting out the
// lease TTL.
type Worker struct {
	opts  WorkerOptions
	cache *Cache
	hc    *http.Client
	run   func(experiment.Config) experiment.Result

	mu sync.Mutex
	id string // current registration; replaced on re-register after a partition
	hb time.Duration
	rp retryPolicy // capped to half the lease TTL at registration

	// Counters, exposed for tests and the shutdown log line.
	sims      atomic.Uint64 // configurations actually simulated
	cacheHits atomic.Uint64 // lease entries served from the worker-local journal
	uploads   atomic.Uint64 // accepted uploads
	dupes     atomic.Uint64 // uploads the coordinator already had
	released  atomic.Uint64 // configs handed back on graceful drain
}

// NewWorker opens the worker-local journal (if any) and prepares a worker;
// Run does the registering.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	cache, err := OpenCache(opts.Journal)
	if err != nil {
		return nil, err
	}
	w := &Worker{opts: opts, cache: cache, run: opts.Run, rp: opts.Retry, hc: opts.HTTP}
	if w.run == nil {
		w.run = experiment.RunOne
	}
	if w.rp.Attempts == 0 {
		w.rp = defaultRetry
	}
	if w.hc == nil {
		w.hc = &http.Client{}
	}
	if w.opts.Name == "" {
		host, _ := os.Hostname()
		w.opts.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if w.opts.Parallel <= 0 {
		w.opts.Parallel = runtime.GOMAXPROCS(0)
	}
	return w, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, "sweepd-worker: "+format+"\n", args...)
}

func (w *Worker) url(path string) string {
	return strings.TrimRight(w.opts.Coordinator, "/") + path
}

// policy snapshots the current retry policy (registration may shrink it).
func (w *Worker) policy() retryPolicy {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rp
}

// post runs one coordinator RPC under the retry policy.
func (w *Worker) post(ctx context.Context, op, path string, in, out any) error {
	return w.policy().do(ctx, op, func(ctx context.Context) error {
		return postJSON(ctx, w.hc, w.url(path), in, out)
	})
}

// register (re-)registers the worker, updating its identity and adopting
// the coordinator's heartbeat interval unless overridden.
func (w *Worker) register(ctx context.Context) error {
	var resp registerResponse
	if err := w.post(ctx, "register", "/v1/workers", registerRequest{Name: w.opts.Name}, &resp); err != nil {
		return err
	}
	w.mu.Lock()
	w.id = resp.WorkerID
	w.hb = time.Duration(resp.HeartbeatNS)
	if w.opts.Heartbeat > 0 {
		w.hb = w.opts.Heartbeat
	}
	if w.hb <= 0 {
		w.hb = 3 * time.Second
	}
	if ttl := time.Duration(resp.LeaseTTLNS); ttl > 0 {
		// A retry storm must never outlive our own lease: an upload still
		// backing off past the TTL would hand the config to a second worker
		// while this one eventually lands it too (harmless — uploads are
		// idempotent — but wasteful). Half the TTL leaves the attempts
		// themselves room under the other half.
		w.rp = w.rp.capTotal(ttl / 2)
	}
	w.mu.Unlock()
	w.logf("registered as %s (heartbeat %v, lease TTL %v)", resp.WorkerID,
		time.Duration(resp.HeartbeatNS), time.Duration(resp.LeaseTTLNS))
	return nil
}

func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// isNotFound matches the coordinator's "unknown worker" responses, which
// mean this worker was reaped (partition, coordinator restart) and must
// re-register rather than retry.
func isNotFound(err error) bool {
	return err != nil && strings.Contains(err.Error(), "404")
}

// Run drives the worker until ctx is cancelled: register, heartbeat in the
// background, then loop acquiring and working leases. On cancellation it
// finishes in-flight simulations, uploads their results, releases the rest
// of the lease, says goodbye, and closes the local journal. The returned
// error is nil on a clean drain.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.registerLoop(ctx); err != nil {
		return err
	}
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(hbStop, hbDone)
	defer func() {
		close(hbStop)
		<-hbDone
		w.goodbye()
		if err := w.cache.Close(); err != nil {
			w.logf("journal close: %v", err)
		}
		w.logf("drained: %d simulated, %d journal hits, %d uploaded (%d duplicate), %d released",
			w.sims.Load(), w.cacheHits.Load(), w.uploads.Load(), w.dupes.Load(), w.released.Load())
	}()

	for {
		if ctx.Err() != nil {
			return nil
		}
		var lr leaseResponse
		err := w.post(ctx, "lease", "/v1/workers/"+w.workerID()+"/lease", leaseRequest{}, &lr)
		if isNotFound(err) {
			if err := w.registerLoop(ctx); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			w.logf("lease: %v (backing off)", err)
			if !sleepCtx(ctx, jitter(w.policy().Max)) {
				return nil
			}
			continue
		}
		if len(lr.Configs) == 0 {
			wait := time.Duration(lr.RetryAfterNS)
			if wait <= 0 {
				wait = time.Second
			}
			if !sleepCtx(ctx, jitter(wait)) {
				return nil
			}
			continue
		}
		w.workLease(ctx, lr)
	}
}

// registerLoop retries registration with backoff until it lands or ctx is
// cancelled — a worker started before its coordinator, or re-joining after
// a partition, keeps knocking.
func (w *Worker) registerLoop(ctx context.Context) error {
	for {
		err := w.register(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.logf("register: %v (backing off)", err)
		if !sleepCtx(ctx, jitter(w.policy().Max)) {
			return ctx.Err()
		}
	}
}

// heartbeatLoop renews the worker's liveness (and, coordinator-side, its
// lease deadlines) until stopped. A 404 means the coordinator forgot us —
// reaped during a partition or restarted — so re-register under a fresh
// identity; the old leases are already re-queued and any uploads still in
// flight are accepted idempotently.
func (w *Worker) heartbeatLoop(stop, done chan struct{}) {
	defer close(done)
	for {
		w.mu.Lock()
		hb := w.hb
		w.mu.Unlock()
		select {
		case <-stop:
			return
		case <-time.After(hb):
		}
		ctx, cancel := context.WithTimeout(context.Background(), hb)
		err := w.post(ctx, "heartbeat", "/v1/workers/"+w.workerID()+"/heartbeat", struct{}{}, &struct{}{})
		cancel()
		if isNotFound(err) {
			ctx, cancel := context.WithTimeout(context.Background(), hb)
			if rerr := w.register(ctx); rerr != nil {
				w.logf("re-register after heartbeat 404: %v", rerr)
			}
			cancel()
		} else if err != nil {
			w.logf("heartbeat: %v", err)
		}
	}
}

// workLease runs one lease: configurations fan out over Parallel
// goroutines, each result is journaled locally and uploaded immediately
// (so stealing the lease tail never steals finished work), and on ctx
// cancellation the undispatched remainder is released back to the
// coordinator.
func (w *Worker) workLease(ctx context.Context, lr leaseResponse) {
	sem := make(chan struct{}, w.opts.Parallel)
	var wg sync.WaitGroup
	var i int
	for i = 0; i < len(lr.Configs); i++ {
		select {
		case <-ctx.Done():
		case sem <- struct{}{}:
		}
		if ctx.Err() != nil {
			break
		}
		cfg := lr.Configs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			w.runOne(cfg, lr.LeaseID)
		}()
	}
	wg.Wait()
	if i < len(lr.Configs) {
		// Drained mid-lease: hand the unstarted tail back so the
		// coordinator reschedules it now, not after the TTL.
		w.releaseLease(lr.LeaseID)
	}
}

// runOne produces and uploads one result: worker-local journal first (a
// restarted worker never re-simulates what it already has), simulation
// otherwise. Uploads always run under a background deadline — results must
// reach the coordinator even while the worker is shutting down.
func (w *Worker) runOne(cfg experiment.Config, leaseID string) {
	key := cfg.Key()
	res, ok := w.cache.peek(key)
	if ok {
		w.cacheHits.Add(1)
	} else if ferr := failpoint.InjectCtx("worker.run", cfg.ID()); ferr != nil {
		// Injected simulation failure (the poison-config chaos hook; the
		// exit action never returns). Errored results upload but never cache.
		res = experiment.Result{Config: cfg.Normalize(), Error: ferr.Error()}
	} else {
		res = w.run(cfg)
		w.sims.Add(1)
		if err := w.cache.Put(res); err != nil {
			w.logf("journal append: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var ur uploadResponse
	if err := w.post(ctx, "upload", "/v1/workers/"+w.workerID()+"/results",
		uploadRequest{LeaseID: leaseID, Result: res}, &ur); err != nil {
		// The lease will expire and the config re-queue; our journal keeps
		// the result so a re-lease of it here is a cache hit.
		w.logf("upload %s: %v", res.Config.ID(), err)
		return
	}
	if ur.Duplicate {
		w.dupes.Add(1)
	} else {
		w.uploads.Add(1)
	}
}

// releaseLease returns a lease's unworked remainder to the coordinator.
// The coordinator computes the remainder itself (everything not yet
// uploaded), so the call carries only the lease ID.
func (w *Worker) releaseLease(leaseID string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var resp releaseResponse
	if err := w.post(ctx, "release", "/v1/workers/"+w.workerID()+"/release",
		releaseRequest{LeaseID: leaseID}, &resp); err != nil {
		w.logf("release %s: %v (coordinator will expire it)", leaseID, err)
		return
	}
	w.released.Add(uint64(resp.Requeued))
}

// goodbye releases everything still held and deregisters, so a gracefully
// stopped worker never triggers the expiry path.
func (w *Worker) goodbye() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var resp releaseResponse
	if err := w.post(ctx, "goodbye", "/v1/workers/"+w.workerID()+"/release",
		releaseRequest{Bye: true}, &resp); err != nil {
		w.logf("goodbye: %v (coordinator will reap us)", err)
		return
	}
	w.released.Add(uint64(resp.Requeued))
}

// sleepCtx sleeps for d unless ctx ends first, reporting whether the sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
