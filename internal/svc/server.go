package svc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/experiment"
	"repro/internal/paper"
	"repro/internal/telemetry"
)

// Options configure a Server.
type Options struct {
	// Journal is the JSONL checkpoint path persisting the result cache
	// ("" = memory only).
	Journal string
	// Shards is the worker-pool width (0 = GOMAXPROCS).
	Shards int
	// Audit arms the runtime invariant auditor on every configuration the
	// daemon simulates, regardless of the submitted spec. Audit is excluded
	// from config identity (auditing is observation-only and proven
	// byte-identical), so forced-audit results still serve unaudited specs.
	Audit bool
	// Trace arms the flight-recorder telemetry tracer on every configuration
	// the daemon simulates, making GET /v1/sweeps/{id}/trace serve event
	// timelines. Like Audit, tracing is observation-only and excluded from
	// config identity, so traced results still serve untraced specs.
	Trace bool
	// Fairness arms the fairness observatory (windowed Jain/share series,
	// convergence and starvation detectors) on every configuration the
	// daemon simulates, making GET /v1/sweeps/{id}/fairness serve the
	// per-config reports. Like Audit and Trace, the sampler is
	// observation-only and excluded from config identity, so fairness-armed
	// results still serve plain specs (and vice versa: cached plain results
	// simply lack the block).
	Fairness bool
	// Pprof mounts net/http/pprof under /debug/pprof/ (default off: the
	// profiler exposes heap contents and should not face untrusted clients).
	Pprof bool
	// Cluster switches the daemon into coordinator mode: instead of
	// simulating on a local pool, cache misses become cluster tasks leased
	// to workers that joined over HTTP (sweepd -join). The submit/stream/
	// results API is unchanged; only where the simulations run differs.
	Cluster *ClusterOptions
}

// Server is the sweep service: job registry, content-addressed cache, and
// either a sharded local pool or a cluster coordinator behind an
// http.Handler. Exactly one of pool and cluster is non-nil.
type Server struct {
	opts    Options
	cache   *Cache
	pool    *Pool
	cluster *Coordinator

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	jobsCoalesced atomic.Uint64 // POSTs answered by an existing job
}

// New opens the cache (warm from the journal, if any) and starts either the
// local pool or, in coordinator mode, the cluster lease machinery.
func New(opts Options) (*Server, error) {
	cache, err := OpenCache(opts.Journal)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, cache: cache, jobs: make(map[string]*Job)}
	if opts.Cluster != nil {
		s.cluster = NewCoordinator(*opts.Cluster, cache)
		return s, nil
	}
	s.pool = NewPool(opts.Shards, experiment.RunOne, func(res experiment.Result) {
		// Journal failures must not corrupt science: the result still
		// reaches its waiters, the cache just stays cold for that config.
		if err := s.cache.Put(res); err != nil {
			logger().Error("journal append failed",
				"err", err,
				"config_id", res.Config.ID(),
				"config_key", res.Config.Key())
		}
	}, cache.peek)
	return s, nil
}

// schedule routes one cache miss to wherever simulations run: the local
// pool, or the cluster task table.
func (s *Server) schedule(key string, cfg experiment.Config, j *Job, idx int) {
	if s.cluster != nil {
		s.cluster.Enqueue(key, cfg, j, idx)
		return
	}
	s.pool.Do(key, cfg, j, idx)
}

// releaseWork withdraws a cancelled job's interest in the given keys.
func (s *Server) releaseWork(j *Job, keys []string) {
	if s.cluster != nil {
		s.cluster.ReleaseJob(j, keys)
		return
	}
	s.pool.Release(j, keys)
}

// Close gracefully shuts the service down: running configurations drain
// (and reach the journal), queued ones are abandoned, and the journal is
// compacted and closed.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.cluster != nil {
		s.cluster.Close()
	} else {
		s.pool.Close()
	}
	cerr := s.cache.Compact()
	if err := s.cache.Close(); err != nil {
		return err
	}
	return cerr
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/sweeps/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/sweeps/{id}/fairness", s.handleFairness)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if degraded, overflow, errs, lastErr := s.cache.Degraded(); degraded {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded: journal unavailable (%d results in memory overflow, %d journal errors, last: %s)\n",
				overflow, errs, lastErr)
			return
		}
		w.Write([]byte("ok\n"))
	})
	if s.cluster != nil {
		mux.HandleFunc("POST /v1/workers", s.cluster.handleRegister)
		mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.cluster.handleHeartbeat)
		mux.HandleFunc("POST /v1/workers/{id}/lease", s.cluster.handleLease)
		mux.HandleFunc("POST /v1/workers/{id}/results", s.cluster.handleUpload)
		mux.HandleFunc("POST /v1/workers/{id}/release", s.cluster.handleRelease)
	}
	if s.opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a GridSpec, content-addresses it, and either
// coalesces onto the existing job for that key or expands and schedules a
// new one. Every configuration is first looked up in the cache; misses go
// to the sharded pool (joining any in-flight simulation of the same
// config).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec experiment.GridSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	canonical, err := spec.Canonical()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	key, err := spec.Key()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	cfgs, err := spec.Expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	if len(cfgs) == 0 {
		httpError(w, http.StatusBadRequest, "spec expands to zero configurations")
		return
	}
	if s.opts.Audit {
		for i := range cfgs {
			cfgs[i].Audit = true
		}
	}
	if s.opts.Trace {
		for i := range cfgs {
			cfgs[i].Trace = true
		}
	}
	if s.opts.Fairness {
		for i := range cfgs {
			cfgs[i].Fairness = true
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	// A cancelled job is a tombstone, not an answer: re-POSTing the same
	// spec must start fresh work, so only live or completed jobs coalesce.
	if j, ok := s.jobs[key]; ok && j.State() != StateCancelled {
		s.mu.Unlock()
		s.jobsCoalesced.Add(1)
		writeStatus(w, http.StatusOK, j.Status())
		return
	}
	j := newJob(key, canonical, cfgs)
	j.onComplete = func(j *Job) {
		if st := j.Status(); st.Errored == 0 {
			// Successful sweep completion: fold the journal down to one
			// line per live config before it grows across jobs.
			if err := s.cache.Compact(); err != nil {
				logger().Error("journal compact failed", "err", err, "job", key)
			}
		}
	}
	s.jobs[key] = j
	s.mu.Unlock()

	// Fill from cache first, then schedule the misses. Scheduling happens
	// after job registration so a concurrent identical POST coalesces onto
	// this job instead of re-expanding.
	for i := range cfgs {
		if res, ok := s.cache.Get(j.keys[i]); ok {
			j.deliver(i, res, true)
		} else {
			s.schedule(j.keys[i], cfgs[i], j, i)
		}
	}
	writeStatus(w, http.StatusAccepted, j.Status())
}

func writeStatus(w http.ResponseWriter, code int, st Status) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(st)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeStatus(w, http.StatusOK, j.Status())
	}
}

// handleEvents streams the job's progress as NDJSON, one line per completed
// configuration: full replay for late subscribers, then live events until
// the job finishes. When the last subscriber disconnects from a job still
// in flight, the job's remaining work is cancelled (configurations other
// jobs still want keep running).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	ch, replay := j.Subscribe()
	enc := json.NewEncoder(w)
	for _, ev := range replay {
		enc.Encode(ev)
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case ev := <-ch:
			enc.Encode(ev)
			if flusher != nil {
				flusher.Flush()
			}
		case <-j.Finished():
			// Drain events that raced with completion, then end the stream.
			for {
				select {
				case ev := <-ch:
					enc.Encode(ev)
				default:
					j.Unsubscribe(ch)
					if flusher != nil {
						flusher.Flush()
					}
					return
				}
			}
		case <-r.Context().Done():
			if remaining, inFlight := j.Unsubscribe(ch); remaining == 0 && inFlight {
				s.releaseWork(j, j.Cancel())
			}
			return
		}
	}
}

// handleResults serves the completed job as an experiment.ResultSet in
// canonical grid order with the spec's deterministic provenance note —
// byte-identical to what cmd/sweep -out writes for the same spec (modulo
// the wall_ns timing fields, which measure the machine, not the science).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	results, ok := j.Results()
	if !ok {
		st := j.Status()
		httpError(w, http.StatusConflict, "sweep not complete: state=%s done=%d/%d",
			st.State, st.Done, st.Total)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	experiment.WriteJSON(w, &experiment.ResultSet{Note: j.Spec.Note(), Results: results})
}

// handleTrace streams the completed job's telemetry as NDJSON: for each
// configuration that carries a trace, a header line naming the config
// (science key and human-readable ID) followed by the trace's own NDJSON
// encoding. ?config=<key> narrows the stream to one configuration. Results
// served from the journal-warmed cache carry no trace (traces live in
// memory only), so those configurations are silently absent; a stream with
// nothing to say is a 404 pointing at the -trace flag.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	results, ok := j.Results()
	if !ok {
		st := j.Status()
		httpError(w, http.StatusConflict, "sweep not complete: state=%s done=%d/%d",
			st.State, st.Done, st.Total)
		return
	}
	want := r.URL.Query().Get("config")
	flusher, _ := w.(http.Flusher)
	n := 0
	for i := range results {
		res := &results[i]
		if want != "" && want != j.keys[i] {
			continue
		}
		if res.Trace == nil {
			continue
		}
		if n == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		fmt.Fprintf(w, "{\"config\":%q,\"id\":%q}\n", j.keys[i], res.Config.ID())
		if err := telemetry.EncodeNDJSON(w, res.Trace); err != nil {
			return // client went away mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
		n++
	}
	if n == 0 {
		httpError(w, http.StatusNotFound,
			"no telemetry recorded for this sweep (start sweepd with -trace, or the results were served from the journal)")
	}
}

// handleFairness streams the completed job's fairness reports as NDJSON,
// one line per fairness-armed configuration:
//
//	{"config":"<science key>","id":"<human id>","fairness":{...}}
//
// ?config=<key> narrows the stream to one configuration. Results served
// from a cache populated by fairness-off runs carry no report, so those
// configurations are silently absent; a stream with nothing to say is a
// 404 pointing at the -fairness flag. cmd/sweep -fairness-out writes the
// same byte shape for offline diffing.
func (s *Server) handleFairness(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	results, ok := j.Results()
	if !ok {
		st := j.Status()
		httpError(w, http.StatusConflict, "sweep not complete: state=%s done=%d/%d",
			st.State, st.Done, st.Total)
		return
	}
	want := r.URL.Query().Get("config")
	flusher, _ := w.(http.Flusher)
	n := 0
	enc := json.NewEncoder(w)
	for i := range results {
		res := &results[i]
		if want != "" && want != j.keys[i] {
			continue
		}
		if res.Fairness == nil {
			continue
		}
		if n == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		line := experiment.FairnessLine{Config: j.keys[i], ID: res.Config.ID(), Fairness: res.Fairness}
		if err := enc.Encode(line); err != nil {
			return // client went away mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
		n++
	}
	if n == 0 {
		httpError(w, http.StatusNotFound,
			"no fairness reports recorded for this sweep (start sweepd with -fairness or set fairness in the spec, or the results were served from a fairness-off cache)")
	}
}

// handleReport renders the completed job through the cmd/report path
// (paper.Report): claim checklist, Table 3 comparison, and optionally the
// figure panels (?figures=0 to omit).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	results, ok := j.Results()
	if !ok {
		st := j.Status()
		httpError(w, http.StatusConflict, "sweep not complete: state=%s done=%d/%d",
			st.State, st.Done, st.Total)
		return
	}
	md := paper.Report(experiment.Summarize(results), paper.ReportOptions{
		Note:           j.Spec.Note(),
		IncludeFigures: r.URL.Query().Get("figures") != "0",
		FCTMatrix:      experiment.HarmFCTMatrix(results),
		FairnessTable:  experiment.FairnessTable(results),
	})
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	w.Write([]byte(md))
}
