package svc

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/experiment"
)

// waiter is one job's claim on a scheduled configuration: when the config
// completes, the pool delivers the result into slot idx of that job.
type waiter struct {
	job *Job
	idx int
}

// poolTask is one configuration awaiting simulation, shared by every job
// that requested it (per-config singleflight). refs counts interested jobs;
// when cancellation drops it to zero before the task is picked up, the
// shard worker discards it unrun.
type poolTask struct {
	id      string // Config.Key(): the science identity
	cfg     experiment.Config
	refs    int
	waiters []waiter
}

// shard is one lane of the sharded job queue: an unbounded FIFO with a
// dedicated worker. Configurations map to shards by FNV-1a of their science
// key, so a given configuration always lands on the same lane and two jobs
// racing to schedule it serialize there instead of running it twice.
type shard struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*poolTask
	closed bool
}

// push enqueues a task, reporting false when the shard is already closed —
// the caller must fail the task's waiters rather than abandon them.
func (sh *shard) push(t *poolTask) bool {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return false
	}
	sh.queue = append(sh.queue, t)
	sh.mu.Unlock()
	sh.cond.Signal()
	return true
}

// pop blocks until a task is available or the shard is closed. A closed
// shard stops handing out work immediately — queued-but-unstarted tasks are
// abandoned (graceful shutdown drains only running configurations).
func (sh *shard) pop() (*poolTask, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if sh.closed {
			return nil, false
		}
		if len(sh.queue) > 0 {
			t := sh.queue[0]
			sh.queue[0] = nil
			sh.queue = sh.queue[1:]
			return t, true
		}
		sh.cond.Wait()
	}
}

func (sh *shard) close() {
	sh.mu.Lock()
	sh.closed = true
	sh.mu.Unlock()
	sh.cond.Broadcast()
}

// Pool schedules configurations across shard workers with per-config
// singleflight: concurrent requests for the same science key coalesce onto
// one simulation, and every waiter receives the single result. Simulation
// itself goes through experiment.RunOne, so daemon work inherits the sweep
// runner's hardening (panic recovery, watchdog budgets, optional audit).
type Pool struct {
	shards []*shard
	wg     sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]*poolTask

	// run is experiment.RunOne in production; tests substitute instrumented
	// runners.
	run    func(experiment.Config) experiment.Result
	onDone func(experiment.Result) // cache insertion, called before waiters
	// lookup re-checks the result cache under p.mu before a new flight is
	// created, closing the window where a worker publishes to the cache and
	// drops its inflight entry between a submitter's cache read and its Do
	// call — without it such a submitter would re-simulate the config.
	lookup func(string) (experiment.Result, bool)

	sims      atomic.Uint64 // configurations actually simulated
	coalesced atomic.Uint64 // config requests satisfied by joining a flight
	simEvents atomic.Uint64 // cumulative simulator events across sims
	simWallNS atomic.Int64  // cumulative wall time spent simulating

	// Per-config distributions for /metrics (guarded by histMu: observations
	// are one per simulation and scrapes are rare, so a lock beats juggling
	// per-bucket atomics).
	histMu       sync.Mutex
	wallHist     histogram // wall seconds per simulated config
	rateHist     histogram // simulator events/sec per simulated config
	peakQueue    int64     // largest Result.PeakQueueBytes observed
	convHist     histogram // fairness convergence time (sim seconds) per converged config
	fairEpisodes uint64    // starvation episodes detected across all configs
}

// testHookBeforeSim, when non-nil, runs in the shard worker immediately
// before a simulation — the injection point for cancellation and ordering
// tests.
var testHookBeforeSim func(id string)

// NewPool starts a pool with the given number of shard workers (0 =
// GOMAXPROCS). onDone, when non-nil, observes every simulated result before
// its waiters do; lookup, when non-nil, is the cache read Do retries under
// the pool lock. Together they make the singleflight airtight: a result is
// published (onDone) before its flight is dropped, and a submitter that
// missed the cache re-checks it (lookup) before opening a new flight, so a
// concurrent submitter can never miss both the cache and the inflight map.
func NewPool(shards int, run func(experiment.Config) experiment.Result, onDone func(experiment.Result), lookup func(string) (experiment.Result, bool)) *Pool {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		shards:   make([]*shard, shards),
		inflight: make(map[string]*poolTask),
		run:      run,
		onDone:   onDone,
		lookup:   lookup,
		wallHist: newHistogram(0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300),
		rateHist: newHistogram(1e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8),
		convHist: newHistogram(0.1, 0.5, 1, 2, 5, 10, 30, 60, 120),
	}
	for i := range p.shards {
		sh := &shard{}
		sh.cond = sync.NewCond(&sh.mu)
		p.shards[i] = sh
		p.wg.Add(1)
		go p.worker(sh)
	}
	return p
}

func (p *Pool) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

// Do schedules the configuration for the job's slot idx, joining an
// in-flight request for the same science key if one exists. A flight that
// completed between the caller's cache read and this call is caught by the
// second-chance lookup; a pool already closed delivers an errored result
// so the job completes instead of hanging on work that will never run.
func (p *Pool) Do(id string, cfg experiment.Config, j *Job, idx int) {
	p.mu.Lock()
	if t, ok := p.inflight[id]; ok {
		t.refs++
		t.waiters = append(t.waiters, waiter{j, idx})
		p.mu.Unlock()
		p.coalesced.Add(1)
		return
	}
	if p.lookup != nil {
		// The inflight entry is gone; if the config is now cached, its
		// flight finished in the window since the caller's miss. Results
		// enter the cache before their flight is dropped (worker order),
		// and both reads here happen under p.mu, so missing both means the
		// config was genuinely never scheduled.
		if res, ok := p.lookup(id); ok {
			p.mu.Unlock()
			j.deliver(idx, res, true)
			return
		}
	}
	t := &poolTask{id: id, cfg: cfg, refs: 1, waiters: []waiter{{j, idx}}}
	p.inflight[id] = t
	p.mu.Unlock()
	if !p.shardFor(id).push(t) {
		p.fail(t, "sweepd: shutting down; configuration was not scheduled")
	}
}

// fail withdraws an unrunnable task and delivers an errored result to its
// waiters, so their jobs complete (errored) instead of waiting forever.
func (p *Pool) fail(t *poolTask, msg string) {
	p.mu.Lock()
	if p.inflight[t.id] == t {
		delete(p.inflight, t.id)
	}
	ws := t.waiters
	t.waiters = nil
	p.mu.Unlock()
	res := experiment.Result{Config: t.cfg.Normalize(), Error: msg}
	for _, w := range ws {
		w.job.deliver(w.idx, res, false)
	}
}

// Release withdraws a cancelled job's interest in the given config IDs.
// Tasks whose reference count reaches zero are discarded unrun when their
// shard worker reaches them; a task another job still wants keeps running
// and only that job's waiters are dropped.
func (p *Pool) Release(j *Job, ids []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		t, ok := p.inflight[id]
		if !ok {
			continue
		}
		kept := t.waiters[:0]
		for _, w := range t.waiters {
			if w.job == j {
				t.refs--
			} else {
				kept = append(kept, w)
			}
		}
		t.waiters = kept
	}
}

func (p *Pool) worker(sh *shard) {
	defer p.wg.Done()
	for {
		t, ok := sh.pop()
		if !ok {
			return
		}
		p.mu.Lock()
		if t.refs <= 0 { // every interested job cancelled before we got here
			delete(p.inflight, t.id)
			p.mu.Unlock()
			continue
		}
		p.mu.Unlock()

		if testHookBeforeSim != nil {
			testHookBeforeSim(t.id)
		}
		res := p.run(t.cfg)
		p.sims.Add(1)
		p.simEvents.Add(res.Events)
		p.simWallNS.Add(int64(res.Wall))
		p.recordSim(res)
		if p.onDone != nil {
			// Cache before dropping the flight: a submitter always finds the
			// result either here or in the inflight map, never neither.
			p.onDone(res)
		}
		p.mu.Lock()
		delete(p.inflight, t.id)
		ws := t.waiters
		p.mu.Unlock()
		for _, w := range ws {
			w.job.deliver(w.idx, res, false)
		}
	}
}

// Close stops the shard workers after their current simulations and waits
// for them: running configurations drain (and reach the cache/journal);
// queued ones are failed with an errored result so their jobs complete and
// polling clients see the shutdown instead of hanging on a job that will
// never finish.
func (p *Pool) Close() {
	for _, sh := range p.shards {
		sh.close()
	}
	p.wg.Wait()
	for _, sh := range p.shards {
		sh.mu.Lock()
		queued := sh.queue
		sh.queue = nil
		sh.mu.Unlock()
		for _, t := range queued {
			if t != nil {
				p.fail(t, "sweepd: shutting down; configuration was not run")
			}
		}
	}
}

// recordSim folds one simulated result into the per-config distributions.
func (p *Pool) recordSim(res experiment.Result) {
	wall := res.Wall.Seconds()
	rate := 0.0
	if wall > 0 {
		rate = float64(res.Events) / wall
	}
	p.histMu.Lock()
	p.wallHist.observe(wall)
	p.rateHist.observe(rate)
	if res.PeakQueueBytes > p.peakQueue {
		p.peakQueue = res.PeakQueueBytes
	}
	if fr := res.Fairness; fr != nil {
		if fr.Converged {
			p.convHist.observe(fr.ConvergenceTime.Seconds())
		}
		p.fairEpisodes += uint64(len(fr.Episodes))
	}
	p.histMu.Unlock()
}

// Histograms returns deep copies of the per-config distributions and the
// largest bottleneck-queue occupancy observed, for /metrics.
func (p *Pool) Histograms() (wall, rate histogram, peakQueueBytes int64) {
	p.histMu.Lock()
	defer p.histMu.Unlock()
	return p.wallHist.clone(), p.rateHist.clone(), p.peakQueue
}

// FairnessStats returns a deep copy of the convergence-time distribution
// (sim seconds, converged configs only) and the cumulative starvation
// episode count, for /metrics.
func (p *Pool) FairnessStats() (conv histogram, episodes uint64) {
	p.histMu.Lock()
	defer p.histMu.Unlock()
	return p.convHist.clone(), p.fairEpisodes
}

// Sims, Coalesced, SimEvents, and SimWallNS expose the pool counters for
// /metrics.
func (p *Pool) Sims() uint64      { return p.sims.Load() }
func (p *Pool) Coalesced() uint64 { return p.coalesced.Load() }
func (p *Pool) SimEvents() uint64 { return p.simEvents.Load() }
func (p *Pool) SimWallNS() int64  { return p.simWallNS.Load() }
