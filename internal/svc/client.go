package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/experiment"
)

// Client is the thin HTTP client cmd/sweep -remote uses to drive a sweepd
// daemon: submit a spec, follow the event stream, and fetch the result set
// verbatim (raw bytes, preserving byte-identity with a local sweep).
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8422".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeOrError parses a JSON body into v, turning non-2xx responses into
// errors carrying the server's message.
func decodeOrError(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("svc: read response: %w", err)
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("svc: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("svc: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if v == nil {
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("svc: decode response: %w", err)
	}
	return nil
}

// Submit posts a spec and returns the (possibly pre-existing) job's status.
func (c *Client) Submit(spec experiment.GridSpec) (Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return Status{}, fmt.Errorf("svc: encode spec: %w", err)
	}
	resp, err := c.http().Post(c.url("/v1/sweeps"), "application/json", bytes.NewReader(body))
	if err != nil {
		return Status{}, fmt.Errorf("svc: submit: %w", err)
	}
	var st Status
	if err := decodeOrError(resp, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Status fetches a job's status.
func (c *Client) Status(id string) (Status, error) {
	resp, err := c.http().Get(c.url("/v1/sweeps/" + id))
	if err != nil {
		return Status{}, fmt.Errorf("svc: status: %w", err)
	}
	var st Status
	if err := decodeOrError(resp, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Stream follows the job's NDJSON event stream — full replay, then live —
// invoking onEvent per line until the server ends the stream (job done or
// cancelled) or ctx is cancelled. Note that cancelling ctx disconnects the
// subscriber, which cancels the job's remaining work if no other subscriber
// is attached.
func (c *Client) Stream(ctx context.Context, id string, onEvent func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/sweeps/"+id+"/events"), nil)
	if err != nil {
		return fmt.Errorf("svc: stream: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("svc: stream: %w", err)
	}
	if resp.StatusCode >= 300 {
		return decodeOrError(resp, nil)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("svc: stream decode: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
	}
	return sc.Err()
}

// Results fetches the completed job's ResultSet as raw bytes — exactly what
// the server wrote, so a client saving them to disk preserves byte-identity
// with a local cmd/sweep run.
func (c *Client) Results(id string) ([]byte, error) {
	return c.raw("/v1/sweeps/" + id + "/results")
}

// Report fetches the completed job's markdown report. figures=false appends
// ?figures=0.
func (c *Client) Report(id string, figures bool) ([]byte, error) {
	path := "/v1/sweeps/" + id + "/report"
	if !figures {
		path += "?figures=0"
	}
	return c.raw(path)
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics() ([]byte, error) {
	return c.raw("/metrics")
}

func (c *Client) raw(path string) ([]byte, error) {
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return nil, fmt.Errorf("svc: get %s: %w", path, err)
	}
	if resp.StatusCode >= 300 {
		return nil, decodeOrError(resp, nil)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("svc: read %s: %w", path, err)
	}
	return body, nil
}
