package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/experiment"
)

// Client is the thin HTTP client cmd/sweep -remote uses to drive a sweepd
// daemon: submit a spec, follow the event stream, and fetch the result set
// verbatim (raw bytes, preserving byte-identity with a local sweep). Every
// unary call runs under a per-call deadline (Timeout), and idempotent GETs
// are retried with jittered exponential backoff, so a daemon restarting
// mid-poll or a flaky link costs a delay, not a failed sweep.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8422".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Timeout bounds each unary call — submit, status, results, report,
	// metrics — but not Stream, which is long-lived by design and bounded
	// by its context. Zero means the default of 30s.
	Timeout time.Duration
	// Retry overrides the backoff schedule for idempotent GETs (zero value
	// = the package default: 4 attempts, 100ms base, jittered).
	Retry retryPolicy
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c *Client) retry() retryPolicy {
	rp := c.Retry
	if rp.Attempts == 0 {
		rp = defaultRetry
	}
	rp.PerTry = c.timeout()
	return rp
}

// decodeOrError parses a JSON body into v, turning non-2xx responses into
// errors carrying the server's message.
func decodeOrError(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("svc: read response: %w", err)
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("svc: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("svc: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if v == nil {
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("svc: decode response: %w", err)
	}
	return nil
}

// postJSON issues one POST with a JSON body under ctx and decodes the
// response into out. Non-2xx responses come back as errors; retryable
// statuses (5xx, 429) are marked so a retry loop repeats them and client
// errors are surfaced immediately.
func postJSON(ctx context.Context, hc *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return permanent(fmt.Errorf("svc: encode request: %w", err))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return permanent(fmt.Errorf("svc: build request: %w", err))
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err // transport errors are retryable
	}
	retryable := retryableStatus(resp.StatusCode)
	if err := decodeOrError(resp, out); err != nil {
		if retryable {
			return err
		}
		return permanent(err)
	}
	return nil
}

// Submit posts a spec and returns the (possibly pre-existing) job's status.
// Submission is idempotent — specs are content-addressed, so a retried POST
// coalesces onto the job the lost response described — and is therefore
// retried like a GET.
func (c *Client) Submit(spec experiment.GridSpec) (Status, error) {
	var st Status
	err := c.retry().do(context.Background(), "submit", func(ctx context.Context) error {
		return postJSON(ctx, c.http(), c.url("/v1/sweeps"), spec, &st)
	})
	return st, err
}

// Status fetches a job's status.
func (c *Client) Status(id string) (Status, error) {
	var st Status
	if err := c.getJSON("/v1/sweeps/"+id, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// getJSON is a deadline-bounded, retried GET decoding a JSON body.
func (c *Client) getJSON(path string, v any) error {
	return c.retry().do(context.Background(), "get "+path, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
		if err != nil {
			return permanent(err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		retryable := retryableStatus(resp.StatusCode)
		if err := decodeOrError(resp, v); err != nil {
			if retryable {
				return err
			}
			return permanent(err)
		}
		return nil
	})
}

// Stream follows the job's NDJSON event stream — full replay, then live —
// invoking onEvent per line until the server ends the stream (job done or
// cancelled) or ctx is cancelled. Note that cancelling ctx disconnects the
// subscriber, which cancels the job's remaining work if no other subscriber
// is attached. Streams are not retried: reconnecting would replay events
// the caller already saw, and the caller owns that policy.
func (c *Client) Stream(ctx context.Context, id string, onEvent func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/sweeps/"+id+"/events"), nil)
	if err != nil {
		return fmt.Errorf("svc: stream: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("svc: stream: %w", err)
	}
	if resp.StatusCode >= 300 {
		return decodeOrError(resp, nil)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("svc: stream decode: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
	}
	return sc.Err()
}

// Results fetches the completed job's ResultSet as raw bytes — exactly what
// the server wrote, so a client saving them to disk preserves byte-identity
// with a local cmd/sweep run.
func (c *Client) Results(id string) ([]byte, error) {
	return c.raw("/v1/sweeps/" + id + "/results")
}

// Report fetches the completed job's markdown report. figures=false appends
// ?figures=0.
func (c *Client) Report(id string, figures bool) ([]byte, error) {
	path := "/v1/sweeps/" + id + "/report"
	if !figures {
		path += "?figures=0"
	}
	return c.raw(path)
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics() ([]byte, error) {
	return c.raw("/metrics")
}

// raw is a deadline-bounded, retried GET returning the body verbatim.
func (c *Client) raw(path string) ([]byte, error) {
	var body []byte
	err := c.retry().do(context.Background(), "get "+path, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
		if err != nil {
			return permanent(err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode >= 300 {
			err := decodeOrError(resp, nil)
			if retryableStatus(resp.StatusCode) {
				return err
			}
			return permanent(err)
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("svc: read %s: %w", path, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return body, nil
}
