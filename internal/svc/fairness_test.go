package svc

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// TestFairnessEndpoint: with -fairness armed, a completed sweep serves one
// NDJSON report line per configuration, ?config= narrows to one, and an
// unknown key 404s.
func TestFairnessEndpoint(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1, Fairness: true})
	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, client, st.ID)
	if st.Simulated != 2 {
		t.Fatalf("final status: %+v", st)
	}

	resp, err := client.http().Get(client.url("/v1/sweeps/" + st.ID + "/fairness"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fairness endpoint: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 report lines, got %d:\n%s", len(lines), body)
	}
	var keys []string
	for i, l := range lines {
		var fl experiment.FairnessLine
		if err := json.Unmarshal([]byte(l), &fl); err != nil {
			t.Fatalf("line %d is not a FairnessLine: %v", i, err)
		}
		if fl.Config == "" || fl.ID == "" || fl.Fairness == nil {
			t.Fatalf("line %d incomplete: %s", i, l)
		}
		if fl.Fairness.Windows == 0 {
			t.Fatalf("line %d: empty fairness series for a 1s run", i)
		}
		keys = append(keys, fl.Config)
	}

	resp2, err := client.http().Get(client.url("/v1/sweeps/" + st.ID + "/fairness?config=" + keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	narrowed, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(strings.TrimRight(string(narrowed), "\n"), "\n") + 1; got != 1 {
		t.Fatalf("?config= filter served %d lines, want 1:\n%s", got, narrowed)
	}

	resp3, err := client.http().Get(client.url("/v1/sweeps/" + st.ID + "/fairness?config=nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown config key: %d, want 404", resp3.StatusCode)
	}
}

// TestFairnessEndpointDisabled: without -fairness the endpoint must 404
// with a hint, not serve an empty stream.
func TestFairnessEndpointDisabled(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1})
	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)
	resp, err := client.http().Get(client.url("/v1/sweeps/" + st.ID + "/fairness"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fairness fetch on a plain sweep: %d, want 404", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "-fairness") {
		t.Fatalf("404 body should point at the -fairness flag: %s", body)
	}
}

// TestFairnessArmedResultsScienceIdentical: arming the observatory must not
// perturb the science. After removing the additive fairness blocks and the
// wall-clock field, an armed daemon's served results must match a plain
// daemon's byte for byte.
func TestFairnessArmedResultsScienceIdentical(t *testing.T) {
	_, plainClient := newTestServer(t, Options{Shards: 1})
	_, armedClient := newTestServer(t, Options{Shards: 1, Fairness: true})

	st1, err := plainClient.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, plainClient, st1.ID)
	st2, err := armedClient.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, armedClient, st2.ID)

	strip := func(raw []byte) string {
		var rs experiment.ResultSet
		if err := json.Unmarshal(raw, &rs); err != nil {
			t.Fatal(err)
		}
		for i := range rs.Results {
			rs.Results[i].Wall = 0
			rs.Results[i].Fairness = nil
		}
		b, err := json.Marshal(&rs)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	r1, err := plainClient.Results(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := armedClient.Results(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the armed stream actually carried reports before stripping.
	if !strings.Contains(string(r2), `"fairness"`) {
		t.Fatal("armed daemon served no fairness blocks")
	}
	if strip(r1) != strip(r2) {
		t.Errorf("fairness arming changed the science bytes.\n--- plain ---\n%s\n--- armed ---\n%s",
			strip(r1), strip(r2))
	}
}

// TestFairnessMetricsAndBuildInfo: after a fairness-armed sweep, /metrics
// must expose the convergence-time histogram, the episode counter, and the
// build_info gauge with version and Go toolchain labels.
func TestFairnessMetricsAndBuildInfo(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1, Fairness: true})
	// 3 simulated seconds: enough for a homogeneous CUBIC pair to converge,
	// so the histogram genuinely observes a value.
	spec := tinySpec()
	spec.Pairings = "cubic:cubic"
	spec.Duration = "3s"
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)

	metrics, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	text := string(metrics)
	for _, want := range []string{
		"# TYPE sweepd_build_info gauge",
		`sweepd_build_info{version="dev",go_version="go`,
		"# TYPE sweepd_fairness_convergence_seconds histogram",
		"sweepd_fairness_convergence_seconds_count",
		"# TYPE sweepd_fairness_episodes_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The homogeneous CUBIC pair converges, so the histogram must have
	// observed the config.
	if !strings.Contains(text, "sweepd_fairness_convergence_seconds_count 1") {
		t.Errorf("convergence histogram did not observe the converged config:\n%s", text)
	}
}
