package svc

import (
	"strings"
	"sync"

	"repro/internal/experiment"
)

// Job states. A job is queued until its first configuration completes,
// running until the last one does, and then done. Cancelled marks a job
// whose last event-stream subscriber disconnected before completion.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
)

// Event is one line of a job's NDJSON progress stream, emitted per
// completed configuration. Seq is the completion sequence number within the
// job (0-based, dense); with more than one worker, delivery order across
// configs finishing simultaneously is not guaranteed, so consumers order by
// Seq.
type Event struct {
	Seq         int     `json:"seq"`
	ConfigID    string  `json:"config_id"`
	Done        int     `json:"done"`
	Total       int     `json:"total"`
	Cached      bool    `json:"cached"`
	Error       string  `json:"error,omitempty"`
	Jain        float64 `json:"jain"`
	Utilization float64 `json:"utilization"`
}

// Job is one submitted sweep: a canonical GridSpec, its expanded
// configurations in canonical grid order, and the results as they fill in
// from cache hits and pool completions. The job ID is the spec's content
// address (GridSpec.Key), which is what makes identical submissions
// coalesce.
type Job struct {
	ID   string
	Spec experiment.GridSpec // canonical form

	mu       sync.Mutex
	cfgs     []experiment.Config
	ids      []string // cfgs[i].Normalize().ID(): human-readable labels (events, errors)
	keys     []string // cfgs[i].Key(): science identity (cache and pool addressing)
	results  []experiment.Result
	filled   []bool
	done     int
	cached   int // slots satisfied from the cache, not a fresh simulation
	errored  int
	state    string
	events   []Event
	subs     map[chan Event]bool
	finished chan struct{} // closed on done or cancelled

	// onComplete, when set, runs once when the job reaches StateDone (the
	// server hooks journal compaction here).
	onComplete func(*Job)
}

func newJob(id string, spec experiment.GridSpec, cfgs []experiment.Config) *Job {
	j := &Job{
		ID:       id,
		Spec:     spec,
		cfgs:     cfgs,
		ids:      make([]string, len(cfgs)),
		keys:     make([]string, len(cfgs)),
		results:  make([]experiment.Result, len(cfgs)),
		filled:   make([]bool, len(cfgs)),
		state:    StateQueued,
		subs:     make(map[chan Event]bool),
		finished: make(chan struct{}),
	}
	for i := range cfgs {
		j.ids[i] = cfgs[i].Normalize().ID()
		j.keys[i] = cfgs[i].Key()
	}
	return j
}

// deliver fills slot idx with a completed result (from the cache when
// cached is true, from a pool simulation otherwise), emits the progress
// event, and finishes the job when every slot is full.
func (j *Job) deliver(idx int, res experiment.Result, cached bool) {
	j.mu.Lock()
	if j.filled[idx] || j.state == StateCancelled {
		j.mu.Unlock()
		return
	}
	j.results[idx] = res
	j.filled[idx] = true
	j.done++
	if cached {
		j.cached++
	}
	if res.Errored() {
		j.errored++
	}
	if j.state == StateQueued {
		j.state = StateRunning
	}
	complete := j.done == len(j.cfgs)
	if complete {
		j.state = StateDone
	}
	ev := Event{
		Seq:         j.done - 1,
		ConfigID:    res.Config.ID(),
		Done:        j.done,
		Total:       len(j.cfgs),
		Cached:      cached,
		Error:       res.Error,
		Jain:        res.Jain,
		Utilization: res.Utilization,
	}
	j.events = append(j.events, ev)
	subs := make([]chan Event, 0, len(j.subs))
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	onComplete := j.onComplete
	j.mu.Unlock()

	for _, ch := range subs {
		select {
		case ch <- ev: // subscriber channels are sized for the whole job
		default: // a wedged subscriber loses events rather than wedging the pool
		}
	}
	if complete {
		close(j.finished)
		if onComplete != nil {
			onComplete(j)
		}
	}
}

// Subscribe registers an event-stream subscriber, returning the live
// channel plus a replay of every event emitted so far (a late subscriber
// sees the full history, in order, before any live event).
func (j *Job) Subscribe() (chan Event, []Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, len(j.cfgs)+1)
	replay := make([]Event, len(j.events))
	copy(replay, j.events)
	j.subs[ch] = true
	return ch, replay
}

// Unsubscribe removes a subscriber and returns how many remain along with
// whether the job is still in flight — the inputs to the server's
// cancel-on-last-disconnect rule.
func (j *Job) Unsubscribe(ch chan Event) (remaining int, inFlight bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
	return len(j.subs), j.state == StateQueued || j.state == StateRunning
}

// Cancel marks an in-flight job cancelled and returns the science keys of
// its unfilled slots so the caller can release them from the pool. A done
// or already-cancelled job returns nil.
func (j *Job) Cancel() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateCancelled {
		return nil
	}
	j.state = StateCancelled
	var pending []string
	for i, ok := range j.filled {
		if !ok {
			pending = append(pending, j.keys[i])
		}
	}
	close(j.finished)
	return pending
}

// Status is the wire form of GET /v1/sweeps/{id}: state plus per-config
// skip (cache) and error accounting. Every field is deterministic for a
// given spec and cache state, which keeps the endpoint golden-testable.
type Status struct {
	ID    string              `json:"id"`
	State string              `json:"state"`
	Spec  experiment.GridSpec `json:"spec"`
	Total int                 `json:"total"`
	Done  int                 `json:"done"`
	// Cached counts configurations served from the content-addressed cache
	// instead of a simulation (usually at submit time, occasionally via the
	// pool's second-chance lookup when a flight lands mid-submit).
	Cached int `json:"cached"`
	// Simulated counts configurations this job actually ran (or joined in
	// flight): Done - Cached.
	Simulated int `json:"simulated"`
	Errored   int `json:"errored"`
	// Errors maps config ID to failure message for errored configurations.
	Errors map[string]string `json:"errors,omitempty"`
	// Quarantined lists the config IDs (grid order) whose errored result came
	// from the coordinator's poison-config quarantine: the config exhausted
	// its lease retry budget by repeatedly killing or losing its worker.
	Quarantined []string `json:"quarantined,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Total:     len(j.cfgs),
		Done:      j.done,
		Cached:    j.cached,
		Simulated: j.done - j.cached,
		Errored:   j.errored,
	}
	if j.errored > 0 {
		st.Errors = make(map[string]string, j.errored)
		for i, ok := range j.filled {
			if ok && j.results[i].Errored() {
				st.Errors[j.ids[i]] = j.results[i].Error
				if strings.HasPrefix(j.results[i].Error, quarantinedErrPrefix) {
					st.Quarantined = append(st.Quarantined, j.ids[i])
				}
			}
		}
	}
	return st
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Results returns the completed result set in canonical grid order, or
// false while the job is in flight or cancelled.
func (j *Job) Results() ([]experiment.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.results, true
}

// Finished returns a channel closed when the job completes or is
// cancelled.
func (j *Job) Finished() <-chan struct{} { return j.finished }
