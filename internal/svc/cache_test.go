package svc

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/failpoint"
)

// degradedResult fabricates a distinct cacheable result per seed.
func degradedResult(seed uint64) experiment.Result {
	cfg := tinySpec()
	cfgs, _ := cfg.Expand()
	c := cfgs[0]
	c.Seed = seed
	return fakeRun(c)
}

// TestCacheJournalDegradationAndRecovery: sustained journal failure (every
// write fails, drain included) must never fail a Put — results shed to the
// in-memory overflow and stay servable — and once the disk recovers the
// overflow drains back, the cache leaves degraded mode, and a reload from
// the journal sees every result.
func TestCacheJournalDegradationAndRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	// Three consecutive write failures: the first Put's append plus the two
	// drain attempts the following Puts make. checkpoint.append.write sits
	// inside Checkpoint.Append, so the drain path fails exactly like the
	// direct one — sustained disk-full, not a one-shot blip.
	if err := failpoint.Enable("checkpoint.append.write=err(injected: no space left on device)@times=3"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()

	results := []experiment.Result{degradedResult(1), degradedResult(2), degradedResult(3)}
	for i, res := range results {
		if err := c.Put(res); err != nil {
			t.Fatalf("Put %d failed during degradation: %v", i, err)
		}
	}
	degraded, overflow, errs, lastErr := c.Degraded()
	if !degraded || overflow != 3 || errs != 3 {
		t.Fatalf("after 3 failed puts: degraded=%v overflow=%d errs=%d, want true/3/3", degraded, overflow, errs)
	}
	if !strings.Contains(lastErr, "no space left") {
		t.Fatalf("lastErr = %q, want the injected disk error", lastErr)
	}
	// Science is unaffected: every shed result still serves from memory.
	for _, res := range results {
		if _, ok := c.Get(res.Config.Key()); !ok {
			t.Fatalf("result %s not servable while degraded", res.Config.ID())
		}
	}

	// Disk recovers (failpoint exhausted): the next Put drains the overflow
	// and journals itself.
	if err := c.Put(degradedResult(4)); err != nil {
		t.Fatal(err)
	}
	degraded, overflow, _, _ = c.Degraded()
	if degraded || overflow != 0 {
		t.Fatalf("after recovery: degraded=%v overflow=%d, want false/0", degraded, overflow)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh daemon warms from the journal with nothing missing.
	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 4 {
		t.Fatalf("reloaded cache has %d results, want 4", c2.Len())
	}
}

// TestCacheCompactFailsWhileDegraded: Compact must refuse to write a
// snapshot that silently misses shed results — it reports the overflow
// instead, which is how sweepd -merge detects an unhealed journal.
func TestCacheCompactFailsWhileDegraded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("checkpoint.append.write=err(injected EIO)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	if err := c.Put(degradedResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("Compact while degraded = %v, want a degraded-journal error", err)
	}
	failpoint.DisableAll()
	if err := c.Compact(); err != nil {
		t.Fatalf("Compact after recovery: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHealthzReportsJournalDegradation: /healthz flips to 503 with the
// overflow depth while the journal is shedding writes and recovers to 200
// once it drains.
func TestHealthzReportsJournalDegradation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	s, err := New(Options{Journal: path})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	check := func(wantCode int, wantBody string) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode || !strings.Contains(string(body), wantBody) {
			t.Fatalf("/healthz = %d %q, want %d containing %q", resp.StatusCode, body, wantCode, wantBody)
		}
	}
	check(http.StatusOK, "ok")

	if err := failpoint.Enable("checkpoint.append.write=err(injected: disk full)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	if err := s.cache.Put(degradedResult(1)); err != nil {
		t.Fatal(err)
	}
	check(http.StatusServiceUnavailable, "1 results in memory overflow")

	failpoint.DisableAll()
	if err := s.cache.Put(degradedResult(2)); err != nil { // drains the overflow
		t.Fatal(err)
	}
	check(http.StatusOK, "ok")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
