// Package svc is the sweep-as-a-service layer: a long-running daemon core
// that accepts experiment.GridSpec sweeps over HTTP, schedules their
// configurations on a sharded worker pool with per-config singleflight
// deduplication, and serves results from a content-addressed cache keyed by
// experiment.Config.ID() (which embeds pairing, AQM, queue, bandwidth,
// seed, and fault profile). The cache persists through the existing JSONL
// checkpoint journal, so a restarted daemon resumes with a warm cache and a
// served sweep is byte-identical to a direct cmd/sweep run of the same
// spec. cmd/sweepd wraps this package in an HTTP listener; cmd/sweep
// -remote is its thin client.
package svc

import (
	"sync"
	"sync/atomic"

	"repro/internal/experiment"
)

// Cache is the content-addressed result store: an in-memory index over the
// append-only checkpoint journal. Get/Put are keyed by the result's
// Config.ID() — the same key the sweep runner's checkpoint resume uses, so
// a journal written by a CLI sweep warms the daemon and vice versa. Errored
// results are never cached (they re-run on the next request, exactly like
// checkpoint resume). Hit/miss counters feed /metrics.
type Cache struct {
	mu  sync.Mutex
	ck  *experiment.Checkpoint // nil when running memory-only
	mem map[string]experiment.Result

	hits   atomic.Uint64
	misses atomic.Uint64
}

// OpenCache opens the cache over the journal at path, loading every live
// journaled result into the index. An empty path runs memory-only (results
// do not survive a restart).
func OpenCache(path string) (*Cache, error) {
	c := &Cache{mem: make(map[string]experiment.Result)}
	if path == "" {
		return c, nil
	}
	ck, err := experiment.OpenCheckpoint(path)
	if err != nil {
		return nil, err
	}
	c.ck = ck
	for _, res := range ck.Results() {
		c.mem[res.Config.ID()] = res
	}
	return c, nil
}

// Get returns the cached result for a config ID and counts the lookup.
func (c *Cache) Get(id string) (experiment.Result, bool) {
	c.mu.Lock()
	res, ok := c.mem[id]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return res, ok
}

// Put stores a completed result in the index and appends it to the
// journal. Errored results are dropped.
func (c *Cache) Put(res experiment.Result) error {
	if res.Errored() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[res.Config.ID()] = res
	if c.ck != nil {
		return c.ck.Append(res)
	}
	return nil
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Hits and Misses report the lookup counters for /metrics.
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Compact rewrites the journal to one line per live config ID (see
// experiment.Checkpoint.Compact). Called after each successfully completed
// job and on shutdown; a no-op when memory-only.
func (c *Cache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ck == nil {
		return nil
	}
	return c.ck.Compact()
}

// Close flushes and closes the journal.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ck == nil {
		return nil
	}
	return c.ck.Close()
}
