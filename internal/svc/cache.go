// Package svc is the sweep-as-a-service layer: a long-running daemon core
// that accepts experiment.GridSpec sweeps over HTTP, schedules their
// configurations on a sharded worker pool with per-config singleflight
// deduplication, and serves results from a content-addressed cache keyed by
// experiment.Config.Key() — the full science identity covering pairing,
// AQM, queue, bandwidth, seed, fault profile, duration, paper scale, and
// every other field that changes a run's bytes (only the observation-only
// audit bit and the watchdog budgets are excluded). The cache persists
// through the existing JSONL checkpoint journal, so a restarted daemon
// resumes with a warm cache and a served sweep is byte-identical to a
// direct cmd/sweep run of the same spec. cmd/sweepd wraps this package in
// an HTTP listener; cmd/sweep -remote is its thin client.
package svc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/experiment"
	"repro/internal/failpoint"
)

// Cache is the content-addressed result store: an in-memory index over the
// append-only checkpoint journal. Get/Put are keyed by the result's
// Config.Key() — the same science identity the sweep runner's checkpoint
// resume uses, so a journal written by a CLI sweep warms the daemon and
// vice versa, and two specs differing only in an override like duration or
// paper_scale can never serve each other's results. Errored results are
// never cached (they re-run on the next request, exactly like checkpoint
// resume). Hit/miss counters feed /metrics.
type Cache struct {
	mu  sync.Mutex
	ck  *experiment.Checkpoint // nil when running memory-only
	mem map[string]experiment.Result

	hits   atomic.Uint64
	misses atomic.Uint64

	// Journal degradation: when the disk fails (full, I/O errors), Put
	// sheds the journal append into overflow instead of failing — science
	// continues from memory, /healthz flips to degraded, and every later
	// Put retries the drain so the journal heals as soon as the disk does.
	degraded    bool
	overflow    map[string]experiment.Result
	journalErrs uint64
	lastErr     string
}

// OpenCache opens the cache over the journal at path, loading every live
// journaled result into the index. An empty path runs memory-only (results
// do not survive a restart).
func OpenCache(path string) (*Cache, error) {
	c := &Cache{mem: make(map[string]experiment.Result), overflow: make(map[string]experiment.Result)}
	if path == "" {
		return c, nil
	}
	ck, err := experiment.OpenCheckpoint(path)
	if err != nil {
		return nil, err
	}
	// Boot-time integrity scan: if the load saw damage — corrupt regions,
	// key-mismatched records, oversized garbage — repair now (quarantine
	// the damaged raw lines beside the journal, compact to clean v2) so
	// the daemon never appends after known damage.
	if st := ck.Stats(); st.Damaged() > 0 {
		qfile, rerr := ck.Repair()
		if rerr != nil {
			ck.Close()
			return nil, fmt.Errorf("svc: journal %s damaged (%d corrupt, %d key-mismatched, %d oversized) and repair failed: %w",
				path, st.Corrupt, st.KeyMismatch, st.Oversized, rerr)
		}
		if qfile == "" {
			qfile = "(not retained)"
		}
		logger().Warn("journal repaired on boot",
			"journal", path,
			"dropped_corrupt", st.Corrupt,
			"dropped_key_mismatched", st.KeyMismatch,
			"dropped_oversized", st.Oversized,
			"live_results", ck.Len(),
			"quarantine", qfile)
	}
	c.ck = ck
	for _, res := range ck.Results() {
		c.mem[res.Config.Key()] = res
	}
	return c, nil
}

// Get returns the cached result for a config key and counts the lookup.
func (c *Cache) Get(key string) (experiment.Result, bool) {
	c.mu.Lock()
	res, ok := c.mem[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return res, ok
}

// peek is the pool's second-chance lookup: the same read as Get, but a
// miss is not counted (the submitter already counted the miss that routed
// the config to the pool). A hit still counts — the result is genuinely
// served from cache.
func (c *Cache) peek(key string) (experiment.Result, bool) {
	c.mu.Lock()
	res, ok := c.mem[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return res, ok
}

// Put stores a completed result in the index and appends it to the
// journal. Errored results are dropped. A journal failure never fails the
// Put: the result is shed into the in-memory overflow, the cache flips to
// degraded, and the overflow drains back into the journal on a later Put
// once the disk recovers. The returned error is always nil today; the
// signature stays for strict callers like sweepd -merge, which detect an
// unhealed journal via Compact.
func (c *Cache) Put(res experiment.Result) error {
	if res.Errored() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := res.Config.Key()
	c.mem[key] = res
	if c.ck == nil {
		return nil
	}
	if c.degraded {
		c.drainLocked()
	}
	if !c.degraded {
		err := failpoint.Inject("cache.put")
		if err == nil {
			err = c.ck.Append(res)
		}
		if err == nil {
			return nil
		}
		c.journalFailLocked(err)
	}
	c.overflow[key] = res
	return nil
}

func (c *Cache) journalFailLocked(err error) {
	c.journalErrs++
	c.lastErr = err.Error()
	if !c.degraded {
		c.degraded = true
		logger().Error("journal degraded, shedding writes to memory overflow", "err", err)
	}
}

// drainLocked retries the overflowed appends; the cache leaves degraded
// mode only once every shed result is safely journaled.
func (c *Cache) drainLocked() {
	for key, res := range c.overflow {
		if err := c.ck.Append(res); err != nil {
			c.journalErrs++
			c.lastErr = err.Error()
			return
		}
		delete(c.overflow, key)
	}
	if len(c.overflow) == 0 && c.degraded {
		c.degraded = false
		logger().Info("journal recovered, overflow drained")
	}
}

// Degraded reports whether the journal is currently shedding writes, with
// the overflow depth, total journal errors, and last error for /healthz
// and /metrics.
func (c *Cache) Degraded() (degraded bool, overflow int, errs uint64, lastErr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded, len(c.overflow), c.journalErrs, c.lastErr
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Hits and Misses report the lookup counters for /metrics.
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Compact rewrites the journal to one record per live config ID (see
// experiment.Checkpoint.Compact). Called after each successfully completed
// job and on shutdown; a no-op when memory-only. While the journal is
// degraded the overflow is drained first; if it cannot be, Compact fails
// rather than writing a snapshot that silently misses the shed results.
func (c *Cache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ck == nil {
		return nil
	}
	if c.degraded {
		c.drainLocked()
	}
	if c.degraded {
		return fmt.Errorf("svc: journal degraded (%d results in overflow, last error: %s)", len(c.overflow), c.lastErr)
	}
	return c.ck.Compact()
}

// Close flushes and closes the journal, draining any overflow first so a
// disk that recovered after degradation loses nothing on shutdown.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ck == nil {
		return nil
	}
	if c.degraded {
		c.drainLocked()
	}
	err := c.ck.Close()
	if c.degraded {
		return fmt.Errorf("svc: journal still degraded at close, %d results not journaled (last error: %s)", len(c.overflow), c.lastErr)
	}
	return err
}
