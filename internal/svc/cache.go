// Package svc is the sweep-as-a-service layer: a long-running daemon core
// that accepts experiment.GridSpec sweeps over HTTP, schedules their
// configurations on a sharded worker pool with per-config singleflight
// deduplication, and serves results from a content-addressed cache keyed by
// experiment.Config.Key() — the full science identity covering pairing,
// AQM, queue, bandwidth, seed, fault profile, duration, paper scale, and
// every other field that changes a run's bytes (only the observation-only
// audit bit and the watchdog budgets are excluded). The cache persists
// through the existing JSONL checkpoint journal, so a restarted daemon
// resumes with a warm cache and a served sweep is byte-identical to a
// direct cmd/sweep run of the same spec. cmd/sweepd wraps this package in
// an HTTP listener; cmd/sweep -remote is its thin client.
package svc

import (
	"sync"
	"sync/atomic"

	"repro/internal/experiment"
)

// Cache is the content-addressed result store: an in-memory index over the
// append-only checkpoint journal. Get/Put are keyed by the result's
// Config.Key() — the same science identity the sweep runner's checkpoint
// resume uses, so a journal written by a CLI sweep warms the daemon and
// vice versa, and two specs differing only in an override like duration or
// paper_scale can never serve each other's results. Errored results are
// never cached (they re-run on the next request, exactly like checkpoint
// resume). Hit/miss counters feed /metrics.
type Cache struct {
	mu  sync.Mutex
	ck  *experiment.Checkpoint // nil when running memory-only
	mem map[string]experiment.Result

	hits   atomic.Uint64
	misses atomic.Uint64
}

// OpenCache opens the cache over the journal at path, loading every live
// journaled result into the index. An empty path runs memory-only (results
// do not survive a restart).
func OpenCache(path string) (*Cache, error) {
	c := &Cache{mem: make(map[string]experiment.Result)}
	if path == "" {
		return c, nil
	}
	ck, err := experiment.OpenCheckpoint(path)
	if err != nil {
		return nil, err
	}
	c.ck = ck
	for _, res := range ck.Results() {
		c.mem[res.Config.Key()] = res
	}
	return c, nil
}

// Get returns the cached result for a config key and counts the lookup.
func (c *Cache) Get(key string) (experiment.Result, bool) {
	c.mu.Lock()
	res, ok := c.mem[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return res, ok
}

// peek is the pool's second-chance lookup: the same read as Get, but a
// miss is not counted (the submitter already counted the miss that routed
// the config to the pool). A hit still counts — the result is genuinely
// served from cache.
func (c *Cache) peek(key string) (experiment.Result, bool) {
	c.mu.Lock()
	res, ok := c.mem[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return res, ok
}

// Put stores a completed result in the index and appends it to the
// journal. Errored results are dropped.
func (c *Cache) Put(res experiment.Result) error {
	if res.Errored() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[res.Config.Key()] = res
	if c.ck != nil {
		return c.ck.Append(res)
	}
	return nil
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Hits and Misses report the lookup counters for /metrics.
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Compact rewrites the journal to one line per live config ID (see
// experiment.Checkpoint.Compact). Called after each successfully completed
// job and on shutdown; a no-op when memory-only.
func (c *Cache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ck == nil {
		return nil
	}
	return c.ck.Compact()
}

// Close flushes and closes the journal.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ck == nil {
		return nil
	}
	return c.ck.Close()
}
